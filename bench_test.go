// Package cftcg_test holds the benchmark harness that regenerates every
// table and figure of the paper's evaluation:
//
//	BenchmarkTable1MutationStrategies  — Table 1 (mutation strategy costs)
//	BenchmarkTable2ModelStats          — Table 2 (benchmark statistics)
//	BenchmarkTable3Coverage            — Table 3 (coverage per tool/model)
//	BenchmarkFigure7CoverageOverTime   — Figure 7 (decision coverage vs time)
//	BenchmarkFigure8FuzzOnly           — Figure 8 (model-oriented vs fuzz-only)
//	BenchmarkSpeedVMvsInterp           — §4 (26,000 it/s vs 6 it/s claim)
//	BenchmarkCPUTaskDeepBranches       — §4 (CPUTask 37 s vs 44.5 h estimate)
//	BenchmarkAblationIterDiff          — Algorithm 1 corpus-priority ablation
//
// Coverage percentages are attached to each benchmark result as custom
// metrics (decision%, condition%, mcdc%); `cmd/benchtab` prints the same
// data as formatted tables.
package cftcg_test

import (
	"math/rand"
	"testing"
	"time"

	"cftcg/internal/analysis"
	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
	"cftcg/internal/harness"
	"cftcg/internal/interp"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/mutate"
	"cftcg/internal/opt"
	"cftcg/internal/simcotest"
	"cftcg/internal/sldv"
	"cftcg/internal/vm"
)

func compileBench(b *testing.B, name string) *codegen.Compiled {
	b.Helper()
	e, err := benchmodels.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	c, err := codegen.Compile(e.Build())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable1MutationStrategies measures each Table 1 strategy's
// throughput on a SolarPV-layout input stream.
func BenchmarkTable1MutationStrategies(b *testing.B) {
	c := compileBench(b, "SolarPV")
	strategies := []fuzz.Strategy{
		fuzz.ChangeBinaryInteger, fuzz.ChangeBinaryFloat, fuzz.EraseTuples,
		fuzz.InsertTuple, fuzz.InsertRepeatedTuples, fuzz.ShuffleTuples,
		fuzz.CopyTuples, fuzz.TuplesCrossOver,
	}
	for _, s := range strategies {
		b.Run(s.String(), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			mut := fuzz.NewMutator(c.Prog.In, c.Prog.TupleSize(), 64, rng)
			data := make([]byte, 16*c.Prog.TupleSize())
			other := make([]byte, 8*c.Prog.TupleSize())
			rng.Read(data)
			rng.Read(other)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := mut.Apply(s, data, other)
				if len(out) > 0 {
					data = out
				}
				if len(data) > 64*c.Prog.TupleSize() {
					data = data[:16*c.Prog.TupleSize()]
				}
			}
		})
	}
}

// BenchmarkTable2ModelStats compiles every benchmark model and reports its
// branch/block statistics as metrics.
func BenchmarkTable2ModelStats(b *testing.B) {
	for _, e := range benchmodels.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			var branches, blocks int
			for i := 0; i < b.N; i++ {
				m := e.Build()
				c, err := codegen.Compile(m)
				if err != nil {
					b.Fatal(err)
				}
				branches = c.Plan.NumBranches
				blocks = m.Root.CountBlocks()
			}
			b.ReportMetric(float64(branches), "branches")
			b.ReportMetric(float64(e.PaperBranch), "paper-branches")
			b.ReportMetric(float64(blocks), "blocks")
		})
	}
}

func reportCoverage(b *testing.B, rep coverage.Report) {
	b.ReportMetric(rep.Decision(), "decision%")
	b.ReportMetric(rep.Condition(), "condition%")
	b.ReportMetric(rep.MCDC(), "mcdc%")
}

// BenchmarkTable3Coverage runs each tool on each model with a small fixed
// work budget and attaches the achieved coverage as metrics. Scale the
// budgets (and use cmd/benchtab for wall-clock runs) to approach the
// paper's 24-hour numbers.
func BenchmarkTable3Coverage(b *testing.B) {
	for _, e := range benchmodels.All() {
		e := e
		c, err := codegen.Compile(e.Build())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.Name+"/CFTCG", func(b *testing.B) {
			var rep coverage.Report
			for i := 0; i < b.N; i++ {
				res := fuzz.MustEngine(c, fuzz.Options{Seed: 1, MaxExecs: 20000}).Run()
				rep = res.Report
			}
			reportCoverage(b, rep)
		})
		b.Run(e.Name+"/SLDV", func(b *testing.B) {
			var rep coverage.Report
			for i := 0; i < b.N; i++ {
				res := sldv.Run(c, sldv.Options{MaxDepth: 4, NodeBudget: 20000})
				rep = res.Report
			}
			reportCoverage(b, rep)
		})
		b.Run(e.Name+"/SimCoTest", func(b *testing.B) {
			var rep coverage.Report
			for i := 0; i < b.N; i++ {
				res, err := simcotest.Run(c.Design, c.Plan, c.Index, simcotest.Options{
					Seed: 1, Horizon: 50, MaxSims: 40,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep = res.Report
			}
			reportCoverage(b, rep)
		})
	}
}

// BenchmarkFigure7CoverageOverTime runs a short CFTCG campaign per model and
// reports how quickly decision coverage accumulates (time to half of the
// final coverage, plus the final value).
func BenchmarkFigure7CoverageOverTime(b *testing.B) {
	for _, e := range benchmodels.All() {
		e := e
		c, err := codegen.Compile(e.Build())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.Name, func(b *testing.B) {
			var final float64
			var half time.Duration
			for i := 0; i < b.N; i++ {
				res := fuzz.MustEngine(c, fuzz.Options{Seed: 1, Budget: 300 * time.Millisecond}).Run()
				final = res.Report.Decision()
				half = 0
				for _, p := range res.Timeline {
					if p.Decision >= final/2 {
						half = p.Elapsed
						break
					}
				}
			}
			b.ReportMetric(final, "decision%")
			b.ReportMetric(float64(half.Microseconds()), "us-to-half-coverage")
		})
	}
}

// BenchmarkFigure8FuzzOnly compares full CFTCG with the fuzz-only ablation
// at an identical execution budget.
func BenchmarkFigure8FuzzOnly(b *testing.B) {
	for _, name := range []string{"SolarPV", "CPUTask", "TWC", "EVCS"} {
		c := compileBench(b, name)
		for _, mode := range []fuzz.Mode{fuzz.ModeModelOriented, fuzz.ModeFuzzOnly} {
			mode := mode
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				var rep coverage.Report
				for i := 0; i < b.N; i++ {
					res := fuzz.MustEngine(c, fuzz.Options{Seed: 1, Mode: mode, MaxExecs: 20000}).Run()
					rep = res.Report
				}
				reportCoverage(b, rep)
			})
		}
	}
}

// BenchmarkSpeedVMvsInterp is the §4 execution-rate comparison: one model
// iteration on the compiled VM versus the interpretive simulation engine.
// The ns/op ratio between the two sub-benchmarks is the reproduction of the
// paper's 26,000 vs 6 iterations/second.
func BenchmarkSpeedVMvsInterp(b *testing.B) {
	c := compileBench(b, "SolarPV")
	rng := rand.New(rand.NewSource(1))
	inputs := make([][]uint64, 64)
	for i := range inputs {
		in := make([]uint64, len(c.Prog.In))
		for f, field := range c.Prog.In {
			in[f] = model.EncodeInt(field.Type, int64(rng.Intn(512)-256))
		}
		inputs[i] = in
	}
	b.Run("CompiledVM", func(b *testing.B) {
		rec := coverage.NewRecorder(c.Plan)
		m := vm.New(c.Prog, rec)
		m.Init()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.BeginStep()
			m.Step(inputs[i&63])
		}
	})
	b.Run("SimulationEngine", func(b *testing.B) {
		rec := coverage.NewRecorder(c.Plan)
		eng := interp.New(c.Design, c.Plan, c.Index, rec)
		if err := eng.Init(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.BeginStep()
			if _, err := eng.Step(inputs[i&63]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkVMOptimized compares VM stepping throughput on the original vs
// the translation-validated optimized program for every benchmark model,
// attaching the instruction counts as metrics. scripts/bench.sh snapshots
// the orig/opt pairs (it/s and instrs) into BENCH_v8.json.
func BenchmarkVMOptimized(b *testing.B) {
	for _, e := range benchmodels.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			c, err := codegen.Compile(e.Build())
			if err != nil {
				b.Fatal(err)
			}
			optp, st, err := opt.Optimize(c.Prog, c.Plan, opt.Config{})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			inputs := make([][]uint64, 64)
			for i := range inputs {
				in := make([]uint64, len(c.Prog.In))
				for f, field := range c.Prog.In {
					in[f] = model.EncodeInt(field.Type, int64(rng.Intn(512)-256))
				}
				inputs[i] = in
			}
			run := func(p *ir.Program, instrs int) func(*testing.B) {
				return func(b *testing.B) {
					rec := coverage.NewRecorder(c.Plan)
					m := vm.New(p, rec)
					m.Init()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						rec.BeginStep()
						m.Step(inputs[i&63])
					}
					b.ReportMetric(float64(instrs), "instrs")
				}
			}
			b.Run("orig", run(c.Prog, st.Before()))
			b.Run("opt", run(optp, st.After()))
		})
	}
}

// BenchmarkVMBackends compares stepping throughput of the switch reference
// interpreter against the threaded backend on every benchmark model, in both
// fuzzing shape (coverage recorder attached, "rec") and mutant-grind shape
// (no recorder, "norec" — mutants only need outputs). The superinstruction
// count is attached as a metric. scripts/bench.sh snapshots the
// switch/threaded pairs into BENCH_v9.json.
func BenchmarkVMBackends(b *testing.B) {
	for _, e := range benchmodels.All() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			c, err := codegen.Compile(e.Build())
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			inputs := make([][]uint64, 64)
			for i := range inputs {
				in := make([]uint64, len(c.Prog.In))
				for f, field := range c.Prog.In {
					in[f] = model.EncodeInt(field.Type, int64(rng.Intn(512)-256))
				}
				inputs[i] = in
			}
			for _, withRec := range []bool{true, false} {
				withRec := withRec
				for kind := vm.BackendKind(0); kind.Valid(); kind++ {
					kind := kind
					name := kind.String() + "/rec"
					if !withRec {
						name = kind.String() + "/norec"
					}
					b.Run(name, func(b *testing.B) {
						var rec *coverage.Recorder
						if withRec {
							rec = coverage.NewRecorder(c.Plan)
						}
						m := vm.NewBackend(kind, c.Prog, rec)
						if err := m.Init(); err != nil {
							b.Fatal(err)
						}
						b.ResetTimer()
						if withRec {
							for i := 0; i < b.N; i++ {
								rec.BeginStep()
								m.Step(inputs[i&63])
							}
						} else {
							for i := 0; i < b.N; i++ {
								m.Step(inputs[i&63])
							}
						}
						if kind == vm.BackendThreaded {
							b.ReportMetric(float64(vm.CompileThreaded(c.Prog).Fused()), "fused")
						}
					})
				}
			}
		})
	}
}

// BenchmarkVMBatch measures the mutant-grind shape: 64 program instances
// advanced in lockstep over one input stream. "machines" allocates 64
// scalar threaded machines (shared compile, separate register files);
// "batch" runs 64 lanes over structure-of-arrays slabs where the per-round
// reset is a memclr. Reported ns are per lane-step.
func BenchmarkVMBatch(b *testing.B) {
	const lanes = 64
	for _, name := range []string{"CPUTask", "TCP"} {
		c := compileBench(b, name)
		code := vm.CompileThreaded(c.Prog)
		rng := rand.New(rand.NewSource(1))
		inputs := make([][]uint64, 64)
		for i := range inputs {
			in := make([]uint64, len(c.Prog.In))
			for f, field := range c.Prog.In {
				in[f] = model.EncodeInt(field.Type, int64(rng.Intn(512)-256))
			}
			inputs[i] = in
		}
		b.Run(name+"/machines", func(b *testing.B) {
			ms := make([]*vm.Threaded, lanes)
			for i := range ms {
				ms[i] = vm.NewThreadedFromCode(code, nil)
				ms[i].Init()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in := inputs[i&63]
				for _, m := range ms {
					m.Step(in)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/lane-step")
		})
		b.Run(name+"/batch", func(b *testing.B) {
			bt := vm.NewBatch(code, lanes, nil)
			bt.ResetAll()
			for i := 0; i < lanes; i++ {
				bt.Init(i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in := inputs[i&63]
				for lane := 0; lane < lanes; lane++ {
					bt.Step(lane, in)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*lanes), "ns/lane-step")
		})
	}
}

// BenchmarkCPUTaskDeepBranches measures how much fuzzing work reaches the
// queue-full branches of CPUTask, reporting the iteration count that at
// engine speed would take the paper's estimated 44.5 hours.
func BenchmarkCPUTaskDeepBranches(b *testing.B) {
	c := compileBench(b, "CPUTask")
	var rep coverage.Report
	var steps int64
	for i := 0; i < b.N; i++ {
		res := fuzz.MustEngine(c, fuzz.Options{Seed: 1, MaxExecs: 30000}).Run()
		rep = res.Report
		steps = res.Steps
	}
	b.ReportMetric(rep.Decision(), "decision%")
	b.ReportMetric(float64(steps), "model-iterations")
	// At the paper's 6 it/s engine rate, the same iterations would need:
	b.ReportMetric(float64(steps)/6/3600, "hours-at-engine-speed")
}

// BenchmarkAblationIterDiff isolates Algorithm 1's contribution: identical
// mutation and feedback, with and without iteration-difference corpus
// priority.
func BenchmarkAblationIterDiff(b *testing.B) {
	for _, name := range []string{"CPUTask", "TCP"} {
		c := compileBench(b, name)
		for _, mode := range []fuzz.Mode{fuzz.ModeModelOriented, fuzz.ModeNoIterDiff} {
			mode := mode
			b.Run(name+"/"+mode.String(), func(b *testing.B) {
				var rep coverage.Report
				for i := 0; i < b.N; i++ {
					res := fuzz.MustEngine(c, fuzz.Options{Seed: 1, Mode: mode, MaxExecs: 20000}).Run()
					rep = res.Report
				}
				reportCoverage(b, rep)
			})
		}
	}
}

// seededDeadModel is the static-analysis acceptance model: the live logic is
// a value window on one "needle" input, several decoy inputs feed data-only
// paths, and a saturated comparison seeds a provably dead branch.
func seededDeadModel() *model.Model {
	b := model.NewBuilder("SeededDead")
	cmd := b.Inport("cmd", model.Int32)
	n1 := b.Inport("noise1", model.Float64)
	n2 := b.Inport("noise2", model.Float64)
	n3 := b.Inport("noise3", model.Int32)
	aux := b.Inport("aux", model.Int32)

	// Live branches: only cmd influences them.
	lo := b.Rel(">", cmd, b.ConstT(model.Int32, 1000))
	hi := b.Rel("<", cmd, b.ConstT(model.Int32, 1050))
	b.Outport("y", model.Int32,
		b.Switch(b.And(lo, hi), b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0)))

	// Decoys: pure data paths, no branch influence.
	b.Outport("n", model.Float64, b.Add2(n1, n2))
	b.Outport("m", model.Int32, b.Gain(n3, 3))

	// Seeded dead branch: aux saturated to [0,10] can never exceed 20. The
	// comparison feeds both a switch (dead decision outcome) and a logic
	// decision (dead condition polarity).
	deadCmp := b.Rel(">", b.Saturation(aux, 0, 10), b.ConstT(model.Int32, 20))
	b.Outport("z", model.Int32,
		b.Switch(deadCmp, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0)))
	b.Outport("alarm", model.Bool,
		b.Or(deadCmp, b.Rel("<", aux, b.ConstT(model.Int32, 0))))
	return b.Model()
}

// TestDeadAdjustedDirectedFuzzing is the acceptance check for the static
// analysis passes: on a model with a seeded dead branch, (a) dead marking
// shrinks every reported denominator, and (b) the influence-directed engine
// reaches at least the undirected engine's coverage at an identical
// iteration budget and seed.
func TestDeadAdjustedDirectedFuzzing(t *testing.T) {
	plain, err := codegen.Compile(seededDeadModel())
	if err != nil {
		t.Fatal(err)
	}
	marked, err := codegen.Compile(seededDeadModel())
	if err != nil {
		t.Fatal(err)
	}
	if n := analysis.MarkDead(marked.Prog, marked.Plan); n == 0 {
		t.Fatal("analysis found no dead objectives in the seeded model")
	}
	before := coverage.NewRecorder(plain.Plan).Report()
	after := coverage.NewRecorder(marked.Plan).Report()
	if after.DecisionTotal >= before.DecisionTotal {
		t.Errorf("decision denominator must exclude the dead outcome: %d -> %d",
			before.DecisionTotal, after.DecisionTotal)
	}
	if after.CondTotal >= before.CondTotal {
		t.Errorf("condition denominator must exclude the dead polarity: %d -> %d",
			before.CondTotal, after.CondTotal)
	}
	if after.MCDCTotal >= before.MCDCTotal {
		t.Errorf("MCDC denominator must exclude the half-dead condition: %d -> %d",
			before.MCDCTotal, after.MCDCTotal)
	}

	run := func(directed bool) coverage.Report {
		c, err := codegen.Compile(seededDeadModel())
		if err != nil {
			t.Fatal(err)
		}
		analysis.MarkDead(c.Prog, c.Plan)
		res := fuzz.MustEngine(c, fuzz.Options{
			Seed:     5,
			MaxExecs: 8000,
			NoHints:  true, // isolate the influence effect from the hint dictionary
			Directed: directed,
		}).Run()
		return res.Report
	}
	undirected := run(false)
	directed := run(true)
	t.Logf("undirected: %s", undirected)
	t.Logf("directed:   %s", directed)
	if directed.Decision() < undirected.Decision() {
		t.Errorf("directed decision coverage %.1f%% below undirected %.1f%%",
			directed.Decision(), undirected.Decision())
	}
	if directed.Condition() < undirected.Condition() {
		t.Errorf("directed condition coverage %.1f%% below undirected %.1f%%",
			directed.Condition(), undirected.Condition())
	}
}

// BenchmarkMutantKill measures mutant-runner throughput: a fixed mutant
// pool for CPUTask executed in VM lockstep against a freshly fuzzed suite.
// The kill rate is attached as a custom metric alongside mutant-execs/s.
func BenchmarkMutantKill(b *testing.B) {
	e, err := benchmodels.Get("CPUTask")
	if err != nil {
		b.Fatal(err)
	}
	m := e.Build()
	c, err := codegen.Compile(m)
	if err != nil {
		b.Fatal(err)
	}
	muts := mutate.Generate(c, m, mutate.Config{Limit: 40, Seed: 1})
	if len(muts) == 0 {
		b.Fatal("no mutants generated")
	}
	res := fuzz.MustEngine(c, fuzz.Options{Seed: 1, MaxExecs: 2000}).Run()
	cases := make([][]byte, 0, len(res.Suite.Cases))
	for _, tc := range res.Suite.Cases {
		cases = append(cases, tc.Data)
	}
	// batch is the production path (lane-grouped mutants over shared
	// slabs); seq is the one-machine-per-mutant reference. Identical
	// reports — TestBatchedMatchesSequential — so the delta is pure
	// execution overhead.
	for _, sub := range []struct {
		name    string
		noBatch bool
	}{{"batch", false}, {"seq", true}} {
		b.Run(sub.name, func(b *testing.B) {
			var rep *mutate.Report
			for i := 0; i < b.N; i++ {
				rep = mutate.Run(c, muts, cases, mutate.RunConfig{NoBatch: sub.noBatch, NoProve: true})
			}
			b.ReportMetric(float64(rep.Steps)*float64(b.N)/b.Elapsed().Seconds(), "mutant-steps/s")
			b.ReportMetric(rep.Summary.Score, "score")
		})
	}
}

// BenchmarkHarnessTable3 exercises the full harness path (what cmd/benchtab
// does) on one model, so the orchestration layer itself has a benchmark.
func BenchmarkHarnessTable3(b *testing.B) {
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		b.Fatal(err)
	}
	cfg := harness.DefaultConfig()
	cfg.Budget = 150 * time.Millisecond
	cfg.Repetitions = 1
	for i := 0; i < b.N; i++ {
		if _, err := harness.RunModel(e, []harness.Tool{harness.ToolCFTCG, harness.ToolSLDV}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
