// Quickstart: build a small Simulink-style model in code, generate its
// fuzzing code, run the model-oriented fuzzing loop for a moment, and print
// the coverage report.
package main

import (
	"fmt"
	"log"
	"time"

	"cftcg/internal/core"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
)

func main() {
	// A thermostat-ish controller: heat when enabled and the temperature
	// has been below the setpoint for three consecutive samples.
	b := model.NewBuilder("Thermostat")
	enable := b.Inport("Enable", model.Int8)
	temp := b.Inport("Temp", model.Int16)

	ctl := b.Matlab("ctl", `
input  int8  en;
input  int16 temp;
output bool  heat = false;
state  int32 coldRun = 0;
if (en ~= 0 && temp < 180) {
    coldRun = coldRun + 1;
} else {
    coldRun = 0;
}
if (coldRun >= 3) { heat = true; }
`, enable, temp)

	// Heating power tracks how far below the setpoint we are, minus a
	// burner deadband (slightly cold rooms round down to zero power).
	deficit := b.Sub(b.Sub(b.ConstT(model.Int16, 180), temp), b.ConstT(model.Int16, 20))
	power := b.Switch(ctl.Out(0), deficit, b.ConstT(model.Int16, 0))
	b.Outport("Power", model.Int16, b.Saturation(power, 0, 100))

	sys, err := core.FromModel(b.Model())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== generated fuzz driver (paper Figure 3 shape) ==")
	fmt.Println(sys.GenerateFuzzCode().Driver)

	lay := sys.Layout()
	fmt.Printf("input tuple: %d bytes, %d fields; %d instrumented branch slots\n\n",
		lay.TupleSize, len(lay.Fields), sys.BranchCount())

	res, err := sys.Fuzz(fuzz.Options{Seed: 42, Budget: 500 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzzed %d inputs (%d model iterations), %d test cases emitted\n",
		res.Execs, res.Steps, len(res.Suite.Cases))
	fmt.Println(res.Report)

	if len(res.Suite.Cases) > 0 {
		fmt.Println("\nfirst test case as CSV (Simulink replay format):")
		_ = sys.ConvertCase(logWriter{}, res.Suite.Cases[0].Data)
	}
}

type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
