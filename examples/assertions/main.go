// assertions shows CFTCG used for property checking rather than coverage: a
// cruise-control model carries Assertion blocks encoding safety invariants,
// and the fuzzer hunts for inputs that break them. One invariant is
// genuinely safe (the saturation enforces it); the other has a hole that
// only a specific brake/resume sequence exposes.
package main

import (
	"fmt"
	"log"
	"time"

	"cftcg/internal/core"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
)

func buildCruise() *model.Model {
	b := model.NewBuilder("Cruise")
	setpoint := b.Inport("Setpoint", model.Int16) // km/h
	brake := b.Inport("Brake", model.Int8)
	resume := b.Inport("Resume", model.Int8)

	// The command is computed from last step's engage state BEFORE the
	// brake is processed — a one-step-latency bug: the first braking step
	// still outputs the memorized speed.
	ctl := b.Matlab("ctl", `
input  int16 sp;
input  int8  brake;
input  int8  resume;
output int16 cmd = 0;
state  int16 memo = 0;
state  int8  engaged = 0;
if (engaged ~= 0) {
    cmd = memo;
} else {
    cmd = 0;
}
if (brake ~= 0) {
    engaged = 0;
} else {
    if (resume ~= 0) {
        engaged = 1;
    }
}
if (sp > 0 && sp < 200) {
    memo = sp;
}
`, setpoint, brake, resume)

	cmd := b.Saturation(ctl.Out(0), 0, 180)

	// Invariant A (safe): the commanded speed never exceeds 180 km/h — the
	// saturation enforces it, so the fuzzer must NOT break this one.
	b.Add("Assertion", "speed_cap", nil).From(b.Rel("<=", cmd, b.ConstT(model.Int16, 180)))

	// Invariant B (broken): "while braking the command is zero". Because
	// of the latency bug above, the step that first presses the brake
	// still emits the previous command — engage, set a speed, then brake.
	braking := b.Rel("~=", brake, b.ConstT(model.Int8, 0))
	cmdZero := b.Rel("==", cmd, b.ConstT(model.Int16, 0))
	holds := b.Or(b.Not(braking), cmdZero)
	b.Add("Assertion", "brake_zero", nil).From(holds)

	b.Outport("Cmd", model.Int16, cmd)
	return b.Model()
}

func main() {
	sys, err := core.FromModel(buildCruise())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Fuzz(fuzz.Options{Seed: 77, Budget: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d executions, %d cases\n", res.Execs, len(res.Suite.Cases))
	fmt.Println(res.Report)

	if len(res.Violations) == 0 {
		fmt.Println("no assertion violations found — try a larger budget")
		return
	}
	fmt.Printf("\n%d violating input(s) found; first one decoded:\n", len(res.Violations))
	lay := sys.Layout()
	data := res.Violations[0].Data
	n := len(data) / lay.TupleSize
	for i := 0; i < n && i < 10; i++ {
		base := i * lay.TupleSize
		sp := model.DecodeInt(model.Int16, model.GetRaw(model.Int16, data[base+lay.Fields[0].Offset:]))
		br := model.DecodeInt(model.Int8, model.GetRaw(model.Int8, data[base+lay.Fields[1].Offset:]))
		rs := model.DecodeInt(model.Int8, model.GetRaw(model.Int8, data[base+lay.Fields[2].Offset:]))
		fmt.Printf("  step %d: setpoint=%-6d brake=%-4d resume=%d\n", i, sp, br, rs)
	}
	// Attribute the violations: replay them and see which Assertion
	// decision reached its "violated" outcome.
	var raw [][]byte
	for _, v := range res.Violations {
		raw = append(raw, v.Data)
	}
	_, rec := sys.Replay(raw)
	fmt.Println()
	for i := range sys.Compiled.Plan.Decisions {
		d := &sys.Compiled.Plan.Decisions[i]
		if d.Kind.String() != "Assertion" {
			continue
		}
		status := "HELD"
		if rec.Total[d.OutcomeBase] != 0 {
			status = "VIOLATED"
		}
		fmt.Printf("  %-30s %s\n", d.Label, status)
	}
	fmt.Println("\nthe saturation really does enforce the speed cap; the engage/brake")
	fmt.Println("ordering bug is what the fuzzer caught.")
}
