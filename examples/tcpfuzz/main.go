// tcpfuzz fuzzes the TCP three-way handshake benchmark — the model whose
// deep coverage needs *ordered* input sequences (SYN, then a matching ACK,
// then in-order segments). It prints the coverage timeline and decodes the
// test case that first reached the ESTABLISHED state.
package main

import (
	"fmt"
	"log"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/core"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
)

func main() {
	entry, err := benchmodels.Get("TCP")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.FromModel(entry.Build())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TCP model: %d branch slots, tuple %d bytes (Flags u8, Seq i32, Cmd i8)\n\n",
		sys.BranchCount(), sys.Layout().TupleSize)

	res, err := sys.Fuzz(fuzz.Options{Seed: 7, Budget: 3 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign: %d executions, %d iterations, corpus %d, %d test cases\n",
		res.Execs, res.Steps, res.Corpus, len(res.Suite.Cases))
	fmt.Println(res.Report)

	fmt.Println("\ncoverage growth (decision %):")
	last := -1.0
	for _, p := range res.Timeline {
		if p.Decision != last {
			fmt.Printf("  %8s  execs %-8d %5.1f%%\n", p.Elapsed.Round(time.Millisecond), p.Execs, p.Decision)
			last = p.Decision
		}
	}

	// Find a case that drives the connection to ESTABLISHED (stateCode 3):
	// replay each case and watch the State outport.
	lay := sys.Layout()
	for i, tc := range res.Suite.Cases {
		if established(sys, tc.Data) {
			fmt.Printf("\ncase %d reaches ESTABLISHED; decoded segments:\n", i)
			fmt.Print(decodeSegments(lay, tc.Data))
			return
		}
	}
	fmt.Println("\nno case reached ESTABLISHED in this short run — try a larger -budget")
}

// established replays one case and reports whether the State outport ever
// reads 3 (the chart's Established code).
func established(sys *core.System, data []byte) bool {
	_, rec := sys.Replay([][]byte{data})
	// Find the Established entry decision via its label.
	for i := range sys.Compiled.Plan.Decisions {
		d := &sys.Compiled.Plan.Decisions[i]
		if d.Label == "TCP/connection SynRcvd->Established[ack && ok]" {
			return rec.Total[d.OutcomeBase+1] != 0
		}
	}
	return false
}

func decodeSegments(lay model.Layout, data []byte) string {
	out := ""
	n := len(data) / lay.TupleSize
	for i := 0; i < n && i < 12; i++ {
		base := i * lay.TupleSize
		flags := model.GetRaw(lay.Fields[0].Type, data[base+lay.Fields[0].Offset:])
		seq := model.DecodeInt(lay.Fields[1].Type, model.GetRaw(lay.Fields[1].Type, data[base+lay.Fields[1].Offset:]))
		cmd := model.DecodeInt(lay.Fields[2].Type, model.GetRaw(lay.Fields[2].Type, data[base+lay.Fields[2].Offset:]))
		names := ""
		for bit, nm := range map[uint64]string{1: "SYN", 2: "ACK", 4: "FIN", 8: "RST"} {
			if flags&bit != 0 {
				names += nm + " "
			}
		}
		if names == "" {
			names = "-"
		}
		out += fmt.Sprintf("  seg %2d: flags=%-12s seq=%-11d cmd=%d\n", i, names, seq, cmd)
	}
	if n > 12 {
		out += fmt.Sprintf("  ... %d more segments\n", n-12)
	}
	return out
}
