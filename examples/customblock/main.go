// customblock extends the block catalog with a user-defined block —
// a three-level hysteresis quantizer — by registering its template with the
// catalog, its lowering with the code generator, and its evaluator with the
// simulation engine; then it differentially validates the two execution
// paths and fuzzes a model using the new block.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"cftcg/internal/blocks"
	"cftcg/internal/codegen"
	"cftcg/internal/core"
	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
	"cftcg/internal/interp"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// TriLevel: outputs -1/0/+1 with hysteresis bands at ±Band around zero;
// state remembers the current level.
func registerTriLevel() {
	blocks.Register(&blocks.Spec{
		Kind: "TriLevel", Doc: "three-level hysteresis quantizer",
		InCount:  func(*model.Block) (int, error) { return 1, nil },
		OutCount: func(*model.Block) (int, error) { return 1, nil },
		Infer: func(b *model.Block, in []model.DType) ([]model.DType, error) {
			return []model.DType{model.Int8}, nil
		},
		Stateful: true,
	})

	codegen.RegisterLowerer("TriLevel", func(ctx *codegen.LowerContext, b *model.Block) error {
		a := ctx.Asm()
		band := b.Params.Float("Band", 1)
		in, err := ctx.Input(b, 0, model.Float64)
		if err != nil {
			return err
		}
		slot := ctx.AllocState(b.Name+".level", model.Int8, 0)
		level := a.LoadState(model.Int8, slot)
		lv := a.Cast(model.Float64, model.Int8, level)

		hi := a.Bin(ir.OpGt, model.Float64, in, a.ConstVal(model.Float64, band))
		lo := a.Bin(ir.OpLt, model.Float64, in, a.ConstVal(model.Float64, -band))
		mid := a.Bin(ir.OpAnd, model.Bool,
			a.Bin(ir.OpLt, model.Float64, a.Un(ir.OpAbs, model.Float64, in), a.ConstVal(model.Float64, band/2)),
			a.Const(model.Bool, 1))
		one := a.ConstVal(model.Float64, 1)
		negOne := a.ConstVal(model.Float64, -1)
		zero := a.ConstVal(model.Float64, 0)
		next := a.Select(model.Float64, hi, one,
			a.Select(model.Float64, lo, negOne,
				a.Select(model.Float64, mid, zero, lv)))
		out := a.Cast(model.Int8, model.Float64, next)
		a.StoreState(slot, out)
		ctx.SetOutput(b, 0, out)
		return nil
	})

	interp.RegisterEvaluator("TriLevel", func(ctx *interp.EvalContext, b *model.Block) error {
		band := b.Params.Float("Band", 1)
		in, err := ctx.Input(b, 0, model.Float64)
		if err != nil {
			return err
		}
		st := ctx.State(b, func() []interp.Value {
			return []interp.Value{interp.FromInt(model.Int8, 0)}
		})
		x := in.F()
		next := float64(st[0].I())
		switch {
		case x > band:
			next = 1
		case x < -band:
			next = -1
		case x < band/2 && x > -band/2:
			next = 0
		}
		st[0] = interp.FromInt(model.Int8, int64(next))
		ctx.SetOutput(b, 0, st[0])
		return nil
	})
}

func main() {
	registerTriLevel()

	b := model.NewBuilder("TriDemo")
	sig := b.Inport("Signal", model.Float64)
	tri := b.Add("TriLevel", "quant", model.Params{"Band": 5.0}).From(sig)
	count := b.Matlab("levelCount", `
input  int8  lvl;
output int32 swings = 0;
state  int32 n = 0;
state  int8  prev = 0;
if (lvl ~= prev) { n = n + 1; }
prev = lvl;
swings = n;
`, tri.Out(0))
	b.Outport("Level", model.Int8, tri.Out(0))
	b.Outport("Swings", model.Int32, count.Out(0))
	m := b.Model()

	sys, err := core.FromModel(m)
	if err != nil {
		log.Fatal(err)
	}

	// Differential validation of the custom block: VM vs engine.
	rec1 := coverage.NewRecorder(sys.Compiled.Plan)
	machine := vm.New(sys.Compiled.Prog, rec1)
	machine.Init()
	rec2 := coverage.NewRecorder(sys.Compiled.Plan)
	eng := interp.New(sys.Compiled.Design, sys.Compiled.Plan, sys.Compiled.Index, rec2)
	if err := eng.Init(); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		in := []uint64{model.EncodeFloat(model.Float64, rng.NormFloat64()*8)}
		rec1.BeginStep()
		machine.Step(in)
		rec2.BeginStep()
		outs, err := eng.Step(in)
		if err != nil {
			log.Fatal(err)
		}
		for k := range outs {
			if outs[k] != machine.Out()[k] {
				log.Fatalf("step %d: custom block diverges between VM and engine", i)
			}
		}
	}
	fmt.Println("custom TriLevel block: 2000 differential steps, VM == engine ✓")

	res, err := sys.Fuzz(fuzz.Options{Seed: 3, Budget: time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzzing with the custom block: %d executions\n", res.Execs)
	fmt.Println(res.Report)
}
