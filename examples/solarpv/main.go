// SolarPV walks through the paper's running example end to end: the
// generated fuzz driver (Figure 3), the instrumented step function
// (Figure 4), the eight tuple-wise mutation strategies (Figure 5 / Table 1),
// the Iteration Difference Coverage metric (Figure 6 / Algorithm 1), and a
// short fuzzing campaign.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/core"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
)

func main() {
	entry, err := benchmodels.Get("SolarPV")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := core.FromModel(entry.Build())
	if err != nil {
		log.Fatal(err)
	}

	code := sys.GenerateFuzzCode()
	fmt.Println("== fuzz driver (compare with the paper's Figure 3) ==")
	fmt.Println(code.Driver)

	fmt.Println("== first lines of the instrumented step function (Figure 4 modes) ==")
	for i, line := range strings.Split(code.Step, "\n") {
		if i > 25 {
			fmt.Println("    ...")
			break
		}
		fmt.Println(line)
	}

	// Mutation strategies on a sample 3-tuple stream (Figure 5).
	lay := sys.Layout()
	fmt.Printf("\n== Table 1 mutation strategies (tuple = %d bytes) ==\n", lay.TupleSize)
	rng := rand.New(rand.NewSource(7))
	mut := fuzz.NewMutator(lay.Fields, lay.TupleSize, 16, rng)
	sample := concat(tuple(lay, 1, 150, 1), tuple(lay, 1, 90, 2), tuple(lay, 0, 500, 1))
	other := concat(tuple(lay, 1, 700, 2), tuple(lay, 1, 10, 1))
	for s := fuzz.ChangeBinaryInteger; s <= fuzz.TuplesCrossOver; s++ {
		mutated := mut.Apply(s, sample, other)
		fmt.Printf("  %-22s %2d tuples -> %2d tuples\n",
			s, len(sample)/lay.TupleSize, len(mutated)/lay.TupleSize)
	}

	// Iteration Difference Coverage on two hand-built inputs (Figure 6):
	// a repetitive stream vs one that keeps changing the triggered logic.
	// RunInput only — MaxExecs satisfies the budget validation but is unused.
	eng := fuzz.MustEngine(sys.Compiled, fuzz.Options{Seed: 1, MaxExecs: 1})
	flat := concat(tuple(lay, 1, 150, 1), tuple(lay, 1, 150, 1), tuple(lay, 1, 150, 1))
	mFlat, _, _ := eng.RunInput(flat)
	varied := concat(tuple(lay, 1, 150, 1), tuple(lay, 0, 0, 1), tuple(lay, 1, 250, 2))
	mVar, _, _ := eng.RunInput(varied)
	fmt.Printf("\n== Iteration Difference Coverage (Algorithm 1) ==\n")
	fmt.Printf("  repetitive input:  metric %d\n", mFlat)
	fmt.Printf("  diversified input: metric %d (prioritized for the corpus)\n", mVar)

	// A short campaign.
	res, err := sys.Fuzz(fuzz.Options{Seed: 2024, Budget: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== campaign ==\n%d executions, %d iterations, %d cases\n",
		res.Execs, res.Steps, len(res.Suite.Cases))
	fmt.Println(res.Report)
	fmt.Printf("paper reference for CFTCG on SolarPV: DC 89%%, CC 95%%, MCDC 86%%\n")
}

// tuple encodes one SolarPV input tuple (Enable, Power, PanelID).
func tuple(lay model.Layout, enable, power, panel int64) []byte {
	out := make([]byte, lay.TupleSize)
	vals := []int64{enable, power, panel}
	for i, f := range lay.Fields {
		model.PutRaw(f.Type, out[f.Offset:], model.EncodeInt(f.Type, vals[i]))
	}
	return out
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
