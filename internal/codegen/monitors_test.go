package codegen

import (
	"testing"

	"cftcg/internal/model"
)

func TestDetectBlocks(t *testing.T) {
	b := model.NewBuilder("Det")
	x := b.Inport("x", model.Int32)
	chg := b.Add("DetectChange", "chg", nil).From(x)
	inc := b.Add("DetectIncrease", "inc", nil).From(x)
	dec := b.Add("DetectDecrease", "dec", nil).From(x)
	b.Outport("chgO", model.Bool, chg.Out(0))
	b.Outport("incO", model.Bool, inc.Out(0))
	b.Outport("decO", model.Bool, dec.Out(0))
	step, _, _ := run(t, b.Model())

	seq := []struct {
		in            int64
		chg, inc, dec uint64
	}{
		{0, 0, 0, 0}, // equals the Init=0 previous value
		{5, 1, 1, 0}, // rose
		{5, 0, 0, 0}, // steady
		{2, 1, 0, 1}, // fell
	}
	for i, c := range seq {
		out := step(i32(c.in))
		if out[0] != c.chg || out[1] != c.inc || out[2] != c.dec {
			t.Fatalf("step %d (in=%d): chg/inc/dec = %v/%v/%v, want %v/%v/%v",
				i, c.in, out[0], out[1], out[2], c.chg, c.inc, c.dec)
		}
	}
}

func TestIntervalTest(t *testing.T) {
	b := model.NewBuilder("IT")
	x := b.Inport("x", model.Float64)
	it := b.Add("IntervalTest", "band", model.Params{"Lo": -1.5, "Hi": 2.5}).From(x)
	b.Outport("in", model.Bool, it.Out(0))
	step, rec, _ := run(t, b.Model())
	cases := []struct {
		in   float64
		want uint64
	}{{-2, 0}, {-1.5, 1}, {0, 1}, {2.5, 1}, {2.6, 0}}
	for _, c := range cases {
		if got := step(f64(c.in))[0]; got != c.want {
			t.Errorf("interval(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if rep := rec.Report(); rep.Decision() != 100 {
		t.Errorf("both interval outcomes: %v", rep.Decision())
	}
}

func TestBacklash(t *testing.T) {
	b := model.NewBuilder("BL")
	x := b.Inport("x", model.Float64)
	bl := b.Add("Backlash", "play", model.Params{"Width": 2.0}).From(x)
	b.Outport("y", model.Float64, bl.Out(0))
	step, rec, _ := run(t, b.Model())
	seq := []struct{ in, want float64 }{
		{0.5, 0}, // inside the deadband around 0: hold
		{3, 2},   // engage upward: y = 3 - 1
		{2.5, 2}, // small reversal stays in the band
		{-1, 0},  // engage downward: y = -1 + 1
	}
	for i, c := range seq {
		if got := model.DecodeFloat(model.Float64, step(f64(c.in))[0]); got != c.want {
			t.Fatalf("step %d backlash(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
	if rep := rec.Report(); rep.Decision() != 100 {
		t.Errorf("all 3 backlash regions: %v (uncovered %v)", rep.Decision(), rep.UncoveredDecisions)
	}
}

func TestWrapToZero(t *testing.T) {
	b := model.NewBuilder("WZ")
	x := b.Inport("x", model.Int32)
	w := b.Add("WrapToZero", "wrap", model.Params{"Threshold": 100.0}).From(x)
	b.Outport("y", model.Int32, w.Out(0))
	step, _, _ := run(t, b.Model())
	if got := model.DecodeInt(model.Int32, step(i32(55))[0]); got != 55 {
		t.Errorf("pass-through: %d", got)
	}
	if got := model.DecodeInt(model.Int32, step(i32(101))[0]); got != 0 {
		t.Errorf("wrap: %d", got)
	}
}

func TestAssertionProbes(t *testing.T) {
	b := model.NewBuilder("AS")
	x := b.Inport("x", model.Int32)
	cond := b.Rel("<", x, b.ConstT(model.Int32, 10))
	b.Add("Assertion", "inv", nil).From(cond)
	b.Outport("y", model.Int32, x)
	step, rec, c := run(t, b.Model())
	step(i32(5))
	rep := rec.Report()
	if rep.DecisionCovered != 1 {
		t.Fatalf("assertion pass should cover one outcome: %d", rep.DecisionCovered)
	}
	step(i32(50))
	rep = rec.Report()
	if rep.DecisionCovered != 2 {
		t.Fatalf("assertion violation should cover the second outcome: %d", rep.DecisionCovered)
	}
	// The violated branch is outcome 0 of the assertion decision.
	found := false
	for i := range c.Plan.Decisions {
		d := &c.Plan.Decisions[i]
		if d.Kind.String() == "Assertion" && rec.Total[d.OutcomeBase] != 0 {
			found = true
		}
	}
	if !found {
		t.Error("violation branch not recorded")
	}
}
