package codegen

import (
	"testing"

	"cftcg/internal/coverage"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
	"cftcg/internal/vm"
)

// run compiles a model and returns a stepper: feed raw inputs, get raw
// outputs.
func run(t *testing.T, m *model.Model) (step func(...uint64) []uint64, rec *coverage.Recorder, c *Compiled) {
	t.Helper()
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rec = coverage.NewRecorder(c.Plan)
	machine := vm.New(c.Prog, rec)
	machine.Init()
	return func(in ...uint64) []uint64 {
		rec.BeginStep()
		machine.Step(in)
		return machine.Out()
	}, rec, c
}

func f64(v float64) uint64 { return model.EncodeFloat(model.Float64, v) }
func i32(v int64) uint64   { return model.EncodeInt(model.Int32, v) }

func TestCounterWraps(t *testing.T) {
	b := model.NewBuilder("C")
	cnt := b.Add("Counter", "c", model.Params{"Init": 1.0, "Max": 3.0, "Inc": 1.0, "Type": model.Int32})
	b.Outport("o", model.Int32, cnt.Out(0))
	step, _, _ := run(t, b.Model())
	want := []int64{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if got := model.DecodeInt(model.Int32, step()[0]); got != w {
			t.Fatalf("step %d: %d, want %d", i, got, w)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	b := model.NewBuilder("Clk")
	clk := b.Add("Clock", "clk", nil)
	b.Outport("t", model.Float64, clk.Out(0))
	m := b.Model()
	m.SampleTime = 0.5
	step, _, _ := run(t, m)
	for i := 0; i < 4; i++ {
		if got := model.DecodeFloat(model.Float64, step()[0]); got != float64(i)*0.5 {
			t.Fatalf("step %d: t=%v", i, got)
		}
	}
}

func TestLookup1DRegions(t *testing.T) {
	b := model.NewBuilder("L")
	x := b.Inport("x", model.Float64)
	lk := b.Add("Lookup1D", "map", model.Params{
		"Breakpoints": []float64{0, 10, 20},
		"Table":       []float64{100, 200, 400},
	}).From(x)
	b.Outport("y", model.Float64, lk.Out(0))
	step, rec, _ := run(t, b.Model())

	cases := []struct{ in, want float64 }{
		{-5, 100},  // clamp low
		{0, 100},   // left edge of first interval
		{5, 150},   // interpolation in [0,10)
		{15, 300},  // interpolation in [10,20)
		{20, 400},  // clamp high boundary
		{999, 400}, // clamp high
	}
	for _, c := range cases {
		if got := model.DecodeFloat(model.Float64, step(f64(c.in))[0]); got != c.want {
			t.Errorf("lookup(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if rep := rec.Report(); rep.Decision() != 100 {
		t.Errorf("all 4 lookup regions visited, coverage %v", rep.Decision())
	}
}

func TestMultiportSwitchClamps(t *testing.T) {
	b := model.NewBuilder("MS")
	idx := b.Inport("idx", model.Int32)
	sw := b.Add("MultiportSwitch", "sw", model.Params{"Inputs": 3})
	b.Connect(idx, sw.In(0))
	b.Connect(b.ConstT(model.Int32, 10), sw.In(1))
	b.Connect(b.ConstT(model.Int32, 20), sw.In(2))
	b.Connect(b.ConstT(model.Int32, 30), sw.In(3))
	b.Outport("o", model.Int32, sw.Out(0))
	step, _, _ := run(t, b.Model())

	cases := []struct{ in, want int64 }{
		{1, 10}, {2, 20}, {3, 30},
		{0, 10},  // clamp below
		{-5, 10}, // clamp below
		{99, 30}, // clamp above
	}
	for _, c := range cases {
		if got := model.DecodeInt(model.Int32, step(i32(c.in))[0]); got != c.want {
			t.Errorf("select(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDeadZoneRegions(t *testing.T) {
	b := model.NewBuilder("DZ")
	x := b.Inport("x", model.Float64)
	dz := b.Add("DeadZone", "dz", model.Params{"Start": -2.0, "End": 3.0}).From(x)
	b.Outport("y", model.Float64, dz.Out(0))
	step, _, _ := run(t, b.Model())
	cases := []struct{ in, want float64 }{
		{-5, -3}, {-2, 0}, {0, 0}, {3, 0}, {7, 4},
	}
	for _, c := range cases {
		if got := model.DecodeFloat(model.Float64, step(f64(c.in))[0]); got != c.want {
			t.Errorf("deadzone(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRelayHysteresis(t *testing.T) {
	b := model.NewBuilder("R")
	x := b.Inport("x", model.Float64)
	r := b.Add("Relay", "r", model.Params{
		"OnPoint": 10.0, "OffPoint": 5.0, "OnValue": 1.0, "OffValue": 0.0,
	}).From(x)
	b.Outport("y", model.Float64, r.Out(0))
	step, _, _ := run(t, b.Model())
	seq := []struct{ in, want float64 }{
		{7, 0},  // below on-point, starts off
		{10, 1}, // switches on at the on-point
		{7, 1},  // hysteresis: stays on above off-point
		{5, 0},  // at or below off-point: off
		{9, 0},  // stays off until on-point
	}
	for i, c := range seq {
		if got := model.DecodeFloat(model.Float64, step(f64(c.in))[0]); got != c.want {
			t.Fatalf("step %d relay(%v) = %v, want %v", i, c.in, got, c.want)
		}
	}
}

func TestRateLimiter(t *testing.T) {
	b := model.NewBuilder("RL")
	x := b.Inport("x", model.Float64)
	rl := b.Add("RateLimiter", "rl", model.Params{"Rising": 2.0, "Falling": -1.0}).From(x)
	b.Outport("y", model.Float64, rl.Out(0))
	step, _, _ := run(t, b.Model())
	seq := []struct{ in, want float64 }{
		{10, 2},    // limited rise from 0
		{10, 4},    // keeps climbing by 2
		{4.5, 4.5}, // within limits
		{0, 3.5},   // limited fall
	}
	for i, c := range seq {
		if got := model.DecodeFloat(model.Float64, step(f64(c.in))[0]); got != c.want {
			t.Fatalf("step %d: %v, want %v", i, got, c.want)
		}
	}
}

func TestSignOutcomes(t *testing.T) {
	b := model.NewBuilder("S")
	x := b.Inport("x", model.Float64)
	s := b.Add("Sign", "s", nil).From(x)
	b.Outport("y", model.Float64, s.Out(0))
	step, rec, _ := run(t, b.Model())
	if got := model.DecodeFloat(model.Float64, step(f64(-7))[0]); got != -1 {
		t.Errorf("sign(-7) = %v", got)
	}
	if got := model.DecodeFloat(model.Float64, step(f64(0))[0]); got != 0 {
		t.Errorf("sign(0) = %v", got)
	}
	if got := model.DecodeFloat(model.Float64, step(f64(4))[0]); got != 1 {
		t.Errorf("sign(4) = %v", got)
	}
	if rep := rec.Report(); rep.Decision() != 100 {
		t.Errorf("all 3 sign outcomes visited: %v", rep.Decision())
	}
}

func TestIfActionMergeCascade(t *testing.T) {
	b := model.NewBuilder("IAM")
	x := b.Inport("x", model.Int32)
	ifb := b.If("sel", []string{"u1 > 10", "u1 < -10"}, x)
	merge := b.Add("Merge", "m", model.Params{"Inputs": 3, "Init": 0.0, "Type": model.Int32})

	_, hot := b.ActionSubsystem("Hot", ifb.Out(0))
	hi := hot.Inport("v", model.Int32)
	hot.Outport("o", model.Int32, hot.Gain(hi, 2)).Block().Params["Init"] = 0.0

	_, cold := b.ActionSubsystem("Cold", ifb.Out(1))
	ci := cold.Inport("v", model.Int32)
	cold.Outport("o", model.Int32, cold.Gain(ci, -1)).Block().Params["Init"] = 0.0

	_, mid := b.ActionSubsystem("Mid", ifb.Out(2))
	mi := mid.Inport("v", model.Int32)
	mid.Outport("o", model.Int32, mid.Gain(mi, 0)).Block().Params["Init"] = 0.0

	for i, name := range []string{"Hot", "Cold", "Mid"} {
		blk := b.Graph().BlockByName(name)
		b.Connect(x, model.PortRef{Block: blk.ID, Port: 1})
		b.Connect(model.PortRef{Block: blk.ID, Port: 0}, merge.In(i))
	}
	b.Outport("o", model.Int32, merge.Out(0))
	step, _, _ := run(t, b.Model())

	cases := []struct{ in, want int64 }{
		{20, 40},  // hot branch doubles
		{-20, 20}, // cold branch negates
		{5, 0},    // mid branch zeroes
		{15, 30},  // hot again
	}
	for i, c := range cases {
		if got := model.DecodeInt(model.Int32, step(i32(c.in))[0]); got != c.want {
			t.Fatalf("step %d in=%d: %d, want %d", i, c.in, got, c.want)
		}
	}
}

func TestTriggeredSubsystemRisingEdge(t *testing.T) {
	b2 := model.NewBuilder("TR")
	trig := b2.Inport("t", model.Int8)
	val := b2.Inport("v", model.Int32)
	ht := b2.Add("TriggeredSubsystem", "snap", nil)
	sub2 := model.NewBuilder("snapInner")
	inner := sub2.Inport("x", model.Int32)
	sub2.Outport("y", model.Int32, sub2.Gain(inner, 1)).Block().Params["Init"] = -1.0
	ht.Block().Sub = sub2.Graph()
	b2.Connect(trig, ht.In(0))
	b2.Connect(val, ht.In(1))
	b2.Outport("o", model.Int32, ht.Out(0))
	step, _, _ := run(t, b2.Model())

	seq := []struct {
		trig, val, want int64
	}{
		{0, 11, -1}, // not triggered: initial hold value
		{1, 22, 22}, // rising edge: sample
		{1, 33, 22}, // still high: no edge, hold
		{0, 44, 22}, // low: hold
		{1, 55, 55}, // new edge: sample
	}
	for i, c := range seq {
		got := model.DecodeInt(model.Int32, step(model.EncodeInt(model.Int8, c.trig), i32(c.val))[0])
		if got != c.want {
			t.Fatalf("step %d: %d, want %d", i, got, c.want)
		}
	}
}

func TestDiscreteIntegratorSaturates(t *testing.T) {
	b := model.NewBuilder("DI")
	x := b.Inport("x", model.Float64)
	di := b.Add("DiscreteIntegrator", "di", model.Params{
		"K": 1.0, "Init": 0.0, "Lower": -2.0, "Upper": 2.0,
	}).From(x)
	b.Outport("y", model.Float64, di.Out(0))
	m := b.Model()
	m.SampleTime = 1
	step, rec, _ := run(t, m)
	// Output is the pre-update state (non-feedthrough).
	vals := []float64{0, 1, 2, 2} // input 1 each step, saturating at 2
	for i, w := range vals {
		if got := model.DecodeFloat(model.Float64, step(f64(1))[0]); got != w {
			t.Fatalf("step %d: %v, want %v", i, got, w)
		}
	}
	for i := 0; i < 6; i++ {
		step(f64(-1))
	}
	if got := model.DecodeFloat(model.Float64, step(f64(0))[0]); got != -2 {
		t.Errorf("lower saturation: %v, want -2", got)
	}
	if rep := rec.Report(); rep.Decision() != 100 {
		t.Errorf("integrator saturation outcomes: %v", rep.Decision())
	}
}

func TestDelayNSteps(t *testing.T) {
	b := model.NewBuilder("DLY")
	x := b.Inport("x", model.Int32)
	d := b.Add("Delay", "d", model.Params{"Steps": 3, "Init": -1.0}).From(x)
	b.Outport("y", model.Int32, d.Out(0))
	step, _, _ := run(t, b.Model())
	ins := []int64{10, 20, 30, 40, 50}
	want := []int64{-1, -1, -1, 10, 20}
	for i := range ins {
		if got := model.DecodeInt(model.Int32, step(i32(ins[i]))[0]); got != want[i] {
			t.Fatalf("step %d: %d, want %d", i, got, want[i])
		}
	}
}

func TestChartExitAndTransitionActions(t *testing.T) {
	chart := &stateflow.Chart{
		Name:    "acts",
		Inputs:  []stateflow.Var{{Name: "go_", Type: model.Bool}},
		Outputs: []stateflow.Var{{Name: "trace", Type: model.Int32, Init: 0}},
		States: []*stateflow.State{
			{Name: "A", Exit: "trace = trace + 1;"},    // +1 on exit
			{Name: "B", Entry: "trace = trace + 100;"}, // +100 on entry
		},
		Transitions: []*stateflow.Transition{
			{From: "A", To: "B", Guard: "go_", Action: "trace = trace + 10;"},
		},
		Initial: "A",
	}
	b := model.NewBuilder("CA")
	g := b.Inport("g", model.Bool)
	ch := b.Chart("c", chart, g)
	b.Outport("t", model.Int32, ch.Out(0))
	step, _, _ := run(t, b.Model())

	if got := model.DecodeInt(model.Int32, step(0)[0]); got != 0 {
		t.Fatalf("no transition: trace %d", got)
	}
	// Fire: exit(+1) then action(+10) then entry(+100) = 111.
	if got := model.DecodeInt(model.Int32, step(1)[0]); got != 111 {
		t.Fatalf("transition ordering: trace %d, want 111", got)
	}
}

func TestScriptForLoopUnrolls(t *testing.T) {
	b := model.NewBuilder("FOR")
	x := b.Inport("x", model.Int32)
	ml := b.Matlab("f", `
input  int32 x;
output int32 y = 0;
for i = 5 { y = y + x + i; }
`, x)
	b.Outport("y", model.Int32, ml.Out(0))
	step, _, _ := run(t, b.Model())
	// 5x + (0+1+2+3+4) = 5x + 10.
	if got := model.DecodeInt(model.Int32, step(i32(3))[0]); got != 25 {
		t.Errorf("loop result %d, want 25", got)
	}
}

func TestProductDivide(t *testing.T) {
	b := model.NewBuilder("PD")
	x := b.Inport("x", model.Float64)
	y := b.Inport("y", model.Float64)
	b.Outport("q", model.Float64, b.Div(x, y))
	step, _, _ := run(t, b.Model())
	if got := model.DecodeFloat(model.Float64, step(f64(7), f64(2))[0]); got != 3.5 {
		t.Errorf("7/2 = %v", got)
	}
	if got := model.DecodeFloat(model.Float64, step(f64(7), f64(0))[0]); got != 0 {
		t.Errorf("7/0 must be 0 (total), got %v", got)
	}
}

func TestBitwiseOps(t *testing.T) {
	b := model.NewBuilder("BW")
	x := b.Inport("x", model.UInt8)
	y := b.Inport("y", model.UInt8)
	and := b.Add("Bitwise", "and", model.Params{"Op": "AND"}).From(x, y)
	xor := b.Add("Bitwise", "xor", model.Params{"Op": "XOR"}).From(x, y)
	b.Outport("a", model.UInt8, and.Out(0))
	b.Outport("x2", model.UInt8, xor.Out(0))
	step, _, _ := run(t, b.Model())
	out := step(model.EncodeInt(model.UInt8, 0b1100), model.EncodeInt(model.UInt8, 0b1010))
	if model.DecodeInt(model.UInt8, out[0]) != 0b1000 {
		t.Errorf("and: %b", model.DecodeInt(model.UInt8, out[0]))
	}
	if model.DecodeInt(model.UInt8, out[1]) != 0b0110 {
		t.Errorf("xor: %b", model.DecodeInt(model.UInt8, out[1]))
	}
}

func TestSwitchCaseDefault(t *testing.T) {
	b := model.NewBuilder("SC")
	x := b.Inport("x", model.Int32)
	sc := b.Add("SwitchCase", "sc", model.Params{"Cases": []int64{1, 5}})
	b.Connect(x, sc.In(0))
	b.Outport("c1", model.Bool, sc.Out(0))
	b.Outport("c5", model.Bool, sc.Out(1))
	b.Outport("dfl", model.Bool, sc.Out(2))
	step, rec, _ := run(t, b.Model())
	if out := step(i32(1)); out[0] != 1 || out[1] != 0 || out[2] != 0 {
		t.Errorf("case 1: %v", out)
	}
	if out := step(i32(5)); out[0] != 0 || out[1] != 1 || out[2] != 0 {
		t.Errorf("case 5: %v", out)
	}
	if out := step(i32(7)); out[0] != 0 || out[1] != 0 || out[2] != 1 {
		t.Errorf("default: %v", out)
	}
	if rep := rec.Report(); rep.Decision() != 100 {
		t.Errorf("all 3 case outcomes: %v", rep.Decision())
	}
}
