package codegen

import (
	"testing"

	"cftcg/internal/model"
)

func hintsFor(t *testing.T, m *model.Model) [][]float64 {
	t.Helper()
	c, err := Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return FieldHints(c.Prog)
}

func contains(hs []float64, v float64) bool {
	for _, h := range hs {
		if h == v {
			return true
		}
	}
	return false
}

func TestFieldHintsDirectComparison(t *testing.T) {
	b := model.NewBuilder("H")
	x := b.Inport("x", model.Int32)
	y := b.Inport("y", model.Int32)
	hot := b.Rel(">=", x, b.ConstT(model.Int32, 4096))
	cold := b.Rel("<", y, b.ConstT(model.Int32, -7))
	b.Outport("o", model.Bool, b.And(hot, cold))
	hints := hintsFor(t, b.Model())

	if !contains(hints[0], 4096) {
		t.Errorf("field x should hint 4096: %v", hints[0])
	}
	if !contains(hints[1], -7) {
		t.Errorf("field y should hint -7: %v", hints[1])
	}
	if contains(hints[0], -7) {
		t.Errorf("hints must be field-attributed: x has %v", hints[0])
	}
}

func TestFieldHintsThroughArithmetic(t *testing.T) {
	// The threshold is compared against x*2, still single-field tainted.
	b := model.NewBuilder("HA")
	x := b.Inport("x", model.Int32)
	b.Outport("o", model.Bool, b.Rel(">", b.Gain(x, 2), b.ConstT(model.Int32, 100)))
	hints := hintsFor(t, b.Model())
	if !contains(hints[0], 100) {
		t.Errorf("threshold through gain should be attributed: %v", hints[0])
	}
}

func TestFieldHintsMultiFieldExcluded(t *testing.T) {
	// x + y compared against 5: influenced by both fields, no attribution.
	b := model.NewBuilder("HM")
	x := b.Inport("x", model.Int32)
	y := b.Inport("y", model.Int32)
	b.Outport("o", model.Bool, b.Rel("==", b.Add2(x, y), b.ConstT(model.Int32, 5)))
	hints := hintsFor(t, b.Model())
	if contains(hints[0], 5) || contains(hints[1], 5) {
		t.Errorf("multi-field comparison must not attribute: %v / %v", hints[0], hints[1])
	}
}

func TestFieldHintsInsideScripts(t *testing.T) {
	b := model.NewBuilder("HS")
	code := b.Inport("code", model.Int32)
	ml := b.Matlab("auth", `
input  int32 code;
output bool ok = false;
if (code == 9999) { ok = true; }
`, code)
	b.Outport("o", model.Bool, ml.Out(0))
	hints := hintsFor(t, b.Model())
	if !contains(hints[0], 9999) {
		t.Errorf("script comparison constant should surface: %v", hints[0])
	}
}

func TestFieldHintsThroughState(t *testing.T) {
	// An accumulator fed by x is compared against 12: the constant should
	// attribute back to x through the state slot.
	b := model.NewBuilder("HT")
	x := b.Inport("x", model.Int32)
	ml := b.Matlab("acc", `
input  int32 x;
output bool trip = false;
state  int32 sum = 0;
sum = sum + x;
if (sum >= 12) { trip = true; }
`, x)
	b.Outport("o", model.Bool, ml.Out(0))
	hints := hintsFor(t, b.Model())
	if !contains(hints[0], 12) {
		t.Errorf("state-mediated threshold should attribute to x: %v", hints[0])
	}
}

func TestFieldHintsOnBenchmarkAuthCode(t *testing.T) {
	// EVCS-style: AuthCode compared against 4096; that constant must appear
	// in the AuthCode field's hints — the exact §5 scenario.
	bb := model.NewBuilder("AuthDemo")
	authCode := bb.Inport("AuthCode", model.Int32)
	bb.Outport("ok", model.Bool, bb.Rel("==", authCode, bb.ConstT(model.Int32, 4096)))
	hints := hintsFor(t, bb.Model())
	if !contains(hints[0], 4096) {
		t.Errorf("auth code constant: %v", hints[0])
	}
}
