package codegen

import (
	"fmt"

	"cftcg/internal/blocks"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// lowerBlock emits the step-function code for one block, storing the output
// registers into the scope. Instrumentation follows the paper's four modes:
// logic blocks probe every input condition plus the output decision (a),
// data switches probe the selected branch (b), If/SwitchCase/Enable probe
// action decisions (c), and in-block conditionals probe each implicit branch
// including else (d).
func (lw *lowerer) lowerBlock(gs *graphScope, b *model.Block) error {
	a := lw.cur
	gi := gs.gi
	out0 := model.PortRef{Block: b.ID, Port: 0}
	outDT := gi.OutType[out0] // valid when the block has outputs
	decs := lw.ix.BlockDecisions[b]
	setOut := func(r int32) { gs.vals[out0] = r }

	switch b.Kind {
	case "Inport":
		// Root inports were bound by lowerRoot; subsystem inports by
		// subsystemScope. Reaching here unbound is a bug.
		if _, ok := gs.vals[out0]; !ok {
			return fmt.Errorf("codegen: %s/%s: unbound inport", gi.Path, b.Name)
		}

	case "Outport", "Terminator", "Scope":
		// Sinks: inputs were computed by their drivers; nothing to emit.

	case "Constant":
		setOut(a.ConstVal(outDT, b.Params.Float("Value", 0)))

	case "Ground":
		setOut(a.ConstVal(outDT, 0))

	case "Clock":
		slot := lw.allocState(gi.Path+"/"+b.Name, outDT, 0)
		t := a.LoadState(outDT, slot)
		ts := a.ConstVal(outDT, lw.d.Model.SampleTime)
		a.StoreState(slot, a.Bin(ir.OpAdd, outDT, t, ts))
		setOut(t)

	case "Counter":
		init := b.Params.Float("Init", 0)
		maxv := b.Params.Float("Max", 255)
		inc := b.Params.Float("Inc", 1)
		slot := lw.allocState(gi.Path+"/"+b.Name, outDT, init)
		c := a.LoadState(outDT, slot)
		next := a.Bin(ir.OpAdd, outDT, c, a.ConstVal(outDT, inc))
		over := a.Bin(ir.OpGt, outDT, next, a.ConstVal(outDT, maxv))
		wrapped := a.Select(outDT, over, a.ConstVal(outDT, init), next)
		a.StoreState(slot, wrapped)
		setOut(c)

	case "Gain":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		setOut(a.Bin(ir.OpMul, outDT, in, a.ConstVal(outDT, b.Params.Float("Gain", 1))))

	case "Bias":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		setOut(a.Bin(ir.OpAdd, outDT, in, a.ConstVal(outDT, b.Params.Float("Bias", 0))))

	case "UnaryMinus":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		setOut(a.Un(ir.OpNeg, outDT, in))

	case "Abs":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		neg := a.Bin(ir.OpLt, outDT, in, a.ConstVal(outDT, 0))
		lw.probePair(decs[0], neg)
		setOut(a.Un(ir.OpAbs, outDT, in))

	case "Sign":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		zero := a.ConstVal(outDT, 0)
		res := a.Reg()
		isNeg := a.Bin(ir.OpLt, outDT, in, zero)
		jPos := a.JmpIfNot(isNeg)
		a.Probe(decs[0], 0)
		a.ConstTo(res, outDT, model.Encode(outDT, -1))
		jEnd1 := a.Jmp()
		a.Patch(jPos)
		isPos := a.Bin(ir.OpGt, outDT, in, zero)
		jZero := a.JmpIfNot(isPos)
		a.Probe(decs[0], 2)
		a.ConstTo(res, outDT, model.Encode(outDT, 1))
		jEnd2 := a.Jmp()
		a.Patch(jZero)
		a.Probe(decs[0], 1)
		a.ConstTo(res, outDT, model.Encode(outDT, 0))
		a.Patch(jEnd1)
		a.Patch(jEnd2)
		setOut(res)

	case "Sqrt", "Exp", "Log", "Trigonometry":
		in, err := lw.inVal(gs, b.ID, 0, model.Float64)
		if err != nil {
			return err
		}
		op := map[string]ir.Op{"Sqrt": ir.OpSqrt, "Exp": ir.OpExp, "Log": ir.OpLog}[b.Kind]
		if b.Kind == "Trigonometry" {
			switch b.Params.String("Fn", "sin") {
			case "sin":
				op = ir.OpSin
			case "cos":
				op = ir.OpCos
			case "tan":
				op = ir.OpTan
			default:
				return fmt.Errorf("codegen: %s/%s: unknown trig Fn", gi.Path, b.Name)
			}
		}
		setOut(a.Cast(outDT, model.Float64, a.Un(op, model.Float64, in)))

	case "Rounding":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		if !outDT.IsFloat() {
			setOut(in) // integers are already rounded
			break
		}
		var op ir.Op
		switch b.Params.String("Fn", "round") {
		case "floor":
			op = ir.OpFloor
		case "ceil":
			op = ir.OpCeil
		case "round":
			op = ir.OpRound
		case "fix":
			op = ir.OpTrunc
		default:
			return fmt.Errorf("codegen: %s/%s: unknown rounding Fn", gi.Path, b.Name)
		}
		setOut(a.Un(op, outDT, in))

	case "Quantizer":
		in, err := lw.inVal(gs, b.ID, 0, model.Float64)
		if err != nil {
			return err
		}
		q := a.ConstVal(model.Float64, b.Params.Float("Interval", 1))
		div := a.Bin(ir.OpDiv, model.Float64, in, q)
		r := a.Un(ir.OpRound, model.Float64, div)
		setOut(a.Cast(outDT, model.Float64, a.Bin(ir.OpMul, model.Float64, r, q)))

	case "Saturation":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		lo := a.ConstVal(outDT, b.Params.Float("Lower", 0))
		hi := a.ConstVal(outDT, b.Params.Float("Upper", 1))
		res := a.Reg()
		below := a.Bin(ir.OpLt, outDT, in, lo)
		j1 := a.JmpIfNot(below)
		a.Probe(decs[0], 0)
		a.MovTo(res, lo)
		jE1 := a.Jmp()
		a.Patch(j1)
		above := a.Bin(ir.OpGt, outDT, in, hi)
		j2 := a.JmpIfNot(above)
		a.Probe(decs[0], 2)
		a.MovTo(res, hi)
		jE2 := a.Jmp()
		a.Patch(j2)
		a.Probe(decs[0], 1)
		a.MovTo(res, in)
		a.Patch(jE1)
		a.Patch(jE2)
		setOut(res)

	case "DeadZone":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		start := a.ConstVal(outDT, b.Params.Float("Start", -1))
		end := a.ConstVal(outDT, b.Params.Float("End", 1))
		res := a.Reg()
		below := a.Bin(ir.OpLt, outDT, in, start)
		j1 := a.JmpIfNot(below)
		a.Probe(decs[0], 0)
		a.MovTo(res, a.Bin(ir.OpSub, outDT, in, start))
		jE1 := a.Jmp()
		a.Patch(j1)
		above := a.Bin(ir.OpGt, outDT, in, end)
		j2 := a.JmpIfNot(above)
		a.Probe(decs[0], 2)
		a.MovTo(res, a.Bin(ir.OpSub, outDT, in, end))
		jE2 := a.Jmp()
		a.Patch(j2)
		a.Probe(decs[0], 1)
		a.ConstTo(res, outDT, model.Encode(outDT, 0))
		a.Patch(jE1)
		a.Patch(jE2)
		setOut(res)

	case "RateLimiter":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		rising := b.Params.Float("Rising", 1)
		falling := b.Params.Float("Falling", -1)
		slot := lw.allocState(gi.Path+"/"+b.Name, outDT, b.Params.Float("Init", 0))
		prev := a.LoadState(outDT, slot)
		delta := a.Bin(ir.OpSub, outDT, in, prev)
		res := a.Reg()
		over := a.Bin(ir.OpGt, outDT, delta, a.ConstVal(outDT, rising))
		j1 := a.JmpIfNot(over)
		a.Probe(decs[0], 0)
		a.MovTo(res, a.Bin(ir.OpAdd, outDT, prev, a.ConstVal(outDT, rising)))
		jE1 := a.Jmp()
		a.Patch(j1)
		under := a.Bin(ir.OpLt, outDT, delta, a.ConstVal(outDT, falling))
		j2 := a.JmpIfNot(under)
		a.Probe(decs[0], 2)
		a.MovTo(res, a.Bin(ir.OpAdd, outDT, prev, a.ConstVal(outDT, falling)))
		jE2 := a.Jmp()
		a.Patch(j2)
		a.Probe(decs[0], 1)
		a.MovTo(res, in)
		a.Patch(jE1)
		a.Patch(jE2)
		a.StoreState(slot, res)
		setOut(res)

	case "Relay":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		onPt := a.ConstVal(outDT, b.Params.Float("OnPoint", 1))
		offPt := a.ConstVal(outDT, b.Params.Float("OffPoint", 0))
		slot := lw.allocState(gi.Path+"/"+b.Name, model.Bool, b.Params.Float("InitialOn", 0))
		on := a.LoadState(model.Bool, slot)
		stayOn := a.Bin(ir.OpGt, outDT, in, offPt)
		turnOn := a.Bin(ir.OpGe, outDT, in, onPt)
		newOn := a.Select(model.Bool, on, stayOn, turnOn)
		lw.probePair(decs[0], newOn)
		a.StoreState(slot, newOn)
		onVal := a.ConstVal(outDT, b.Params.Float("OnValue", 1))
		offVal := a.ConstVal(outDT, b.Params.Float("OffValue", 0))
		setOut(a.Select(outDT, newOn, onVal, offVal))

	case "DataTypeConversion":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		setOut(in)

	case "ZeroOrderHold":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		setOut(in)

	case "Lookup1D":
		return lw.lowerLookup(gs, b, decs, outDT)

	case "Sum":
		signs := b.Params.String("Signs", "++")
		var acc int32 = -1
		for i, sign := range signs {
			in, err := lw.inVal(gs, b.ID, i, outDT)
			if err != nil {
				return err
			}
			switch {
			case acc < 0 && sign == '+':
				acc = in
			case acc < 0:
				acc = a.Un(ir.OpNeg, outDT, in)
			case sign == '+':
				acc = a.Bin(ir.OpAdd, outDT, acc, in)
			default:
				acc = a.Bin(ir.OpSub, outDT, acc, in)
			}
		}
		setOut(acc)

	case "Product":
		ops := b.Params.String("Ops", "**")
		var acc int32 = -1
		for i, op := range ops {
			in, err := lw.inVal(gs, b.ID, i, outDT)
			if err != nil {
				return err
			}
			switch {
			case acc < 0 && op == '*':
				acc = in
			case acc < 0:
				one := a.ConstVal(outDT, 1)
				acc = a.Bin(ir.OpDiv, outDT, one, in)
			case op == '*':
				acc = a.Bin(ir.OpMul, outDT, acc, in)
			default:
				acc = a.Bin(ir.OpDiv, outDT, acc, in)
			}
		}
		setOut(acc)

	case "MinMax":
		n := gi.InCount[b.ID]
		cmpOp := ir.OpLt
		if b.Params.String("Fn", "min") == "max" {
			cmpOp = ir.OpGt
		}
		best, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		bestReg := a.Reg()
		a.MovTo(bestReg, best)
		idxReg := a.Reg()
		a.ConstTo(idxReg, model.Int32, 0)
		for i := 1; i < n; i++ {
			in, err := lw.inVal(gs, b.ID, i, outDT)
			if err != nil {
				return err
			}
			better := a.Bin(cmpOp, outDT, in, bestReg)
			a.MovTo(bestReg, a.Select(outDT, better, in, bestReg))
			iConst := a.Const(model.Int32, model.EncodeInt(model.Int32, int64(i)))
			a.MovTo(idxReg, a.Select(model.Int32, better, iConst, idxReg))
		}
		if len(decs) > 0 {
			lw.probeIndex(decs[0], idxReg, n)
		}
		setOut(bestReg)

	case "RelationalOperator":
		t := promoteIn(gi, b.ID, 0, 1)
		x, err := lw.inVal(gs, b.ID, 0, t)
		if err != nil {
			return err
		}
		y, err := lw.inVal(gs, b.ID, 1, t)
		if err != nil {
			return err
		}
		op, err := relOp(b.Params.String("Op", "=="))
		if err != nil {
			return fmt.Errorf("%s/%s: %w", gi.Path, b.Name, err)
		}
		setOut(a.Bin(op, t, x, y))

	case "CompareToConstant":
		t := gi.InType(b.ID, 0)
		x, err := lw.inVal(gs, b.ID, 0, t)
		if err != nil {
			return err
		}
		op, err := relOp(b.Params.String("Op", "=="))
		if err != nil {
			return fmt.Errorf("%s/%s: %w", gi.Path, b.Name, err)
		}
		c := a.ConstVal(t, b.Params.Float("Value", 0))
		setOut(a.Bin(op, t, x, c))

	case "CompareToZero":
		t := gi.InType(b.ID, 0)
		x, err := lw.inVal(gs, b.ID, 0, t)
		if err != nil {
			return err
		}
		op, err := relOp(b.Params.String("Op", "=="))
		if err != nil {
			return fmt.Errorf("%s/%s: %w", gi.Path, b.Name, err)
		}
		setOut(a.Bin(op, t, x, a.ConstVal(t, 0)))

	case "LogicalOperator":
		return lw.lowerLogic(gs, b, decs)

	case "Bitwise":
		t := gi.InType(b.ID, 0)
		if !t.IsInteger() && !t.IsBool() {
			return fmt.Errorf("codegen: %s/%s: bitwise needs integer input, got %s", gi.Path, b.Name, t)
		}
		x, err := lw.inVal(gs, b.ID, 0, t)
		if err != nil {
			return err
		}
		y, err := lw.inVal(gs, b.ID, 1, t)
		if err != nil {
			return err
		}
		var op ir.Op
		switch b.Params.String("Op", "AND") {
		case "AND":
			op = ir.OpBitAnd
		case "OR":
			op = ir.OpBitOr
		case "XOR":
			op = ir.OpBitXor
		case "SHL":
			op = ir.OpShl
		case "SHR":
			op = ir.OpShr
		default:
			return fmt.Errorf("codegen: %s/%s: unknown bitwise Op", gi.Path, b.Name)
		}
		setOut(a.Bin(op, t, x, y))

	case "Switch":
		cond, err := lw.switchCond(gs, b)
		if err != nil {
			return err
		}
		lw.probePair(decs[0], cond)
		x, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		y, err := lw.inVal(gs, b.ID, 2, outDT)
		if err != nil {
			return err
		}
		setOut(a.Select(outDT, cond, x, y))

	case "MultiportSwitch":
		n := int(b.Params.Int("Inputs", 2))
		idxT := gi.InType(b.ID, 0)
		rawIdx, err := lw.inVal(gs, b.ID, 0, idxT)
		if err != nil {
			return err
		}
		idx := a.Cast(model.Int32, idxT, rawIdx)
		one := a.Const(model.Int32, model.EncodeInt(model.Int32, 1))
		nn := a.Const(model.Int32, model.EncodeInt(model.Int32, int64(n)))
		idx = a.Bin(ir.OpMax, model.Int32, idx, one)
		idx = a.Bin(ir.OpMin, model.Int32, idx, nn)
		zeroBased := a.Bin(ir.OpSub, model.Int32, idx, one)
		lw.probeIndex(decs[0], zeroBased, n)
		// Fold a select chain from the last data input backwards.
		res, err := lw.inVal(gs, b.ID, n, outDT)
		if err != nil {
			return err
		}
		for k := n - 1; k >= 1; k-- {
			in, err := lw.inVal(gs, b.ID, k, outDT)
			if err != nil {
				return err
			}
			kc := a.Const(model.Int32, model.EncodeInt(model.Int32, int64(k-1)))
			eq := a.Bin(ir.OpEq, model.Int32, zeroBased, kc)
			res = a.Select(outDT, eq, in, res)
		}
		setOut(res)

	case "Merge":
		setOut(a.LoadState(gs.mergeType[b], gs.mergeSlots[b]))

	case "UnitDelay", "Memory":
		slot := lw.allocState(gi.Path+"/"+b.Name, outDT, b.Params.Float("Init", 0))
		setOut(a.LoadState(outDT, slot))
		gs.deferred = append(gs.deferred, func() error {
			in, err := lw.inVal(gs, b.ID, 0, outDT)
			if err != nil {
				return err
			}
			lw.cur.StoreState(slot, in)
			return nil
		})

	case "Delay":
		steps := int(b.Params.Int("Steps", 1))
		if steps < 1 {
			return fmt.Errorf("codegen: %s/%s: Steps must be >= 1", gi.Path, b.Name)
		}
		init := b.Params.Float("Init", 0)
		slots := make([]int, steps)
		for i := range slots {
			slots[i] = lw.allocState(fmt.Sprintf("%s/%s.z%d", gi.Path, b.Name, i), outDT, init)
		}
		setOut(a.LoadState(outDT, slots[0]))
		gs.deferred = append(gs.deferred, func() error {
			in, err := lw.inVal(gs, b.ID, 0, outDT)
			if err != nil {
				return err
			}
			for i := 0; i+1 < steps; i++ {
				v := lw.cur.LoadState(outDT, slots[i+1])
				lw.cur.StoreState(slots[i], v)
			}
			lw.cur.StoreState(slots[steps-1], in)
			return nil
		})

	case "DiscreteIntegrator":
		return lw.lowerIntegrator(gs, b, decs, outDT)

	case "DetectChange", "DetectIncrease", "DetectDecrease":
		t := gi.InType(b.ID, 0)
		in, err := lw.inVal(gs, b.ID, 0, t)
		if err != nil {
			return err
		}
		slot := lw.allocState(gi.Path+"/"+b.Name, t, b.Params.Float("Init", 0))
		prev := a.LoadState(t, slot)
		var op ir.Op
		switch b.Kind {
		case "DetectChange":
			op = ir.OpNe
		case "DetectIncrease":
			op = ir.OpGt
		default:
			op = ir.OpLt
		}
		res := a.Bin(op, t, in, prev)
		a.StoreState(slot, in)
		lw.probePair(decs[0], res)
		setOut(res)

	case "IntervalTest":
		t := gi.InType(b.ID, 0)
		in, err := lw.inVal(gs, b.ID, 0, t)
		if err != nil {
			return err
		}
		lo := a.ConstVal(t, b.Params.Float("Lo", 0))
		hi := a.ConstVal(t, b.Params.Float("Hi", 1))
		inside := a.Bin(ir.OpAnd, model.Bool,
			a.Bin(ir.OpGe, t, in, lo),
			a.Bin(ir.OpLe, t, in, hi))
		lw.probePair(decs[0], inside)
		setOut(inside)

	case "Backlash":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		half := b.Params.Float("Width", 1) / 2
		slot := lw.allocState(gi.Path+"/"+b.Name, outDT, b.Params.Float("Init", 0))
		y := a.LoadState(outDT, slot)
		halfC := a.ConstVal(outDT, half)
		res := a.Reg()
		upper := a.Bin(ir.OpGt, outDT, in, a.Bin(ir.OpAdd, outDT, y, halfC))
		j1 := a.JmpIfNot(upper)
		a.Probe(decs[0], 2)
		a.MovTo(res, a.Bin(ir.OpSub, outDT, in, halfC))
		jE1 := a.Jmp()
		a.Patch(j1)
		lower := a.Bin(ir.OpLt, outDT, in, a.Bin(ir.OpSub, outDT, y, halfC))
		j2 := a.JmpIfNot(lower)
		a.Probe(decs[0], 0)
		a.MovTo(res, a.Bin(ir.OpAdd, outDT, in, halfC))
		jE2 := a.Jmp()
		a.Patch(j2)
		a.Probe(decs[0], 1)
		a.MovTo(res, y)
		a.Patch(jE1)
		a.Patch(jE2)
		a.StoreState(slot, res)
		setOut(res)

	case "WrapToZero":
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		th := a.ConstVal(outDT, b.Params.Float("Threshold", 255))
		wrapped := a.Bin(ir.OpGt, outDT, in, th)
		lw.probePair(decs[0], wrapped)
		setOut(a.Select(outDT, wrapped, a.ConstVal(outDT, 0), in))

	case "Assertion":
		t := gi.InType(b.ID, 0)
		in, err := gs.val(b.ID, 0)
		if err != nil {
			return err
		}
		ok := a.Truth(t, in)
		lw.probePair(decs[0], ok)

	case "If":
		return lw.lowerIf(gs, b, decs)

	case "SwitchCase":
		return lw.lowerSwitchCase(gs, b, decs)

	case "Subsystem":
		inner, err := lw.subsystemScope(gs, b)
		if err != nil {
			return err
		}
		if err := lw.lowerGraphBody(inner); err != nil {
			return err
		}
		outs, err := lw.subsystemOutputs(gs, b, inner)
		if err != nil {
			return err
		}
		for i, r := range outs {
			gs.vals[model.PortRef{Block: b.ID, Port: i}] = r
		}

	case "EnabledSubsystem":
		ctrlT := gi.InType(b.ID, 0)
		ctrl, err := gs.val(b.ID, 0)
		if err != nil {
			return err
		}
		zero := a.ConstVal(ctrlT, 0)
		en := a.Bin(ir.OpGt, ctrlT, ctrl, zero)
		lw.probePair(decs[0], en)
		return lw.lowerConditionalBody(gs, b, en)

	case "TriggeredSubsystem":
		ctrlT := gi.InType(b.ID, 0)
		ctrl, err := gs.val(b.ID, 0)
		if err != nil {
			return err
		}
		high := a.Bin(ir.OpGt, ctrlT, ctrl, a.ConstVal(ctrlT, 0))
		slot := lw.allocState(gi.Path+"/"+b.Name+".prevtrig", model.Bool, 0)
		prev := a.LoadState(model.Bool, slot)
		fired := a.Bin(ir.OpAnd, model.Bool, high, a.Un(ir.OpNot, model.Bool, prev))
		a.StoreState(slot, high)
		lw.probePair(decs[0], fired)
		return lw.lowerConditionalBody(gs, b, fired)

	case "ActionSubsystem":
		action, err := gs.val(b.ID, 0)
		if err != nil {
			return err
		}
		return lw.lowerConditionalBody(gs, b, action)

	case "MatlabFunction":
		return lw.lowerMatlabFunction(gs, b)

	case "Chart":
		return lw.lowerChart(gs, b)

	default:
		if custom, ok := customLowerers[b.Kind]; ok {
			return custom(lw, gs, b)
		}
		return fmt.Errorf("codegen: %s/%s: no lowering for kind %s", gi.Path, b.Name, b.Kind)
	}
	return nil
}

// promoteIn returns the promotion of two input port types.
func promoteIn(gi *blocks.GraphInfo, id model.BlockID, p0, p1 int) model.DType {
	a := gi.InType(id, p0)
	b := gi.InType(id, p1)
	if rankOf(a) >= rankOf(b) {
		return a
	}
	return b
}

func rankOf(d model.DType) int {
	return int(d) // DType constants are declared in promotion order
}

// switchCond evaluates a Switch block's criteria over control input 1.
func (lw *lowerer) switchCond(gs *graphScope, b *model.Block) (int32, error) {
	a := lw.cur
	ctrlT := gs.gi.InType(b.ID, 1)
	ctrl, err := gs.val(b.ID, 1)
	if err != nil {
		return 0, err
	}
	switch crit := b.Params.String("Criteria", "~=0"); crit {
	case "~=0":
		return a.Truth(ctrlT, ctrl), nil
	case ">=", ">":
		// Threshold comparison happens in double, like generated C casts.
		c := a.Cast(model.Float64, ctrlT, ctrl)
		th := a.ConstVal(model.Float64, b.Params.Float("Threshold", 0))
		op := ir.OpGe
		if crit == ">" {
			op = ir.OpGt
		}
		return a.Bin(op, model.Float64, c, th), nil
	default:
		return 0, fmt.Errorf("codegen: %s/%s: unknown switch criteria %q", gs.gi.Path, b.Name, crit)
	}
}

// lowerLogic emits a logic block: condition probes on every input (mode a),
// then the combined output with its decision probe.
func (lw *lowerer) lowerLogic(gs *graphScope, b *model.Block, decs []int) error {
	a := lw.cur
	n := gs.gi.InCount[b.ID]
	conds := lw.ix.BlockConds[b]
	op := b.Params.String("Op", "AND")

	bools := make([]int32, n)
	for i := 0; i < n; i++ {
		t := gs.gi.InType(b.ID, i)
		v, err := gs.val(b.ID, i)
		if err != nil {
			return err
		}
		bools[i] = a.Truth(t, v)
		if i < len(conds) {
			a.CondProbe(conds[i], bools[i])
		}
	}

	var res int32
	switch op {
	case "NOT":
		res = a.Un(ir.OpNot, model.Bool, bools[0])
	case "AND", "NAND":
		res = bools[0]
		for _, x := range bools[1:] {
			res = a.Bin(ir.OpAnd, model.Bool, res, x)
		}
		if op == "NAND" {
			res = a.Un(ir.OpNot, model.Bool, res)
		}
	case "OR", "NOR":
		res = bools[0]
		for _, x := range bools[1:] {
			res = a.Bin(ir.OpOr, model.Bool, res, x)
		}
		if op == "NOR" {
			res = a.Un(ir.OpNot, model.Bool, res)
		}
	case "XOR":
		res = bools[0]
		for _, x := range bools[1:] {
			res = a.Bin(ir.OpXor, model.Bool, res, x)
		}
	default:
		return fmt.Errorf("codegen: %s/%s: unknown logic Op %q", gs.gi.Path, b.Name, op)
	}
	lw.probePair(decs[0], res)
	gs.vals[model.PortRef{Block: b.ID, Port: 0}] = res
	return nil
}

// lowerLookup emits a Lookup1D region chain: clamp-low, each interpolation
// interval, clamp-high — each region a decision outcome (mode d).
func (lw *lowerer) lowerLookup(gs *graphScope, b *model.Block, decs []int, outDT model.DType) error {
	a := lw.cur
	bp := b.Params.Floats("Breakpoints", nil)
	tab := b.Params.Floats("Table", nil)
	if len(tab) != len(bp) {
		return fmt.Errorf("codegen: %s/%s: Table and Breakpoints lengths differ", gs.gi.Path, b.Name)
	}
	in, err := lw.inVal(gs, b.ID, 0, model.Float64)
	if err != nil {
		return err
	}
	n := len(bp)
	res := a.Reg() // float64 result
	var ends []int

	// Region 0: below the first breakpoint.
	b0 := a.ConstVal(model.Float64, bp[0])
	below := a.Bin(ir.OpLt, model.Float64, in, b0)
	j := a.JmpIfNot(below)
	a.Probe(decs[0], 0)
	a.ConstTo(res, model.Float64, model.EncodeFloat(model.Float64, tab[0]))
	ends = append(ends, a.Jmp())
	a.Patch(j)

	// Interior intervals.
	for k := 0; k+1 < n; k++ {
		hi := a.ConstVal(model.Float64, bp[k+1])
		inRange := a.Bin(ir.OpLt, model.Float64, in, hi)
		var jn int
		if k+2 < n {
			jn = a.JmpIfNot(inRange)
		} else {
			jn = a.JmpIfNot(inRange) // last interval falls through to clamp-high
		}
		a.Probe(decs[0], k+1)
		// res = t0 + (in-b0) * (t1-t0)/(b1-b0)
		lo := a.ConstVal(model.Float64, bp[k])
		dx := a.Bin(ir.OpSub, model.Float64, in, lo)
		slope := 0.0
		if bp[k+1] != bp[k] {
			slope = (tab[k+1] - tab[k]) / (bp[k+1] - bp[k])
		}
		sl := a.ConstVal(model.Float64, slope)
		t0 := a.ConstVal(model.Float64, tab[k])
		a.MovTo(res, a.Bin(ir.OpAdd, model.Float64, t0, a.Bin(ir.OpMul, model.Float64, dx, sl)))
		ends = append(ends, a.Jmp())
		a.Patch(jn)
	}

	// Region n: at or above the last breakpoint.
	a.Probe(decs[0], n)
	a.ConstTo(res, model.Float64, model.EncodeFloat(model.Float64, tab[n-1]))
	for _, e := range ends {
		a.Patch(e)
	}
	gs.vals[model.PortRef{Block: b.ID, Port: 0}] = a.Cast(outDT, model.Float64, res)
	return nil
}

// lowerIntegrator emits a forward-Euler discrete integrator. The state
// update (and its saturation decision, when bounded) runs in the deferred
// phase; the output is the pre-update state, so the block is
// non-feedthrough.
func (lw *lowerer) lowerIntegrator(gs *graphScope, b *model.Block, decs []int, outDT model.DType) error {
	a := lw.cur
	slot := lw.allocState(gs.gi.Path+"/"+b.Name, outDT, b.Params.Float("Init", 0))
	gs.vals[model.PortRef{Block: b.ID, Port: 0}] = a.LoadState(outDT, slot)

	k := b.Params.Float("K", 1)
	ts := lw.d.Model.SampleTime
	_, bounded := b.Params["Lower"]

	gs.deferred = append(gs.deferred, func() error {
		a := lw.cur
		in, err := lw.inVal(gs, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		y := a.LoadState(outDT, slot)
		dy := a.Bin(ir.OpMul, outDT, in, a.ConstVal(outDT, k*ts))
		next := a.Bin(ir.OpAdd, outDT, y, dy)
		if bounded {
			lo := a.ConstVal(outDT, b.Params.Float("Lower", 0))
			hi := a.ConstVal(outDT, b.Params.Float("Upper", 1))
			res := a.Reg()
			below := a.Bin(ir.OpLt, outDT, next, lo)
			j1 := a.JmpIfNot(below)
			a.Probe(decs[0], 0)
			a.MovTo(res, lo)
			jE1 := a.Jmp()
			a.Patch(j1)
			above := a.Bin(ir.OpGt, outDT, next, hi)
			j2 := a.JmpIfNot(above)
			a.Probe(decs[0], 2)
			a.MovTo(res, hi)
			jE2 := a.Jmp()
			a.Patch(j2)
			a.Probe(decs[0], 1)
			a.MovTo(res, next)
			a.Patch(jE1)
			a.Patch(jE2)
			next = res
		}
		a.StoreState(slot, next)
		return nil
	})
	return nil
}

// lowerIf emits the if/elseif/else cascade of an If block: each condition is
// its own boolean decision probed only when reached, exactly like the
// generated C (mode c).
func (lw *lowerer) lowerIf(gs *graphScope, b *model.Block, decs []int) error {
	a := lw.cur
	exprs := lw.d.IfConds[b]
	n := gs.gi.InCount[b.ID]

	env := newScriptEnv()
	for i := 0; i < n; i++ {
		t := gs.gi.InType(b.ID, i)
		v, err := gs.val(b.ID, i)
		if err != nil {
			return err
		}
		env.bind(fmt.Sprintf("u%d", i+1), v, t)
	}

	// Allocate action output registers, all initially false.
	outs := make([]int32, len(exprs)+1)
	for i := range outs {
		outs[i] = a.Reg()
		a.ConstTo(outs[i], model.Bool, 0)
	}

	var ends []int
	for i, e := range exprs {
		c, err := lw.evalCond(env, e)
		if err != nil {
			return err
		}
		lw.probePair(decs[i], c)
		j := a.JmpIfNot(c)
		a.ConstTo(outs[i], model.Bool, 1)
		ends = append(ends, a.Jmp())
		a.Patch(j)
	}
	a.ConstTo(outs[len(exprs)], model.Bool, 1) // else action
	for _, e := range ends {
		a.Patch(e)
	}
	for i, r := range outs {
		gs.vals[model.PortRef{Block: b.ID, Port: i}] = r
	}
	return nil
}

// lowerSwitchCase emits the C switch of a SwitchCase block (mode c).
func (lw *lowerer) lowerSwitchCase(gs *graphScope, b *model.Block, decs []int) error {
	a := lw.cur
	cases := b.Params.Ints("Cases", nil)
	t := gs.gi.InType(b.ID, 0)
	raw, err := gs.val(b.ID, 0)
	if err != nil {
		return err
	}
	v := a.Cast(model.Int32, t, raw)

	outs := make([]int32, len(cases)+1)
	for i := range outs {
		outs[i] = a.Reg()
		a.ConstTo(outs[i], model.Bool, 0)
	}
	var ends []int
	for k, cv := range cases {
		kc := a.Const(model.Int32, model.EncodeInt(model.Int32, cv))
		eq := a.Bin(ir.OpEq, model.Int32, v, kc)
		j := a.JmpIfNot(eq)
		a.Probe(decs[0], k)
		a.ConstTo(outs[k], model.Bool, 1)
		ends = append(ends, a.Jmp())
		a.Patch(j)
	}
	a.Probe(decs[0], len(cases))
	a.ConstTo(outs[len(cases)], model.Bool, 1)
	for _, e := range ends {
		a.Patch(e)
	}
	for i, r := range outs {
		gs.vals[model.PortRef{Block: b.ID, Port: i}] = r
	}
	return nil
}

// lowerMatlabFunction emits a MATLAB Function body: inputs bound to ports,
// outputs/locals reset each step, state variables persisted in state slots.
func (lw *lowerer) lowerMatlabFunction(gs *graphScope, b *model.Block) error {
	a := lw.cur
	f := lw.d.Funcs[b]
	env := newScriptEnv()

	for i, d := range f.Inputs() {
		v, err := lw.inVal(gs, b.ID, i, d.Type)
		if err != nil {
			return err
		}
		env.bind(d.Name, v, d.Type)
	}
	for _, d := range f.Outputs() {
		r := a.Reg()
		a.ConstTo(r, d.Type, model.Encode(d.Type, d.Init))
		env.bind(d.Name, r, d.Type)
	}
	for _, d := range f.Locals() {
		r := a.Reg()
		a.ConstTo(r, d.Type, model.Encode(d.Type, d.Init))
		env.bind(d.Name, r, d.Type)
	}
	states := f.States()
	slots := make([]int, len(states))
	for i, d := range states {
		slots[i] = lw.allocState(fmt.Sprintf("%s/%s.%s", gs.gi.Path, b.Name, d.Name), d.Type, d.Init)
		r := a.Reg()
		a.MovTo(r, a.LoadState(d.Type, slots[i]))
		env.bind(d.Name, r, d.Type)
	}

	if err := lw.execStmts(env, f.Body); err != nil {
		return err
	}

	for i, d := range states {
		v, _ := env.lookup(d.Name)
		a.StoreState(slots[i], v.reg)
	}
	for i, d := range f.Outputs() {
		v, _ := env.lookup(d.Name)
		gs.vals[model.PortRef{Block: b.ID, Port: i}] = v.reg
	}
	return nil
}

// CustomLowerer lowers a user-registered block kind; examples/customblock
// installs one. It receives internal lowering hooks via LowerContext.
type CustomLowerer func(ctx *LowerContext, b *model.Block) error

var customLowerers = map[string]func(lw *lowerer, gs *graphScope, b *model.Block) error{}

// RegisterLowerer installs IR lowering for a custom block kind registered
// with blocks.Register.
func RegisterLowerer(kind string, fn CustomLowerer) {
	customLowerers[kind] = func(lw *lowerer, gs *graphScope, b *model.Block) error {
		return fn(&LowerContext{lw: lw, gs: gs}, b)
	}
}

// LowerContext is the limited lowering API exposed to custom blocks.
type LowerContext struct {
	lw *lowerer
	gs *graphScope
}

// Asm returns the active assembler.
func (c *LowerContext) Asm() *ir.Asm { return c.lw.cur }

// Input returns the register of input port p cast to want.
func (c *LowerContext) Input(b *model.Block, p int, want model.DType) (int32, error) {
	return c.lw.inVal(c.gs, b.ID, p, want)
}

// InputType returns the resolved type of input port p.
func (c *LowerContext) InputType(b *model.Block, p int) model.DType {
	return c.gs.gi.InType(b.ID, p)
}

// OutputType returns the resolved type of output port p.
func (c *LowerContext) OutputType(b *model.Block, p int) model.DType {
	return c.gs.gi.OutType[model.PortRef{Block: b.ID, Port: p}]
}

// SetOutput binds output port p to register r.
func (c *LowerContext) SetOutput(b *model.Block, p int, r int32) {
	c.gs.vals[model.PortRef{Block: b.ID, Port: p}] = r
}

// AllocState reserves a persistent state slot initialized to init.
func (c *LowerContext) AllocState(name string, dt model.DType, init float64) int {
	return c.lw.allocState(name, dt, init)
}
