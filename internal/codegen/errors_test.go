package codegen

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

func expectCompileError(t *testing.T, m *model.Model, want string) {
	t.Helper()
	_, err := Compile(m)
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("want error containing %q, got %v", want, err)
	}
}

func TestBadSwitchCriteria(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Int32)
	h := b.Add("Switch", "sw", model.Params{"Criteria": "<=weird"})
	b.Connect(x, h.In(0))
	b.Connect(x, h.In(1))
	b.Connect(x, h.In(2))
	b.Outport("o", model.Int32, h.Out(0))
	expectCompileError(t, b.Model(), "unknown switch criteria")
}

func TestBadTrigFn(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Float64)
	h := b.Add("Trigonometry", "t", model.Params{"Fn": "sinh"}).From(x)
	b.Outport("o", model.Float64, h.Out(0))
	expectCompileError(t, b.Model(), "unknown trig Fn")
}

func TestBadRoundingFn(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Float64)
	h := b.Add("Rounding", "r", model.Params{"Fn": "bankers"}).From(x)
	b.Outport("o", model.Float64, h.Out(0))
	expectCompileError(t, b.Model(), "unknown rounding Fn")
}

func TestBitwiseOnFloatRejected(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Float64)
	h := b.Add("Bitwise", "bw", model.Params{"Op": "AND"}).From(x, x)
	b.Outport("o", model.Float64, h.Out(0))
	expectCompileError(t, b.Model(), "integer input")
}

func TestLookupLengthMismatch(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Float64)
	h := b.Add("Lookup1D", "lk", model.Params{
		"Breakpoints": []float64{0, 1, 2},
		"Table":       []float64{5, 6},
	}).From(x)
	b.Outport("o", model.Float64, h.Out(0))
	expectCompileError(t, b.Model(), "lengths differ")
}

func TestSwitchCaseMissingCases(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Int32)
	h := b.Add("SwitchCase", "sc", model.Params{})
	b.Connect(x, h.In(0))
	_, err := Compile(b.Model())
	if err == nil || !strings.Contains(err.Error(), "Cases") {
		t.Errorf("want Cases error, got %v", err)
	}
}

func TestIfWithoutConditions(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Int32)
	h := b.Add("If", "sel", model.Params{"Inputs": 1})
	b.Connect(x, h.In(0))
	_, err := Compile(b.Model())
	if err == nil || !strings.Contains(err.Error(), "Conditions") {
		t.Errorf("want Conditions error, got %v", err)
	}
}

func TestMergeFromNonConditionalRejected(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Float64)
	mg := b.Add("Merge", "m", model.Params{"Inputs": 2})
	b.Connect(b.Gain(x, 1), mg.In(0))
	b.Connect(b.Gain(x, 2), mg.In(1))
	b.Outport("o", model.Float64, mg.Out(0))
	expectCompileError(t, b.Model(), "conditionally executed")
}

func TestBadMutationScriptSyntax(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Int32)
	b.Matlab("bad", "output int32 y;\ny = x +;", x)
	_, err := Compile(b.Model())
	if err == nil {
		t.Error("syntax error not surfaced")
	}
}

func TestDelayBadSteps(t *testing.T) {
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Float64)
	h := b.Add("Delay", "d", model.Params{"Steps": 0}).From(x)
	b.Outport("o", model.Float64, h.Out(0))
	expectCompileError(t, b.Model(), "Steps must be")
}

func TestBadRelationalOperatorRejected(t *testing.T) {
	// Formerly a panic deep in lowering; now a compile error naming the block.
	b := model.NewBuilder("E")
	x := b.Inport("x", model.Int32)
	h := b.Add("RelationalOperator", "cmp", model.Params{"Op": "<=>"})
	b.Connect(x, h.In(0))
	b.Connect(x, h.In(1))
	b.Outport("o", model.Bool, h.Out(0))
	expectCompileError(t, b.Model(), "not a relational operator")
}
