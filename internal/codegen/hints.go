package codegen

import (
	"sort"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// FieldHints statically extracts, for every input field, the constants the
// program compares that field's dataflow against. These are the "dynamic
// numerical range constraints" the paper's §5 discussion proposes deriving
// with formal methods: an int32 inport that is only ever compared against
// opcodes 0..3 and a threshold 4096 yields exactly those values (±1) as
// high-value mutation candidates.
//
// The analysis is a single linear taint pass over the step function: each
// register carries the set of input fields influencing it (collapsed to
// "multiple" beyond one); comparisons between a single-field value and a
// constant contribute that constant to the field's hint list. Taint flows
// through state slots so thresholds on accumulated values still attribute
// to the accumulating field.
func FieldHints(p *ir.Program) [][]float64 {
	const (
		taintNone  = -1
		taintMulti = -2
	)
	regTaint := make([]int, p.NumRegs)
	stTaint := make([]int, p.NumState)
	regConst := make([]bool, p.NumRegs)
	regConstVal := make([]float64, p.NumRegs)
	for i := range regTaint {
		regTaint[i] = taintNone
	}
	for i := range stTaint {
		stTaint[i] = taintNone
	}

	hints := make([]map[float64]bool, len(p.In))
	for i := range hints {
		hints[i] = map[float64]bool{}
	}
	merge := func(a, b int) int {
		switch {
		case a == taintNone:
			return b
		case b == taintNone:
			return a
		case a == b:
			return a
		default:
			return taintMulti
		}
	}
	record := func(field int, v float64) {
		if field >= 0 && field < len(hints) {
			hints[field][v] = true
		}
	}

	// Two passes so taint that cycles through state slots stabilizes.
	for pass := 0; pass < 2; pass++ {
		for i := range p.Step {
			ins := &p.Step[i]
			switch ins.Op {
			case ir.OpConst:
				regTaint[ins.Dst] = taintNone
				regConst[ins.Dst] = true
				regConstVal[ins.Dst] = model.Decode(ins.DT, ins.Imm)
			case ir.OpLoadIn:
				regTaint[ins.Dst] = int(ins.Imm)
				regConst[ins.Dst] = false
			case ir.OpLoadState:
				regTaint[ins.Dst] = stTaint[ins.Imm]
				regConst[ins.Dst] = false
			case ir.OpStoreState:
				stTaint[ins.Imm] = merge(stTaint[ins.Imm], regTaint[ins.A])
			case ir.OpMov, ir.OpNeg, ir.OpAbs, ir.OpNot, ir.OpTruth, ir.OpCast,
				ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
				ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
				regTaint[ins.Dst] = regTaint[ins.A]
				regConst[ins.Dst] = ins.Op == ir.OpMov && regConst[ins.A]
				if regConst[ins.Dst] {
					regConstVal[ins.Dst] = regConstVal[ins.A]
				}
			case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
				// Comparison: constant vs single-field value -> hint.
				if regConst[ins.B] && regTaint[ins.A] >= 0 {
					record(regTaint[ins.A], regConstVal[ins.B])
				}
				if regConst[ins.A] && regTaint[ins.B] >= 0 {
					record(regTaint[ins.B], regConstVal[ins.A])
				}
				regTaint[ins.Dst] = merge(regTaint[ins.A], regTaint[ins.B])
				regConst[ins.Dst] = false
			case ir.OpSelect:
				regTaint[ins.Dst] = merge(merge(regTaint[ins.A], regTaint[ins.B]), regTaint[ins.C])
				regConst[ins.Dst] = false
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax,
				ir.OpAnd, ir.OpOr, ir.OpXor,
				ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr:
				regTaint[ins.Dst] = merge(regTaint[ins.A], regTaint[ins.B])
				regConst[ins.Dst] = false
			}
		}
	}

	out := make([][]float64, len(p.In))
	for i, set := range hints {
		for v := range set {
			out[i] = append(out[i], v)
		}
		sort.Float64s(out[i])
	}
	return out
}
