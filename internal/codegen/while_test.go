package codegen

import (
	"bytes"
	"math/rand"
	"testing"

	"cftcg/internal/coverage"
	"cftcg/internal/interp"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// whileModel: integer square root by repeated subtraction — a genuine
// data-dependent loop.
func whileModel(t *testing.T) *model.Model {
	t.Helper()
	b := model.NewBuilder("Isqrt")
	x := b.Inport("x", model.Int32)
	ml := b.Matlab("isqrt", `
input  int32 x;
output int32 root = 0;
var    int32 n = 0;
var    int32 odd = 1;
n = x;
while (n >= odd) {
    n = n - odd;
    odd = odd + 2;
    root = root + 1;
}
`, x)
	b.Outport("root", model.Int32, ml.Out(0))
	return b.Model()
}

func TestWhileLoopComputes(t *testing.T) {
	c, err := Compile(whileModel(t))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	m := vm.New(c.Prog, nil)
	m.Init()
	cases := []struct{ in, want int64 }{
		{0, 0}, {1, 1}, {3, 1}, {4, 2}, {15, 3}, {16, 4}, {99, 9}, {100, 10}, {1000000, 1000},
	}
	for _, tc := range cases {
		m.Step([]uint64{model.EncodeInt(model.Int32, tc.in)})
		if got := model.DecodeInt(model.Int32, m.Out()[0]); got != tc.want {
			t.Errorf("isqrt(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestWhileLoopIterationCap(t *testing.T) {
	// isqrt needs ~sqrt(x) iterations; beyond MaxWhileIter^2 the cap cuts
	// the loop and the root saturates at the cap.
	c, err := Compile(whileModel(t))
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(c.Prog, nil)
	m.Init()
	m.Step([]uint64{model.EncodeInt(model.Int32, 2000000000)}) // sqrt ~ 44721 > cap
	got := model.DecodeInt(model.Int32, m.Out()[0])
	if got != 1000 {
		t.Errorf("capped loop: root = %d, want exactly the 1000-iteration cap", got)
	}
}

func TestWhileIsADecision(t *testing.T) {
	c, err := Compile(whileModel(t))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for i := range c.Plan.Decisions {
		if c.Plan.Decisions[i].Label == "Isqrt/isqrt while@7" {
			found = true
		}
	}
	if !found {
		var labels []string
		for i := range c.Plan.Decisions {
			labels = append(labels, c.Plan.Decisions[i].Label)
		}
		t.Errorf("while decision missing from plan: %v", labels)
	}
	rec := coverage.NewRecorder(c.Plan)
	m := vm.New(c.Prog, rec)
	m.Init()
	rec.BeginStep()
	m.Step([]uint64{model.EncodeInt(model.Int32, 9)})
	rep := rec.Report()
	// One input both enters (true) and exits (false) the loop: full DC.
	if rep.Decision() != 100 {
		t.Errorf("while decision coverage: %v", rep.Decision())
	}
}

func TestWhileDifferential(t *testing.T) {
	c, err := Compile(whileModel(t))
	if err != nil {
		t.Fatal(err)
	}
	vmRec := coverage.NewRecorder(c.Plan)
	machine := vm.New(c.Prog, vmRec)
	machine.Init()
	itRec := coverage.NewRecorder(c.Plan)
	eng := interp.New(c.Design, c.Plan, c.Index, itRec)
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		x := rng.Int63() // includes huge and negative-wrapped values
		in := []uint64{model.EncodeInt(model.Int32, x)}
		vmRec.BeginStep()
		machine.Step(in)
		itRec.BeginStep()
		outs, err := eng.Step(in)
		if err != nil {
			t.Fatal(err)
		}
		if outs[0] != machine.Out()[0] {
			t.Fatalf("step %d (x=%d): vm=%d interp=%d", i, x,
				model.DecodeInt(model.Int32, machine.Out()[0]),
				model.DecodeInt(model.Int32, outs[0]))
		}
		if !bytes.Equal(vmRec.Curr, itRec.Curr) {
			t.Fatalf("step %d: coverage diverges", i)
		}
	}
}

func TestWhileLoopRecordsLoopSite(t *testing.T) {
	c, err := Compile(whileModel(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Prog.LoopSites) == 0 {
		t.Fatal("compiled while loop must record a LoopSite")
	}
	s := c.Prog.LoopSites[0]
	if s.Func != "step" {
		t.Errorf("loop func = %q, want step", s.Func)
	}
	if s.Label == "" {
		t.Error("loop site must carry a label")
	}
	if got := c.Prog.LoopSiteFor("step", s.PC-1); got != s.Label {
		t.Errorf("LoopSiteFor inside the body = %q, want %q", got, s.Label)
	}
}
