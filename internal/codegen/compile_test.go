package codegen

import (
	"strings"
	"testing"

	"cftcg/internal/coverage"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// buildToy builds a small model exercising several block families:
//
//	Ret = Enable && (Power >= 500) ? sat(Power, 0, 1000) : prev
func buildToy(t *testing.T) *model.Model {
	t.Helper()
	b := model.NewBuilder("Toy")
	en := b.Inport("Enable", model.Int8)
	pw := b.Inport("Power", model.Int32)
	hot := b.Rel(">=", pw, b.ConstT(model.Int32, 500))
	go_ := b.And(en, hot)
	sat := b.Saturation(pw, 0, 1000)
	prev := b.DelayT(sat, model.Int32, 0)
	out := b.Switch(go_, sat, prev)
	b.Outport("Ret", model.Int32, out)
	return b.Model()
}

func TestCompileToy(t *testing.T) {
	c, err := Compile(buildToy(t))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(c.Prog.In) != 2 {
		t.Fatalf("want 2 input fields, got %d", len(c.Prog.In))
	}
	if c.Prog.TupleSize() != 5 {
		t.Fatalf("tuple size: want 5 (int8+int32), got %d", c.Prog.TupleSize())
	}
	// Plan: AND (decision + 2 conds), Switch (decision), Saturation (3
	// outcomes) => branches: 2 + 4 + 2 + 3 = 11.
	if got := c.Plan.BranchCount(); got != 11 {
		t.Fatalf("branch count: want 11, got %d", got)
	}
}

func TestToyExecutionAndCoverage(t *testing.T) {
	c, err := Compile(buildToy(t))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rec := coverage.NewRecorder(c.Plan)
	m := vm.New(c.Prog, rec)
	m.Init()

	step := func(enable, power int64) int64 {
		rec.BeginStep()
		in := []uint64{
			model.EncodeInt(model.Int8, enable),
			model.EncodeInt(model.Int32, power),
		}
		m.Step(in)
		return model.DecodeInt(model.Int32, m.Out()[0])
	}

	if got := step(1, 700); got != 700 {
		t.Errorf("enabled in-range: want 700, got %d", got)
	}
	if got := step(1, 2000); got != 1000 {
		t.Errorf("saturated high: want 1000, got %d", got)
	}
	if got := step(0, 300); got != 1000 {
		t.Errorf("disabled holds previous saturated value: want 1000, got %d", got)
	}
	// The delay latched sat(300) = 300 on the previous step; power below
	// the threshold routes the switch to the delayed path.
	if got := step(1, -50); got != 300 {
		t.Errorf("power below threshold takes delayed path: want 300, got %d", got)
	}

	rep := rec.Report()
	if rep.Decision() != 100 {
		t.Errorf("decision coverage: want 100%%, got %v\nuncovered: %v", rep.Decision(), rep.UncoveredDecisions)
	}
	if rep.Condition() != 100 {
		t.Errorf("condition coverage: want 100%%, got %v", rep.Condition())
	}
}

func TestEmitDriverShape(t *testing.T) {
	c, err := Compile(buildToy(t))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	drv := EmitDriver(c.Prog)
	for _, want := range []string{
		"FuzzTestOneInput",
		"int dataLen = 5",
		"memcpy(&Toy_Enable, data + i * dataLen + 0, 1)",
		"memcpy(&Toy_Power, data + i * dataLen + 1, 4)",
		"Toy_step(",
	} {
		if !strings.Contains(drv, want) {
			t.Errorf("driver missing %q:\n%s", want, drv)
		}
	}
	src := EmitStep(c.Prog, c.Plan)
	if !strings.Contains(src, "CoverageStatistics(") {
		t.Errorf("step source missing instrumentation:\n%s", src)
	}
}
