package codegen

import (
	"bytes"
	"math/rand"
	"testing"

	"cftcg/internal/coverage"
	"cftcg/internal/interp"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
	"cftcg/internal/vm"
)

// hierModel wraps a two-level chart whose actions log every entry/exit into
// a trace accumulator, making execution order observable.
func hierModel(t *testing.T) *model.Model {
	t.Helper()
	chart := &stateflow.Chart{
		Name:   "hier",
		Inputs: []stateflow.Var{{Name: "x", Type: model.Int32}},
		Outputs: []stateflow.Var{
			{Name: "trace", Type: model.Int32, Init: 0},
			{Name: "code", Type: model.Int32, Init: 0},
		},
		States: []*stateflow.State{
			{Name: "Off", Entry: "code = 0;", Exit: "trace = trace * 10 + 1;"},
			{Name: "On", Initial: "Idle",
				Entry: "trace = trace * 10 + 2;", Exit: "trace = trace * 10 + 3;",
				During: "trace = trace + 1000000;"},
			{Name: "Idle", Parent: "On",
				Entry: "trace = trace * 10 + 4; code = 1;", Exit: "trace = trace * 10 + 5;"},
			{Name: "Busy", Parent: "On",
				Entry: "trace = trace * 10 + 6; code = 2;", Exit: "trace = trace * 10 + 7;"},
		},
		Transitions: []*stateflow.Transition{
			{From: "Off", To: "On", Guard: "x > 0", Priority: 1},
			{From: "On", To: "Off", Guard: "x < 0", Priority: 1}, // outer
			{From: "Idle", To: "Busy", Guard: "x > 10", Priority: 1},
			{From: "Busy", To: "Idle", Guard: "x == 1", Priority: 1},
		},
		Initial: "Off",
	}
	b := model.NewBuilder("Hier")
	x := b.Inport("x", model.Int32)
	ch := b.Chart("c", chart, x)
	b.Outport("trace", model.Int32, ch.Out(0))
	b.Outport("code", model.Int32, ch.Out(1))
	return b.Model()
}

func TestHierarchicalChartSemantics(t *testing.T) {
	c, err := Compile(hierModel(t))
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	rec := coverage.NewRecorder(c.Plan)
	m := vm.New(c.Prog, rec)
	m.Init()
	step := func(x int64) (trace, code int64) {
		rec.BeginStep()
		m.Step([]uint64{model.EncodeInt(model.Int32, x)})
		return model.DecodeInt(model.Int32, m.Out()[0]), model.DecodeInt(model.Int32, m.Out()[1])
	}

	// Step 1: Off -> On (enter On=2, then default child Idle=4).
	trace, code := step(5)
	// exit Off (1), enter On (2), enter Idle (4) => 124.
	if trace != 124 || code != 1 {
		t.Fatalf("Off->On: trace=%d code=%d, want 124/1", trace, code)
	}

	// Step 2: Idle -> Busy within On (exit Idle=5, enter Busy=6).
	trace, code = step(50)
	if trace != 12456 || code != 2 {
		t.Fatalf("Idle->Busy: trace=%d code=%d, want 12456/2", trace, code)
	}

	// Step 3: nothing fires (x=2): On's during adds 1000000.
	trace, _ = step(2)
	if trace != 1012456 {
		t.Fatalf("during: trace=%d, want 1012456", trace)
	}

	// Step 4: outer transition On->Off while Busy: exit Busy (7) then On
	// (3), enter Off. Outer precedence beats Busy->Idle even though x<0
	// matches only the outer guard.
	trace, code = step(-1)
	if trace != 101245673 || code != 0 {
		t.Fatalf("outer exit: trace=%d code=%d, want 101245673/0", trace, code)
	}
}

// TestOuterTransitionPrecedence: when both an outer and an inner guard hold,
// the outer one fires (Stateflow precedence).
func TestOuterTransitionPrecedence(t *testing.T) {
	chart := &stateflow.Chart{
		Name:    "prec",
		Inputs:  []stateflow.Var{{Name: "x", Type: model.Int32}},
		Outputs: []stateflow.Var{{Name: "who", Type: model.Int32, Init: 0}},
		States: []*stateflow.State{
			{Name: "A", Initial: "A1"},
			{Name: "A1", Parent: "A"},
			{Name: "A2", Parent: "A"},
			{Name: "B"},
		},
		Transitions: []*stateflow.Transition{
			{From: "A", To: "B", Guard: "x > 0", Action: "who = 1;"},   // outer
			{From: "A1", To: "A2", Guard: "x > 0", Action: "who = 2;"}, // inner
		},
		Initial: "A",
	}
	b := model.NewBuilder("Prec")
	x := b.Inport("x", model.Int32)
	ch := b.Chart("c", chart, x)
	b.Outport("who", model.Int32, ch.Out(0))
	c, err := Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(c.Prog, nil)
	m.Init()
	m.Step([]uint64{model.EncodeInt(model.Int32, 7)})
	if got := model.DecodeInt(model.Int32, m.Out()[0]); got != 1 {
		t.Errorf("outer transition must preempt inner: who=%d", got)
	}
}

// TestHierarchicalDifferential: random inputs through VM and engine agree
// on the hierarchical chart.
func TestHierarchicalDifferential(t *testing.T) {
	c, err := Compile(hierModel(t))
	if err != nil {
		t.Fatal(err)
	}
	vmRec := coverage.NewRecorder(c.Plan)
	machine := vm.New(c.Prog, vmRec)
	machine.Init()

	itRec := coverage.NewRecorder(c.Plan)
	eng := interp.New(c.Design, c.Plan, c.Index, itRec)
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		x := int64(rng.Intn(41) - 20)
		in := []uint64{model.EncodeInt(model.Int32, x)}
		vmRec.BeginStep()
		machine.Step(in)
		itRec.BeginStep()
		outs, err := eng.Step(in)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		for k := range outs {
			if outs[k] != machine.Out()[k] {
				t.Fatalf("step %d (x=%d) output %d: vm=%#x interp=%#x", i, x, k, machine.Out()[k], outs[k])
			}
		}
		if !bytes.Equal(vmRec.Curr, itRec.Curr) {
			t.Fatalf("step %d: coverage diverges", i)
		}
	}
}
