package codegen

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

// TestEmitDriverGolden pins the exact driver text for a two-input model —
// the Figure 3 artifact — so accidental format drift is caught.
func TestEmitDriverGolden(t *testing.T) {
	b := model.NewBuilder("Demo")
	en := b.Inport("Enable", model.Int8)
	pw := b.Inport("Power", model.Int32)
	b.Outport("Ret", model.Int32, b.Switch(en, pw, b.ConstT(model.Int32, 0)))
	c, err := Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	got := EmitDriver(c.Prog)
	want := `/* Fuzz driver generated for model Demo */
void FuzzTestOneInput(const uint8_t *data, size_t size) {
    Demo_init();  /* model initialization: reset all states */
    int dataLen = 5;  /* input bytes required for one iteration */
    int i = 0;
    while (true) {
        if ((i + 1) * dataLen > size) {
            break;  /* trailing bytes cannot fill every inport: discard */
        }
        int8 Demo_Enable = 0;  /* model input variable */
        int32 Demo_Power = 0;  /* model input variable */
        int32 Demo_Ret;  /* model output variable */
        memcpy(&Demo_Enable, data + i * dataLen + 0, 1);
        memcpy(&Demo_Power, data + i * dataLen + 1, 4);
        Demo_step(Demo_Enable, Demo_Power, &Demo_Ret);  /* model iteration */
        i = i + 1;
    }
}
`
	if got != want {
		t.Errorf("driver drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestEmitStepAnnotatesModes: every instrumentation mode letter appears in
// the emitted comments for a model containing one block of each mode class.
func TestEmitStepAnnotatesModes(t *testing.T) {
	b := model.NewBuilder("Modes")
	x := b.Inport("x", model.Int32)
	y := b.Inport("y", model.Int32)
	gate := b.And(b.Rel(">", x, b.ConstT(model.Int32, 0)), b.Rel(">", y, b.ConstT(model.Int32, 0))) // (a)
	sw := b.Switch(gate, x, y)                                                                      // (b)
	ifb := b.If("sel", []string{"u1 > 5"}, sw)                                                      // (c)
	_, act := b.ActionSubsystem("Act", ifb.Out(0))
	ai := act.Inport("v", model.Int32)
	act.Outport("o", model.Int32, act.Gain(ai, 2)).Block().Params["Init"] = 0.0
	actBlk := b.Graph().BlockByName("Act")
	b.Connect(sw, model.PortRef{Block: actBlk.ID, Port: 1})
	sat := b.Saturation(model.PortRef{Block: actBlk.ID, Port: 0}, -5, 5) // (d)
	b.Outport("o", model.Int32, sat)

	c, err := Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	src := EmitStep(c.Prog, c.Plan)
	for _, mode := range []string{"/* [a]", "/* [b]", "/* [c]", "/* [d]"} {
		if !strings.Contains(src, mode) {
			t.Errorf("emitted step missing instrumentation mode %q", mode)
		}
	}
	if !strings.Contains(src, "CoverageCondition(") {
		t.Error("condition probes missing from emitted source")
	}
	if !strings.Contains(src, "goto L") {
		t.Error("branch structure missing from emitted source")
	}
}

// TestEmitInitContainsStateSetup: init function stores every state slot.
func TestEmitInitContainsStateSetup(t *testing.T) {
	b := model.NewBuilder("I")
	x := b.Inport("x", model.Float64)
	b.Outport("o", model.Float64, b.UnitDelay(x, 42))
	c, err := Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	src := EmitInit(c.Prog, c.Plan)
	if !strings.Contains(src, "void I_init(void)") {
		t.Errorf("init signature:\n%s", src)
	}
	if !strings.Contains(src, "DW.") || !strings.Contains(src, "= (real_T)42") {
		t.Errorf("state initialization missing:\n%s", src)
	}
}
