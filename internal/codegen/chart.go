package codegen

import (
	"fmt"

	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

// lowerChart emits a Stateflow chart block. The active configuration is
// stored as the index of its leaf state; outputs and locals live in state
// slots. Each step dispatches on the active leaf and evaluates its
// candidate transitions outer-first (Stateflow precedence), probing every
// transition decision (mode d). Hierarchy is resolved statically: for each
// (leaf, transition) pair the exit chain, entry chain and resulting leaf
// are compile-time constants, so the generated code is straight-line per
// candidate — exactly what a code generator would emit.
func (lw *lowerer) lowerChart(gs *graphScope, b *model.Block) error {
	ci := lw.d.Charts[b]
	c := ci.Chart

	descend, err := c.DefaultDescend(c.Initial)
	if err != nil {
		return err
	}
	initialChain := append(c.PathFromRoot(c.Initial), descend...)
	initialLeaf := initialChain[len(initialChain)-1]

	// Allocate persistent slots.
	activeSlot := lw.allocState(fmt.Sprintf("%s/%s.active", gs.gi.Path, b.Name),
		model.Int32, float64(c.LeafIndex(initialLeaf.Name)))
	outSlots := make([]int, len(c.Outputs))
	for i, v := range c.Outputs {
		outSlots[i] = lw.allocState(fmt.Sprintf("%s/%s.%s", gs.gi.Path, b.Name, v.Name), v.Type, v.Init)
	}
	locSlots := make([]int, len(c.Locals))
	for i, v := range c.Locals {
		locSlots[i] = lw.allocState(fmt.Sprintf("%s/%s.%s", gs.gi.Path, b.Name, v.Name), v.Type, v.Init)
	}

	// Run the initial configuration's entry actions (outermost first)
	// during model initialization; inputs read as typed zeros.
	hasInitEntries := false
	for _, s := range initialChain {
		if ci.Entry[s] != nil {
			hasInitEntries = true
		}
	}
	if hasInitEntries {
		saved := lw.cur
		lw.cur = lw.initAsm
		env := newScriptEnv()
		for _, v := range c.Inputs {
			env.bind(v.Name, lw.cur.ConstVal(v.Type, 0), v.Type)
		}
		if err := lw.bindChartVars(env, c, outSlots, locSlots); err != nil {
			return err
		}
		for _, s := range initialChain {
			if entry := ci.Entry[s]; entry != nil {
				if err := lw.execStmts(env, entry); err != nil {
					return err
				}
			}
		}
		lw.storeChartVars(env, c, outSlots, locSlots)
		lw.cur = saved
	}

	a := lw.cur
	env := newScriptEnv()
	for i, v := range c.Inputs {
		in, err := lw.inVal(gs, b.ID, i, v.Type)
		if err != nil {
			return err
		}
		env.bind(v.Name, in, v.Type)
	}
	if err := lw.bindChartVars(env, c, outSlots, locSlots); err != nil {
		return err
	}

	active := a.Reg()
	a.MovTo(active, a.LoadState(model.Int32, activeSlot))

	var chartEnds []int
	for k, leaf := range c.Leaves() {
		trans := c.CandidateTransitions(leaf.Name)
		path := c.PathFromRoot(leaf.Name)
		hasDuring := false
		for _, s := range path {
			if ci.During[s] != nil {
				hasDuring = true
			}
		}
		if len(trans) == 0 && !hasDuring {
			continue // nothing to execute in this configuration
		}
		kc := a.Const(model.Int32, model.EncodeInt(model.Int32, int64(k)))
		isActive := a.Bin(ir.OpEq, model.Int32, active, kc)
		skipState := a.JmpIfNot(isActive)

		for _, t := range trans {
			decID := lw.ix.TransDecision[t]
			var g int32
			if guard := ci.Guards[t]; guard != nil {
				var err error
				g, err = lw.evalCond(env, guard)
				if err != nil {
					return err
				}
			} else {
				g = a.Const(model.Bool, 1)
			}
			lw.probePair(decID, g)
			skipTrans := a.JmpIfNot(g)

			plan, err := c.PlanFire(leaf.Name, t)
			if err != nil {
				return err
			}
			for _, s := range plan.Exits {
				if exit := ci.Exit[s]; exit != nil {
					if err := lw.execStmts(env, exit); err != nil {
						return err
					}
				}
			}
			if act := ci.TransActs[t]; act != nil {
				if err := lw.execStmts(env, act); err != nil {
					return err
				}
			}
			a.ConstTo(active, model.Int32, model.EncodeInt(model.Int32, int64(c.LeafIndex(plan.NewLeaf.Name))))
			for _, s := range plan.Entries {
				if entry := ci.Entry[s]; entry != nil {
					if err := lw.execStmts(env, entry); err != nil {
						return err
					}
				}
			}
			chartEnds = append(chartEnds, a.Jmp()) // at most one transition per step
			a.Patch(skipTrans)
		}

		// No transition fired: during actions, outermost first.
		for _, s := range path {
			if during := ci.During[s]; during != nil {
				if err := lw.execStmts(env, during); err != nil {
					return err
				}
			}
		}
		chartEnds = append(chartEnds, a.Jmp())
		a.Patch(skipState)
	}
	for _, e := range chartEnds {
		a.Patch(e)
	}

	a.StoreState(activeSlot, active)
	lw.storeChartVars(env, c, outSlots, locSlots)

	for i, v := range c.Outputs {
		sv, _ := env.lookup(v.Name)
		gs.vals[model.PortRef{Block: b.ID, Port: i}] = sv.reg
	}
	return nil
}

// bindChartVars loads output/local slots into fresh mutable registers.
func (lw *lowerer) bindChartVars(env *scriptEnv, c *stateflow.Chart, outSlots, locSlots []int) error {
	a := lw.cur
	for i, v := range c.Outputs {
		r := a.Reg()
		a.MovTo(r, a.LoadState(v.Type, outSlots[i]))
		env.bind(v.Name, r, v.Type)
	}
	for i, v := range c.Locals {
		r := a.Reg()
		a.MovTo(r, a.LoadState(v.Type, locSlots[i]))
		env.bind(v.Name, r, v.Type)
	}
	return nil
}

// storeChartVars writes the mutable registers back to their slots.
func (lw *lowerer) storeChartVars(env *scriptEnv, c *stateflow.Chart, outSlots, locSlots []int) {
	a := lw.cur
	for i, v := range c.Outputs {
		sv, _ := env.lookup(v.Name)
		a.StoreState(outSlots[i], sv.reg)
	}
	for i, v := range c.Locals {
		sv, _ := env.lookup(v.Name)
		a.StoreState(locSlots[i], sv.reg)
	}
}
