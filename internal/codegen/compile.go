package codegen

import (
	"cftcg/internal/analysis"
	"cftcg/internal/blocks"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/opt"
	"cftcg/internal/schedule"
)

// VerifyLowered, when set, makes Compile run the strict IR verifier over
// every lowered program and fail on any error-severity issue. Tests and CI
// set it once at startup; it is not meant to be toggled concurrently.
var VerifyLowered bool

// OptimizeLowered, when set, makes Compile run the translation-validated
// optimization pipeline over every lowered program, so the optimized IR is
// what the fuzzer, harness, and daemon actually execute. Like VerifyLowered
// it is a set-once process flag; per-run control lives in fuzz.Options,
// harness.Config, and campaign.Spec.
var OptimizeLowered bool

// Compiled bundles every artifact of the fuzzing-code-generation pipeline:
// the analyzed design, the instrumentation plan, the entity index, and the
// lowered program ready for the VM.
type Compiled struct {
	Design *blocks.Design
	Plan   *coverage.Plan
	Index  *coverage.Index
	Prog   *ir.Program
}

// Compile runs the full front half of CFTCG on a model: parse/analyze,
// schedule conversion, branch instrumentation planning, and lowering to the
// executable program (the paper's Figure 2 left side).
func Compile(m *model.Model) (*Compiled, error) {
	d, err := blocks.Resolve(m)
	if err != nil {
		return nil, err
	}
	if err := schedule.Compute(d); err != nil {
		return nil, err
	}
	plan, ix, err := coverage.Build(d)
	if err != nil {
		return nil, err
	}
	prog, err := Lower(d, plan, ix)
	if err != nil {
		return nil, err
	}
	if VerifyLowered {
		if err := analysis.VerifyStrict(prog, plan); err != nil {
			return nil, err
		}
	}
	c := &Compiled{Design: d, Plan: plan, Index: ix, Prog: prog}
	if OptimizeLowered {
		if _, err := c.Optimize(opt.Config{}); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Optimize runs the translation-validated optimization pipeline over the
// compiled program and swaps in the optimized IR. The pipeline refuses
// unverified input and reverts any rewrite it cannot prove or lockstep-check,
// so on success the replaced program is observably equivalent (outputs and
// probe streams) to the lowered original.
func (c *Compiled) Optimize(cfg opt.Config) (*opt.Stats, error) {
	p, st, err := opt.Optimize(c.Prog, c.Plan, cfg)
	if err != nil {
		return nil, err
	}
	c.Prog = p
	return st, nil
}
