package codegen

import (
	"os"
	"testing"
)

// TestMain turns on the strict IR verifier for every compile performed by
// this package's tests: any lowering bug that produces malformed IR —
// undefined registers, bad jump targets, out-of-range probes, type-invariant
// violations — fails the offending test instead of surfacing later as
// corrupt VM state. Keeping the whole test suite verifier-clean is the
// regression invariant behind the static analysis pass.
func TestMain(m *testing.M) {
	VerifyLowered = true
	os.Exit(m.Run())
}
