// Package codegen lowers an analyzed model into the IR program executed by
// the VM — the paper's "Schedule Convert + Code Synthesis" pipeline with
// model-level branch instrumentation woven in (§3.1.2), plus the fuzz-driver
// synthesis of §3.1.1 and a C-like source emitter for inspection.
package codegen

import (
	"fmt"

	"cftcg/internal/blocks"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// Lower compiles the design into an instrumented IR program. plan/ix must
// come from coverage.Build on the same design.
func Lower(d *blocks.Design, plan *coverage.Plan, ix *coverage.Index) (*ir.Program, error) {
	var regs int32
	lw := &lowerer{
		d:        d,
		plan:     plan,
		ix:       ix,
		initAsm:  ir.NewAsm(&regs),
		stepAsm:  ir.NewAsm(&regs),
		regCount: &regs,
	}
	lw.cur = lw.stepAsm

	prog := &ir.Program{Name: d.Model.Name}
	inLay := d.Model.InputLayout()
	prog.In = inLay.Fields
	prog.Out = d.Model.OutputLayout().Fields

	if err := lw.lowerRoot(); err != nil {
		return nil, err
	}

	lw.initAsm.Halt()
	lw.stepAsm.Halt()
	prog.Init = lw.initAsm.Instrs
	prog.Step = lw.stepAsm.Instrs
	for _, s := range lw.initAsm.Loops {
		prog.LoopSites = append(prog.LoopSites, ir.LoopSite{Func: "init", PC: s.PC, Label: s.Label})
	}
	for _, s := range lw.stepAsm.Loops {
		prog.LoopSites = append(prog.LoopSites, ir.LoopSite{Func: "step", PC: s.PC, Label: s.Label})
	}
	prog.NumRegs = int(regs)
	prog.NumState = lw.numState
	prog.StateNames = lw.stateNames
	prog.StateTypes = lw.stateTypes
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: internal error: %w", err)
	}
	return prog, nil
}

type lowerer struct {
	d    *blocks.Design
	plan *coverage.Plan
	ix   *coverage.Index

	initAsm  *ir.Asm
	stepAsm  *ir.Asm
	cur      *ir.Asm // current emit target (init during chart-entry lowering)
	regCount *int32

	numState   int
	stateNames []string
	stateTypes []model.DType
}

// allocState reserves a state slot and emits its initialization (a constant
// of type dt with the given numeric initial value) into the init function.
func (lw *lowerer) allocState(name string, dt model.DType, init float64) int {
	slot := lw.numState
	lw.numState++
	lw.stateNames = append(lw.stateNames, name)
	lw.stateTypes = append(lw.stateTypes, dt)
	r := lw.initAsm.ConstVal(dt, init)
	lw.initAsm.StoreState(slot, r)
	return slot
}

// graphScope tracks per-graph-instance lowering state.
type graphScope struct {
	gi   *blocks.GraphInfo
	vals map[model.PortRef]int32 // resolved output-port registers
	// deferred update emitters (delay/integrator state writes), run at the
	// end of this graph's body so they stay inside any conditional region.
	deferred []func() error
	// mergeSlots maps Merge blocks in this graph to their state slots.
	mergeSlots map[*model.Block]int
	mergeType  map[*model.Block]model.DType
}

// val returns the register holding the value feeding the given input port.
func (gs *graphScope) val(id model.BlockID, port int) (int32, error) {
	src, ok := gs.gi.Source[model.PortRef{Block: id, Port: port}]
	if !ok {
		return 0, fmt.Errorf("codegen: %s: block %s input %d unconnected",
			gs.gi.Path, gs.gi.Graph.Block(id).Name, port)
	}
	r, ok := gs.vals[src]
	if !ok {
		return 0, fmt.Errorf("codegen: %s: value for %s not computed before use (schedule bug?)",
			gs.gi.Path, gs.gi.Graph.Block(src.Block).Name)
	}
	return r, nil
}

// inVal returns the input register cast to the wanted type.
func (lw *lowerer) inVal(gs *graphScope, id model.BlockID, port int, want model.DType) (int32, error) {
	r, err := gs.val(id, port)
	if err != nil {
		return 0, err
	}
	have := gs.gi.InType(id, port)
	return lw.cur.Cast(want, have, r), nil
}

func (lw *lowerer) lowerRoot() error {
	gs := &graphScope{
		gi:         lw.d.Root,
		vals:       map[model.PortRef]int32{},
		mergeSlots: map[*model.Block]int{},
		mergeType:  map[*model.Block]model.DType{},
	}
	// Bind root inports to input fields.
	fields := lw.d.Model.Inports()
	for i, p := range fields {
		dt := p.Params.DType("Type", model.Float64)
		r := lw.cur.LoadIn(dt, i)
		gs.vals[model.PortRef{Block: p.ID, Port: 0}] = r
	}
	if err := lw.lowerGraphBody(gs); err != nil {
		return err
	}
	// Store root outports.
	for i, p := range lw.d.Model.Outports() {
		dt := p.Params.DType("Type", model.Float64)
		r, err := lw.inVal(gs, p.ID, 0, dt)
		if err != nil {
			return err
		}
		lw.cur.StoreOut(i, r)
	}
	return nil
}

// lowerGraphBody lowers every block of a graph in schedule order, then runs
// the deferred state updates.
func (lw *lowerer) lowerGraphBody(gs *graphScope) error {
	if err := lw.prepareMerges(gs); err != nil {
		return err
	}
	for _, id := range gs.gi.Order {
		b := gs.gi.Graph.Block(id)
		if err := lw.lowerBlock(gs, b); err != nil {
			return err
		}
	}
	for _, fn := range gs.deferred {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

// prepareMerges allocates the state slot behind every Merge block and
// validates that each merge input is fed by a conditionally-executed
// subsystem output.
func (lw *lowerer) prepareMerges(gs *graphScope) error {
	for _, b := range gs.gi.Graph.BlocksOfKind("Merge") {
		dt := gs.gi.OutType[model.PortRef{Block: b.ID, Port: 0}]
		init := b.Params.Float("Init", 0)
		slot := lw.allocState(gs.gi.Path+"/"+b.Name, dt, init)
		gs.mergeSlots[b] = slot
		gs.mergeType[b] = dt
		for p := 0; p < gs.gi.InCount[b.ID]; p++ {
			src := gs.gi.Source[model.PortRef{Block: b.ID, Port: p}]
			drv := gs.gi.Graph.Block(src.Block)
			if !blocks.IsConditional(drv.Kind) {
				return fmt.Errorf("codegen: %s/%s: merge input %d must be driven by a conditionally executed subsystem, got %s",
					gs.gi.Path, b.Name, p, drv.Path())
			}
		}
	}
	return nil
}

// probePair emits the instrumentation for a boolean decision: outcome 1 when
// cond is true, outcome 0 otherwise (an if/else around CoverageStatistics(),
// Figure 4 modes (a)-(c)).
func (lw *lowerer) probePair(decID int, cond int32) {
	a := lw.cur
	j := a.JmpIfNot(cond)
	a.Probe(decID, 1)
	j2 := a.Jmp()
	a.Patch(j)
	a.Probe(decID, 0)
	a.Patch(j2)
}

// probeIndex emits instrumentation for an n-way decision selected by a
// 0-based int32 index register.
func (lw *lowerer) probeIndex(decID int, idx int32, n int) {
	a := lw.cur
	var ends []int
	for k := 0; k < n; k++ {
		if k == n-1 {
			a.Probe(decID, k)
			break
		}
		kc := a.Const(model.Int32, model.EncodeInt(model.Int32, int64(k)))
		eq := a.Bin(ir.OpEq, model.Int32, idx, kc)
		j := a.JmpIfNot(eq)
		a.Probe(decID, k)
		ends = append(ends, a.Jmp())
		a.Patch(j)
	}
	for _, e := range ends {
		a.Patch(e)
	}
}

// subsystemScope builds the inner graph scope of a subsystem, binding inner
// Inports to the outer input registers (cast to any declared inner type).
func (lw *lowerer) subsystemScope(gs *graphScope, b *model.Block) (*graphScope, error) {
	child := gs.gi.Children[b.ID]
	inner := &graphScope{
		gi:         child,
		vals:       map[model.PortRef]int32{},
		mergeSlots: map[*model.Block]int{},
		mergeType:  map[*model.Block]model.DType{},
	}
	ctrl := blocks.ControlPorts(b.Kind)
	for _, ip := range child.Graph.BlocksOfKind("Inport") {
		outerPort := int(ip.Params.Int("Index", 1)) - 1 + ctrl
		want := child.OutType[model.PortRef{Block: ip.ID, Port: 0}]
		r, err := lw.inVal(gs, b.ID, outerPort, want)
		if err != nil {
			return nil, err
		}
		inner.vals[model.PortRef{Block: ip.ID, Port: 0}] = r
	}
	return inner, nil
}

// subsystemOutputs reads the inner Outport values (cast to the subsystem's
// resolved output types) after the inner body ran.
func (lw *lowerer) subsystemOutputs(gs *graphScope, b *model.Block, inner *graphScope) ([]int32, error) {
	child := inner.gi
	nout := gs.gi.OutCount[b.ID]
	outs := make([]int32, nout)
	for _, op := range child.Graph.BlocksOfKind("Outport") {
		idx := int(op.Params.Int("Index", 1)) - 1
		want := gs.gi.OutType[model.PortRef{Block: b.ID, Port: idx}]
		src, ok := child.Source[model.PortRef{Block: op.ID, Port: 0}]
		if !ok {
			return nil, fmt.Errorf("codegen: %s/%s: outport unconnected", child.Path, op.Name)
		}
		r, ok := inner.vals[src]
		if !ok {
			return nil, fmt.Errorf("codegen: %s/%s: outport driver not computed", child.Path, op.Name)
		}
		outs[idx] = lw.cur.Cast(want, child.OutType[src], r)
	}
	return outs, nil
}

// lowerConditionalBody emits: probe (optional), a guarded inner body whose
// outputs latch into hold-state slots, and loads of those slots as the
// subsystem's outputs. Used by Enabled/Triggered/Action subsystems.
func (lw *lowerer) lowerConditionalBody(gs *graphScope, b *model.Block, cond int32) error {
	child := gs.gi.Children[b.ID]
	a := lw.cur

	// Hold slots, one per output, initialized from inner Outport Init.
	nout := gs.gi.OutCount[b.ID]
	slots := make([]int, nout)
	types := make([]model.DType, nout)
	for _, op := range child.Graph.BlocksOfKind("Outport") {
		idx := int(op.Params.Int("Index", 1)) - 1
		dt := gs.gi.OutType[model.PortRef{Block: b.ID, Port: idx}]
		slots[idx] = lw.allocState(fmt.Sprintf("%s/%s.hold%d", gs.gi.Path, b.Name, idx), dt, op.Params.Float("Init", 0))
		types[idx] = dt
	}

	skip := a.JmpIfNot(cond)
	inner, err := lw.subsystemScope(gs, b)
	if err != nil {
		return err
	}
	if err := lw.lowerGraphBody(inner); err != nil {
		return err
	}
	outs, err := lw.subsystemOutputs(gs, b, inner)
	if err != nil {
		return err
	}
	for i, r := range outs {
		a.StoreState(slots[i], r)
	}
	// Forward active outputs into any Merge blocks fed by this subsystem.
	for i := range outs {
		for _, dst := range gs.gi.Graph.FanOut(model.PortRef{Block: b.ID, Port: i}) {
			mb := gs.gi.Graph.Block(dst.Block)
			if mb.Kind == "Merge" {
				cast := a.Cast(gs.mergeType[mb], types[i], outs[i])
				a.StoreState(gs.mergeSlots[mb], cast)
			}
		}
	}
	a.Patch(skip)

	// Outputs always read the hold slots (fresh when active, held when not).
	for i := 0; i < nout; i++ {
		gs.vals[model.PortRef{Block: b.ID, Port: i}] = a.LoadState(types[i], slots[i])
	}
	return nil
}
