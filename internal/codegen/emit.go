package codegen

import (
	"fmt"
	"strings"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// EmitDriver renders the model-specific fuzz driver as C source — the
// artifact of the paper's Figure 3. The driver splits the fuzzer's byte
// stream into per-iteration tuples, copies each field into the typed inport
// variables, and calls the model step function until the stream runs dry.
func EmitDriver(p *ir.Program) string {
	var w strings.Builder
	tuple := p.TupleSize()

	fmt.Fprintf(&w, "/* Fuzz driver generated for model %s */\n", p.Name)
	w.WriteString("void FuzzTestOneInput(const uint8_t *data, size_t size) {\n")
	fmt.Fprintf(&w, "    %s_init();  /* model initialization: reset all states */\n", p.Name)
	fmt.Fprintf(&w, "    int dataLen = %d;  /* input bytes required for one iteration */\n", tuple)
	w.WriteString("    int i = 0;\n")
	w.WriteString("    while (true) {\n")
	w.WriteString("        if ((i + 1) * dataLen > size) {\n")
	w.WriteString("            break;  /* trailing bytes cannot fill every inport: discard */\n")
	w.WriteString("        }\n")
	for _, f := range p.In {
		fmt.Fprintf(&w, "        %s %s_%s = 0;  /* model input variable */\n", f.Type.CName(), p.Name, f.Name)
	}
	for _, f := range p.Out {
		fmt.Fprintf(&w, "        %s %s_%s;  /* model output variable */\n", f.Type.CName(), p.Name, f.Name)
	}
	for _, f := range p.In {
		fmt.Fprintf(&w, "        memcpy(&%s_%s, data + i * dataLen + %d, %d);\n",
			p.Name, f.Name, f.Offset, f.Type.Size())
	}
	fmt.Fprintf(&w, "        %s_step(", p.Name)
	for i, f := range p.In {
		if i > 0 {
			w.WriteString(", ")
		}
		fmt.Fprintf(&w, "%s_%s", p.Name, f.Name)
	}
	for _, f := range p.Out {
		if len(p.In) > 0 {
			w.WriteString(", ")
		}
		fmt.Fprintf(&w, "&%s_%s", p.Name, f.Name)
	}
	w.WriteString(");  /* model iteration */\n")
	w.WriteString("        i = i + 1;\n")
	w.WriteString("    }\n")
	w.WriteString("}\n")
	return w.String()
}

// EmitStep renders the instrumented step function as C-like source from the
// lowered IR: every register assignment becomes a statement, every branch a
// goto, and every probe a CoverageStatistics() call annotated with the
// decision it instruments (the paper's Figure 4 artifacts).
func EmitStep(p *ir.Program, plan *coverage.Plan) string {
	var w strings.Builder
	fmt.Fprintf(&w, "/* Instrumented step function for model %s */\n", p.Name)
	fmt.Fprintf(&w, "/* %d registers, %d state slots, %d coverage branch slots */\n",
		p.NumRegs, p.NumState, plan.NumBranches)
	fmt.Fprintf(&w, "void %s_step(", p.Name)
	for i, f := range p.In {
		if i > 0 {
			w.WriteString(", ")
		}
		fmt.Fprintf(&w, "%s %s", f.Type.CName(), f.Name)
	}
	for _, f := range p.Out {
		if len(p.In) > 0 {
			w.WriteString(", ")
		}
		fmt.Fprintf(&w, "%s *%s", f.Type.CName(), f.Name)
	}
	w.WriteString(") {\n")
	emitBody(&w, p, plan, p.Step)
	w.WriteString("}\n")
	return w.String()
}

// EmitInit renders the init function.
func EmitInit(p *ir.Program, plan *coverage.Plan) string {
	var w strings.Builder
	fmt.Fprintf(&w, "void %s_init(void) {\n", p.Name)
	emitBody(&w, p, plan, p.Init)
	w.WriteString("}\n")
	return w.String()
}

func emitBody(w *strings.Builder, p *ir.Program, plan *coverage.Plan, code []ir.Instr) {
	targets := map[int]bool{}
	for _, in := range code {
		switch in.Op {
		case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
			targets[int(in.Imm)] = true
		}
	}
	reg := func(r int32) string { return fmt.Sprintf("r%d", r) }
	for pc, in := range code {
		if targets[pc] {
			fmt.Fprintf(w, "L%d:\n", pc)
		}
		switch in.Op {
		case ir.OpNop, ir.OpHalt:
			if in.Op == ir.OpHalt && pc == len(code)-1 {
				if targets[pc] {
					fmt.Fprintf(w, "    ;\n")
				}
				continue
			}
			fmt.Fprintf(w, "    ;\n")
		case ir.OpConst:
			fmt.Fprintf(w, "    %s = (%s)%g;\n", reg(in.Dst), in.DT.CName(), model.Decode(in.DT, in.Imm))
		case ir.OpMov:
			fmt.Fprintf(w, "    %s = %s;\n", reg(in.Dst), reg(in.A))
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv:
			op := map[ir.Op]string{ir.OpAdd: "+", ir.OpSub: "-", ir.OpMul: "*", ir.OpDiv: "/"}[in.Op]
			fmt.Fprintf(w, "    %s = %s %s %s;\n", reg(in.Dst), reg(in.A), op, reg(in.B))
		case ir.OpNeg:
			fmt.Fprintf(w, "    %s = -%s;\n", reg(in.Dst), reg(in.A))
		case ir.OpAbs:
			fmt.Fprintf(w, "    %s = abs(%s);\n", reg(in.Dst), reg(in.A))
		case ir.OpMin:
			fmt.Fprintf(w, "    %s = min(%s, %s);\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpMax:
			fmt.Fprintf(w, "    %s = max(%s, %s);\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			op := map[ir.Op]string{ir.OpEq: "==", ir.OpNe: "!=", ir.OpLt: "<", ir.OpLe: "<=", ir.OpGt: ">", ir.OpGe: ">="}[in.Op]
			fmt.Fprintf(w, "    %s = (%s %s %s);\n", reg(in.Dst), reg(in.A), op, reg(in.B))
		case ir.OpAnd:
			fmt.Fprintf(w, "    %s = %s && %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpOr:
			fmt.Fprintf(w, "    %s = %s || %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpXor:
			fmt.Fprintf(w, "    %s = %s != %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpNot:
			fmt.Fprintf(w, "    %s = !%s;\n", reg(in.Dst), reg(in.A))
		case ir.OpBitAnd:
			fmt.Fprintf(w, "    %s = %s & %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpBitOr:
			fmt.Fprintf(w, "    %s = %s | %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpBitXor:
			fmt.Fprintf(w, "    %s = %s ^ %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpShl:
			fmt.Fprintf(w, "    %s = %s << %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpShr:
			fmt.Fprintf(w, "    %s = %s >> %s;\n", reg(in.Dst), reg(in.A), reg(in.B))
		case ir.OpTruth:
			fmt.Fprintf(w, "    %s = (%s != 0);\n", reg(in.Dst), reg(in.A))
		case ir.OpSelect:
			fmt.Fprintf(w, "    %s = %s ? %s : %s;\n", reg(in.Dst), reg(in.A), reg(in.B), reg(in.C))
		case ir.OpCast:
			fmt.Fprintf(w, "    %s = (%s)%s;\n", reg(in.Dst), in.DT.CName(), reg(in.A))
		case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
			ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
			fmt.Fprintf(w, "    %s = %s(%s);\n", reg(in.Dst), in.Op.String(), reg(in.A))
		case ir.OpLoadIn:
			fmt.Fprintf(w, "    %s = %s;  /* inport */\n", reg(in.Dst), p.In[in.Imm].Name)
		case ir.OpStoreOut:
			fmt.Fprintf(w, "    *%s = %s;  /* outport */\n", p.Out[in.Imm].Name, reg(in.A))
		case ir.OpLoadState:
			fmt.Fprintf(w, "    %s = DW.%s;\n", reg(in.Dst), stateName(p, int(in.Imm)))
		case ir.OpStoreState:
			fmt.Fprintf(w, "    DW.%s = %s;\n", stateName(p, int(in.Imm)), reg(in.A))
		case ir.OpJmp:
			fmt.Fprintf(w, "    goto L%d;\n", in.Imm)
		case ir.OpJmpIf:
			fmt.Fprintf(w, "    if (%s) goto L%d;\n", reg(in.A), in.Imm)
		case ir.OpJmpIfNot:
			fmt.Fprintf(w, "    if (!%s) goto L%d;\n", reg(in.A), in.Imm)
		case ir.OpProbe:
			d := plan.Decision(int(in.A))
			fmt.Fprintf(w, "    CoverageStatistics(%d);  /* [%c] %s -> outcome %d */\n",
				d.OutcomeBase+int(in.B), d.Kind.Mode(), d.Label, in.B)
		case ir.OpCondProbe:
			c := plan.Cond(int(in.A))
			fmt.Fprintf(w, "    CoverageCondition(%d, %s);  /* %s */\n", c.ID, reg(in.B), c.Label)
		}
	}
}

func stateName(p *ir.Program, slot int) string {
	if slot < len(p.StateNames) {
		n := p.StateNames[slot]
		// Use the last path component; C struct fields can't contain '/'.
		if i := strings.LastIndexByte(n, '/'); i >= 0 {
			n = n[i+1:]
		}
		return fmt.Sprintf("%s_%d", sanitize(n), slot)
	}
	return fmt.Sprintf("s%d", slot)
}

func sanitize(s string) string {
	var w strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			w.WriteRune(r)
		default:
			w.WriteByte('_')
		}
	}
	return w.String()
}
