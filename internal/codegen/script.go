package codegen

import (
	"fmt"

	"cftcg/internal/ir"
	"cftcg/internal/mlfunc"
	"cftcg/internal/model"
)

// scriptVar is one mutable variable during script lowering: a dedicated
// register plus its declared type.
type scriptVar struct {
	reg int32
	dt  model.DType
}

// scriptEnv maps names to variables for mlfunc lowering. It is used for
// MATLAB Function bodies, If-block conditions (u1..un), and chart
// guards/actions.
type scriptEnv struct {
	vars map[string]*scriptVar
}

func newScriptEnv() *scriptEnv {
	return &scriptEnv{vars: map[string]*scriptVar{}}
}

func (e *scriptEnv) bind(name string, reg int32, dt model.DType) {
	e.vars[name] = &scriptVar{reg: reg, dt: dt}
}

func (e *scriptEnv) lookup(name string) (*scriptVar, error) {
	v, ok := e.vars[name]
	if !ok {
		return nil, fmt.Errorf("codegen: script references unknown variable %q", name)
	}
	return v, nil
}

// evalExpr lowers an expression to a register holding a value of e.Type().
func (lw *lowerer) evalExpr(env *scriptEnv, e mlfunc.Expr) (int32, error) {
	a := lw.cur
	switch ex := e.(type) {
	case *mlfunc.Lit:
		return a.ConstVal(ex.T, ex.Val), nil

	case *mlfunc.Ref:
		v, err := env.lookup(ex.Name)
		if err != nil {
			return 0, err
		}
		return v.reg, nil

	case *mlfunc.Unary:
		switch ex.Op {
		case "-":
			x, err := lw.evalExpr(env, ex.X)
			if err != nil {
				return 0, err
			}
			x = a.Cast(ex.T, ex.X.Type(), x)
			return a.Un(ir.OpNeg, ex.T, x), nil
		case "!", "~":
			b, err := lw.evalCond(env, ex.X)
			if err != nil {
				return 0, err
			}
			return a.Un(ir.OpNot, model.Bool, b), nil
		}
		return 0, fmt.Errorf("codegen: unknown unary op %q", ex.Op)

	case *mlfunc.Binary:
		if mlfunc.IsBoolOp(ex.Op) {
			x, err := lw.evalCond(env, ex.X)
			if err != nil {
				return 0, err
			}
			y, err := lw.evalCond(env, ex.Y)
			if err != nil {
				return 0, err
			}
			op := ir.OpAnd
			if ex.Op == "||" {
				op = ir.OpOr
			}
			return a.Bin(op, model.Bool, x, y), nil
		}
		x, err := lw.evalExpr(env, ex.X)
		if err != nil {
			return 0, err
		}
		y, err := lw.evalExpr(env, ex.Y)
		if err != nil {
			return 0, err
		}
		if mlfunc.IsRelOp(ex.Op) {
			op, err := relOp(ex.Op)
			if err != nil {
				return 0, err
			}
			t := mlfunc.Promote(ex.X.Type(), ex.Y.Type())
			x = a.Cast(t, ex.X.Type(), x)
			y = a.Cast(t, ex.Y.Type(), y)
			return a.Bin(op, t, x, y), nil
		}
		op, err := arithOp(ex.Op)
		if err != nil {
			return 0, err
		}
		t := ex.T
		x = a.Cast(t, ex.X.Type(), x)
		y = a.Cast(t, ex.Y.Type(), y)
		return a.Bin(op, t, x, y), nil

	case *mlfunc.Call:
		args := make([]int32, len(ex.Args))
		for i, arg := range ex.Args {
			r, err := lw.evalExpr(env, arg)
			if err != nil {
				return 0, err
			}
			args[i] = a.Cast(ex.T, arg.Type(), r)
		}
		switch ex.Fn {
		case "abs":
			return a.Un(ir.OpAbs, ex.T, args[0]), nil
		case "min":
			return a.Bin(ir.OpMin, ex.T, args[0], args[1]), nil
		case "max":
			return a.Bin(ir.OpMax, ex.T, args[0], args[1]), nil
		case "sat":
			lo := a.Bin(ir.OpMax, ex.T, args[0], args[1])
			return a.Bin(ir.OpMin, ex.T, lo, args[2]), nil
		}
		return 0, fmt.Errorf("codegen: unknown builtin %q", ex.Fn)
	}
	return 0, fmt.Errorf("codegen: unknown expression %T", e)
}

// evalCond lowers a decision expression to a normalized boolean register,
// emitting a condition probe at every registered leaf. Logical operators
// evaluate eagerly (operands are side-effect free), which keeps unique-cause
// MCDC well defined.
func (lw *lowerer) evalCond(env *scriptEnv, e mlfunc.Expr) (int32, error) {
	a := lw.cur
	switch ex := e.(type) {
	case *mlfunc.Binary:
		if mlfunc.IsBoolOp(ex.Op) {
			x, err := lw.evalCond(env, ex.X)
			if err != nil {
				return 0, err
			}
			y, err := lw.evalCond(env, ex.Y)
			if err != nil {
				return 0, err
			}
			op := ir.OpAnd
			if ex.Op == "||" {
				op = ir.OpOr
			}
			return a.Bin(op, model.Bool, x, y), nil
		}
	case *mlfunc.Unary:
		if ex.Op == "!" || ex.Op == "~" {
			b, err := lw.evalCond(env, ex.X)
			if err != nil {
				return 0, err
			}
			return a.Un(ir.OpNot, model.Bool, b), nil
		}
	}
	// Leaf condition: evaluate, normalize to bool, probe if registered.
	v, err := lw.evalExpr(env, e)
	if err != nil {
		return 0, err
	}
	b := a.Truth(e.Type(), v)
	if condID, ok := lw.ix.ExprCond[e]; ok {
		a.CondProbe(condID, b)
	}
	return b, nil
}

// execStmts lowers a statement list within the environment.
func (lw *lowerer) execStmts(env *scriptEnv, stmts []mlfunc.Stmt) error {
	a := lw.cur
	for _, s := range stmts {
		switch st := s.(type) {
		case *mlfunc.Assign:
			v, err := env.lookup(st.Name)
			if err != nil {
				return err
			}
			r, err := lw.evalExpr(env, st.Rhs)
			if err != nil {
				return err
			}
			a.MovTo(v.reg, a.Cast(v.dt, st.Rhs.Type(), r))

		case *mlfunc.If:
			c, err := lw.evalCond(env, st.Cond)
			if err != nil {
				return err
			}
			if decID, ok := lw.ix.StmtDecision[st]; ok {
				lw.probePair(decID, c)
			}
			j := a.JmpIfNot(c)
			if err := lw.execStmts(env, st.Then); err != nil {
				return err
			}
			if len(st.Else) > 0 {
				j2 := a.Jmp()
				a.Patch(j)
				if err := lw.execStmts(env, st.Else); err != nil {
					return err
				}
				a.Patch(j2)
			} else {
				a.Patch(j)
			}

		case *mlfunc.While:
			// Real loop with a backward jump, capped at MaxWhileIter so
			// the generated step function always terminates. The layout:
			//
			//	    n = 0
			//	L0: c = cond; probe(c); if !c goto L1
			//	    body
			//	    n = n + 1
			//	    if n < cap goto L0
			//	L1:
			counter := a.Reg()
			a.ConstTo(counter, model.Int32, 0)
			start := a.PC()
			c, err := lw.evalCond(env, st.Cond)
			if err != nil {
				return err
			}
			if decID, ok := lw.ix.StmtDecision2[st]; ok {
				lw.probePair(decID, c)
			}
			jExit := a.JmpIfNot(c)
			if err := lw.execStmts(env, st.Body); err != nil {
				return err
			}
			one := a.Const(model.Int32, model.EncodeInt(model.Int32, 1))
			next := a.Bin(ir.OpAdd, model.Int32, counter, one)
			a.MovTo(counter, next)
			capc := a.Const(model.Int32, model.EncodeInt(model.Int32, mlfunc.MaxWhileIter))
			again := a.Bin(ir.OpLt, model.Int32, counter, capc)
			jBack := a.Emit(ir.Instr{Op: ir.OpJmpIf, A: again, Imm: uint64(start)})
			label := "while"
			if decID, ok := lw.ix.StmtDecision2[st]; ok {
				label = lw.plan.Decisions[decID].Label
			}
			a.NoteLoop(jBack, label)
			a.Patch(jExit)

		case *mlfunc.For:
			// Constant-bound loops unroll, matching "Maximize Execution
			// Speed" code generation.
			reg := a.Reg()
			env.bind(st.Var, reg, model.Int32)
			for i := int64(0); i < st.Count; i++ {
				a.ConstTo(reg, model.Int32, model.EncodeInt(model.Int32, i))
				if err := lw.execStmts(env, st.Body); err != nil {
					return err
				}
			}
			delete(env.vars, st.Var)

		default:
			return fmt.Errorf("codegen: unknown statement %T", s)
		}
	}
	return nil
}

func relOp(op string) (ir.Op, error) {
	switch op {
	case "==":
		return ir.OpEq, nil
	case "~=", "!=":
		return ir.OpNe, nil
	case "<":
		return ir.OpLt, nil
	case "<=":
		return ir.OpLe, nil
	case ">":
		return ir.OpGt, nil
	case ">=":
		return ir.OpGe, nil
	}
	return 0, fmt.Errorf("codegen: not a relational operator: %q", op)
}

func arithOp(op string) (ir.Op, error) {
	switch op {
	case "+":
		return ir.OpAdd, nil
	case "-":
		return ir.OpSub, nil
	case "*":
		return ir.OpMul, nil
	case "/":
		return ir.OpDiv, nil
	}
	return 0, fmt.Errorf("codegen: not an arithmetic operator: %q", op)
}
