package slxml

import (
	"bytes"
	"testing"

	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
)

// TestRoundTripBenchmarks serializes every benchmark model to the container
// format, reads it back, and requires the reparsed model to compile to an
// identical instrumented program — structural equality at the strongest
// level the pipeline offers.
func TestRoundTripBenchmarks(t *testing.T) {
	for _, e := range benchmodels.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			orig := e.Build()
			blob, err := WriteBytes(orig)
			if err != nil {
				t.Fatalf("WriteBytes: %v", err)
			}
			back, err := ReadBytes(blob)
			if err != nil {
				t.Fatalf("ReadBytes: %v", err)
			}

			c1, err := codegen.Compile(orig)
			if err != nil {
				t.Fatalf("compile original: %v", err)
			}
			c2, err := codegen.Compile(back)
			if err != nil {
				t.Fatalf("compile round-tripped: %v", err)
			}
			if c1.Plan.NumBranches != c2.Plan.NumBranches {
				t.Errorf("branch count changed: %d -> %d", c1.Plan.NumBranches, c2.Plan.NumBranches)
			}
			if len(c1.Prog.Step) != len(c2.Prog.Step) {
				t.Errorf("step program length changed: %d -> %d", len(c1.Prog.Step), len(c2.Prog.Step))
			}
			// Second serialization must be byte-identical (canonical form).
			blob2, err := WriteBytes(back)
			if err != nil {
				t.Fatalf("re-serialize: %v", err)
			}
			m1, err := ReadBytes(blob2)
			if err != nil {
				t.Fatalf("re-read: %v", err)
			}
			blob3, err := WriteBytes(m1)
			if err != nil {
				t.Fatalf("re-serialize 2: %v", err)
			}
			if !bytes.Equal(payloadOf(t, blob2), payloadOf(t, blob3)) {
				t.Error("serialization is not canonical")
			}
		})
	}
}

func payloadOf(t *testing.T, blob []byte) []byte {
	t.Helper()
	m, err := ReadBytes(blob)
	if err != nil {
		t.Fatalf("payloadOf: %v", err)
	}
	out, err := WriteBytes(m)
	if err != nil {
		t.Fatalf("payloadOf: %v", err)
	}
	return out
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadBytes([]byte("not a zip")); err == nil {
		t.Error("expected error for non-archive input")
	}
}

func TestReadRejectsMissingEntry(t *testing.T) {
	// A valid empty zip has no model entry.
	var buf bytes.Buffer
	buf.Write([]byte{0x50, 0x4b, 0x05, 0x06})
	buf.Write(make([]byte, 18))
	if _, err := ReadBytes(buf.Bytes()); err == nil {
		t.Error("expected error for archive without model.xml")
	}
}
