// Package slxml reads and writes models in an .slx-like container: a zip
// archive holding an XML description of the block diagram, charts and
// scripts. Simulink's .slx is exactly such a zip-of-XML bundle; the paper's
// tool loads it with Unzip + TinyXML, and this package is that loader's
// equivalent (stdlib archive/zip + encoding/xml).
package slxml

import (
	"archive/zip"
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

// ModelFileName is the diagram entry inside the archive.
const ModelFileName = "simulink/model.xml"

// xml document types -----------------------------------------------------

type xModel struct {
	XMLName    xml.Name `xml:"Model"`
	Name       string   `xml:"name,attr"`
	SampleTime float64  `xml:"sampleTime,attr"`
	Graph      xGraph   `xml:"Graph"`
}

type xGraph struct {
	Blocks []xBlock `xml:"Block"`
	Lines  []xLine  `xml:"Line"`
}

type xBlock struct {
	ID     int      `xml:"id,attr"`
	Name   string   `xml:"name,attr"`
	Kind   string   `xml:"kind,attr"`
	Params []xParam `xml:"P"`
	Script string   `xml:"Script,omitempty"`
	Graph  *xGraph  `xml:"Graph,omitempty"`
	Chart  *xChart  `xml:"Chart,omitempty"`
}

type xParam struct {
	Name  string   `xml:"name,attr"`
	Type  string   `xml:"type,attr"`
	Value string   `xml:",chardata"`
	Items []string `xml:"Item,omitempty"`
}

type xLine struct {
	SrcBlock int `xml:"srcBlock,attr"`
	SrcPort  int `xml:"srcPort,attr"`
	DstBlock int `xml:"dstBlock,attr"`
	DstPort  int `xml:"dstPort,attr"`
}

type xChart struct {
	Name        string        `xml:"name,attr"`
	Initial     string        `xml:"initial,attr"`
	Data        []xChartData  `xml:"Data"`
	States      []xState      `xml:"State"`
	Transitions []xTransition `xml:"Transition"`
}

type xChartData struct {
	Class string  `xml:"class,attr"` // input | output | local
	Name  string  `xml:"name,attr"`
	Type  string  `xml:"type,attr"`
	Init  float64 `xml:"init,attr"`
}

type xState struct {
	Name    string `xml:"name,attr"`
	Parent  string `xml:"parent,attr,omitempty"`
	Initial string `xml:"initial,attr,omitempty"`
	Entry   string `xml:"Entry,omitempty"`
	During  string `xml:"During,omitempty"`
	Exit    string `xml:"Exit,omitempty"`
}

type xTransition struct {
	From     string `xml:"from,attr"`
	To       string `xml:"to,attr"`
	Priority int    `xml:"priority,attr"`
	Guard    string `xml:"Guard,omitempty"`
	Action   string `xml:"Action,omitempty"`
}

// Write serializes the model into the zip container.
func Write(w io.Writer, m *model.Model) error {
	doc, err := encodeModel(m)
	if err != nil {
		return err
	}
	data, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("slxml: marshal: %w", err)
	}
	zw := zip.NewWriter(w)
	f, err := zw.Create(ModelFileName)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(xml.Header)); err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	return zw.Close()
}

// Read parses a model from the zip container.
func Read(r io.ReaderAt, size int64) (*model.Model, error) {
	zr, err := zip.NewReader(r, size)
	if err != nil {
		return nil, fmt.Errorf("slxml: not a model archive: %w", err)
	}
	var payload []byte
	for _, f := range zr.File {
		if f.Name == ModelFileName {
			rc, err := f.Open()
			if err != nil {
				return nil, err
			}
			payload, err = io.ReadAll(rc)
			rc.Close()
			if err != nil {
				return nil, err
			}
		}
	}
	if payload == nil {
		return nil, fmt.Errorf("slxml: archive has no %s entry", ModelFileName)
	}
	var doc xModel
	if err := xml.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("slxml: parse: %w", err)
	}
	return decodeModel(&doc)
}

// ReadBytes parses a model from an in-memory archive.
func ReadBytes(data []byte) (*model.Model, error) {
	return Read(bytes.NewReader(data), int64(len(data)))
}

// WriteBytes serializes a model to an in-memory archive.
func WriteBytes(m *model.Model) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// --- encoding ---------------------------------------------------------------

func encodeModel(m *model.Model) (*xModel, error) {
	g, err := encodeGraph(&m.Root)
	if err != nil {
		return nil, err
	}
	return &xModel{Name: m.Name, SampleTime: m.SampleTime, Graph: *g}, nil
}

func encodeGraph(g *model.Graph) (*xGraph, error) {
	out := &xGraph{}
	for _, b := range g.Blocks {
		xb := xBlock{ID: int(b.ID), Name: b.Name, Kind: b.Kind, Script: b.Script}
		for _, key := range b.Params.Keys() {
			p, err := encodeParam(key, b.Params[key])
			if err != nil {
				return nil, fmt.Errorf("slxml: block %s: %w", b.Name, err)
			}
			xb.Params = append(xb.Params, p)
		}
		if b.Sub != nil {
			sub, err := encodeGraph(b.Sub)
			if err != nil {
				return nil, err
			}
			xb.Graph = sub
		}
		if b.ChartSpec != nil {
			c, ok := b.ChartSpec.(*stateflow.Chart)
			if !ok {
				return nil, fmt.Errorf("slxml: block %s: unsupported chart payload %T", b.Name, b.ChartSpec)
			}
			xb.Chart = encodeChart(c)
		}
		out.Blocks = append(out.Blocks, xb)
	}
	for _, l := range g.Lines {
		out.Lines = append(out.Lines, xLine{
			SrcBlock: int(l.Src.Block), SrcPort: l.Src.Port,
			DstBlock: int(l.Dst.Block), DstPort: l.Dst.Port,
		})
	}
	return out, nil
}

func encodeParam(key string, v any) (xParam, error) {
	p := xParam{Name: key}
	switch x := v.(type) {
	case float64:
		p.Type = "double"
		p.Value = strconv.FormatFloat(x, 'g', -1, 64)
	case int:
		p.Type = "int"
		p.Value = strconv.Itoa(x)
	case int64:
		p.Type = "int"
		p.Value = strconv.FormatInt(x, 10)
	case bool:
		p.Type = "bool"
		p.Value = strconv.FormatBool(x)
	case string:
		p.Type = "string"
		p.Value = x
	case model.DType:
		p.Type = "dtype"
		p.Value = x.String()
	case []float64:
		p.Type = "doubles"
		parts := make([]string, len(x))
		for i, f := range x {
			parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
		}
		p.Value = strings.Join(parts, " ")
	case []int64:
		p.Type = "ints"
		parts := make([]string, len(x))
		for i, n := range x {
			parts[i] = strconv.FormatInt(n, 10)
		}
		p.Value = strings.Join(parts, " ")
	case []string:
		p.Type = "strings"
		p.Items = x
	default:
		return p, fmt.Errorf("unsupported parameter type %T for %q", v, key)
	}
	return p, nil
}

func encodeChart(c *stateflow.Chart) *xChart {
	xc := &xChart{Name: c.Name, Initial: c.Initial}
	addData := func(class string, vars []stateflow.Var) {
		for _, v := range vars {
			xc.Data = append(xc.Data, xChartData{Class: class, Name: v.Name, Type: v.Type.String(), Init: v.Init})
		}
	}
	addData("input", c.Inputs)
	addData("output", c.Outputs)
	addData("local", c.Locals)
	for _, s := range c.States {
		xc.States = append(xc.States, xState{
			Name: s.Name, Parent: s.Parent, Initial: s.Initial,
			Entry: s.Entry, During: s.During, Exit: s.Exit,
		})
	}
	for _, t := range c.Transitions {
		xc.Transitions = append(xc.Transitions, xTransition{
			From: t.From, To: t.To, Priority: t.Priority, Guard: t.Guard, Action: t.Action,
		})
	}
	return xc
}

// --- decoding ---------------------------------------------------------------

func decodeModel(doc *xModel) (*model.Model, error) {
	if doc.Name == "" {
		return nil, fmt.Errorf("slxml: model has no name")
	}
	g, err := decodeGraph(&doc.Graph)
	if err != nil {
		return nil, err
	}
	m := &model.Model{Name: doc.Name, Root: *g, SampleTime: doc.SampleTime}
	if m.SampleTime == 0 {
		m.SampleTime = 0.01
	}
	return m, m.Validate()
}

func decodeGraph(xg *xGraph) (*model.Graph, error) {
	g := &model.Graph{}
	for i, xb := range xg.Blocks {
		if xb.ID != i {
			return nil, fmt.Errorf("slxml: block %q: id %d out of order (expected %d)", xb.Name, xb.ID, i)
		}
		b := &model.Block{
			ID:     model.BlockID(i),
			Name:   xb.Name,
			Kind:   xb.Kind,
			Params: model.Params{},
			Script: xb.Script,
		}
		for _, p := range xb.Params {
			v, err := decodeParam(p)
			if err != nil {
				return nil, fmt.Errorf("slxml: block %s: %w", xb.Name, err)
			}
			b.Params[p.Name] = v
		}
		if xb.Graph != nil {
			sub, err := decodeGraph(xb.Graph)
			if err != nil {
				return nil, err
			}
			b.Sub = sub
		}
		if xb.Chart != nil {
			c, err := decodeChart(xb.Chart)
			if err != nil {
				return nil, err
			}
			b.ChartSpec = c
		}
		g.Blocks = append(g.Blocks, b)
	}
	for _, l := range xg.Lines {
		g.Lines = append(g.Lines, model.Line{
			Src: model.PortRef{Block: model.BlockID(l.SrcBlock), Port: l.SrcPort},
			Dst: model.PortRef{Block: model.BlockID(l.DstBlock), Port: l.DstPort},
		})
	}
	return g, nil
}

func decodeParam(p xParam) (any, error) {
	val := strings.TrimSpace(p.Value)
	switch p.Type {
	case "double":
		return strconv.ParseFloat(val, 64)
	case "int":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			return nil, err
		}
		return n, nil
	case "bool":
		return strconv.ParseBool(val)
	case "string":
		return p.Value, nil
	case "dtype":
		return model.ParseDType(val)
	case "doubles":
		var out []float64
		for _, part := range strings.Fields(val) {
			f, err := strconv.ParseFloat(part, 64)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	case "ints":
		var out []int64
		for _, part := range strings.Fields(val) {
			n, err := strconv.ParseInt(part, 10, 64)
			if err != nil {
				return nil, err
			}
			out = append(out, n)
		}
		return out, nil
	case "strings":
		return append([]string(nil), p.Items...), nil
	}
	return nil, fmt.Errorf("unknown parameter encoding %q for %q", p.Type, p.Name)
}

func decodeChart(xc *xChart) (*stateflow.Chart, error) {
	c := &stateflow.Chart{Name: xc.Name, Initial: xc.Initial}
	for _, d := range xc.Data {
		dt, err := model.ParseDType(d.Type)
		if err != nil {
			return nil, fmt.Errorf("slxml: chart %s data %s: %w", xc.Name, d.Name, err)
		}
		v := stateflow.Var{Name: d.Name, Type: dt, Init: d.Init}
		switch d.Class {
		case "input":
			c.Inputs = append(c.Inputs, v)
		case "output":
			c.Outputs = append(c.Outputs, v)
		case "local":
			c.Locals = append(c.Locals, v)
		default:
			return nil, fmt.Errorf("slxml: chart %s: unknown data class %q", xc.Name, d.Class)
		}
	}
	for _, s := range xc.States {
		c.States = append(c.States, &stateflow.State{
			Name: s.Name, Parent: s.Parent, Initial: s.Initial,
			Entry: s.Entry, During: s.During, Exit: s.Exit,
		})
	}
	for _, t := range xc.Transitions {
		c.Transitions = append(c.Transitions, &stateflow.Transition{
			From: t.From, To: t.To, Priority: t.Priority, Guard: t.Guard, Action: t.Action,
		})
	}
	return c, c.Validate()
}
