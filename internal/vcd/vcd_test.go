package vcd

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

func TestWriterProducesValidVCD(t *testing.T) {
	var sb strings.Builder
	w := New(&sb, "Demo", 0.01, []Signal{
		{Name: "en", Type: model.Bool},
		{Name: "pwr", Type: model.Int32},
	})
	w.Step([]uint64{1, model.EncodeInt(model.Int32, 5)})
	w.Step([]uint64{1, model.EncodeInt(model.Int32, 5)}) // no change
	w.Step([]uint64{0, model.EncodeInt(model.Int32, -1)})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"$timescale 1 ms $end",
		"$scope module Demo $end",
		"$var wire 1 ! en $end",
		"$var wire 32 \" pwr $end",
		"$enddefinitions $end",
		"#0", "#1", "#2", "#3",
		"1!",    // en true at t0
		"b101 ", // pwr = 5
		"0!",    // en false at t2
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// The unchanged step must not repeat values: exactly one "b101".
	if strings.Count(out, "b101 ") != 1 {
		t.Errorf("value repeated for unchanged step:\n%s", out)
	}
	// -1 as int32 is 32 ones.
	if !strings.Contains(out, "b"+strings.Repeat("1", 32)+" ") {
		t.Errorf("negative encoding wrong:\n%s", out)
	}
}

func TestIDCodesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("id %q contains non-printable rune", id)
			}
		}
	}
}

func TestTimescales(t *testing.T) {
	if timescale(1) != "1 s" || timescale(0.01) != "1 ms" || timescale(1e-5) != "1 us" || timescale(1e-9) != "1 ns" {
		t.Error("timescale mapping")
	}
}
