package simcotest

import (
	"testing"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/model"
)

func compiled(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("SimTarget")
	u := b.Inport("u", model.Int32)
	en := b.Inport("en", model.Int8)
	sat := b.Saturation(u, -200, 200)
	gate := b.And(en, b.Rel(">", sat, b.ConstT(model.Int32, 50)))
	out := b.Switch(gate, b.Gain(sat, 2), b.ConstT(model.Int32, -1))
	b.Outport("y", model.Int32, out)
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestSimCoTestFindsCoverage(t *testing.T) {
	c := compiled(t)
	res, err := Run(c.Design, c.Plan, c.Index, Options{Seed: 3, Horizon: 30, MaxSims: 200})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Sims == 0 || res.Steps == 0 {
		t.Fatal("no simulations ran")
	}
	if res.Report.Decision() < 80 {
		t.Errorf("signal search should cover most of this simple model: %.1f%%", res.Report.Decision())
	}
	if len(res.Suite.Cases) == 0 {
		t.Error("no test cases kept")
	}
	// Suite cases decode to the right number of steps.
	for _, tc := range res.Suite.Cases {
		if got := tc.Tuples(res.Suite.Layout.TupleSize); got != 30 {
			t.Errorf("case should span the horizon: got %d tuples", got)
		}
	}
}

func TestSimCoTestDeterministic(t *testing.T) {
	c := compiled(t)
	r1, err := Run(c.Design, c.Plan, c.Index, Options{Seed: 9, Horizon: 20, MaxSims: 64})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	r2, err := Run(c.Design, c.Plan, c.Index, Options{Seed: 9, Horizon: 20, MaxSims: 64})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Steps != r2.Steps || len(r1.Suite.Cases) != len(r2.Suite.Cases) {
		t.Errorf("same seed must reproduce: steps %d vs %d, cases %d vs %d",
			r1.Steps, r2.Steps, len(r1.Suite.Cases), len(r2.Suite.Cases))
	}
}

func TestThrottleLimitsRate(t *testing.T) {
	c := compiled(t)
	start := time.Now()
	res, err := Run(c.Design, c.Plan, c.Index, Options{
		Seed: 1, Horizon: 10, MaxSims: 2, CandidatesPerRound: 2,
		ThrottleStepsPerSec: 100,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	elapsed := time.Since(start)
	// 2 sims x 10 steps at 100 steps/s >= ~200ms.
	if res.Steps >= 20 && elapsed < 150*time.Millisecond {
		t.Errorf("throttle ineffective: %d steps in %v", res.Steps, elapsed)
	}
}
