// Package simcotest is the simulation-based baseline of the evaluation,
// modeled on SimCoTest: it generates structured input signals (constant,
// step, ramp, pulse, piecewise-random), simulates them on the interpretive
// engine, and keeps a test suite maximizing output-signal diversity via
// meta-heuristic selection.
//
// Crucially, every candidate evaluation costs a full model simulation on the
// engine — the tool's throughput is bounded by simulation speed, which is
// the limitation the paper identifies (6 iterations/second on SolarPV).
package simcotest

import (
	"math"
	"math/rand"
	"time"

	"cftcg/internal/blocks"
	"cftcg/internal/coverage"
	"cftcg/internal/interp"
	"cftcg/internal/model"
	"cftcg/internal/testcase"
)

// Shape enumerates the signal generators.
type Shape uint8

// Signal shapes, mirroring SimCoTest's input signal catalogue.
const (
	ShapeConstant Shape = iota
	ShapeStep
	ShapeRamp
	ShapePulse
	ShapePiecewise
	numShapes
)

// Options configures a campaign.
type Options struct {
	Seed    int64
	Horizon int   // steps per generated test (default 50)
	MaxSims int64 // simulation budget (0 = unlimited)
	Budget  time.Duration
	// CandidatesPerRound is the tournament size of the diversity search.
	CandidatesPerRound int
	// ThrottleStepsPerSec, when positive, paces the engine to the given
	// model-iterations-per-second rate — used to emulate the paper's
	// measured 6 it/s Simulink simulation speed in wall-clock experiments.
	ThrottleStepsPerSec float64
}

// Result summarizes a campaign.
type Result struct {
	Report   coverage.Report
	Suite    *testcase.Suite
	Sims     int64 // simulations run
	Steps    int64 // total model iterations
	Timeline []coverage.TimePoint
}

// signalSpec parameterizes one inport's signal over the horizon.
type signalSpec struct {
	shape      Shape
	v1, v2     float64
	t0, period int
}

// Run executes the SimCoTest-style campaign.
func Run(d *blocks.Design, plan *coverage.Plan, ix *coverage.Index, opts Options) (*Result, error) {
	if opts.Horizon <= 0 {
		opts.Horizon = 50
	}
	if opts.CandidatesPerRound <= 0 {
		opts.CandidatesPerRound = 8
	}
	rec := coverage.NewRecorder(plan)
	eng := interp.New(d, plan, ix, rec)
	rng := rand.New(rand.NewSource(opts.Seed))
	prg := coverage.NewProgress(plan)

	inports := d.Model.Inports()
	fields := d.Model.InputLayout()
	outN := len(d.Model.Outports())

	st := &search{
		d: d, eng: eng, rec: rec, rng: rng, prg: prg,
		opts: opts, fields: fields, inports: inports, outN: outN,
		start: time.Now(),
	}
	st.sample()

	for {
		if opts.MaxSims > 0 && st.sims >= opts.MaxSims {
			break
		}
		if opts.Budget > 0 && time.Since(st.start) >= opts.Budget {
			break
		}
		if opts.MaxSims == 0 && opts.Budget == 0 {
			break
		}
		if err := st.round(); err != nil {
			return nil, err
		}
	}
	st.sample()

	return &Result{
		Report: rec.Report(),
		Suite: &testcase.Suite{
			Model:  d.Model.Name,
			Layout: fields,
			Cases:  st.cases,
		},
		Sims:     st.sims,
		Steps:    st.steps,
		Timeline: st.timeline,
	}, nil
}

type search struct {
	d       *blocks.Design
	eng     *interp.Engine
	rec     *coverage.Recorder
	rng     *rand.Rand
	prg     *coverage.Progress
	opts    Options
	fields  model.Layout
	inports []*model.Block
	outN    int

	archive  [][]float64 // feature vectors of kept tests
	cases    []testcase.Case
	sims     int64
	steps    int64
	start    time.Time
	timeline []coverage.TimePoint
}

// round generates a tournament of candidate signal parameterizations,
// simulates each, and keeps the candidate most distant from the archive in
// output-feature space (SimCoTest's output diversity objective).
func (s *search) round() error {
	type cand struct {
		data     []byte
		features []float64
		newCov   int
		dist     float64
	}
	best := cand{dist: -1}
	for c := 0; c < s.opts.CandidatesPerRound; c++ {
		if s.opts.MaxSims > 0 && s.sims >= s.opts.MaxSims {
			break
		}
		if s.opts.Budget > 0 && time.Since(s.start) >= s.opts.Budget {
			break
		}
		specs := make([]signalSpec, len(s.inports))
		for i, p := range s.inports {
			specs[i] = s.randomSpec(p.Params.DType("Type", model.Float64))
		}
		data := s.render(specs)
		features, newCov, err := s.simulate(data)
		if err != nil {
			return err
		}
		d := s.archiveDistance(features)
		if newCov > 0 {
			// New coverage is always interesting regardless of diversity.
			d = math.Inf(1)
		}
		if d > best.dist {
			best = cand{data: data, features: features, newCov: newCov, dist: d}
		}
	}
	if best.dist >= 0 {
		s.archive = append(s.archive, best.features)
		s.cases = append(s.cases, testcase.Case{
			Data:        best.data,
			Found:       time.Since(s.start),
			NewBranches: best.newCov,
		})
		if best.newCov > 0 {
			s.sample()
		}
	}
	return nil
}

// simulate runs one candidate through the engine, collecting output features
// and coverage.
func (s *search) simulate(data []byte) ([]float64, int, error) {
	if err := s.eng.Init(); err != nil {
		return nil, 0, err
	}
	n := len(data) / s.fields.TupleSize
	in := make([]uint64, len(s.fields.Fields))

	// Feature accumulators per output: min, max, mean, sign changes of the
	// derivative, final value.
	mins := make([]float64, s.outN)
	maxs := make([]float64, s.outN)
	sums := make([]float64, s.outN)
	flips := make([]float64, s.outN)
	prev := make([]float64, s.outN)
	prevD := make([]float64, s.outN)
	for i := range mins {
		mins[i] = math.Inf(1)
		maxs[i] = math.Inf(-1)
	}

	newCov := 0
	outTypes := make([]model.DType, s.outN)
	for i, p := range s.d.Model.Outports() {
		outTypes[i] = p.Params.DType("Type", model.Float64)
	}

	var throttleStart time.Time
	if s.opts.ThrottleStepsPerSec > 0 {
		throttleStart = time.Now()
	}
	for it := 0; it < n; it++ {
		base := it * s.fields.TupleSize
		for fi, f := range s.fields.Fields {
			in[fi] = model.GetRaw(f.Type, data[base+f.Offset:])
		}
		s.rec.BeginStep()
		outs, err := s.eng.Step(in)
		if err != nil {
			return nil, 0, err
		}
		s.steps++
		newCov += s.prg.Absorb(s.rec.Curr)

		for o := 0; o < s.outN; o++ {
			v := model.Decode(outTypes[o], outs[o])
			if v < mins[o] {
				mins[o] = v
			}
			if v > maxs[o] {
				maxs[o] = v
			}
			sums[o] += v
			d := v - prev[o]
			if it > 0 && d*prevD[o] < 0 {
				flips[o]++
			}
			prevD[o] = d
			prev[o] = v
		}
		if s.opts.ThrottleStepsPerSec > 0 {
			// Pace to the emulated engine rate.
			want := time.Duration(float64(it+1) / s.opts.ThrottleStepsPerSec * float64(time.Second))
			if sleep := want - time.Since(throttleStart); sleep > 0 {
				time.Sleep(sleep)
			}
		}
	}
	s.sims++

	features := make([]float64, 0, s.outN*5)
	for o := 0; o < s.outN; o++ {
		mean := 0.0
		if n > 0 {
			mean = sums[o] / float64(n)
		}
		features = append(features, norm(mins[o]), norm(maxs[o]), norm(mean), flips[o], norm(prev[o]))
	}
	return features, newCov, nil
}

// norm squashes magnitudes so no single output dominates the distance.
func norm(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 0
	}
	return math.Tanh(v / 1000)
}

func (s *search) archiveDistance(f []float64) float64 {
	if len(s.archive) == 0 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for _, a := range s.archive {
		d := 0.0
		for i := range f {
			diff := f[i] - a[i]
			d += diff * diff
		}
		if d < best {
			best = d
		}
	}
	return best
}

// randomSpec draws a signal parameterization for one inport type.
func (s *search) randomSpec(dt model.DType) signalSpec {
	spec := signalSpec{
		shape:  Shape(s.rng.Intn(int(numShapes))),
		v1:     s.randomLevel(dt),
		v2:     s.randomLevel(dt),
		t0:     s.rng.Intn(s.opts.Horizon),
		period: 1 + s.rng.Intn(s.opts.Horizon/2+1),
	}
	return spec
}

func (s *search) randomLevel(dt model.DType) float64 {
	r := s.rng
	if dt.IsFloat() {
		switch r.Intn(3) {
		case 0:
			return float64(r.Intn(21) - 10)
		case 1:
			return r.NormFloat64() * 100
		default:
			return r.Float64()*2e6 - 1e6
		}
	}
	lo, hi := float64(dt.MinInt()), float64(dt.MaxInt())
	switch r.Intn(3) {
	case 0:
		return float64(r.Intn(16))
	case 1:
		return float64(r.Intn(1<<16) - (1 << 15))
	default:
		return lo + r.Float64()*(hi-lo)
	}
}

// render materializes the signal specs into the binary tuple stream.
func (s *search) render(specs []signalSpec) []byte {
	h := s.opts.Horizon
	data := make([]byte, h*s.fields.TupleSize)
	for t := 0; t < h; t++ {
		base := t * s.fields.TupleSize
		for i, f := range s.fields.Fields {
			v := specs[i].at(t, h)
			model.PutRaw(f.Type, data[base+f.Offset:], model.Encode(f.Type, v))
		}
	}
	return data
}

// at evaluates the signal at step t.
func (sp signalSpec) at(t, horizon int) float64 {
	switch sp.shape {
	case ShapeConstant:
		return sp.v1
	case ShapeStep:
		if t >= sp.t0 {
			return sp.v2
		}
		return sp.v1
	case ShapeRamp:
		return sp.v1 + (sp.v2-sp.v1)*float64(t)/float64(horizon)
	case ShapePulse:
		if (t/sp.period)%2 == 0 {
			return sp.v1
		}
		return sp.v2
	default: // piecewise: deterministic pseudo-random plateau per period
		k := t / sp.period
		x := math.Sin(float64(k)*12.9898+sp.v1*0.001) * 43758.5453
		frac := x - math.Floor(x)
		return sp.v1 + (sp.v2-sp.v1)*frac
	}
}

func (s *search) sample() {
	s.timeline = append(s.timeline, coverage.TimePoint{
		Elapsed:   time.Since(s.start),
		Execs:     s.sims,
		Decision:  s.prg.Decision(),
		Condition: s.prg.Condition(),
		Branches:  s.prg.Covered(),
	})
}
