package model

import (
	"strings"
	"testing"
)

func TestParamsAccessors(t *testing.T) {
	p := Params{
		"f": 2.5, "i": 7, "i64": int64(9), "b": true, "s": "hello",
		"dt": Int16, "dts": "uint32", "fs": []float64{1, 2}, "is": []int64{3, 4},
	}
	if p.Float("f", 0) != 2.5 || p.Float("i", 0) != 7 || p.Float("missing", 1.5) != 1.5 {
		t.Error("Float accessor")
	}
	if p.Int("i", 0) != 7 || p.Int("i64", 0) != 9 || p.Int("f", 0) != 2 || p.Int("missing", -1) != -1 {
		t.Error("Int accessor")
	}
	if !p.Bool("b", false) || p.Bool("missing", false) {
		t.Error("Bool accessor")
	}
	if p.String("s", "") != "hello" || p.String("missing", "d") != "d" {
		t.Error("String accessor")
	}
	if p.DType("dt", Bool) != Int16 || p.DType("dts", Bool) != UInt32 || p.DType("missing", Float32) != Float32 {
		t.Error("DType accessor")
	}
	if got := p.Floats("fs", nil); len(got) != 2 || got[1] != 2 {
		t.Error("Floats accessor")
	}
	if got := p.Floats("is", nil); len(got) != 2 || got[1] != 4 {
		t.Error("Floats accepts []int64")
	}
	if got := p.Ints("is", nil); len(got) != 2 || got[0] != 3 {
		t.Error("Ints accessor")
	}
	keys := p.Keys()
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Errorf("Keys not sorted: %v", keys)
		}
	}
	clone := p.Clone()
	clone["f"] = 9.9
	if p.Float("f", 0) != 2.5 {
		t.Error("Clone is not independent")
	}
}

func buildValid() *Model {
	b := NewBuilder("M")
	x := b.Inport("x", Int32)
	y := b.Inport("y", Int32)
	b.Outport("s", Int32, b.Add2(x, y))
	return b.Model()
}

func TestValidateAccepts(t *testing.T) {
	if err := buildValid().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
}

func TestValidateRejectsDuplicateNames(t *testing.T) {
	m := buildValid()
	m.Root.Blocks[1].Name = m.Root.Blocks[0].Name
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-name error, got %v", err)
	}
}

func TestValidateRejectsDoubleDriver(t *testing.T) {
	m := buildValid()
	m.Root.Lines = append(m.Root.Lines, m.Root.Lines[0])
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "multiple drivers") {
		t.Errorf("want multiple-driver error, got %v", err)
	}
}

func TestValidateRejectsDanglingLine(t *testing.T) {
	m := buildValid()
	m.Root.Lines = append(m.Root.Lines, Line{
		Src: PortRef{Block: 99, Port: 0},
		Dst: PortRef{Block: 0, Port: 0},
	})
	if err := m.Validate(); err == nil {
		t.Error("want missing-block error")
	}
}

func TestValidateRejectsDuplicatePortIndex(t *testing.T) {
	b := NewBuilder("M")
	x := b.Inport("x", Int32)
	y := b.Inport("y", Int32)
	b.Outport("o", Int32, b.Add2(x, y))
	m := b.Model()
	m.Root.BlockByName("y").Params["Index"] = 1 // collide with x
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "share index") {
		t.Errorf("want index collision error, got %v", err)
	}
}

func TestValidateRejectsNonPositiveIndex(t *testing.T) {
	m := buildValid()
	m.Root.BlockByName("x").Params["Index"] = 0
	if err := m.Validate(); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("want positive-index error, got %v", err)
	}
}

func TestInputLayoutOrderAndOffsets(t *testing.T) {
	b := NewBuilder("L")
	a := b.Inport("a", Int8)
	c := b.Inport("c", Float64)
	d := b.Inport("d", UInt16)
	sum := b.Add2(b.Cast(a, Float64), c)
	b.Outport("o", Float64, b.Add2(sum, b.Cast(d, Float64)))
	m := b.Model()

	lay := m.InputLayout()
	if lay.TupleSize != 1+8+2 {
		t.Fatalf("tuple size %d, want 11", lay.TupleSize)
	}
	wantOffsets := []int{0, 1, 9}
	wantNames := []string{"a", "c", "d"}
	for i, f := range lay.Fields {
		if f.Offset != wantOffsets[i] || f.Name != wantNames[i] {
			t.Errorf("field %d: %+v", i, f)
		}
	}
}

func TestInportsSortedByIndexNotCreation(t *testing.T) {
	// Build out of order, then check Index drives the layout.
	g := Graph{}
	g.Blocks = append(g.Blocks,
		&Block{ID: 0, Name: "second", Kind: "Inport", Params: Params{"Index": 2, "Type": Int8}},
		&Block{ID: 1, Name: "first", Kind: "Inport", Params: Params{"Index": 1, "Type": Int32}},
		&Block{ID: 2, Name: "t1", Kind: "Terminator", Params: Params{}},
		&Block{ID: 3, Name: "t2", Kind: "Terminator", Params: Params{}},
	)
	g.Lines = append(g.Lines,
		Line{Src: PortRef{Block: 0}, Dst: PortRef{Block: 2}},
		Line{Src: PortRef{Block: 1}, Dst: PortRef{Block: 3}},
	)
	m := &Model{Name: "O", Root: g}
	ports := m.Inports()
	if ports[0].Name != "first" || ports[1].Name != "second" {
		t.Errorf("inports not sorted by Index: %s, %s", ports[0].Name, ports[1].Name)
	}
}

func TestGraphHelpers(t *testing.T) {
	m := buildValid()
	g := &m.Root
	if g.Block(-1) != nil || g.Block(BlockID(len(g.Blocks))) != nil {
		t.Error("out-of-range Block should be nil")
	}
	if g.BlockByName("nope") != nil {
		t.Error("missing name should be nil")
	}
	sum := g.BlockByName("Sum1")
	if sum == nil {
		t.Fatal("builder should have auto-named the Sum block Sum1")
	}
	in := g.InputSources(sum.ID, 2)
	if !in[0].IsValid() || !in[1].IsValid() {
		t.Error("sum inputs should be connected")
	}
	fan := g.FanOut(PortRef{Block: g.BlockByName("x").ID, Port: 0})
	if len(fan) != 1 {
		t.Errorf("fan-out of x: %d, want 1", len(fan))
	}
}

func TestSubsystemBuilderCounts(t *testing.T) {
	b := NewBuilder("H")
	u := b.Inport("u", Float64)
	h, sub := b.Subsystem("inner")
	si := sub.Inport("si", Float64)
	sub.Outport("so", Float64, sub.Gain(si, 2))
	b.Connect(u, h.In(0))
	b.Outport("o", Float64, h.Out(0))
	m := b.Model()
	if got := m.Root.CountBlocks(); got != 3+3 {
		t.Errorf("CountBlocks includes nested: got %d, want 6", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("hierarchical model invalid: %v", err)
	}
}
