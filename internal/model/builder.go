package model

import "fmt"

// Builder constructs a Graph (or whole Model) programmatically. It is the
// API the benchmark models and examples use in place of drawing diagrams.
//
//	b := model.NewBuilder("SolarPV")
//	en := b.Inport("Enable", model.Int8)
//	pw := b.Inport("Power", model.Int32)
//	hot := b.Rel(">=", pw, b.ConstT(model.Int32, 500))
//	b.Outport("Ret", model.Int32, b.Switch(hot, pw, b.ConstT(model.Int32, 0)))
//	m := b.Model()
type Builder struct {
	name   string
	graph  *Graph
	parent *Builder
	nIn    int // count of Inport blocks added (for auto index)
	nOut   int
	anon   int // counter for generated block names
}

// NewBuilder creates a builder for a new top-level model graph.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, graph: &Graph{}}
}

// Name returns the model name the builder was created with.
func (b *Builder) Name() string { return b.name }

// Graph returns the graph under construction.
func (b *Builder) Graph() *Graph { return b.graph }

// Model finalizes the (top-level) builder into a Model.
func (b *Builder) Model() *Model {
	if b.parent != nil {
		panic("model: Model() called on a subsystem builder")
	}
	return &Model{Name: b.name, Root: *b.graph, SampleTime: 0.01}
}

func (b *Builder) autoName(kind string) string {
	b.anon++
	return fmt.Sprintf("%s%d", kind, b.anon)
}

// Add appends a block of the given kind and returns its handle. A empty name
// is replaced with a generated unique one.
func (b *Builder) Add(kind, name string, params Params) *BlockHandle {
	if name == "" {
		name = b.autoName(kind)
	}
	if params == nil {
		params = Params{}
	}
	blk := &Block{
		ID:     BlockID(len(b.graph.Blocks)),
		Name:   name,
		Kind:   kind,
		Params: params,
	}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return &BlockHandle{b: b, blk: blk}
}

// Connect wires a source output port to a destination input port.
func (b *Builder) Connect(src, dst PortRef) {
	b.graph.Lines = append(b.graph.Lines, Line{Src: src, Dst: dst})
}

// BlockHandle is a fluent reference to a block being built.
type BlockHandle struct {
	b   *Builder
	blk *Block
}

// ID returns the block's identifier.
func (h *BlockHandle) ID() BlockID { return h.blk.ID }

// Block returns the underlying block.
func (h *BlockHandle) Block() *Block { return h.blk }

// Out returns a reference to output port i.
func (h *BlockHandle) Out(i int) PortRef { return PortRef{Block: h.blk.ID, Port: i} }

// In returns a reference to input port i.
func (h *BlockHandle) In(i int) PortRef { return PortRef{Block: h.blk.ID, Port: i} }

// From connects the given sources to this block's input ports 0..n-1 and
// returns the handle for chaining.
func (h *BlockHandle) From(srcs ...PortRef) *BlockHandle {
	for i, s := range srcs {
		h.b.Connect(s, h.In(i))
	}
	return h
}

// --- common-block conveniences ----------------------------------------------
// Each returns the PortRef of the block's (single) output so expressions
// compose naturally.

// Inport adds a root input port of the given type.
func (b *Builder) Inport(name string, dt DType) PortRef {
	b.nIn++
	h := b.Add("Inport", name, Params{"Type": dt, "Index": b.nIn})
	return h.Out(0)
}

// Outport adds a root output port of the given type fed by src.
func (b *Builder) Outport(name string, dt DType, src PortRef) *BlockHandle {
	b.nOut++
	h := b.Add("Outport", name, Params{"Type": dt, "Index": b.nOut})
	b.Connect(src, h.In(0))
	return h
}

// Const adds a double Constant block.
func (b *Builder) Const(v float64) PortRef { return b.ConstT(Float64, v) }

// ConstT adds a Constant block with an explicit output type.
func (b *Builder) ConstT(dt DType, v float64) PortRef {
	return b.Add("Constant", "", Params{"Value": v, "Type": dt}).Out(0)
}

// Gain multiplies src by k.
func (b *Builder) Gain(src PortRef, k float64) PortRef {
	return b.Add("Gain", "", Params{"Gain": k}).From(src).Out(0)
}

// Sum adds a Sum block; signs is a string like "+-" giving one sign per input.
func (b *Builder) Sum(signs string, srcs ...PortRef) PortRef {
	return b.Add("Sum", "", Params{"Signs": signs}).From(srcs...).Out(0)
}

// Add2 adds two signals.
func (b *Builder) Add2(x, y PortRef) PortRef { return b.Sum("++", x, y) }

// Sub subtracts y from x.
func (b *Builder) Sub(x, y PortRef) PortRef { return b.Sum("+-", x, y) }

// Mul multiplies two signals with a Product block.
func (b *Builder) Mul(x, y PortRef) PortRef {
	return b.Add("Product", "", Params{"Ops": "**"}).From(x, y).Out(0)
}

// Div divides x by y with a Product block.
func (b *Builder) Div(x, y PortRef) PortRef {
	return b.Add("Product", "", Params{"Ops": "*/"}).From(x, y).Out(0)
}

// Rel adds a RelationalOperator block; op is one of == ~= < <= > >=.
func (b *Builder) Rel(op string, x, y PortRef) PortRef {
	return b.Add("RelationalOperator", "", Params{"Op": op}).From(x, y).Out(0)
}

// Logic adds a LogicalOperator block; op is AND, OR, NAND, NOR, XOR or NOT.
func (b *Builder) Logic(op string, srcs ...PortRef) PortRef {
	return b.Add("LogicalOperator", "", Params{"Op": op, "Inputs": len(srcs)}).From(srcs...).Out(0)
}

// And is Logic("AND", ...).
func (b *Builder) And(srcs ...PortRef) PortRef { return b.Logic("AND", srcs...) }

// Or is Logic("OR", ...).
func (b *Builder) Or(srcs ...PortRef) PortRef { return b.Logic("OR", srcs...) }

// Not is Logic("NOT", x).
func (b *Builder) Not(x PortRef) PortRef { return b.Logic("NOT", x) }

// Switch adds a Switch block that outputs onTrue when ctrl is nonzero
// (Criteria "~=0") and onFalse otherwise.
func (b *Builder) Switch(ctrl, onTrue, onFalse PortRef) PortRef {
	h := b.Add("Switch", "", Params{"Criteria": "~=0", "Threshold": 0.0})
	b.Connect(onTrue, h.In(0))
	b.Connect(ctrl, h.In(1))
	b.Connect(onFalse, h.In(2))
	return h.Out(0)
}

// SwitchGE adds a Switch with Criteria ">=Threshold".
func (b *Builder) SwitchGE(ctrl PortRef, thresh float64, onTrue, onFalse PortRef) PortRef {
	h := b.Add("Switch", "", Params{"Criteria": ">=", "Threshold": thresh})
	b.Connect(onTrue, h.In(0))
	b.Connect(ctrl, h.In(1))
	b.Connect(onFalse, h.In(2))
	return h.Out(0)
}

// UnitDelay adds a one-step delay with the given initial value; the output
// type follows the input.
func (b *Builder) UnitDelay(src PortRef, init float64) PortRef {
	return b.Add("UnitDelay", "", Params{"Init": init}).From(src).Out(0)
}

// DelayT adds a UnitDelay with an explicit element type (needed when the
// delay participates in a cycle so the type cannot be inferred from its
// driver).
func (b *Builder) DelayT(src PortRef, dt DType, init float64) PortRef {
	return b.Add("UnitDelay", "", Params{"Init": init, "Type": dt}).From(src).Out(0)
}

// Saturation clamps src to [lo, hi].
func (b *Builder) Saturation(src PortRef, lo, hi float64) PortRef {
	return b.Add("Saturation", "", Params{"Lower": lo, "Upper": hi}).From(src).Out(0)
}

// Abs adds an Abs block.
func (b *Builder) Abs(src PortRef) PortRef { return b.Add("Abs", "", nil).From(src).Out(0) }

// MinMax adds a MinMax block; fn is "min" or "max".
func (b *Builder) MinMax(fn string, srcs ...PortRef) PortRef {
	return b.Add("MinMax", "", Params{"Fn": fn, "Inputs": len(srcs)}).From(srcs...).Out(0)
}

// Cast adds a DataTypeConversion block to dt.
func (b *Builder) Cast(src PortRef, dt DType) PortRef {
	return b.Add("DataTypeConversion", "", Params{"Type": dt}).From(src).Out(0)
}

// Matlab adds a MATLAB Function block. The script declares its signature via
// the mlfunc language; ins are wired in declaration order.
func (b *Builder) Matlab(name, script string, ins ...PortRef) *BlockHandle {
	return b.Add("MatlabFunction", name, Params{}).From(ins...).setScript(script)
}

func (h *BlockHandle) setScript(s string) *BlockHandle {
	h.blk.Script = s
	return h
}

// Chart adds a Stateflow chart block with the given opaque chart spec
// (a *stateflow.Chart). Inputs are wired in chart-declaration order.
func (b *Builder) Chart(name string, spec any, ins ...PortRef) *BlockHandle {
	h := b.Add("Chart", name, Params{}).From(ins...)
	h.blk.ChartSpec = spec
	return h
}

// Subsystem opens a nested builder for an atomic subsystem block. The
// returned child builder adds blocks to the nested graph; its Inport/Outport
// blocks define the subsystem's interface.
func (b *Builder) Subsystem(name string) (*BlockHandle, *Builder) {
	return b.subsystem("Subsystem", name, nil)
}

// EnabledSubsystem opens a conditionally-executed subsystem: input port 0 is
// the enable signal, and while disabled the outputs hold their previous
// values (initialized from each inner Outport's "Init" parameter).
func (b *Builder) EnabledSubsystem(name string, enable PortRef) (*BlockHandle, *Builder) {
	h, sub := b.subsystem("EnabledSubsystem", name, nil)
	b.Connect(enable, h.In(0))
	return h, sub
}

func (b *Builder) subsystem(kind, name string, params Params) (*BlockHandle, *Builder) {
	h := b.Add(kind, name, params)
	sub := &Builder{name: name, graph: &Graph{}, parent: b}
	h.blk.Sub = sub.graph
	return h, sub
}

// If adds an If block with the given boolean condition expressions over
// inputs u1..un (mlfunc syntax, e.g. "u1 > 0 && u2 < 5"). It has
// len(conds)+1 outputs: one action signal per condition plus the else action.
func (b *Builder) If(name string, conds []string, ins ...PortRef) *BlockHandle {
	return b.Add("If", name, Params{"Conditions": conds, "Inputs": len(ins)}).From(ins...)
}

// ActionSubsystem opens a subsystem executed when the given If/SwitchCase
// action signal is true; outputs hold while inactive.
func (b *Builder) ActionSubsystem(name string, action PortRef) (*BlockHandle, *Builder) {
	h, sub := b.subsystem("ActionSubsystem", name, nil)
	b.Connect(action, h.In(0))
	return h, sub
}
