package model

import (
	"errors"
	"fmt"
)

// Validate performs structural checks that do not require the block catalog:
// line endpoints exist, no input port has two drivers, block names are unique
// within a graph, port-block indexes are unique, and nested graphs are sound.
// Semantic checks (port counts, type inference) live in the blocks package.
func (m *Model) Validate() error {
	if m.Name == "" {
		return errors.New("model: empty model name")
	}
	return validateGraph(&m.Root, m.Name)
}

func validateGraph(g *Graph, path string) error {
	names := make(map[string]bool, len(g.Blocks))
	for i, b := range g.Blocks {
		if b == nil {
			return fmt.Errorf("model: %s: nil block at index %d", path, i)
		}
		if int(b.ID) != i {
			return fmt.Errorf("model: %s/%s: block ID %d does not match index %d", path, b.Name, b.ID, i)
		}
		if b.Name == "" {
			return fmt.Errorf("model: %s: block %d has empty name", path, i)
		}
		if names[b.Name] {
			return fmt.Errorf("model: %s: duplicate block name %q", path, b.Name)
		}
		names[b.Name] = true
	}

	seenDst := make(map[PortRef]bool, len(g.Lines))
	for _, l := range g.Lines {
		if g.Block(l.Src.Block) == nil {
			return fmt.Errorf("model: %s: line source references missing block %d", path, l.Src.Block)
		}
		if g.Block(l.Dst.Block) == nil {
			return fmt.Errorf("model: %s: line destination references missing block %d", path, l.Dst.Block)
		}
		if l.Src.Port < 0 || l.Dst.Port < 0 {
			return fmt.Errorf("model: %s: negative port index on line %v->%v", path, l.Src, l.Dst)
		}
		if seenDst[l.Dst] {
			b := g.Block(l.Dst.Block)
			return fmt.Errorf("model: %s/%s: input port %d has multiple drivers", path, b.Name, l.Dst.Port)
		}
		seenDst[l.Dst] = true
	}

	if err := validatePortIndexes(g, path, "Inport"); err != nil {
		return err
	}
	if err := validatePortIndexes(g, path, "Outport"); err != nil {
		return err
	}

	for _, b := range g.Blocks {
		if b.Sub != nil {
			if err := validateGraph(b.Sub, path+"/"+b.Name); err != nil {
				return err
			}
		}
	}
	return nil
}

func validatePortIndexes(g *Graph, path, kind string) error {
	seen := make(map[int64]string)
	for _, b := range g.BlocksOfKind(kind) {
		idx := b.Params.Int("Index", 0)
		if idx <= 0 {
			return fmt.Errorf("model: %s/%s: %s index must be positive, got %d", path, b.Name, kind, idx)
		}
		if prev, dup := seen[idx]; dup {
			return fmt.Errorf("model: %s: %s blocks %q and %q share index %d", path, prev, b.Name, kind, idx)
		}
		seen[idx] = b.Name
	}
	return nil
}
