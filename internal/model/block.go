package model

import (
	"fmt"
	"sort"
)

// BlockID identifies a block within one Graph. IDs are dense indexes into
// Graph.Blocks, assigned by the Builder or the parser.
type BlockID int32

// NoBlock is the zero PortRef target used for unconnected ports.
const NoBlock BlockID = -1

// PortRef names one port of one block. Output and input ports are numbered
// independently from zero.
type PortRef struct {
	Block BlockID
	Port  int
}

// IsValid reports whether the reference points at a real block.
func (p PortRef) IsValid() bool { return p.Block >= 0 }

func (p PortRef) String() string { return fmt.Sprintf("%d:%d", p.Block, p.Port) }

// Line is a directed connection from one source output port to one
// destination input port. Simulink lines may fan out; fan-out is represented
// as multiple Lines sharing a Src.
type Line struct {
	Src PortRef
	Dst PortRef
}

// Params carries a block's dialog parameters. Values are one of:
// float64, int, int64, bool, string, DType, []float64, []int64, or [][]int64.
// Typed accessors apply defaults so block templates stay terse.
type Params map[string]any

// Float returns the parameter as float64 (accepting any numeric), or def.
func (p Params) Float(key string, def float64) float64 {
	v, ok := p[key]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case float64:
		return x
	case float32:
		return float64(x)
	case int:
		return float64(x)
	case int64:
		return float64(x)
	case bool:
		if x {
			return 1
		}
		return 0
	}
	return def
}

// Int returns the parameter as int64 (accepting any numeric), or def.
func (p Params) Int(key string, def int64) int64 {
	v, ok := p[key]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case int:
		return int64(x)
	case int64:
		return x
	case float64:
		return int64(x)
	case bool:
		if x {
			return 1
		}
		return 0
	}
	return def
}

// Bool returns the parameter as bool, or def.
func (p Params) Bool(key string, def bool) bool {
	v, ok := p[key]
	if !ok {
		return def
	}
	switch x := v.(type) {
	case bool:
		return x
	case int:
		return x != 0
	case float64:
		return x != 0
	}
	return def
}

// String returns the parameter as string, or def.
func (p Params) String(key, def string) string {
	if v, ok := p[key].(string); ok {
		return v
	}
	return def
}

// DType returns the parameter as a data type, or def. String values are
// parsed with ParseDType.
func (p Params) DType(key string, def DType) DType {
	switch x := p[key].(type) {
	case DType:
		return x
	case string:
		if d, err := ParseDType(x); err == nil {
			return d
		}
	}
	return def
}

// Floats returns a numeric-slice parameter, or def.
func (p Params) Floats(key string, def []float64) []float64 {
	switch x := p[key].(type) {
	case []float64:
		return x
	case []int64:
		out := make([]float64, len(x))
		for i, v := range x {
			out[i] = float64(v)
		}
		return out
	}
	return def
}

// Ints returns an integer-slice parameter, or def.
func (p Params) Ints(key string, def []int64) []int64 {
	switch x := p[key].(type) {
	case []int64:
		return x
	case []int:
		out := make([]int64, len(x))
		for i, v := range x {
			out[i] = int64(v)
		}
		return out
	}
	return def
}

// Keys returns the parameter names in sorted order (for stable serialization).
func (p Params) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clone returns a shallow copy of the parameter map.
func (p Params) Clone() Params {
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Block is one diagram element: a primitive block, a subsystem, a Stateflow
// chart, or a MATLAB Function block. Structured content (nested graph, chart,
// function source) lives in the dedicated fields; scalar dialog parameters
// live in Params.
type Block struct {
	ID     BlockID
	Name   string
	Kind   string // block type, e.g. "Sum", "Switch", "UnitDelay", "Subsystem"
	Params Params

	// Sub holds the nested graph for Kind == "Subsystem" and the
	// conditionally-executed subsystem kinds.
	Sub *Graph

	// Script holds the function body source for Kind == "MatlabFunction".
	Script string

	// ChartSpec holds the serialized chart for Kind == "Chart"; the
	// stateflow package parses/loads it. It is kept as an opaque payload
	// here to keep the model package dependency-free.
	ChartSpec any
}

// Path returns a stable human-readable identifier for the block used in
// coverage reports ("<name>(<kind>)").
func (b *Block) Path() string { return fmt.Sprintf("%s(%s)", b.Name, b.Kind) }

// Graph is a flat diagram: a set of blocks plus the lines connecting them.
// Subsystem blocks nest further Graphs.
type Graph struct {
	Blocks []*Block
	Lines  []Line
}

// Block returns the block with the given ID, or nil.
func (g *Graph) Block(id BlockID) *Block {
	if id < 0 || int(id) >= len(g.Blocks) {
		return nil
	}
	return g.Blocks[id]
}

// BlockByName returns the first block with the given name, or nil.
func (g *Graph) BlockByName(name string) *Block {
	for _, b := range g.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// InputSources returns, for block id, a slice mapping input port index to the
// source PortRef feeding it (NoBlock for unconnected). n is the number of
// input ports to size the slice for.
func (g *Graph) InputSources(id BlockID, n int) []PortRef {
	in := make([]PortRef, n)
	for i := range in {
		in[i] = PortRef{Block: NoBlock}
	}
	for _, l := range g.Lines {
		if l.Dst.Block == id && l.Dst.Port < n {
			in[l.Dst.Port] = l.Src
		}
	}
	return in
}

// FanOut returns every destination fed by the given source port.
func (g *Graph) FanOut(src PortRef) []PortRef {
	var out []PortRef
	for _, l := range g.Lines {
		if l.Src == src {
			out = append(out, l.Dst)
		}
	}
	return out
}

// BlocksOfKind returns all blocks of the given kind in ID order.
func (g *Graph) BlocksOfKind(kind string) []*Block {
	var out []*Block
	for _, b := range g.Blocks {
		if b.Kind == kind {
			out = append(out, b)
		}
	}
	return out
}

// CountBlocks returns the total number of blocks including nested subsystem
// contents — the "#Block" statistic of the paper's Table 2.
func (g *Graph) CountBlocks() int {
	n := 0
	for _, b := range g.Blocks {
		n++
		if b.Sub != nil {
			n += b.Sub.CountBlocks()
		}
	}
	return n
}

// Model is a top-level design: a named root graph executed at a fixed
// discrete sample time.
type Model struct {
	Name       string
	Root       Graph
	SampleTime float64 // seconds per step; informational (single-rate)
}

// Inports returns the root-level Inport blocks sorted by their "Index"
// parameter. Their order and data types define the fuzz driver's tuple
// layout (paper §3.1.1, "data segmentation code").
func (m *Model) Inports() []*Block {
	return sortedPorts(&m.Root, "Inport")
}

// Outports returns the root-level Outport blocks sorted by index.
func (m *Model) Outports() []*Block {
	return sortedPorts(&m.Root, "Outport")
}

func sortedPorts(g *Graph, kind string) []*Block {
	ports := g.BlocksOfKind(kind)
	sort.SliceStable(ports, func(i, j int) bool {
		return ports[i].Params.Int("Index", 0) < ports[j].Params.Int("Index", 0)
	})
	return ports
}

// Field describes one inport (or outport) slot in the binary tuple layout:
// the paper's "field" unit for field-wise mutation.
type Field struct {
	Name   string
	Type   DType
	Offset int // byte offset within a tuple
}

// Layout describes the binary encoding of one model iteration's inputs: an
// ordered list of fields and the total tuple size in bytes.
type Layout struct {
	Fields    []Field
	TupleSize int
}

// InputLayout computes the tuple layout from the model's root inports.
func (m *Model) InputLayout() Layout {
	var lay Layout
	off := 0
	for _, p := range m.Inports() {
		dt := p.Params.DType("Type", Float64)
		lay.Fields = append(lay.Fields, Field{Name: p.Name, Type: dt, Offset: off})
		off += dt.Size()
	}
	lay.TupleSize = off
	return lay
}

// OutputLayout computes the field list for the model's root outports.
func (m *Model) OutputLayout() Layout {
	var lay Layout
	off := 0
	for _, p := range m.Outports() {
		dt := p.Params.DType("Type", Float64)
		lay.Fields = append(lay.Fields, Field{Name: p.Name, Type: dt, Offset: off})
		off += dt.Size()
	}
	lay.TupleSize = off
	return lay
}
