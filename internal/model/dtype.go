// Package model defines the block-diagram data model used throughout CFTCG:
// typed signals, blocks, connection graphs, hierarchical subsystems, and the
// top-level Model that the parser produces and the code generator consumes.
//
// The model mirrors the subset of Simulink semantics the paper's pipeline
// needs: single-rate discrete execution, scalar typed signals, virtual and
// conditionally-executed subsystems, Stateflow chart blocks, and MATLAB
// Function blocks.
package model

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DType identifies the data type carried by a signal, port or parameter.
// The set matches the Simulink built-in numeric types CFTCG's fuzz driver
// understands (the paper's Figure 3 uses int8/int32 fields).
type DType uint8

// The supported signal data types.
const (
	Bool DType = iota
	Int8
	UInt8
	Int16
	UInt16
	Int32
	UInt32
	Float32
	Float64
	numDTypes
)

var dtypeNames = [...]string{
	Bool:    "boolean",
	Int8:    "int8",
	UInt8:   "uint8",
	Int16:   "int16",
	UInt16:  "uint16",
	Int32:   "int32",
	UInt32:  "uint32",
	Float32: "single",
	Float64: "double",
}

var dtypeSizes = [...]int{
	Bool:    1,
	Int8:    1,
	UInt8:   1,
	Int16:   2,
	UInt16:  2,
	Int32:   4,
	UInt32:  4,
	Float32: 4,
	Float64: 8,
}

// String returns the Simulink name of the type (e.g. "int32", "double").
func (d DType) String() string {
	if int(d) < len(dtypeNames) {
		return dtypeNames[d]
	}
	return fmt.Sprintf("DType(%d)", uint8(d))
}

// Size returns the width of the type in bytes. This is the unit the fuzz
// driver uses to slice the input byte stream into inport fields.
func (d DType) Size() int {
	if int(d) < len(dtypeSizes) {
		return dtypeSizes[d]
	}
	return 0
}

// Valid reports whether d is one of the defined data types.
func (d DType) Valid() bool { return d < numDTypes }

// IsFloat reports whether d is single or double precision floating point.
func (d DType) IsFloat() bool { return d == Float32 || d == Float64 }

// IsInteger reports whether d is one of the integer types (Bool excluded).
func (d DType) IsInteger() bool { return d >= Int8 && d <= UInt32 }

// IsSigned reports whether d is a signed integer type.
func (d DType) IsSigned() bool { return d == Int8 || d == Int16 || d == Int32 }

// IsBool reports whether d is the boolean type.
func (d DType) IsBool() bool { return d == Bool }

// MinInt returns the smallest representable value for integer type d.
func (d DType) MinInt() int64 {
	switch d {
	case Int8:
		return math.MinInt8
	case Int16:
		return math.MinInt16
	case Int32:
		return math.MinInt32
	default:
		return 0
	}
}

// MaxInt returns the largest representable value for integer (or bool) type d.
func (d DType) MaxInt() int64 {
	switch d {
	case Bool:
		return 1
	case Int8:
		return math.MaxInt8
	case UInt8:
		return math.MaxUint8
	case Int16:
		return math.MaxInt16
	case UInt16:
		return math.MaxUint16
	case Int32:
		return math.MaxInt32
	case UInt32:
		return math.MaxUint32
	default:
		return 0
	}
}

// ParseDType resolves a Simulink type name ("int8", "boolean", "double", ...)
// to a DType. It accepts both Simulink spellings and Go-style aliases.
func ParseDType(s string) (DType, error) {
	switch s {
	case "boolean", "bool":
		return Bool, nil
	case "int8":
		return Int8, nil
	case "uint8":
		return UInt8, nil
	case "int16":
		return Int16, nil
	case "uint16":
		return UInt16, nil
	case "int32", "int":
		return Int32, nil
	case "uint32", "uint":
		return UInt32, nil
	case "single", "float32", "float":
		return Float32, nil
	case "double", "float64":
		return Float64, nil
	}
	return Bool, fmt.Errorf("model: unknown data type %q", s)
}

// CName returns the C spelling of the type as it appears in generated fuzz
// code (the paper's Figure 3 uses int8/int32 style names).
func (d DType) CName() string {
	switch d {
	case Bool:
		return "boolean_T"
	case Float32:
		return "real32_T"
	case Float64:
		return "real_T"
	default:
		return d.String()
	}
}

// --- raw value encoding -----------------------------------------------------
//
// Throughout the pipeline a scalar signal value is carried as a raw uint64
// whose low d.Size()*8 bits hold the little-endian representation of the
// value. This keeps the fast VM register file a flat []uint64 while still
// being exact for every supported type.

// EncodeInt wraps v to the representable range of integer/bool type d and
// returns its raw encoding. Wrapping (not saturating) matches two's-complement
// storage; blocks that saturate do so explicitly.
func EncodeInt(d DType, v int64) uint64 {
	switch d {
	case Bool:
		if v != 0 {
			return 1
		}
		return 0
	case Int8:
		return uint64(uint8(int8(v)))
	case UInt8:
		return uint64(uint8(v))
	case Int16:
		return uint64(uint16(int16(v)))
	case UInt16:
		return uint64(uint16(v))
	case Int32:
		return uint64(uint32(int32(v)))
	case UInt32:
		return uint64(uint32(v))
	case Float32:
		return uint64(math.Float32bits(float32(v)))
	case Float64:
		return math.Float64bits(float64(v))
	}
	return 0
}

// DecodeInt interprets raw as integer/bool type d and returns its value,
// sign-extended for signed types.
func DecodeInt(d DType, raw uint64) int64 {
	switch d {
	case Bool:
		if raw&1 != 0 {
			return 1
		}
		return 0
	case Int8:
		return int64(int8(uint8(raw)))
	case UInt8:
		return int64(uint8(raw))
	case Int16:
		return int64(int16(uint16(raw)))
	case UInt16:
		return int64(uint16(raw))
	case Int32:
		return int64(int32(uint32(raw)))
	case UInt32:
		return int64(uint32(raw))
	}
	return 0
}

// EncodeFloat returns the raw encoding of floating point value v in type d.
func EncodeFloat(d DType, v float64) uint64 {
	if d == Float32 {
		return uint64(math.Float32bits(float32(v)))
	}
	return math.Float64bits(v)
}

// DecodeFloat interprets raw as floating point type d.
func DecodeFloat(d DType, raw uint64) float64 {
	if d == Float32 {
		return float64(math.Float32frombits(uint32(raw)))
	}
	return math.Float64frombits(raw)
}

// Encode converts the numeric value v into the raw representation of type d,
// applying the same cast semantics as a C assignment (wrap for integers).
func Encode(d DType, v float64) uint64 {
	if d.IsFloat() {
		return EncodeFloat(d, v)
	}
	// C-style float->int conversion truncates toward zero; out-of-range is
	// clamped to the type bounds to stay deterministic across platforms.
	t := math.Trunc(v)
	if math.IsNaN(t) {
		t = 0
	}
	if t < float64(d.MinInt()) {
		t = float64(d.MinInt())
	}
	if t > float64(d.MaxInt()) {
		t = float64(d.MaxInt())
	}
	return EncodeInt(d, int64(t))
}

// Decode interprets raw as type d and returns its numeric value as float64.
// Every supported type is exactly representable except extreme uint32/int64
// corners, which the scalar model types do not reach.
func Decode(d DType, raw uint64) float64 {
	if d.IsFloat() {
		return DecodeFloat(d, raw)
	}
	return float64(DecodeInt(d, raw))
}

// Truth interprets raw of type d as a logical value (non-zero is true),
// matching Simulink's interpretation of numeric signals at logic inputs.
func Truth(d DType, raw uint64) bool {
	if d.IsFloat() {
		return Decode(d, raw) != 0
	}
	return DecodeInt(d, raw) != 0
}

// PutRaw serializes raw (of type d) into b in little-endian order, using
// exactly d.Size() bytes. It is the inverse of GetRaw and defines the binary
// test-case layout produced by the fuzzer and consumed by the fuzz driver.
func PutRaw(d DType, b []byte, raw uint64) {
	switch d.Size() {
	case 1:
		b[0] = byte(raw)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(raw))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(raw))
	case 8:
		binary.LittleEndian.PutUint64(b, raw)
	}
}

// GetRaw deserializes a raw value of type d from little-endian bytes.
func GetRaw(d DType, b []byte) uint64 {
	switch d.Size() {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

// Cast converts a raw value from type `from` to type `to` with C semantics:
// float<->int truncation, integer widening/narrowing with wrap, bool
// normalization.
func Cast(to, from DType, raw uint64) uint64 {
	if to == from {
		return raw
	}
	if from.IsFloat() {
		return Encode(to, DecodeFloat(from, raw))
	}
	v := DecodeInt(from, raw)
	if to.IsFloat() {
		return EncodeFloat(to, float64(v))
	}
	return EncodeInt(to, v)
}
