package model

import (
	"math"
	"testing"
	"testing/quick"
)

var allTypes = []DType{Bool, Int8, UInt8, Int16, UInt16, Int32, UInt32, Float32, Float64}

func TestDTypeSizesAndNames(t *testing.T) {
	want := map[DType]struct {
		size int
		name string
	}{
		Bool: {1, "boolean"}, Int8: {1, "int8"}, UInt8: {1, "uint8"},
		Int16: {2, "int16"}, UInt16: {2, "uint16"}, Int32: {4, "int32"},
		UInt32: {4, "uint32"}, Float32: {4, "single"}, Float64: {8, "double"},
	}
	for dt, w := range want {
		if dt.Size() != w.size {
			t.Errorf("%s: size %d, want %d", dt, dt.Size(), w.size)
		}
		if dt.String() != w.name {
			t.Errorf("size %d: name %q, want %q", dt.Size(), dt.String(), w.name)
		}
		parsed, err := ParseDType(w.name)
		if err != nil || parsed != dt {
			t.Errorf("ParseDType(%q) = %v, %v", w.name, parsed, err)
		}
	}
	if _, err := ParseDType("complex128"); err == nil {
		t.Error("ParseDType should reject unknown names")
	}
}

func TestIntRanges(t *testing.T) {
	cases := []struct {
		dt       DType
		min, max int64
	}{
		{Bool, 0, 1},
		{Int8, -128, 127},
		{UInt8, 0, 255},
		{Int16, -32768, 32767},
		{UInt16, 0, 65535},
		{Int32, math.MinInt32, math.MaxInt32},
		{UInt32, 0, math.MaxUint32},
	}
	for _, c := range cases {
		if c.dt.MinInt() != c.min || c.dt.MaxInt() != c.max {
			t.Errorf("%s: range [%d,%d], want [%d,%d]", c.dt, c.dt.MinInt(), c.dt.MaxInt(), c.min, c.max)
		}
	}
}

// Property: EncodeInt/DecodeInt round-trips every in-range value exactly.
func TestEncodeDecodeIntRoundTrip(t *testing.T) {
	prop := func(raw int64) bool {
		for _, dt := range []DType{Int8, UInt8, Int16, UInt16, Int32, UInt32} {
			span := dt.MaxInt() - dt.MinInt() + 1
			v := dt.MinInt() + ((raw%span)+span)%span
			if DecodeInt(dt, EncodeInt(dt, v)) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer encoding wraps like two's complement.
func TestEncodeIntWraps(t *testing.T) {
	if got := DecodeInt(Int8, EncodeInt(Int8, 130)); got != -126 {
		t.Errorf("int8 wrap of 130: got %d, want -126", got)
	}
	if got := DecodeInt(UInt8, EncodeInt(UInt8, -1)); got != 255 {
		t.Errorf("uint8 wrap of -1: got %d, want 255", got)
	}
	if got := DecodeInt(Int32, EncodeInt(Int32, math.MaxInt32+1)); got != math.MinInt32 {
		t.Errorf("int32 wrap: got %d", got)
	}
}

// Property: float encode/decode round-trips bit patterns.
func TestEncodeDecodeFloatRoundTrip(t *testing.T) {
	prop := func(f float64) bool {
		if DecodeFloat(Float64, EncodeFloat(Float64, f)) != f && !math.IsNaN(f) {
			return false
		}
		f32 := float64(float32(f))
		got := DecodeFloat(Float32, EncodeFloat(Float32, f))
		return math.IsNaN(f32) || got == f32
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeClampsFloatToIntRange(t *testing.T) {
	if got := DecodeInt(Int8, Encode(Int8, 1e9)); got != 127 {
		t.Errorf("clamp high: got %d", got)
	}
	if got := DecodeInt(Int8, Encode(Int8, -1e9)); got != -128 {
		t.Errorf("clamp low: got %d", got)
	}
	if got := DecodeInt(Int16, Encode(Int16, math.NaN())); got != 0 {
		t.Errorf("NaN to int: got %d, want 0", got)
	}
	if got := DecodeInt(Int16, Encode(Int16, 12.9)); got != 12 {
		t.Errorf("truncation toward zero: got %d, want 12", got)
	}
	if got := DecodeInt(Int16, Encode(Int16, -12.9)); got != -12 {
		t.Errorf("truncation toward zero: got %d, want -12", got)
	}
}

// Property: PutRaw/GetRaw round-trips through the byte layout for every
// type — the property the fuzz driver's memcpy segmentation relies on.
func TestPutGetRawRoundTrip(t *testing.T) {
	prop := func(raw uint64) bool {
		buf := make([]byte, 8)
		for _, dt := range allTypes {
			masked := raw
			if dt.Size() < 8 {
				masked &= (1 << uint(dt.Size()*8)) - 1
			}
			PutRaw(dt, buf, masked)
			if GetRaw(dt, buf) != masked {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTruth(t *testing.T) {
	if !Truth(Int8, EncodeInt(Int8, -5)) {
		t.Error("negative is logically true")
	}
	if Truth(Float64, EncodeFloat(Float64, 0)) {
		t.Error("0.0 is logically false")
	}
	if !Truth(Float32, EncodeFloat(Float32, -0.5)) {
		t.Error("-0.5 is logically true")
	}
	if Truth(Bool, 0) {
		t.Error("false is false")
	}
}

// Property: Cast(to, from, x) equals Encode(to, value-of(x)) for integer
// sources (the C assignment semantics both engines share).
func TestCastMatchesEncodeForInts(t *testing.T) {
	prop := func(v int32) bool {
		for _, from := range []DType{Int8, Int16, Int32, UInt8, UInt16, UInt32} {
			raw := EncodeInt(from, int64(v))
			val := DecodeInt(from, raw)
			for _, to := range allTypes {
				want := EncodeInt(to, val)
				if to.IsFloat() {
					want = EncodeFloat(to, float64(val))
				}
				if Cast(to, from, raw) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCastIdentity(t *testing.T) {
	for _, dt := range allTypes {
		raw := Encode(dt, 7)
		if Cast(dt, dt, raw) != raw {
			t.Errorf("%s: identity cast changed value", dt)
		}
	}
}
