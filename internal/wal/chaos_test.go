//go:build faultinject

package wal

import (
	"fmt"
	"testing"

	"cftcg/internal/faultinject"
)

// TestChaosShortWriteRecovered: an injected torn append fails the write,
// leaves no garbage behind (the log truncates back to the record boundary),
// and a reopen replays every intact record.
func TestChaosShortWriteRecovered(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Set("wal.append.short", faultinject.Failpoint{Kind: faultinject.KindShortWrite, Times: 1})
	if err := l.Append([]byte("torn-record")); err == nil {
		t.Fatal("short write should surface as an append error")
	}
	if l.Err() == nil {
		t.Fatal("sticky error should be set after a torn append")
	}
	// The in-place truncate healed the tail: the next append succeeds and
	// the log stays readable.
	if err := l.Append([]byte("post-torn")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	recs := collect(t, l2)
	if len(recs) != 4 || string(recs[3]) != "post-torn" {
		t.Fatalf("replay after torn append: %d records %q", len(recs), recs)
	}
}

// TestChaosSyncFailureSticky: an injected fsync failure fails the append and
// stays visible through Err — the daemon health plane's journal signal.
func TestChaosSyncFailureSticky(t *testing.T) {
	defer faultinject.Reset()
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	faultinject.Set("wal.sync", faultinject.Failpoint{Kind: faultinject.KindError, Msg: "io", Times: 1})
	if err := l.Append([]byte("a")); err == nil {
		t.Fatal("append should fail when fsync fails")
	}
	// Later appends succeed but the sticky error remains: the record that
	// missed its fsync may not be durable.
	if err := l.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if l.Err() == nil {
		t.Fatal("sync failure should stay sticky")
	}
}
