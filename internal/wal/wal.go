// Package wal is a crash-durable append-only record log: the persistence
// primitive under the campaign daemon's journal. Records are length-prefixed
// and CRC-checked, appends are fsync'd, segments rotate at a size threshold,
// and the reader tolerates a torn tail — the partial record a kill -9 or
// power loss leaves at the end of the live segment — by stopping cleanly at
// the last intact record. Mid-log corruption (an invalid record that is not
// the tail of the final segment) is reported as an error rather than
// silently skipped: that is data loss, not an interrupted write.
//
// On-disk layout: dir/<seq>.wal segment files, each a concatenation of
// frames [len uint32le][crc32 uint32le][payload]. Segment creation, rotation
// and removal fsync the directory so the namespace operations themselves
// survive power loss, the same discipline the fuzzer's checkpoint rename
// uses.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cftcg/internal/faultinject"
)

const (
	headerSize = 8
	// DefaultSegmentBytes is the rotation threshold when Options leaves it 0.
	DefaultSegmentBytes = 4 << 20
	// maxRecordBytes caps one record; a larger length prefix is treated as
	// corruption (or a torn tail) rather than an allocation request.
	maxRecordBytes = 64 << 20
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log is closed")

// Options tunes a Log.
type Options struct {
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync skips the per-append fsync. Only for tests that do not need
	// durability; a production journal must keep syncing.
	NoSync bool
}

// Log is an append-only segmented record log. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	seq    uint64
	size   int64
	err    error // sticky first append/sync failure (health plane)
	closed bool
}

// Open opens (creating if needed) the log in dir and prepares it for
// appending. The final segment's torn tail, if any, is truncated away so new
// appends land after the last intact record.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	segs, err := l.segments()
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.createSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	path := l.segPath(last)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	valid := scanValid(data)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if int64(len(data)) != valid {
		// Torn tail from a crash mid-append: drop it so the segment ends on
		// a record boundary again.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f, l.seq, l.size = f, last, valid
	return l, nil
}

// Append frames, writes and (unless NoSync) fsyncs one record, rotating to a
// new segment when the current one exceeds the size threshold. A failed
// append attempts to truncate the partial frame back off the segment; the
// first failure is remembered sticky in Err for the health plane.
func (l *Log) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(rec) == 0 {
		// An empty record's frame is indistinguishable from zero-filled
		// disk blocks, which the reader must treat as a torn tail.
		return errors.New("wal: empty record")
	}
	if err := faultinject.Eval("wal.append"); err != nil {
		return l.fail(err)
	}
	frame := make([]byte, headerSize+len(rec))
	binary.LittleEndian.PutUint32(frame, uint32(len(rec)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(rec))
	copy(frame[headerSize:], rec)

	if n, fired := faultinject.ShortWrite("wal.append.short", len(frame)); fired {
		l.f.Write(frame[:n])
		l.f.Sync()
		return l.failTorn(fmt.Errorf("wal: short write: %d of %d bytes", n, len(frame)))
	}
	if _, err := l.f.Write(frame); err != nil {
		return l.failTorn(fmt.Errorf("wal: append: %w", err))
	}
	if !l.opts.NoSync {
		if err := l.sync(); err != nil {
			return l.fail(err)
		}
	}
	l.size += int64(len(frame))
	if l.size >= l.opts.SegmentBytes {
		if err := l.createSegment(l.seq + 1); err != nil {
			return l.fail(err)
		}
	}
	return nil
}

// fail records the first error sticky and returns this one.
func (l *Log) fail(err error) error {
	if l.err == nil {
		l.err = err
	}
	return err
}

// failTorn handles a partial frame on disk: truncate back to the last record
// boundary so later appends stay readable. If the truncate itself fails the
// garbage tail stays, but the next Open's scanner stops at the first invalid
// frame and truncates it then — nothing intact is lost either way.
func (l *Log) failTorn(err error) error {
	if terr := l.f.Truncate(l.size); terr == nil {
		l.f.Seek(l.size, 0)
		l.f.Sync()
	}
	return l.fail(err)
}

func (l *Log) sync() error {
	if err := faultinject.Eval("wal.sync"); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Err returns the sticky first append/sync failure, if any — the signal the
// daemon's health endpoint reports as "journal fsync failed". It stays set
// until the process restarts: a record that missed its fsync may not be
// durable even if later syncs succeed.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Replay streams every intact record, oldest first, to fn. A torn tail on
// the final segment is tolerated (the replay simply ends there); an invalid
// record anywhere else is reported as corruption. Must not be called from
// fn, and must not run concurrently with Append in the same lock scope —
// the daemon replays once at boot before appending.
func (l *Log) Replay(fn func(rec []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := l.segments()
	if err != nil {
		return err
	}
	for i, seq := range segs {
		data, err := os.ReadFile(l.segPath(seq))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		off := int64(0)
		for {
			rec, n := nextRecord(data[off:])
			if n == 0 {
				break
			}
			if err := fn(rec); err != nil {
				return err
			}
			off += n
		}
		if off != int64(len(data)) && i != len(segs)-1 {
			return fmt.Errorf("wal: segment %s corrupt at offset %d", l.segPath(seq), off)
		}
	}
	return nil
}

// Compact atomically replaces the log's history with a single snapshot
// record: the snapshot is written as the first record of a fresh segment,
// fsync'd, and only then are the older segments removed. A crash anywhere in
// between leaves either the old history or the new snapshot (possibly plus
// stale segments that the next Compact removes) — never neither.
func (l *Log) Compact(snapshot []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	old, err := l.segments()
	if err != nil {
		return err
	}
	if err := l.createSegment(l.seq + 1); err != nil {
		return l.fail(err)
	}
	frame := make([]byte, headerSize+len(snapshot))
	binary.LittleEndian.PutUint32(frame, uint32(len(snapshot)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(snapshot))
	copy(frame[headerSize:], snapshot)
	if _, err := l.f.Write(frame); err != nil {
		return l.failTorn(fmt.Errorf("wal: compact: %w", err))
	}
	if err := l.sync(); err != nil {
		return l.fail(err)
	}
	l.size += int64(len(frame))
	for _, seq := range old {
		if seq == l.seq {
			continue
		}
		if err := os.Remove(l.segPath(seq)); err != nil {
			return l.fail(fmt.Errorf("wal: compact: %w", err))
		}
	}
	if err := SyncDir(l.dir); err != nil {
		return l.fail(err)
	}
	return nil
}

// Segments reports how many segment files the log currently spans — the
// daemon's compaction trigger.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := l.segments()
	if err != nil {
		return 0
	}
	return len(segs)
}

// Close syncs and closes the live segment. Further operations fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var err error
	if !l.opts.NoSync {
		err = l.f.Sync()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// createSegment opens a new live segment and durably records its creation
// (file fsync + directory fsync).
func (l *Log) createSegment(seq uint64) error {
	if err := faultinject.Eval("wal.rotate"); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	f, err := os.OpenFile(l.segPath(seq), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	if l.f != nil {
		if !l.opts.NoSync {
			l.f.Sync()
		}
		l.f.Close()
	}
	l.f, l.seq, l.size = f, seq, 0
	return nil
}

func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%09d.wal", seq))
}

// segments lists existing segment sequence numbers in ascending order.
func (l *Log) segments() ([]uint64, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []uint64
	for _, e := range entries {
		var seq uint64
		if _, err := fmt.Sscanf(e.Name(), "%09d.wal", &seq); err == nil && fmt.Sprintf("%09d.wal", seq) == e.Name() {
			segs = append(segs, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// nextRecord decodes the first frame of data, returning the payload and the
// frame length, or (nil, 0) when data starts with a torn or invalid frame.
func nextRecord(data []byte) ([]byte, int64) {
	if len(data) < headerSize {
		return nil, 0
	}
	n := binary.LittleEndian.Uint32(data)
	crc := binary.LittleEndian.Uint32(data[4:])
	if n == 0 || n > maxRecordBytes || int(n) > len(data)-headerSize {
		return nil, 0
	}
	payload := data[headerSize : headerSize+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0
	}
	return payload, headerSize + int64(n)
}

// scanValid returns the offset just past the last intact record.
func scanValid(data []byte) int64 {
	off := int64(0)
	for {
		_, n := nextRecord(data[off:])
		if n == 0 {
			return off
		}
		off += n
	}
}

// SyncDir fsyncs a directory so a preceding rename, create or remove in it
// survives power loss — the missing half of the classic atomic-rename
// pattern. Shared with the fuzzer's checkpoint writer.
func SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return nil
}
