package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var recs [][]byte
	if err := l.Replay(func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	want := [][]byte{[]byte("one"), []byte("two"), bytes.Repeat([]byte{0xA5, 0}, 500), []byte("{json:3}")}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replay returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d: got %q want %q", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: same records, and the log keeps accepting appends.
	l2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if got := collect(t, l2); len(got) != len(want) {
		t.Fatalf("reopened replay returned %d records, want %d", len(got), len(want))
	}
	if err := l2.Append([]byte("five")); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, l2); len(got) != len(want)+1 || string(got[len(want)]) != "five" {
		t.Fatalf("post-reopen append not visible: %d records", len(got))
	}
}

func TestEmptyRecordRejected(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Fatal("empty record should be rejected")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 128, NoSync: true})
	for i := 0; i < 40; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.Segments(); n < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", n)
	}
	recs := collect(t, l)
	if len(recs) != 40 {
		t.Fatalf("replay across segments returned %d records, want 40", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("record-%02d", i); string(r) != want {
			t.Errorf("record %d = %q, want %q", i, r, want)
		}
	}
	l.Close()

	// Reopen after rotation: append continues in the last segment.
	l2 := mustOpen(t, dir, Options{SegmentBytes: 128, NoSync: true})
	defer l2.Close()
	if err := l2.Append([]byte("after-reopen")); err != nil {
		t.Fatal(err)
	}
	if recs := collect(t, l2); len(recs) != 41 {
		t.Fatalf("got %d records after reopen append, want 41", len(recs))
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return matches[len(matches)-1]
}

func TestTornTailTolerated(t *testing.T) {
	for _, tc := range []struct {
		name string
		tear func(t *testing.T, path string)
	}{
		{"truncated-mid-record", func(t *testing.T, path string) {
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, fi.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage-appended", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			// A torn frame: a plausible header promising more bytes than exist.
			f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 1, 2, 3})
		}},
		{"zero-filled-tail", func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			f.Write(make([]byte, 64))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			for i := 0; i < 3; i++ {
				if err := l.Append([]byte(fmt.Sprintf("intact-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			tc.tear(t, lastSegment(t, dir))

			l2 := mustOpen(t, dir, Options{})
			defer l2.Close()
			recs := collect(t, l2)
			want := 3
			if tc.name == "truncated-mid-record" {
				want = 2 // the torn record itself is lost
			}
			if len(recs) != want {
				t.Fatalf("replay after torn tail: %d records, want %d", len(recs), want)
			}
			// The tail was healed: appends land cleanly after the last
			// intact record.
			if err := l2.Append([]byte("post-tear")); err != nil {
				t.Fatal(err)
			}
			if recs := collect(t, l2); len(recs) != want+1 || string(recs[want]) != "post-tear" {
				t.Fatalf("append after heal: %d records", len(recs))
			}
		})
	}
}

func TestMidLogCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64, NoSync: true})
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 2 {
		t.Fatal("need at least two segments")
	}
	l.Close()

	// Flip a payload byte in the FIRST segment: that is corruption in the
	// middle of the log, not a torn tail, and replay must say so.
	matches, _ := filepath.Glob(filepath.Join(dir, "*.wal"))
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize] ^= 0xFF
	if err := os.WriteFile(matches[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, dir, Options{NoSync: true})
	defer l2.Close()
	err = l2.Replay(func([]byte) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-log corruption not reported: %v", err)
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{SegmentBytes: 64, NoSync: true})
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("old-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact([]byte("snapshot")); err != nil {
		t.Fatal(err)
	}
	if n := l.Segments(); n != 1 {
		t.Fatalf("compaction left %d segments, want 1", n)
	}
	if err := l.Append([]byte("new-0")); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, l)
	if len(recs) != 2 || string(recs[0]) != "snapshot" || string(recs[1]) != "new-0" {
		t.Fatalf("post-compaction replay: %q", recs)
	}
	l.Close()

	// The compacted log survives a reopen.
	l2 := mustOpen(t, dir, Options{NoSync: true})
	defer l2.Close()
	if recs := collect(t, l2); len(recs) != 2 {
		t.Fatalf("reopened compacted log: %d records, want 2", len(recs))
	}
}

func TestClosedLogRefusesOperations(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	l.Close()
	if err := l.Append([]byte("x")); err != ErrClosed {
		t.Errorf("append on closed log: %v", err)
	}
	if err := l.Replay(func([]byte) error { return nil }); err != ErrClosed {
		t.Errorf("replay on closed log: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	defer l.Close()
	l.Append([]byte("a"))
	want := fmt.Errorf("stop here")
	if err := l.Replay(func([]byte) error { return want }); err != want {
		t.Errorf("callback error not propagated: %v", err)
	}
}
