package interp

import (
	"bytes"
	"math/rand"
	"testing"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
	"cftcg/internal/vm"
)

// buildMixed builds a model touching many block families: logic, switch,
// saturation, delays, a chart and a MATLAB function — enough surface for a
// meaningful differential check.
func buildMixed(t *testing.T) *model.Model {
	t.Helper()
	b := model.NewBuilder("Mixed")
	mode := b.Inport("Mode", model.Int8)
	level := b.Inport("Level", model.Int32)
	rate := b.Inport("Rate", model.Float64)

	sat := b.Saturation(level, -100, 100)
	absv := b.Abs(sat)
	hot := b.Rel(">", absv, b.ConstT(model.Int32, 50))
	en := b.And(hot, b.Rel("~=", mode, b.ConstT(model.Int8, 0)))
	lim := b.Add("RateLimiter", "", model.Params{"Rising": 2.0, "Falling": -2.0}).From(rate).Out(0)
	picked := b.Switch(en, b.Cast(lim, model.Int32), sat)
	dl := b.UnitDelay(picked, 0)

	chart := &stateflow.Chart{
		Name:    "modes",
		Inputs:  []stateflow.Var{{Name: "lvl", Type: model.Int32}},
		Outputs: []stateflow.Var{{Name: "phase", Type: model.Int32, Init: 0}},
		Locals:  []stateflow.Var{{Name: "ticks", Type: model.Int32}},
		States: []*stateflow.State{
			{Name: "Idle", During: "ticks = 0;"},
			{Name: "Ramp", During: "ticks = ticks + 1;", Entry: "phase = 1;"},
			{Name: "Hold", Entry: "phase = 2;"},
		},
		Transitions: []*stateflow.Transition{
			{From: "Idle", To: "Ramp", Guard: "lvl > 20", Priority: 1},
			{From: "Ramp", To: "Hold", Guard: "ticks >= 3", Priority: 1},
			{From: "Ramp", To: "Idle", Guard: "lvl < 5", Priority: 2},
			{From: "Hold", To: "Idle", Guard: "lvl < 5", Priority: 1},
		},
		Initial: "Idle",
	}
	ch := b.Chart("modes", chart, sat)

	ml := b.Matlab("scale", `
input  int32 x;
input  int32 phase;
output int32 y;
state  int32 peak = 0;
if (x > peak) { peak = x; }
if (phase == 2 && peak > 60) { y = peak; } else { y = x / 2; }
`, dl, ch.Out(0))

	b.Outport("Out", model.Int32, ml.Out(0))
	b.Outport("Phase", model.Int32, ch.Out(0))
	return b.Model()
}

// runBoth executes the same input sequence through the compiled VM and the
// interpretive engine and requires bit-identical outputs and coverage.
func runBoth(t *testing.T, m *model.Model, steps int, seed int64) {
	t.Helper()
	c, err := codegen.Compile(m)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	vmRec := coverage.NewRecorder(c.Plan)
	machine := vm.New(c.Prog, vmRec)
	machine.Init()

	itRec := coverage.NewRecorder(c.Plan)
	eng := New(c.Design, c.Plan, c.Index, itRec)
	if err := eng.Init(); err != nil {
		t.Fatalf("engine init: %v", err)
	}

	rng := rand.New(rand.NewSource(seed))
	fields := c.Prog.In
	in := make([]uint64, len(fields))
	for step := 0; step < steps; step++ {
		for i, f := range fields {
			// Biased random: small values often, full-range sometimes.
			var v int64
			if rng.Intn(3) == 0 {
				v = rng.Int63() // wild bits
			} else {
				v = int64(rng.Intn(201) - 100)
			}
			if f.Type.IsFloat() {
				in[i] = model.EncodeFloat(f.Type, float64(v%1000))
			} else {
				in[i] = model.EncodeInt(f.Type, v)
			}
		}
		vmRec.BeginStep()
		machine.Step(in)
		itRec.BeginStep()
		outs, err := eng.Step(in)
		if err != nil {
			t.Fatalf("engine step %d: %v", step, err)
		}
		for k := range outs {
			if outs[k] != machine.Out()[k] {
				t.Fatalf("step %d output %d: vm=%#x interp=%#x", step, k, machine.Out()[k], outs[k])
			}
		}
		if !bytes.Equal(vmRec.Curr, itRec.Curr) {
			for br := range vmRec.Curr {
				if vmRec.Curr[br] != itRec.Curr[br] {
					t.Fatalf("step %d: per-iteration coverage diverges at branch %d (%s): vm=%d interp=%d",
						step, br, c.Plan.BranchLabel(br), vmRec.Curr[br], itRec.Curr[br])
				}
			}
		}
	}
	if !bytes.Equal(vmRec.Total, itRec.Total) {
		t.Fatalf("cumulative coverage diverges")
	}
	vr, ir := vmRec.Report(), itRec.Report()
	if vr.Decision() != ir.Decision() || vr.Condition() != ir.Condition() || vr.MCDC() != ir.MCDC() {
		t.Fatalf("reports diverge: vm=%v interp=%v", vr, ir)
	}
}

func TestDifferentialMixed(t *testing.T) {
	m := buildMixed(t)
	for seed := int64(1); seed <= 5; seed++ {
		runBoth(t, m, 300, seed)
	}
}
