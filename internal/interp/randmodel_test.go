package interp

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// randomModel generates a random but well-formed model: a DAG of blocks
// drawn from a mixed catalog over typed signals, with delays providing
// state. This fuzzes the toolchain itself — resolver, scheduler, plan
// builder, lowering, VM and engine must all agree on whatever it builds.
func randomModel(rng *rand.Rand, id int) *model.Model {
	b := model.NewBuilder(fmt.Sprintf("Rand%d", id))
	types := []model.DType{model.Int8, model.Int16, model.Int32, model.Float64, model.Bool, model.UInt8}

	type sig struct {
		ref model.PortRef
		dt  model.DType
	}
	var sigs []sig
	nIn := 1 + rng.Intn(3)
	for i := 0; i < nIn; i++ {
		dt := types[rng.Intn(len(types))]
		sigs = append(sigs, sig{b.Inport(fmt.Sprintf("in%d", i), dt), dt})
	}
	pick := func() sig { return sigs[rng.Intn(len(sigs))] }
	num := func() sig { // numeric (non-bool preferred) signal
		for tries := 0; tries < 8; tries++ {
			s := pick()
			if s.dt != model.Bool {
				return s
			}
		}
		s := pick()
		return sig{b.Cast(s.ref, model.Int32), model.Int32}
	}

	nBlocks := 5 + rng.Intn(20)
	for i := 0; i < nBlocks; i++ {
		switch rng.Intn(12) {
		case 0:
			s := num()
			sigs = append(sigs, sig{b.Gain(s.ref, float64(rng.Intn(7)-3)), s.dt})
		case 1:
			x, y := num(), num()
			dt := x.dt
			if y.dt > dt {
				dt = y.dt
			}
			sigs = append(sigs, sig{b.Add2(x.ref, y.ref), dt})
		case 2:
			s := num()
			sigs = append(sigs, sig{b.Abs(s.ref), s.dt})
		case 3:
			s := num()
			lo := float64(rng.Intn(10) - 20)
			sigs = append(sigs, sig{b.Saturation(s.ref, lo, lo+float64(1+rng.Intn(30))), s.dt})
		case 4:
			x, y := pick(), pick()
			ops := []string{"==", "~=", "<", "<=", ">", ">="}
			sigs = append(sigs, sig{b.Rel(ops[rng.Intn(len(ops))], x.ref, y.ref), model.Bool})
		case 5:
			x, y := pick(), pick()
			ops := []string{"AND", "OR", "XOR", "NAND"}
			sigs = append(sigs, sig{b.Logic(ops[rng.Intn(len(ops))], b.Cast(x.ref, model.Bool), b.Cast(y.ref, model.Bool)), model.Bool})
		case 6:
			c, x, y := pick(), num(), num()
			dt := x.dt
			if y.dt > dt {
				dt = y.dt
			}
			sigs = append(sigs, sig{b.Switch(c.ref, x.ref, y.ref), dt})
		case 7:
			s := num()
			sigs = append(sigs, sig{b.UnitDelay(s.ref, float64(rng.Intn(5))), s.dt})
		case 8:
			s := num()
			sigs = append(sigs, sig{
				b.Add("DetectIncrease", "", nil).From(s.ref).Out(0), model.Bool})
		case 9:
			s := num()
			sigs = append(sigs, sig{
				b.Add("Quantizer", "", model.Params{"Interval": float64(1 + rng.Intn(4))}).From(s.ref).Out(0), s.dt})
		case 10:
			x, y := num(), num()
			dt := x.dt
			if y.dt > dt {
				dt = y.dt
			}
			fn := []string{"min", "max"}[rng.Intn(2)]
			sigs = append(sigs, sig{b.MinMax(fn, x.ref, y.ref), dt})
		case 11:
			s := num()
			sigs = append(sigs, sig{
				b.Add("IntervalTest", "", model.Params{"Lo": -5.0, "Hi": 5.0}).From(s.ref).Out(0), model.Bool})
		}
	}
	// Up to three outputs from the most recent signals.
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut; i++ {
		s := sigs[len(sigs)-1-i]
		b.Outport(fmt.Sprintf("out%d", i), s.dt, s.ref)
	}
	return b.Model()
}

// TestRandomModelsDifferential generates dozens of random models, compiles
// each, and replays random inputs on both execution paths requiring
// bit-identical outputs and coverage.
func TestRandomModelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20240705))
	built := 0
	for id := 0; built < 40; id++ {
		if id > 400 {
			t.Fatalf("too many rejected random models (%d built)", built)
		}
		m := randomModel(rng, id)
		c, err := codegen.Compile(m)
		if err != nil {
			// Some random graphs are legitimately rejected (e.g. an
			// algebraic loop through a MinMax chain); skip those.
			continue
		}
		built++

		vmRec := coverage.NewRecorder(c.Plan)
		machine := vm.New(c.Prog, vmRec)
		machine.Init()
		itRec := coverage.NewRecorder(c.Plan)
		eng := New(c.Design, c.Plan, c.Index, itRec)
		if err := eng.Init(); err != nil {
			t.Fatalf("model %d: engine init: %v", id, err)
		}

		in := make([]uint64, len(c.Prog.In))
		for step := 0; step < 100; step++ {
			for i, f := range c.Prog.In {
				if f.Type.IsFloat() {
					in[i] = model.EncodeFloat(f.Type, rng.NormFloat64()*float64(rng.Intn(50)+1))
				} else {
					in[i] = model.EncodeInt(f.Type, rng.Int63())
				}
			}
			vmRec.BeginStep()
			machine.Step(in)
			itRec.BeginStep()
			outs, err := eng.Step(in)
			if err != nil {
				t.Fatalf("model %d step %d: %v", id, step, err)
			}
			for k := range outs {
				if outs[k] != machine.Out()[k] {
					t.Fatalf("model %d step %d out %d: vm=%#x interp=%#x\nmodel: %d blocks",
						id, step, k, machine.Out()[k], outs[k], len(m.Root.Blocks))
				}
			}
			if !bytes.Equal(vmRec.Curr, itRec.Curr) {
				t.Fatalf("model %d step %d: coverage diverges", id, step)
			}
		}
	}
	t.Logf("differentially validated %d random models", built)
}
