package interp

import (
	"fmt"

	"cftcg/internal/blocks"
	"cftcg/internal/coverage"
	"cftcg/internal/model"
)

// Engine simulates a model by interpretation. Construction resolves nothing
// new — it reuses the analyzed Design — but execution walks the diagram
// block by block every step, boxing every signal into the per-step signal
// dictionary, exactly the workload profile of a simulation engine.
type Engine struct {
	design *blocks.Design
	plan   *coverage.Plan
	ix     *coverage.Index
	rec    *coverage.Recorder

	states map[*model.Block]*blockState
	out    []uint64

	// Signals is the per-step signal dictionary (path -> value). It is
	// rebuilt every iteration; simulation observers read it. The rebuild
	// cost is part of the engine's honest overhead.
	Signals map[string]Value
}

// blockState carries a block's persistent simulation state.
type blockState struct {
	vals   []Value          // generic slots (delay lines, counters, holds)
	env    map[string]Value // chart/matlab persistent variables
	active int              // chart active state index
}

// New creates an engine over an analyzed design. rec may be nil.
func New(d *blocks.Design, plan *coverage.Plan, ix *coverage.Index, rec *coverage.Recorder) *Engine {
	return &Engine{
		design: d,
		plan:   plan,
		ix:     ix,
		rec:    rec,
		states: map[*model.Block]*blockState{},
		out:    make([]uint64, len(d.Model.Outports())),
	}
}

// Out returns the last step's outport values in the same raw convention as
// the VM, enabling bit-exact differential comparison.
func (e *Engine) Out() []uint64 { return e.out }

// Init resets all block states and runs chart initial-state entry actions —
// the engine analogue of the generated model_init().
func (e *Engine) Init() error {
	e.states = map[*model.Block]*blockState{}
	for i := range e.out {
		e.out[i] = 0
	}
	return e.initGraph(e.design.Root)
}

func (e *Engine) initGraph(gi *blocks.GraphInfo) error {
	for _, b := range gi.Graph.Blocks {
		if b.Kind == "Chart" {
			if err := e.initChart(b); err != nil {
				return err
			}
		}
		if child, ok := gi.Children[b.ID]; ok {
			if err := e.initGraph(child); err != nil {
				return err
			}
		}
	}
	return nil
}

// state returns (creating on first use) the persistent state of a block.
func (e *Engine) state(b *model.Block) *blockState {
	s, ok := e.states[b]
	if !ok {
		s = &blockState{}
		e.states[b] = s
	}
	return s
}

// scope is the per-graph-instance evaluation context for one step.
type scope struct {
	gi       *blocks.GraphInfo
	vals     map[model.PortRef]Value
	deferred []func() error
}

func (e *Engine) val(s *scope, id model.BlockID, port int) (Value, error) {
	src, ok := s.gi.Source[model.PortRef{Block: id, Port: port}]
	if !ok {
		return Value{}, fmt.Errorf("interp: %s: block %s input %d unconnected", s.gi.Path, s.gi.Graph.Block(id).Name, port)
	}
	v, ok := s.vals[src]
	if !ok {
		return Value{}, fmt.Errorf("interp: %s: value of %s not computed", s.gi.Path, s.gi.Graph.Block(src.Block).Name)
	}
	return v, nil
}

func (e *Engine) in(s *scope, id model.BlockID, port int, want model.DType) (Value, error) {
	v, err := e.val(s, id, port)
	if err != nil {
		return Value{}, err
	}
	return v.Cast(want), nil
}

// Step executes one model iteration with raw input values (one per inport
// field, in index order) and returns the raw outport values.
func (e *Engine) Step(in []uint64) ([]uint64, error) {
	// Rebuild the signal dictionary — per-step allocation is part of the
	// simulation engine's cost model.
	e.Signals = make(map[string]Value)

	root := &scope{gi: e.design.Root, vals: map[model.PortRef]Value{}}
	inports := e.design.Model.Inports()
	if len(in) != len(inports) {
		return nil, fmt.Errorf("interp: %d input values for %d inports", len(in), len(inports))
	}
	for i, p := range inports {
		dt := p.Params.DType("Type", model.Float64)
		root.vals[model.PortRef{Block: p.ID, Port: 0}] = V(dt, in[i])
	}
	if err := e.evalGraph(root); err != nil {
		return nil, err
	}
	for i, p := range e.design.Model.Outports() {
		dt := p.Params.DType("Type", model.Float64)
		v, err := e.in(root, p.ID, 0, dt)
		if err != nil {
			return nil, err
		}
		e.out[i] = v.Raw
	}
	return e.out, nil
}

// evalGraph executes a graph body in schedule order, then runs deferred
// state updates (delay writes) — mirroring the generated code's layout.
func (e *Engine) evalGraph(s *scope) error {
	for _, id := range s.gi.Order {
		b := s.gi.Graph.Block(id)
		if err := e.evalBlock(s, b); err != nil {
			return err
		}
		// Publish outputs into the signal dictionary.
		for p := 0; p < s.gi.OutCount[id]; p++ {
			ref := model.PortRef{Block: id, Port: p}
			if v, ok := s.vals[ref]; ok {
				e.Signals[fmt.Sprintf("%s/%s:%d", s.gi.Path, b.Name, p)] = v
			}
		}
	}
	for _, fn := range s.deferred {
		if err := fn(); err != nil {
			return err
		}
	}
	return nil
}

// probePair mirrors codegen's boolean-decision instrumentation.
func (e *Engine) probePair(decID int, v bool) {
	if e.rec == nil {
		return
	}
	if v {
		e.rec.Outcome(decID, 1)
	} else {
		e.rec.Outcome(decID, 0)
	}
}

func (e *Engine) probe(decID, outcome int) {
	if e.rec != nil {
		e.rec.Outcome(decID, outcome)
	}
}

func (e *Engine) condProbe(condID int, v bool) {
	if e.rec != nil {
		e.rec.Cond(condID, v)
	}
}
