package interp

import (
	"fmt"

	"cftcg/internal/mlfunc"
	"cftcg/internal/model"
)

// evalExpr evaluates an mlfunc expression over an environment of boxed
// values, returning a value of e.Type(). Mirrors codegen's lowering rules.
func (e *Engine) evalExpr(env map[string]Value, ex mlfunc.Expr) (Value, error) {
	switch x := ex.(type) {
	case *mlfunc.Lit:
		return FromFloat(x.T, x.Val), nil

	case *mlfunc.Ref:
		v, ok := env[x.Name]
		if !ok {
			return Value{}, fmt.Errorf("interp: script references unknown variable %q", x.Name)
		}
		return v, nil

	case *mlfunc.Unary:
		switch x.Op {
		case "-":
			v, err := e.evalExpr(env, x.X)
			if err != nil {
				return Value{}, err
			}
			return neg(x.T, v.Cast(x.T)), nil
		case "!", "~":
			b, err := e.evalCondExpr(env, x.X)
			if err != nil {
				return Value{}, err
			}
			return FromBool(!b), nil
		}
		return Value{}, fmt.Errorf("interp: unknown unary op %q", x.Op)

	case *mlfunc.Binary:
		if mlfunc.IsBoolOp(x.Op) {
			a, err := e.evalCondExpr(env, x.X)
			if err != nil {
				return Value{}, err
			}
			b, err := e.evalCondExpr(env, x.Y)
			if err != nil {
				return Value{}, err
			}
			if x.Op == "&&" {
				return FromBool(a && b), nil
			}
			return FromBool(a || b), nil
		}
		a, err := e.evalExpr(env, x.X)
		if err != nil {
			return Value{}, err
		}
		b, err := e.evalExpr(env, x.Y)
		if err != nil {
			return Value{}, err
		}
		if mlfunc.IsRelOp(x.Op) {
			t := mlfunc.Promote(x.X.Type(), x.Y.Type())
			return FromBool(compare(x.Op, t, a, b)), nil
		}
		return arith(x.Op[0], x.T, a.Cast(x.T), b.Cast(x.T)), nil

	case *mlfunc.Call:
		args := make([]Value, len(x.Args))
		for i, arg := range x.Args {
			v, err := e.evalExpr(env, arg)
			if err != nil {
				return Value{}, err
			}
			args[i] = v.Cast(x.T)
		}
		switch x.Fn {
		case "abs":
			return absV(x.T, args[0]), nil
		case "min":
			return arith('m', x.T, args[0], args[1]), nil
		case "max":
			return arith('M', x.T, args[0], args[1]), nil
		case "sat":
			lo := arith('M', x.T, args[0], args[1])
			return arith('m', x.T, lo, args[2]), nil
		}
		return Value{}, fmt.Errorf("interp: unknown builtin %q", x.Fn)
	}
	return Value{}, fmt.Errorf("interp: unknown expression %T", ex)
}

// evalCondExpr evaluates a decision expression eagerly, probing registered
// leaf conditions — identical structure to codegen's evalCond.
func (e *Engine) evalCondExpr(env map[string]Value, ex mlfunc.Expr) (bool, error) {
	switch x := ex.(type) {
	case *mlfunc.Binary:
		if mlfunc.IsBoolOp(x.Op) {
			a, err := e.evalCondExpr(env, x.X)
			if err != nil {
				return false, err
			}
			b, err := e.evalCondExpr(env, x.Y)
			if err != nil {
				return false, err
			}
			if x.Op == "&&" {
				return a && b, nil
			}
			return a || b, nil
		}
	case *mlfunc.Unary:
		if x.Op == "!" || x.Op == "~" {
			b, err := e.evalCondExpr(env, x.X)
			if err != nil {
				return false, err
			}
			return !b, nil
		}
	}
	v, err := e.evalExpr(env, ex)
	if err != nil {
		return false, err
	}
	b := v.Bool()
	if condID, ok := e.ix.ExprCond[ex]; ok {
		e.condProbe(condID, b)
	}
	return b, nil
}

// execStmts interprets a statement list, mutating env in place.
func (e *Engine) execStmts(env map[string]Value, stmts []mlfunc.Stmt) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *mlfunc.Assign:
			cur, ok := env[st.Name]
			if !ok {
				return fmt.Errorf("interp: assignment to unknown variable %q", st.Name)
			}
			v, err := e.evalExpr(env, st.Rhs)
			if err != nil {
				return err
			}
			env[st.Name] = v.Cast(cur.DT)

		case *mlfunc.If:
			c, err := e.evalCondExpr(env, st.Cond)
			if err != nil {
				return err
			}
			if decID, ok := e.ix.StmtDecision[st]; ok {
				e.probePair(decID, c)
			}
			if c {
				if err := e.execStmts(env, st.Then); err != nil {
					return err
				}
			} else if len(st.Else) > 0 {
				if err := e.execStmts(env, st.Else); err != nil {
					return err
				}
			}

		case *mlfunc.While:
			for iter := 0; iter < mlfunc.MaxWhileIter; iter++ {
				c, err := e.evalCondExpr(env, st.Cond)
				if err != nil {
					return err
				}
				if decID, ok := e.ix.StmtDecision2[st]; ok {
					e.probePair(decID, c)
				}
				if !c {
					break
				}
				if err := e.execStmts(env, st.Body); err != nil {
					return err
				}
			}

		case *mlfunc.For:
			for i := int64(0); i < st.Count; i++ {
				env[st.Var] = FromInt(model.Int32, i)
				if err := e.execStmts(env, st.Body); err != nil {
					return err
				}
			}
			delete(env, st.Var)

		default:
			return fmt.Errorf("interp: unknown statement %T", s)
		}
	}
	return nil
}

// evalMatlabFunction executes a MATLAB Function block: inputs from ports,
// outputs/locals reset per step, states persisted in the block's env.
func (e *Engine) evalMatlabFunction(s *scope, b *model.Block) error {
	f := e.design.Funcs[b]
	st := e.state(b)
	if st.env == nil {
		st.env = map[string]Value{}
		for _, d := range f.States() {
			st.env[d.Name] = FromFloat(d.Type, d.Init)
		}
	}
	env := map[string]Value{}
	for i, d := range f.Inputs() {
		v, err := e.in(s, b.ID, i, d.Type)
		if err != nil {
			return err
		}
		env[d.Name] = v
	}
	for _, d := range f.Outputs() {
		env[d.Name] = FromFloat(d.Type, d.Init)
	}
	for _, d := range f.Locals() {
		env[d.Name] = FromFloat(d.Type, d.Init)
	}
	for _, d := range f.States() {
		env[d.Name] = st.env[d.Name]
	}

	if err := e.execStmts(env, f.Body); err != nil {
		return err
	}

	for _, d := range f.States() {
		st.env[d.Name] = env[d.Name]
	}
	for i, d := range f.Outputs() {
		s.vals[model.PortRef{Block: b.ID, Port: i}] = env[d.Name]
	}
	return nil
}

// initChart establishes a chart's initial configuration (descending through
// default children) and runs the entry actions outermost-first with inputs
// read as typed zeros — matching the generated model_init().
func (e *Engine) initChart(b *model.Block) error {
	ci := e.design.Charts[b]
	c := ci.Chart
	st := e.state(b)
	descend, err := c.DefaultDescend(c.Initial)
	if err != nil {
		return err
	}
	chain := append(c.PathFromRoot(c.Initial), descend...)
	st.active = c.LeafIndex(chain[len(chain)-1].Name)
	st.env = map[string]Value{}
	for _, v := range c.Outputs {
		st.env[v.Name] = FromFloat(v.Type, v.Init)
	}
	for _, v := range c.Locals {
		st.env[v.Name] = FromFloat(v.Type, v.Init)
	}
	env := map[string]Value{}
	for _, v := range c.Inputs {
		env[v.Name] = FromFloat(v.Type, 0)
	}
	for k, v := range st.env {
		env[k] = v
	}
	for _, s := range chain {
		if entry := ci.Entry[s]; entry != nil {
			if err := e.execStmts(env, entry); err != nil {
				return err
			}
		}
	}
	for k := range st.env {
		st.env[k] = env[k]
	}
	return nil
}

// evalChart executes one chart step: evaluate the active configuration's
// candidate transitions outer-first (probing each), fire at most one
// (exits innermost-first → transition action → entries outermost-first,
// descending composite targets), otherwise run the during actions
// outermost-first.
func (e *Engine) evalChart(s *scope, b *model.Block) error {
	ci := e.design.Charts[b]
	c := ci.Chart
	st := e.state(b)
	if st.env == nil {
		if err := e.initChart(b); err != nil {
			return err
		}
	}

	env := map[string]Value{}
	for i, v := range c.Inputs {
		in, err := e.in(s, b.ID, i, v.Type)
		if err != nil {
			return err
		}
		env[v.Name] = in
	}
	for k, v := range st.env {
		env[k] = v
	}

	leaf := c.Leaves()[st.active]
	fired := false
	for _, t := range c.CandidateTransitions(leaf.Name) {
		decID := e.ix.TransDecision[t]
		g := true
		if guard := ci.Guards[t]; guard != nil {
			var err error
			g, err = e.evalCondExpr(env, guard)
			if err != nil {
				return err
			}
		}
		e.probePair(decID, g)
		if !g {
			continue
		}
		plan, err := c.PlanFire(leaf.Name, t)
		if err != nil {
			return err
		}
		for _, x := range plan.Exits {
			if exit := ci.Exit[x]; exit != nil {
				if err := e.execStmts(env, exit); err != nil {
					return err
				}
			}
		}
		if act := ci.TransActs[t]; act != nil {
			if err := e.execStmts(env, act); err != nil {
				return err
			}
		}
		st.active = c.LeafIndex(plan.NewLeaf.Name)
		for _, en := range plan.Entries {
			if entry := ci.Entry[en]; entry != nil {
				if err := e.execStmts(env, entry); err != nil {
					return err
				}
			}
		}
		fired = true
		break
	}
	if !fired {
		for _, x := range c.PathFromRoot(leaf.Name) {
			if during := ci.During[x]; during != nil {
				if err := e.execStmts(env, during); err != nil {
					return err
				}
			}
		}
	}

	for k := range st.env {
		st.env[k] = env[k]
	}
	for i, v := range c.Outputs {
		s.vals[model.PortRef{Block: b.ID, Port: i}] = st.env[v.Name]
	}
	return nil
}
