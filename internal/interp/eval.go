package interp

import (
	"fmt"

	"cftcg/internal/blocks"
	"cftcg/internal/model"
)

// evalBlock executes one block. The semantics (including coverage outcome
// numbering) intentionally mirror codegen's lowering; any divergence is a
// bug the differential tests catch.
func (e *Engine) evalBlock(s *scope, b *model.Block) error {
	gi := s.gi
	out0 := model.PortRef{Block: b.ID, Port: 0}
	outDT := gi.OutType[out0]
	decs := e.ix.BlockDecisions[b]
	set := func(v Value) { s.vals[out0] = v }

	switch b.Kind {
	case "Inport":
		if _, ok := s.vals[out0]; !ok {
			return fmt.Errorf("interp: %s/%s: unbound inport", gi.Path, b.Name)
		}

	case "Outport", "Terminator", "Scope":
		// sinks

	case "Constant":
		set(FromFloat(outDT, b.Params.Float("Value", 0)))

	case "Ground":
		set(FromFloat(outDT, 0))

	case "Clock":
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromFloat(outDT, 0)}
		}
		t := st.vals[0]
		set(t)
		st.vals[0] = arith('+', outDT, t, FromFloat(outDT, e.design.Model.SampleTime))

	case "Counter":
		st := e.state(b)
		init := b.Params.Float("Init", 0)
		if st.vals == nil {
			st.vals = []Value{FromFloat(outDT, init)}
		}
		c := st.vals[0]
		set(c)
		next := arith('+', outDT, c, FromFloat(outDT, b.Params.Float("Inc", 1)))
		if compare(">", outDT, next, FromFloat(outDT, b.Params.Float("Max", 255))) {
			next = FromFloat(outDT, init)
		}
		st.vals[0] = next

	case "Gain":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		set(arith('*', outDT, in, FromFloat(outDT, b.Params.Float("Gain", 1))))

	case "Bias":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		set(arith('+', outDT, in, FromFloat(outDT, b.Params.Float("Bias", 0))))

	case "UnaryMinus":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		set(neg(outDT, in))

	case "Abs":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		e.probePair(decs[0], compare("<", outDT, in, FromFloat(outDT, 0)))
		set(absV(outDT, in))

	case "Sign":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		zero := FromFloat(outDT, 0)
		switch {
		case compare("<", outDT, in, zero):
			e.probe(decs[0], 0)
			set(FromFloat(outDT, -1))
		case compare(">", outDT, in, zero):
			e.probe(decs[0], 2)
			set(FromFloat(outDT, 1))
		default:
			e.probe(decs[0], 1)
			set(FromFloat(outDT, 0))
		}

	case "Sqrt", "Exp", "Log", "Trigonometry":
		in, err := e.in(s, b.ID, 0, model.Float64)
		if err != nil {
			return err
		}
		fn := map[string]string{"Sqrt": "sqrt", "Exp": "exp", "Log": "log"}[b.Kind]
		if b.Kind == "Trigonometry" {
			fn = b.Params.String("Fn", "sin")
		}
		set(unaryMath(fn, model.Float64, in).Cast(outDT))

	case "Rounding":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		if !outDT.IsFloat() {
			set(in)
			break
		}
		set(unaryMath(b.Params.String("Fn", "round"), outDT, in))

	case "Quantizer":
		in, err := e.in(s, b.ID, 0, model.Float64)
		if err != nil {
			return err
		}
		q := FromFloat(model.Float64, b.Params.Float("Interval", 1))
		r := unaryMath("round", model.Float64, arith('/', model.Float64, in, q))
		set(arith('*', model.Float64, r, q).Cast(outDT))

	case "Saturation":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		lo := FromFloat(outDT, b.Params.Float("Lower", 0))
		hi := FromFloat(outDT, b.Params.Float("Upper", 1))
		switch {
		case compare("<", outDT, in, lo):
			e.probe(decs[0], 0)
			set(lo)
		case compare(">", outDT, in, hi):
			e.probe(decs[0], 2)
			set(hi)
		default:
			e.probe(decs[0], 1)
			set(in)
		}

	case "DeadZone":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		start := FromFloat(outDT, b.Params.Float("Start", -1))
		end := FromFloat(outDT, b.Params.Float("End", 1))
		switch {
		case compare("<", outDT, in, start):
			e.probe(decs[0], 0)
			set(arith('-', outDT, in, start))
		case compare(">", outDT, in, end):
			e.probe(decs[0], 2)
			set(arith('-', outDT, in, end))
		default:
			e.probe(decs[0], 1)
			set(FromFloat(outDT, 0))
		}

	case "RateLimiter":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromFloat(outDT, b.Params.Float("Init", 0))}
		}
		prev := st.vals[0]
		delta := arith('-', outDT, in, prev)
		rising := FromFloat(outDT, b.Params.Float("Rising", 1))
		falling := FromFloat(outDT, b.Params.Float("Falling", -1))
		var res Value
		switch {
		case compare(">", outDT, delta, rising):
			e.probe(decs[0], 0)
			res = arith('+', outDT, prev, rising)
		case compare("<", outDT, delta, falling):
			e.probe(decs[0], 2)
			res = arith('+', outDT, prev, falling)
		default:
			e.probe(decs[0], 1)
			res = in
		}
		st.vals[0] = res
		set(res)

	case "Relay":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromBool(b.Params.Float("InitialOn", 0) != 0)}
		}
		on := st.vals[0].Bool()
		var newOn bool
		if on {
			newOn = compare(">", outDT, in, FromFloat(outDT, b.Params.Float("OffPoint", 0)))
		} else {
			newOn = compare(">=", outDT, in, FromFloat(outDT, b.Params.Float("OnPoint", 1)))
		}
		e.probePair(decs[0], newOn)
		st.vals[0] = FromBool(newOn)
		if newOn {
			set(FromFloat(outDT, b.Params.Float("OnValue", 1)))
		} else {
			set(FromFloat(outDT, b.Params.Float("OffValue", 0)))
		}

	case "DataTypeConversion", "ZeroOrderHold":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		set(in)

	case "Lookup1D":
		in, err := e.in(s, b.ID, 0, model.Float64)
		if err != nil {
			return err
		}
		bp := b.Params.Floats("Breakpoints", nil)
		tab := b.Params.Floats("Table", nil)
		x := in.F()
		n := len(bp)
		var r float64
		switch {
		case x < bp[0]:
			e.probe(decs[0], 0)
			r = tab[0]
		case x >= bp[n-1]:
			e.probe(decs[0], n)
			r = tab[n-1]
		default:
			for k := 0; k+1 < n; k++ {
				if x < bp[k+1] {
					e.probe(decs[0], k+1)
					slope := 0.0
					if bp[k+1] != bp[k] {
						slope = (tab[k+1] - tab[k]) / (bp[k+1] - bp[k])
					}
					r = tab[k] + (x-bp[k])*slope
					break
				}
			}
		}
		set(FromFloat(model.Float64, r).Cast(outDT))

	case "Sum":
		signs := b.Params.String("Signs", "++")
		var acc Value
		first := true
		for i, sign := range signs {
			in, err := e.in(s, b.ID, i, outDT)
			if err != nil {
				return err
			}
			switch {
			case first && sign == '+':
				acc = in
			case first:
				acc = neg(outDT, in)
			case sign == '+':
				acc = arith('+', outDT, acc, in)
			default:
				acc = arith('-', outDT, acc, in)
			}
			first = false
		}
		set(acc)

	case "Product":
		ops := b.Params.String("Ops", "**")
		var acc Value
		first := true
		for i, op := range ops {
			in, err := e.in(s, b.ID, i, outDT)
			if err != nil {
				return err
			}
			switch {
			case first && op == '*':
				acc = in
			case first:
				acc = arith('/', outDT, FromFloat(outDT, 1), in)
			case op == '*':
				acc = arith('*', outDT, acc, in)
			default:
				acc = arith('/', outDT, acc, in)
			}
			first = false
		}
		set(acc)

	case "MinMax":
		n := gi.InCount[b.ID]
		op := "<"
		if b.Params.String("Fn", "min") == "max" {
			op = ">"
		}
		best, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		idx := 0
		for i := 1; i < n; i++ {
			in, err := e.in(s, b.ID, i, outDT)
			if err != nil {
				return err
			}
			if compare(op, outDT, in, best) {
				best = in
				idx = i
			}
		}
		if len(decs) > 0 {
			e.probe(decs[0], idx)
		}
		set(best)

	case "RelationalOperator":
		t := promote2(gi.InType(b.ID, 0), gi.InType(b.ID, 1))
		x, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		y, err := e.val(s, b.ID, 1)
		if err != nil {
			return err
		}
		set(FromBool(compare(b.Params.String("Op", "=="), t, x, y)))

	case "CompareToConstant":
		t := gi.InType(b.ID, 0)
		x, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		set(FromBool(compare(b.Params.String("Op", "=="), t, x, FromFloat(t, b.Params.Float("Value", 0)))))

	case "CompareToZero":
		t := gi.InType(b.ID, 0)
		x, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		set(FromBool(compare(b.Params.String("Op", "=="), t, x, FromFloat(t, 0))))

	case "LogicalOperator":
		n := gi.InCount[b.ID]
		conds := e.ix.BlockConds[b]
		vals := make([]bool, n)
		for i := 0; i < n; i++ {
			v, err := e.val(s, b.ID, i)
			if err != nil {
				return err
			}
			vals[i] = v.Bool()
			if i < len(conds) {
				e.condProbe(conds[i], vals[i])
			}
		}
		var res bool
		switch op := b.Params.String("Op", "AND"); op {
		case "NOT":
			res = !vals[0]
		case "AND", "NAND":
			res = true
			for _, v := range vals {
				res = res && v
			}
			if op == "NAND" {
				res = !res
			}
		case "OR", "NOR":
			for _, v := range vals {
				res = res || v
			}
			if op == "NOR" {
				res = !res
			}
		case "XOR":
			for _, v := range vals {
				res = res != v
			}
		default:
			return fmt.Errorf("interp: %s/%s: unknown logic Op %q", gi.Path, b.Name, op)
		}
		e.probePair(decs[0], res)
		set(FromBool(res))

	case "Bitwise":
		t := gi.InType(b.ID, 0)
		x, err := e.in(s, b.ID, 0, t)
		if err != nil {
			return err
		}
		y, err := e.in(s, b.ID, 1, t)
		if err != nil {
			return err
		}
		xi, yi := x.I(), y.I()
		var r int64
		switch b.Params.String("Op", "AND") {
		case "AND":
			r = xi & yi
		case "OR":
			r = xi | yi
		case "XOR":
			r = xi ^ yi
		case "SHL":
			r = xi << (uint(yi) & 31)
		case "SHR":
			r = xi >> (uint(yi) & 31)
		}
		set(FromInt(t, r))

	case "Switch":
		ctrlT := gi.InType(b.ID, 1)
		ctrl, err := e.val(s, b.ID, 1)
		if err != nil {
			return err
		}
		var cond bool
		switch crit := b.Params.String("Criteria", "~=0"); crit {
		case "~=0":
			cond = ctrl.Bool()
		case ">=":
			cond = compare(">=", model.Float64, ctrl.Cast(model.Float64), FromFloat(model.Float64, b.Params.Float("Threshold", 0)))
		case ">":
			cond = compare(">", model.Float64, ctrl.Cast(model.Float64), FromFloat(model.Float64, b.Params.Float("Threshold", 0)))
		default:
			return fmt.Errorf("interp: %s/%s: unknown criteria %q", gi.Path, b.Name, crit)
		}
		_ = ctrlT
		e.probePair(decs[0], cond)
		port := 2
		if cond {
			port = 0
		}
		v, err := e.in(s, b.ID, port, outDT)
		if err != nil {
			return err
		}
		set(v)

	case "MultiportSwitch":
		n := int(b.Params.Int("Inputs", 2))
		idxV, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		idx := int(idxV.Cast(model.Int32).I())
		if idx < 1 {
			idx = 1
		}
		if idx > n {
			idx = n
		}
		e.probe(decs[0], idx-1)
		v, err := e.in(s, b.ID, idx, outDT)
		if err != nil {
			return err
		}
		set(v)

	case "Merge":
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromFloat(outDT, b.Params.Float("Init", 0))}
		}
		set(st.vals[0])

	case "UnitDelay", "Memory":
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromFloat(outDT, b.Params.Float("Init", 0))}
		}
		set(st.vals[0])
		s.deferred = append(s.deferred, func() error {
			in, err := e.in(s, b.ID, 0, outDT)
			if err != nil {
				return err
			}
			st.vals[0] = in
			return nil
		})

	case "Delay":
		steps := int(b.Params.Int("Steps", 1))
		st := e.state(b)
		if st.vals == nil {
			st.vals = make([]Value, steps)
			for i := range st.vals {
				st.vals[i] = FromFloat(outDT, b.Params.Float("Init", 0))
			}
		}
		set(st.vals[0])
		s.deferred = append(s.deferred, func() error {
			in, err := e.in(s, b.ID, 0, outDT)
			if err != nil {
				return err
			}
			copy(st.vals, st.vals[1:])
			st.vals[steps-1] = in
			return nil
		})

	case "DiscreteIntegrator":
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromFloat(outDT, b.Params.Float("Init", 0))}
		}
		set(st.vals[0])
		s.deferred = append(s.deferred, func() error {
			in, err := e.in(s, b.ID, 0, outDT)
			if err != nil {
				return err
			}
			k := b.Params.Float("K", 1) * e.design.Model.SampleTime
			next := arith('+', outDT, st.vals[0], arith('*', outDT, in, FromFloat(outDT, k)))
			if _, bounded := b.Params["Lower"]; bounded {
				lo := FromFloat(outDT, b.Params.Float("Lower", 0))
				hi := FromFloat(outDT, b.Params.Float("Upper", 1))
				switch {
				case compare("<", outDT, next, lo):
					e.probe(decs[0], 0)
					next = lo
				case compare(">", outDT, next, hi):
					e.probe(decs[0], 2)
					next = hi
				default:
					e.probe(decs[0], 1)
				}
			}
			st.vals[0] = next
			return nil
		})

	case "DetectChange", "DetectIncrease", "DetectDecrease":
		t := gi.InType(b.ID, 0)
		in, err := e.in(s, b.ID, 0, t)
		if err != nil {
			return err
		}
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromFloat(t, b.Params.Float("Init", 0))}
		}
		prev := st.vals[0]
		var res bool
		switch b.Kind {
		case "DetectChange":
			res = compare("~=", t, in, prev)
		case "DetectIncrease":
			res = compare(">", t, in, prev)
		default:
			res = compare("<", t, in, prev)
		}
		st.vals[0] = in
		e.probePair(decs[0], res)
		set(FromBool(res))

	case "IntervalTest":
		t := gi.InType(b.ID, 0)
		in, err := e.in(s, b.ID, 0, t)
		if err != nil {
			return err
		}
		inside := compare(">=", t, in, FromFloat(t, b.Params.Float("Lo", 0))) &&
			compare("<=", t, in, FromFloat(t, b.Params.Float("Hi", 1)))
		e.probePair(decs[0], inside)
		set(FromBool(inside))

	case "Backlash":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		st := e.state(b)
		if st.vals == nil {
			st.vals = []Value{FromFloat(outDT, b.Params.Float("Init", 0))}
		}
		half := FromFloat(outDT, b.Params.Float("Width", 1)/2)
		y := st.vals[0]
		var res Value
		switch {
		case compare(">", outDT, in, arith('+', outDT, y, half)):
			e.probe(decs[0], 2)
			res = arith('-', outDT, in, half)
		case compare("<", outDT, in, arith('-', outDT, y, half)):
			e.probe(decs[0], 0)
			res = arith('+', outDT, in, half)
		default:
			e.probe(decs[0], 1)
			res = y
		}
		st.vals[0] = res
		set(res)

	case "WrapToZero":
		in, err := e.in(s, b.ID, 0, outDT)
		if err != nil {
			return err
		}
		wrapped := compare(">", outDT, in, FromFloat(outDT, b.Params.Float("Threshold", 255)))
		e.probePair(decs[0], wrapped)
		if wrapped {
			set(FromFloat(outDT, 0))
		} else {
			set(in)
		}

	case "Assertion":
		in, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		e.probePair(decs[0], in.Bool())

	case "If":
		return e.evalIf(s, b, decs)

	case "SwitchCase":
		return e.evalSwitchCase(s, b, decs)

	case "Subsystem":
		inner, err := e.subsystemScope(s, b)
		if err != nil {
			return err
		}
		if err := e.evalGraph(inner); err != nil {
			return err
		}
		return e.pullOutputs(s, b, inner)

	case "EnabledSubsystem":
		ctrlT := gi.InType(b.ID, 0)
		ctrl, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		en := compare(">", ctrlT, ctrl, FromFloat(ctrlT, 0))
		e.probePair(decs[0], en)
		return e.evalConditional(s, b, en)

	case "TriggeredSubsystem":
		ctrlT := gi.InType(b.ID, 0)
		ctrl, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		high := compare(">", ctrlT, ctrl, FromFloat(ctrlT, 0))
		st := e.state(b)
		if st.env == nil {
			st.env = map[string]Value{"prev": FromBool(false)}
		}
		fired := high && !st.env["prev"].Bool()
		st.env["prev"] = FromBool(high)
		e.probePair(decs[0], fired)
		return e.evalConditional(s, b, fired)

	case "ActionSubsystem":
		action, err := e.val(s, b.ID, 0)
		if err != nil {
			return err
		}
		return e.evalConditional(s, b, action.Bool())

	case "MatlabFunction":
		return e.evalMatlabFunction(s, b)

	case "Chart":
		return e.evalChart(s, b)

	default:
		if custom, ok := customEvaluators[b.Kind]; ok {
			return custom(e, s, b)
		}
		return fmt.Errorf("interp: %s/%s: no evaluator for kind %s", gi.Path, b.Name, b.Kind)
	}
	return nil
}

func promote2(a, b model.DType) model.DType {
	if a >= b {
		return a
	}
	return b
}

// subsystemScope binds inner inports from the outer scope.
func (e *Engine) subsystemScope(s *scope, b *model.Block) (*scope, error) {
	child := s.gi.Children[b.ID]
	inner := &scope{gi: child, vals: map[model.PortRef]Value{}}
	ctrl := blocks.ControlPorts(b.Kind)
	for _, ip := range child.Graph.BlocksOfKind("Inport") {
		outerPort := int(ip.Params.Int("Index", 1)) - 1 + ctrl
		want := child.OutType[model.PortRef{Block: ip.ID, Port: 0}]
		v, err := e.in(s, b.ID, outerPort, want)
		if err != nil {
			return nil, err
		}
		inner.vals[model.PortRef{Block: ip.ID, Port: 0}] = v
	}
	return inner, nil
}

// pullOutputs reads inner outport values into the subsystem's output ports.
func (e *Engine) pullOutputs(s *scope, b *model.Block, inner *scope) error {
	for _, op := range inner.gi.Graph.BlocksOfKind("Outport") {
		idx := int(op.Params.Int("Index", 1)) - 1
		want := s.gi.OutType[model.PortRef{Block: b.ID, Port: idx}]
		src, ok := inner.gi.Source[model.PortRef{Block: op.ID, Port: 0}]
		if !ok {
			return fmt.Errorf("interp: %s/%s: outport unconnected", inner.gi.Path, op.Name)
		}
		v, ok := inner.vals[src]
		if !ok {
			return fmt.Errorf("interp: %s/%s: outport driver not computed", inner.gi.Path, op.Name)
		}
		s.vals[model.PortRef{Block: b.ID, Port: idx}] = v.Cast(want)
	}
	return nil
}

// evalConditional runs a conditionally-executed subsystem: when active it
// executes the body and latches outputs (and Merge targets); when inactive
// the outputs hold.
func (e *Engine) evalConditional(s *scope, b *model.Block, active bool) error {
	child := s.gi.Children[b.ID]
	st := e.state(b)
	nout := s.gi.OutCount[b.ID]
	if st.vals == nil {
		st.vals = make([]Value, nout)
		for _, op := range child.Graph.BlocksOfKind("Outport") {
			idx := int(op.Params.Int("Index", 1)) - 1
			dt := s.gi.OutType[model.PortRef{Block: b.ID, Port: idx}]
			st.vals[idx] = FromFloat(dt, op.Params.Float("Init", 0))
		}
	}
	if active {
		inner, err := e.subsystemScope(s, b)
		if err != nil {
			return err
		}
		if err := e.evalGraph(inner); err != nil {
			return err
		}
		tmp := &scope{gi: s.gi, vals: map[model.PortRef]Value{}}
		if err := e.pullOutputs(tmp, b, inner); err != nil {
			return err
		}
		for i := 0; i < nout; i++ {
			st.vals[i] = tmp.vals[model.PortRef{Block: b.ID, Port: i}]
		}
		// Write Merge targets fed by this subsystem.
		for i := 0; i < nout; i++ {
			for _, dst := range s.gi.Graph.FanOut(model.PortRef{Block: b.ID, Port: i}) {
				mb := s.gi.Graph.Block(dst.Block)
				if mb.Kind == "Merge" {
					mst := e.state(mb)
					mdt := s.gi.OutType[model.PortRef{Block: mb.ID, Port: 0}]
					if mst.vals == nil {
						mst.vals = []Value{FromFloat(mdt, mb.Params.Float("Init", 0))}
					}
					mst.vals[0] = st.vals[i].Cast(mdt)
				}
			}
		}
	}
	for i := 0; i < nout; i++ {
		s.vals[model.PortRef{Block: b.ID, Port: i}] = st.vals[i]
	}
	return nil
}

// evalIf executes the if/elseif/else cascade (probing each decision only
// when reached, like the generated code).
func (e *Engine) evalIf(s *scope, b *model.Block, decs []int) error {
	exprs := e.design.IfConds[b]
	n := s.gi.InCount[b.ID]
	env := map[string]Value{}
	for i := 0; i < n; i++ {
		v, err := e.val(s, b.ID, i)
		if err != nil {
			return err
		}
		env[fmt.Sprintf("u%d", i+1)] = v
	}
	taken := len(exprs) // default: else branch
	for i, expr := range exprs {
		c, err := e.evalCondExpr(env, expr)
		if err != nil {
			return err
		}
		e.probePair(decs[i], c)
		if c {
			taken = i
			break
		}
	}
	for i := 0; i <= len(exprs); i++ {
		s.vals[model.PortRef{Block: b.ID, Port: i}] = FromBool(i == taken)
	}
	return nil
}

// evalSwitchCase executes the integer case dispatch.
func (e *Engine) evalSwitchCase(s *scope, b *model.Block, decs []int) error {
	cases := b.Params.Ints("Cases", nil)
	v, err := e.val(s, b.ID, 0)
	if err != nil {
		return err
	}
	x := v.Cast(model.Int32).I()
	taken := len(cases)
	for k, cv := range cases {
		if x == cv {
			taken = k
			break
		}
	}
	e.probe(decs[0], taken)
	for i := 0; i <= len(cases); i++ {
		s.vals[model.PortRef{Block: b.ID, Port: i}] = FromBool(i == taken)
	}
	return nil
}

// CustomEvaluator executes a user-registered block kind in the engine.
type CustomEvaluator func(ctx *EvalContext, b *model.Block) error

var customEvaluators = map[string]func(e *Engine, s *scope, b *model.Block) error{}

// RegisterEvaluator installs interpretation for a custom block kind.
func RegisterEvaluator(kind string, fn CustomEvaluator) {
	customEvaluators[kind] = func(e *Engine, s *scope, b *model.Block) error {
		return fn(&EvalContext{e: e, s: s}, b)
	}
}

// EvalContext is the limited evaluation API exposed to custom blocks.
type EvalContext struct {
	e *Engine
	s *scope
}

// Input returns input port p cast to want.
func (c *EvalContext) Input(b *model.Block, p int, want model.DType) (Value, error) {
	return c.e.in(c.s, b.ID, p, want)
}

// OutputType returns the resolved type of output port p.
func (c *EvalContext) OutputType(b *model.Block, p int) model.DType {
	return c.s.gi.OutType[model.PortRef{Block: b.ID, Port: p}]
}

// SetOutput binds output port p.
func (c *EvalContext) SetOutput(b *model.Block, p int, v Value) {
	c.s.vals[model.PortRef{Block: b.ID, Port: p}] = v
}

// State returns the block's persistent value slots, creating them with the
// given initializer on first use.
func (c *EvalContext) State(b *model.Block, init func() []Value) []Value {
	st := c.e.state(b)
	if st.vals == nil {
		st.vals = init()
	}
	return st.vals
}
