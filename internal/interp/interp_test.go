package interp

import (
	"math"
	"testing"
	"testing/quick"

	"cftcg/internal/codegen"
	"cftcg/internal/model"
)

func TestValueHelpers(t *testing.T) {
	v := FromInt(model.Int16, -300)
	if v.I() != -300 || v.DT != model.Int16 {
		t.Errorf("FromInt: %+v", v)
	}
	f := FromFloat(model.Float32, 1.5)
	if f.F() != 1.5 {
		t.Errorf("FromFloat: %v", f.F())
	}
	if !FromBool(true).Bool() || FromBool(false).Bool() {
		t.Error("FromBool")
	}
	c := FromFloat(model.Float64, 300.7).Cast(model.Int8)
	if c.I() != 127 {
		t.Errorf("cast clamps: %d", c.I())
	}
}

// Property: interp's arith agrees with model.Encode-based reference for
// integer add/sub/mul across types (an independent check from the VM
// differential, exercising the Value layer directly).
func TestArithAgainstReference(t *testing.T) {
	prop := func(x, y int32) bool {
		for _, dt := range []model.DType{model.Int8, model.UInt8, model.Int16, model.Int32, model.UInt32} {
			a := FromInt(dt, int64(x))
			b := FromInt(dt, int64(y))
			av, bv := a.I(), b.I()
			if arith('+', dt, a, b).Raw != model.EncodeInt(dt, av+bv) {
				return false
			}
			if arith('-', dt, a, b).Raw != model.EncodeInt(dt, av-bv) {
				return false
			}
			if arith('*', dt, a, b).Raw != model.EncodeInt(dt, av*bv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDivisionTotality(t *testing.T) {
	z := FromInt(model.Int32, 0)
	x := FromInt(model.Int32, 9)
	if arith('/', model.Int32, x, z).I() != 0 {
		t.Error("int x/0 must be 0")
	}
	fz := FromFloat(model.Float64, 0)
	fx := FromFloat(model.Float64, 9)
	if arith('/', model.Float64, fx, fz).F() != 0 {
		t.Error("float x/0 must be 0")
	}
}

func TestUnaryMathMatchesSpec(t *testing.T) {
	if unaryMath("sqrt", model.Float64, FromFloat(model.Float64, -1)).F() != 0 {
		t.Error("sqrt(-1) must be 0")
	}
	if unaryMath("log", model.Float64, FromFloat(model.Float64, 0)).F() != 0 {
		t.Error("log(0) must be 0")
	}
	if got := unaryMath("round", model.Float64, FromFloat(model.Float64, 2.5)).F(); got != 3 {
		t.Errorf("round-half-away: %v", got)
	}
	if got := unaryMath("fix", model.Float64, FromFloat(model.Float64, -2.7)).F(); got != -2 {
		t.Errorf("fix truncates: %v", got)
	}
}

// TestSignalDictionary: the engine publishes every computed output port
// into the per-step signal dictionary — the observable a simulation UI
// (and SimCoTest's feature extraction) reads.
func TestSignalDictionary(t *testing.T) {
	b := model.NewBuilder("Sig")
	x := b.Inport("x", model.Float64)
	g := b.Gain(x, 3)
	b.Outport("o", model.Float64, g)
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(c.Design, c.Plan, c.Index, nil)
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step([]uint64{model.EncodeFloat(model.Float64, 2)}); err != nil {
		t.Fatal(err)
	}
	found := false
	for name, v := range eng.Signals {
		if v.DT == model.Float64 && v.F() == 6 {
			found = true
			_ = name
		}
	}
	if !found {
		t.Errorf("gain output missing from signal dictionary: %v", eng.Signals)
	}
}

func TestEngineRejectsWrongInputCount(t *testing.T) {
	b := model.NewBuilder("W")
	x := b.Inport("x", model.Float64)
	b.Outport("o", model.Float64, b.Gain(x, 1))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(c.Design, c.Plan, c.Index, nil)
	if err := eng.Init(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Step([]uint64{1, 2}); err == nil {
		t.Error("wrong input arity accepted")
	}
}

func TestCompareNaNBehaviour(t *testing.T) {
	nan := FromFloat(model.Float64, math.NaN())
	one := FromFloat(model.Float64, 1)
	if compare("<", model.Float64, nan, one) || compare(">=", model.Float64, nan, one) {
		t.Error("NaN comparisons must be false")
	}
	if !compare("~=", model.Float64, nan, one) {
		t.Error("NaN != x must be true")
	}
}
