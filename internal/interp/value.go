// Package interp is the model simulation engine: it executes a model by
// walking the block diagram every step with boxed signal values, dynamic
// per-block dispatch and a signal dictionary — the same structural costs
// that make real model interpreters slow (the paper measures SimCoTest at 6
// iterations/second on the SolarPV model versus 26,000 for compiled code).
//
// The engine is a second, independent implementation of block semantics.
// The differential tests require its outputs and coverage to match the
// compiled VM bit-for-bit, mirroring the paper's own validation ("comparing
// simulation results with code execution results").
package interp

import (
	"math"

	"cftcg/internal/model"
)

// Value is one boxed signal sample. Boxing (type tag + raw bits moved
// through interface-free but heap-heavy maps) is intentional: it is the
// engine-shaped representation.
type Value struct {
	DT  model.DType
	Raw uint64
}

// V builds a value from raw bits.
func V(dt model.DType, raw uint64) Value { return Value{DT: dt, Raw: raw} }

// FromFloat builds a value from a numeric quantity with C cast semantics.
func FromFloat(dt model.DType, f float64) Value { return Value{DT: dt, Raw: model.Encode(dt, f)} }

// FromInt builds an integer value (wrapping).
func FromInt(dt model.DType, i int64) Value { return Value{DT: dt, Raw: model.EncodeInt(dt, i)} }

// FromBool builds a boolean value.
func FromBool(b bool) Value {
	if b {
		return Value{DT: model.Bool, Raw: 1}
	}
	return Value{DT: model.Bool, Raw: 0}
}

// F returns the numeric value as float64.
func (v Value) F() float64 { return model.Decode(v.DT, v.Raw) }

// I returns the integer value (sign extended).
func (v Value) I() int64 { return model.DecodeInt(v.DT, v.Raw) }

// Bool returns the logical interpretation (non-zero is true).
func (v Value) Bool() bool { return model.Truth(v.DT, v.Raw) }

// Cast converts the value to another type with C semantics.
func (v Value) Cast(dt model.DType) Value {
	return Value{DT: dt, Raw: model.Cast(dt, v.DT, v.Raw)}
}

// arith performs a binary arithmetic operation in type dt. It is written
// independently from the VM's arithmetic (two implementations of the same
// semantics is the point of differential testing).
func arith(op byte, dt model.DType, a, b Value) Value {
	x := a.Cast(dt)
	y := b.Cast(dt)
	if dt.IsFloat() {
		xf, yf := x.F(), y.F()
		var r float64
		switch op {
		case '+':
			r = xf + yf
		case '-':
			r = xf - yf
		case '*':
			r = xf * yf
		case '/':
			if yf == 0 {
				r = 0
			} else {
				r = xf / yf
			}
		case 'm':
			r = math.Min(xf, yf)
		case 'M':
			r = math.Max(xf, yf)
		}
		return Value{DT: dt, Raw: model.EncodeFloat(dt, r)}
	}
	xi, yi := x.I(), y.I()
	var r int64
	switch op {
	case '+':
		r = xi + yi
	case '-':
		r = xi - yi
	case '*':
		r = xi * yi
	case '/':
		if yi == 0 {
			r = 0
		} else {
			r = xi / yi
		}
	case 'm':
		r = xi
		if yi < xi {
			r = yi
		}
	case 'M':
		r = xi
		if yi > xi {
			r = yi
		}
	}
	return Value{DT: dt, Raw: model.EncodeInt(dt, r)}
}

// compare evaluates relational op ("==", "~=", "<", "<=", ">", ">=") in dt.
func compare(op string, dt model.DType, a, b Value) bool {
	x := a.Cast(dt)
	y := b.Cast(dt)
	if dt.IsFloat() {
		xf, yf := x.F(), y.F()
		switch op {
		case "==":
			return xf == yf
		case "~=", "!=":
			return xf != yf
		case "<":
			return xf < yf
		case "<=":
			return xf <= yf
		case ">":
			return xf > yf
		case ">=":
			return xf >= yf
		}
		return false
	}
	xi, yi := x.I(), y.I()
	switch op {
	case "==":
		return xi == yi
	case "~=", "!=":
		return xi != yi
	case "<":
		return xi < yi
	case "<=":
		return xi <= yi
	case ">":
		return xi > yi
	case ">=":
		return xi >= yi
	}
	return false
}

// neg negates a value in its own type.
func neg(dt model.DType, v Value) Value {
	x := v.Cast(dt)
	if dt.IsFloat() {
		return Value{DT: dt, Raw: model.EncodeFloat(dt, -x.F())}
	}
	return Value{DT: dt, Raw: model.EncodeInt(dt, -x.I())}
}

// absV computes |v| in type dt.
func absV(dt model.DType, v Value) Value {
	x := v.Cast(dt)
	if dt.IsFloat() {
		return Value{DT: dt, Raw: model.EncodeFloat(dt, math.Abs(x.F()))}
	}
	i := x.I()
	if i < 0 {
		i = -i
	}
	return Value{DT: dt, Raw: model.EncodeInt(dt, i)}
}

// unaryMath mirrors the VM's math-function semantics (total definitions for
// sqrt/log on invalid domains).
func unaryMath(fn string, dt model.DType, v Value) Value {
	x := v.F()
	var r float64
	switch fn {
	case "sqrt":
		if x < 0 {
			r = 0
		} else {
			r = math.Sqrt(x)
		}
	case "exp":
		r = math.Exp(x)
	case "log":
		if x <= 0 {
			r = 0
		} else {
			r = math.Log(x)
		}
	case "sin":
		r = math.Sin(x)
	case "cos":
		r = math.Cos(x)
	case "tan":
		r = math.Tan(x)
	case "floor":
		r = math.Floor(x)
	case "ceil":
		r = math.Ceil(x)
	case "round":
		r = math.Round(x)
	case "fix", "trunc":
		r = math.Trunc(x)
	}
	return FromFloat(dt, r)
}
