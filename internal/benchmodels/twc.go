package benchmodels

import (
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

func init() {
	register(Entry{
		Name:          "TWC",
		Functionality: "Train wheel speed controller",
		Build:         BuildTWC,
		PaperBranch:   80,
		PaperBlock:    214,
		Paper: Table3Row{
			SLDV:      ToolCoverage{46, 68, 40},
			SimCoTest: ToolCoverage{15, 57, 20},
			CFTCG:     ToolCoverage{96, 98, 90},
		},
	})
}

// BuildTWC reconstructs the train wheel speed controller: wheel-slip
// detection with an anti-skid state machine. Entering the anti-skid mode
// requires slip sustained over ten consecutive iterations within a bounded
// speed window — the deep condition the paper's Figure 7 analysis traces to
// a single coverage jump around 41 seconds of fuzzing.
func BuildTWC() *model.Model {
	b := model.NewBuilder("TWC")
	vTrain := b.Inport("TrainSpeed", model.Float64) // m/s
	vWheel := b.Inport("WheelSpeed", model.Float64)
	brake := b.Inport("BrakeCmd", model.Int8) // 0 none, 1 service, 2 emergency

	vT := b.Saturation(vTrain, 0, 90)
	vW := b.Saturation(vWheel, 0, 120)

	// Relative slip: (vT - vW) / max(vT, 1).
	slip := b.Div(b.Sub(vT, vW), b.MinMax("max", vT, b.Const(1)))
	slipMag := b.Abs(slip)

	// Sustained-slip detector: the deep counter.
	sustain := b.Matlab("slipSustain", `
input  float64 slip;
input  float64 speed;
output bool    sustained = false;
output int32   run = 0;
state  int32   cnt = 0;
if (slip > 0.2 && speed > 5.0) {
    cnt = cnt + 1;
} else {
    cnt = 0;
}
run = cnt;
if (cnt >= 10) { sustained = true; }
`, slipMag, vT)

	antiskid := &stateflow.Chart{
		Name: "antiskid",
		Inputs: []stateflow.Var{
			{Name: "sustained", Type: model.Bool},
			{Name: "slip", Type: model.Float64},
			{Name: "brake", Type: model.Int8},
		},
		Outputs: []stateflow.Var{
			{Name: "mode", Type: model.Int32, Init: 0},
			{Name: "releases", Type: model.Int32, Init: 0},
		},
		Locals: []stateflow.Var{{Name: "hold", Type: model.Int32}},
		States: []*stateflow.State{
			{Name: "Normal", Entry: "mode = 0;"},
			{Name: "SlipWatch", Entry: "mode = 1;"},
			{Name: "AntiSkid", Entry: "mode = 2; releases = releases + 1; hold = 0;",
				During: "hold = hold + 1;"},
			{Name: "Recovery", Entry: "mode = 3;"},
		},
		Transitions: []*stateflow.Transition{
			{From: "Normal", To: "SlipWatch", Guard: "slip > 0.1", Priority: 1},
			{From: "SlipWatch", To: "AntiSkid", Guard: "sustained", Priority: 1},
			{From: "SlipWatch", To: "Normal", Guard: "slip < 0.05", Priority: 2},
			{From: "AntiSkid", To: "Recovery", Guard: "hold >= 4 && slip < 0.15", Priority: 1},
			{From: "AntiSkid", To: "Normal", Guard: "brake == 2", Priority: 2},
			{From: "Recovery", To: "Normal", Guard: "slip < 0.02", Priority: 1},
			{From: "Recovery", To: "SlipWatch", Guard: "slip > 0.1", Priority: 2},
		},
		Initial: "Normal",
	}
	ch := b.Chart("antiskid", antiskid, sustain.Out(0), slipMag, brake)

	// Brake pressure command: base demand per brake mode, antiskid relief.
	sc := b.Add("SwitchCase", "brakeModes", model.Params{"Cases": []int64{1, 2}})
	b.Connect(brake, sc.In(0))
	merge := b.Add("Merge", "demand", model.Params{"Inputs": 3, "Init": 0.0})

	_, service := b.ActionSubsystem("Service", sc.Out(0))
	sv := service.Inport("v", model.Float64)
	service.Outport("p", model.Float64, service.Gain(sv, 0.6)).Block().Params["Init"] = 0.0

	_, emerg := b.ActionSubsystem("Emergency", sc.Out(1))
	ev := emerg.Inport("v", model.Float64)
	emerg.Outport("p", model.Float64, emerg.Saturation(emerg.Gain(ev, 1.5), 0, 100)).Block().Params["Init"] = 0.0

	_, idle := b.ActionSubsystem("Coast", sc.Out(2))
	iv := idle.Inport("v", model.Float64)
	idle.Outport("p", model.Float64, idle.Gain(iv, 0.0)).Block().Params["Init"] = 0.0

	for _, name := range []string{"Service", "Emergency", "Coast"} {
		blk := b.Graph().BlockByName(name)
		b.Connect(vT, model.PortRef{Block: blk.ID, Port: 1})
	}
	b.Connect(model.PortRef{Block: b.Graph().BlockByName("Service").ID, Port: 0}, merge.In(0))
	b.Connect(model.PortRef{Block: b.Graph().BlockByName("Emergency").ID, Port: 0}, merge.In(1))
	b.Connect(model.PortRef{Block: b.Graph().BlockByName("Coast").ID, Port: 0}, merge.In(2))

	inAntiskid := b.Rel("==", ch.Out(0), b.ConstT(model.Int32, 2))
	relieved := b.Switch(inAntiskid, b.Gain(merge.Out(0), 0.3), merge.Out(0))
	pressure := b.Add("RateLimiter", "pSlew", model.Params{"Rising": 5.0, "Falling": -8.0}).
		From(relieved).Out(0)

	lockup := b.And(
		b.Rel(">", slipMag, b.Const(0.5)),
		b.Rel(">", vT, b.Const(10)),
		b.Not(inAntiskid),
	)

	b.Outport("Pressure", model.Float64, pressure)
	b.Outport("Mode", model.Int32, ch.Out(0))
	b.Outport("Releases", model.Int32, ch.Out(1))
	b.Outport("LockupRisk", model.Bool, lockup)
	return b.Model()
}
