package benchmodels

import (
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

func init() {
	register(Entry{
		Name:          "UTPC",
		Functionality: "Underwater thruster power control",
		Build:         BuildUTPC,
		PaperBranch:   92,
		PaperBlock:    214,
		Paper: Table3Row{
			SLDV:      ToolCoverage{44, 59, 44},
			SimCoTest: ToolCoverage{40, 58, 44},
			CFTCG:     ToolCoverage{98, 100, 100},
		},
	})
}

// BuildUTPC reconstructs the underwater thruster power controller: a power
// budget governed by depth-dependent pressure derating and a thermal
// protection machine whose cutoff state demands prolonged overpower — the
// deep condition behind the 917-second coverage jump in Figure 7.
func BuildUTPC() *model.Model {
	b := model.NewBuilder("UTPC")
	depth := b.Inport("Depth", model.Float64)    // meters
	thrust := b.Inport("ThrustCmd", model.Int16) // signed command
	waterT := b.Inport("WaterTemp", model.Float64)

	d := b.Saturation(depth, 0, 6000)
	// Pressure derating of the allowed power.
	derate := b.Add("Lookup1D", "derate", model.Params{
		"Breakpoints": []float64{0, 200, 1000, 3000, 5000},
		"Table":       []float64{1.0, 0.95, 0.8, 0.5, 0.25},
	}).From(d).Out(0)

	cmd := b.Cast(thrust, model.Float64)
	cmdMag := b.Abs(cmd)
	// Electrical power grows quadratically with commanded thrust.
	power := b.Gain(b.Mul(cmdMag, cmdMag), 0.001)
	allowed := b.Gain(derate, 400)
	over := b.Sub(power, allowed)

	heat := b.Matlab("heatModel", `
input  float64 over;
input  float64 waterT;
output float64 coreT = 20;
output bool    overpower = false;
state  float64 temp = 20;
var    float64 cooling = 0;
cooling = (temp - waterT) * 0.02;
if (over > 0.0) {
    temp = temp + over * 0.005 - cooling;
    overpower = true;
} else {
    temp = temp - cooling;
}
temp = sat(temp, -5.0, 200.0);
coreT = temp;
`, over, b.Saturation(waterT, -5, 40))

	thermal := &stateflow.Chart{
		Name: "thermal",
		Inputs: []stateflow.Var{
			{Name: "coreT", Type: model.Float64},
			{Name: "overpower", Type: model.Bool},
		},
		Outputs: []stateflow.Var{
			{Name: "tstate", Type: model.Int32, Init: 0},
			{Name: "trips", Type: model.Int32, Init: 0},
		},
		Locals: []stateflow.Var{{Name: "hotTicks", Type: model.Int32}},
		States: []*stateflow.State{
			{Name: "Normal", Entry: "tstate = 0; hotTicks = 0;"},
			{Name: "Warm", Entry: "tstate = 1;",
				During: "if (overpower) { hotTicks = hotTicks + 1; } else { hotTicks = 0; }"},
			{Name: "Hot", Entry: "tstate = 2;",
				During: "if (overpower) { hotTicks = hotTicks + 2; }"},
			{Name: "Cutoff", Entry: "tstate = 3; trips = trips + 1;"},
			{Name: "Cooldown", Entry: "tstate = 4;"},
		},
		Transitions: []*stateflow.Transition{
			{From: "Normal", To: "Warm", Guard: "coreT > 60.0", Priority: 1},
			{From: "Warm", To: "Hot", Guard: "coreT > 90.0", Priority: 1},
			{From: "Warm", To: "Normal", Guard: "coreT < 50.0", Priority: 2},
			{From: "Hot", To: "Cutoff", Guard: "hotTicks >= 12 || coreT > 140.0", Priority: 1},
			{From: "Hot", To: "Warm", Guard: "coreT < 80.0", Priority: 2},
			{From: "Cutoff", To: "Cooldown", Guard: "coreT < 100.0", Priority: 1},
			{From: "Cooldown", To: "Normal", Guard: "coreT < 45.0", Priority: 1},
		},
		Initial: "Normal",
	}
	ch := b.Chart("thermal", thermal, heat.Out(0), heat.Out(1))

	// Granted thrust: zero in cutoff, derated in hot states.
	cut := b.Rel(">=", ch.Out(0), b.ConstT(model.Int32, 3))
	hot := b.Rel("==", ch.Out(0), b.ConstT(model.Int32, 2))
	granted := b.Switch(cut, b.Const(0),
		b.Switch(hot, b.Gain(cmd, 0.5), cmd))
	slewed := b.Add("RateLimiter", "thrustSlew", model.Params{
		"Rising": 50.0, "Falling": -50.0,
	}).From(granted).Out(0)

	// Cavitation risk near the surface at high thrust.
	cavitation := b.And(
		b.Rel("<", d, b.Const(15)),
		b.Rel(">", cmdMag, b.Const(600)),
	)
	reverseHard := b.And(
		b.Rel("<", cmd, b.Const(-500)),
		b.Rel(">", d, b.Const(1000)),
	)

	b.Outport("Granted", model.Float64, slewed)
	b.Outport("ThermalState", model.Int32, ch.Out(0))
	b.Outport("Trips", model.Int32, ch.Out(1))
	b.Outport("Cavitation", model.Bool, cavitation)
	b.Outport("ReverseHard", model.Bool, reverseHard)
	return b.Model()
}
