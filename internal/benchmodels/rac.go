package benchmodels

import (
	"fmt"

	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

func init() {
	register(Entry{
		Name:          "RAC",
		Functionality: "Robotic arm controller",
		Build:         BuildRAC,
		PaperBranch:   179,
		PaperBlock:    667,
		Paper: Table3Row{
			SLDV:      ToolCoverage{64, 71, 12},
			SimCoTest: ToolCoverage{71, 76, 12},
			CFTCG:     ToolCoverage{79, 84, 38},
		},
	})
}

// BuildRAC reconstructs the robotic arm controller: three joint servo
// channels (PI position loop, slew limiting, soft limits, per-joint fault
// chart) under a motion coordinator. It is the largest benchmark — most of
// its branches live in the replicated joint subsystems.
func BuildRAC() *model.Model {
	b := model.NewBuilder("RAC")
	cmdMode := b.Inport("CmdMode", model.Int8) // 0 hold, 1 home, 2 move, 3 estop
	t1 := b.Inport("Target1", model.Float64)
	t2 := b.Inport("Target2", model.Float64)
	t3 := b.Inport("Target3", model.Float64)
	loadIn := b.Inport("Load", model.Int16)

	targets := []model.PortRef{t1, t2, t3}
	limits := [][2]float64{{-170, 170}, {-120, 120}, {-90, 90}}

	// Motion coordinator dispatches the command mode.
	sc := b.Add("SwitchCase", "coordinator", model.Params{"Cases": []int64{1, 2, 3}})
	b.Connect(cmdMode, sc.In(0))
	homing, moving, estop := sc.Out(0), sc.Out(1), sc.Out(2)

	moveEnable := b.Or(moving, homing)
	estopLatch := b.Matlab("estopLatch", `
input  bool trip;
input  bool clear;
output bool latched = false;
state  int32 lat = 0;
if (trip) { lat = 1; }
if (clear && lat == 1) { lat = 0; }
if (lat == 1) { latched = true; }
`, estop, homing)

	jointFault := func(i int) *stateflow.Chart {
		return &stateflow.Chart{
			Name: fmt.Sprintf("joint%dFault", i),
			Inputs: []stateflow.Var{
				{Name: "err", Type: model.Float64},
				{Name: "atLimit", Type: model.Bool},
				{Name: "estop", Type: model.Bool},
			},
			Outputs: []stateflow.Var{{Name: "status", Type: model.Int32, Init: 0}},
			Locals:  []stateflow.Var{{Name: "strain", Type: model.Int32}},
			States: []*stateflow.State{
				{Name: "Ok", Entry: "status = 0; strain = 0;"},
				{Name: "Stressed", Entry: "status = 1;",
					During: "if (err > 50.0) { strain = strain + 1; } else { strain = strain - 1; }"},
				{Name: "Fault", Entry: "status = 2;"},
			},
			Transitions: []*stateflow.Transition{
				{From: "Ok", To: "Stressed", Guard: "err > 50.0 || atLimit", Priority: 1},
				{From: "Ok", To: "Fault", Guard: "estop", Priority: 2},
				{From: "Stressed", To: "Fault", Guard: "strain >= 5 || estop", Priority: 1},
				{From: "Stressed", To: "Ok", Guard: "strain <= -3", Priority: 2},
				{From: "Fault", To: "Ok", Guard: "!estop && !atLimit && err < 5.0", Priority: 1},
			},
			Initial: "Ok",
		}
	}

	statuses := make([]model.PortRef, 3)
	positions := make([]model.PortRef, 3)
	for i := 0; i < 3; i++ {
		h, sub := b.EnabledSubsystem(fmt.Sprintf("Joint%d", i+1), b.Cast(moveEnable, model.Int8))
		tgt := sub.Inport("target", model.Float64)
		es := sub.Inport("estop", model.Bool)

		tgtSat := sub.Saturation(tgt, limits[i][0], limits[i][1])

		// Position loop: err -> PI -> slew -> integrate to position.
		posState := sub.Add("UnitDelay", "posState", model.Params{"Init": 0.0, "Type": model.Float64})
		err := sub.Sub(tgtSat, posState.Out(0))
		absErr := sub.Abs(err)
		pterm := sub.Gain(err, 0.4)
		iterm := sub.Add("DiscreteIntegrator", "iterm", model.Params{
			"K": 0.5, "Lower": -10.0, "Upper": 10.0,
		}).From(err).Out(0)
		drive := sub.Add2(pterm, iterm)
		slew := sub.Add("RateLimiter", "slew", model.Params{
			"Rising": 3.0, "Falling": -3.0,
		}).From(drive).Out(0)
		newPos := sub.Saturation(sub.Add2(posState.Out(0), slew), limits[i][0]-10, limits[i][1]+10)
		sub.Connect(newPos, posState.In(0))

		atLimit := sub.Or(
			sub.Rel("<=", newPos, sub.Const(limits[i][0])),
			sub.Rel(">=", newPos, sub.Const(limits[i][1])),
		)
		ch := sub.Chart(fmt.Sprintf("fault%d", i+1), jointFault(i+1), absErr, atLimit, es)

		sub.Outport("pos", model.Float64, newPos).Block().Params["Init"] = 0.0
		sub.Outport("status", model.Int32, ch.Out(0)).Block().Params["Init"] = 0.0

		b.Connect(targets[i], h.In(1))
		b.Connect(estopLatch.Out(0), h.In(2))
		positions[i] = h.Out(0)
		statuses[i] = h.Out(1)
	}

	// Payload compensation: load class scales allowed speed.
	loadClass := b.Add("Lookup1D", "loadComp", model.Params{
		"Breakpoints": []float64{0, 100, 500, 2000},
		"Table":       []float64{1.0, 0.9, 0.6, 0.3},
	}).From(b.Cast(loadIn, model.Float64)).Out(0)

	worstStatus := b.MinMax("max", statuses[0], statuses[1], statuses[2])
	anyFault := b.Rel(">=", worstStatus, b.ConstT(model.Int32, 2))
	safeSpeed := b.Switch(anyFault, b.Const(0), loadClass)

	reach := b.Add2(b.Abs(positions[0]), b.Add2(b.Abs(positions[1]), b.Abs(positions[2])))
	envelope := b.Rel(">", reach, b.Const(300))
	warn := b.Or(envelope, estopLatch.Out(0))

	b.Outport("WorstStatus", model.Int32, worstStatus)
	b.Outport("SafeSpeed", model.Float64, safeSpeed)
	b.Outport("Reach", model.Float64, reach)
	b.Outport("Warn", model.Bool, warn)
	return b.Model()
}
