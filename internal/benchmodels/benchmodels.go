// Package benchmodels rebuilds the paper's Table 2 benchmark suite: eight
// industrial-style embedded control models. The originals are proprietary;
// these reconstructions follow the paper's functional descriptions and keep
// the structural property each model is cited for (CPUTask's fill-the-queue
// branches, SolarPV's per-panel charging states, TCP's ordered handshake,
// ...), with branch counts in the same range.
package benchmodels

import (
	"fmt"
	"sort"

	"cftcg/internal/model"
)

// Entry describes one benchmark model with the paper's reference numbers.
type Entry struct {
	Name          string
	Functionality string
	Build         func() *model.Model

	// Paper's Table 2 stats.
	PaperBranch int
	PaperBlock  int

	// Paper's Table 3 coverage results (percent), indexed by tool.
	Paper Table3Row
}

// Table3Row holds the paper's reported coverage for one model.
type Table3Row struct {
	SLDV, SimCoTest, CFTCG ToolCoverage
}

// ToolCoverage is one tool's three metrics (percent).
type ToolCoverage struct {
	Decision, Condition, MCDC float64
}

var registry = map[string]Entry{}

func register(e Entry) {
	if _, dup := registry[e.Name]; dup {
		panic("benchmodels: duplicate " + e.Name)
	}
	registry[e.Name] = e
}

// Get returns a benchmark entry by name.
func Get(name string) (Entry, error) {
	e, ok := registry[name]
	if !ok {
		return Entry{}, fmt.Errorf("benchmodels: unknown model %q", name)
	}
	return e, nil
}

// All returns the benchmark entries in the paper's Table 2 order.
func All() []Entry {
	order := []string{"CPUTask", "AFC", "TCP", "RAC", "EVCS", "TWC", "UTPC", "SolarPV"}
	out := make([]Entry, 0, len(order))
	for _, n := range order {
		if e, ok := registry[n]; ok {
			out = append(out, e)
		}
	}
	// Append any extras (custom registrations) alphabetically.
	var extra []string
	for n := range registry {
		found := false
		for _, o := range order {
			if o == n {
				found = true
			}
		}
		if !found {
			extra = append(extra, n)
		}
	}
	sort.Strings(extra)
	for _, n := range extra {
		out = append(out, registry[n])
	}
	return out
}

// Names returns the model names in Table 2 order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.Name
	}
	return out
}
