package benchmodels

import (
	"fmt"

	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

func init() {
	register(Entry{
		Name:          "CPUTask",
		Functionality: "AutoSAR CPU task dispatch system",
		Build:         BuildCPUTask,
		PaperBranch:   107,
		PaperBlock:    275,
		Paper: Table3Row{
			SLDV:      ToolCoverage{89, 72, 42},
			SimCoTest: ToolCoverage{72, 56, 21},
			CFTCG:     ToolCoverage{100, 100, 100},
		},
	})
}

// BuildCPUTask reconstructs the AutoSAR task-dispatch benchmark. The model
// keeps an internal task queue; several branches fire only once the queue
// is completely full — the paper highlights that reaching them requires
// eight edge-triggered submissions, trivial for tuple-repeating fuzzing but
// out of reach for depth-limited solving and slow simulation.
func BuildCPUTask() *model.Model {
	b := model.NewBuilder("CPUTask")
	op := b.Inport("Op", model.Int8) // 0 tick, 1 submit, 2 complete, 3 abort
	tid := b.Inport("TaskID", model.UInt8)
	prio := b.Inport("Prio", model.UInt8)

	// Queue manager: submissions count only on a rising Op edge (a level
	// held at "submit" enqueues once), which is what makes queue-full
	// branches deep.
	qm := b.Matlab("queueMgr", `
input  int8  op;
input  uint8 tid;
input  uint8 prio;
output int32 qcount = 0;
output bool  full = false;
output bool  accepted = false;
output int32 dropped = 0;
state  int32 count = 0;
state  int32 drops = 0;
state  int8  prevOp = 0;
state  int32 maxPrio = 0;
if (op == 1 && prevOp ~= 1) {
    if (count >= 8) {
        drops = drops + 1;
    } else {
        count = count + 1;
        accepted = true;
        if (prio > maxPrio) { maxPrio = prio; }
    }
}
if (op == 2 && count > 0) { count = count - 1; }
if (op == 3) { count = 0; maxPrio = 0; }
prevOp = op;
qcount = count;
dropped = drops;
if (count >= 8) { full = true; }
`, op, tid, prio)

	dispatcher := &stateflow.Chart{
		Name: "dispatcher",
		Inputs: []stateflow.Var{
			{Name: "qn", Type: model.Int32},
			{Name: "full", Type: model.Bool},
			{Name: "pr", Type: model.UInt8},
			{Name: "opc", Type: model.Int8},
		},
		Outputs: []stateflow.Var{
			{Name: "mode", Type: model.Int32, Init: 0},
			{Name: "switches", Type: model.Int32, Init: 0},
		},
		Locals: []stateflow.Var{{Name: "slice", Type: model.Int32}},
		States: []*stateflow.State{
			{Name: "Idle", Entry: "mode = 0;"},
			{Name: "Running", Entry: "mode = 1; slice = 0;", During: "slice = slice + 1;"},
			{Name: "Preempted", Entry: "mode = 2; switches = switches + 1;"},
			{Name: "Overload", Entry: "mode = 3;"},
		},
		Transitions: []*stateflow.Transition{
			{From: "Idle", To: "Running", Guard: "qn > 0", Priority: 1},
			{From: "Running", To: "Preempted", Guard: "pr >= 200 && qn > 1", Priority: 1},
			{From: "Running", To: "Overload", Guard: "full", Priority: 2},
			{From: "Running", To: "Idle", Guard: "qn == 0", Priority: 3},
			{From: "Preempted", To: "Running", Guard: "slice >= 2 || opc == 2", Priority: 1},
			{From: "Overload", To: "Running", Guard: "!full && qn > 0", Priority: 1},
			{From: "Overload", To: "Idle", Guard: "qn == 0", Priority: 2},
		},
		Initial: "Idle",
	}
	disp := b.Chart("dispatcher", dispatcher, qm.Out(0), qm.Out(1), prio, op)

	// Per-core load tracking: two cores selected by task-ID parity, each an
	// enabled subsystem with a bounded load integrator and thermal relay.
	parityBit := b.Add("Bitwise", "parity", model.Params{"Op": "AND"})
	b.Connect(tid, parityBit.In(0))
	b.Connect(b.ConstT(model.UInt8, 1), parityBit.In(1))
	loads := make([]model.PortRef, 2)
	for core := 0; core < 2; core++ {
		want := b.Rel("==", parityBit.Out(0), b.ConstT(model.UInt8, float64(core)))
		running := b.Rel("==", disp.Out(0), b.ConstT(model.Int32, 1))
		en := b.And(want, running)
		h, sub := b.EnabledSubsystem(fmt.Sprintf("Core%d", core), b.Cast(en, model.Int8))
		p := sub.Inport("p", model.UInt8)
		// Load rises with priority pressure above the nominal 50 and
		// drains below it, so both integrator bounds are reachable.
		pressure := sub.Sub(sub.Cast(p, model.Float64), sub.Const(50))
		load := sub.Add("DiscreteIntegrator", "loadInt",
			model.Params{"K": 2.0, "Lower": 0.0, "Upper": 100.0}).From(pressure).Out(0)
		hot := sub.Add("Relay", "thermal", model.Params{
			"OnPoint": 80.0, "OffPoint": 40.0, "OnValue": 1.0, "OffValue": 0.0,
		}).From(load).Out(0)
		sub.Outport("load", model.Float64, load).Block().Params["Init"] = 0.0
		sub.Outport("hot", model.Float64, hot).Block().Params["Init"] = 0.0
		b.Connect(prio, h.In(1))
		loads[core] = h.Out(0)
	}
	worst := b.MinMax("max", loads[0], loads[1])

	// Load-band monitor: the watchdog classifies utilization into bands.
	band := b.Matlab("loadBand", `
input  float64 load;
output int32 band = 0;
if (load > 25.0) {
    if (load > 50.0) {
        if (load > 75.0) { band = 3; } else { band = 2; }
    } else {
        band = 1;
    }
}
`, worst)

	overloadAlarm := b.And(
		qm.Out(1),
		b.Rel("==", disp.Out(0), b.ConstT(model.Int32, 3)),
		b.Rel(">", worst, b.Const(90)),
	)

	b.Outport("QueueLen", model.Int32, qm.Out(0))
	b.Outport("Mode", model.Int32, disp.Out(0))
	b.Outport("Dropped", model.Int32, qm.Out(3))
	b.Outport("WorstLoad", model.Float64, worst)
	b.Outport("LoadBand", model.Int32, band.Out(0))
	b.Outport("Alarm", model.Bool, overloadAlarm)
	return b.Model()
}
