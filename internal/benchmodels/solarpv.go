package benchmodels

import (
	"fmt"

	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

func init() {
	register(Entry{
		Name:          "SolarPV",
		Functionality: "Solar PV panel output control",
		Build:         BuildSolarPV,
		PaperBranch:   55,
		PaperBlock:    131,
		Paper: Table3Row{
			SLDV:      ToolCoverage{78, 83, 57},
			SimCoTest: ToolCoverage{74, 73, 43},
			CFTCG:     ToolCoverage{89, 95, 86},
		},
	})
}

// BuildSolarPV reconstructs the paper's running example (Figures 1/3): a
// solar PV panel energy output control system. Each tuple addresses one
// panel (Enable int8, Power int32, PanelID int32 — the 9-byte tuple of
// Figure 3); every panel carries its own charging-state chart whose level
// accumulates over many addressed iterations, and the storage mode switches
// on the aggregate stored energy.
func BuildSolarPV() *model.Model {
	b := model.NewBuilder("SolarPV")
	enable := b.Inport("Enable", model.Int8)
	power := b.Inport("Power", model.Int32)
	panelID := b.Inport("PanelID", model.Int32)

	panelChart := func(id int) *stateflow.Chart {
		return &stateflow.Chart{
			Name:   fmt.Sprintf("panel%dStates", id),
			Inputs: []stateflow.Var{{Name: "pw", Type: model.Int32}},
			Outputs: []stateflow.Var{
				{Name: "level", Type: model.Int32, Init: 0},
				{Name: "phase", Type: model.Int32, Init: 0},
			},
			States: []*stateflow.State{
				{Name: "Idle", Entry: "phase = 0;"},
				{Name: "Charging", Entry: "phase = 1;", During: "level = level + pw / 10;"},
				{Name: "Full", Entry: "phase = 2;", During: "level = level - 1;"},
			},
			Transitions: []*stateflow.Transition{
				{From: "Idle", To: "Charging", Guard: "pw > 100", Priority: 1},
				{From: "Charging", To: "Full", Guard: "level >= 400", Priority: 1},
				{From: "Full", To: "Idle", Guard: "pw < 20", Action: "level = 0;", Priority: 1},
			},
			Initial: "Idle",
		}
	}

	// Each panel is an enabled subsystem selected by PanelID, holding its
	// chart state while other panels are being driven.
	levels := make([]model.PortRef, 2)
	for id := 1; id <= 2; id++ {
		sel := b.And(enable, b.Rel("==", panelID, b.ConstT(model.Int32, float64(id))))
		selNum := b.Cast(sel, model.Int8)
		h, sub := b.EnabledSubsystem(fmt.Sprintf("Panel%d", id), selNum)
		pw := sub.Inport("pw", model.Int32)
		pwSat := sub.Saturation(pw, 0, 300)
		ch := sub.Chart(fmt.Sprintf("chart%d", id), panelChart(id), pwSat)
		sub.Outport("level", model.Int32, ch.Out(0)).Block().Params["Init"] = 0.0
		sub.Outport("phase", model.Int32, ch.Out(1)).Block().Params["Init"] = 0.0
		b.Connect(power, h.In(1))
		levels[id-1] = h.Out(0)
	}

	total := b.Add2(levels[0], levels[1])

	// Storage mode selection from aggregate stored energy.
	mode := b.Matlab("storageMode", `
input  int32 total;
input  int8  en;
output int32 mode = 0;
if (en ~= 0) {
    if (total > 600) {
        mode = 2;
    } else {
        if (total > 200) { mode = 1; }
    }
} else {
    mode = 3;
}
`, total, enable)

	// Output routing per mode: off / trickle / bulk / shutdown.
	idx := b.Add2(mode.Out(0), b.ConstT(model.Int32, 1)) // MultiportSwitch is 1-based
	sw := b.Add("MultiportSwitch", "storageRoute", model.Params{"Inputs": 4})
	b.Connect(idx, sw.In(0))
	b.Connect(b.ConstT(model.Int32, 0), sw.In(1))   // mode 0: off
	b.Connect(b.Gain(total, 1), sw.In(2))           // mode 1: trickle = store total
	b.Connect(b.Gain(total, 2), sw.In(3))           // mode 2: bulk
	b.Connect(b.ConstT(model.Int32, -10), sw.In(4)) // mode 3: shutdown flag
	ret := b.Saturation(sw.Out(0), -1, 600)

	b.Outport("Ret", model.Int32, ret)
	return b.Model()
}
