package benchmodels

import (
	"cftcg/internal/model"
)

func init() {
	register(Entry{
		Name:          "AFC",
		Functionality: "Engine air-fuel control system",
		Build:         BuildAFC,
		PaperBranch:   35,
		PaperBlock:    125,
		Paper: Table3Row{
			SLDV:      ToolCoverage{67, 64, 11},
			SimCoTest: ToolCoverage{72, 68, 11},
			CFTCG:     ToolCoverage{83, 79, 22},
		},
	})
}

// BuildAFC reconstructs the engine air-fuel controller: a mostly continuous
// feedback loop (fuel map lookup, PI trim with anti-windup, rate limiting)
// with a mode selector. Its logic is dominated by numeric regions rather
// than discrete state, which is why all three tools land closer together on
// this model (Table 3).
func BuildAFC() *model.Model {
	b := model.NewBuilder("AFC")
	throttle := b.Inport("Throttle", model.Float64) // percent
	rpm := b.Inport("RPM", model.Float64)
	o2 := b.Inport("O2", model.Float64) // lambda sensor voltage

	// Input conditioning.
	thr := b.Saturation(throttle, 0, 100)
	rpmSat := b.Saturation(rpm, 0, 8000)

	// Base fuel from the map: fuel per airflow region.
	baseFuel := b.Add("Lookup1D", "fuelMap", model.Params{
		"Breakpoints": []float64{500, 1500, 3000, 5000, 7000},
		"Table":       []float64{2.0, 4.5, 8.0, 12.0, 14.5},
	}).From(rpmSat).Out(0)

	// Operating mode: startup (low rpm), power enrichment (high throttle),
	// else closed-loop.
	ifb := b.If("modeSel", []string{
		"u1 < 800.0",
		"u2 > 80.0",
	}, rpmSat, thr)

	// Closed-loop PI trim on the O2 error (only integrates in closed loop).
	o2err := b.Sub(b.Const(0.45), b.Saturation(o2, 0, 1))
	trimGain := b.Gain(o2err, 0.8)
	trim := b.Add("DiscreteIntegrator", "piTrim", model.Params{
		"K": 2.0, "Lower": -0.3, "Upper": 0.3,
	}).From(trimGain).Out(0)

	// Per-mode fuel command, merged through mode action subsystems.
	merge := b.Add("Merge", "fuelMerge", model.Params{"Inputs": 3, "Init": 3.0})

	_, startup := b.ActionSubsystem("Startup", ifb.Out(0))
	sb := startup.Inport("base", model.Float64)
	startup.Outport("cmd", model.Float64, startup.Gain(sb, 1.4)).Block().Params["Init"] = 3.0

	_, enrich := b.ActionSubsystem("PowerEnrich", ifb.Out(1))
	eb := enrich.Inport("base", model.Float64)
	et := enrich.Inport("thr", model.Float64)
	boost := enrich.Add2(enrich.Gain(eb, 1.15), enrich.Gain(et, 0.02))
	enrich.Outport("cmd", model.Float64, boost).Block().Params["Init"] = 3.0

	_, closed := b.ActionSubsystem("ClosedLoop", ifb.Out(2))
	cb := closed.Inport("base", model.Float64)
	ct := closed.Inport("trim", model.Float64)
	corrected := closed.Mul(cb, closed.Add2(closed.Const(1.0), ct))
	closed.Outport("cmd", model.Float64, corrected).Block().Params["Init"] = 3.0

	// Wire action subsystems' data inputs and the merge.
	su := b.Graph().BlockByName("Startup")
	eu := b.Graph().BlockByName("PowerEnrich")
	cu := b.Graph().BlockByName("ClosedLoop")
	b.Connect(baseFuel, model.PortRef{Block: su.ID, Port: 1})
	b.Connect(baseFuel, model.PortRef{Block: eu.ID, Port: 1})
	b.Connect(thr, model.PortRef{Block: eu.ID, Port: 2})
	b.Connect(baseFuel, model.PortRef{Block: cu.ID, Port: 1})
	b.Connect(trim, model.PortRef{Block: cu.ID, Port: 2})
	b.Connect(model.PortRef{Block: su.ID, Port: 0}, merge.In(0))
	b.Connect(model.PortRef{Block: eu.ID, Port: 0}, merge.In(1))
	b.Connect(model.PortRef{Block: cu.ID, Port: 0}, merge.In(2))

	// Injector command: rate limited and bounded.
	cmd := b.Add("RateLimiter", "injSlew", model.Params{
		"Rising": 0.5, "Falling": -0.8,
	}).From(merge.Out(0)).Out(0)
	out := b.Saturation(cmd, 0.5, 18)

	// Sensor plausibility: lambda voltage out of range.
	fault := b.Or(
		b.Rel("<", o2, b.Const(0.02)),
		b.Rel(">", o2, b.Const(0.98)),
	)

	b.Outport("FuelCmd", model.Float64, out)
	b.Outport("SensorFault", model.Bool, fault)
	return b.Model()
}
