package benchmodels

import (
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

func init() {
	register(Entry{
		Name:          "TCP",
		Functionality: "TCP three-way handshake protocol",
		Build:         BuildTCP,
		PaperBranch:   146,
		PaperBlock:    330,
		Paper: Table3Row{
			SLDV:      ToolCoverage{63, 64, 33},
			SimCoTest: ToolCoverage{82, 74, 17},
			CFTCG:     ToolCoverage{99, 96, 67},
		},
	})
}

// BuildTCP reconstructs the TCP three-way handshake benchmark: a connection
// state machine over segment flags with sequence-number validation. Deep
// coverage requires *ordered* segment sequences (SYN, then ACK with the
// matching sequence number, then in-order data) — the property that defeats
// shape-based signal generation and shallow unrolling.
func BuildTCP() *model.Model {
	b := model.NewBuilder("TCP")
	flags := b.Inport("Flags", model.UInt8) // bit0 SYN, bit1 ACK, bit2 FIN, bit3 RST
	seq := b.Inport("Seq", model.Int32)
	cmd := b.Inport("Cmd", model.Int8) // 0 none, 1 listen, 2 close, 3 abort

	bit := func(mask int64) model.PortRef {
		m := b.Add("Bitwise", "", model.Params{"Op": "AND"})
		b.Connect(flags, m.In(0))
		b.Connect(b.ConstT(model.UInt8, float64(mask)), m.In(1))
		return b.Add("CompareToZero", "", model.Params{"Op": "~="}).From(m.Out(0)).Out(0)
	}
	syn := bit(1)
	ack := bit(2)
	fin := bit(4)
	rst := bit(8)

	// Segment validation: in-order, duplicate, or future segment relative
	// to the receiver's expected sequence number.
	validator := b.Matlab("seqCheck", `
input  int32 seq;
input  bool  active;
output bool  ok = false;
output bool  dup = false;
state  int32 expected = 0;
if (active) {
    if (seq == expected) {
        ok = true;
        expected = expected + 1;
    } else {
        if (seq < expected) { dup = true; }
    }
} else {
    expected = seq + 1;
}
`, seq, b.Logic("OR", syn, ack))

	conn := &stateflow.Chart{
		Name: "connection",
		Inputs: []stateflow.Var{
			{Name: "syn", Type: model.Bool},
			{Name: "ack", Type: model.Bool},
			{Name: "fin", Type: model.Bool},
			{Name: "rst", Type: model.Bool},
			{Name: "cmd", Type: model.Int8},
			{Name: "ok", Type: model.Bool},
			{Name: "dup", Type: model.Bool},
		},
		Outputs: []stateflow.Var{
			{Name: "stateCode", Type: model.Int32, Init: 0},
			{Name: "delivered", Type: model.Int32, Init: 0},
			{Name: "event", Type: model.Int32, Init: 0},
		},
		Locals: []stateflow.Var{
			{Name: "ticks", Type: model.Int32},
			{Name: "retries", Type: model.Int32},
		},
		States: []*stateflow.State{
			{Name: "Closed", Entry: "stateCode = 0; ticks = 0;"},
			{Name: "Listen", Entry: "stateCode = 1;"},
			{Name: "SynRcvd", Entry: "stateCode = 2; retries = 0;", During: "retries = retries + 1;"},
			{Name: "Established", Entry: "stateCode = 3; event = 1;",
				During: "if (ok) { delivered = delivered + 1; } if (delivered >= 3) { event = 2; }"},
			{Name: "CloseWait", Entry: "stateCode = 4;"},
			{Name: "LastAck", Entry: "stateCode = 5;"},
			{Name: "FinWait1", Entry: "stateCode = 6;"},
			{Name: "FinWait2", Entry: "stateCode = 7;"},
			{Name: "Closing", Entry: "stateCode = 8;"},
			{Name: "TimeWait", Entry: "stateCode = 9; ticks = 0;", During: "ticks = ticks + 1;"},
		},
		Transitions: []*stateflow.Transition{
			{From: "Closed", To: "Listen", Guard: "cmd == 1", Priority: 1},
			{From: "Listen", To: "SynRcvd", Guard: "syn && !rst", Priority: 1},
			{From: "Listen", To: "Closed", Guard: "cmd == 3", Priority: 2},
			{From: "SynRcvd", To: "Established", Guard: "ack && ok", Priority: 1},
			{From: "SynRcvd", To: "Listen", Guard: "rst || retries > 6", Priority: 2},
			{From: "Established", To: "CloseWait", Guard: "fin && ok", Priority: 1},
			{From: "Established", To: "FinWait1", Guard: "cmd == 2", Priority: 2},
			{From: "Established", To: "Closed", Guard: "rst", Priority: 3, Action: "event = 3;"},
			{From: "CloseWait", To: "LastAck", Guard: "cmd == 2", Priority: 1},
			{From: "LastAck", To: "Closed", Guard: "ack", Priority: 1},
			{From: "FinWait1", To: "FinWait2", Guard: "ack && !fin", Priority: 1},
			{From: "FinWait1", To: "Closing", Guard: "fin && !ack", Priority: 2},
			{From: "FinWait1", To: "TimeWait", Guard: "fin && ack", Priority: 3},
			{From: "FinWait2", To: "TimeWait", Guard: "fin", Priority: 1},
			{From: "Closing", To: "TimeWait", Guard: "ack", Priority: 1},
			{From: "TimeWait", To: "Closed", Guard: "ticks >= 4", Priority: 1},
		},
		Initial: "Closed",
	}
	ch := b.Chart("connection", conn, syn, ack, fin, rst, cmd, validator.Out(0), validator.Out(1))

	// Segment accounting outside the chart: duplicate counter with alarm.
	dupCount := b.Matlab("dupStats", `
input  bool  dup;
output int32 dups = 0;
output bool  storm = false;
state  int32 total = 0;
if (dup) { total = total + 1; }
dups = total;
if (total > 20) { storm = true; }
`, validator.Out(1))

	// Retransmission backoff emulation on the event line: event codes 0-3
	// map to -50..400, exercising both saturation bounds.
	backoff := b.Saturation(b.Add2(b.Gain(ch.Out(2), 150), b.ConstT(model.Int32, -50)), 0, 300)

	established := b.Rel("==", ch.Out(0), b.ConstT(model.Int32, 3))
	healthy := b.And(established, b.Not(dupCount.Out(1)))

	b.Outport("State", model.Int32, ch.Out(0))
	b.Outport("Delivered", model.Int32, ch.Out(1))
	b.Outport("Backoff", model.Int32, b.Cast(backoff, model.Int32))
	b.Outport("Healthy", model.Bool, healthy)
	return b.Model()
}
