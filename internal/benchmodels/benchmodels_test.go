package benchmodels

import (
	"bytes"
	"math/rand"
	"testing"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/interp"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

func TestAllModelsCompile(t *testing.T) {
	if len(All()) < 8 {
		t.Fatalf("expected 8 benchmark models, have %d", len(All()))
	}
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			m := e.Build()
			c, err := codegen.Compile(m)
			if err != nil {
				t.Fatalf("%s: Compile: %v", e.Name, err)
			}
			t.Logf("%s: branches=%d (paper %d), blocks=%d (paper %d), tuple=%dB, decisions=%d, conds=%d",
				e.Name, c.Plan.NumBranches, e.PaperBranch, m.Root.CountBlocks(), e.PaperBlock,
				c.Prog.TupleSize(), len(c.Plan.Decisions), len(c.Plan.Conds))
			// Branch counts must be in the paper's range: same order of
			// magnitude, within a factor of two.
			if c.Plan.NumBranches < e.PaperBranch/2 || c.Plan.NumBranches > e.PaperBranch*2 {
				t.Errorf("%s: branch count %d too far from paper's %d",
					e.Name, c.Plan.NumBranches, e.PaperBranch)
			}
		})
	}
}

// TestAllModelsDifferential runs every benchmark on both execution paths
// with shared random input streams and demands bit-identical outputs and
// coverage — the repository-wide version of the paper's generated-code
// validation.
func TestAllModelsDifferential(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			c, err := codegen.Compile(e.Build())
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			vmRec := coverage.NewRecorder(c.Plan)
			machine := vm.New(c.Prog, vmRec)
			itRec := coverage.NewRecorder(c.Plan)
			eng := interp.New(c.Design, c.Plan, c.Index, itRec)

			rng := rand.New(rand.NewSource(99))
			in := make([]uint64, len(c.Prog.In))
			for trial := 0; trial < 3; trial++ {
				machine.Init()
				if err := eng.Init(); err != nil {
					t.Fatalf("engine init: %v", err)
				}
				for step := 0; step < 200; step++ {
					for i, f := range c.Prog.In {
						if f.Type.IsFloat() {
							in[i] = model.EncodeFloat(f.Type, rng.NormFloat64()*float64(rng.Intn(1000)+1))
						} else if rng.Intn(2) == 0 {
							in[i] = model.EncodeInt(f.Type, int64(rng.Intn(16)))
						} else {
							in[i] = model.EncodeInt(f.Type, rng.Int63())
						}
					}
					vmRec.BeginStep()
					machine.Step(in)
					itRec.BeginStep()
					outs, err := eng.Step(in)
					if err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					for k := range outs {
						if outs[k] != machine.Out()[k] {
							t.Fatalf("trial %d step %d output %d diverges: vm=%#x interp=%#x",
								trial, step, k, machine.Out()[k], outs[k])
						}
					}
					if !bytes.Equal(vmRec.Curr, itRec.Curr) {
						for br := range vmRec.Curr {
							if vmRec.Curr[br] != itRec.Curr[br] {
								t.Fatalf("trial %d step %d: coverage diverges at %s",
									trial, step, c.Plan.BranchLabel(br))
							}
						}
					}
				}
			}
			if !bytes.Equal(vmRec.Total, itRec.Total) {
				t.Fatal("cumulative coverage diverges")
			}
		})
	}
}

func TestSolarPVTupleMatchesFigure3(t *testing.T) {
	c, err := codegen.Compile(BuildSolarPV())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Figure 3: dataLen = 9 (int8 Enable + int32 Power + int32 PanelID).
	if got := c.Prog.TupleSize(); got != 9 {
		t.Errorf("SolarPV tuple size: want 9 as in Figure 3, got %d", got)
	}
	wantFields := []struct {
		name string
		dt   model.DType
	}{{"Enable", model.Int8}, {"Power", model.Int32}, {"PanelID", model.Int32}}
	for i, f := range c.Prog.In {
		if f.Name != wantFields[i].name || f.Type != wantFields[i].dt {
			t.Errorf("field %d: got %s %s, want %s %s", i, f.Type, f.Name, wantFields[i].dt, wantFields[i].name)
		}
	}
}
