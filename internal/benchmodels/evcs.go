package benchmodels

import (
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

func init() {
	register(Entry{
		Name:          "EVCS",
		Functionality: "Electric vehicle charging system",
		Build:         BuildEVCS,
		PaperBranch:   89,
		PaperBlock:    152,
		Paper: Table3Row{
			SLDV:      ToolCoverage{80, 63, 21},
			SimCoTest: ToolCoverage{80, 63, 21},
			CFTCG:     ToolCoverage{92, 93, 83},
		},
	})
}

// BuildEVCS reconstructs the EV charging system: a session state machine
// (plug, authorize, charge, balance, complete) over electrical monitors.
// The authorization step demands a specific PIN-like code and the balancing
// phase triggers only in a narrow state-of-charge window.
func BuildEVCS() *model.Model {
	b := model.NewBuilder("EVCS")
	plugged := b.Inport("Plugged", model.Int8)
	authCode := b.Inport("AuthCode", model.Int32)
	current := b.Inport("Current", model.Float64)
	tempC := b.Inport("TempC", model.Float64)

	// Electrical conditioning.
	iSat := b.Saturation(current, 0, 63)
	ripple := b.Add("DeadZone", "ripple", model.Params{"Start": -0.5, "End": 0.5}).
		From(b.Sub(iSat, b.Add("UnitDelay", "iPrev", model.Params{"Init": 0.0, "Type": model.Float64}).From(iSat).Out(0))).Out(0)
	overTemp := b.Add("Relay", "thermal", model.Params{
		"OnPoint": 70.0, "OffPoint": 55.0, "OnValue": 1.0, "OffValue": 0.0,
	}).From(tempC).Out(0)

	authOK := b.Rel("==", authCode, b.ConstT(model.Int32, 4096))

	// State of charge follows the *granted* current (wired below, after the
	// session chart computes the grant) with a 1 A standing drain, so the
	// battery discharges when idle and both integrator bounds are live.
	// The explicit Type breaks the type-inference cycle through the chart.
	socInt := b.Add("DiscreteIntegrator", "soc", model.Params{
		"K": 2.0, "Lower": 0.0, "Upper": 100.0, "Type": model.Float64,
	})
	soc := socInt.Out(0)

	session := &stateflow.Chart{
		Name: "session",
		Inputs: []stateflow.Var{
			{Name: "plug", Type: model.Int8},
			{Name: "auth", Type: model.Bool},
			{Name: "amps", Type: model.Float64},
			{Name: "soc", Type: model.Float64},
			{Name: "hot", Type: model.Bool},
		},
		Outputs: []stateflow.Var{
			{Name: "phase", Type: model.Int32, Init: 0},
			{Name: "sessions", Type: model.Int32, Init: 0},
		},
		Locals: []stateflow.Var{{Name: "authTries", Type: model.Int32}},
		States: []*stateflow.State{
			{Name: "Idle", Entry: "phase = 0;"},
			{Name: "Plugged", Entry: "phase = 1; authTries = 0;", During: "authTries = authTries + 1;"},
			{Name: "Charging", Entry: "phase = 2;"},
			{Name: "Balancing", Entry: "phase = 3;"},
			{Name: "Complete", Entry: "phase = 4; sessions = sessions + 1;"},
			{Name: "Fault", Entry: "phase = 5;"},
		},
		Transitions: []*stateflow.Transition{
			{From: "Idle", To: "Plugged", Guard: "plug ~= 0", Priority: 1},
			{From: "Plugged", To: "Charging", Guard: "auth", Priority: 1},
			{From: "Plugged", To: "Fault", Guard: "authTries > 10", Priority: 2},
			{From: "Plugged", To: "Idle", Guard: "plug == 0", Priority: 3},
			{From: "Charging", To: "Balancing", Guard: "soc >= 80.0 && soc < 95.0 && amps < 10.0", Priority: 1},
			{From: "Charging", To: "Fault", Guard: "hot", Priority: 2},
			{From: "Charging", To: "Idle", Guard: "plug == 0", Priority: 3},
			{From: "Balancing", To: "Complete", Guard: "soc >= 95.0", Priority: 1},
			{From: "Balancing", To: "Charging", Guard: "amps >= 20.0", Priority: 2},
			{From: "Complete", To: "Idle", Guard: "plug == 0", Priority: 1},
			{From: "Fault", To: "Idle", Guard: "plug == 0 && !hot", Priority: 1},
		},
		Initial: "Idle",
	}
	ch := b.Chart("session", session, plugged, authOK, iSat, soc, b.Cast(overTemp, model.Bool))

	// Demand limit: charging draws full current, balancing a trickle.
	charging := b.Rel("==", ch.Out(0), b.ConstT(model.Int32, 2))
	balancing := b.Rel("==", ch.Out(0), b.ConstT(model.Int32, 3))
	grant := b.Switch(charging, iSat, b.Switch(balancing, b.MinMax("min", iSat, b.Const(6)), b.Const(0)))
	// Close the charge loop: soc integrates grant minus the standing drain.
	// The integrator port is non-feedthrough, so this cycle is legal.
	b.Connect(b.Sub(grant, b.Const(1)), socInt.In(0))

	// Billing accumulator with meter fault detection.
	bill := b.Matlab("billing", `
input  float64 amps;
input  int32   phase;
input  float64 ripple;
output float64 kwh = 0;
output bool    meterFault = false;
state  float64 total = 0;
if (phase == 2 || phase == 3) { total = total + amps * 0.01; }
kwh = total;
if (ripple > 3.0 || ripple < -3.0) { meterFault = true; }
`, grant, ch.Out(0), ripple)

	b.Outport("Phase", model.Int32, ch.Out(0))
	b.Outport("Grant", model.Float64, grant)
	b.Outport("KWh", model.Float64, bill.Out(0))
	b.Outport("MeterFault", model.Bool, bill.Out(1))
	b.Outport("Sessions", model.Int32, ch.Out(1))
	m := b.Model()
	m.SampleTime = 1.0 // charging sessions evolve on a 1 s grid
	return m
}
