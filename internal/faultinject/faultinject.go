// Package faultinject is a failpoint registry for chaos testing: named
// hooks threaded through the durability-critical paths (checkpoint I/O, WAL
// append/rotate/sync, shard execution, corpus import/export) that can be
// armed to inject errors, panics, delays or short writes.
//
// The package has two builds selected by the `faultinject` build tag:
//
//   - Without the tag (production, default) every hook compiles to an
//     inlinable no-op — Eval returns nil unconditionally, ShortWrite passes
//     the length through — so instrumented call sites cost nothing and the
//     registry machinery is absent from the binary. CI verifies this by
//     grepping the armed-build marker string out of both binaries.
//   - With `-tags faultinject` the registry is live. Failpoints are armed
//     either programmatically (Set, the chaos-test API) or at process start
//     from the CFTCG_FAULTPOINTS environment variable, which is how the
//     chaos harness injects faults into a separately spawned daemon.
//
// A failpoint fires according to its activation controls: After skips the
// first N hits, Times bounds how often it fires, and P makes each eligible
// hit probabilistic. The environment spec grammar mirrors the struct:
//
//	CFTCG_FAULTPOINTS="wal.append=error(boom)#1;fuzz.loop:shard1=delay(2s)@100"
//
// where a spec is kind[(arg)] with optional modifiers *p (probability),
// @after and #times in any order.
package faultinject

import "time"

// EnvVar names the environment variable parsed at init in armed builds.
const EnvVar = "CFTCG_FAULTPOINTS"

// Kind is the fault a failpoint injects when it fires.
type Kind uint8

const (
	// KindError makes Eval return an injected error.
	KindError Kind = iota
	// KindPanic makes Eval panic.
	KindPanic
	// KindDelay makes Eval sleep for Failpoint.Delay, simulating a hang.
	KindDelay
	// KindShortWrite makes ShortWrite truncate the reported write length,
	// simulating a torn write. Eval treats it like KindError.
	KindShortWrite
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindShortWrite:
		return "shortwrite"
	}
	return "kind(?)"
}

// Failpoint describes one injected fault and its activation controls.
type Failpoint struct {
	Kind  Kind
	Msg   string        // error/panic message (optional)
	Delay time.Duration // sleep length for KindDelay
	P     float64       // per-hit firing probability (<=0 means always)
	After int           // skip this many hits before becoming eligible
	Times int           // fire at most this many times (0 = unlimited)
}
