//go:build faultinject

package faultinject

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// marker is embedded in every injected error and the arm-time log line; CI
// greps binaries for it to prove that production (untagged) builds carry no
// failpoint machinery.
const marker = "faultinject: armed"

type state struct {
	fp    Failpoint
	hits  int
	fired int
}

var (
	armed  atomic.Int32 // number of registered failpoints (fast-path gate)
	mu     sync.Mutex
	points = map[string]*state{}
)

func init() {
	if spec := os.Getenv(EnvVar); spec != "" {
		if err := SetFromEnv(spec); err != nil {
			log.Fatalf("faultinject: bad %s: %v", EnvVar, err)
		}
		log.Printf("%s from %s=%q", marker, EnvVar, spec)
	}
}

// Enabled reports whether this binary was built with failpoint support.
func Enabled() bool { return true }

// Set arms (or re-arms, resetting counters) the named failpoint.
func Set(name string, fp Failpoint) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &state{fp: fp}
}

// Clear disarms the named failpoint.
func Clear(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every failpoint.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*state{}
	armed.Store(0)
}

// Hits returns how many times the named failpoint was evaluated.
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if st := points[name]; st != nil {
		return st.hits
	}
	return 0
}

// Fired returns how many times the named failpoint actually injected.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if st := points[name]; st != nil {
		return st.fired
	}
	return 0
}

// check counts a hit and decides whether the failpoint fires.
func check(name string) (Failpoint, bool) {
	if armed.Load() == 0 {
		return Failpoint{}, false
	}
	mu.Lock()
	defer mu.Unlock()
	st := points[name]
	if st == nil {
		return Failpoint{}, false
	}
	st.hits++
	if st.hits <= st.fp.After {
		return Failpoint{}, false
	}
	if st.fp.Times > 0 && st.fired >= st.fp.Times {
		return Failpoint{}, false
	}
	if st.fp.P > 0 && st.fp.P < 1 && rand.Float64() >= st.fp.P {
		return Failpoint{}, false
	}
	st.fired++
	return st.fp, true
}

// Eval evaluates the named failpoint: it sleeps for KindDelay, panics for
// KindPanic, and returns an injected error for KindError/KindShortWrite.
// Unarmed failpoints cost one atomic load.
func Eval(name string) error {
	fp, fire := check(name)
	if !fire {
		return nil
	}
	switch fp.Kind {
	case KindDelay:
		time.Sleep(fp.Delay)
		return nil
	case KindPanic:
		panic(fmt.Sprintf("%s: failpoint %s: %s", marker, name, msgOr(fp.Msg, "injected panic")))
	default:
		return fmt.Errorf("%s: failpoint %s: %s", marker, name, msgOr(fp.Msg, "injected error"))
	}
}

// ShortWrite evaluates a KindShortWrite failpoint against an intended write
// of n bytes. When it fires it returns the truncated length (half, at least
// one byte short) and true; callers write the truncated prefix and then fail,
// simulating a torn write. Non-shortwrite kinds never fire here.
func ShortWrite(name string, n int) (int, bool) {
	fp, fire := check(name)
	if !fire || fp.Kind != KindShortWrite || n == 0 {
		return n, false
	}
	m := n / 2
	if m >= n {
		m = n - 1
	}
	return m, true
}

// SetFromEnv parses and arms a semicolon-separated failpoint list, e.g.
// "wal.append=error(boom)#1;fuzz.loop:shard1=delay(2s)@100".
func SetFromEnv(env string) error {
	for _, part := range strings.Split(env, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return fmt.Errorf("bad failpoint %q (want name=spec)", part)
		}
		fp, err := ParseSpec(spec)
		if err != nil {
			return fmt.Errorf("failpoint %s: %w", name, err)
		}
		Set(name, fp)
	}
	return nil
}

// ParseSpec parses a failpoint spec: kind[(arg)] followed by optional
// modifiers *p (probability), @after, #times in any order.
func ParseSpec(spec string) (Failpoint, error) {
	var fp Failpoint
	spec = strings.TrimSpace(spec)
	// Split off modifiers: everything from the first *, @ or # outside the
	// optional (arg).
	body := spec
	mods := ""
	depth := 0
	for i, r := range spec {
		if r == '(' {
			depth++
		}
		if r == ')' {
			depth--
		}
		if depth == 0 && (r == '*' || r == '@' || r == '#') {
			body, mods = spec[:i], spec[i:]
			break
		}
	}
	kind, arg := body, ""
	if i := strings.IndexByte(body, '('); i >= 0 {
		if !strings.HasSuffix(body, ")") {
			return fp, fmt.Errorf("unterminated arg in %q", spec)
		}
		kind, arg = body[:i], body[i+1:len(body)-1]
	}
	switch kind {
	case "error":
		fp.Kind, fp.Msg = KindError, arg
	case "panic":
		fp.Kind, fp.Msg = KindPanic, arg
	case "shortwrite":
		fp.Kind, fp.Msg = KindShortWrite, arg
	case "delay":
		fp.Kind = KindDelay
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fp, fmt.Errorf("bad delay %q: %w", arg, err)
		}
		fp.Delay = d
	default:
		return fp, fmt.Errorf("unknown kind %q (want error, panic, delay or shortwrite)", kind)
	}
	for mods != "" {
		op := mods[0]
		rest := mods[1:]
		end := strings.IndexAny(rest, "*@#")
		if end < 0 {
			end = len(rest)
		}
		val := rest[:end]
		mods = rest[end:]
		switch op {
		case '*':
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p <= 0 || p > 1 {
				return fp, fmt.Errorf("bad probability %q", val)
			}
			fp.P = p
		case '@':
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fp, fmt.Errorf("bad after %q", val)
			}
			fp.After = n
		case '#':
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return fp, fmt.Errorf("bad times %q", val)
			}
			fp.Times = n
		}
	}
	return fp, nil
}

func msgOr(msg, def string) string {
	if msg != "" {
		return msg
	}
	return def
}
