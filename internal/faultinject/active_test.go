//go:build faultinject

package faultinject

import (
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Failpoint
		bad  bool
	}{
		{in: "error", want: Failpoint{Kind: KindError}},
		{in: "error(boom)", want: Failpoint{Kind: KindError, Msg: "boom"}},
		{in: "panic(die)#2", want: Failpoint{Kind: KindPanic, Msg: "die", Times: 2}},
		{in: "delay(150ms)@3", want: Failpoint{Kind: KindDelay, Delay: 150 * time.Millisecond, After: 3}},
		{in: "shortwrite#1", want: Failpoint{Kind: KindShortWrite, Times: 1}},
		{in: "error*0.5@2#3", want: Failpoint{Kind: KindError, P: 0.5, After: 2, Times: 3}},
		{in: "bogus", bad: true},
		{in: "delay(xyz)", bad: true},
		{in: "error*2", bad: true},
		{in: "error@-1", bad: true},
		{in: "error(unterminated", bad: true},
	}
	for _, c := range cases {
		fp, err := ParseSpec(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSpec(%q): want error, got %+v", c.in, fp)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if fp != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, fp, c.want)
		}
	}
}

func TestAfterAndTimes(t *testing.T) {
	defer Reset()
	Set("t.at", Failpoint{Kind: KindError, After: 2, Times: 2})
	var errs int
	for i := 0; i < 10; i++ {
		if Eval("t.at") != nil {
			errs++
		}
	}
	if errs != 2 {
		t.Errorf("After=2 Times=2 over 10 hits: fired %d, want 2", errs)
	}
	if Hits("t.at") != 10 || Fired("t.at") != 2 {
		t.Errorf("hits=%d fired=%d, want 10/2", Hits("t.at"), Fired("t.at"))
	}
}

func TestPanicAndDelayKinds(t *testing.T) {
	defer Reset()
	Set("t.panic", Failpoint{Kind: KindPanic, Msg: "kaboom"})
	func() {
		defer func() {
			r := recover()
			if r == nil || !strings.Contains(r.(string), "kaboom") {
				t.Errorf("panic failpoint: recovered %v", r)
			}
		}()
		Eval("t.panic")
	}()

	Set("t.delay", Failpoint{Kind: KindDelay, Delay: 30 * time.Millisecond, Times: 1})
	start := time.Now()
	if err := Eval("t.delay"); err != nil {
		t.Errorf("delay failpoint returned error: %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("delay failpoint slept only %s", d)
	}
}

func TestShortWrite(t *testing.T) {
	defer Reset()
	Set("t.short", Failpoint{Kind: KindShortWrite, Times: 1})
	n, fired := ShortWrite("t.short", 100)
	if !fired || n >= 100 {
		t.Errorf("short write: n=%d fired=%v", n, fired)
	}
	if n, fired = ShortWrite("t.short", 100); fired || n != 100 {
		t.Errorf("exhausted short write should pass through: n=%d fired=%v", n, fired)
	}
	// Non-shortwrite kinds never fire through ShortWrite.
	Set("t.err", Failpoint{Kind: KindError})
	if n, fired = ShortWrite("t.err", 10); fired || n != 10 {
		t.Errorf("error kind fired via ShortWrite: n=%d fired=%v", n, fired)
	}
}

func TestSetFromEnv(t *testing.T) {
	defer Reset()
	if err := SetFromEnv("a.b=error(x)#1; c.d=delay(10ms)"); err != nil {
		t.Fatal(err)
	}
	if Eval("a.b") == nil {
		t.Error("a.b should fire once")
	}
	if Eval("a.b") != nil {
		t.Error("a.b should be exhausted")
	}
	if err := SetFromEnv("oops"); err == nil {
		t.Error("malformed env spec should error")
	}
	Clear("c.d")
	if Eval("c.d") != nil {
		t.Error("cleared failpoint should be inert")
	}
}
