//go:build !faultinject

package faultinject

// In production builds (no `faultinject` tag) every hook is an inlinable
// no-op: instrumented call sites compile to nothing and the registry is
// absent from the binary. CI greps for the armed-build marker string to
// verify that.

// Enabled reports whether this binary was built with failpoint support.
func Enabled() bool { return false }

// Eval is a no-op in production builds.
func Eval(name string) error { return nil }

// ShortWrite passes the write length through in production builds.
func ShortWrite(name string, n int) (int, bool) { return n, false }

// Set is a no-op in production builds.
func Set(name string, fp Failpoint) {}

// Clear is a no-op in production builds.
func Clear(name string) {}

// Reset is a no-op in production builds.
func Reset() {}

// Hits always reports zero in production builds.
func Hits(name string) int { return 0 }

// Fired always reports zero in production builds.
func Fired(name string) int { return 0 }

// SetFromEnv is a no-op in production builds.
func SetFromEnv(env string) error { return nil }
