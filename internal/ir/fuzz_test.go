package ir

import (
	"reflect"
	"testing"
)

// FuzzDisasmRoundTrip feeds arbitrary text to ParseDisasm. Malformed input
// must be rejected with an error — never a panic — and any text the parser
// accepts must survive a disassemble/parse cycle exactly: Disasm output is
// the canonical form, so one render reaches a fixpoint.
func FuzzDisasmRoundTrip(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 17, 99} {
		p, _ := GenProgram(seed)
		f.Add(Disasm(p.Step))
		f.Add(Disasm(p.Init))
	}
	f.Add(Disasm(everyOpcode()))
	f.Add("   0  const     r1 = 0xfffffff9 (i32 -7)\n   1  add       r3 = r1, r2 (i32)")
	f.Add("jmp -> 0\nhalt")
	f.Add("bogus r1 = r2")
	f.Fuzz(func(t *testing.T, text string) {
		ins, err := ParseDisasm(text)
		if err != nil {
			return // rejection is fine; only a panic is a bug
		}
		canon := Disasm(ins)
		ins2, err := ParseDisasm(canon)
		if err != nil {
			t.Fatalf("canonical text failed to re-parse: %v\n%s", err, canon)
		}
		if !reflect.DeepEqual(ins, ins2) {
			t.Fatalf("instructions changed across a disasm/parse cycle\nbefore: %#v\nafter:  %#v", ins, ins2)
		}
		if again := Disasm(ins2); again != canon {
			t.Fatalf("disasm not a fixpoint:\nfirst:\n%s\nsecond:\n%s", canon, again)
		}
	})
}
