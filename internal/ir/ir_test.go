package ir

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

func minimalProgram() *Program {
	var regs int32
	a := NewAsm(&regs)
	x := a.LoadIn(model.Int32, 0)
	y := a.ConstVal(model.Int32, 5)
	sum := a.Bin(OpAdd, model.Int32, x, y)
	a.StoreOut(0, sum)
	a.Halt()
	init := NewAsm(&regs)
	init.Halt()
	return &Program{
		Name:    "min",
		Init:    init.Instrs,
		Step:    a.Instrs,
		NumRegs: int(regs),
		In:      []model.Field{{Name: "x", Type: model.Int32}},
		Out:     []model.Field{{Name: "y", Type: model.Int32}},
	}
}

func TestValidateAcceptsMinimal(t *testing.T) {
	if err := minimalProgram().Validate(); err != nil {
		t.Fatalf("minimal program rejected: %v", err)
	}
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
	}{
		{"dst out of range", func(p *Program) { p.Step[0].Dst = 99 }},
		{"input slot", func(p *Program) { p.Step[0].Imm = 5 }},
		{"output slot", func(p *Program) {
			for i := range p.Step {
				if p.Step[i].Op == OpStoreOut {
					p.Step[i].Imm = 3
				}
			}
		}},
		{"jump target", func(p *Program) {
			p.Step = append([]Instr{{Op: OpJmp, Imm: 1000}}, p.Step...)
		}},
		{"state slot", func(p *Program) {
			p.Step = append(p.Step, Instr{Op: OpLoadState, Imm: 2})
		}},
		{"select regs", func(p *Program) {
			p.Step = append(p.Step, Instr{Op: OpSelect, Dst: 0, A: 0, B: 50, C: 0})
		}},
		{"condprobe reg", func(p *Program) {
			p.Step = append(p.Step, Instr{Op: OpCondProbe, A: 0, B: 77})
		}},
	}
	for _, c := range cases {
		p := minimalProgram()
		c.mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: bad program accepted", c.name)
		}
	}
}

func TestAsmPatching(t *testing.T) {
	var regs int32
	a := NewAsm(&regs)
	c := a.Const(model.Bool, 1)
	j := a.JmpIfNot(c)
	a.ConstVal(model.Int32, 1)
	j2 := a.Jmp()
	a.Patch(j)
	a.ConstVal(model.Int32, 2)
	a.Patch(j2)
	a.Halt()

	if a.Instrs[j].Imm != 4 {
		t.Errorf("JmpIfNot target: %d, want 4", a.Instrs[j].Imm)
	}
	if a.Instrs[j2].Imm != 5 {
		t.Errorf("Jmp target: %d, want 5", a.Instrs[j2].Imm)
	}
	a.PatchTo(j2, 0)
	if a.Instrs[j2].Imm != 0 {
		t.Error("PatchTo failed")
	}
}

func TestAsmSharedRegisters(t *testing.T) {
	var regs int32
	a1 := NewAsm(&regs)
	a2 := NewAsm(&regs)
	r1 := a1.Reg()
	r2 := a2.Reg()
	r3 := a1.Reg()
	if r1 != 0 || r2 != 1 || r3 != 2 {
		t.Errorf("shared counter broken: %d %d %d", r1, r2, r3)
	}
}

func TestCastIdentityElided(t *testing.T) {
	var regs int32
	a := NewAsm(&regs)
	r := a.Reg()
	if got := a.Cast(model.Int32, model.Int32, r); got != r {
		t.Error("identity cast should not emit")
	}
	if len(a.Instrs) != 0 {
		t.Error("identity cast emitted an instruction")
	}
	if got := a.Truth(model.Bool, r); got != r {
		t.Error("bool truth should pass through")
	}
}

func TestDisasmMentionsEverything(t *testing.T) {
	p := minimalProgram()
	text := Disasm(p.Step)
	for _, want := range []string{"loadin", "const", "add", "storeout", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestTupleSize(t *testing.T) {
	p := &Program{In: []model.Field{
		{Type: model.Int8}, {Type: model.Float64}, {Type: model.UInt16},
	}}
	if got := p.TupleSize(); got != 11 {
		t.Errorf("tuple size %d, want 11", got)
	}
}

func TestOpStrings(t *testing.T) {
	if OpAdd.String() != "add" || OpCondProbe.String() != "condprobe" {
		t.Error("op names")
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Error("unknown op formatting")
	}
}
