package ir

import (
	"fmt"
	"math/rand"

	"cftcg/internal/model"
)

// GenDecision describes one synthetic decision a generated program probes.
// Condition IDs are globally sequential in declaration order, so a caller can
// mirror the slice into a coverage plan without further bookkeeping.
type GenDecision struct {
	NumOutcomes int
	Conds       int
}

// GenProgram builds a random, verifier-clean program from a seed: every
// opcode and data type can appear, control flow is structured (if-diamonds
// and bounded do-while loops), and probe/cond-probe instrumentation follows
// the same shapes the real lowering emits. The same seed always yields the
// same program, which makes generated programs usable as fuzz-corpus entries.
//
// Generated programs always terminate, so any fuel budget at or above the
// program's cost runs them to completion — and any budget below it produces
// a deterministic mid-program hang, which is exactly what the cross-backend
// differential tests sweep for.
func GenProgram(seed int64) (*Program, []GenDecision) {
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r}

	g.numState = r.Intn(4)
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		g.in = append(g.in, model.Field{Name: fmt.Sprintf("in%d", i), Type: g.dtype(), Offset: g.inSize})
		g.inSize += g.in[i].Type.Size()
	}
	for i, n := 0, 1+r.Intn(4); i < n; i++ {
		g.out = append(g.out, model.Field{Name: fmt.Sprintf("out%d", i), Type: g.dtype(), Offset: g.outSize})
		g.outSize += g.out[i].Type.Size()
	}
	condID := 0
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		d := GenDecision{NumOutcomes: 2, Conds: r.Intn(4)}
		g.decs = append(g.decs, d)
		g.condBase = append(g.condBase, condID)
		condID += d.Conds
	}

	var regs int32
	init := NewAsm(&regs)
	g.genFunc(init, 1+g.r.Intn(3), false)
	step := NewAsm(&regs)
	g.genFunc(step, 2+g.r.Intn(5), true)

	p := &Program{
		Name:     fmt.Sprintf("gen%d", seed),
		Init:     init.Instrs,
		Step:     step.Instrs,
		NumRegs:  int(regs),
		NumState: g.numState,
		In:       g.in,
		Out:      g.out,
	}
	for _, s := range init.Loops {
		p.LoopSites = append(p.LoopSites, LoopSite{Func: "init", PC: s.PC, Label: s.Label})
	}
	for _, s := range step.Loops {
		p.LoopSites = append(p.LoopSites, LoopSite{Func: "step", PC: s.PC, Label: s.Label})
	}
	return p, g.decs
}

type gen struct {
	r        *rand.Rand
	in, out  []model.Field
	inSize   int
	outSize  int
	numState int
	decs     []GenDecision
	condBase []int

	// avail holds the registers defined on every path to the current emit
	// point; ops only read from it, which keeps def-before-use clean no
	// matter how the structured chunks nest. reserved registers (active loop
	// counters) are never overwritten in place.
	avail    []int32
	reserved map[int32]bool
}

var genDTypes = []model.DType{
	model.Bool, model.Int8, model.UInt8, model.Int16, model.UInt16,
	model.Int32, model.UInt32, model.Float32, model.Float64,
}

func (g *gen) dtype() model.DType { return genDTypes[g.r.Intn(len(genDTypes))] }

func (g *gen) intType() model.DType {
	return genDTypes[1+g.r.Intn(6)] // Int8..UInt32
}

func (g *gen) floatType() model.DType {
	if g.r.Intn(2) == 0 {
		return model.Float32
	}
	return model.Float64
}

// rawValue picks a constant: mostly canonical encodings of boundary-ish
// numbers, sometimes a raw 64-bit pattern — backends must agree on
// non-canonical register contents too, since every op masks on use.
func (g *gen) rawValue(dt model.DType) uint64 {
	switch g.r.Intn(8) {
	case 0:
		return 0
	case 1:
		return model.Encode(dt, 1)
	case 2:
		return model.Encode(dt, -1)
	case 3:
		return model.Encode(dt, float64(g.r.Intn(1<<16)))
	case 4:
		return g.r.Uint64() // non-canonical garbage
	case 5:
		if dt.IsFloat() {
			return model.Encode(dt, g.r.NormFloat64()*1e3)
		}
		return model.Encode(dt, float64(g.r.Intn(256)-128))
	default:
		return model.Encode(dt, float64(g.r.Intn(20)-10))
	}
}

func (g *gen) pick() int32 { return g.avail[g.r.Intn(len(g.avail))] }

// push registers a freshly defined register as readable from here on.
func (g *gen) push(r int32) { g.avail = append(g.avail, r) }

// genFunc emits one function: a prologue seeding the register pool, a body
// of structured chunks, the output stores, and a halt.
func (g *gen) genFunc(a *Asm, chunks int, isStep bool) {
	g.avail = g.avail[:0]
	g.reserved = map[int32]bool{}
	for i, n := 0, 3+g.r.Intn(4); i < n; i++ {
		dt := g.dtype()
		g.push(a.Const(dt, g.rawValue(dt)))
	}
	g.chunkSeq(a, chunks, 0, isStep)
	for i := range g.out {
		a.StoreOut(i, g.pick())
	}
	a.Halt()
}

func (g *gen) chunkSeq(a *Asm, n, depth int, isStep bool) {
	for i := 0; i < n; i++ {
		switch k := g.r.Intn(6); {
		case k == 0 && depth < 2:
			g.diamond(a, depth, isStep)
		case k == 1 && depth < 2 && isStep:
			g.loop(a, depth)
		case k == 2 && len(g.decs) > 0:
			g.probeDiamond(a, depth, isStep)
		default:
			g.straight(a, 1+g.r.Intn(5), isStep)
		}
	}
}

// diamond emits if/else around a data-dependent condition. Registers defined
// inside either arm are only readable within it: avail is restored at the
// join so later ops never read a maybe-undefined register. The guard itself
// takes the shapes the lowering produces — a bare register, a fresh compare
// feeding the branch, or a constant-compare-branch triple.
func (g *gen) diamond(a *Asm, depth int, isStep bool) {
	var cond int32
	switch g.r.Intn(3) {
	case 0:
		cond = g.pick()
	case 1: // cmp + branch (CmpJmp shape)
		cond = a.Bin(g.cmpOp(), g.dtype(), g.pick(), g.pick())
		g.push(cond)
	default: // const + cmp + branch (ConstCmpJmp shape)
		dt := g.dtype()
		c := a.Const(dt, g.rawValue(dt))
		g.push(c)
		cond = a.Bin(g.cmpOp(), dt, g.pick(), c)
		g.push(cond)
	}
	mark := len(g.avail)
	j := a.JmpIfNot(cond)
	g.chunkSeq(a, 1, depth+1, isStep)
	g.avail = g.avail[:mark]
	j2 := a.Jmp()
	a.Patch(j)
	g.chunkSeq(a, 1, depth+1, isStep)
	g.avail = g.avail[:mark]
	a.Patch(j2)
}

func (g *gen) cmpOp() Op {
	cmpOps := [...]Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	return cmpOps[g.r.Intn(len(cmpOps))]
}

// probeDiamond emits the decision shape the lowering produces: cond-probes
// for each condition slot, then a two-armed branch whose arms record the
// decision outcome.
func (g *gen) probeDiamond(a *Asm, depth int, isStep bool) {
	d := g.r.Intn(len(g.decs))
	for s := 0; s < g.decs[d].Conds; s++ {
		a.CondProbe(g.condBase[d]+s, g.pick())
	}
	mark := len(g.avail)
	j := a.JmpIfNot(g.pick())
	if depth < 2 && g.r.Intn(3) == 0 {
		// Probe immediately followed by a conditional branch — the nested-
		// decision shape (ProbeJin) the lowering emits for chained guards.
		a.Probe(d, 1)
		j3 := a.JmpIfNot(g.pick())
		g.straight(a, 1+g.r.Intn(2), isStep)
		g.avail = g.avail[:mark]
		a.Patch(j3)
	} else {
		a.Probe(d, 1)
		g.straight(a, g.r.Intn(3), isStep)
		g.avail = g.avail[:mark]
	}
	j2 := a.Jmp()
	a.Patch(j)
	a.Probe(d, 0)
	g.straight(a, g.r.Intn(3), isStep)
	g.avail = g.avail[:mark]
	a.Patch(j2)
}

// loop emits a bounded do-while: the body always runs at least once, so its
// definitions are unconditional, and the trip count is a small constant, so
// generated programs always terminate.
func (g *gen) loop(a *Asm, depth int) {
	n := 1 + g.r.Intn(6)
	ctr := a.Const(model.Int32, model.EncodeInt(model.Int32, 0))
	limit := a.Const(model.Int32, model.EncodeInt(model.Int32, int64(n)))
	one := a.Const(model.Int32, model.EncodeInt(model.Int32, 1))
	g.push(ctr)
	g.push(limit)
	g.push(one)
	g.reserved[ctr], g.reserved[limit], g.reserved[one] = true, true, true
	top := a.PC()
	g.chunkSeq(a, 1, depth+1, true)
	a.Emit(Instr{Op: OpAdd, DT: model.Int32, Dst: ctr, A: ctr, B: one})
	t := a.Bin(OpLt, model.Int32, ctr, limit)
	g.push(t)
	back := a.Emit(Instr{Op: OpJmpIf, A: t, Imm: uint64(top)})
	a.NoteLoop(back, fmt.Sprintf("gen/do-while x%d", n))
	delete(g.reserved, ctr)
	delete(g.reserved, limit)
	delete(g.reserved, one)
}

// straight emits n data ops drawing operands from the defined pool. Inputs
// are only loadable from step: init runs without an input tuple.
func (g *gen) straight(a *Asm, n int, isStep bool) {
	var arithOps = [...]Op{OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax}
	var cmpOps = [...]Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	var bitOps = [...]Op{OpBitAnd, OpBitOr, OpBitXor, OpShl, OpShr}
	var boolOps = [...]Op{OpAnd, OpOr, OpXor}
	var mathOps = [...]Op{OpSqrt, OpExp, OpLog, OpSin, OpCos, OpTan, OpFloor, OpCeil, OpRound, OpTrunc}
	ncOps := [...]Op{OpSub, OpDiv, OpMin, OpMax, OpLt, OpGe, OpShl, OpShr}
	for i := 0; i < n; i++ {
		switch g.r.Intn(18) {
		case 0:
			dt := g.dtype()
			g.push(a.Const(dt, g.rawValue(dt)))
		case 1:
			g.push(a.Bin(arithOps[g.r.Intn(len(arithOps))], g.dtype(), g.pick(), g.pick()))
		case 2:
			op := OpNeg
			if g.r.Intn(2) == 0 {
				op = OpAbs
			}
			g.push(a.Un(op, g.dtype(), g.pick()))
		case 3:
			g.push(a.Bin(cmpOps[g.r.Intn(len(cmpOps))], g.dtype(), g.pick(), g.pick()))
		case 4:
			if g.r.Intn(4) == 0 {
				g.push(a.Un(OpNot, model.Bool, g.pick()))
			} else {
				g.push(a.Bin(boolOps[g.r.Intn(len(boolOps))], model.Bool, g.pick(), g.pick()))
			}
		case 5:
			g.push(a.Bin(bitOps[g.r.Intn(len(bitOps))], g.intType(), g.pick(), g.pick()))
		case 6:
			dt := genDTypes[1+g.r.Intn(len(genDTypes)-1)] // any non-bool source
			g.push(a.Truth(dt, g.pick()))
		case 7:
			g.push(a.Select(g.dtype(), g.pick(), g.pick(), g.pick()))
		case 8:
			to, from := g.dtype(), g.dtype()
			if to == from {
				from = genDTypes[(int(from)+1)%len(genDTypes)]
			}
			g.push(a.Cast(to, from, g.pick()))
		case 9:
			g.push(a.Un(mathOps[g.r.Intn(len(mathOps))], g.floatType(), g.pick()))
		case 10:
			if isStep {
				slot := g.r.Intn(len(g.in))
				g.push(a.LoadIn(g.in[slot].Type, slot))
			} else {
				dt := g.dtype()
				g.push(a.Const(dt, g.rawValue(dt)))
			}
		case 11:
			a.StoreOut(g.r.Intn(len(g.out)), g.pick())
		case 12:
			if g.numState > 0 {
				slot := g.r.Intn(g.numState)
				if g.r.Intn(2) == 0 {
					g.push(a.LoadState(g.dtype(), slot))
				} else {
					a.StoreState(slot, g.pick())
				}
			} else {
				a.Emit(Instr{Op: OpNop})
			}
		case 13:
			// Overwrite an existing register in place (the mov shapes the
			// fuser targets), skipping reserved loop counters.
			dst := g.pick()
			if !g.reserved[dst] {
				a.MovTo(dst, g.pick())
			} else {
				g.push(a.Un(OpNeg, g.dtype(), g.pick()))
			}
		case 15:
			// State accumulate (the LAS superinstruction shape): load a
			// slot, combine, store back — emitted adjacently.
			if g.numState > 0 {
				dt := g.dtype()
				slot := g.r.Intn(g.numState)
				ld := a.LoadState(dt, slot)
				r := a.Bin(arithOps[g.r.Intn(len(arithOps))], dt, ld, g.pick())
				a.StoreState(slot, r)
				g.push(ld)
				g.push(r)
			} else {
				a.Emit(Instr{Op: OpNop})
			}
		case 16:
			// Constant operand feeding a non-commutative op (ConstBin shape):
			// operand order is observable, so a backend that swaps arguments
			// diverges here.
			dt := g.dtype()
			op := ncOps[g.r.Intn(len(ncOps))]
			if op == OpShl || op == OpShr {
				dt = g.intType()
			}
			c := a.Const(dt, g.rawValue(dt))
			g.push(c)
			if g.r.Intn(2) == 0 {
				g.push(a.Bin(op, dt, c, g.pick()))
			} else {
				g.push(a.Bin(op, dt, g.pick(), c))
			}
		case 17:
			// Adjacent state traffic: store+store, load+mov, mov+load.
			if g.numState > 0 {
				switch g.r.Intn(3) {
				case 0:
					a.StoreState(g.r.Intn(g.numState), g.pick())
					a.StoreState(g.r.Intn(g.numState), g.pick())
				case 1:
					g.push(a.LoadState(g.dtype(), g.r.Intn(g.numState)))
					a.MovTo(g.avail[len(g.avail)-1], g.pick())
				default:
					if dst := g.pick(); !g.reserved[dst] {
						a.MovTo(dst, g.pick())
					}
					g.push(a.LoadState(g.dtype(), g.r.Intn(g.numState)))
				}
			} else {
				a.Emit(Instr{Op: OpNop})
			}
		default:
			dt := g.dtype()
			g.push(a.Const(dt, g.rawValue(dt)))
		}
	}
}
