// Package ir defines the typed register program the code generator lowers a
// model into. The program is the in-process equivalent of the C code the
// paper's tool synthesizes: a flat step function over a register file, with
// model state in a separate persistent vector and coverage probes
// (CoverageStatistics() calls) embedded at every instrumented branch.
package ir

import (
	"fmt"

	"cftcg/internal/model"
)

// Op is an instruction opcode.
type Op uint8

// Instruction set. Arithmetic and comparison instructions operate in the
// instruction's DT; Cast converts from DT2 to DT. Booleans are stored
// normalized (0 or 1).
const (
	OpNop Op = iota

	OpConst // dst = Imm (raw bits of DT)
	OpMov   // dst = a

	OpAdd // dst = a + b
	OpSub // dst = a - b
	OpMul // dst = a * b
	OpDiv // dst = a / b (x/0 = 0 — both engines define division totally)
	OpNeg // dst = -a
	OpAbs // dst = |a|
	OpMin // dst = min(a, b)
	OpMax // dst = max(a, b)

	OpEq // dst(bool) = a == b
	OpNe // dst(bool) = a != b
	OpLt // dst(bool) = a < b
	OpLe // dst(bool) = a <= b
	OpGt // dst(bool) = a > b
	OpGe // dst(bool) = a >= b

	OpAnd // dst(bool) = a && b (operands already normalized)
	OpOr  // dst(bool) = a || b
	OpXor // dst(bool) = a != b (as bools)
	OpNot // dst(bool) = !a

	OpBitAnd // dst = a & b (integer DT)
	OpBitOr  // dst = a | b
	OpBitXor // dst = a ^ b
	OpShl    // dst = a << (b & 31)
	OpShr    // dst = a >> (b & 31)

	OpTruth  // dst(bool) = a != 0, a has type DT
	OpSelect // dst = a != 0 ? b : c
	OpCast   // dst = DT(a), a has type DT2

	OpSqrt  // dst = sqrt(a) (float DT)
	OpExp   // dst = exp(a)
	OpLog   // dst = log(a) (log(x<=0) = 0)
	OpSin   // dst = sin(a)
	OpCos   // dst = cos(a)
	OpTan   // dst = tan(a)
	OpFloor // dst = floor(a)
	OpCeil  // dst = ceil(a)
	OpRound // dst = round-half-away(a)
	OpTrunc // dst = trunc(a)

	OpLoadIn     // dst = input[Imm]
	OpStoreOut   // output[Imm] = a
	OpLoadState  // dst = state[Imm]
	OpStoreState // state[Imm] = a

	OpJmp      // pc = Imm
	OpJmpIf    // if a != 0: pc = Imm
	OpJmpIfNot // if a == 0: pc = Imm

	OpProbe     // record decision outcome: a = decision ID, b = outcome
	OpCondProbe // record condition value: a = condition ID, b = bool register

	OpHalt // end of function
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div",
	OpNeg: "neg", OpAbs: "abs", OpMin: "min", OpMax: "max",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpNot: "not",
	OpBitAnd: "band", OpBitOr: "bor", OpBitXor: "bxor", OpShl: "shl", OpShr: "shr",
	OpTruth: "truth", OpSelect: "select", OpCast: "cast",
	OpSqrt: "sqrt", OpExp: "exp", OpLog: "log", OpSin: "sin", OpCos: "cos", OpTan: "tan",
	OpFloor: "floor", OpCeil: "ceil", OpRound: "round", OpTrunc: "trunc",
	OpLoadIn: "loadin", OpStoreOut: "storeout",
	OpLoadState: "loadst", OpStoreState: "storest",
	OpJmp: "jmp", OpJmpIf: "jmpif", OpJmpIfNot: "jmpifn",
	OpProbe: "probe", OpCondProbe: "condprobe",
	OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one instruction. Dst/A/B/C are register indexes (or IDs for
// probes); Imm carries constants, slot indexes and jump targets.
type Instr struct {
	Op  Op
	DT  model.DType // operation type
	DT2 model.DType // source type (OpCast, OpTruth)
	Dst int32
	A   int32
	B   int32
	C   int32
	Imm uint64
}

// LoopSite marks the backward jump of a lowered loop (a script `while`, a
// chart-internal cycle, …). The VM reports the nearest site when an
// execution exhausts its instruction fuel, so hang findings name the model
// construct that spun rather than a bare program counter.
type LoopSite struct {
	Func  string // "init" or "step"
	PC    int    // address of the backward jump instruction
	Label string // source construct, e.g. "Isqrt/isqrt while"
}

// Program is a complete lowered model: an init function that establishes
// initial state and a step function executed once per model iteration.
type Program struct {
	Name string

	Init []Instr
	Step []Instr

	// LoopSites lists every backward-jump loop header, for hang triage.
	LoopSites []LoopSite

	NumRegs  int
	NumState int

	// In is the tuple layout: one field per root inport, in index order.
	// This is exactly the information the paper's fuzz driver generator
	// extracts from the model parser (§3.1.1).
	In []model.Field
	// Out lists the root outports.
	Out []model.Field

	// StateNames documents state slots for disassembly and debugging.
	StateNames []string
	// StateTypes records each state slot's data type (used by the
	// constraint solver to decode the concrete initial state).
	StateTypes []model.DType
}

// LoopSiteFor returns the label of the loop site in function fn whose
// backward jump is nearest at or after pc — a loop body precedes its back
// edge, so an execution stuck at pc most plausibly belongs to the first
// back edge that follows it. Falls back to the last site before pc; empty
// when the function has no recorded loops.
func (p *Program) LoopSiteFor(fn string, pc int) string {
	after, before := "", ""
	afterPC, beforePC := -1, -1
	for _, s := range p.LoopSites {
		if s.Func != fn {
			continue
		}
		if s.PC >= pc {
			if afterPC < 0 || s.PC < afterPC {
				after, afterPC = s.Label, s.PC
			}
		} else if s.PC > beforePC {
			before, beforePC = s.Label, s.PC
		}
	}
	if after != "" {
		return after
	}
	return before
}

// TupleSize returns the number of input bytes consumed per model iteration.
func (p *Program) TupleSize() int {
	n := 0
	for _, f := range p.In {
		n += f.Type.Size()
	}
	return n
}

// Validate checks structural invariants: register indexes in range, jump
// targets in range, state/input/output slots in range. The VM relies on
// these so it can skip bounds checks in its hot loop.
func (p *Program) Validate() error {
	check := func(name string, instrs []Instr) error {
		n := int32(p.NumRegs)
		for pc, in := range instrs {
			bad := func(what string) error {
				return fmt.Errorf("ir: %s: %s[%d] %s: %s out of range", p.Name, name, pc, in.Op, what)
			}
			switch in.Op {
			case OpJmp, OpJmpIf, OpJmpIfNot:
				if in.Imm > uint64(len(instrs)) {
					return bad("jump target")
				}
				if in.Op != OpJmp && (in.A < 0 || in.A >= n) {
					return bad("cond register")
				}
			case OpLoadIn:
				if int(in.Imm) >= len(p.In) {
					return bad("input slot")
				}
				if in.Dst < 0 || in.Dst >= n {
					return bad("dst register")
				}
			case OpStoreOut:
				if int(in.Imm) >= len(p.Out) {
					return bad("output slot")
				}
				if in.A < 0 || in.A >= n {
					return bad("src register")
				}
			case OpLoadState:
				if int(in.Imm) >= p.NumState {
					return bad("state slot")
				}
				if in.Dst < 0 || in.Dst >= n {
					return bad("dst register")
				}
			case OpStoreState:
				if int(in.Imm) >= p.NumState {
					return bad("state slot")
				}
				if in.A < 0 || in.A >= n {
					return bad("src register")
				}
			case OpProbe, OpCondProbe, OpHalt, OpNop:
				if in.Op == OpCondProbe && (in.B < 0 || in.B >= n) {
					return bad("cond register")
				}
			case OpConst:
				if in.Dst < 0 || in.Dst >= n {
					return bad("dst register")
				}
			default:
				if in.Dst < 0 || in.Dst >= n {
					return bad("dst register")
				}
				if in.A < 0 || in.A >= n {
					return bad("a register")
				}
				switch in.Op {
				case OpMov, OpNeg, OpAbs, OpNot, OpTruth, OpCast,
					OpSqrt, OpExp, OpLog, OpSin, OpCos, OpTan,
					OpFloor, OpCeil, OpRound, OpTrunc:
					// unary: B/C unused
				case OpSelect:
					if in.B < 0 || in.B >= n || in.C < 0 || in.C >= n {
						return bad("b/c register")
					}
				default:
					if in.B < 0 || in.B >= n {
						return bad("b register")
					}
				}
			}
		}
		return nil
	}
	if err := check("init", p.Init); err != nil {
		return err
	}
	return check("step", p.Step)
}
