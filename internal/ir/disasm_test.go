package ir

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

// everyOpcode builds one instruction per opcode, with distinct operand
// values in every field the opcode uses.
func everyOpcode() []Instr {
	i32, f64, b := model.Int32, model.Float64, model.Bool
	ins := []Instr{
		{Op: OpNop},
		{Op: OpConst, DT: i32, Dst: 1, Imm: model.EncodeInt(i32, -7)},
		{Op: OpMov, DT: i32, Dst: 2, A: 1},
		{Op: OpAdd, DT: i32, Dst: 3, A: 1, B: 2},
		{Op: OpSub, DT: i32, Dst: 4, A: 3, B: 1},
		{Op: OpMul, DT: i32, Dst: 5, A: 4, B: 2},
		{Op: OpDiv, DT: i32, Dst: 6, A: 5, B: 3},
		{Op: OpNeg, DT: i32, Dst: 7, A: 6},
		{Op: OpAbs, DT: i32, Dst: 8, A: 7},
		{Op: OpMin, DT: i32, Dst: 9, A: 8, B: 1},
		{Op: OpMax, DT: i32, Dst: 10, A: 9, B: 2},
		{Op: OpEq, DT: i32, Dst: 11, A: 1, B: 2},
		{Op: OpNe, DT: i32, Dst: 12, A: 1, B: 2},
		{Op: OpLt, DT: i32, Dst: 13, A: 1, B: 2},
		{Op: OpLe, DT: i32, Dst: 14, A: 1, B: 2},
		{Op: OpGt, DT: i32, Dst: 15, A: 1, B: 2},
		{Op: OpGe, DT: i32, Dst: 16, A: 1, B: 2},
		{Op: OpAnd, DT: b, Dst: 17, A: 11, B: 12},
		{Op: OpOr, DT: b, Dst: 18, A: 13, B: 14},
		{Op: OpXor, DT: b, Dst: 19, A: 15, B: 16},
		{Op: OpNot, DT: b, Dst: 20, A: 17},
		{Op: OpBitAnd, DT: i32, Dst: 21, A: 1, B: 2},
		{Op: OpBitOr, DT: i32, Dst: 22, A: 1, B: 2},
		{Op: OpBitXor, DT: i32, Dst: 23, A: 1, B: 2},
		{Op: OpShl, DT: i32, Dst: 24, A: 1, B: 2},
		{Op: OpShr, DT: i32, Dst: 25, A: 1, B: 2},
		{Op: OpTruth, DT: b, DT2: i32, Dst: 26, A: 1},
		{Op: OpSelect, DT: i32, Dst: 27, A: 26, B: 1, C: 2},
		{Op: OpCast, DT: f64, DT2: i32, Dst: 28, A: 1},
		{Op: OpSqrt, DT: f64, Dst: 29, A: 28},
		{Op: OpExp, DT: f64, Dst: 30, A: 29},
		{Op: OpLog, DT: f64, Dst: 31, A: 30},
		{Op: OpSin, DT: f64, Dst: 32, A: 31},
		{Op: OpCos, DT: f64, Dst: 33, A: 32},
		{Op: OpTan, DT: f64, Dst: 34, A: 33},
		{Op: OpFloor, DT: f64, Dst: 35, A: 34},
		{Op: OpCeil, DT: f64, Dst: 36, A: 35},
		{Op: OpRound, DT: f64, Dst: 37, A: 36},
		{Op: OpTrunc, DT: f64, Dst: 38, A: 37},
		{Op: OpLoadIn, DT: i32, Dst: 39, Imm: 1},
		{Op: OpStoreOut, A: 39, Imm: 2},
		{Op: OpLoadState, DT: f64, Dst: 40, Imm: 3},
		{Op: OpStoreState, A: 40, Imm: 4},
		{Op: OpJmp, Imm: 46},
		{Op: OpJmpIf, A: 17, Imm: 46},
		{Op: OpJmpIfNot, A: 18, Imm: 47},
		{Op: OpProbe, A: 3, B: 1},
		{Op: OpCondProbe, A: 4, B: 17},
		{Op: OpHalt},
	}
	return ins
}

// TestDisasmRoundTripsEveryOpcode is the satellite-4 invariant: the
// disassembly of every opcode renders all of its operands, and ParseDisasm
// reconstructs the exact instruction.
func TestDisasmRoundTripsEveryOpcode(t *testing.T) {
	ins := everyOpcode()
	// The table must actually cover the whole instruction set.
	present := make(map[Op]bool)
	for _, in := range ins {
		present[in.Op] = true
	}
	for op := OpNop; op <= OpHalt; op++ {
		if !present[op] {
			t.Fatalf("everyOpcode misses %s", op)
		}
	}

	text := Disasm(ins)
	back, err := ParseDisasm(text)
	if err != nil {
		t.Fatalf("ParseDisasm: %v\n%s", err, text)
	}
	if len(back) != len(ins) {
		t.Fatalf("parsed %d instructions, want %d", len(back), len(ins))
	}
	for i := range ins {
		if back[i] != ins[i] {
			t.Errorf("instruction %d (%s) did not round-trip:\nwant %+v\ngot  %+v\ntext %s",
				i, ins[i].Op, ins[i], back[i], strings.Split(text, "\n")[i])
		}
	}
}

// TestDisasmUnaryOmitsGarbageOperand guards the regression the rewrite
// fixed: unary instructions must not print the unused B register.
func TestDisasmUnaryOmitsGarbageOperand(t *testing.T) {
	text := Disasm([]Instr{{Op: OpMov, DT: model.Int32, Dst: 3, A: 1}})
	if strings.Contains(text, ",") {
		t.Errorf("unary mov prints a second operand: %s", text)
	}
	if !strings.Contains(text, "r3 = r1 (int32)") {
		t.Errorf("unexpected mov rendering: %s", text)
	}
}

func TestParseDisasmRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"0  frobnicate r1 = r0 (int32)",
		"0  add r1 = r0 (int32)",        // missing second operand
		"0  const r1 = zz (int32 0)",    // bad immediate
		"0  loadin r1 = out[0] (int32)", // wrong keyword
	} {
		if _, err := ParseDisasm(bad); err == nil {
			t.Errorf("ParseDisasm accepted %q", bad)
		}
	}
}
