package ir

import (
	"fmt"
	"strconv"
	"strings"

	"cftcg/internal/model"
)

// Disasm renders a function body as assembly text. Every operand an opcode
// uses is printed — register indexes, slot indexes, probe IDs, jump targets
// and both data types of a conversion — so the text parses back to the exact
// instruction sequence with ParseDisasm.
func Disasm(instrs []Instr) string {
	var w strings.Builder
	for pc, in := range instrs {
		fmt.Fprintf(&w, "%4d  %-9s", pc, in.Op.String())
		switch in.Op {
		case OpConst:
			fmt.Fprintf(&w, " r%d = %#x (%s %g)", in.Dst, in.Imm, in.DT, model.Decode(in.DT, in.Imm))
		case OpLoadIn:
			fmt.Fprintf(&w, " r%d = in[%d] (%s)", in.Dst, in.Imm, in.DT)
		case OpLoadState:
			fmt.Fprintf(&w, " r%d = state[%d] (%s)", in.Dst, in.Imm, in.DT)
		case OpStoreOut:
			fmt.Fprintf(&w, " out[%d] = r%d", in.Imm, in.A)
		case OpStoreState:
			fmt.Fprintf(&w, " state[%d] = r%d", in.Imm, in.A)
		case OpJmp:
			fmt.Fprintf(&w, " -> %d", in.Imm)
		case OpJmpIf, OpJmpIfNot:
			fmt.Fprintf(&w, " r%d -> %d", in.A, in.Imm)
		case OpProbe:
			fmt.Fprintf(&w, " dec=%d outcome=%d", in.A, in.B)
		case OpCondProbe:
			fmt.Fprintf(&w, " cond=%d r%d", in.A, in.B)
		case OpSelect:
			fmt.Fprintf(&w, " r%d = r%d ? r%d : r%d (%s)", in.Dst, in.A, in.B, in.C, in.DT)
		case OpCast, OpTruth:
			fmt.Fprintf(&w, " r%d = %s(r%d as %s)", in.Dst, in.DT, in.A, in.DT2)
		case OpHalt, OpNop:
		case OpMov, OpNeg, OpAbs, OpNot,
			OpSqrt, OpExp, OpLog, OpSin, OpCos, OpTan,
			OpFloor, OpCeil, OpRound, OpTrunc:
			fmt.Fprintf(&w, " r%d = r%d (%s)", in.Dst, in.A, in.DT)
		default: // binary arithmetic, comparison, logic, bit ops
			fmt.Fprintf(&w, " r%d = r%d, r%d (%s)", in.Dst, in.A, in.B, in.DT)
		}
		w.WriteByte('\n')
	}
	return w.String()
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		if name != "" {
			m[name] = Op(op)
		}
	}
	return m
}()

// ParseDisasm is the inverse of Disasm: it parses the rendered text back
// into the instruction sequence. Leading addresses are ignored (instructions
// are renumbered by position), so snippets can be hand-edited. Unused
// operand fields come back as zero, exactly as the assembler leaves them.
func ParseDisasm(text string) ([]Instr, error) {
	var out []Instr
	for ln, line := range strings.Split(text, "\n") {
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		// Leading "<pc>" is optional.
		if _, err := strconv.Atoi(f[0]); err == nil {
			f = f[1:]
			if len(f) == 0 {
				return nil, fmt.Errorf("ir: line %d: address without opcode", ln+1)
			}
		}
		op, ok := opByName[f[0]]
		if !ok {
			return nil, fmt.Errorf("ir: line %d: unknown opcode %q", ln+1, f[0])
		}
		in, err := parseOperands(op, f[1:])
		if err != nil {
			return nil, fmt.Errorf("ir: line %d: %s: %v", ln+1, f[0], err)
		}
		out = append(out, in)
	}
	return out, nil
}

func parseReg(tok string) (int32, error) {
	if !strings.HasPrefix(tok, "r") {
		return 0, fmt.Errorf("want register, got %q", tok)
	}
	n, err := strconv.ParseInt(tok[1:], 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	return int32(n), nil
}

func parseDT(tok string) (model.DType, error) {
	return model.ParseDType(strings.Trim(tok, "()"))
}

// parseIndexed splits "in[3]" into its keyword and index.
func parseIndexed(tok, kw string) (uint64, error) {
	rest, ok := strings.CutPrefix(tok, kw+"[")
	if !ok || !strings.HasSuffix(rest, "]") {
		return 0, fmt.Errorf("want %s[N], got %q", kw, tok)
	}
	return strconv.ParseUint(strings.TrimSuffix(rest, "]"), 10, 64)
}

func parseKeyed(tok, key string) (int64, error) {
	rest, ok := strings.CutPrefix(tok, key+"=")
	if !ok {
		return 0, fmt.Errorf("want %s=N, got %q", key, tok)
	}
	return strconv.ParseInt(rest, 10, 32)
}

func parseOperands(op Op, f []string) (Instr, error) {
	in := Instr{Op: op}
	need := func(n int) error {
		if len(f) < n {
			return fmt.Errorf("want %d operand tokens, got %d", n, len(f))
		}
		return nil
	}
	var err error
	fail := func(e error) (Instr, error) { return Instr{}, e }

	switch op {
	case OpHalt, OpNop:
		return in, nil

	case OpConst: // r1 = 0x2a (int8 42)
		if err = need(4); err != nil {
			return fail(err)
		}
		if in.Dst, err = parseReg(f[0]); err != nil {
			return fail(err)
		}
		if in.Imm, err = strconv.ParseUint(f[2], 0, 64); err != nil {
			return fail(fmt.Errorf("bad immediate %q", f[2]))
		}
		if in.DT, err = parseDT(f[3]); err != nil {
			return fail(err)
		}
		return in, nil

	case OpLoadIn, OpLoadState: // r1 = in[0] (int32)
		if err = need(4); err != nil {
			return fail(err)
		}
		if in.Dst, err = parseReg(f[0]); err != nil {
			return fail(err)
		}
		kw := "in"
		if op == OpLoadState {
			kw = "state"
		}
		if in.Imm, err = parseIndexed(f[2], kw); err != nil {
			return fail(err)
		}
		if in.DT, err = parseDT(f[3]); err != nil {
			return fail(err)
		}
		return in, nil

	case OpStoreOut, OpStoreState: // out[0] = r1
		if err = need(3); err != nil {
			return fail(err)
		}
		kw := "out"
		if op == OpStoreState {
			kw = "state"
		}
		if in.Imm, err = parseIndexed(f[0], kw); err != nil {
			return fail(err)
		}
		if in.A, err = parseReg(f[2]); err != nil {
			return fail(err)
		}
		return in, nil

	case OpJmp: // -> 5
		if err = need(2); err != nil {
			return fail(err)
		}
		if in.Imm, err = strconv.ParseUint(f[1], 10, 64); err != nil {
			return fail(fmt.Errorf("bad jump target %q", f[1]))
		}
		return in, nil

	case OpJmpIf, OpJmpIfNot: // r0 -> 5
		if err = need(3); err != nil {
			return fail(err)
		}
		if in.A, err = parseReg(f[0]); err != nil {
			return fail(err)
		}
		if in.Imm, err = strconv.ParseUint(f[2], 10, 64); err != nil {
			return fail(fmt.Errorf("bad jump target %q", f[2]))
		}
		return in, nil

	case OpProbe: // dec=1 outcome=0
		if err = need(2); err != nil {
			return fail(err)
		}
		d, err := parseKeyed(f[0], "dec")
		if err != nil {
			return fail(err)
		}
		o, err := parseKeyed(f[1], "outcome")
		if err != nil {
			return fail(err)
		}
		in.A, in.B = int32(d), int32(o)
		return in, nil

	case OpCondProbe: // cond=2 r5
		if err = need(2); err != nil {
			return fail(err)
		}
		c, err := parseKeyed(f[0], "cond")
		if err != nil {
			return fail(err)
		}
		in.A = int32(c)
		if in.B, err = parseReg(f[1]); err != nil {
			return fail(err)
		}
		return in, nil

	case OpSelect: // r3 = r0 ? r1 : r2 (int32)
		if err = need(8); err != nil {
			return fail(err)
		}
		if in.Dst, err = parseReg(f[0]); err != nil {
			return fail(err)
		}
		if in.A, err = parseReg(f[2]); err != nil {
			return fail(err)
		}
		if in.B, err = parseReg(f[4]); err != nil {
			return fail(err)
		}
		if in.C, err = parseReg(f[6]); err != nil {
			return fail(err)
		}
		if in.DT, err = parseDT(f[7]); err != nil {
			return fail(err)
		}
		return in, nil

	case OpCast, OpTruth: // r1 = double(r0 as int32)
		if err = need(5); err != nil {
			return fail(err)
		}
		if in.Dst, err = parseReg(f[0]); err != nil {
			return fail(err)
		}
		dt, src, ok := strings.Cut(f[2], "(")
		if !ok {
			return fail(fmt.Errorf("want dt(reg, got %q", f[2]))
		}
		if in.DT, err = model.ParseDType(dt); err != nil {
			return fail(err)
		}
		if in.A, err = parseReg(src); err != nil {
			return fail(err)
		}
		if in.DT2, err = parseDT(f[4]); err != nil {
			return fail(err)
		}
		return in, nil

	case OpMov, OpNeg, OpAbs, OpNot,
		OpSqrt, OpExp, OpLog, OpSin, OpCos, OpTan,
		OpFloor, OpCeil, OpRound, OpTrunc: // r1 = r0 (int32)
		if err = need(4); err != nil {
			return fail(err)
		}
		if in.Dst, err = parseReg(f[0]); err != nil {
			return fail(err)
		}
		if in.A, err = parseReg(f[2]); err != nil {
			return fail(err)
		}
		if in.DT, err = parseDT(f[3]); err != nil {
			return fail(err)
		}
		return in, nil

	default: // binary: r2 = r0, r1 (int32)
		if err = need(5); err != nil {
			return fail(err)
		}
		if in.Dst, err = parseReg(f[0]); err != nil {
			return fail(err)
		}
		if in.A, err = parseReg(strings.TrimSuffix(f[2], ",")); err != nil {
			return fail(err)
		}
		if in.B, err = parseReg(f[3]); err != nil {
			return fail(err)
		}
		if in.DT, err = parseDT(f[4]); err != nil {
			return fail(err)
		}
		return in, nil
	}
}
