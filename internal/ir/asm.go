package ir

import "cftcg/internal/model"

// Asm is a small assembler used by the code generator: it allocates
// registers, emits instructions, and patches forward jump targets. Multiple
// assemblers (the init and step functions) share one register counter so the
// machine allocates a single register file.
type Asm struct {
	Instrs []Instr
	regs   *int32
	// Loops records backward-jump addresses noted during lowering; the
	// compiler copies them into Program.LoopSites with the owning function
	// name filled in.
	Loops []LoopSite
}

// NewAsm returns an empty assembler drawing registers from the shared
// counter.
func NewAsm(regs *int32) *Asm { return &Asm{regs: regs} }

// Reg allocates a fresh register.
func (a *Asm) Reg() int32 {
	r := *a.regs
	*a.regs++
	return r
}

// PC returns the next instruction address.
func (a *Asm) PC() int { return len(a.Instrs) }

// Emit appends an instruction and returns its address.
func (a *Asm) Emit(in Instr) int {
	a.Instrs = append(a.Instrs, in)
	return len(a.Instrs) - 1
}

// Const emits dst = raw constant of type dt into a fresh register.
func (a *Asm) Const(dt model.DType, raw uint64) int32 {
	dst := a.Reg()
	a.Emit(Instr{Op: OpConst, DT: dt, Dst: dst, Imm: raw})
	return dst
}

// ConstVal emits a constant from a numeric value.
func (a *Asm) ConstVal(dt model.DType, v float64) int32 {
	return a.Const(dt, model.Encode(dt, v))
}

// MovTo emits dst = src into an existing register (mutable variables).
func (a *Asm) MovTo(dst, src int32) {
	a.Emit(Instr{Op: OpMov, Dst: dst, A: src})
}

// ConstTo emits a raw constant into an existing register.
func (a *Asm) ConstTo(dst int32, dt model.DType, raw uint64) {
	a.Emit(Instr{Op: OpConst, DT: dt, Dst: dst, Imm: raw})
}

// Bin emits dst = a op b in type dt, returning the fresh dst register.
func (a *Asm) Bin(op Op, dt model.DType, x, y int32) int32 {
	dst := a.Reg()
	a.Emit(Instr{Op: op, DT: dt, Dst: dst, A: x, B: y})
	return dst
}

// Un emits dst = op a in type dt.
func (a *Asm) Un(op Op, dt model.DType, x int32) int32 {
	dst := a.Reg()
	a.Emit(Instr{Op: op, DT: dt, Dst: dst, A: x})
	return dst
}

// Cast emits a conversion from type `from` to type `to`. Identity casts
// return the source register unchanged.
func (a *Asm) Cast(to, from model.DType, x int32) int32 {
	if to == from {
		return x
	}
	dst := a.Reg()
	a.Emit(Instr{Op: OpCast, DT: to, DT2: from, Dst: dst, A: x})
	return dst
}

// Truth emits dst = (x != 0) where x has type dt; bools pass through.
func (a *Asm) Truth(dt model.DType, x int32) int32 {
	if dt == model.Bool {
		return x
	}
	dst := a.Reg()
	a.Emit(Instr{Op: OpTruth, DT: model.Bool, DT2: dt, Dst: dst, A: x})
	return dst
}

// Select emits dst = cond ? x : y in type dt.
func (a *Asm) Select(dt model.DType, cond, x, y int32) int32 {
	dst := a.Reg()
	a.Emit(Instr{Op: OpSelect, DT: dt, Dst: dst, A: cond, B: x, C: y})
	return dst
}

// LoadState emits dst = state[slot] typed dt.
func (a *Asm) LoadState(dt model.DType, slot int) int32 {
	dst := a.Reg()
	a.Emit(Instr{Op: OpLoadState, DT: dt, Dst: dst, Imm: uint64(slot)})
	return dst
}

// StoreState emits state[slot] = x.
func (a *Asm) StoreState(slot int, x int32) {
	a.Emit(Instr{Op: OpStoreState, A: x, Imm: uint64(slot)})
}

// LoadIn emits dst = input[field] typed dt.
func (a *Asm) LoadIn(dt model.DType, field int) int32 {
	dst := a.Reg()
	a.Emit(Instr{Op: OpLoadIn, DT: dt, Dst: dst, Imm: uint64(field)})
	return dst
}

// StoreOut emits output[field] = x.
func (a *Asm) StoreOut(field int, x int32) {
	a.Emit(Instr{Op: OpStoreOut, A: x, Imm: uint64(field)})
}

// Probe emits a decision-outcome probe.
func (a *Asm) Probe(decID, outcome int) {
	a.Emit(Instr{Op: OpProbe, A: int32(decID), B: int32(outcome)})
}

// CondProbe emits a condition-value probe reading bool register x.
func (a *Asm) CondProbe(condID int, x int32) {
	a.Emit(Instr{Op: OpCondProbe, A: int32(condID), B: x})
}

// JmpIfNot emits a forward conditional jump with an unresolved target and
// returns the instruction address for later patching.
func (a *Asm) JmpIfNot(cond int32) int {
	return a.Emit(Instr{Op: OpJmpIfNot, A: cond})
}

// JmpIf emits a forward conditional jump (taken when cond != 0).
func (a *Asm) JmpIf(cond int32) int {
	return a.Emit(Instr{Op: OpJmpIf, A: cond})
}

// Jmp emits an unconditional forward jump with an unresolved target.
func (a *Asm) Jmp() int {
	return a.Emit(Instr{Op: OpJmp})
}

// NoteLoop records that the instruction at pc is a loop's backward jump,
// labelled with the source construct for hang triage.
func (a *Asm) NoteLoop(pc int, label string) {
	a.Loops = append(a.Loops, LoopSite{PC: pc, Label: label})
}

// Patch sets the jump at address pc to target the current PC.
func (a *Asm) Patch(pc int) {
	a.Instrs[pc].Imm = uint64(len(a.Instrs))
}

// PatchTo sets the jump at address pc to an explicit target.
func (a *Asm) PatchTo(pc, target int) {
	a.Instrs[pc].Imm = uint64(target)
}

// Halt terminates the function.
func (a *Asm) Halt() { a.Emit(Instr{Op: OpHalt}) }
