package sldv

import (
	"strings"
	"testing"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/model"
)

// shallow builds a purely combinational model that interval subdivision
// should cover completely and quickly.
func shallow(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("Shallow")
	u := b.Inport("u", model.Int32)
	v := b.Inport("v", model.Int32)
	hot := b.And(b.Rel(">", u, b.ConstT(model.Int32, 100)), b.Rel("<", v, b.ConstT(model.Int32, -5)))
	sat := b.Saturation(u, -50, 50)
	out := b.Switch(hot, sat, b.ConstT(model.Int32, 0))
	b.Outport("y", model.Int32, out)
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// deep builds a model whose interesting branch requires a long input
// sequence (a counter that must reach 12 consecutive enables).
func deep(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("Deep")
	en := b.Inport("en", model.Int8)
	ml := b.Matlab("ctr", `
input  int8 en;
output int32 alarm = 0;
state  int32 run = 0;
if (en ~= 0) { run = run + 1; } else { run = 0; }
if (run >= 12) { alarm = 1; }
`, en)
	b.Outport("alarm", model.Int32, ml.Out(0))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestSolverCoversShallowLogic(t *testing.T) {
	res := Run(shallow(t), Options{MaxDepth: 2, NodeBudget: 50000})
	if res.Report.Decision() < 100 {
		t.Errorf("interval solver should fully cover combinational logic: %.1f%% (uncovered %v)",
			res.Report.Decision(), res.Report.UncoveredDecisions)
	}
	if len(res.Suite.Cases) == 0 {
		t.Error("no witnesses emitted")
	}
}

func TestSolverDepthLimitedOnDeepState(t *testing.T) {
	// With MaxDepth 5 the run>=12 branch is unreachable: the solver must
	// fail to cover it — the paper's shallow-logic limitation.
	res := Run(deep(t), Options{MaxDepth: 5, NodeBudget: 20000})
	if res.Report.Decision() >= 100 {
		t.Errorf("depth-limited solver should miss the deep branch, got %.1f%%", res.Report.Decision())
	}
	found := false
	for _, lbl := range res.Report.UncoveredDecisions {
		if lbl != "" {
			found = true
		}
	}
	if !found {
		t.Error("expected at least one uncovered decision label")
	}
}

func TestSolverMemoryGrowsWithDepth(t *testing.T) {
	c := deep(t)
	shallowRes := Run(c, Options{MaxDepth: 1, NodeBudget: 4000})
	deepRes := Run(c, Options{MaxDepth: 8, NodeBudget: 4000})
	if deepRes.PeakMemory <= shallowRes.PeakMemory {
		t.Errorf("frontier memory should grow with unrolling depth: depth1=%d depth8=%d",
			shallowRes.PeakMemory, deepRes.PeakMemory)
	}
}

func TestObjectiveDepths(t *testing.T) {
	res := Run(shallow(t), Options{MaxDepth: 2, NodeBudget: 50000})
	c := shallow(t)
	foundShallow := false
	for _, d := range res.ObjectiveDepth {
		if d == 1 {
			foundShallow = true
		}
		if d > 2 {
			t.Fatalf("objective depth %d exceeds the analysed bound", d)
		}
	}
	if !foundShallow {
		t.Error("combinational objectives should resolve at depth 1")
	}
	out := res.FormatObjectives(c.Plan)
	if !strings.Contains(out, "depth 1") {
		t.Errorf("objectives table missing depth annotations:\n%s", out)
	}

	// The deep model's run>=12 objective must stay undecided.
	deepRes := Run(deep(t), Options{MaxDepth: 4, NodeBudget: 10000})
	dc := deep(t)
	undecided := strings.Count(deepRes.FormatObjectives(dc.Plan), "undecided")
	if undecided == 0 {
		t.Error("deep objectives should stay undecided within the bound")
	}
}

func TestSolverRespectsWallBudget(t *testing.T) {
	c := deep(t)
	start := time.Now()
	Run(c, Options{MaxDepth: 12, NodeBudget: 1 << 40, Budget: 50 * time.Millisecond})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("solver ignored wall budget: ran %v", elapsed)
	}
}

// mathFloor backs the solver's integer-midpoint bisection; it must floor
// toward negative infinity, not truncate toward zero.
func TestMathFloorNegative(t *testing.T) {
	if mathFloor(-0.5) != -1 {
		t.Error("mathFloor(-0.5) must be -1")
	}
	if mathFloor(2.9) != 2 {
		t.Error("mathFloor(2.9) must be 2")
	}
	if mathFloor(-3) != -3 {
		t.Error("mathFloor(-3) must be -3")
	}
}
