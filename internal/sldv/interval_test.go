package sldv

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// Property: interval arithmetic is sound — for random intervals and random
// points inside them, the concrete result lies inside the abstract result.
func TestIntervalArithmeticSoundness(t *testing.T) {
	ops := []struct {
		name string
		abs  func(a, b itv) itv
		con  func(x, y float64) float64
	}{
		{"add", add, func(x, y float64) float64 { return x + y }},
		{"sub", sub, func(x, y float64) float64 { return x - y }},
		{"mul", mul, func(x, y float64) float64 { return x * y }},
		{"div", div, func(x, y float64) float64 {
			if y == 0 {
				return 0
			}
			return x / y
		}},
		{"min", minI, math.Min},
		{"max", maxI, math.Max},
	}
	rng := rand.New(rand.NewSource(2))
	mk := func() (itv, float64) {
		a := rng.NormFloat64() * 100
		b := a + rng.Float64()*100
		x := a + rng.Float64()*(b-a)
		return itv{a, b}, x
	}
	for _, op := range ops {
		for trial := 0; trial < 2000; trial++ {
			ia, x := mk()
			ib, y := mk()
			res := op.abs(ia, ib)
			v := op.con(x, y)
			if v < res.lo-1e-9 || v > res.hi+1e-9 {
				t.Fatalf("%s unsound: %v op %v = [%v,%v] but %v op %v = %v",
					op.name, ia, ib, res.lo, res.hi, x, y, v)
			}
		}
	}
}

// Property: comparison three-valued results are sound — if the abstract
// verdict is definite, every concrete pair must agree.
func TestCompareSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	relOps := []struct {
		op  ir.Op
		ref func(x, y float64) bool
	}{
		{ir.OpLt, func(x, y float64) bool { return x < y }},
		{ir.OpLe, func(x, y float64) bool { return x <= y }},
		{ir.OpGt, func(x, y float64) bool { return x > y }},
		{ir.OpGe, func(x, y float64) bool { return x >= y }},
		{ir.OpEq, func(x, y float64) bool { return x == y }},
		{ir.OpNe, func(x, y float64) bool { return x != y }},
	}
	for trial := 0; trial < 3000; trial++ {
		lo1 := float64(rng.Intn(21) - 10)
		hi1 := lo1 + float64(rng.Intn(5))
		lo2 := float64(rng.Intn(21) - 10)
		hi2 := lo2 + float64(rng.Intn(5))
		ia, ib := itv{lo1, hi1}, itv{lo2, hi2}
		for _, rel := range relOps {
			verdict := cmp(rel.op, ia, ib)
			if verdict == triMixed {
				continue
			}
			// Sample concrete integer points.
			for x := lo1; x <= hi1; x++ {
				for y := lo2; y <= hi2; y++ {
					got := rel.ref(x, y)
					if verdict == triTrue && !got {
						t.Fatalf("%v: [%v,%v] vs [%v,%v] claimed always-true but %v,%v is false",
							rel.op, lo1, hi1, lo2, hi2, x, y)
					}
					if verdict == triFalse && got {
						t.Fatalf("%v: [%v,%v] vs [%v,%v] claimed always-false but %v,%v is true",
							rel.op, lo1, hi1, lo2, hi2, x, y)
					}
				}
			}
		}
	}
}

func TestAbsNegSoundness(t *testing.T) {
	prop := func(a, w, frac float64) bool {
		lo := math.Mod(a, 1000)
		width := math.Abs(math.Mod(w, 100))
		x := lo + math.Abs(math.Mod(frac, 1))*width
		ia := itv{lo, lo + width}
		r1 := absI(ia)
		if v := math.Abs(x); v < r1.lo-1e-9 || v > r1.hi+1e-9 {
			return false
		}
		r2 := negI(ia)
		if v := -x; v < r2.lo-1e-9 || v > r2.hi+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTruthTri(t *testing.T) {
	if point(0).truth() != triFalse {
		t.Error("point 0 must be definitely false")
	}
	if point(3).truth() != triTrue {
		t.Error("point 3 must be definitely true")
	}
	if span(-1, 1).truth() != triMixed {
		t.Error("interval through 0 must be mixed")
	}
	if span(1, 5).truth() != triTrue {
		t.Error("positive interval must be true")
	}
}

func TestCastWidensOnOverflow(t *testing.T) {
	// int32 value range cast to int8: wraps, so must widen to full range.
	r := castI(model.Int8, model.Int32, span(0, 1000))
	full := typeRange(model.Int8)
	if r.lo != full.lo || r.hi != full.hi {
		t.Errorf("overflowing cast must widen: got [%v,%v]", r.lo, r.hi)
	}
	// In-range cast stays tight.
	r = castI(model.Int8, model.Int32, span(-5, 5))
	if r.lo != -5 || r.hi != 5 {
		t.Errorf("in-range cast must stay tight: [%v,%v]", r.lo, r.hi)
	}
	// float -> int clamps.
	r = castI(model.UInt8, model.Float64, span(-10, 300))
	if r.lo != 0 || r.hi != 255 {
		t.Errorf("float->int clamp: [%v,%v]", r.lo, r.hi)
	}
}

func TestMathFnMonotone(t *testing.T) {
	r := mathFn(ir.OpSqrt, span(4, 9))
	if r.lo != 2 || r.hi != 3 {
		t.Errorf("sqrt interval: [%v,%v]", r.lo, r.hi)
	}
	r = mathFn(ir.OpSqrt, span(-4, 9))
	if r.lo != 0 || r.hi != 3 {
		t.Errorf("sqrt with negative domain: [%v,%v]", r.lo, r.hi)
	}
	r = mathFn(ir.OpSin, span(0, 10))
	if r.lo != -1 || r.hi != 1 {
		t.Errorf("sin wide interval: [%v,%v]", r.lo, r.hi)
	}
	r = mathFn(ir.OpFloor, span(1.5, 2.7))
	if r.lo != 1 || r.hi != 2 {
		t.Errorf("floor: [%v,%v]", r.lo, r.hi)
	}
}

func TestMathFloorNegative(t *testing.T) {
	if mathFloor(-0.5) != -1 {
		t.Error("mathFloor(-0.5) must be -1")
	}
	if mathFloor(2.9) != 2 {
		t.Error("mathFloor(2.9) must be 2")
	}
	if mathFloor(-3) != -3 {
		t.Error("mathFloor(-3) must be -3")
	}
}
