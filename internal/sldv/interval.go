// Package sldv is the constraint-solving baseline of the evaluation: a
// bounded-model-checking-style test generator in the spirit of Simulink
// Design Verifier. It explores the model's bounded-depth input space by
// interval constraint propagation: abstract execution of the compiled IR
// over input boxes, DFS bisection of boxes whose path is not yet determined,
// and concrete witness execution once a box's behaviour is proved uniform.
//
// The method is exact on shallow combinational logic (boxes become
// determinate after a few splits) and blows up combinatorially with state
// depth — the number of box dimensions grows linearly with the unrolling
// depth and the search frontier grows exponentially, reproducing the state
// space explosion and memory growth the paper reports for SLDV (§1, §4).
package sldv

import (
	"math"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// itv is a closed interval over the reals. Every supported signal value is
// exactly representable in float64, so [lo, hi] bounds are exact for
// integers and conservative for floats.
type itv struct{ lo, hi float64 }

func point(v float64) itv     { return itv{v, v} }
func span(lo, hi float64) itv { return itv{lo, hi} }
func (a itv) isPoint() bool   { return a.lo == a.hi }
func (a itv) width() float64  { return a.hi - a.lo }
func (a itv) mid() float64    { return a.lo + (a.hi-a.lo)/2 }
func (a itv) contains0() bool { return a.lo <= 0 && a.hi >= 0 }
func (a itv) hull(b itv) itv  { return itv{math.Min(a.lo, b.lo), math.Max(a.hi, b.hi)} }

// typeRange returns the full value range of a data type (floats bounded to
// the solver's working range — SLDV likewise solves over bounded reals).
func typeRange(dt model.DType) itv {
	if dt.IsFloat() {
		return span(-1e9, 1e9)
	}
	return span(float64(dt.MinInt()), float64(dt.MaxInt()))
}

// tri is three-valued truth for abstract branch conditions.
type tri uint8

const (
	triFalse tri = iota
	triTrue
	triMixed
)

func triOf(canFalse, canTrue bool) tri {
	switch {
	case canTrue && canFalse:
		return triMixed
	case canTrue:
		return triTrue
	default:
		return triFalse
	}
}

// truth interprets an interval as a logical condition.
func (a itv) truth() tri {
	canTrue := a.lo != 0 || a.hi != 0
	canFalse := a.contains0()
	return triOf(canFalse, canTrue)
}

func add(a, b itv) itv { return itv{a.lo + b.lo, a.hi + b.hi} }
func sub(a, b itv) itv { return itv{a.lo - b.hi, a.hi - b.lo} }

func mul(a, b itv) itv {
	p1, p2, p3, p4 := a.lo*b.lo, a.lo*b.hi, a.hi*b.lo, a.hi*b.hi
	return itv{min4(p1, p2, p3, p4), max4(p1, p2, p3, p4)}
}

// div is conservative: a divisor interval containing zero yields the hull of
// the quotient extremes and the total-definition value 0.
func div(a, b itv) itv {
	if b.contains0() {
		if b.isPoint() { // exactly zero: total definition x/0 = 0
			return point(0)
		}
		// Mixed-sign divisor: quotient can be arbitrarily large.
		return span(math.Inf(-1), math.Inf(1))
	}
	p1, p2, p3, p4 := a.lo/b.lo, a.lo/b.hi, a.hi/b.lo, a.hi/b.hi
	return itv{min4(p1, p2, p3, p4), max4(p1, p2, p3, p4)}
}

func minI(a, b itv) itv { return itv{math.Min(a.lo, b.lo), math.Min(a.hi, b.hi)} }
func maxI(a, b itv) itv { return itv{math.Max(a.lo, b.lo), math.Max(a.hi, b.hi)} }

func negI(a itv) itv { return itv{-a.hi, -a.lo} }

func absI(a itv) itv {
	if a.lo >= 0 {
		return a
	}
	if a.hi <= 0 {
		return itv{-a.hi, -a.lo}
	}
	return itv{0, math.Max(-a.lo, a.hi)}
}

// cmp evaluates a relational op over intervals three-valued.
func cmp(op ir.Op, a, b itv) tri {
	switch op {
	case ir.OpLt:
		return triOf(a.hi >= b.lo, a.lo < b.hi) // canFalse: exists x>=y; canTrue: exists x<y
	case ir.OpLe:
		return triOf(a.hi > b.lo, a.lo <= b.hi)
	case ir.OpGt:
		return triOf(a.lo <= b.hi, a.hi > b.lo)
	case ir.OpGe:
		return triOf(a.lo < b.hi, a.hi >= b.lo)
	case ir.OpEq:
		if a.isPoint() && b.isPoint() {
			return triOf(a.lo != b.lo, a.lo == b.lo)
		}
		overlap := a.hi >= b.lo && b.hi >= a.lo
		return triOf(!(a.isPoint() && b.isPoint() && a.lo == b.lo), overlap)
	case ir.OpNe:
		t := cmp(ir.OpEq, a, b)
		switch t {
		case triTrue:
			return triFalse
		case triFalse:
			return triTrue
		}
		return triMixed
	}
	return triMixed
}

// triToItv embeds a three-valued bool into an interval register.
func triToItv(t tri) itv {
	switch t {
	case triTrue:
		return point(1)
	case triFalse:
		return point(0)
	}
	return span(0, 1)
}

// castI converts an interval between types: clamping semantics for
// float->int is conservative; integer narrowing that can wrap widens to the
// full target range (sound for two's-complement wrap).
func castI(to, from model.DType, a itv) itv {
	if to.IsFloat() {
		return a
	}
	lo := math.Trunc(a.lo)
	hi := math.Trunc(a.hi)
	if from.IsFloat() {
		// Encode clamps to the target bounds.
		r := typeRange(to)
		return itv{clamp(lo, r), clamp(hi, r)}
	}
	r := typeRange(to)
	if lo < r.lo || hi > r.hi {
		return r // may wrap: widen
	}
	return itv{lo, hi}
}

func clamp(v float64, r itv) float64 {
	if v < r.lo {
		return r.lo
	}
	if v > r.hi {
		return r.hi
	}
	return v
}

// wrapArith re-bounds an integer arithmetic result: overflow widens to the
// full type range (wrap is sound but imprecise).
func wrapArith(dt model.DType, a itv) itv {
	if dt.IsFloat() {
		return a
	}
	r := typeRange(dt)
	if a.lo < r.lo || a.hi > r.hi {
		return r
	}
	return itv{math.Trunc(a.lo), math.Trunc(a.hi)}
}

// mathFn evaluates the unary math functions over intervals (monotone
// functions exactly; trigonometric functions conservatively as [-1, 1]).
func mathFn(op ir.Op, a itv) itv {
	switch op {
	case ir.OpSqrt:
		lo, hi := a.lo, a.hi
		if lo < 0 {
			lo = 0
		}
		if hi < 0 {
			hi = 0
		}
		return itv{math.Sqrt(lo), math.Sqrt(hi)}
	case ir.OpExp:
		return itv{math.Exp(a.lo), math.Exp(a.hi)}
	case ir.OpLog:
		// log is defined as 0 for non-positive inputs.
		if a.hi <= 0 {
			return point(0)
		}
		hi := math.Log(a.hi)
		if a.lo <= 0 {
			// Domain touches (0, eps]: log unbounded below; 0 included.
			return itv{math.Inf(-1), math.Max(hi, 0)}
		}
		return itv{math.Log(a.lo), hi}
	case ir.OpSin, ir.OpCos:
		if a.isPoint() {
			if op == ir.OpSin {
				return point(math.Sin(a.lo))
			}
			return point(math.Cos(a.lo))
		}
		return span(-1, 1)
	case ir.OpTan:
		if a.isPoint() {
			return point(math.Tan(a.lo))
		}
		return span(math.Inf(-1), math.Inf(1))
	case ir.OpFloor:
		return itv{math.Floor(a.lo), math.Floor(a.hi)}
	case ir.OpCeil:
		return itv{math.Ceil(a.lo), math.Ceil(a.hi)}
	case ir.OpRound:
		return itv{math.Round(a.lo), math.Round(a.hi)}
	case ir.OpTrunc:
		return itv{math.Trunc(a.lo), math.Trunc(a.hi)}
	}
	return a
}

func min4(a, b, c, d float64) float64 { return math.Min(math.Min(a, b), math.Min(c, d)) }
func max4(a, b, c, d float64) float64 { return math.Max(math.Max(a, b), math.Max(c, d)) }
