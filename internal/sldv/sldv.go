package sldv

import (
	"fmt"
	"strings"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/interval"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/testcase"
	"cftcg/internal/vm"
)

// itv aliases the shared abstract domain; box dimensions and abstract
// registers are plain intervals.
type itv = interval.Interval

// Options configures the bounded analysis.
type Options struct {
	// MaxDepth is the loop-unrolling limit: the longest input sequence the
	// solver reasons about. SLDV's bounded analysis has the same knob; the
	// paper attributes its shallow coverage to exactly this limit.
	MaxDepth int
	// NodeBudget caps the total number of DFS boxes explored.
	NodeBudget int64
	// Budget is the wall-clock cap (0 = none).
	Budget time.Duration
	// MemoryLimitBytes aborts the analysis when the simulated solver
	// frontier exceeds this footprint (the paper observed SLDV exceeding
	// 12 GB on SolarPV). 0 = unlimited.
	MemoryLimitBytes int64
}

// Result reports the analysis outcome.
type Result struct {
	Report   coverage.Report
	Suite    *testcase.Suite
	Timeline []coverage.TimePoint

	Nodes       int64 // DFS boxes processed
	Witnesses   int64 // concrete executions
	PeakMemory  int64 // bytes: peak frontier footprint
	DepthsDone  int   // unroll depths fully explored within budget
	BudgetSpent time.Duration

	// ObjectiveDepth records, per branch slot, the unrolling depth at
	// which a witness first covered it (-1 = undecided within the bound)
	// — the per-objective status table SLDV reports.
	ObjectiveDepth []int
}

// FormatObjectives renders the per-decision objective table: how deep the
// bounded analysis had to unroll to reach each outcome, and which outcomes
// stayed undecided within the bound.
func (r *Result) FormatObjectives(plan *coverage.Plan) string {
	var w strings.Builder
	fmt.Fprintf(&w, "objectives for %s (max depth analysed: %d)\n", plan.ModelName, r.DepthsDone)
	for i := range plan.Decisions {
		d := &plan.Decisions[i]
		fmt.Fprintf(&w, "  %-60s", d.Label)
		for k := 0; k < d.NumOutcomes; k++ {
			depth := r.ObjectiveDepth[d.OutcomeBase+k]
			if depth < 0 {
				fmt.Fprintf(&w, " [%d:undecided]", k)
			} else {
				fmt.Fprintf(&w, " [%d:depth %d]", k, depth)
			}
		}
		w.WriteByte('\n')
	}
	return w.String()
}

// Run executes the constraint-solving campaign on a compiled model.
func Run(c *codegen.Compiled, opts Options) *Result {
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = 5
	}
	if opts.NodeBudget <= 0 {
		opts.NodeBudget = 200000
	}
	s := &solver{
		c:     c,
		opts:  opts,
		rec:   coverage.NewRecorder(c.Plan),
		prog:  c.Prog,
		start: time.Now(),
		prg:   coverage.NewProgress(c.Plan),
	}
	s.machine = vm.New(c.Prog, s.rec)
	s.objDepth = make([]int, c.Plan.NumBranches)
	for i := range s.objDepth {
		s.objDepth[i] = -1
	}
	s.run()
	return &Result{
		Report: s.rec.Report(),
		Suite: &testcase.Suite{
			Model:  c.Prog.Name,
			Layout: model.Layout{Fields: c.Prog.In, TupleSize: c.Prog.TupleSize()},
			Cases:  s.cases,
		},
		Timeline:       s.timeline,
		Nodes:          s.nodes,
		Witnesses:      s.witnesses,
		PeakMemory:     s.peakMem,
		DepthsDone:     s.depthsDone,
		BudgetSpent:    time.Since(s.start),
		ObjectiveDepth: s.objDepth,
	}
}

type solver struct {
	c       *codegen.Compiled
	opts    Options
	prog    *ir.Program
	rec     *coverage.Recorder
	machine *vm.Machine
	prg     *coverage.Progress

	initState []float64 // concrete initial state as points

	nodes      int64
	witnesses  int64
	peakMem    int64
	depthsDone int
	curDepth   int
	objDepth   []int
	aborted    bool

	start    time.Time
	timeline []coverage.TimePoint
	cases    []testcase.Case
}

// box is one region of the bounded input space: depth * numFields interval
// dimensions, laid out step-major.
type box struct {
	dims []itv
}

func (s *solver) run() {
	// Concrete initial state (the generated init function is deterministic).
	s.machine.Init()
	s.initState = make([]float64, s.prog.NumState)
	for i, raw := range s.machine.State() {
		// State slots are typed by their initializing stores; decode via
		// the declared names is unnecessary — interpret through the step
		// function's loads. We keep raw->float by treating the slot as the
		// type its LoadState uses (found below, defaulting to double).
		s.initState[i] = decodeStateSlot(s.prog, i, raw)
	}
	s.samplePoint()

	nf := len(s.prog.In)
	perDepth := s.opts.NodeBudget / int64(s.opts.MaxDepth)
	if perDepth < 1 {
		perDepth = 1
	}
	for depth := 1; depth <= s.opts.MaxDepth && !s.aborted; depth++ {
		s.curDepth = depth
		root := box{dims: make([]itv, depth*nf)}
		for st := 0; st < depth; st++ {
			for f := 0; f < nf; f++ {
				root.dims[st*nf+f] = interval.TypeRange(s.prog.In[f].Type)
			}
		}
		// Each unrolling depth gets its share of the wall budget so deep
		// state is analyzed even when a shallow depth does not converge.
		var deadline time.Time
		if s.opts.Budget > 0 {
			deadline = s.start.Add(s.opts.Budget * time.Duration(depth) / time.Duration(s.opts.MaxDepth))
		}
		s.explore(root, perDepth, deadline)
		if !s.aborted {
			s.depthsDone = depth
		}
	}
	s.samplePoint()
}

// explore runs the DFS box subdivision for one unrolling depth.
func (s *solver) explore(root box, budget int64, deadline time.Time) {
	stack := []box{root}
	var used int64
	for len(stack) > 0 {
		if used >= budget {
			return
		}
		if !deadline.IsZero() && used%64 == 0 {
			now := time.Now()
			if now.After(deadline) {
				if s.opts.Budget > 0 && time.Since(s.start) >= s.opts.Budget {
					s.aborted = true
				}
				return
			}
		}
		// Frontier footprint: every pending box retains its dimensions.
		mem := int64(len(stack)) * int64(len(root.dims)) * 16
		if mem > s.peakMem {
			s.peakMem = mem
		}
		if s.opts.MemoryLimitBytes > 0 && mem > s.opts.MemoryLimitBytes {
			s.aborted = true // solver out of memory
			return
		}

		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		used++
		s.nodes++

		det, failTaint := s.determinate(b)
		if det {
			// Uniform behaviour across the whole box: one witness covers
			// it; no point subdividing (this pruning is the solving).
			s.witness(b)
			continue
		}
		// Counterexample sampling: like SLDV emitting test cases during
		// analysis, periodically execute the midpoint of an undecided box.
		if s.nodes%8 == 0 {
			s.witness(b)
		}
		// Bisect the widest dimension among the inputs that actually
		// influence the undecided branch (dependency-directed splitting —
		// without it the search wastes its budget refining irrelevant
		// inputs and the blow-up hits even combinational logic).
		wd, w := -1, 0.0
		for i, d := range b.dims {
			if failTaint&(1<<uint(i&63)) == 0 && failTaint != ^uint64(0) {
				continue
			}
			if d.Width() > w {
				w = d.Width()
				wd = i
			}
		}
		if w < 1 {
			// Influencing inputs are already points (hull widening from
			// earlier steps): fall back to any splittable dimension.
			for i, d := range b.dims {
				if d.Width() > w {
					w = d.Width()
					wd = i
				}
			}
		}
		if wd < 0 || w < 1 {
			s.witness(b)
			continue
		}
		mid := b.dims[wd].Mid()
		dt := s.prog.In[wd%len(s.prog.In)].Type
		if !dt.IsFloat() {
			// Floor (not truncate): guarantees lo <= mid < hi so both
			// halves strictly shrink.
			mid = mathFloor(mid)
		}
		left := box{dims: append([]itv(nil), b.dims...)}
		right := box{dims: append([]itv(nil), b.dims...)}
		left.dims[wd] = itv{Lo: b.dims[wd].Lo, Hi: mid}
		if dt.IsFloat() {
			right.dims[wd] = itv{Lo: mid, Hi: b.dims[wd].Hi}
		} else {
			right.dims[wd] = itv{Lo: mid + 1, Hi: b.dims[wd].Hi}
			if right.dims[wd].Lo > right.dims[wd].Hi {
				right.dims[wd] = itv{Lo: b.dims[wd].Hi, Hi: b.dims[wd].Hi}
			}
		}
		stack = append(stack, right, left)
	}
}

// witness concretely executes the box midpoint through the instrumented
// program, emitting a test case when it reaches new model coverage.
func (s *solver) witness(b box) {
	nf := len(s.prog.In)
	depth := len(b.dims) / nf
	tupleSize := s.prog.TupleSize()
	data := make([]byte, depth*tupleSize)
	in := make([]uint64, nf)

	s.machine.Init()
	newBranches := 0
	for st := 0; st < depth; st++ {
		for f := 0; f < nf; f++ {
			dt := s.prog.In[f].Type
			raw := model.Encode(dt, b.dims[st*nf+f].Mid())
			in[f] = raw
			model.PutRaw(dt, data[st*tupleSize+s.prog.In[f].Offset:], raw)
		}
		s.rec.BeginStep()
		s.machine.Step(in)
		for b, v := range s.rec.Curr {
			if v != 0 && s.objDepth[b] < 0 {
				s.objDepth[b] = s.curDepth
			}
		}
		newBranches += s.prg.Absorb(s.rec.Curr)
	}
	s.witnesses++
	if newBranches > 0 {
		s.cases = append(s.cases, testcase.Case{
			Data:        data,
			Found:       time.Since(s.start),
			NewBranches: newBranches,
		})
		s.samplePoint()
	}
}

// determinate abstractly executes `depth` steps over the box and reports
// whether every branch along the way is decided for the entire box. When
// not, failTaint is the set of input dimensions (as a bitmask, bit i for
// dim i) that influence the undecided branch condition.
func (s *solver) determinate(b box) (ok bool, failTaint uint64) {
	nf := len(s.prog.In)
	depth := len(b.dims) / nf
	regs := make([]itv, s.prog.NumRegs)
	state := make([]itv, s.prog.NumState)
	taint := make([]uint64, s.prog.NumRegs)
	stTaint := make([]uint64, s.prog.NumState)
	for i, v := range s.initState {
		state[i] = interval.Point(v)
	}
	wide := len(b.dims) > 64 // taint bits would alias: disable direction
	for st := 0; st < depth; st++ {
		ok, ft := s.absStep(regs, state, taint, stTaint, b.dims[st*nf:(st+1)*nf], st*nf)
		if !ok {
			if wide {
				return false, ^uint64(0)
			}
			return false, ft
		}
	}
	return true, 0
}

// absStep abstractly executes the step function once, propagating input
// taint alongside intervals. Returns ok=false (with the condition's taint)
// at the first branch whose condition is mixed over the box.
func (s *solver) absStep(regs, state []itv, taint, stTaint []uint64, in []itv, dimBase int) (bool, uint64) {
	code := s.prog.Step
	// Backward jumps (script while loops) bound abstract execution by an
	// instruction budget; exceeding it conservatively reports "mixed".
	budget := 64*len(code) + 4096
	for pc := 0; pc < len(code); {
		budget--
		if budget < 0 {
			return false, ^uint64(0)
		}
		ins := &code[pc]
		switch ins.Op {
		case ir.OpNop, ir.OpProbe, ir.OpCondProbe, ir.OpStoreOut:
			// probes and outputs don't constrain the search
		case ir.OpConst:
			regs[ins.Dst] = interval.Point(model.Decode(ins.DT, ins.Imm))
			taint[ins.Dst] = 0
		case ir.OpMov:
			regs[ins.Dst] = regs[ins.A]
			taint[ins.Dst] = taint[ins.A]
		case ir.OpAdd:
			regs[ins.Dst] = interval.WrapArith(ins.DT, interval.Add(regs[ins.A], regs[ins.B]))
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpSub:
			regs[ins.Dst] = interval.WrapArith(ins.DT, interval.Sub(regs[ins.A], regs[ins.B]))
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpMul:
			regs[ins.Dst] = interval.WrapArith(ins.DT, interval.Mul(regs[ins.A], regs[ins.B]))
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpDiv:
			regs[ins.Dst] = interval.WrapArith(ins.DT, interval.Div(regs[ins.A], regs[ins.B]))
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpMin:
			regs[ins.Dst] = interval.Min(regs[ins.A], regs[ins.B])
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpMax:
			regs[ins.Dst] = interval.Max(regs[ins.A], regs[ins.B])
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpNeg:
			regs[ins.Dst] = interval.WrapArith(ins.DT, interval.Neg(regs[ins.A]))
			taint[ins.Dst] = taint[ins.A]
		case ir.OpAbs:
			regs[ins.Dst] = interval.Abs(regs[ins.A])
			taint[ins.Dst] = taint[ins.A]
		case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
			regs[ins.Dst] = interval.TriToItv(interval.Cmp(ins.Op, regs[ins.A], regs[ins.B]))
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpAnd:
			a, bb := regs[ins.A], regs[ins.B]
			regs[ins.Dst] = itv{Lo: a.Lo * bb.Lo, Hi: a.Hi * bb.Hi}
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpOr:
			a, bb := regs[ins.A], regs[ins.B]
			regs[ins.Dst] = itv{Lo: maxf(a.Lo, bb.Lo), Hi: maxf(a.Hi, bb.Hi)}
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpXor:
			a, bb := regs[ins.A], regs[ins.B]
			if a.IsPoint() && bb.IsPoint() {
				if (a.Lo != 0) != (bb.Lo != 0) {
					regs[ins.Dst] = interval.Point(1)
				} else {
					regs[ins.Dst] = interval.Point(0)
				}
			} else {
				regs[ins.Dst] = interval.Span(0, 1)
			}
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpNot:
			a := regs[ins.A]
			regs[ins.Dst] = itv{Lo: 1 - a.Hi, Hi: 1 - a.Lo}
			taint[ins.Dst] = taint[ins.A]
		case ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr:
			a, bb := regs[ins.A], regs[ins.B]
			if a.IsPoint() && bb.IsPoint() {
				regs[ins.Dst] = interval.Point(concreteBitOp(ins.Op, ins.DT, a.Lo, bb.Lo))
			} else {
				regs[ins.Dst] = interval.TypeRange(ins.DT)
			}
			taint[ins.Dst] = taint[ins.A] | taint[ins.B]
		case ir.OpTruth:
			regs[ins.Dst] = interval.TriToItv(regs[ins.A].Truth())
			taint[ins.Dst] = taint[ins.A]
		case ir.OpSelect:
			switch regs[ins.A].Truth() {
			case interval.TriTrue:
				regs[ins.Dst] = regs[ins.B]
				taint[ins.Dst] = taint[ins.A] | taint[ins.B]
			case interval.TriFalse:
				regs[ins.Dst] = regs[ins.C]
				taint[ins.Dst] = taint[ins.A] | taint[ins.C]
			default:
				regs[ins.Dst] = regs[ins.B].Hull(regs[ins.C])
				taint[ins.Dst] = taint[ins.A] | taint[ins.B] | taint[ins.C]
			}
		case ir.OpCast:
			regs[ins.Dst] = interval.Cast(ins.DT, ins.DT2, regs[ins.A])
			taint[ins.Dst] = taint[ins.A]
		case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
			ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
			regs[ins.Dst] = interval.MathFn(ins.Op, regs[ins.A])
			taint[ins.Dst] = taint[ins.A]
		case ir.OpLoadIn:
			regs[ins.Dst] = in[ins.Imm]
			taint[ins.Dst] = 1 << (uint(dimBase+int(ins.Imm)) & 63)
		case ir.OpLoadState:
			regs[ins.Dst] = state[ins.Imm]
			taint[ins.Dst] = stTaint[ins.Imm]
		case ir.OpStoreState:
			state[ins.Imm] = regs[ins.A]
			stTaint[ins.Imm] = taint[ins.A]
		case ir.OpJmp:
			pc = int(ins.Imm)
			continue
		case ir.OpJmpIf:
			switch regs[ins.A].Truth() {
			case interval.TriTrue:
				pc = int(ins.Imm)
				continue
			case interval.TriFalse:
			default:
				return false, taint[ins.A] // path depends on these inputs
			}
		case ir.OpJmpIfNot:
			switch regs[ins.A].Truth() {
			case interval.TriFalse:
				pc = int(ins.Imm)
				continue
			case interval.TriTrue:
			default:
				return false, taint[ins.A]
			}
		case ir.OpHalt:
			return true, 0
		}
		pc++
	}
	return true, 0
}

func mathFloor(v float64) float64 {
	f := float64(int64(v))
	if f > v {
		f--
	}
	return f
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func concreteBitOp(op ir.Op, dt model.DType, a, b float64) float64 {
	x := model.EncodeInt(dt, int64(a))
	y := model.EncodeInt(dt, int64(b))
	xi := model.DecodeInt(dt, x)
	yi := model.DecodeInt(dt, y)
	var r int64
	switch op {
	case ir.OpBitAnd:
		r = xi & yi
	case ir.OpBitOr:
		r = xi | yi
	case ir.OpBitXor:
		r = xi ^ yi
	case ir.OpShl:
		r = xi << (uint(yi) & 31)
	case ir.OpShr:
		r = xi >> (uint(yi) & 31)
	}
	return float64(model.DecodeInt(dt, model.EncodeInt(dt, r)))
}

// decodeStateSlot interprets a raw state value using the slot's declared
// type from the lowering.
func decodeStateSlot(p *ir.Program, slot int, raw uint64) float64 {
	if slot < len(p.StateTypes) {
		return model.Decode(p.StateTypes[slot], raw)
	}
	return model.Decode(model.Float64, raw)
}

func (s *solver) samplePoint() {
	s.timeline = append(s.timeline, coverage.TimePoint{
		Elapsed:   time.Since(s.start),
		Execs:     s.witnesses,
		Decision:  s.prg.Decision(),
		Condition: s.prg.Condition(),
		Branches:  s.prg.Covered(),
	})
}
