package interval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// Property: interval arithmetic is sound — for random intervals and random
// points inside them, the concrete result lies inside the abstract result.
func TestIntervalArithmeticSoundness(t *testing.T) {
	ops := []struct {
		name string
		abs  func(a, b Interval) Interval
		con  func(x, y float64) float64
	}{
		{"add", Add, func(x, y float64) float64 { return x + y }},
		{"sub", Sub, func(x, y float64) float64 { return x - y }},
		{"mul", Mul, func(x, y float64) float64 { return x * y }},
		{"div", Div, func(x, y float64) float64 {
			if y == 0 {
				return 0
			}
			return x / y
		}},
		{"min", Min, math.Min},
		{"max", Max, math.Max},
	}
	rng := rand.New(rand.NewSource(2))
	mk := func() (Interval, float64) {
		a := rng.NormFloat64() * 100
		b := a + rng.Float64()*100
		x := a + rng.Float64()*(b-a)
		return Interval{a, b}, x
	}
	for _, op := range ops {
		for trial := 0; trial < 2000; trial++ {
			ia, x := mk()
			ib, y := mk()
			res := op.abs(ia, ib)
			v := op.con(x, y)
			if v < res.Lo-1e-9 || v > res.Hi+1e-9 {
				t.Fatalf("%s unsound: %v op %v = [%v,%v] but %v op %v = %v",
					op.name, ia, ib, res.Lo, res.Hi, x, y, v)
			}
		}
	}
}

// Property: comparison three-valued results are sound — if the abstract
// verdict is definite, every concrete pair must agree.
func TestCompareSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	relOps := []struct {
		op  ir.Op
		ref func(x, y float64) bool
	}{
		{ir.OpLt, func(x, y float64) bool { return x < y }},
		{ir.OpLe, func(x, y float64) bool { return x <= y }},
		{ir.OpGt, func(x, y float64) bool { return x > y }},
		{ir.OpGe, func(x, y float64) bool { return x >= y }},
		{ir.OpEq, func(x, y float64) bool { return x == y }},
		{ir.OpNe, func(x, y float64) bool { return x != y }},
	}
	for trial := 0; trial < 3000; trial++ {
		lo1 := float64(rng.Intn(21) - 10)
		hi1 := lo1 + float64(rng.Intn(5))
		lo2 := float64(rng.Intn(21) - 10)
		hi2 := lo2 + float64(rng.Intn(5))
		ia, ib := Interval{lo1, hi1}, Interval{lo2, hi2}
		for _, rel := range relOps {
			verdict := Cmp(rel.op, ia, ib)
			if verdict == TriMixed {
				continue
			}
			// Sample concrete integer points.
			for x := lo1; x <= hi1; x++ {
				for y := lo2; y <= hi2; y++ {
					got := rel.ref(x, y)
					if verdict == TriTrue && !got {
						t.Fatalf("%v: [%v,%v] vs [%v,%v] claimed always-true but %v,%v is false",
							rel.op, lo1, hi1, lo2, hi2, x, y)
					}
					if verdict == TriFalse && got {
						t.Fatalf("%v: [%v,%v] vs [%v,%v] claimed always-false but %v,%v is true",
							rel.op, lo1, hi1, lo2, hi2, x, y)
					}
				}
			}
		}
	}
}

func TestAbsNegSoundness(t *testing.T) {
	prop := func(a, w, frac float64) bool {
		lo := math.Mod(a, 1000)
		width := math.Abs(math.Mod(w, 100))
		x := lo + math.Abs(math.Mod(frac, 1))*width
		ia := Interval{lo, lo + width}
		r1 := Abs(ia)
		if v := math.Abs(x); v < r1.Lo-1e-9 || v > r1.Hi+1e-9 {
			return false
		}
		r2 := Neg(ia)
		if v := -x; v < r2.Lo-1e-9 || v > r2.Hi+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTruthTri(t *testing.T) {
	if Point(0).Truth() != TriFalse {
		t.Error("point 0 must be definitely false")
	}
	if Point(3).Truth() != TriTrue {
		t.Error("point 3 must be definitely true")
	}
	if Span(-1, 1).Truth() != TriMixed {
		t.Error("interval through 0 must be mixed")
	}
	if Span(1, 5).Truth() != TriTrue {
		t.Error("positive interval must be true")
	}
	if !TriMixed.CanTrue() || !TriMixed.CanFalse() {
		t.Error("mixed must admit both truth values")
	}
	if TriTrue.CanFalse() || TriFalse.CanTrue() {
		t.Error("definite verdicts must exclude the opposite value")
	}
}

func TestCastWidensOnOverflow(t *testing.T) {
	// int32 value range cast to int8: wraps, so must widen to full range.
	r := Cast(model.Int8, model.Int32, Span(0, 1000))
	full := TypeRange(model.Int8)
	if r.Lo != full.Lo || r.Hi != full.Hi {
		t.Errorf("overflowing cast must widen: got [%v,%v]", r.Lo, r.Hi)
	}
	// In-range cast stays tight.
	r = Cast(model.Int8, model.Int32, Span(-5, 5))
	if r.Lo != -5 || r.Hi != 5 {
		t.Errorf("in-range cast must stay tight: [%v,%v]", r.Lo, r.Hi)
	}
	// float -> int clamps.
	r = Cast(model.UInt8, model.Float64, Span(-10, 300))
	if r.Lo != 0 || r.Hi != 255 {
		t.Errorf("float->int clamp: [%v,%v]", r.Lo, r.Hi)
	}
}

func TestMathFnMonotone(t *testing.T) {
	r := MathFn(ir.OpSqrt, Span(4, 9))
	if r.Lo != 2 || r.Hi != 3 {
		t.Errorf("sqrt interval: [%v,%v]", r.Lo, r.Hi)
	}
	r = MathFn(ir.OpSqrt, Span(-4, 9))
	if r.Lo != 0 || r.Hi != 3 {
		t.Errorf("sqrt with negative domain: [%v,%v]", r.Lo, r.Hi)
	}
	r = MathFn(ir.OpSin, Span(0, 10))
	if r.Lo != -1 || r.Hi != 1 {
		t.Errorf("sin wide interval: [%v,%v]", r.Lo, r.Hi)
	}
	r = MathFn(ir.OpFloor, Span(1.5, 2.7))
	if r.Lo != 1 || r.Hi != 2 {
		t.Errorf("floor: [%v,%v]", r.Lo, r.Hi)
	}
}
