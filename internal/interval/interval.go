// Package interval is the shared abstract numeric domain of the static
// layers: closed real intervals with three-valued truth, used by the SLDV
// constraint-solving baseline (box subdivision) and by the static analyzer
// (dead-objective proof via abstract interpretation). Every supported
// signal value is exactly representable in float64, so [Lo, Hi] bounds are
// exact for integers and conservative for floats.
package interval

import (
	"math"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// Interval is a closed interval over the reals.
type Interval struct{ Lo, Hi float64 }

// Point returns the degenerate interval [v, v].
func Point(v float64) Interval { return Interval{v, v} }

// Span returns [lo, hi].
func Span(lo, hi float64) Interval { return Interval{lo, hi} }

// IsPoint reports whether the interval holds exactly one value.
func (a Interval) IsPoint() bool { return a.Lo == a.Hi }

// Width returns Hi - Lo.
func (a Interval) Width() float64 { return a.Hi - a.Lo }

// Mid returns the midpoint.
func (a Interval) Mid() float64 { return a.Lo + (a.Hi-a.Lo)/2 }

// Contains0 reports whether 0 lies in the interval.
func (a Interval) Contains0() bool { return a.Lo <= 0 && a.Hi >= 0 }

// Hull returns the smallest interval containing both operands.
func (a Interval) Hull(b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// TypeRange returns the full value range of a data type (floats bounded to
// the solver's working range — SLDV likewise solves over bounded reals).
func TypeRange(dt model.DType) Interval {
	if dt.IsFloat() {
		return Span(-1e9, 1e9)
	}
	return Span(float64(dt.MinInt()), float64(dt.MaxInt()))
}

// Tri is three-valued truth for abstract branch conditions.
type Tri uint8

// The three truth values.
const (
	TriFalse Tri = iota
	TriTrue
	TriMixed
)

// TriOf builds a Tri from reachability of each concrete truth value.
func TriOf(canFalse, canTrue bool) Tri {
	switch {
	case canTrue && canFalse:
		return TriMixed
	case canTrue:
		return TriTrue
	default:
		return TriFalse
	}
}

// CanTrue reports whether the condition can evaluate true.
func (t Tri) CanTrue() bool { return t == TriTrue || t == TriMixed }

// CanFalse reports whether the condition can evaluate false.
func (t Tri) CanFalse() bool { return t == TriFalse || t == TriMixed }

// Truth interprets an interval as a logical condition.
func (a Interval) Truth() Tri {
	canTrue := a.Lo != 0 || a.Hi != 0
	canFalse := a.Contains0()
	return TriOf(canFalse, canTrue)
}

// Add returns the interval sum.
func Add(a, b Interval) Interval { return Interval{a.Lo + b.Lo, a.Hi + b.Hi} }

// Sub returns the interval difference.
func Sub(a, b Interval) Interval { return Interval{a.Lo - b.Hi, a.Hi - b.Lo} }

// Mul returns the interval product.
func Mul(a, b Interval) Interval {
	p1, p2, p3, p4 := a.Lo*b.Lo, a.Lo*b.Hi, a.Hi*b.Lo, a.Hi*b.Hi
	return Interval{min4(p1, p2, p3, p4), max4(p1, p2, p3, p4)}
}

// Div is conservative: a divisor interval containing zero yields the hull of
// the quotient extremes and the total-definition value 0.
func Div(a, b Interval) Interval {
	if b.Contains0() {
		if b.IsPoint() { // exactly zero: total definition x/0 = 0
			return Point(0)
		}
		// Mixed-sign divisor: quotient can be arbitrarily large.
		return Span(math.Inf(-1), math.Inf(1))
	}
	p1, p2, p3, p4 := a.Lo/b.Lo, a.Lo/b.Hi, a.Hi/b.Lo, a.Hi/b.Hi
	return Interval{min4(p1, p2, p3, p4), max4(p1, p2, p3, p4)}
}

// Min returns the elementwise minimum interval.
func Min(a, b Interval) Interval {
	return Interval{math.Min(a.Lo, b.Lo), math.Min(a.Hi, b.Hi)}
}

// Max returns the elementwise maximum interval.
func Max(a, b Interval) Interval {
	return Interval{math.Max(a.Lo, b.Lo), math.Max(a.Hi, b.Hi)}
}

// Neg returns the negated interval.
func Neg(a Interval) Interval { return Interval{-a.Hi, -a.Lo} }

// Abs returns the absolute-value interval.
func Abs(a Interval) Interval {
	if a.Lo >= 0 {
		return a
	}
	if a.Hi <= 0 {
		return Interval{-a.Hi, -a.Lo}
	}
	return Interval{0, math.Max(-a.Lo, a.Hi)}
}

// Cmp evaluates a relational op over intervals three-valued.
func Cmp(op ir.Op, a, b Interval) Tri {
	switch op {
	case ir.OpLt:
		return TriOf(a.Hi >= b.Lo, a.Lo < b.Hi) // canFalse: exists x>=y; canTrue: exists x<y
	case ir.OpLe:
		return TriOf(a.Hi > b.Lo, a.Lo <= b.Hi)
	case ir.OpGt:
		return TriOf(a.Lo <= b.Hi, a.Hi > b.Lo)
	case ir.OpGe:
		return TriOf(a.Lo < b.Hi, a.Hi >= b.Lo)
	case ir.OpEq:
		if a.IsPoint() && b.IsPoint() {
			return TriOf(a.Lo != b.Lo, a.Lo == b.Lo)
		}
		overlap := a.Hi >= b.Lo && b.Hi >= a.Lo
		return TriOf(!(a.IsPoint() && b.IsPoint() && a.Lo == b.Lo), overlap)
	case ir.OpNe:
		t := Cmp(ir.OpEq, a, b)
		switch t {
		case TriTrue:
			return TriFalse
		case TriFalse:
			return TriTrue
		}
		return TriMixed
	}
	return TriMixed
}

// TriToItv embeds a three-valued bool into an interval register.
func TriToItv(t Tri) Interval {
	switch t {
	case TriTrue:
		return Point(1)
	case TriFalse:
		return Point(0)
	}
	return Span(0, 1)
}

// Cast converts an interval between types: clamping semantics for
// float->int is conservative; integer narrowing that can wrap widens to the
// full target range (sound for two's-complement wrap).
func Cast(to, from model.DType, a Interval) Interval {
	if to.IsFloat() {
		return a
	}
	lo := math.Trunc(a.Lo)
	hi := math.Trunc(a.Hi)
	if from.IsFloat() {
		// Encode clamps to the target bounds.
		r := TypeRange(to)
		return Interval{clamp(lo, r), clamp(hi, r)}
	}
	r := TypeRange(to)
	if lo < r.Lo || hi > r.Hi {
		return r // may wrap: widen
	}
	return Interval{lo, hi}
}

func clamp(v float64, r Interval) float64 {
	if v < r.Lo {
		return r.Lo
	}
	if v > r.Hi {
		return r.Hi
	}
	return v
}

// WrapArith re-bounds an integer arithmetic result: overflow widens to the
// full type range (wrap is sound but imprecise).
func WrapArith(dt model.DType, a Interval) Interval {
	if dt.IsFloat() {
		return a
	}
	r := TypeRange(dt)
	if a.Lo < r.Lo || a.Hi > r.Hi {
		return r
	}
	return Interval{math.Trunc(a.Lo), math.Trunc(a.Hi)}
}

// MathFn evaluates the unary math functions over intervals (monotone
// functions exactly; trigonometric functions conservatively as [-1, 1]).
func MathFn(op ir.Op, a Interval) Interval {
	switch op {
	case ir.OpSqrt:
		lo, hi := a.Lo, a.Hi
		if lo < 0 {
			lo = 0
		}
		if hi < 0 {
			hi = 0
		}
		return Interval{math.Sqrt(lo), math.Sqrt(hi)}
	case ir.OpExp:
		return Interval{math.Exp(a.Lo), math.Exp(a.Hi)}
	case ir.OpLog:
		// log is defined as 0 for non-positive inputs.
		if a.Hi <= 0 {
			return Point(0)
		}
		hi := math.Log(a.Hi)
		if a.Lo <= 0 {
			// Domain touches (0, eps]: log unbounded below; 0 included.
			return Interval{math.Inf(-1), math.Max(hi, 0)}
		}
		return Interval{math.Log(a.Lo), hi}
	case ir.OpSin, ir.OpCos:
		if a.IsPoint() {
			if op == ir.OpSin {
				return Point(math.Sin(a.Lo))
			}
			return Point(math.Cos(a.Lo))
		}
		return Span(-1, 1)
	case ir.OpTan:
		if a.IsPoint() {
			return Point(math.Tan(a.Lo))
		}
		return Span(math.Inf(-1), math.Inf(1))
	case ir.OpFloor:
		return Interval{math.Floor(a.Lo), math.Floor(a.Hi)}
	case ir.OpCeil:
		return Interval{math.Ceil(a.Lo), math.Ceil(a.Hi)}
	case ir.OpRound:
		return Interval{math.Round(a.Lo), math.Round(a.Hi)}
	case ir.OpTrunc:
		return Interval{math.Trunc(a.Lo), math.Trunc(a.Hi)}
	}
	return a
}

func min4(a, b, c, d float64) float64 { return math.Min(math.Min(a, b), math.Min(c, d)) }
func max4(a, b, c, d float64) float64 { return math.Max(math.Max(a, b), math.Max(c, d)) }
