package fuzz

import (
	"sync"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/testcase"
)

// RunParallel fuzzes one model with `workers` independent engines (distinct
// seeds) and merges their results: the union of coverage, the concatenated
// suites (minimized against the merged plan), the summed work counters and
// the deduplicated findings. An in-process LibFuzzer-style engine shares
// nothing but the immutable program, so this is plain data parallelism.
//
// Checkpointing and resume apply to worker 0 only — a single checkpoint file
// cannot represent independent corpora, so the other workers run stateless.
func RunParallel(c *codegen.Compiled, opts Options, workers int) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	engines := make([]*Engine, workers)
	for w := 0; w < workers; w++ {
		o := opts
		o.Seed = opts.Seed + int64(w)*7919 // distinct prime-spaced streams
		if w > 0 {
			o.CheckpointPath = ""
			o.ResumeFrom = ""
		}
		eng, err := NewEngine(c, o)
		if err != nil {
			return nil, err
		}
		engines[w] = eng
	}

	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = engines[w].Run()
		}(w)
	}
	wg.Wait()

	merged := coverage.NewRecorder(c.Plan)
	out := &Result{Suite: &testcase.Suite{
		Model:  c.Prog.Name,
		Layout: results[0].Suite.Layout,
	}}
	seenFindings := map[string]int{} // (kind, site) -> index in out.Findings
	for w, r := range results {
		merged.Merge(engines[w].Recorder())
		out.Execs += r.Execs
		out.Steps += r.Steps
		out.Corpus += r.Corpus
		out.Suite.Cases = append(out.Suite.Cases, r.Suite.Cases...)
		out.Violations = append(out.Violations, r.Violations...)
		out.Stopped = out.Stopped || r.Stopped
		out.DroppedFindings += r.DroppedFindings
		if r.CheckpointErr != nil {
			out.CheckpointErr = r.CheckpointErr
		}
		for _, f := range r.Findings {
			key := f.Kind.String() + "|" + f.Site
			if i, ok := seenFindings[key]; ok {
				out.Findings[i].Count += f.Count
				continue
			}
			seenFindings[key] = len(out.Findings)
			out.Findings = append(out.Findings, f)
		}
		if w == 0 {
			out.Timeline = r.Timeline
		}
	}
	out.Suite.Cases = Minimize(c, out.Suite.Cases)
	out.Report = merged.Report()
	return out, nil
}
