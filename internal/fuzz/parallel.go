package fuzz

import (
	"sync"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/testcase"
)

// RunParallel fuzzes one model with `workers` independent engines (distinct
// seeds) and merges their results: the union of coverage, the concatenated
// suites (minimized against the merged plan), and the summed work counters.
// An in-process LibFuzzer-style engine shares nothing but the immutable
// program, so this is plain data parallelism.
func RunParallel(c *codegen.Compiled, opts Options, workers int) *Result {
	if workers < 1 {
		workers = 1
	}
	results := make([]*Result, workers)
	recorders := make([]*coverage.Recorder, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			o := opts
			o.Seed = opts.Seed + int64(w)*7919 // distinct prime-spaced streams
			eng := NewEngine(c, o)
			results[w] = eng.Run()
			recorders[w] = eng.Recorder()
		}(w)
	}
	wg.Wait()

	merged := coverage.NewRecorder(c.Plan)
	out := &Result{Suite: &testcase.Suite{
		Model:  c.Prog.Name,
		Layout: results[0].Suite.Layout,
	}}
	for w, r := range results {
		merged.Merge(recorders[w])
		out.Execs += r.Execs
		out.Steps += r.Steps
		out.Corpus += r.Corpus
		out.Suite.Cases = append(out.Suite.Cases, r.Suite.Cases...)
		out.Violations = append(out.Violations, r.Violations...)
		if w == 0 {
			out.Timeline = r.Timeline
		}
	}
	out.Suite.Cases = Minimize(c, out.Suite.Cases)
	out.Report = merged.Report()
	return out
}
