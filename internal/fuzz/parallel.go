package fuzz

import (
	"sync"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/opt"
	"cftcg/internal/testcase"
)

// RunParallel fuzzes one model with `workers` independent engines (distinct
// seeds) and merges their results: the union of coverage, the concatenated
// suites (minimized against the merged plan), the summed work counters, the
// deduplicated findings and the merged ensemble timeline. An in-process
// LibFuzzer-style engine shares nothing but the immutable program, so this
// is plain data parallelism; for shards that *share discoveries while
// running* (live cross-pollination, per-shard checkpoints), use the
// campaign layer instead.
//
// Checkpointing and resume apply to worker 0 only — a single checkpoint file
// cannot represent independent corpora, so the other workers run stateless.
// The CLI rejects -resume with multiple workers for that reason.
func RunParallel(c *codegen.Compiled, opts Options, workers int) (*Result, error) {
	if workers < 1 {
		workers = 1
	}
	if opts.Optimize {
		// Optimize once up front rather than per worker: every engine then
		// shares the same validated program, and NewEngine's per-engine
		// optimization path stays off.
		p, _, err := opt.Optimize(c.Prog, c.Plan, opt.Config{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		c2 := *c
		c2.Prog = p
		c = &c2
		opts.Optimize = false
	}
	engines := make([]*Engine, workers)
	for w := 0; w < workers; w++ {
		o := opts
		o.Seed = opts.Seed + int64(w)*7919 // distinct prime-spaced streams
		if w > 0 {
			o.CheckpointPath = ""
			o.ResumeFrom = ""
		}
		eng, err := NewEngine(c, o)
		if err != nil {
			return nil, err
		}
		engines[w] = eng
	}

	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = engines[w].Run()
		}(w)
	}
	wg.Wait()

	recs := make([]*coverage.Recorder, workers)
	for w, eng := range engines {
		recs[w] = eng.Recorder()
	}
	out := MergeResults(c, recs, results)
	out.Suite.Cases = Minimize(c, out.Suite.Cases)
	return out, nil
}

// MergeResults folds per-shard campaign results into one ensemble result:
// the union of coverage (recs[i] must be the recorder that produced
// results[i]), concatenated suites, summed work counters, findings
// deduplicated by (kind, site), and the merged ensemble timeline. The suite
// is the raw concatenation — callers minimize against the merged plan if
// they want Table-1-style suites. Both RunParallel and the campaign layer
// merge through here so a shard ensemble reports exactly like a single
// engine.
func MergeResults(c *codegen.Compiled, recs []*coverage.Recorder, results []*Result) *Result {
	merged := coverage.NewRecorder(c.Plan)
	out := &Result{Suite: &testcase.Suite{Model: c.Prog.Name}}
	if len(results) > 0 {
		out.Suite.Layout = results[0].Suite.Layout
	}
	timelines := make([][]Point, 0, len(results))
	for i, r := range results {
		if recs != nil && recs[i] != nil {
			merged.Merge(recs[i])
		}
		out.Execs += r.Execs
		out.Steps += r.Steps
		out.Corpus += r.Corpus
		out.Suite.Cases = append(out.Suite.Cases, r.Suite.Cases...)
		out.Violations = append(out.Violations, r.Violations...)
		out.Stopped = out.Stopped || r.Stopped
		out.DroppedFindings += r.DroppedFindings
		if r.CheckpointErr != nil {
			out.CheckpointErr = r.CheckpointErr
		}
		out.Findings = MergeFindings(out.Findings, r.Findings)
		timelines = append(timelines, r.Timeline)
	}
	// Merge per-worker timelines (summed execs, max coverage at aligned
	// elapsed instants) so Figure 7 output reflects the whole ensemble
	// rather than worker 0 alone.
	out.Timeline = coverage.MergeTimelines(timelines)
	out.Report = merged.Report()
	return out
}
