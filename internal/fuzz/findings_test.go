package fuzz

import (
	"encoding/binary"
	"math"
	"testing"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// isqrtModel compiles a genuine data-dependent loop (integer square root by
// repeated subtraction); under a tiny fuel budget large inputs hang.
func isqrtModel(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("Isqrt")
	x := b.Inport("x", model.Int32)
	ml := b.Matlab("isqrt", `
input  int32 x;
output int32 root = 0;
var    int32 n = 0;
var    int32 odd = 1;
n = x;
while (n >= odd) {
    n = n - odd;
    odd = odd + 2;
    root = root + 1;
}
`, x)
	b.Outport("root", model.Int32, ml.Out(0))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func int32Tuple(v int32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, uint32(v))
	return b
}

func TestHangTriagedAndDeduplicated(t *testing.T) {
	c := isqrtModel(t)
	// ~sqrt(1e9) = 31623 loop iterations vastly exceed a 500-instruction fuel.
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1, Fuel: 500})
	e.RunInput(int32Tuple(1_000_000_000))
	e.RunInput(int32Tuple(2_000_000_000)) // same loop, different input

	if len(e.findings) != 1 {
		t.Fatalf("want 1 deduplicated finding, got %d: %v", len(e.findings), e.findings)
	}
	f := e.findings[0]
	if f.Kind != FindingHang {
		t.Errorf("kind = %v, want hang", f.Kind)
	}
	if f.Count != 2 {
		t.Errorf("count = %d, want 2 (second input deduplicated)", f.Count)
	}
	if f.Site == "" {
		t.Error("hang finding must carry a site")
	}
	if f.Step != 0 {
		t.Errorf("step = %d, want 0 (first model iteration)", f.Step)
	}
	if string(f.Input) != string(int32Tuple(1_000_000_000)) {
		t.Error("finding must keep the first reproducing input")
	}
}

func TestHangInputStillYieldsPartialCoverage(t *testing.T) {
	c := isqrtModel(t)
	hung := MustEngine(c, Options{Seed: 1, MaxExecs: 1, Fuel: 500})
	_, _, newAny := hung.RunInput(int32Tuple(1_000_000_000))
	if newAny == 0 {
		t.Error("aborted step must still contribute the coverage it reached")
	}
}

func TestCampaignSurvivesHangsWithinBudget(t *testing.T) {
	// The acceptance scenario: a model whose big inputs all hang must still
	// complete a campaign, recording Hang findings rather than wedging.
	c := isqrtModel(t)
	e := MustEngine(c, Options{Seed: 7, Budget: 300 * time.Millisecond, Fuel: 2000})
	start := time.Now()
	res := e.Run()
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("campaign overshot its budget: %s", el)
	}
	if res.Execs == 0 {
		t.Fatal("campaign made no progress")
	}
	hangs := 0
	for _, f := range res.Findings {
		if f.Kind == FindingHang {
			hangs += f.Count
		}
	}
	if hangs == 0 {
		t.Errorf("expected hang findings on a 2000-fuel isqrt, got %v", res.Findings)
	}
}

func TestPanicRecoveredAsCrashFinding(t *testing.T) {
	c := switchOnly(t)
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	// Corrupt the program: a register index past the file makes the VM panic
	// with index-out-of-range, standing in for any interpreter defect.
	for i := range e.c.Prog.Step {
		if e.c.Prog.Step[i].Op == ir.OpStoreOut {
			e.c.Prog.Step[i].A = 1 << 20
			break
		}
	}
	metric, _, _ := e.RunInput([]byte{1})
	_ = metric
	if len(e.findings) != 1 || e.findings[0].Kind != FindingCrash {
		t.Fatalf("want 1 crash finding, got %v", e.findings)
	}
	if e.execs != 1 {
		t.Errorf("execs = %d, want 1 (crashing input still counted)", e.execs)
	}
	// The engine remains usable after the recovered panic on other inputs?
	// The corruption is permanent here, so just verify dedup instead.
	e.RunInput([]byte{1})
	if len(e.findings) != 1 || e.findings[0].Count != 2 {
		t.Errorf("crash dedup failed: %v", e.findings)
	}
}

func TestNumericAnomalyOnOutport(t *testing.T) {
	b := model.NewBuilder("Square")
	x := b.Inport("x", model.Float64)
	b.Outport("y", model.Float64, b.Mul(x, x))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1})

	tuple := func(v float64) []byte {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
		return buf
	}
	e.RunInput(tuple(3)) // finite: no finding
	if len(e.findings) != 0 {
		t.Fatalf("finite output flagged: %v", e.findings)
	}
	e.RunInput(tuple(1e200)) // 1e400 overflows to +Inf
	e.RunInput(tuple(math.NaN()))
	if len(e.findings) != 1 {
		t.Fatalf("want 1 finding for outport y (Inf and NaN share the site), got %v", e.findings)
	}
	f := e.findings[0]
	if f.Kind != FindingNumericAnomaly || f.Site != "out:y" || f.Count != 2 {
		t.Errorf("finding = %+v", f)
	}
}

func TestFindingCapCountsDrops(t *testing.T) {
	e := &Engine{findingIdx: map[string]int{}}
	for i := 0; i < maxFindings+5; i++ {
		e.recordFinding(FindingCrash, nil, 0, string(rune('a'+i)), "x")
	}
	if len(e.findings) != maxFindings {
		t.Errorf("stored %d findings, want cap %d", len(e.findings), maxFindings)
	}
	if e.droppedFindings != 5 {
		t.Errorf("dropped = %d, want 5", e.droppedFindings)
	}
}

func TestOptionsValidate(t *testing.T) {
	c := switchOnly(t)
	bad := []Options{
		{MaxTuples: -1, MaxExecs: 1},
		{CorpusCap: -1, MaxExecs: 1},
		{MaxExecs: -1},
		{Budget: -time.Second, MaxExecs: 1},
		{Fuel: -1, MaxExecs: 1},
		{CheckpointEvery: -time.Second, MaxExecs: 1},
		{}, // no budget at all
	}
	for i, o := range bad {
		if _, err := NewEngine(c, o); err == nil {
			t.Errorf("case %d (%+v): want error", i, o)
		}
	}
	if _, err := NewEngine(c, Options{ResumeFrom: "nonexistent.ckpt"}); err != nil {
		t.Errorf("ResumeFrom alone is a valid budget source: %v", err)
	}
}
