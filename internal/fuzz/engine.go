package fuzz

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cftcg/internal/analysis"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/faultinject"
	"cftcg/internal/model"
	"cftcg/internal/opt"
	"cftcg/internal/testcase"
	"cftcg/internal/vm"
)

// Mode selects the fuzzing configuration.
type Mode uint8

const (
	// ModeModelOriented is full CFTCG: tuple-wise mutation, model-level
	// branch feedback, iteration-difference corpus priority.
	ModeModelOriented Mode = iota
	// ModeFuzzOnly is the Figure 8 ablation: generic byte mutation and
	// code-level feedback only — branchless-compiled boolean logic, data
	// switches and saturations are invisible to the fuzzer (their probes
	// do not guide the corpus), exactly like fuzzing Simulink Coder output
	// with a stock fuzzer at -O2.
	ModeFuzzOnly
	// ModeNoIterDiff is the ablation for Algorithm 1's metric: model
	// mutations and full feedback, but corpus entries carry uniform
	// weight instead of iteration-difference priority.
	ModeNoIterDiff
)

func (m Mode) String() string {
	switch m {
	case ModeModelOriented:
		return "cftcg"
	case ModeFuzzOnly:
		return "fuzz-only"
	case ModeNoIterDiff:
		return "no-iterdiff"
	}
	return "mode(?)"
}

// Options configures a fuzzing campaign. At least one of MaxExecs or Budget
// must be set.
type Options struct {
	Seed      int64
	Mode      Mode
	MaxTuples int           // input length cap in tuples (default 64)
	MaxExecs  int64         // execution budget (0 = unlimited)
	Budget    time.Duration // wall-clock budget (0 = unlimited)
	// CorpusCap bounds corpus size (default 256; lowest-weight evicted).
	CorpusCap int

	// NoHints disables the comparison-constant dictionary extracted from
	// the instrumented program (§5's "dynamic numerical range constraint"
	// mitigation). Hints are never used in fuzz-only mode — a generic
	// fuzzer has no model knowledge.
	NoHints bool
	// Ranges optionally bounds each input field's generated values (§5's
	// tester-specified inport ranges), indexed like the tuple fields.
	Ranges []Range
	// SeedInputs pre-populates the corpus, e.g. with witnesses from the
	// constraint solver — the §6 future-work hybrid of constraint solving
	// and fuzzing.
	SeedInputs [][]byte
	// Directed enables influence-directed mutation: the static analysis'
	// input-field → branch influence map biases field-wise value mutations
	// toward fields that can reach still-unsatisfied objectives. Ignored in
	// fuzz-only mode (a generic fuzzer has no model knowledge).
	Directed bool
	// MutantBias adds per-input-field mutation energy from the
	// mutation-testing feedback loop: field f's weight is raised by
	// MutantBias[f] (typically surviving-mutant counts from
	// mutate.Report.FieldBoost — fields that reach undetected fault sites).
	// Entries must be non-negative; ignored in fuzz-only mode.
	MutantBias []float64

	// Optimize runs the translation-validated IR optimization pipeline over
	// the program before fuzzing, so the campaign executes the optimized
	// code. The pipeline's validator guarantees identical outputs and probe
	// streams, so coverage and findings are comparable either way.
	Optimize bool
	// Backend selects the VM execution backend the campaign runs on: the
	// switch reference interpreter (the zero value) or the direct-threaded
	// compiled backend. The cross-backend differential rig proves the
	// backends observably identical — outputs, probes, fuel, hang sites —
	// so results are comparable whichever executes.
	Backend vm.BackendKind
	// Fuel bounds the instructions one init/step call may execute before it
	// is aborted and triaged as a Hang finding (0 = vm.DefaultFuel).
	Fuel int64
	// CheckpointPath, when set, makes the campaign periodically persist its
	// corpus and counters to this file via an atomic write-then-rename, and
	// flush a final checkpoint when Run returns.
	CheckpointPath string
	// CheckpointEvery is the minimum interval between periodic checkpoint
	// writes (default 30s; only meaningful with CheckpointPath).
	CheckpointEvery time.Duration
	// ResumeFrom reloads a checkpoint written by a previous (killed)
	// campaign: the saved corpus is replayed to regenerate coverage and
	// test cases, then weights and budget counters continue from the saved
	// values. A nonexistent file is not an error — the first run of a
	// campaign may point ResumeFrom at its own CheckpointPath.
	ResumeFrom string
	// Stop, when non-nil, stops Run cleanly (final checkpoint + report) as
	// soon as the channel is closed — the SIGINT path of the CLI.
	Stop <-chan struct{}

	// OnNewCoverage, when non-nil, is invoked from the engine's goroutine
	// whenever an input reaches branches this engine had never covered.
	// input is the triggering test input and seen the engine's cumulative
	// covered-branch bitmap; both are only valid for the duration of the
	// call and must be copied if retained. The campaign layer uses this to
	// cross-pollinate globally-new inputs between shards.
	OnNewCoverage func(input []byte, seen []uint8)

	// OnCheckpoint, when non-nil, is invoked from the engine's goroutine
	// after every checkpoint write attempt (periodic and final) with the
	// write's outcome. The campaign layer journals these transitions.
	OnCheckpoint func(err error)

	// Label tags this engine for observability; the campaign layer sets it
	// to the shard name. Chaos builds scope the engine-loop failpoint by it
	// ("fuzz.loop:<label>") so a fault can target one shard.
	Label string
}

// ParseMode parses a mode name as spelled on the CLI and the daemon API.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "cftcg":
		return ModeModelOriented, nil
	case "fuzz-only":
		return ModeFuzzOnly, nil
	case "no-iterdiff":
		return ModeNoIterDiff, nil
	}
	return 0, fmt.Errorf("fuzz: unknown mode %q (want cftcg, fuzz-only or no-iterdiff)", s)
}

// Validate rejects option combinations the engine cannot run: negative
// budgets or caps, and a campaign with no termination condition at all.
func (o *Options) Validate() error {
	if o.MaxTuples < 0 {
		return fmt.Errorf("fuzz: negative MaxTuples %d", o.MaxTuples)
	}
	if o.CorpusCap < 0 {
		return fmt.Errorf("fuzz: negative CorpusCap %d", o.CorpusCap)
	}
	if o.MaxExecs < 0 {
		return fmt.Errorf("fuzz: negative MaxExecs %d", o.MaxExecs)
	}
	if o.Budget < 0 {
		return fmt.Errorf("fuzz: negative Budget %s", o.Budget)
	}
	if o.Fuel < 0 {
		return fmt.Errorf("fuzz: negative Fuel %d", o.Fuel)
	}
	if !o.Backend.Valid() {
		return fmt.Errorf("fuzz: unknown backend %v", o.Backend)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("fuzz: negative CheckpointEvery %s", o.CheckpointEvery)
	}
	for i, b := range o.MutantBias {
		if b < 0 {
			return fmt.Errorf("fuzz: negative MutantBias[%d] = %v", i, b)
		}
	}
	if o.MaxExecs == 0 && o.Budget == 0 && o.ResumeFrom == "" {
		return errors.New("fuzz: no execution budget: set MaxExecs or Budget (or ResumeFrom to replay a checkpoint)")
	}
	return nil
}

// Point is one sample of the coverage-versus-time curve (Figure 7), shared
// with the baseline tools so the harness plots them together.
type Point = coverage.TimePoint

// Result summarizes a campaign.
type Result struct {
	Report   coverage.Report
	Suite    *testcase.Suite
	Execs    int64 // fuzz-driver invocations
	Steps    int64 // model iterations executed
	Timeline []Point
	Corpus   int // final corpus size

	// Violations lists inputs that tripped an Assertion block (bounded to
	// the first few distinct finds) — the verification payoff of fuzzing
	// beyond coverage.
	Violations []testcase.Case

	// Findings lists triaged faults (hangs, recovered panics, numeric
	// anomalies) deduplicated by site — first-class campaign results next
	// to coverage, in the way libFuzzer treats timeouts and crashes.
	Findings []Finding
	// DroppedFindings counts distinct finding sites beyond the stored cap.
	DroppedFindings int
	// Stopped reports that the campaign ended on an external stop request
	// (SIGINT path) rather than by exhausting its budget.
	Stopped bool
	// CheckpointErr is the last checkpoint write error, if any; the
	// campaign itself continues through failed saves.
	CheckpointErr error
}

// Engine is the in-process fuzzer bound to one compiled model.
type Engine struct {
	c    *codegen.Compiled
	rec  *coverage.Recorder
	m    vm.Backend
	opts Options
	rng  *rand.Rand

	mut   *Mutator
	bmut  *ByteMutator
	tuple int

	// feedback state
	seen     []uint8 // all branches ever hit (test-case emission)
	mask     []bool  // branches visible to the fuzzer's feedback
	last     []uint8 // previous iteration's coverage (Algorithm 1 lastCov)
	tupleBuf []uint64

	// influence is the static input-field → branch influence map; non-nil
	// only in directed mode, where every coverage gain triggers a bias
	// refresh toward the remaining unsatisfied objectives.
	influence *analysis.Influence
	// mutantBias is extra per-field energy from surviving mutants
	// (Options.MutantBias); added on top of the influence weights (or a
	// flat baseline when not directed) at every bias refresh.
	mutantBias []float64

	// incremental metric counters for cheap timeline points
	isOutcome    []bool
	covOutcomes  int
	covConds     int
	totOutcomes  int
	totConds     int
	coveredCount int

	corpus []entry

	// assertBranches holds the branch IDs meaning "assertion violated".
	assertBranches []int
	lastViolated   bool
	bestRawMetric  int

	start      time.Time
	execs      int64
	steps      int64
	timeline   []Point
	cases      []testcase.Case
	violations []testcase.Case

	// fault-tolerance state
	findings        []Finding
	findingIdx      map[string]int
	droppedFindings int
	floatOuts       []floatOut
	lastInputFuel   int64 // instructions burned by the last RunInput
	stopFlag        atomic.Bool
	resumed         *Checkpoint
	lastCkpt        time.Time
	lastCkptOK      time.Time // last successful checkpoint write
	ckptErr         error
	ckptOff         atomic.Bool // set when a supervisor abandons this engine
	fpLoop          string      // per-engine run-loop failpoint name

	// cross-pollination inbox: inputs other shards discovered, delivered by
	// Inject from foreign goroutines and drained by the run loop.
	inboxMu          sync.Mutex
	inbox            [][]byte
	inboxFlag        atomic.Bool
	injectedAdmitted int64

	// live status mirror, safe to read from other goroutines while Run is
	// hot (the campaign status plane).
	liveMu sync.Mutex
	live   LiveStats
}

// LiveStats is a point-in-time snapshot of a running engine's counters. It
// is safe to read from any goroutine while the campaign runs — the status
// plane of the daemon polls it — and is refreshed once per executed input.
type LiveStats struct {
	Execs      int64 `json:"execs"`
	Steps      int64 `json:"steps"`
	Corpus     int   `json:"corpus"`
	Covered    int   `json:"covered"` // branch slots this engine has hit
	Cases      int   `json:"cases"`
	Violations int   `json:"violations"`
	Findings   int   `json:"findings"` // distinct (kind, site) findings
	// FindingsByKind counts distinct findings per FindingKind.
	FindingsByKind [numFindingKinds]int `json:"findingsByKind"`
	// InjectedAdmitted counts cross-pollinated inputs (delivered via Inject)
	// that carried coverage new to this engine and entered its corpus.
	InjectedAdmitted int64 `json:"injectedAdmitted"`
	// FieldHits counts targeted value mutations per input field (indexed
	// like Prog.In) — under directed mode this shows where the influence
	// bias is spending mutation energy.
	FieldHits []int64 `json:"fieldHits,omitempty"`
	// LastCheckpoint is the wall-clock time of the last successful
	// checkpoint write (zero when checkpointing is off or none succeeded
	// yet) — the daemon health plane reports its age.
	LastCheckpoint time.Time `json:"lastCheckpoint,omitempty"`
	// DeadObjectives is the number of branch slots statically proved
	// unreachable and excluded from this engine's coverage denominators.
	DeadObjectives int `json:"deadObjectives"`
}

// floatOut is a float-typed outport slot checked for NaN/Inf after each step.
type floatOut struct {
	idx  int
	dt   model.DType
	name string
}

type entry struct {
	data   []byte
	weight float64
	// pinned marks entries admitted for new coverage; they are never
	// evicted in favour of metric-record entries.
	pinned bool
}

// NewEngine builds a fuzzer for a compiled model. It validates the options
// and, when Options.ResumeFrom names an existing checkpoint, loads and
// verifies it (the replay happens at the start of Run).
func NewEngine(c *codegen.Compiled, opts Options) (*Engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxTuples <= 0 {
		opts.MaxTuples = 64
	}
	if opts.CorpusCap <= 0 {
		opts.CorpusCap = 256
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 30 * time.Second
	}
	if opts.Optimize {
		// Swap in the optimized program on a local copy — the caller's
		// Compiled (possibly shared across workers) is left untouched.
		p, _, err := opt.Optimize(c.Prog, c.Plan, opt.Config{Seed: opts.Seed})
		if err != nil {
			return nil, err
		}
		c2 := *c
		c2.Prog = p
		c = &c2
	}
	rec := coverage.NewRecorder(c.Plan)
	rng := rand.New(rand.NewSource(opts.Seed))
	e := &Engine{
		c:          c,
		rec:        rec,
		m:          vm.NewBackend(opts.Backend, c.Prog, rec),
		opts:       opts,
		rng:        rng,
		mut:        NewMutator(c.Prog.In, c.Prog.TupleSize(), opts.MaxTuples, rng),
		bmut:       NewByteMutator(opts.MaxTuples*c.Prog.TupleSize(), rng),
		tuple:      c.Prog.TupleSize(),
		seen:       make([]uint8, c.Plan.NumBranches),
		last:       make([]uint8, c.Plan.NumBranches),
		tupleBuf:   make([]uint64, len(c.Prog.In)),
		findingIdx: map[string]int{},
		fpLoop:     "fuzz.loop",
	}
	if opts.Label != "" {
		e.fpLoop = "fuzz.loop:" + opts.Label
	}
	e.m.SetFuel(opts.Fuel)
	for i, f := range c.Prog.Out {
		if f.Type.IsFloat() {
			e.floatOuts = append(e.floatOuts, floatOut{idx: i, dt: f.Type, name: f.Name})
		}
	}
	if !opts.NoHints && opts.Mode != ModeFuzzOnly {
		e.mut.SetHints(codegen.FieldHints(c.Prog))
	}
	if opts.Ranges != nil {
		e.mut.SetRanges(opts.Ranges)
	}
	e.buildMask()
	if opts.Directed && opts.Mode != ModeFuzzOnly {
		e.influence = analysis.ComputeInfluence(c.Prog, c.Plan)
	}
	if len(opts.MutantBias) > 0 && opts.Mode != ModeFuzzOnly {
		e.mutantBias = opts.MutantBias
	}
	e.refreshBias()
	if opts.ResumeFrom != "" {
		cp, err := LoadCheckpoint(opts.ResumeFrom)
		switch {
		case err == nil:
			if cp.Model != c.Prog.Name {
				return nil, fmt.Errorf("fuzz: checkpoint %s is for model %q, engine compiled %q",
					opts.ResumeFrom, cp.Model, c.Prog.Name)
			}
			e.resumed = cp
		case os.IsNotExist(err):
			// First run of a resumable campaign: nothing to restore yet.
		default:
			return nil, err
		}
	}
	return e, nil
}

// MustEngine is NewEngine for callers with static, known-good options
// (benchmarks, examples); it panics on invalid options.
func MustEngine(c *codegen.Compiled, opts Options) *Engine {
	e, err := NewEngine(c, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// Stop requests a clean campaign stop: Run finishes the in-flight execution,
// flushes the final checkpoint and returns its result. Safe to call from any
// goroutine (the CLI's signal handler).
func (e *Engine) Stop() { e.stopFlag.Store(true) }

// Inject delivers a foreign input — typically one that hit globally-new
// coverage on another shard — into this engine's corpus pipeline. Safe to
// call from any goroutine; the input is copied, queued, and executed by the
// run loop like any candidate, so it only enters the corpus if it carries
// coverage (or metric) value for *this* engine. Injections delivered after
// Run returns are ignored.
func (e *Engine) Inject(data []byte) {
	cp := append([]byte(nil), data...)
	e.inboxMu.Lock()
	e.inbox = append(e.inbox, cp)
	e.inboxMu.Unlock()
	e.inboxFlag.Store(true)
}

// drainInbox executes queued cross-pollinated inputs. The fast path is one
// relaxed atomic load, so an engine outside a campaign pays nothing.
func (e *Engine) drainInbox() {
	if !e.inboxFlag.Load() {
		return
	}
	e.inboxMu.Lock()
	batch := e.inbox
	e.inbox = nil
	e.inboxFlag.Store(false)
	e.inboxMu.Unlock()
	for _, d := range batch {
		if e.tryInput(d) {
			e.injectedAdmitted++
		}
	}
}

// LiveStats returns the engine's most recent status snapshot. Safe to call
// from any goroutine.
func (e *Engine) LiveStats() LiveStats {
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	return e.live
}

// Cases returns copies of the coverage-carrying inputs emitted so far — the
// exportable corpus of a running campaign. Safe to call from any goroutine.
func (e *Engine) Cases() [][]byte {
	e.liveMu.Lock()
	defer e.liveMu.Unlock()
	out := make([][]byte, len(e.cases))
	for i := range e.cases {
		out[i] = append([]byte(nil), e.cases[i].Data...)
	}
	return out
}

// updateLive refreshes the cross-goroutine status mirror; called once per
// executed input (the lock is uncontended next to a model execution).
func (e *Engine) updateLive() {
	e.liveMu.Lock()
	e.live = LiveStats{
		Execs:            e.execs,
		Steps:            e.steps,
		Corpus:           len(e.corpus),
		Covered:          e.coveredCount,
		Cases:            len(e.cases),
		Violations:       len(e.violations),
		Findings:         len(e.findings),
		InjectedAdmitted: e.injectedAdmitted,
		FieldHits:        e.mut.FieldHits(),
		DeadObjectives:   e.c.Plan.DeadCount(),
		LastCheckpoint:   e.lastCkptOK,
	}
	for _, f := range e.findings {
		if int(f.Kind) < numFindingKinds {
			e.live.FindingsByKind[f.Kind]++
		}
	}
	e.liveMu.Unlock()
}

// buildMask marks which branch slots the fuzzer's feedback can observe. In
// model-oriented modes every probe is visible. In fuzz-only mode, only
// decisions that compile to actual jumps at -O2 remain: control-flow
// decisions (If, SwitchCase, script ifs, chart transitions, subsystem
// enables). Boolean operators, data switches, min/max and saturations
// compile branchlessly, and condition probes do not exist at the code level
// — the paper's Figure 8 analysis. Slots the static analysis proved dead
// (Plan.Dead) are invisible to feedback and excluded from the timeline
// denominators, matching the dead-adjusted Report.
func (e *Engine) buildMask() {
	p := e.c.Plan
	e.mask = make([]bool, p.NumBranches)
	e.isOutcome = make([]bool, p.NumBranches)
	for i := range p.Decisions {
		d := &p.Decisions[i]
		visible := true
		if e.opts.Mode == ModeFuzzOnly {
			switch d.Kind {
			case coverage.KindIf, coverage.KindSwitchCase, coverage.KindScriptIf,
				coverage.KindTransition, coverage.KindEnable, coverage.KindTrigger:
				visible = true
			default:
				visible = false
			}
		}
		for k := 0; k < d.NumOutcomes; k++ {
			b := d.OutcomeBase + k
			e.isOutcome[b] = true
			if p.IsDead(b) {
				continue
			}
			e.totOutcomes++
			e.mask[b] = visible
		}
	}
	for i := range p.Conds {
		c := &p.Conds[i]
		visible := e.opts.Mode != ModeFuzzOnly
		for _, b := range []int{c.BranchBase, c.BranchBase + 1} {
			if p.IsDead(b) {
				continue
			}
			e.totConds++
			e.mask[b] = visible
		}
	}
	for i := range p.Decisions {
		d := &p.Decisions[i]
		if d.Kind == coverage.KindAssertion {
			e.assertBranches = append(e.assertBranches, d.OutcomeBase) // outcome 0 = violated
		}
	}
}

// Recorder exposes the campaign's coverage recorder (for reports).
func (e *Engine) Recorder() *coverage.Recorder { return e.rec }

// RunInput executes one test input through the fuzz driver — Algorithm 1.
// It returns the Iteration Difference Coverage metric, how many
// feedback-visible branches were new, and how many branches were new at all.
//
// Execution is fault-isolated: a panic in the interpreter is recovered, a
// fuel-exhausted step is aborted, and a NaN/Inf outport is flagged — each
// becomes a deduplicated Finding and the campaign continues with the partial
// metric accumulated so far.
func (e *Engine) RunInput(data []byte) (metric int, newMasked, newAny int) {
	rec := e.rec
	e.lastViolated = false
	e.lastInputFuel = 0
	step := -1
	defer func() {
		e.execs++
		if r := recover(); r != nil {
			site := fmt.Sprint(r)
			e.recordFinding(FindingCrash, data, step, site,
				fmt.Sprintf("recovered panic at step %d: %v", step, r))
		}
	}()
	rec.BeginStep()
	initErr := e.m.Init()
	e.lastInputFuel += e.m.LastFuelUsed()
	// Coverage triggered by initialization (e.g. chart entry actions)
	// counts toward totals but not toward the iteration metric.
	for b, v := range rec.Curr {
		if v != 0 && e.seen[b] == 0 {
			e.seen[b] = 1
			e.noteNewBranch(b, &newMasked, &newAny)
		}
	}
	if initErr != nil {
		e.noteHang(data, step, initErr)
		return metric, newMasked, newAny
	}
	for i := range e.last {
		e.last[i] = 0
	}

	n := len(data) / e.tuple
	fields := e.c.Prog.In
	for it := 0; it < n; it++ {
		step = it
		base := it * e.tuple
		for fi, f := range fields {
			e.tupleBuf[fi] = model.GetRaw(f.Type, data[base+f.Offset:])
		}
		rec.BeginStep()
		stepErr := e.m.Step(e.tupleBuf)
		e.lastInputFuel += e.m.LastFuelUsed()
		e.steps++
		curr := rec.Curr
		for _, br := range e.assertBranches {
			if curr[br] != 0 {
				e.lastViolated = true
			}
		}
		last := e.last
		for b := range curr {
			c := curr[b]
			if c != 0 && e.seen[b] == 0 {
				e.seen[b] = 1
				e.noteNewBranch(b, &newMasked, &newAny)
			}
			if c != last[b] {
				metric++
				last[b] = c
			}
		}
		if stepErr != nil {
			// The aborted step's partial coverage above still counts; the
			// remaining iterations of this input are abandoned.
			e.noteHang(data, it, stepErr)
			break
		}
		if len(e.floatOuts) > 0 {
			e.checkNumeric(data, it)
		}
	}
	return metric, newMasked, newAny
}

// checkNumeric flags NaN or Inf on any float outport after a step — numeric
// poison that a downstream controller would consume silently.
func (e *Engine) checkNumeric(data []byte, step int) {
	out := e.m.Out()
	for _, fo := range e.floatOuts {
		v := model.DecodeFloat(fo.dt, out[fo.idx])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			e.recordFinding(FindingNumericAnomaly, data, step, "out:"+fo.name,
				fmt.Sprintf("outport %s = %g at step %d", fo.name, v, step))
		}
	}
}

func (e *Engine) noteNewBranch(b int, newMasked, newAny *int) {
	*newAny++
	if e.mask[b] {
		*newMasked++
	}
	if e.c.Plan.IsDead(b) {
		// A concretely-reached "dead" slot means the analysis was unsound;
		// keep it out of the incremental counters so the timeline never
		// exceeds its dead-adjusted denominators.
		return
	}
	e.coveredCount++
	if e.isOutcome[b] {
		e.covOutcomes++
	} else {
		e.covConds++
	}
}

// refreshBias recomputes the mutator's field weights toward the objectives
// still unsatisfied (and not statically dead), plus any mutation-testing
// energy for fields that reach surviving mutants. Called at engine start
// and after every input that reaches new coverage.
func (e *Engine) refreshBias() {
	if e.influence == nil && e.mutantBias == nil {
		return
	}
	var w []float64
	if e.influence != nil {
		p := e.c.Plan
		w = e.influence.Weights(func(b int) bool {
			return e.seen[b] == 0 && !p.IsDead(b)
		})
	} else {
		// Not directed: flat baseline, the mutant energy alone skews it.
		w = make([]float64, len(e.c.Prog.In))
		for i := range w {
			w[i] = 1
		}
	}
	for i, b := range e.mutantBias {
		if i < len(w) {
			w[i] += b
		}
	}
	e.mut.SetFieldBias(w)
}

// Run executes the fuzzing campaign. It survives hanging, panicking and
// numerically anomalous inputs (triaged into Result.Findings), honours an
// external stop request, and — when checkpointing is configured — persists
// the campaign state so a killed process can resume where it stopped.
func (e *Engine) Run() *Result {
	e.start = time.Now()
	e.lastCkpt = e.start
	if e.opts.Stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-e.opts.Stop:
				e.Stop()
			case <-done:
			}
		}()
	}
	e.samplePoint()

	// A resumed campaign replays its saved corpus first: that regenerates
	// coverage, cases and findings, then restores weights and counters.
	if e.resumed != nil {
		e.replayCheckpoint(e.resumed)
		e.resumed = nil
	}

	// Seed corpus: the empty input, a single zero tuple, a few random
	// streams, and any caller-provided seeds (e.g. constraint-solver
	// witnesses in hybrid mode).
	seeds := [][]byte{
		{},
		make([]byte, e.tuple),
	}
	for i := 0; i < 4; i++ {
		var s []byte
		for k := 0; k < 4+e.rng.Intn(8); k++ {
			s = append(s, e.mut.RandomTuple()...)
		}
		seeds = append(seeds, s)
	}
	seeds = append(seeds, e.opts.SeedInputs...)
	for _, s := range seeds {
		e.tryInput(s)
	}

	// The wall-clock deadline is normally tested every checkEvery execs to
	// keep time.Since off the hot path; any input that burned at least
	// fuelWarn instructions (a near-hang) forces an immediate re-check so
	// one slow input cannot overshoot the budget by a whole batch.
	checkEvery := int64(256)
	fuelWarn := e.m.Fuel() / 8
	stopped := false
	for {
		if e.stopFlag.Load() {
			stopped = true
			break
		}
		// Chaos-build failpoint: an injected delay simulates a wedged shard
		// (the supervisor's watchdog must catch it), an injected panic a
		// crashing one. Compiles to nothing in production builds.
		_ = faultinject.Eval(e.fpLoop)
		e.drainInbox()
		if e.opts.MaxExecs > 0 && e.execs >= e.opts.MaxExecs {
			break
		}
		if e.opts.Budget > 0 && e.execs%checkEvery == 0 && time.Since(e.start) >= e.opts.Budget {
			break
		}
		if e.opts.MaxExecs == 0 && e.opts.Budget == 0 {
			break // resume-replay only: no further budget
		}
		if e.execs%checkEvery == 0 {
			e.maybeCheckpoint()
		}
		parent := e.pick()
		other := e.pick()
		var cand []byte
		if e.opts.Mode == ModeFuzzOnly {
			cand = e.bmut.Mutate(parent, other)
		} else {
			cand = e.mut.Mutate(parent, other)
		}
		e.tryInput(cand)
		if e.lastInputFuel >= fuelWarn && e.opts.Budget > 0 && time.Since(e.start) >= e.opts.Budget {
			break
		}
	}

	if e.opts.CheckpointPath != "" && !e.ckptOff.Load() {
		e.flushCheckpoint()
	}
	e.samplePoint()
	return &Result{
		Report: e.rec.Report(),
		Suite: &testcase.Suite{
			Model:  e.c.Prog.Name,
			Layout: model.Layout{Fields: e.c.Prog.In, TupleSize: e.tuple},
			Cases:  e.cases,
		},
		Execs:           e.execs,
		Steps:           e.steps,
		Timeline:        e.timeline,
		Corpus:          len(e.corpus),
		Violations:      e.violations,
		Findings:        e.findings,
		DroppedFindings: e.droppedFindings,
		Stopped:         stopped,
		CheckpointErr:   e.ckptErr,
	}
}

// tryInput runs one candidate and applies the corpus/test-case policy: any
// input hitting new model coverage is emitted as a test case; inputs with
// new visible coverage or outstanding iteration-difference metric join the
// corpus (weighted by the metric in model-oriented mode). It reports whether
// the input was admitted to the corpus.
func (e *Engine) tryInput(data []byte) bool {
	metric, newMasked, newAny := e.RunInput(data)

	if newAny > 0 {
		tc := testcase.Case{
			Data:        append([]byte(nil), data...),
			Found:       time.Since(e.start),
			Metric:      metric,
			NewBranches: newAny,
		}
		e.liveMu.Lock()
		e.cases = append(e.cases, tc)
		e.liveMu.Unlock()
		e.samplePoint()
		e.refreshBias()
		if e.opts.OnNewCoverage != nil {
			e.opts.OnNewCoverage(data, e.seen)
		}
	}
	if e.lastViolated && (newAny > 0 || len(e.violations) < 8) {
		e.violations = append(e.violations, testcase.Case{
			Data:   append([]byte(nil), data...),
			Found:  time.Since(e.start),
			Metric: metric,
		})
	}

	admit := newMasked > 0
	weight := 1.0
	if e.opts.Mode == ModeModelOriented {
		// Weight by iteration-difference *density* (metric per iteration):
		// raw metric grows with input length, and proportional weighting
		// would collapse the corpus onto a few long attractors. Density
		// rewards inputs whose iterations keep changing the triggered
		// logic — the diversification Algorithm 1 is after.
		iters := len(data)/e.tuple + 1
		weight = 1 + float64(metric)/float64(iters)
		if metric >= 2*e.bestRawMetric && metric > 0 {
			// A decisive iteration-difference record diversifies execution
			// paths even without new branches (the paper's corpus policy).
			// Requiring the record to double keeps such entries to a
			// handful, so they add diversity without draining mutation
			// energy from the coverage frontier.
			e.bestRawMetric = metric
			admit = admit || len(e.corpus) > 0
		}
	}
	if admit {
		e.corpus = append(e.corpus, entry{
			data:   append([]byte(nil), data...),
			weight: weight,
			pinned: newMasked > 0,
		})
		if len(e.corpus) > e.opts.CorpusCap {
			e.evict()
		}
	}
	e.updateLive()
	return admit
}

// evict removes the lowest-weight unpinned corpus entry; coverage-finding
// entries are only displaced by each other (oldest first) when the whole
// corpus is pinned.
func (e *Engine) evict() {
	lo := -1
	for i, en := range e.corpus {
		if en.pinned {
			continue
		}
		if lo < 0 || en.weight < e.corpus[lo].weight {
			lo = i
		}
	}
	if lo < 0 {
		lo = 0 // everything pinned: drop the oldest
	}
	e.corpus = append(e.corpus[:lo], e.corpus[lo+1:]...)
}

// pick selects a corpus entry. Selection is uniform with a mild recency
// bias; in model-oriented mode one pick in four is drawn weighted by the
// iteration-difference density, steering some mutation energy toward
// behaviourally diverse inputs without starving the coverage frontier.
func (e *Engine) pick() []byte {
	if len(e.corpus) == 0 {
		return e.mut.RandomTuple()
	}
	if e.opts.Mode == ModeModelOriented && e.rng.Intn(4) == 0 {
		total := 0.0
		for _, en := range e.corpus {
			total += en.weight
		}
		x := e.rng.Float64() * total
		for _, en := range e.corpus {
			x -= en.weight
			if x <= 0 {
				return en.data
			}
		}
	}
	return e.corpus[e.rng.Intn(len(e.corpus))].data
}

// samplePoint appends a coverage-timeline sample (cheap: incremental
// counters, no MCDC pairing).
func (e *Engine) samplePoint() {
	dec := 100.0
	if e.totOutcomes > 0 {
		dec = 100 * float64(e.covOutcomes) / float64(e.totOutcomes)
	}
	cond := 100.0
	if e.totConds > 0 {
		cond = 100 * float64(e.covConds) / float64(e.totConds)
	}
	e.timeline = append(e.timeline, Point{
		Elapsed:   time.Since(e.start),
		Execs:     e.execs,
		Decision:  dec,
		Condition: cond,
		Branches:  e.coveredCount,
	})
}
