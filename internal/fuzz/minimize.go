package fuzz

import (
	"sort"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/model"
	"cftcg/internal/testcase"
	"cftcg/internal/vm"
)

// Minimize greedily reduces a test suite to a subset with the same model
// coverage: cases are replayed in descending new-branch order and kept only
// when they contribute at least one branch the kept set has not reached.
// The classic test-suite reduction pass a generation tool runs before
// handing the suite to engineers.
func Minimize(c *codegen.Compiled, cases []testcase.Case) []testcase.Case {
	rec := coverage.NewRecorder(c.Plan)
	m := vm.New(c.Prog, rec)
	tuple := c.Prog.TupleSize()
	fields := c.Prog.In
	in := make([]uint64, len(fields))

	// coverageOf replays one case into a fresh per-case bitmap. A case that
	// hangs mid-replay keeps the coverage accumulated up to the abort.
	coverageOf := func(data []byte) []uint8 {
		bits := make([]uint8, c.Plan.NumBranches)
		if m.Init() != nil {
			return bits
		}
		n := 0
		if tuple > 0 {
			n = len(data) / tuple
		}
		for it := 0; it < n; it++ {
			base := it * tuple
			for fi, f := range fields {
				in[fi] = model.GetRaw(f.Type, data[base+f.Offset:])
			}
			rec.BeginStep()
			err := m.Step(in)
			for b, v := range rec.Curr {
				if v != 0 {
					bits[b] = 1
				}
			}
			if err != nil {
				break
			}
		}
		return bits
	}

	type scored struct {
		tc   testcase.Case
		bits []uint8
	}
	all := make([]scored, len(cases))
	for i, tc := range cases {
		all[i] = scored{tc: tc, bits: coverageOf(tc.Data)}
	}
	// Largest contributors first makes the greedy pass effective.
	sort.SliceStable(all, func(i, j int) bool {
		return count(all[i].bits) > count(all[j].bits)
	})

	kept := make([]testcase.Case, 0, len(cases))
	covered := make([]uint8, c.Plan.NumBranches)
	for _, s := range all {
		adds := false
		for b, v := range s.bits {
			if v != 0 && covered[b] == 0 {
				adds = true
				break
			}
		}
		if !adds {
			continue
		}
		for b, v := range s.bits {
			if v != 0 {
				covered[b] = 1
			}
		}
		kept = append(kept, s.tc)
	}
	return kept
}

func count(bits []uint8) int {
	n := 0
	for _, v := range bits {
		if v != 0 {
			n++
		}
	}
	return n
}

// Trim shortens one test case while preserving its coverage: tuples are
// removed in halving passes (drop the back half, the front half, then
// single tuples) and a removal is kept only if the case still covers every
// branch it covered before. The per-input analogue of suite minimization —
// what LibFuzzer's -minimize_crash does for crashes, applied to coverage.
func Trim(c *codegen.Compiled, data []byte) []byte {
	tuple := c.Prog.TupleSize()
	if tuple == 0 || len(data) < 2*tuple {
		return data
	}
	rec := coverage.NewRecorder(c.Plan)
	m := vm.New(c.Prog, rec)
	fields := c.Prog.In
	in := make([]uint64, len(fields))

	coverageOf := func(d []byte) []uint8 {
		bits := make([]uint8, c.Plan.NumBranches)
		if m.Init() != nil {
			return bits
		}
		for it := 0; it < len(d)/tuple; it++ {
			base := it * tuple
			for fi, f := range fields {
				in[fi] = model.GetRaw(f.Type, d[base+f.Offset:])
			}
			rec.BeginStep()
			err := m.Step(in)
			for b, v := range rec.Curr {
				if v != 0 {
					bits[b] = 1
				}
			}
			if err != nil {
				break
			}
		}
		return bits
	}
	covers := func(have, want []uint8) bool {
		for b, v := range want {
			if v != 0 && have[b] == 0 {
				return false
			}
		}
		return true
	}

	want := coverageOf(data)
	cur := append([]byte(nil), data...)

	// Halving passes from the back, then the front.
	for len(cur) >= 2*tuple {
		nt := len(cur) / tuple
		half := (nt / 2) * tuple
		if half == 0 {
			break
		}
		if cand := cur[:len(cur)-half]; covers(coverageOf(cand), want) {
			cur = append([]byte(nil), cand...)
			continue
		}
		if cand := cur[half:]; covers(coverageOf(cand), want) {
			cur = append([]byte(nil), cand...)
			continue
		}
		break
	}
	// Single-tuple removal sweep.
	for i := 0; i < len(cur)/tuple; {
		cand := make([]byte, 0, len(cur)-tuple)
		cand = append(cand, cur[:i*tuple]...)
		cand = append(cand, cur[(i+1)*tuple:]...)
		if len(cand) > 0 && covers(coverageOf(cand), want) {
			cur = cand
			continue // same index now holds the next tuple
		}
		i++
	}
	return cur
}
