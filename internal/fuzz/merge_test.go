package fuzz

import (
	"reflect"
	"testing"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/model"
)

func TestMergeFindingsDedupsBySite(t *testing.T) {
	dst := []Finding{
		{Kind: FindingHang, Site: "loop1", Count: 2, Found: 5 * time.Second, Input: []byte{1}},
		{Kind: FindingCrash, Site: "div", Count: 1, Found: time.Second},
	}
	src := []Finding{
		{Kind: FindingHang, Site: "loop1", Count: 3, Found: 2 * time.Second, Input: []byte{9}},
		{Kind: FindingNumericAnomaly, Site: "out:y", Count: 1, Found: 3 * time.Second},
		// Same site string, different kind: must stay distinct.
		{Kind: FindingCrash, Site: "loop1", Count: 1, Found: 4 * time.Second},
	}
	got := MergeFindings(dst, src)
	if len(got) != 4 {
		t.Fatalf("want 4 distinct findings, got %d: %v", len(got), got)
	}
	hang := got[0]
	if hang.Count != 5 {
		t.Errorf("hang count should sum 2+3, got %d", hang.Count)
	}
	if hang.Found != 2*time.Second {
		t.Errorf("merged finding should keep the earliest discovery time, got %s", hang.Found)
	}
	if !reflect.DeepEqual(hang.Input, []byte{1}) {
		t.Errorf("merged finding should keep the first reproducer, got %v", hang.Input)
	}
	if got := MergeFindings(nil, nil); got != nil {
		t.Errorf("empty merge: got %v", got)
	}
}

// TestRunParallelEnsembleDeterminism: same seed + same worker count must
// yield the identical merged coverage report across two runs — the ensemble
// merge introduces no scheduling-dependent coverage.
func TestRunParallelEnsembleDeterminism(t *testing.T) {
	c := minimizeTarget(t)
	opts := Options{Seed: 11, MaxExecs: 2000}
	r1, err := RunParallel(c, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunParallel(c, opts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Report, r2.Report) {
		t.Errorf("merged coverage reports differ:\n%v\nvs\n%v", r1.Report, r2.Report)
	}
	if r1.Execs != r2.Execs || r1.Steps != r2.Steps {
		t.Errorf("work counters differ: execs %d/%d steps %d/%d",
			r1.Execs, r2.Execs, r1.Steps, r2.Steps)
	}
	if len(r1.Suite.Cases) != len(r2.Suite.Cases) {
		t.Errorf("suite sizes differ: %d vs %d", len(r1.Suite.Cases), len(r2.Suite.Cases))
	}
}

// TestRunParallelMergesTimelines: the merged timeline must reflect the whole
// ensemble — its final execution count is the sum over workers, not worker
// 0's alone.
func TestRunParallelMergesTimelines(t *testing.T) {
	c := minimizeTarget(t)
	res, err := RunParallel(c, Options{Seed: 7, MaxExecs: 1500}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("merged timeline empty")
	}
	last := res.Timeline[len(res.Timeline)-1]
	if last.Execs != res.Execs {
		t.Errorf("ensemble timeline should end at the summed exec count %d, got %d",
			res.Execs, last.Execs)
	}
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Execs < res.Timeline[i-1].Execs {
			t.Fatalf("merged timeline execs not monotone at %d", i)
		}
		if res.Timeline[i].Elapsed < res.Timeline[i-1].Elapsed {
			t.Fatalf("merged timeline not time-ordered at %d", i)
		}
	}
}

// magicModel has a branch that undirected mutation essentially never hits:
// an equality against a magic constant. With hints disabled (the dictionary
// would leak the constant to the mutator), the eq-true outcome is only
// reachable by being *given* the input — the shape cross-pollination must
// transport between shards.
func magicModel(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("Magic")
	u := b.Inport("u", model.Int32)
	eq := b.Rel("==", u, b.ConstT(model.Int32, 123456789))
	b.Outport("y", model.Int32, b.Switch(eq, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0)))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestEngineInjectCrossPollination: an input delivered via Inject that
// carries coverage new to the engine must enter its corpus and be counted
// as an admitted injection.
func TestEngineInjectCrossPollination(t *testing.T) {
	c := magicModel(t)
	e := MustEngine(c, Options{Seed: 5, MaxExecs: 2000, NoHints: true})
	e.Inject(caseOf(123456789).Data)
	res := e.Run()
	if got := e.LiveStats().InjectedAdmitted; got < 1 {
		t.Errorf("injected magic input should be admitted to the corpus, got %d", got)
	}
	if res.Report.Decision() < 100 {
		t.Errorf("injected input should complete decision coverage, got %.1f%%", res.Report.Decision())
	}
}
