package fuzz

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cftcg/internal/faultinject"
	"cftcg/internal/wal"
)

// CheckpointVersion is bumped whenever the on-disk format changes
// incompatibly; loading rejects mismatched versions.
const CheckpointVersion = 1

// CheckpointEntry is one serialized corpus member.
type CheckpointEntry struct {
	Data   []byte  `json:"data"`
	Weight float64 `json:"weight"`
	Pinned bool    `json:"pinned,omitempty"`
}

// Checkpoint is the crash-safe snapshot of a fuzzing campaign: everything a
// restarted process needs to continue where the previous one was killed.
// Coverage state is not serialized directly — resuming replays the corpus
// through the instrumented program, which regenerates the coverage recorder,
// the seen-branch bitmap, and the emitted test cases exactly.
type Checkpoint struct {
	Version       int               `json:"version"`
	Model         string            `json:"model"`
	Mode          string            `json:"mode"`
	Seed          int64             `json:"seed"`
	Execs         int64             `json:"execs"`
	Steps         int64             `json:"steps"`
	BestRawMetric int               `json:"best_raw_metric,omitempty"`
	Corpus        []CheckpointEntry `json:"corpus"`
	Findings      []Finding         `json:"findings,omitempty"`
	// Seen is the covered-branch bitmap at save time, kept for inspection
	// and for the resume sanity check that replay reproduced the coverage.
	Seen    []byte    `json:"seen,omitempty"`
	SavedAt time.Time `json:"saved_at"`
}

// Snapshot captures the engine's current campaign state as a checkpoint.
func (e *Engine) Snapshot() *Checkpoint {
	cp := &Checkpoint{
		Version:       CheckpointVersion,
		Model:         e.c.Prog.Name,
		Mode:          e.opts.Mode.String(),
		Seed:          e.opts.Seed,
		Execs:         e.execs,
		Steps:         e.steps,
		BestRawMetric: e.bestRawMetric,
		Seen:          append([]byte(nil), e.seen...),
		SavedAt:       time.Now(),
	}
	for _, en := range e.corpus {
		cp.Corpus = append(cp.Corpus, CheckpointEntry{Data: en.data, Weight: en.weight, Pinned: en.pinned})
	}
	cp.Findings = append(cp.Findings, e.findings...)
	return cp
}

// WriteCheckpoint persists a checkpoint atomically and durably: the JSON is
// written to a temporary sibling file, synced, renamed into place, and the
// parent directory is synced so the rename itself survives power loss. A
// crash mid-save leaves the previous checkpoint intact rather than a
// truncated one.
func WriteCheckpoint(path string, cp *Checkpoint) error {
	if err := faultinject.Eval("checkpoint.write"); err != nil {
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("fuzz: marshal checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	if err := faultinject.Eval("checkpoint.rename"); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	if err := wal.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("fuzz: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("fuzz: checkpoint %s: %w", path, err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("fuzz: checkpoint %s: version %d, want %d", path, cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// WriteCheckpoint saves the engine's current state to path (atomic).
func (e *Engine) WriteCheckpoint(path string) error {
	return WriteCheckpoint(path, e.Snapshot())
}

// ShardCheckpointPath derives the checkpoint file for one shard of a
// multi-shard campaign: a single checkpoint file cannot represent
// independent corpora, so each shard persists (and resumes) its own
// suffixed sibling of the campaign's base path. An empty base path stays
// empty — checkpointing off stays off per shard.
func ShardCheckpointPath(base string, shard int) string {
	if base == "" {
		return ""
	}
	return fmt.Sprintf("%s.shard%d", base, shard)
}

// maybeCheckpoint writes a periodic checkpoint when one is configured and
// the save interval has elapsed. Save errors are remembered (surfaced on the
// final flush) but do not abort the campaign.
func (e *Engine) maybeCheckpoint() {
	if e.opts.CheckpointPath == "" || e.ckptOff.Load() || time.Since(e.lastCkpt) < e.opts.CheckpointEvery {
		return
	}
	e.lastCkpt = time.Now()
	e.flushCheckpoint()
}

// flushCheckpoint writes one checkpoint, records the outcome for the live
// status plane, and notifies the campaign observer.
func (e *Engine) flushCheckpoint() {
	e.ckptErr = e.WriteCheckpoint(e.opts.CheckpointPath)
	if e.ckptErr == nil {
		e.lastCkptOK = time.Now()
		e.updateLive()
	}
	if e.opts.OnCheckpoint != nil {
		e.opts.OnCheckpoint(e.ckptErr)
	}
}

// DisableCheckpoint permanently stops this engine writing checkpoints. The
// shard supervisor calls it before abandoning a wedged engine so a zombie
// goroutine waking up later cannot clobber its replacement's checkpoint file
// with stale state. Safe to call from any goroutine.
func (e *Engine) DisableCheckpoint() { e.ckptOff.Store(true) }

// replayCheckpoint restores a loaded checkpoint: every saved corpus entry is
// replayed through the instrumented program (rebuilding coverage, cases and
// the corpus admission state), then the corpus and counters are overwritten
// with the saved ones so weights, eviction state and budget accounting
// continue exactly where the killed campaign stopped.
func (e *Engine) replayCheckpoint(cp *Checkpoint) {
	for _, en := range cp.Corpus {
		e.tryInput(en.Data)
	}
	e.corpus = e.corpus[:0]
	for _, en := range cp.Corpus {
		e.corpus = append(e.corpus, entry{
			data:   append([]byte(nil), en.Data...),
			weight: en.Weight,
			pinned: en.Pinned,
		})
	}
	e.bestRawMetric = cp.BestRawMetric
	e.execs = cp.Execs
	e.steps = cp.Steps
	// Restore triaged findings (replay may have re-found some; the saved
	// set is authoritative for first-seen inputs and counts).
	e.findings = e.findings[:0]
	e.findingIdx = map[string]int{}
	for _, f := range cp.Findings {
		e.findingIdx[findingKey(f.Kind, f.Site)] = len(e.findings)
		e.findings = append(e.findings, f)
	}
	e.updateLive()
}
