package fuzz

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cftcg/internal/model"
)

func testFields() []model.Field {
	return []model.Field{
		{Name: "a", Type: model.Int8, Offset: 0},
		{Name: "b", Type: model.Int32, Offset: 1},
		{Name: "c", Type: model.Float64, Offset: 5},
	}
}

const testTuple = 13

// Property: every Table 1 strategy preserves tuple alignment — the output
// length is always a whole number of tuples. This is exactly the property
// the paper's Figure 8 analysis says generic byte mutation violates.
func TestStrategiesPreserveAlignment(t *testing.T) {
	prop := func(seed int64, nData, nOther uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mut := NewMutator(testFields(), testTuple, 64, rng)
		data := make([]byte, int(nData%20)*testTuple)
		other := make([]byte, int(nOther%20)*testTuple)
		rng.Read(data)
		rng.Read(other)
		for s := ChangeBinaryInteger; s <= TuplesCrossOver; s++ {
			out := mut.Apply(s, data, other)
			if len(out)%testTuple != 0 {
				t.Logf("strategy %s misaligned: %d bytes", s, len(out))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Mutate never exceeds the tuple cap and never returns empty.
func TestMutateRespectsCap(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		mut := NewMutator(testFields(), testTuple, 8, rng)
		data := make([]byte, int(n%16)*testTuple)
		rng.Read(data)
		out := mut.Mutate(data, data)
		return len(out) > 0 && len(out) <= 8*testTuple && len(out)%testTuple == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Apply does not modify its input slice (copy-on-write).
func TestApplyDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mut := NewMutator(testFields(), testTuple, 64, rng)
	data := make([]byte, 5*testTuple)
	rng.Read(data)
	orig := append([]byte(nil), data...)
	for s := ChangeBinaryInteger; s <= TuplesCrossOver; s++ {
		for i := 0; i < 50; i++ {
			mut.Apply(s, data, orig)
		}
	}
	if string(data) != string(orig) {
		t.Error("Apply mutated the input slice")
	}
}

// ChangeBinaryInteger must only touch the targeted field's bytes within one
// tuple (field-wise mutation, Table 1).
func TestChangeIntegerIsFieldLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mut := NewMutator(testFields(), testTuple, 64, rng)
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 4*testTuple)
		rng.Read(data)
		before := append([]byte(nil), data...)
		out := mut.Apply(ChangeBinaryInteger, data, nil)
		if len(out) != len(before) {
			continue // fell back to insert (no int fields would be absurd here)
		}
		diff := 0
		for i := range out {
			if out[i] != before[i] {
				diff++
			}
		}
		// int8 (1 byte) or int32 (4 bytes) fields only.
		if diff > 4 {
			t.Fatalf("trial %d: %d bytes changed, expected <= 4", trial, diff)
		}
	}
}

func TestRandomTupleLength(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mut := NewMutator(testFields(), testTuple, 64, rng)
	for i := 0; i < 100; i++ {
		if got := len(mut.RandomTuple()); got != testTuple {
			t.Fatalf("random tuple length %d", got)
		}
	}
}

// The byte-level ablation mutator may misalign tuples — that is its point —
// but it must respect its length cap and never return empty.
func TestByteMutatorCap(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bm := NewByteMutator(100, rng)
		data := make([]byte, int(n%120))
		rng.Read(data)
		out := bm.Mutate(data, data)
		return len(out) > 0 && len(out) <= 100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestByteMutatorMisalignsEventually(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bm := NewByteMutator(1024, rng)
	data := make([]byte, 4*testTuple)
	misaligned := false
	for i := 0; i < 200 && !misaligned; i++ {
		out := bm.Mutate(data, data)
		if len(out)%testTuple != 0 {
			misaligned = true
		}
	}
	if !misaligned {
		t.Error("byte mutator never misaligned tuples — ablation would be meaningless")
	}
}

func TestStrategyNames(t *testing.T) {
	want := []string{
		"ChangeBinaryInteger", "ChangeBinaryFloat", "EraseTuples", "InsertTuple",
		"InsertRepeatedTuples", "ShuffleTuples", "CopyTuples", "TuplesCrossOver",
	}
	for i, w := range want {
		if Strategy(i).String() != w {
			t.Errorf("strategy %d: %s, want %s", i, Strategy(i), w)
		}
	}
}

// EraseTuples must never erase everything (it keeps at least one tuple).
func TestEraseKeepsSomething(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mut := NewMutator(testFields(), testTuple, 64, rng)
	for i := 0; i < 300; i++ {
		data := make([]byte, (1+rng.Intn(6))*testTuple)
		out := mut.Apply(EraseTuples, data, nil)
		if len(data) > testTuple && len(out) == 0 {
			t.Fatal("EraseTuples removed every tuple")
		}
	}
}
