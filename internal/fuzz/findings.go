package fuzz

import (
	"errors"
	"fmt"
	"time"

	"cftcg/internal/vm"
)

// FindingKind classifies a fault-tolerance finding. Industrial fuzzers treat
// these as first-class results next to coverage: a hanging or crashing input
// is a bug report, not a reason to lose the campaign.
type FindingKind uint8

const (
	// FindingCrash is a panic inside the execution stack, recovered by the
	// engine so the campaign continues.
	FindingCrash FindingKind = iota
	// FindingHang is an input whose execution exhausted the per-step
	// instruction fuel (a runaway loop on that input).
	FindingHang
	// FindingNumericAnomaly is a NaN or Inf observed on a model outport —
	// numerically poisoned state a controller downstream would ingest.
	FindingNumericAnomaly

	// numFindingKinds is the number of FindingKind values, for by-kind
	// counters (LiveStats, the daemon's /metrics plane).
	numFindingKinds = int(FindingNumericAnomaly) + 1
)

func (k FindingKind) String() string {
	switch k {
	case FindingCrash:
		return "crash"
	case FindingHang:
		return "hang"
	case FindingNumericAnomaly:
		return "numeric-anomaly"
	}
	return "finding(?)"
}

// Finding is one triaged fault observation: the offending input, where in
// the input it fired, and a site key used for deduplication (loop label for
// hangs, panic message for crashes, outport name for numeric anomalies).
type Finding struct {
	Kind   FindingKind   `json:"kind"`
	Input  []byte        `json:"input"`
	Step   int           `json:"step"` // model iteration; -1 = during init
	Site   string        `json:"site"`
	Detail string        `json:"detail"`
	Count  int           `json:"count"` // occurrences of this (kind, site)
	Found  time.Duration `json:"found"` // first occurrence, campaign-relative
}

func (f Finding) String() string {
	return fmt.Sprintf("%s at %s (step %d, %d occurrence(s)): %s",
		f.Kind, f.Site, f.Step, f.Count, f.Detail)
}

// maxFindings bounds stored findings; further distinct sites only bump
// DroppedFindings so a pathological model cannot balloon the result.
const maxFindings = 64

// findingKey is the deduplication identity of a finding: one bug report per
// (kind, site), shared by the engine, checkpoint restore and ensemble merge.
func findingKey(kind FindingKind, site string) string {
	return kind.String() + "|" + site
}

// MergeFindings folds src into dst, deduplicating by (kind, site): a site
// already present keeps its first reproducer (and earliest discovery time)
// and accumulates the occurrence count; new sites are appended in order.
// Both the parallel-worker merge and the campaign layer use this so every
// consumer agrees on what "the same bug" means.
func MergeFindings(dst, src []Finding) []Finding {
	if len(src) == 0 {
		return dst
	}
	idx := make(map[string]int, len(dst))
	for i, f := range dst {
		idx[findingKey(f.Kind, f.Site)] = i
	}
	for _, f := range src {
		key := findingKey(f.Kind, f.Site)
		if i, ok := idx[key]; ok {
			dst[i].Count += f.Count
			if f.Found < dst[i].Found {
				dst[i].Found = f.Found
			}
			continue
		}
		idx[key] = len(dst)
		dst = append(dst, f)
	}
	return dst
}

// recordFinding dedups by (kind, site): the first input reaching a site is
// kept as its reproducer, repeats only increment the count.
func (e *Engine) recordFinding(kind FindingKind, input []byte, step int, site, detail string) {
	key := findingKey(kind, site)
	if i, ok := e.findingIdx[key]; ok {
		e.findings[i].Count++
		return
	}
	if len(e.findings) >= maxFindings {
		e.droppedFindings++
		return
	}
	var found time.Duration
	if !e.start.IsZero() {
		found = time.Since(e.start)
	}
	e.findingIdx[key] = len(e.findings)
	e.findings = append(e.findings, Finding{
		Kind:   kind,
		Input:  append([]byte(nil), input...),
		Step:   step,
		Site:   site,
		Detail: detail,
		Count:  1,
		Found:  found,
	})
}

// noteHang classifies a *vm.HangError as a Hang finding keyed by the loop
// site the VM identified (falling back to the function and pc).
func (e *Engine) noteHang(input []byte, step int, err error) {
	site := ""
	var hang *vm.HangError
	if errors.As(err, &hang) {
		site = hang.Site
		if site == "" {
			site = fmt.Sprintf("%s@pc%d", hang.Func, hang.PC)
		}
	}
	e.recordFinding(FindingHang, input, step, site, err.Error())
}
