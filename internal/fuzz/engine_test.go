package fuzz

import (
	"bytes"
	"testing"

	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// switchOnly builds the minimal model for metric arithmetic: one Switch
// decision with two outcomes (2 branch slots total).
func switchOnly(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("SwitchOnly")
	in := b.Inport("u", model.Int8)
	out := b.Switch(in, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0))
	b.Outport("y", model.Int32, out)
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if c.Plan.NumBranches != 2 {
		t.Fatalf("want 2 branches, got %d", c.Plan.NumBranches)
	}
	return c
}

// TestIterationDifferenceMetric checks Algorithm 1's arithmetic on a case
// with hand-computable iteration coverage, in the spirit of the Figure 6
// worked example (sum of per-iteration branch-coverage differences).
func TestIterationDifferenceMetric(t *testing.T) {
	c := switchOnly(t)

	// Constant input: only the first iteration differs from the (empty)
	// previous coverage.
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	metric, _, newAny := e.RunInput([]byte{1, 1, 1})
	if metric != 1 {
		t.Errorf("constant input: want metric 1, got %d", metric)
	}
	if newAny != 1 {
		t.Errorf("constant input: want 1 new branch, got %d", newAny)
	}

	// Alternating input: each flip toggles two branch slots.
	e2 := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	metric2, _, new2 := e2.RunInput([]byte{1, 0, 1})
	// iter1: {T} vs {} -> 1; iter2: {F} vs {T} -> 2; iter3: {T} vs {F} -> 2.
	if metric2 != 5 {
		t.Errorf("alternating input: want metric 5, got %d", metric2)
	}
	if new2 != 2 {
		t.Errorf("alternating input: want 2 new branches, got %d", new2)
	}
}

// TestFigure6Schematic reproduces the shape of the paper's Figure 6: three
// iterations with coverage sets {A}, {A,B}, {B} over a 2-branch decision
// yield metric 1 + 1 + 1 ... adapted to our Switch: the exact sequence
// T, T, F gives 1 (iter1) + 0 (iter2) + 2 (iter3) = 3.
func TestFigure6Schematic(t *testing.T) {
	c := switchOnly(t)
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	metric, _, _ := e.RunInput([]byte{1, 1, 0})
	if metric != 3 {
		t.Errorf("want metric 3 (= 1+0+2), got %d", metric)
	}
}

func TestShortInputDiscarded(t *testing.T) {
	b := model.NewBuilder("TwoField")
	x := b.Inport("x", model.Int32)
	y := b.Inport("y", model.Int32)
	b.Outport("s", model.Int32, b.Add2(x, y))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	before := e.steps
	// 11 bytes = one full 8-byte tuple + 3 trailing bytes (discarded).
	e.RunInput(make([]byte, 11))
	if got := e.steps - before; got != 1 {
		t.Errorf("trailing bytes must be discarded: want 1 step, got %d", got)
	}
}

func TestEngineRunFindsCoverage(t *testing.T) {
	b := model.NewBuilder("Gated")
	u := b.Inport("u", model.Int32)
	// A chain requiring specific magnitudes: |u| in narrow band.
	a := b.Abs(u)
	band := b.And(b.Rel(">", a, b.ConstT(model.Int32, 1000)), b.Rel("<", a, b.ConstT(model.Int32, 1010)))
	out := b.Switch(band, b.ConstT(model.Int32, 7), b.ConstT(model.Int32, 3))
	b.Outport("y", model.Int32, out)
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}

	e := MustEngine(c, Options{Seed: 42, MaxExecs: 30000})
	res := e.Run()
	if res.Report.Decision() < 100 {
		t.Errorf("fuzzer should fully cover the gated switch: got %.1f%% decision (uncovered %v)",
			res.Report.Decision(), res.Report.UncoveredDecisions)
	}
	if len(res.Suite.Cases) == 0 {
		t.Error("no test cases emitted")
	}
	if res.Corpus == 0 {
		t.Error("corpus stayed empty")
	}
	if len(res.Timeline) < 2 {
		t.Error("timeline not sampled")
	}
}

func TestEngineDeterministicWithSeed(t *testing.T) {
	c := switchOnly(t)
	r1 := MustEngine(c, Options{Seed: 7, MaxExecs: 2000}).Run()
	r2 := MustEngine(c, Options{Seed: 7, MaxExecs: 2000}).Run()
	if r1.Steps != r2.Steps || r1.Execs != r2.Execs || len(r1.Suite.Cases) != len(r2.Suite.Cases) {
		t.Errorf("same seed must replay identically: steps %d vs %d, execs %d vs %d, cases %d vs %d",
			r1.Steps, r2.Steps, r1.Execs, r2.Execs, len(r1.Suite.Cases), len(r2.Suite.Cases))
	}
}

// TestBackendInvariantCampaign: a campaign is a deterministic function of
// (seed, options, observable VM behavior) — and the threaded backend is
// differentially proven observably identical to the switch reference — so
// the same campaign on either backend must produce the same executions,
// steps, cases and coverage, byte for byte.
func TestBackendInvariantCampaign(t *testing.T) {
	for _, name := range []string{"CPUTask", "SolarPV"} {
		e, err := benchmodels.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := codegen.Compile(e.Build())
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Seed: 3, MaxExecs: 1500, Directed: true}
		sw := MustEngine(c, opts).Run()
		opts.Backend = vm.BackendThreaded
		th := MustEngine(c, opts).Run()
		if sw.Execs != th.Execs || sw.Steps != th.Steps || sw.Corpus != th.Corpus {
			t.Fatalf("%s: counters diverge across backends: execs %d/%d steps %d/%d corpus %d/%d",
				name, sw.Execs, th.Execs, sw.Steps, th.Steps, sw.Corpus, th.Corpus)
		}
		if d1, d2 := sw.Report.Decision(), th.Report.Decision(); d1 != d2 {
			t.Fatalf("%s: decision coverage diverges: %.2f vs %.2f", name, d1, d2)
		}
		if len(sw.Suite.Cases) != len(th.Suite.Cases) {
			t.Fatalf("%s: case counts diverge: %d vs %d", name, len(sw.Suite.Cases), len(th.Suite.Cases))
		}
		for i := range sw.Suite.Cases {
			if !bytes.Equal(sw.Suite.Cases[i].Data, th.Suite.Cases[i].Data) {
				t.Fatalf("%s: case %d differs across backends", name, i)
			}
		}
	}
}
