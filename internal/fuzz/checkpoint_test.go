package fuzz

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCheckpointRoundTrip is the kill-and-resume scenario: a campaign saves
// its state, the "process dies", and a fresh engine resumed from the file
// must carry the same corpus, coverage and counters forward.
func TestCheckpointRoundTrip(t *testing.T) {
	c := minimizeTarget(t)
	path := filepath.Join(t.TempDir(), "campaign.ckpt")

	first := MustEngine(c, Options{Seed: 3, MaxExecs: 4000, CheckpointPath: path})
	res1 := first.Run()
	if res1.CheckpointErr != nil {
		t.Fatalf("final checkpoint flush: %v", res1.CheckpointErr)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if cp.Model != c.Prog.Name || cp.Execs != res1.Execs || len(cp.Corpus) != res1.Corpus {
		t.Fatalf("checkpoint mismatch: %+v vs result %+v", cp, res1)
	}

	// "Kill" = discard the first engine; resume in a new process image. The
	// extra budget is tiny: almost everything must come from the replay.
	second, err := NewEngine(c, Options{Seed: 99, MaxExecs: res1.Execs + 50, ResumeFrom: path})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	res2 := second.Run()
	if res2.Report.DecisionCovered < res1.Report.DecisionCovered {
		t.Errorf("resume lost decision coverage: %d < %d",
			res2.Report.DecisionCovered, res1.Report.DecisionCovered)
	}
	if res2.Report.CondCovered < res1.Report.CondCovered {
		t.Errorf("resume lost condition coverage: %d < %d",
			res2.Report.CondCovered, res1.Report.CondCovered)
	}
	if res2.Execs < res1.Execs {
		t.Errorf("resumed execs went backwards: %d < %d", res2.Execs, res1.Execs)
	}
	if res2.Corpus == 0 {
		t.Error("resumed corpus empty")
	}
	if len(res2.Suite.Cases) == 0 {
		t.Error("replay must regenerate the test suite")
	}
}

func TestCheckpointPreservesFindings(t *testing.T) {
	c := isqrtModel(t)
	path := filepath.Join(t.TempDir(), "hang.ckpt")
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1, Fuel: 500, CheckpointPath: path})
	e.RunInput(int32Tuple(1_000_000_000))
	if err := e.WriteCheckpoint(path); err != nil {
		t.Fatal(err)
	}

	r, err := NewEngine(c, Options{Seed: 2, Fuel: 500, ResumeFrom: path})
	if err != nil {
		t.Fatal(err)
	}
	res := r.Run()
	if len(res.Findings) != 1 || res.Findings[0].Kind != FindingHang {
		t.Fatalf("findings not restored: %v", res.Findings)
	}
	// The resumed run's own seed inputs may re-hit the same loop and bump the
	// count, but the saved reproducer and site stay authoritative.
	if res.Findings[0].Count < 1 {
		t.Errorf("restored count = %d", res.Findings[0].Count)
	}
	if string(res.Findings[0].Input) != string(int32Tuple(1_000_000_000)) {
		t.Error("saved reproducer input lost on resume")
	}
}

func TestCheckpointAtomicWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.ckpt")
	cp := &Checkpoint{Version: CheckpointVersion, Model: "M", SavedAt: time.Now()}
	if err := WriteCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	// No temporary residue after a successful save.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Error("temp file left behind")
	}
	// A failed save (unwritable directory) must not clobber the existing file.
	if err := WriteCheckpoint(filepath.Join(dir, "missing", "y.ckpt"), cp); err == nil {
		t.Error("want error for unwritable path")
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Errorf("original checkpoint damaged: %v", err)
	}
}

func TestCheckpointVersionAndModelChecks(t *testing.T) {
	dir := t.TempDir()

	stale := filepath.Join(dir, "stale.ckpt")
	data, _ := json.Marshal(Checkpoint{Version: CheckpointVersion + 1, Model: "M"})
	os.WriteFile(stale, data, 0o644)
	if _, err := LoadCheckpoint(stale); err == nil {
		t.Error("version mismatch must be rejected")
	}

	c := switchOnly(t)
	other := filepath.Join(dir, "other.ckpt")
	data, _ = json.Marshal(Checkpoint{Version: CheckpointVersion, Model: "SomeOtherModel"})
	os.WriteFile(other, data, 0o644)
	if _, err := NewEngine(c, Options{MaxExecs: 1, ResumeFrom: other}); err == nil {
		t.Error("model-name mismatch must be rejected")
	}

	corrupt := filepath.Join(dir, "corrupt.ckpt")
	os.WriteFile(corrupt, []byte("{not json"), 0o644)
	if _, err := LoadCheckpoint(corrupt); err == nil {
		t.Error("corrupt checkpoint must be rejected")
	}
}

func TestPeriodicCheckpointing(t *testing.T) {
	c := minimizeTarget(t)
	path := filepath.Join(t.TempDir(), "periodic.ckpt")
	e := MustEngine(c, Options{
		Seed: 1, Budget: 200 * time.Millisecond,
		CheckpointPath: path, CheckpointEvery: 10 * time.Millisecond,
	})
	res := e.Run()
	if res.CheckpointErr != nil {
		t.Fatal(res.CheckpointErr)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Execs != res.Execs {
		t.Errorf("final flush stale: checkpoint execs %d, result %d", cp.Execs, res.Execs)
	}
}

func TestStopChannelStopsRun(t *testing.T) {
	c := minimizeTarget(t)
	stop := make(chan struct{})
	e := MustEngine(c, Options{Seed: 1, Budget: time.Hour, Stop: stop})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(stop)
	}()
	start := time.Now()
	res := e.Run()
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("stop request ignored for %s", el)
	}
	if !res.Stopped {
		t.Error("Result.Stopped must report the external stop")
	}
	if res.Execs == 0 {
		t.Error("stopped campaign should still report partial work")
	}
}
