package fuzz

import (
	"testing"

	"cftcg/internal/codegen"
	"cftcg/internal/model"
)

// authGate builds a model whose only interesting branch needs an exact
// 32-bit constant — the §5 "magic value" scenario.
func authGate(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("AuthGate")
	code := b.Inport("code", model.Int32)
	ok := b.Rel("==", code, b.ConstT(model.Int32, 777123456))
	b.Outport("ok", model.Bool, b.Switch(ok, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0)))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestHintsCrackMagicConstant: with comparison-constant hints the fuzzer
// finds an arbitrary 32-bit equality quickly; blind mutation would need
// ~2^32 tries.
func TestHintsCrackMagicConstant(t *testing.T) {
	c := authGate(t)
	withHints := MustEngine(c, Options{Seed: 1, MaxExecs: 5000})
	res := withHints.Run()
	if res.Report.Decision() < 100 {
		t.Errorf("hints should crack the magic constant: %.1f%% (uncovered %v)",
			res.Report.Decision(), res.Report.UncoveredDecisions)
	}
	noHints := MustEngine(c, Options{Seed: 1, MaxExecs: 5000, NoHints: true})
	res2 := noHints.Run()
	if res2.Report.Decision() >= 100 {
		t.Log("blind mutation got lucky — acceptable but unexpected")
	}
}

// TestRangesConstrainGeneration: with a declared range every generated
// value stays inside it, so an out-of-range branch stays uncovered.
func TestRangesConstrainGeneration(t *testing.T) {
	b := model.NewBuilder("Ranged")
	x := b.Inport("x", model.Int32)
	big := b.Rel(">", x, b.ConstT(model.Int32, 1000))
	b.Outport("o", model.Int32, b.Switch(big, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0)))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	e := MustEngine(c, Options{
		Seed:     1,
		MaxExecs: 20000,
		NoHints:  true, // hints would place values exactly at the boundary
		Ranges:   []Range{{Lo: -100, Hi: 100}},
	})
	res := e.Run()
	// x is confined to [-100,100], so x > 1000 must stay false-only.
	if res.Report.Decision() == 100 {
		t.Error("range constraint violated: out-of-range branch was covered")
	}
	// The reachable half must still be covered.
	if res.Report.Decision() < 50 {
		t.Errorf("in-range behaviour uncovered: %.1f%%", res.Report.Decision())
	}
}

// TestSeedInputsEnterCorpus: a seed that already triggers the deep branch
// makes the campaign cover it immediately (hybrid mode's mechanism).
func TestSeedInputsEnterCorpus(t *testing.T) {
	c := authGate(t)
	seed := make([]byte, 4)
	model.PutRaw(model.Int32, seed, model.EncodeInt(model.Int32, 777123456))
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 10, NoHints: true, SeedInputs: [][]byte{seed}})
	res := e.Run()
	if res.Report.Decision() < 100 {
		t.Errorf("seed input should cover the gate instantly: %.1f%%", res.Report.Decision())
	}
}

func TestModeStrings(t *testing.T) {
	if ModeModelOriented.String() != "cftcg" || ModeFuzzOnly.String() != "fuzz-only" || ModeNoIterDiff.String() != "no-iterdiff" {
		t.Error("mode names")
	}
}

// TestFuzzOnlyMaskHidesNonJumpProbes verifies the Figure 8 feedback model:
// in fuzz-only mode boolean/switch/saturation probes are invisible to the
// corpus even though they still count in the measured report.
func TestFuzzOnlyMaskHidesNonJumpProbes(t *testing.T) {
	b := model.NewBuilder("Masked")
	x := b.Inport("x", model.Int32)
	y := b.Inport("y", model.Int32)
	gate := b.And(b.Rel(">", x, b.ConstT(model.Int32, 0)), b.Rel(">", y, b.ConstT(model.Int32, 0)))
	b.Outport("o", model.Int32, b.Switch(gate, x, y))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	e := MustEngine(c, Options{Seed: 1, Mode: ModeFuzzOnly, MaxExecs: 1})
	masked := 0
	for _, v := range e.mask {
		if v {
			masked++
		}
	}
	// The AND (logic) and Switch decisions plus all conditions must be
	// invisible: nothing in this model compiles to a jump at -O2.
	if masked != 0 {
		t.Errorf("fuzz-only mask should hide all %d slots here, %d visible", len(e.mask), masked)
	}

	e2 := MustEngine(c, Options{Seed: 1, Mode: ModeModelOriented, MaxExecs: 1})
	visible := 0
	for _, v := range e2.mask {
		if v {
			visible++
		}
	}
	if visible != len(e2.mask) {
		t.Errorf("model-oriented mode must see every slot: %d/%d", visible, len(e2.mask))
	}
}
