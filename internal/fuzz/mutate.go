// Package fuzz implements CFTCG's model-oriented fuzzing loop: the
// in-process engine (modeled on LibFuzzer), the eight tuple-wise input
// mutation strategies of Table 1, and the Iteration Difference Coverage
// corpus scheduling of Algorithm 1.
package fuzz

import (
	"math"
	"math/rand"

	"cftcg/internal/model"
)

// Strategy identifies one of the paper's Table 1 mutation strategies.
type Strategy uint8

// The eight model-input mutation strategies (Table 1).
const (
	ChangeBinaryInteger Strategy = iota
	ChangeBinaryFloat
	EraseTuples
	InsertTuple
	InsertRepeatedTuples
	ShuffleTuples
	CopyTuples
	TuplesCrossOver
	numStrategies
)

var strategyNames = [...]string{
	ChangeBinaryInteger:  "ChangeBinaryInteger",
	ChangeBinaryFloat:    "ChangeBinaryFloat",
	EraseTuples:          "EraseTuples",
	InsertTuple:          "InsertTuple",
	InsertRepeatedTuples: "InsertRepeatedTuples",
	ShuffleTuples:        "ShuffleTuples",
	CopyTuples:           "CopyTuples",
	TuplesCrossOver:      "TuplesCrossOver",
}

func (s Strategy) String() string {
	if int(s) < len(strategyNames) {
		return strategyNames[s]
	}
	return "Strategy(?)"
}

// Range bounds the values generated for one input field — the paper's §5
// "value ranges for inports" constraint.
type Range struct {
	Lo, Hi float64
}

// Mutator performs field-wise, tuple-aligned mutations. Unlike a generic
// byte-stream mutator it never misaligns the inport fields: erase/insert/
// shuffle/copy operate on whole tuples, and value mutations target one typed
// field of one tuple.
type Mutator struct {
	rng       *rand.Rand
	fields    []model.Field
	tupleSize int
	maxTuples int

	intFields   []int // indexes of integer/bool fields
	floatFields []int

	// hints holds per-field comparison constants (the §5 "dynamic numerical
	// range constraints", extracted by codegen.FieldHints) that value
	// mutations gravitate toward.
	hints [][]float64
	// ranges holds optional per-field value bounds (§5 tester-specified
	// ranges); generated values are clamped into them.
	ranges []Range
	// bias holds per-field mutation weights for influence-directed fuzzing:
	// value mutations pick their target field proportionally to these
	// weights. Nil or all-equal means uniform selection.
	bias []float64
	// fieldHits counts, per field, how many targeted value mutations the
	// mutator has applied — the observability counter behind the campaign
	// daemon's per-field influence metrics.
	fieldHits []int64
}

// NewMutator builds a mutator for the given tuple layout. maxTuples bounds
// how long mutated inputs may grow (the fuzzer's -max_len analogue).
func NewMutator(fields []model.Field, tupleSize, maxTuples int, rng *rand.Rand) *Mutator {
	m := &Mutator{
		rng:       rng,
		fields:    fields,
		tupleSize: tupleSize,
		maxTuples: maxTuples,
		fieldHits: make([]int64, len(fields)),
	}
	for i, f := range fields {
		if f.Type.IsFloat() {
			m.floatFields = append(m.floatFields, i)
		} else {
			m.intFields = append(m.intFields, i)
		}
	}
	return m
}

// SetHints installs per-field comparison constants (same indexing as the
// field list) that value generation will target.
func (m *Mutator) SetHints(hints [][]float64) { m.hints = hints }

// SetRanges installs per-field value bounds; nil entries in a shorter slice
// are treated as unbounded.
func (m *Mutator) SetRanges(ranges []Range) { m.ranges = ranges }

// SetFieldBias installs per-field mutation weights (typically from the
// static influence analysis: fields that can reach unsatisfied objectives
// weigh more). Value mutations then pick their target field weighted by
// bias instead of uniformly. Pass nil to restore uniform selection.
func (m *Mutator) SetFieldBias(w []float64) { m.bias = w }

// FieldHits returns a copy of the per-field targeted-mutation counters.
func (m *Mutator) FieldHits() []int64 {
	return append([]int64(nil), m.fieldHits...)
}

// pickField chooses a mutation target from idxs, weighted by the installed
// field bias when one is set and degenerating to uniform otherwise.
func (m *Mutator) pickField(idxs []int) int {
	if len(m.bias) > 0 {
		total := 0.0
		for _, fi := range idxs {
			if fi < len(m.bias) {
				total += m.bias[fi]
			}
		}
		if total > 0 {
			x := m.rng.Float64() * total
			for _, fi := range idxs {
				if fi < len(m.bias) {
					x -= m.bias[fi]
				}
				if x <= 0 {
					return fi
				}
			}
		}
	}
	return idxs[m.rng.Intn(len(idxs))]
}

// RandomTuple generates one random tuple with field-aware values.
func (m *Mutator) RandomTuple() []byte {
	t := make([]byte, m.tupleSize)
	for i, f := range m.fields {
		model.PutRaw(f.Type, t[f.Offset:], m.randomFieldValue(i, f.Type))
	}
	return t
}

// randomFieldValue draws a value for a specific field: comparison-constant
// hints fire a third of the time, then generic magnitude classes, and the
// result is clamped into the field's declared range.
func (m *Mutator) randomFieldValue(field int, dt model.DType) uint64 {
	if field < len(m.hints) && len(m.hints[field]) > 0 && m.rng.Intn(3) == 0 {
		h := m.hints[field][m.rng.Intn(len(m.hints[field]))]
		// The constant itself, or a neighbour that flips the comparison.
		h += float64(m.rng.Intn(3) - 1)
		return m.clamp(field, dt, model.Encode(dt, h))
	}
	return m.clamp(field, dt, m.randomValue(dt))
}

// clamp folds a raw value into the field's declared range, if any.
func (m *Mutator) clamp(field int, dt model.DType, raw uint64) uint64 {
	if field >= len(m.ranges) {
		return raw
	}
	r := m.ranges[field]
	if r.Lo == 0 && r.Hi == 0 {
		return raw
	}
	v := model.Decode(dt, raw)
	if v < r.Lo {
		return model.Encode(dt, r.Lo)
	}
	if v > r.Hi {
		return model.Encode(dt, r.Hi)
	}
	return raw
}

// randomValue draws a value biased toward interesting magnitudes: small
// integers dominate (opcode-like fields), with occasional extreme values.
func (m *Mutator) randomValue(dt model.DType) uint64 {
	r := m.rng
	if dt.IsFloat() {
		switch r.Intn(4) {
		case 0:
			return model.EncodeFloat(dt, float64(r.Intn(21)-10))
		case 1:
			return model.EncodeFloat(dt, r.NormFloat64()*100)
		case 2:
			return model.EncodeFloat(dt, r.Float64())
		default:
			return model.EncodeFloat(dt, math.Float64frombits(r.Uint64()))
		}
	}
	switch r.Intn(5) {
	case 0:
		return model.EncodeInt(dt, int64(r.Intn(16)))
	case 1:
		return model.EncodeInt(dt, int64(r.Intn(256)-128))
	case 2:
		return model.EncodeInt(dt, int64(r.Intn(1<<16)-(1<<15)))
	case 3:
		return model.EncodeInt(dt, int64(int32(r.Uint32())))
	default:
		return model.EncodeInt(dt, int64(r.Uint64()))
	}
}

// Mutate applies between 1 and 4 stacked strategies to data, borrowing
// tuples from other when crossing over. The input slice is not modified.
func (m *Mutator) Mutate(data, other []byte) []byte {
	out := append([]byte(nil), data...)
	n := 1 + m.rng.Intn(4)
	for i := 0; i < n; i++ {
		out = m.apply(Strategy(m.rng.Intn(int(numStrategies))), out, other)
	}
	if len(out) == 0 {
		out = m.RandomTuple()
	}
	if max := m.maxTuples * m.tupleSize; len(out) > max {
		out = out[:max]
	}
	return out
}

// Apply runs a single named strategy (exported for tests and the Table 1
// micro-benchmarks).
func (m *Mutator) Apply(s Strategy, data, other []byte) []byte {
	return m.apply(s, append([]byte(nil), data...), other)
}

func (m *Mutator) apply(s Strategy, data, other []byte) []byte {
	nt := len(data) / m.tupleSize
	switch s {
	case ChangeBinaryInteger:
		if nt == 0 || len(m.intFields) == 0 {
			return m.apply(InsertTuple, data, other)
		}
		fi := m.pickField(m.intFields)
		f := m.fields[fi]
		off := m.rng.Intn(nt)*m.tupleSize + f.Offset
		m.mutateInt(data[off:off+f.Type.Size()], fi, f.Type)
		return data

	case ChangeBinaryFloat:
		if nt == 0 || len(m.floatFields) == 0 {
			return m.apply(ChangeBinaryInteger, data, other)
		}
		fi := m.pickField(m.floatFields)
		f := m.fields[fi]
		off := m.rng.Intn(nt)*m.tupleSize + f.Offset
		m.mutateFloat(data[off:off+f.Type.Size()], fi, f.Type)
		return data

	case EraseTuples:
		if nt <= 1 {
			return data
		}
		a := m.rng.Intn(nt)
		span := 1 + m.rng.Intn(nt-a)
		if span == nt {
			span = nt - 1
		}
		return append(data[:a*m.tupleSize], data[(a+span)*m.tupleSize:]...)

	case InsertTuple:
		pos := 0
		if nt > 0 {
			pos = m.rng.Intn(nt + 1)
		}
		t := m.RandomTuple()
		out := make([]byte, 0, len(data)+m.tupleSize)
		out = append(out, data[:pos*m.tupleSize]...)
		out = append(out, t...)
		out = append(out, data[pos*m.tupleSize:]...)
		return out

	case InsertRepeatedTuples:
		var t []byte
		if nt > 0 && m.rng.Intn(2) == 0 {
			src := m.rng.Intn(nt)
			t = append([]byte(nil), data[src*m.tupleSize:(src+1)*m.tupleSize]...)
		} else {
			t = m.RandomTuple()
		}
		k := 1 + m.rng.Intn(16)
		pos := 0
		if nt > 0 {
			pos = m.rng.Intn(nt + 1)
		}
		out := make([]byte, 0, len(data)+k*m.tupleSize)
		out = append(out, data[:pos*m.tupleSize]...)
		for i := 0; i < k; i++ {
			out = append(out, t...)
		}
		out = append(out, data[pos*m.tupleSize:]...)
		return out

	case ShuffleTuples:
		if nt <= 1 {
			return data
		}
		a := m.rng.Intn(nt)
		span := 2 + m.rng.Intn(nt-a)
		if a+span > nt {
			span = nt - a
		}
		idx := m.rng.Perm(span)
		out := append([]byte(nil), data...)
		for i, j := range idx {
			copy(out[(a+i)*m.tupleSize:(a+i+1)*m.tupleSize],
				data[(a+j)*m.tupleSize:(a+j+1)*m.tupleSize])
		}
		return out

	case CopyTuples:
		if nt < 2 {
			return data
		}
		src := m.rng.Intn(nt)
		span := 1 + m.rng.Intn(nt-src)
		dst := m.rng.Intn(nt + 1)
		chunk := append([]byte(nil), data[src*m.tupleSize:(src+span)*m.tupleSize]...)
		out := make([]byte, 0, len(data)+len(chunk))
		out = append(out, data[:dst*m.tupleSize]...)
		out = append(out, chunk...)
		out = append(out, data[dst*m.tupleSize:]...)
		return out

	case TuplesCrossOver:
		if other == nil || len(other) < m.tupleSize {
			return data
		}
		no := len(other) / m.tupleSize
		cutA := 0
		if nt > 0 {
			cutA = m.rng.Intn(nt + 1)
		}
		cutB := m.rng.Intn(no + 1)
		out := make([]byte, 0, cutA*m.tupleSize+(no-cutB)*m.tupleSize)
		out = append(out, data[:cutA*m.tupleSize]...)
		out = append(out, other[cutB*m.tupleSize:no*m.tupleSize]...)
		return out
	}
	return data
}

// mutateInt applies one of the paper's integer sub-strategies: sign-bit
// change, byte swap, bit flip, byte modification, add/subtract, randomize —
// plus a comparison-constant jump when hints exist for the field.
func (m *Mutator) mutateInt(b []byte, field int, dt model.DType) {
	if field < len(m.fieldHits) {
		m.fieldHits[field]++
	}
	if field < len(m.hints) && len(m.hints[field]) > 0 && m.rng.Intn(4) == 0 {
		h := m.hints[field][m.rng.Intn(len(m.hints[field]))] + float64(m.rng.Intn(3)-1)
		model.PutRaw(dt, b, m.clamp(field, dt, model.Encode(dt, h)))
		return
	}
	raw := model.GetRaw(dt, b)
	v := model.DecodeInt(dt, raw)
	switch m.rng.Intn(6) {
	case 0: // flip sign / top bit
		raw ^= 1 << uint(dt.Size()*8-1)
	case 1: // byte swap
		if dt.Size() >= 2 {
			i, j := m.rng.Intn(dt.Size()), m.rng.Intn(dt.Size())
			b[i], b[j] = b[j], b[i]
			model.PutRaw(dt, b, m.clamp(field, dt, model.GetRaw(dt, b)))
			return
		}
		raw ^= 0xFF
	case 2: // bit flip
		raw ^= 1 << uint(m.rng.Intn(dt.Size()*8))
	case 3: // byte modification
		b[m.rng.Intn(dt.Size())] = byte(m.rng.Intn(256))
		model.PutRaw(dt, b, m.clamp(field, dt, model.GetRaw(dt, b)))
		return
	case 4: // add/subtract a small delta
		raw = model.EncodeInt(dt, v+int64(m.rng.Intn(33)-16))
	default: // random change
		raw = m.randomValue(dt)
	}
	model.PutRaw(dt, b, m.clamp(field, dt, raw))
}

// mutateFloat mutates a float field with awareness of the IEEE layout: sign,
// exponent nudges, mantissa bits, special values, or small arithmetic —
// plus comparison-constant jumps when hints exist.
func (m *Mutator) mutateFloat(b []byte, field int, dt model.DType) {
	if field < len(m.fieldHits) {
		m.fieldHits[field]++
	}
	if field < len(m.hints) && len(m.hints[field]) > 0 && m.rng.Intn(4) == 0 {
		h := m.hints[field][m.rng.Intn(len(m.hints[field]))]
		switch m.rng.Intn(3) {
		case 0:
			h = math.Nextafter(h, math.Inf(-1))
		case 1:
			h = math.Nextafter(h, math.Inf(1))
		}
		model.PutRaw(dt, b, m.clamp(field, dt, model.EncodeFloat(dt, h)))
		return
	}
	raw := model.GetRaw(dt, b)
	f := model.DecodeFloat(dt, raw)
	switch m.rng.Intn(6) {
	case 0: // sign
		f = -f
	case 1: // scale (exponent nudge)
		f *= math.Pow(2, float64(m.rng.Intn(9)-4))
	case 2: // mantissa bit flip
		bits := model.GetRaw(dt, b)
		mantBits := 52
		if dt == model.Float32 {
			mantBits = 23
		}
		bits ^= 1 << uint(m.rng.Intn(mantBits))
		model.PutRaw(dt, b, m.clamp(field, dt, bits))
		return
	case 3: // special values
		specials := []float64{0, 1, -1, 0.5, 1e6, -1e6, math.MaxFloat32, math.SmallestNonzeroFloat64}
		f = specials[m.rng.Intn(len(specials))]
	case 4: // add/subtract
		f += float64(m.rng.Intn(21) - 10)
	default: // random
		model.PutRaw(dt, b, m.clamp(field, dt, m.randomValue(dt)))
		return
	}
	model.PutRaw(dt, b, m.clamp(field, dt, model.EncodeFloat(dt, f)))
}

// ByteMutator is the generic, structure-blind mutator used by the "Fuzz
// Only" ablation (Figure 8): bit flips, byte edits, and arbitrary-length
// inserts/deletes that freely misalign the tuple layout.
type ByteMutator struct {
	rng    *rand.Rand
	maxLen int
}

// NewByteMutator builds the ablation mutator.
func NewByteMutator(maxLen int, rng *rand.Rand) *ByteMutator {
	return &ByteMutator{rng: rng, maxLen: maxLen}
}

// Mutate applies 1-4 stacked generic byte mutations.
func (m *ByteMutator) Mutate(data, other []byte) []byte {
	out := append([]byte(nil), data...)
	n := 1 + m.rng.Intn(4)
	for i := 0; i < n; i++ {
		out = m.apply(out, other)
	}
	if len(out) == 0 {
		out = []byte{byte(m.rng.Intn(256))}
	}
	if len(out) > m.maxLen {
		out = out[:m.maxLen]
	}
	return out
}

func (m *ByteMutator) apply(data, other []byte) []byte {
	r := m.rng
	switch r.Intn(6) {
	case 0: // bit flip
		if len(data) == 0 {
			return data
		}
		data[r.Intn(len(data))] ^= 1 << uint(r.Intn(8))
		return data
	case 1: // byte set
		if len(data) == 0 {
			return data
		}
		data[r.Intn(len(data))] = byte(r.Intn(256))
		return data
	case 2: // delete a random span (any length — misaligns tuples)
		if len(data) < 2 {
			return data
		}
		a := r.Intn(len(data))
		span := 1 + r.Intn(len(data)-a)
		return append(data[:a], data[a+span:]...)
	case 3: // insert random bytes (any length)
		k := 1 + r.Intn(8)
		pos := r.Intn(len(data) + 1)
		ins := make([]byte, k)
		for i := range ins {
			ins[i] = byte(r.Intn(256))
		}
		out := make([]byte, 0, len(data)+k)
		out = append(out, data[:pos]...)
		out = append(out, ins...)
		out = append(out, data[pos:]...)
		return out
	case 4: // arithmetic on a byte
		if len(data) == 0 {
			return data
		}
		data[r.Intn(len(data))] += byte(r.Intn(33) - 16)
		return data
	default: // byte-level crossover
		if len(other) == 0 {
			return data
		}
		cutA := r.Intn(len(data) + 1)
		cutB := r.Intn(len(other))
		out := make([]byte, 0, cutA+len(other)-cutB)
		out = append(out, data[:cutA]...)
		out = append(out, other[cutB:]...)
		return out
	}
}
