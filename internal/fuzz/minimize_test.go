package fuzz

import (
	"testing"

	"cftcg/internal/codegen"
	"cftcg/internal/model"
	"cftcg/internal/testcase"
)

func minimizeTarget(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("Min")
	x := b.Inport("x", model.Int32)
	sat := b.Saturation(x, -10, 10)
	pos := b.Rel(">", sat, b.ConstT(model.Int32, 0))
	b.Outport("o", model.Int32, b.Switch(pos, sat, b.ConstT(model.Int32, -99)))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func caseOf(vals ...int64) testcase.Case {
	data := make([]byte, 4*len(vals))
	for i, v := range vals {
		model.PutRaw(model.Int32, data[i*4:], model.EncodeInt(model.Int32, v))
	}
	return testcase.Case{Data: data}
}

func TestMinimizeDropsRedundantCases(t *testing.T) {
	c := minimizeTarget(t)
	cases := []testcase.Case{
		caseOf(5),            // mid + positive
		caseOf(6),            // redundant with the first
		caseOf(7),            // redundant
		caseOf(500),          // saturate high
		caseOf(-500),         // saturate low + negative
		caseOf(5, 500, -500), // covers everything on its own
	}
	kept := Minimize(c, cases)
	if len(kept) != 1 {
		t.Fatalf("greedy minimization should keep exactly the all-covering case, kept %d", len(kept))
	}
	if len(kept[0].Data) != 12 {
		t.Errorf("kept the wrong case: %d bytes", len(kept[0].Data))
	}
}

func TestMinimizePreservesCoverage(t *testing.T) {
	c := minimizeTarget(t)
	res := MustEngine(c, Options{Seed: 4, MaxExecs: 10000}).Run()
	before := res.Report
	var cases []testcase.Case
	cases = append(cases, res.Suite.Cases...)
	kept := Minimize(c, cases)
	if len(kept) > len(cases) {
		t.Fatal("minimization grew the suite")
	}
	// Replay the kept cases and compare decision/condition counts.
	eng := MustEngine(c, Options{Seed: 99, MaxExecs: 1})
	for _, k := range kept {
		eng.RunInput(k.Data)
	}
	after := eng.Recorder().Report()
	if after.DecisionCovered < before.DecisionCovered || after.CondCovered < before.CondCovered {
		t.Errorf("coverage lost: before %d/%d, after %d/%d",
			before.DecisionCovered, before.CondCovered, after.DecisionCovered, after.CondCovered)
	}
}

func TestMinimizeEmpty(t *testing.T) {
	c := minimizeTarget(t)
	if got := Minimize(c, nil); len(got) != 0 {
		t.Errorf("minimizing nothing: %d", len(got))
	}
}

func TestTrimShortensWithoutLosingCoverage(t *testing.T) {
	c := minimizeTarget(t)
	// 10 junk tuples around the 3 that matter.
	fat := caseOf(0, 0, 0, 5, 0, 0, 500, 0, -500, 0, 0, 0, 0).Data
	slim := Trim(c, fat)
	if len(slim) >= len(fat) {
		t.Fatalf("trim did not shorten: %d -> %d bytes", len(fat), len(slim))
	}
	// Coverage preserved: replay both and compare decision counts.
	e1 := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	e1.RunInput(fat)
	before := e1.Recorder().Report()
	e2 := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	e2.RunInput(slim)
	after := e2.Recorder().Report()
	if after.DecisionCovered < before.DecisionCovered || after.CondCovered < before.CondCovered {
		t.Errorf("trim lost coverage: %d/%d -> %d/%d",
			before.DecisionCovered, before.CondCovered, after.DecisionCovered, after.CondCovered)
	}
	// Idempotent-ish: trimming again cannot grow.
	if len(Trim(c, slim)) > len(slim) {
		t.Error("second trim grew the case")
	}
}

func TestTrimKeepsOrderDependentSequences(t *testing.T) {
	// A model where coverage needs tuple 1 then tuple 2 in order: a
	// two-step chart-ish accumulator in a script.
	b := model.NewBuilder("Seq")
	x := b.Inport("x", model.Int32)
	ml := b.Matlab("seq", `
input  int32 x;
output bool hit = false;
state  int32 phase = 0;
if (phase == 0 && x == 7) { phase = 1; }
if (phase == 1 && x == 9) { phase = 2; }
if (phase == 2) { hit = true; }
`, x)
	b.Outport("hit", model.Bool, ml.Out(0))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	fat := caseOf(1, 7, 3, 9, 2).Data // needs the 7 then the 9
	slim := Trim(c, fat)
	if got := len(slim) / 4; got > 3 {
		t.Errorf("trim kept %d tuples, expected <= 3", got)
	}
	// The trimmed case must still reach phase 2.
	e := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	e.RunInput(slim)
	rep := e.Recorder().Report()
	eFat := MustEngine(c, Options{Seed: 1, MaxExecs: 1})
	eFat.RunInput(fat)
	if rep.DecisionCovered < eFat.Recorder().Report().DecisionCovered {
		t.Error("trim broke the ordered sequence")
	}
}

func TestRunParallelMergesCoverage(t *testing.T) {
	c := minimizeTarget(t)
	res, err := RunParallel(c, Options{Seed: 1, MaxExecs: 3000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Execs < 4*3000 {
		t.Errorf("workers should sum execs: %d", res.Execs)
	}
	if res.Report.Decision() < 100 {
		t.Errorf("merged coverage should be complete on this model: %.1f%%", res.Report.Decision())
	}
	if len(res.Suite.Cases) == 0 {
		t.Error("merged suite empty")
	}
}

func TestAssertionViolationsReported(t *testing.T) {
	b := model.NewBuilder("Viol")
	x := b.Inport("x", model.Int32)
	// Invariant that fuzzing should break: |sat(x)| stays below 9.
	sat := b.Saturation(x, -10, 10)
	inv := b.Rel("<", b.Abs(sat), b.ConstT(model.Int32, 9))
	b.Add("Assertion", "inv", nil).From(inv)
	b.Outport("o", model.Int32, sat)
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	res := MustEngine(c, Options{Seed: 2, MaxExecs: 5000}).Run()
	if len(res.Violations) == 0 {
		t.Fatal("fuzzer failed to violate a trivially breakable assertion")
	}
	// Replaying a reported violation must hit the violated branch again.
	eng := MustEngine(c, Options{Seed: 3, MaxExecs: 1})
	eng.RunInput(res.Violations[0].Data)
	if !eng.lastViolated {
		t.Error("reported violation does not reproduce")
	}
}
