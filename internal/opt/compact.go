package opt

import "cftcg/internal/ir"

// compact removes every OpNop the passes left behind, remapping jump targets
// and loop-site addresses and shrinking NumRegs to the registers actually
// referenced. It is the one transformation that changes the program's shape,
// so the pipeline validates it with lockstep execution rather than the
// product proof. Returns the number of instructions removed.
func compact(p *ir.Program) int {
	removed := 0
	maps := map[string][]int{}
	keptJump := map[string][]bool{}
	for _, fn := range funcsOf(p) {
		code := fn.code
		newPC := make([]int, len(code)+1)
		kept := make([]bool, len(code))
		cnt := 0
		for pc := range code {
			newPC[pc] = cnt
			if code[pc].Op != ir.OpNop {
				kept[pc] = true
				cnt++
			}
		}
		newPC[len(code)] = cnt
		removed += len(code) - cnt
		out := make([]ir.Instr, 0, cnt)
		for pc := range code {
			if !kept[pc] {
				continue
			}
			ins := code[pc]
			switch ins.Op {
			case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
				ins.Imm = uint64(newPC[ins.Imm])
			}
			out = append(out, ins)
		}
		if fn.name == "init" {
			p.Init = out
		} else {
			p.Step = out
		}
		maps[fn.name] = newPC
		keptJump[fn.name] = kept
	}

	// Loop sites survive only if their backward jump did.
	var sites []ir.LoopSite
	for _, s := range p.LoopSites {
		m, k := maps[s.Func], keptJump[s.Func]
		if m == nil || s.PC < 0 || s.PC >= len(k) || !k[s.PC] {
			continue
		}
		s.PC = m[s.PC]
		sites = append(sites, s)
	}
	p.LoopSites = sites

	// Shrink the register file to what is still referenced.
	maxReg := int32(-1)
	for _, fn := range funcsOf(p) {
		for pc := range fn.code {
			dst, reads := irOperands(&fn.code[pc])
			if dst > maxReg {
				maxReg = dst
			}
			for _, r := range reads {
				if r > maxReg {
					maxReg = r
				}
			}
		}
	}
	p.NumRegs = int(maxReg) + 1
	return removed
}
