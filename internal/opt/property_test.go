package opt_test

// External-package property test: the optimization pipeline over every
// benchmark model must (a) produce strict-verifier-clean programs, (b) be
// VM-lockstep-indistinguishable from the original over a large random input
// sample at full horizon — outputs and probe streams both — and (c) survive
// a Disasm/ParseDisasm round trip. It lives in package opt_test because it
// needs codegen, which internal/opt must not import.

import (
	"reflect"
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/ir"
	"cftcg/internal/opt"
)

func TestOptimizedBenchmodelsEquivalent(t *testing.T) {
	randomCases := 1000
	if testing.Short() {
		randomCases = 100
	}
	totalBefore, totalAfter := 0, 0
	for _, e := range benchmodels.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			c, err := codegen.Compile(e.Build())
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			optp, st, err := opt.Optimize(c.Prog, c.Plan, opt.Config{
				LockstepCases: randomCases,
				LockstepSteps: 48,
				Seed:          7,
			})
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			t.Logf("%s: %s", e.Name, st.Summary())
			if err := analysis.VerifyStrict(optp, c.Plan); err != nil {
				t.Fatalf("optimized program fails strict verification: %v", err)
			}
			if st.After() > st.Before() {
				t.Errorf("optimization grew the program: %d -> %d", st.Before(), st.After())
			}
			// Optimize already ran the final lockstep gate with the config
			// above; run an independent check with a different seed so the
			// test does not merely re-observe the pipeline's own gate.
			if err := opt.Lockstep(c.Prog, optp, c.Plan, nil, randomCases, 48, 99); err != nil {
				t.Fatalf("independent lockstep check: %v", err)
			}
			for _, fn := range []struct {
				name string
				code []ir.Instr
			}{{"init", optp.Init}, {"step", optp.Step}} {
				text := ir.Disasm(fn.code)
				back, err := ir.ParseDisasm(text)
				if err != nil {
					t.Fatalf("%s: ParseDisasm: %v", fn.name, err)
				}
				if !reflect.DeepEqual(fn.code, back) {
					t.Fatalf("%s: disasm round trip altered the program", fn.name)
				}
			}
			totalBefore += st.Before()
			totalAfter += st.After()
		})
	}
	if totalAfter >= totalBefore {
		t.Errorf("no aggregate instruction-count reduction: %d -> %d", totalBefore, totalAfter)
	} else {
		t.Logf("aggregate: %d -> %d instructions (-%.1f%%)",
			totalBefore, totalAfter, 100*(1-float64(totalAfter)/float64(totalBefore)))
	}
}
