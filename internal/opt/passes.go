package opt

import (
	"math"

	"cftcg/internal/analysis"
	"cftcg/internal/interval"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// The dataflow passes. Every pass mutates its program in place, preserves
// the instruction count and register numbering (compaction, which does not,
// runs separately and is validated by lockstep execution), and returns how
// many instructions it rewrote — a return of zero means a provable no-op.

const (
	optWidenVisits     = 8  // per-block joins before widening inside a function
	optWidenStepRounds = 4  // outer step iterations before widening the state
	optMaxStepRounds   = 64 // hard stop for the outer fixpoint
)

type funcRef struct {
	name string
	code []ir.Instr
}

func funcsOf(p *ir.Program) []funcRef {
	return []funcRef{{"init", p.Init}, {"step", p.Step}}
}

// cloneProg copies a program deeply enough for independent rewriting.
func cloneProg(p *ir.Program) *ir.Program {
	q := *p
	q.Init = append([]ir.Instr(nil), p.Init...)
	q.Step = append([]ir.Instr(nil), p.Step...)
	q.LoopSites = append([]ir.LoopSite(nil), p.LoopSites...)
	return &q
}

// aenv is the abstract machine memory at one program point.
type aenv struct {
	regs, state []av
}

func (e *aenv) clone() *aenv {
	return &aenv{regs: append([]av(nil), e.regs...), state: append([]av(nil), e.state...)}
}

func joinAenv(a, b *aenv) *aenv {
	out := a.clone()
	for i := range out.regs {
		out.regs[i] = out.regs[i].join(b.regs[i])
	}
	for i := range out.state {
		out.state[i] = out.state[i].join(b.state[i])
	}
	return out
}

func aenvEqual(a, b *aenv) bool {
	for i := range a.regs {
		if !a.regs[i].eqv(b.regs[i]) {
			return false
		}
	}
	for i := range a.state {
		if !a.state[i].eqv(b.state[i]) {
			return false
		}
	}
	return true
}

// widenAenv widens every interval bound of next that grew past prev out to
// infinity, forcing the chaotic iteration to converge. Known raw words are
// untouched — a widened interval still soundly contains the known value.
func widenAenv(prev, next *aenv) {
	w := func(p, n av) av {
		if n.itv.Lo < p.itv.Lo {
			n.itv.Lo = math.Inf(-1)
		}
		if n.itv.Hi > p.itv.Hi {
			n.itv.Hi = math.Inf(1)
		}
		return n
	}
	for i := range next.regs {
		next.regs[i] = w(prev.regs[i], next.regs[i])
	}
	for i := range next.state {
		next.state[i] = w(prev.state[i], next.state[i])
	}
}

type sccpState struct {
	in []av
}

// stepAv applies one non-control instruction to the environment.
func (s *sccpState) stepAv(e *aenv, ins *ir.Instr) {
	switch ins.Op {
	case ir.OpNop, ir.OpStoreOut, ir.OpProbe, ir.OpCondProbe:
	case ir.OpLoadIn:
		e.regs[ins.Dst] = s.in[ins.Imm]
	case ir.OpLoadState:
		e.regs[ins.Dst] = e.state[ins.Imm]
	case ir.OpStoreState:
		e.state[ins.Imm] = e.regs[ins.A]
	default:
		if dst, _ := irOperands(ins); dst >= 0 {
			e.regs[dst] = absEval(ins, func(r int32) av { return e.regs[r] })
		}
	}
}

// absFunc abstractly executes one function from an entry environment,
// propagating only along feasible branch edges (the "conditional" half of
// SCCP), and returns the per-block entry environments at the fixpoint plus
// the join of all exit environments.
func (s *sccpState) absFunc(code []ir.Instr, entry *aenv) ([]*aenv, *aenv) {
	blocks := analysis.BasicBlocks(code)
	if len(blocks) == 0 {
		return nil, entry.clone()
	}
	ins := make([]*aenv, len(blocks))
	visits := make([]int, len(blocks))
	ins[0] = entry.clone()
	work := []int{0}
	inWork := make([]bool, len(blocks))
	inWork[0] = true
	var exit *aenv
	noteExit := func(e *aenv) {
		if exit == nil {
			exit = e.clone()
		} else {
			exit = joinAenv(exit, e)
		}
	}
	propagate := func(succ int, e *aenv) {
		if succ >= len(blocks) {
			noteExit(e)
			return
		}
		if ins[succ] == nil {
			ins[succ] = e.clone()
		} else {
			joined := joinAenv(ins[succ], e)
			visits[succ]++
			if visits[succ] >= optWidenVisits {
				widenAenv(ins[succ], joined)
			}
			if aenvEqual(joined, ins[succ]) {
				return
			}
			ins[succ] = joined
		}
		if !inWork[succ] {
			inWork[succ] = true
			work = append(work, succ)
		}
	}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		b := blocks[bi]
		e := ins[bi].clone()
		halted := false
		for pc := b.Start; pc < b.End; pc++ {
			instr := &code[pc]
			switch instr.Op {
			case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
				// handled below via successors
			case ir.OpHalt:
				halted = true
			default:
				s.stepAv(e, instr)
			}
		}
		if halted {
			noteExit(e)
			continue
		}
		last := &code[b.End-1]
		switch last.Op {
		case ir.OpJmpIf, ir.OpJmpIfNot:
			trueSucc, falseSucc := b.Succs[0], b.Succs[1]
			if last.Op == ir.OpJmpIfNot {
				trueSucc, falseSucc = b.Succs[1], b.Succs[0]
			}
			t := e.regs[last.A].truth()
			if t.CanTrue() {
				propagate(trueSucc, e)
			}
			if t.CanFalse() {
				propagate(falseSucc, e)
			}
		default: // OpJmp or plain fall-through
			propagate(b.Succs[0], e)
		}
	}
	if exit == nil {
		exit = entry.clone() // no path leaves (abstract infinite loop)
	}
	return ins, exit
}

// sccp is sparse conditional constant propagation over the whole program:
// init runs from a zeroed state, then step is iterated to a state fixpoint
// (exactly like analysis.Feasible), and every instruction whose result raw
// word is proved constant is rewritten to an OpConst while branches with a
// definite condition become unconditional jumps or nops.
func sccp(p *ir.Program) int {
	s := &sccpState{in: inputAvs(p)}
	entry := &aenv{regs: make([]av, p.NumRegs), state: make([]av, p.NumState)}
	for i := range entry.regs {
		entry.regs[i] = top() // registers hold garbage across runs
	}
	zero := av{known: true, raw: 0, itv: interval.Point(0)}
	for i := range entry.state {
		entry.state[i] = zero // Init() zeroes the state vector
	}
	initIns, cur := s.absFunc(p.Init, entry)
	var stepIns []*aenv
	converged := false
	for round := 0; round < optMaxStepRounds; round++ {
		var exit *aenv
		stepIns, exit = s.absFunc(p.Step, cur)
		next := joinAenv(cur, exit)
		if round >= optWidenStepRounds {
			widenAenv(cur, next)
		}
		if aenvEqual(next, cur) {
			converged = true
			break
		}
		cur = next
	}
	if !converged {
		// The step environments are not a fixpoint; folding from them would
		// be unsound. Widening makes this unreachable in practice.
		return 0
	}
	return s.transform(p.Init, initIns) + s.transform(p.Step, stepIns)
}

// transform replays each feasible block from its fixpoint entry environment
// and rewrites what the analysis proved.
func (s *sccpState) transform(code []ir.Instr, blockIns []*aenv) int {
	n := 0
	blocks := analysis.BasicBlocks(code)
	for bi, b := range blocks {
		if bi >= len(blockIns) || blockIns[bi] == nil {
			continue // infeasible or unreachable: jump threading cleans up
		}
		e := blockIns[bi].clone()
		for pc := b.Start; pc < b.End; pc++ {
			ins := &code[pc]
			if isControl(ins.Op) {
				if ins.Op == ir.OpJmpIf || ins.Op == ir.OpJmpIfNot {
					switch e.regs[ins.A].truth() {
					case interval.TriTrue:
						if ins.Op == ir.OpJmpIf {
							*ins = ir.Instr{Op: ir.OpJmp, Imm: ins.Imm}
						} else {
							*ins = ir.Instr{Op: ir.OpNop}
						}
						n++
					case interval.TriFalse:
						if ins.Op == ir.OpJmpIf {
							*ins = ir.Instr{Op: ir.OpNop}
						} else {
							*ins = ir.Instr{Op: ir.OpJmp, Imm: ins.Imm}
						}
						n++
					}
				}
				continue
			}
			dst, _ := irOperands(ins)
			if dst < 0 {
				s.stepAv(e, ins)
				continue
			}
			var res av
			switch ins.Op {
			case ir.OpLoadIn:
				res = s.in[ins.Imm]
			case ir.OpLoadState:
				res = e.state[ins.Imm]
			default:
				res = absEval(ins, func(r int32) av { return e.regs[r] })
			}
			e.regs[dst] = res
			if res.known && pureValueOp(ins.Op) && canonicalRaw(resultDT(ins), res.raw) {
				// The canonicality check matters: a pass-through op (mov,
				// select) can carry a raw word that is not a fixpoint of
				// encode∘decode under its own DT — e.g. a boolean-typed mov
				// of a chart-state constant 3. Folding it to `const (bool) 3`
				// would break the invariant every abstract analysis relies on
				// (const Imm words are canonical for their DT), making the
				// analyses decode 1 where the VM keeps 3.
				ni := ir.Instr{Op: ir.OpConst, DT: resultDT(ins), Dst: dst, Imm: res.raw}
				if *ins != ni {
					*ins = ni
					n++
				}
			}
		}
	}
	return n
}

// effTarget chases a jump target through nop runs and unconditional jump
// chains to its effective destination, with a hop guard against cycles
// (a jmp-to-itself loop is a legitimate — if hung — program).
func effTarget(code []ir.Instr, t int) int {
	for hops := 0; hops <= len(code); hops++ {
		for t < len(code) && code[t].Op == ir.OpNop {
			t++
		}
		if t < len(code) && code[t].Op == ir.OpJmp && int(code[t].Imm) != t {
			t = int(code[t].Imm)
			continue
		}
		return t
	}
	return t
}

// jumpThread nops unreachable instructions, retargets jumps through nop runs
// and jump chains, and deletes branches whose target equals their
// fall-through destination.
func jumpThread(p *ir.Program) int {
	n := 0
	for _, fn := range funcsOf(p) {
		code := fn.code
		reach := analysis.ReachablePCs(code)
		for pc := range code {
			if !reach[pc] && code[pc].Op != ir.OpNop {
				code[pc] = ir.Instr{Op: ir.OpNop}
				n++
			}
		}
		for pc := range code {
			ins := &code[pc]
			switch ins.Op {
			case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
				nt := effTarget(code, int(ins.Imm))
				if nt != int(ins.Imm) {
					ins.Imm = uint64(nt)
					n++
				}
				if effTarget(code, pc+1) == nt {
					// Taken and not-taken meet at the same instruction: the
					// branch decides nothing.
					*ins = ir.Instr{Op: ir.OpNop}
					n++
				}
			}
		}
	}
	return n
}

// copyProp forwards mov sources into readers, block-locally: within a basic
// block a read of a register defined by `mov dst = src` can read src
// directly as long as neither has been redefined.
func copyProp(p *ir.Program) int {
	n := 0
	for _, fn := range funcsOf(p) {
		for _, b := range analysis.BasicBlocks(fn.code) {
			copyOf := map[int32]int32{}
			resolve := func(r int32) int32 {
				if s, ok := copyOf[r]; ok {
					return s
				}
				return r
			}
			for pc := b.Start; pc < b.End; pc++ {
				ins := &fn.code[pc]
				old := *ins
				rewriteReads(ins, resolve)
				if *ins != old {
					n++
				}
				if dst, _ := irOperands(ins); dst >= 0 {
					delete(copyOf, dst)
					for k, v := range copyOf {
						if v == dst {
							delete(copyOf, k)
						}
					}
					if ins.Op == ir.OpMov && ins.A != dst {
						copyOf[dst] = ins.A // ins.A is already a root
					}
				}
			}
		}
	}
	return n
}

// exprKey identifies a pure computation for CSE: opcode, types, operand
// registers and immediate. Two instructions with equal keys in the same
// block (with no intervening redefinition) compute identical raw words.
type exprKey struct {
	op      ir.Op
	dt, dt2 model.DType
	a, b, c int32
	imm     uint64
}

func keyOf(ins *ir.Instr) exprKey {
	return exprKey{op: ins.Op, dt: ins.DT, dt2: ins.DT2, a: ins.A, b: ins.B, c: ins.C, imm: ins.Imm}
}

// keyReads returns the registers a key's computation reads.
func keyReads(k exprKey) []int32 {
	ins := ir.Instr{Op: k.op, A: k.a, B: k.b, C: k.c}
	_, reads := irOperands(&ins)
	return reads
}

// cse replaces a recomputation of an already-available expression with a mov
// from the register holding it, block-locally. Input loads stay available
// for a whole call (the input tuple is constant during one step); state
// loads are invalidated by stores to their slot.
func cse(p *ir.Program) int {
	n := 0
	for _, fn := range funcsOf(p) {
		for _, b := range analysis.BasicBlocks(fn.code) {
			avail := map[exprKey]int32{}
			for pc := b.Start; pc < b.End; pc++ {
				ins := &fn.code[pc]
				if ins.Op == ir.OpStoreState {
					for k := range avail {
						if k.op == ir.OpLoadState && k.imm == ins.Imm {
							delete(avail, k)
						}
					}
					continue
				}
				dst, _ := irOperands(ins)
				if dst < 0 {
					continue
				}
				eligible := pureValueOp(ins.Op) && ins.Op != ir.OpMov && ins.Op != ir.OpConst
				key := keyOf(ins)
				if eligible {
					if src, ok := avail[key]; ok && src != dst {
						*ins = ir.Instr{Op: ir.OpMov, DT: ins.DT, Dst: dst, A: src}
						n++
						eligible = false // the value now lives in dst too, but
						// tracking that would alias the entry; keep src.
					}
				}
				// dst is redefined: drop expressions reading it or held in it.
				for k, src := range avail {
					if src == dst {
						delete(avail, k)
						continue
					}
					for _, r := range keyReads(k) {
						if r == dst {
							delete(avail, k)
							break
						}
					}
				}
				if eligible {
					avail[key] = dst
				}
			}
		}
	}
	return n
}

// dse nops every pure computation whose destination the liveness analysis
// proves is never read afterward — the transform the verifier's dead-store
// lint was promoted into — plus identity movs.
func dse(p *ir.Program) int {
	live := analysis.ComputeLiveness(p)
	n := 0
	for _, fn := range funcsOf(p) {
		reach := analysis.ReachablePCs(fn.code)
		for pc := range fn.code {
			ins := &fn.code[pc]
			if !reach[pc] || ins.Op == ir.OpNop {
				continue
			}
			dst, _ := irOperands(ins)
			if dst < 0 || !pureValueOp(ins.Op) {
				continue
			}
			if ins.Op == ir.OpMov && ins.A == dst {
				*ins = ir.Instr{Op: ir.OpNop}
				n++
				continue
			}
			if lo := live.LiveOut(fn.name, pc); lo != nil && int(dst) < len(lo) && !lo[dst] {
				*ins = ir.Instr{Op: ir.OpNop}
				n++
			}
		}
	}
	return n
}
