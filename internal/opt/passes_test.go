package opt

import (
	"strings"
	"testing"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

func ti(op ir.Op, dt model.DType, dst, a, b int32, imm uint64) ir.Instr {
	return ir.Instr{Op: op, DT: dt, Dst: dst, A: a, B: b, Imm: imm}
}

func tprog(numRegs, numState int, init, step []ir.Instr) *ir.Program {
	return &ir.Program{
		Name:     "tiny",
		Init:     init,
		Step:     step,
		NumRegs:  numRegs,
		NumState: numState,
		In:       []model.Field{{Name: "u", Type: model.Int32}},
		Out:      []model.Field{{Name: "y", Type: model.Int32, Offset: 0}},
	}
}

func TestSCCPFoldsArithmeticAndBranches(t *testing.T) {
	i32 := model.Int32
	p := tprog(5, 0, nil, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 2),
		ti(ir.OpConst, i32, 1, 0, 0, 3),
		ti(ir.OpAdd, i32, 2, 0, 1, 0),   // r2 = 2+3 -> const 5
		ti(ir.OpGt, i32, 3, 2, 0, 0),    // r3 = 5>2 -> const true
		ti(ir.OpJmpIf, 0, 0, 3, 0, 6),   // always taken -> jmp
		ti(ir.OpConst, i32, 2, 0, 0, 9), // dead arm
		ti(ir.OpStoreOut, i32, 0, 2, 0, 0),
	})
	n := sccp(p)
	if n == 0 {
		t.Fatal("sccp made no changes")
	}
	if p.Step[2].Op != ir.OpConst || p.Step[2].Imm != 5 {
		t.Errorf("add not folded: %v", p.Step[2])
	}
	if p.Step[3].Op != ir.OpConst || p.Step[3].Imm != 1 {
		t.Errorf("compare not folded: %v", p.Step[3])
	}
	if p.Step[4].Op != ir.OpJmp {
		t.Errorf("definite branch not rewritten: %v", p.Step[4])
	}
}

// TestSCCPSkipsNonCanonicalFold is the regression test for the UTPC
// miscompile: a boolean-typed mov carrying the chart-state constant 3 must
// not fold to `const (bool) 3`, because every abstract analysis decodes that
// const as 1 while the VM keeps raw 3.
func TestSCCPSkipsNonCanonicalFold(t *testing.T) {
	i32, bl := model.Int32, model.Bool
	p := tprog(4, 0, nil, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 3),
		ti(ir.OpMov, bl, 1, 0, 0, 0), // bool-typed mov of raw 3
		ti(ir.OpConst, i32, 2, 0, 0, 2),
		ti(ir.OpEq, i32, 3, 1, 2, 0), // 3 == 2 under int32 decode: false
		ti(ir.OpStoreOut, i32, 0, 3, 0, 0),
	})
	sccp(p)
	if p.Step[1].Op == ir.OpConst && p.Step[1].DT == bl && p.Step[1].Imm == 3 {
		t.Fatalf("non-canonical const emitted: %v", p.Step[1])
	}
	// The downstream compare may still fold — but only to the VM's answer
	// (raw 3 != 2 -> false), never to the bool-decoded one.
	if p.Step[3].Op == ir.OpConst && p.Step[3].Imm != 0 {
		t.Fatalf("compare folded to the wrong value: %v", p.Step[3])
	}
}

func TestCopyPropRewritesThroughMovChains(t *testing.T) {
	i32 := model.Int32
	p := tprog(4, 0, nil, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 7),
		ti(ir.OpMov, i32, 1, 0, 0, 0),
		ti(ir.OpMov, i32, 2, 1, 0, 0),
		ti(ir.OpAdd, i32, 3, 2, 1, 0),
		ti(ir.OpStoreOut, i32, 0, 3, 0, 0),
	})
	if n := copyProp(p); n == 0 {
		t.Fatal("copy-prop made no changes")
	}
	if got := p.Step[3]; got.A != 0 || got.B != 0 {
		t.Errorf("add reads not rewritten to the root copy: %v", got)
	}
	// A redefinition of the source must invalidate the copy.
	p2 := tprog(3, 0, nil, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 7),
		ti(ir.OpMov, i32, 1, 0, 0, 0),
		ti(ir.OpConst, i32, 0, 0, 0, 8), // kills the r1=r0 fact
		ti(ir.OpMov, i32, 2, 1, 0, 0),
		ti(ir.OpStoreOut, i32, 0, 2, 0, 0),
	})
	copyProp(p2)
	if p2.Step[3].A != 1 {
		t.Errorf("stale copy used after source redefinition: %v", p2.Step[3])
	}
}

func TestCSEReusesRedundantExpressions(t *testing.T) {
	i32 := model.Int32
	p := tprog(5, 1, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 0),
		ti(ir.OpStoreState, i32, 0, 0, 0, 0),
	}, []ir.Instr{
		ti(ir.OpLoadIn, i32, 0, 0, 0, 0),
		ti(ir.OpLoadIn, i32, 1, 0, 0, 0), // same input load -> mov r1 = r0
		ti(ir.OpAdd, i32, 2, 0, 1, 0),
		ti(ir.OpAdd, i32, 3, 0, 1, 0), // same add -> mov r3 = r2
		ti(ir.OpSub, i32, 4, 2, 3, 0),
		ti(ir.OpStoreOut, i32, 0, 4, 0, 0),
	})
	if n := cse(p); n != 2 {
		t.Fatalf("cse changes = %d, want 2", n)
	}
	if p.Step[1].Op != ir.OpMov || p.Step[1].A != 0 {
		t.Errorf("redundant load not reused: %v", p.Step[1])
	}
	if p.Step[3].Op != ir.OpMov || p.Step[3].A != 2 {
		t.Errorf("redundant add not reused: %v", p.Step[3])
	}
	// A store to the state slot must kill loadstate availability.
	p2 := tprog(4, 1, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 0),
		ti(ir.OpStoreState, i32, 0, 0, 0, 0),
	}, []ir.Instr{
		ti(ir.OpLoadState, i32, 0, 0, 0, 0),
		ti(ir.OpLoadIn, i32, 1, 0, 0, 0),
		ti(ir.OpStoreState, i32, 0, 1, 0, 0),
		ti(ir.OpLoadState, i32, 2, 0, 0, 0), // must NOT become mov r2 = r0
		ti(ir.OpStoreOut, i32, 0, 2, 0, 0),
	})
	cse(p2)
	if p2.Step[3].Op != ir.OpLoadState {
		t.Errorf("loadstate reused across an intervening store: %v", p2.Step[3])
	}
}

func TestDSERemovesOverwrittenStores(t *testing.T) {
	i32 := model.Int32
	p := tprog(2, 0, nil, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 1), // overwritten before any read
		ti(ir.OpConst, i32, 0, 0, 0, 2),
		ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
	})
	if n := dse(p); n != 1 {
		t.Fatalf("dse changes = %d, want 1", n)
	}
	if p.Step[0].Op != ir.OpNop {
		t.Errorf("overwritten store survives: %v", p.Step[0])
	}
	if p.Step[1].Op != ir.OpConst {
		t.Errorf("live store removed: %v", p.Step[1])
	}
	// A register read by the next step call (cross-call liveness) must not
	// be considered dead at the end of step.
	p2 := tprog(2, 0, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 5),
	}, []ir.Instr{
		ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
		ti(ir.OpConst, i32, 0, 0, 0, 9), // feeds the NEXT step call
	})
	dse(p2)
	if p2.Step[1].Op != ir.OpConst {
		t.Errorf("cross-call live store removed: %v", p2.Step[1])
	}
}

func TestJumpThreadingChasesChains(t *testing.T) {
	i32 := model.Int32
	p := tprog(2, 0, nil, []ir.Instr{
		ti(ir.OpLoadIn, i32, 0, 0, 0, 0),
		ti(ir.OpJmpIf, 0, 0, 0, 0, 3),
		ti(ir.OpJmp, 0, 0, 0, 0, 4),
		ti(ir.OpJmp, 0, 0, 0, 0, 4), // hop in a chain
		ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
	})
	if n := jumpThread(p); n == 0 {
		t.Fatal("jump threading made no changes")
	}
	if p.Step[1].Op == ir.OpJmpIf && p.Step[1].Imm != 4 {
		t.Errorf("branch not retargeted through the chain: %v", p.Step[1])
	}
}

func TestCompactRemapsJumpsAndLoopSites(t *testing.T) {
	i32 := model.Int32
	p := tprog(2, 0, nil, []ir.Instr{
		ti(ir.OpLoadIn, i32, 0, 0, 0, 0),
		ti(ir.OpNop, 0, 0, 0, 0, 0),
		ti(ir.OpJmpIf, 0, 0, 0, 0, 5),
		ti(ir.OpNop, 0, 0, 0, 0, 0),
		ti(ir.OpConst, i32, 0, 0, 0, 1),
		ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
	})
	p.LoopSites = []ir.LoopSite{
		{Func: "step", PC: 2, Label: "kept"},
		{Func: "step", PC: 3, Label: "dropped-with-nop"},
	}
	if n := compact(p); n != 2 {
		t.Fatalf("compact removed %d, want 2", n)
	}
	if p.Step[1].Op != ir.OpJmpIf || p.Step[1].Imm != 3 {
		t.Errorf("jump not remapped: %v", p.Step[1])
	}
	if len(p.LoopSites) != 1 || p.LoopSites[0].PC != 1 || p.LoopSites[0].Label != "kept" {
		t.Errorf("loop sites not remapped: %+v", p.LoopSites)
	}
	if p.NumRegs != 1 {
		t.Errorf("register file not shrunk: NumRegs=%d", p.NumRegs)
	}
}

func TestOptimizeRejectsUnverifiedInput(t *testing.T) {
	i32 := model.Int32
	p := tprog(2, 0, nil, []ir.Instr{
		ti(ir.OpStoreOut, i32, 0, 1, 0, 0), // use of r1 before definition
	})
	if _, _, err := Optimize(p, nil, Config{}); err == nil ||
		!strings.Contains(err.Error(), "refusing unverified input") {
		t.Fatalf("Optimize accepted an unverifiable program: %v", err)
	}
}
