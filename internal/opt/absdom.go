// Package opt is the IR optimization pipeline: dataflow passes over the
// lowered register program (sparse conditional constant propagation, copy
// propagation, common-subexpression elimination, liveness-driven dead-store
// elimination, jump threading) gated by a translation validator, plus the
// product-program equivalence prover the mutation subsystem uses to
// reclassify provably-equivalent mutants.
//
// Every transformation is semantics-preserving with respect to the VM's
// observable behavior — outputs, probe streams, and termination — and every
// pipeline run is machine-checked: the strict verifier must accept the
// output, and an abstract product-program proof (falling back to VM-lockstep
// differential testing) must fail to distinguish it from the input.
package opt

import (
	"math"

	"cftcg/internal/interval"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// av is one abstract register or state value. It layers a concrete constant
// lattice (known/raw — the exact machine word, bit-precise through IEEE
// encode/decode because it is produced by vm.EvalPure) over the interval+NaN
// domain of analysis.Feasible. The interval half always soundly contains the
// decoded value; known additionally pins the raw bits.
type av struct {
	known bool
	raw   uint64
	itv   interval.Interval
	nan   bool
}

func top() av {
	return av{itv: interval.Span(math.Inf(-1), math.Inf(1)), nan: true}
}

// fromRaw builds the abstract value of a known machine word of type dt.
func fromRaw(dt model.DType, raw uint64) av {
	v := model.Decode(dt, raw)
	if math.IsNaN(v) {
		return av{known: true, raw: raw, itv: interval.Span(math.Inf(-1), math.Inf(1)), nan: true}
	}
	if !canonicalRaw(dt, raw) {
		// The raw word is not a fixpoint of encode∘decode under dt, so a
		// consumer decoding under a different type may see a value outside
		// Point(v). Keep the bit-exact raw (concrete folding stays sound)
		// but give up on interval bounds.
		return av{known: true, raw: raw, itv: interval.Span(math.Inf(-1), math.Inf(1)), nan: true}
	}
	return av{known: true, raw: raw, itv: interval.Point(v)}
}

// canonicalRaw reports whether raw is the canonical encoding of its own
// decoding under dt — the invariant the lowering maintains for every const
// and the condition under which interval reasoning about the decoded value
// is sound for any reader.
func canonicalRaw(dt model.DType, raw uint64) bool {
	return model.Encode(dt, model.Decode(dt, raw)) == raw
}

func (a av) join(b av) av {
	out := av{itv: a.itv.Hull(b.itv), nan: a.nan || b.nan}
	if a.known && b.known && a.raw == b.raw {
		out.known, out.raw = true, a.raw
	}
	return out
}

func (a av) eqv(b av) bool {
	return a.known == b.known && a.raw == b.raw && a.itv == b.itv && a.nan == b.nan
}

// truth is three-valued truth of the abstract value as a branch condition.
// A known word is tested exactly as the VM does (raw != 0); otherwise a
// possible NaN can test either way at the raw-bits level.
func (a av) truth() interval.Tri {
	if a.known {
		return interval.TriOf(a.raw == 0, a.raw != 0)
	}
	if a.nan {
		return interval.TriMixed
	}
	return a.itv.Truth()
}

// sanitizeAv repairs NaN interval bounds (possible from Inf*0 during
// interval arithmetic) into top, preserving a known raw word.
func sanitizeAv(a av) av {
	if math.IsNaN(a.itv.Lo) || math.IsNaN(a.itv.Hi) || a.itv.Lo > a.itv.Hi {
		t := top()
		t.known, t.raw = a.known, a.raw
		return t
	}
	return a
}

func hasInfAv(a av) bool {
	return math.IsInf(a.itv.Lo, 0) || math.IsInf(a.itv.Hi, 0)
}

// f32OutAv widens Float32 results outward by one single-precision ULP, like
// analysis' f32Out, so concrete re-rounding stays inside the bounds.
func f32OutAv(dt model.DType, a av) av {
	if dt != model.Float32 {
		return a
	}
	lo, hi := a.itv.Lo, a.itv.Hi
	if !math.IsInf(lo, 0) {
		lo = float64(math.Nextafter32(float32(lo), float32(math.Inf(-1))))
	}
	if !math.IsInf(hi, 0) {
		hi = float64(math.Nextafter32(float32(hi), float32(math.Inf(1))))
	}
	a.itv = interval.Span(lo, hi)
	return a
}

// boolAv encodes a three-valued bool result. Definite verdicts pin the raw
// word too: every bool-producing opcode in the VM emits exactly 0 or 1.
func boolAv(t interval.Tri) av {
	switch t {
	case interval.TriTrue:
		return av{known: true, raw: 1, itv: interval.Point(1)}
	case interval.TriFalse:
		return av{known: true, raw: 0, itv: interval.Point(0)}
	}
	return av{itv: interval.TriToItv(interval.TriMixed)}
}

// resultDT is the type in which an instruction's result raw word is encoded.
func resultDT(ins *ir.Instr) model.DType {
	switch ins.Op {
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpTruth:
		return model.Bool
	}
	return ins.DT
}

// pureValueOp reports whether the instruction computes a register result as
// a pure function of registers (and, for loads, of a memory cell) — the
// opcode class constant folding, CSE and DSE may touch. Loads are "pure"
// here in the sense of having no side effect; EvalPure still refuses them.
func pureValueOp(op ir.Op) bool {
	switch op {
	case ir.OpNop, ir.OpStoreOut, ir.OpStoreState, ir.OpProbe, ir.OpCondProbe,
		ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot, ir.OpHalt:
		return false
	}
	return true
}

func isControl(op ir.Op) bool {
	switch op {
	case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot, ir.OpHalt:
		return true
	}
	return false
}

// absEval abstractly evaluates one register-pure instruction (everything
// pureValueOp admits except the loads, which the caller resolves against its
// own memory environment). The transfer rules mirror analysis' absInterp
// exactly; on top of them, when every operand's raw word is known the result
// is computed concretely via vm.EvalPure and is itself known.
func absEval(ins *ir.Instr, get func(int32) av) av {
	if ins.Op == ir.OpMov {
		return get(ins.A)
	}
	dst, reads := irOperands(ins)
	if dst >= 0 {
		allKnown := true
		for _, r := range reads {
			if !get(r).known {
				allKnown = false
				break
			}
		}
		if allKnown {
			if raw, ok := vm.EvalPure(ins, func(r int32) uint64 { return get(r).raw }); ok {
				return fromRaw(resultDT(ins), raw)
			}
		}
	}
	switch ins.Op {
	case ir.OpConst:
		return fromRaw(ins.DT, ins.Imm)
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax:
		return sanitizeAv(absArith(ins.Op, ins.DT, get(ins.A), get(ins.B)))
	case ir.OpNeg:
		a := get(ins.A)
		return sanitizeAv(f32OutAv(ins.DT, av{itv: interval.WrapArith(ins.DT, interval.Neg(a.itv)), nan: a.nan && ins.DT.IsFloat()}))
	case ir.OpAbs:
		a := get(ins.A)
		return sanitizeAv(f32OutAv(ins.DT, av{itv: interval.WrapArith(ins.DT, interval.Abs(a.itv)), nan: a.nan && ins.DT.IsFloat()}))
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return absCompare(ins.Op, get(ins.A), get(ins.B))
	case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot:
		return absLogic(ins.Op, ins, get)
	case ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr:
		// Concretely foldable only via the all-known path above.
		return av{itv: interval.TypeRange(ins.DT)}
	case ir.OpTruth:
		a := get(ins.A)
		t := a.itv.Truth()
		return boolAv(interval.TriOf(t.CanFalse(), t.CanTrue() || a.nan))
	case ir.OpSelect:
		switch get(ins.A).truth() {
		case interval.TriTrue:
			return get(ins.B)
		case interval.TriFalse:
			return get(ins.C)
		}
		return get(ins.B).join(get(ins.C))
	case ir.OpCast:
		a := get(ins.A)
		if ins.DT.IsFloat() {
			return sanitizeAv(f32OutAv(ins.DT, av{itv: a.itv, nan: a.nan}))
		}
		if a.nan {
			return av{itv: interval.TypeRange(ins.DT)}
		}
		return sanitizeAv(av{itv: interval.Cast(ins.DT, ins.DT2, a.itv)})
	case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		a := get(ins.A)
		return sanitizeAv(f32OutAv(ins.DT, av{itv: interval.MathFn(ins.Op, a.itv), nan: a.nan}))
	case ir.OpSin, ir.OpCos, ir.OpTan:
		a := get(ins.A)
		// sin/cos/tan of an infinity is NaN.
		return sanitizeAv(f32OutAv(ins.DT, av{itv: interval.MathFn(ins.Op, a.itv), nan: a.nan || hasInfAv(a)}))
	}
	return top()
}

// absArith mirrors analysis' arith transfer: interval arithmetic plus the
// IEEE NaN-spawning cases (Inf-Inf, 0*Inf, Inf/Inf; VM division is total so
// x/0 never does).
func absArith(op ir.Op, dt model.DType, a, b av) av {
	var v interval.Interval
	nan := false
	switch op {
	case ir.OpAdd:
		v = interval.Add(a.itv, b.itv)
		nan = hasInfAv(a) && hasInfAv(b)
	case ir.OpSub:
		v = interval.Sub(a.itv, b.itv)
		nan = hasInfAv(a) && hasInfAv(b)
	case ir.OpMul:
		v = interval.Mul(a.itv, b.itv)
		nan = (a.itv.Contains0() && hasInfAv(b)) || (b.itv.Contains0() && hasInfAv(a))
	case ir.OpDiv:
		v = interval.Div(a.itv, b.itv)
		nan = hasInfAv(a) || hasInfAv(b)
	case ir.OpMin:
		v = interval.Min(a.itv, b.itv)
	case ir.OpMax:
		v = interval.Max(a.itv, b.itv)
	}
	if !dt.IsFloat() {
		return av{itv: interval.WrapArith(dt, v)}
	}
	return f32OutAv(dt, av{itv: v, nan: nan || a.nan || b.nan})
}

func absCompare(op ir.Op, a, b av) av {
	t := interval.Cmp(op, a.itv, b.itv)
	if a.nan || b.nan {
		if op == ir.OpNe {
			t = interval.TriOf(t.CanFalse(), true)
		} else {
			t = interval.TriOf(true, t.CanTrue())
		}
	}
	return boolAv(t)
}

func absLogic(op ir.Op, ins *ir.Instr, get func(int32) av) av {
	ta := get(ins.A).truth()
	var t interval.Tri
	switch op {
	case ir.OpNot:
		t = interval.TriOf(ta.CanTrue(), ta.CanFalse())
	case ir.OpAnd:
		tb := get(ins.B).truth()
		t = interval.TriOf(ta.CanFalse() || tb.CanFalse(), ta.CanTrue() && tb.CanTrue())
	case ir.OpOr:
		tb := get(ins.B).truth()
		t = interval.TriOf(ta.CanFalse() && tb.CanFalse(), ta.CanTrue() || tb.CanTrue())
	case ir.OpXor:
		tb := get(ins.B).truth()
		t = interval.TriOf(
			(ta.CanTrue() && tb.CanTrue()) || (ta.CanFalse() && tb.CanFalse()),
			(ta.CanTrue() && tb.CanFalse()) || (ta.CanFalse() && tb.CanTrue()))
	}
	return boolAv(t)
}

// inputAvs builds the abstract value of each input field, matching analysis'
// inputVals: full type range for integers and bools, unbounded and possibly
// NaN for floats (the fuzzer feeds raw bit patterns).
func inputAvs(p *ir.Program) []av {
	in := make([]av, len(p.In))
	for i, f := range p.In {
		if f.Type.IsFloat() {
			in[i] = top()
		} else {
			in[i] = av{itv: interval.TypeRange(f.Type)}
		}
	}
	return in
}

// irOperands returns an instruction's destination register (-1 when none)
// and read registers — the same classification as the verifier's.
func irOperands(ins *ir.Instr) (dst int32, reads []int32) {
	switch ins.Op {
	case ir.OpConst, ir.OpLoadIn, ir.OpLoadState:
		return ins.Dst, nil
	case ir.OpMov, ir.OpNeg, ir.OpAbs, ir.OpNot, ir.OpTruth, ir.OpCast,
		ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
		ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		return ins.Dst, []int32{ins.A}
	case ir.OpSelect:
		return ins.Dst, []int32{ins.A, ins.B, ins.C}
	case ir.OpStoreOut, ir.OpStoreState, ir.OpJmpIf, ir.OpJmpIfNot:
		return -1, []int32{ins.A}
	case ir.OpCondProbe:
		return -1, []int32{ins.B}
	case ir.OpJmp, ir.OpHalt, ir.OpNop, ir.OpProbe:
		return -1, nil
	default: // remaining binary ALU ops
		return ins.Dst, []int32{ins.A, ins.B}
	}
}

// rewriteReads applies f to every register an instruction reads, leaving
// destinations, immediates and probe IDs untouched.
func rewriteReads(ins *ir.Instr, f func(int32) int32) {
	switch ins.Op {
	case ir.OpConst, ir.OpLoadIn, ir.OpLoadState, ir.OpJmp, ir.OpHalt, ir.OpNop, ir.OpProbe:
	case ir.OpMov, ir.OpNeg, ir.OpAbs, ir.OpNot, ir.OpTruth, ir.OpCast,
		ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
		ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		ins.A = f(ins.A)
	case ir.OpSelect:
		ins.A, ins.B, ins.C = f(ins.A), f(ins.B), f(ins.C)
	case ir.OpStoreOut, ir.OpStoreState, ir.OpJmpIf, ir.OpJmpIfNot:
		ins.A = f(ins.A)
	case ir.OpCondProbe:
		ins.B = f(ins.B)
	default: // remaining binary ALU ops
		ins.A, ins.B = f(ins.A), f(ins.B)
	}
}
