package opt

import (
	"fmt"
	"strings"

	"cftcg/internal/analysis"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
)

// Config bounds one pipeline run.
type Config struct {
	// MaxRounds caps the pass-pipeline fixpoint iterations (default 6; the
	// pipeline stops early when a full round changes nothing).
	MaxRounds int
	// LockstepCases / LockstepSteps size the random half of the differential
	// fallback (defaults 32 cases × 48 steps).
	LockstepCases int
	LockstepSteps int
	// Seed drives the random lockstep inputs (default 1).
	Seed int64
	// Corpus adds concrete suite cases (raw tuple streams) to every
	// lockstep check — campaign corpora make the differential gate sharp
	// exactly where the program is actually exercised.
	Corpus [][]byte
	// NoValidate skips translation validation (pass-development tests only).
	NoValidate bool
}

// PassRun records one validated pass application.
type PassRun struct {
	Round   int    `json:"round"`
	Name    string `json:"name"`
	Changes int    `json:"changes"`
	// Verdict is "proved" (abstract product proof), "lockstep" (differential
	// fallback), "reverted" (validation rejected the rewrite; it was
	// discarded), or "unvalidated" (NoValidate).
	Verdict string `json:"verdict"`
}

// Stats summarizes a pipeline run.
type Stats struct {
	Program    string    `json:"program"`
	InitBefore int       `json:"initBefore"`
	StepBefore int       `json:"stepBefore"`
	InitAfter  int       `json:"initAfter"`
	StepAfter  int       `json:"stepAfter"`
	Rounds     int       `json:"rounds"`
	Folded     int       `json:"folded"`
	Threaded   int       `json:"threaded"`
	Copies     int       `json:"copies"`
	CSE        int       `json:"cse"`
	DeadStores int       `json:"deadStores"`
	Compacted  int       `json:"compacted"`
	Proved     int       `json:"proved"`
	Lockstep   int       `json:"lockstep"`
	Reverted   int       `json:"reverted"`
	Passes     []PassRun `json:"passes,omitempty"`
}

// Before and After return total instruction counts.
func (s *Stats) Before() int { return s.InitBefore + s.StepBefore }
func (s *Stats) After() int  { return s.InitAfter + s.StepAfter }

// Reduction is the fractional instruction-count drop.
func (s *Stats) Reduction() float64 {
	if s.Before() == 0 {
		return 0
	}
	return 1 - float64(s.After())/float64(s.Before())
}

// Summary renders the one-line pass ledger.
func (s *Stats) Summary() string {
	return fmt.Sprintf(
		"%d -> %d instructions (-%.1f%%): folded %d, threaded %d, copies %d, cse %d, dead stores %d, compacted %d (%d rounds; %d proved, %d lockstep, %d reverted)",
		s.Before(), s.After(), 100*s.Reduction(),
		s.Folded, s.Threaded, s.Copies, s.CSE, s.DeadStores, s.Compacted,
		s.Rounds, s.Proved, s.Lockstep, s.Reverted)
}

// Optimize runs the pass pipeline over a verified program and returns the
// optimized clone plus per-pass statistics. The input program is never
// mutated. Every pass application is translation-validated: the strict
// verifier must accept the candidate and either the abstract product proof
// or VM-lockstep differential testing (against the *original* program, with
// the corpus plus seeded random cases) must fail to distinguish it; a
// rejected rewrite is reverted and counted, never shipped. The final
// program is additionally gated end-to-end against the original.
func Optimize(p *ir.Program, plan *coverage.Plan, cfg Config) (*ir.Program, *Stats, error) {
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 6
	}
	if cfg.LockstepCases <= 0 {
		cfg.LockstepCases = 32
	}
	if cfg.LockstepSteps <= 0 {
		cfg.LockstepSteps = 48
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if err := p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("opt: invalid input program: %w", err)
	}
	if err := analysis.VerifyStrict(p, plan); err != nil {
		return nil, nil, fmt.Errorf("opt: refusing unverified input: %w", err)
	}
	st := &Stats{Program: p.Name, InitBefore: len(p.Init), StepBefore: len(p.Step)}
	passes := []struct {
		name    string
		run     func(*ir.Program) int
		counter *int
	}{
		{"sccp", sccp, &st.Folded},
		{"jump-thread", jumpThread, &st.Threaded},
		{"copy-prop", copyProp, &st.Copies},
		{"cse", cse, &st.CSE},
		{"dse", dse, &st.DeadStores},
	}

	cur := cloneProg(p)
	for round := 1; round <= cfg.MaxRounds; round++ {
		st.Rounds = round
		changed := false
		for _, ps := range passes {
			cand := cloneProg(cur)
			n := ps.run(cand)
			if n == 0 {
				continue
			}
			verdict := pipelineValidate(p, cur, cand, plan, cfg)
			st.Passes = append(st.Passes, PassRun{Round: round, Name: ps.name, Changes: n, Verdict: verdict})
			switch verdict {
			case "proved":
				st.Proved++
			case "lockstep":
				st.Lockstep++
			case "reverted":
				st.Reverted++
				continue // keep cur; the rewrite is discarded
			}
			*ps.counter += n
			cur = cand
			changed = true
		}
		if !changed {
			break
		}
	}

	// Compaction changes the program shape; it is validated purely by
	// verification + lockstep against the original.
	cand := cloneProg(cur)
	if n := compact(cand); n > 0 || cand.NumRegs != cur.NumRegs {
		verdict := "unvalidated"
		okC := true
		if !cfg.NoValidate {
			if cand.Validate() != nil || analysis.VerifyStrict(cand, plan) != nil ||
				Lockstep(p, cand, plan, cfg.Corpus, cfg.LockstepCases, cfg.LockstepSteps, cfg.Seed) != nil {
				okC = false
				verdict = "reverted"
			} else {
				verdict = "lockstep"
			}
		}
		st.Passes = append(st.Passes, PassRun{Round: st.Rounds, Name: "compact", Changes: n, Verdict: verdict})
		if okC {
			st.Compacted = n
			if verdict == "lockstep" {
				st.Lockstep++
			}
			cur = cand
		} else {
			st.Reverted++
		}
	}

	// End-to-end gate: the shipped program must be verifier-clean and
	// lockstep-indistinguishable from the original. Failure here is a
	// pipeline bug and is reported as an error, not silently shipped.
	if !cfg.NoValidate {
		if err := cur.Validate(); err != nil {
			return nil, nil, fmt.Errorf("opt: %s: optimized program invalid: %w", p.Name, err)
		}
		if err := analysis.VerifyStrict(cur, plan); err != nil {
			return nil, nil, fmt.Errorf("opt: %s: optimized program failed verification: %w", p.Name, err)
		}
		if err := Lockstep(p, cur, plan, cfg.Corpus, cfg.LockstepCases, cfg.LockstepSteps, cfg.Seed); err != nil {
			return nil, nil, fmt.Errorf("opt: %s: final translation validation failed: %w", p.Name, err)
		}
	}
	st.InitAfter, st.StepAfter = len(cur.Init), len(cur.Step)
	return cur, st, nil
}

// pipelineValidate checks one shape-preserving pass application: strict
// verification, then the abstract product proof against the pre-pass
// program, then the lockstep fallback against the original.
func pipelineValidate(orig, pre, cand *ir.Program, plan *coverage.Plan, cfg Config) string {
	if cfg.NoValidate {
		return "unvalidated"
	}
	if cand.Validate() != nil || analysis.VerifyStrict(cand, plan) != nil {
		return "reverted"
	}
	if ProveEquiv(pre, cand) {
		return "proved"
	}
	if Lockstep(orig, cand, plan, cfg.Corpus, cfg.LockstepCases, cfg.LockstepSteps, cfg.Seed) == nil {
		return "lockstep"
	}
	return "reverted"
}

// DeadStoreWarnings counts the verifier's dead-store lint findings — the
// before/after metric `cftcg analyze -stats` and modelinfo report.
func DeadStoreWarnings(p *ir.Program, plan *coverage.Plan) int {
	n := 0
	for _, is := range analysis.Verify(p, plan) {
		if is.Sev == analysis.SevWarn && strings.Contains(is.Msg, "dead store") {
			n++
		}
	}
	return n
}
