package opt

import (
	"testing"

	"cftcg/internal/ir"
	"cftcg/internal/model"
)

func TestProveEquivIdenticalPrograms(t *testing.T) {
	i32 := model.Int32
	mk := func() *ir.Program {
		return tprog(3, 1, []ir.Instr{
			ti(ir.OpConst, i32, 0, 0, 0, 0),
			ti(ir.OpStoreState, i32, 0, 0, 0, 0),
		}, []ir.Instr{
			ti(ir.OpLoadIn, i32, 0, 0, 0, 0),
			ti(ir.OpLoadState, i32, 1, 0, 0, 0),
			ti(ir.OpAdd, i32, 2, 0, 1, 0),
			ti(ir.OpStoreState, i32, 0, 2, 0, 0),
			ti(ir.OpStoreOut, i32, 0, 2, 0, 0),
		})
	}
	if !ProveEquiv(mk(), mk()) {
		t.Fatal("identical programs not proved equivalent")
	}
}

func TestProveEquivDeadStoreRemoval(t *testing.T) {
	i32 := model.Int32
	orig := tprog(3, 0, nil, []ir.Instr{
		ti(ir.OpLoadIn, i32, 0, 0, 0, 0),
		ti(ir.OpConst, i32, 1, 0, 0, 7), // dead: r1 never read
		ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
	})
	mod := cloneProg(orig)
	mod.Step[1] = ir.Instr{Op: ir.OpNop}
	if !ProveEquiv(orig, mod) {
		t.Fatal("dead-store removal not proved equivalent")
	}
}

func TestProveEquivRejectsOutputChange(t *testing.T) {
	i32 := model.Int32
	orig := tprog(2, 0, nil, []ir.Instr{
		ti(ir.OpConst, i32, 0, 0, 0, 7),
		ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
	})
	mod := cloneProg(orig)
	mod.Step[0].Imm = 8
	if ProveEquiv(orig, mod) {
		t.Fatal("output-changing rewrite proved equivalent")
	}
}

func TestProveEquivRejectsProbeChange(t *testing.T) {
	i32 := model.Int32
	mk := func(outcome int32) *ir.Program {
		return tprog(2, 0, nil, []ir.Instr{
			ti(ir.OpLoadIn, i32, 0, 0, 0, 0),
			{Op: ir.OpProbe, A: 0, B: outcome},
			ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
		})
	}
	if ProveEquiv(mk(0), mk(1)) {
		t.Fatal("probe-changing rewrite proved equivalent")
	}
}

func TestProveMutantEquivalentQuickRules(t *testing.T) {
	i32 := model.Int32
	orig := tprog(3, 0, nil, []ir.Instr{
		ti(ir.OpLoadIn, i32, 0, 0, 0, 0),
		ti(ir.OpConst, i32, 1, 0, 0, 7), // dead store
		ti(ir.OpJmp, 0, 0, 0, 0, 4),
		ti(ir.OpConst, i32, 0, 0, 0, 9), // unreachable
		ti(ir.OpStoreOut, i32, 0, 0, 0, 0),
	})

	// Mutating a dead store is output-equivalent.
	mut := cloneProg(orig)
	mut.Step[1].Imm = 99
	if !ProveMutantEquivalent(orig, mut, "step", 1) {
		t.Error("dead-store mutant not proved equivalent")
	}

	// Mutating unreachable code is output-equivalent.
	mut2 := cloneProg(orig)
	mut2.Step[3].Imm = 42
	if !ProveMutantEquivalent(orig, mut2, "step", 3) {
		t.Error("unreachable-code mutant not proved equivalent")
	}

	// Mutating the live computation is not.
	mut3 := cloneProg(orig)
	mut3.Step[0] = ti(ir.OpConst, i32, 0, 0, 0, 5)
	if ProveMutantEquivalent(orig, mut3, "step", 0) {
		t.Error("live-code mutant wrongly proved equivalent")
	}
}
