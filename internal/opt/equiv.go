package opt

import (
	"math"

	"cftcg/internal/analysis"
	"cftcg/internal/interval"
	"cftcg/internal/ir"
)

// The product-program equivalence prover. Two same-shape programs (equal
// instruction counts, register file, state vector and I/O layouts) are
// abstractly executed in lockstep over the interval+constant domain: one
// joint environment carries, per register and state cell, the left and
// right abstract values plus an eq bit — "the two concrete raw words are
// provably equal here". Observables must agree at every joint step:
//
//   - OpProbe must be literally identical on both sides,
//   - OpCondProbe must record a provably equal truth value,
//   - OpStoreOut must store provably equal raw words to the same slot,
//   - control flow must stay in lockstep: at a branch the two sides must
//     provably take the same edge (which also forces identical instruction
//     counts, so fuel exhaustion — the timeout kill oracle — agrees too).
//
// Under those rules a completed fixpoint (init, then step iterated with
// widening, exactly like analysis.Feasible) is a proof of observable
// equivalence; any rule failure is "inconclusive", never "inequivalent" —
// the caller falls back to differential testing or keeps the mutant alive.
//
// eq bits are established three ways: literally identical instructions over
// pairwise-eq operands (same inputs, same pure function), both raw words
// known and equal (the constant lattice, bit-precise via vm.EvalPure), and
// inheritance through mov/state flow. They are destroyed by any one-sided
// or non-identical definition that cannot re-establish them.

// pv pairs one register or state cell across the two programs.
type pv struct {
	l, r av
	eq   bool
}

type penv struct {
	regs, state []pv
}

func (e *penv) clone() *penv {
	return &penv{regs: append([]pv(nil), e.regs...), state: append([]pv(nil), e.state...)}
}

func joinPv(a, b pv) pv {
	return pv{l: a.l.join(b.l), r: a.r.join(b.r), eq: a.eq && b.eq}
}

func joinPenv(a, b *penv) *penv {
	out := a.clone()
	for i := range out.regs {
		out.regs[i] = joinPv(out.regs[i], b.regs[i])
	}
	for i := range out.state {
		out.state[i] = joinPv(out.state[i], b.state[i])
	}
	return out
}

func penvEqual(a, b *penv) bool {
	for i := range a.regs {
		if a.regs[i].eq != b.regs[i].eq || !a.regs[i].l.eqv(b.regs[i].l) || !a.regs[i].r.eqv(b.regs[i].r) {
			return false
		}
	}
	for i := range a.state {
		if a.state[i].eq != b.state[i].eq || !a.state[i].l.eqv(b.state[i].l) || !a.state[i].r.eqv(b.state[i].r) {
			return false
		}
	}
	return true
}

func widenPenv(prev, next *penv) {
	w := func(p, n pv) pv {
		if n.l.itv.Lo < p.l.itv.Lo {
			n.l.itv.Lo = math.Inf(-1)
		}
		if n.l.itv.Hi > p.l.itv.Hi {
			n.l.itv.Hi = math.Inf(1)
		}
		if n.r.itv.Lo < p.r.itv.Lo {
			n.r.itv.Lo = math.Inf(-1)
		}
		if n.r.itv.Hi > p.r.itv.Hi {
			n.r.itv.Hi = math.Inf(1)
		}
		return n
	}
	for i := range next.regs {
		next.regs[i] = w(prev.regs[i], next.regs[i])
	}
	for i := range next.state {
		next.state[i] = w(prev.state[i], next.state[i])
	}
}

// valEq reports whether left register la and right register ra provably hold
// the same raw word.
func (e *penv) valEq(la, ra int32) bool {
	if la == ra && e.regs[la].eq {
		return true
	}
	return e.regs[la].l.known && e.regs[ra].r.known && e.regs[la].l.raw == e.regs[ra].r.raw
}

type prover struct {
	in []av // shared abstract inputs (both sides read the same tuple)
}

// nopish treats identity movs as nops: they change no machine state.
func nopish(ins *ir.Instr) bool {
	return ins.Op == ir.OpNop || (ins.Op == ir.OpMov && ins.A == ins.Dst)
}

// stepPair applies one non-control joint instruction pair, returning false
// when observable equivalence cannot be established.
func (pr *prover) stepPair(e *penv, li, ri *ir.Instr) bool {
	leftGet := func(x int32) av { return e.regs[x].l }
	rightGet := func(x int32) av { return e.regs[x].r }

	// Observables and state stores first: they demand pairing.
	switch {
	case li.Op == ir.OpProbe || ri.Op == ir.OpProbe:
		return li.Op == ir.OpProbe && ri.Op == ir.OpProbe && li.A == ri.A && li.B == ri.B
	case li.Op == ir.OpCondProbe || ri.Op == ir.OpCondProbe:
		if li.Op != ir.OpCondProbe || ri.Op != ir.OpCondProbe || li.A != ri.A {
			return false
		}
		if e.valEq(li.B, ri.B) {
			return true
		}
		tl, tr := e.regs[li.B].l.truth(), e.regs[ri.B].r.truth()
		return tl != interval.TriMixed && tl == tr
	case li.Op == ir.OpStoreOut || ri.Op == ir.OpStoreOut:
		return li.Op == ir.OpStoreOut && ri.Op == ir.OpStoreOut && li.Imm == ri.Imm && e.valEq(li.A, ri.A)
	case li.Op == ir.OpStoreState && ri.Op == ir.OpStoreState && li.Imm == ri.Imm:
		e.state[li.Imm] = pv{l: e.regs[li.A].l, r: e.regs[ri.A].r, eq: e.valEq(li.A, ri.A)}
		return true
	case li.Op == ir.OpStoreState:
		if !nopish(ri) {
			return false
		}
		cell := &e.state[li.Imm]
		cell.l = e.regs[li.A].l
		cell.eq = cell.l.known && cell.r.known && cell.l.raw == cell.r.raw
		return true
	case ri.Op == ir.OpStoreState:
		if !nopish(li) {
			return false
		}
		cell := &e.state[ri.Imm]
		cell.r = e.regs[ri.A].r
		cell.eq = cell.l.known && cell.r.known && cell.l.raw == cell.r.raw
		return true
	}

	// Value ops and nops, evaluated per side against the pre-state.
	nopL, nopR := nopish(li), nopish(ri)
	if (!nopL && !pureValueOp(li.Op)) || (!nopR && !pureValueOp(ri.Op)) {
		return false
	}
	evalSide := func(ins *ir.Instr, get func(int32) av, stateAt func(uint64) av) av {
		switch ins.Op {
		case ir.OpLoadIn:
			return pr.in[ins.Imm]
		case ir.OpLoadState:
			return stateAt(ins.Imm)
		}
		return absEval(ins, get)
	}
	// Identical pure instructions over pairwise-equal operands produce
	// pairwise-equal results (same function of the same raw words; for
	// loadin, the very same input word on both sides).
	eqNew := false
	if !nopL && !nopR && *li == *ri {
		switch li.Op {
		case ir.OpLoadIn:
			eqNew = true
		case ir.OpLoadState:
			eqNew = e.state[li.Imm].eq
		default:
			eqNew = true
			_, reads := irOperands(li)
			for _, x := range reads {
				if !e.regs[x].eq {
					eqNew = false
					break
				}
			}
		}
	}
	var vl, vr av
	if !nopL {
		vl = evalSide(li, leftGet, func(k uint64) av { return e.state[k].l })
	}
	if !nopR {
		vr = evalSide(ri, rightGet, func(k uint64) av { return e.state[k].r })
	}
	switch {
	case !nopL && !nopR && li.Dst == ri.Dst:
		cell := &e.regs[li.Dst]
		cell.l, cell.r = vl, vr
		cell.eq = eqNew || (vl.known && vr.known && vl.raw == vr.raw)
	default:
		if !nopL {
			cell := &e.regs[li.Dst]
			cell.l = vl
			cell.eq = cell.l.known && cell.r.known && cell.l.raw == cell.r.raw
		}
		if !nopR {
			cell := &e.regs[ri.Dst]
			cell.r = vr
			cell.eq = cell.l.known && cell.r.known && cell.l.raw == cell.r.raw
		}
	}
	return true
}

// jointStarts computes basic-block leaders over the union of both codes'
// control flow, so any control instruction on either side ends its joint
// block.
func jointStarts(lc, rc []ir.Instr) []int {
	n := len(lc)
	leader := make([]bool, n+1)
	leader[0] = true
	mark := func(code []ir.Instr) {
		for pc := range code {
			switch code[pc].Op {
			case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
				if t := int(code[pc].Imm); t <= n {
					leader[t] = true
				}
				leader[pc+1] = true
			case ir.OpHalt:
				leader[pc+1] = true
			}
		}
	}
	mark(lc)
	mark(rc)
	var starts []int
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			starts = append(starts, pc)
		}
	}
	return starts
}

// sideNext is one side's control decision at a joint block end.
type sideNext struct {
	definite            bool
	next                int // valid when definite
	trueNext, falseNext int
	tri                 interval.Tri
	halt                bool
	condReg             int32
}

func sideResolve(ins *ir.Instr, val func(int32) av, pc, n int) (sideNext, bool) {
	fall := pc + 1
	switch ins.Op {
	case ir.OpJmp:
		return sideNext{definite: true, next: int(ins.Imm)}, true
	case ir.OpHalt:
		return sideNext{halt: true}, true
	case ir.OpJmpIf, ir.OpJmpIfNot:
		tn, fn := int(ins.Imm), fall
		if ins.Op == ir.OpJmpIfNot {
			tn, fn = fall, int(ins.Imm)
		}
		switch t := val(ins.A).truth(); t {
		case interval.TriTrue:
			return sideNext{definite: true, next: tn}, true
		case interval.TriFalse:
			return sideNext{definite: true, next: fn}, true
		default:
			if tn == fn {
				return sideNext{definite: true, next: tn}, true
			}
			return sideNext{trueNext: tn, falseNext: fn, tri: t, condReg: ins.A}, true
		}
	}
	if nopish(ins) {
		return sideNext{definite: true, next: fall}, true
	}
	// A value op opposite a control op: outside what the passes and mutation
	// operators produce; inconclusive.
	return sideNext{}, false
}

// productFunc abstractly executes the two same-length functions in lockstep
// from a joint entry environment. It returns the joined exit environment and
// whether every joint path kept the observables provably equal.
func (pr *prover) productFunc(lc, rc []ir.Instr, entry *penv) (*penv, bool) {
	n := len(lc)
	if n == 0 {
		return entry.clone(), true
	}
	starts := jointStarts(lc, rc)
	blockAt := make(map[int]int, len(starts))
	for i, s := range starts {
		blockAt[s] = i
	}
	endOf := func(bi int) int {
		if bi+1 < len(starts) {
			return starts[bi+1]
		}
		return n
	}
	ins := make([]*penv, len(starts))
	visits := make([]int, len(starts))
	ins[0] = entry.clone()
	work := []int{0}
	inWork := make([]bool, len(starts))
	inWork[0] = true
	var exit *penv
	noteExit := func(e *penv) {
		if exit == nil {
			exit = e.clone()
		} else {
			exit = joinPenv(exit, e)
		}
	}
	ok := true
	propagate := func(pc int, e *penv) {
		if pc >= n {
			noteExit(e)
			return
		}
		succ, found := blockAt[pc]
		if !found {
			ok = false // jump into the middle of a joint block: malformed
			return
		}
		if ins[succ] == nil {
			ins[succ] = e.clone()
		} else {
			joined := joinPenv(ins[succ], e)
			visits[succ]++
			if visits[succ] >= optWidenVisits {
				widenPenv(ins[succ], joined)
			}
			if penvEqual(joined, ins[succ]) {
				return
			}
			ins[succ] = joined
		}
		if !inWork[succ] {
			inWork[succ] = true
			work = append(work, succ)
		}
	}
	for len(work) > 0 && ok {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		e := ins[bi].clone()
		end := endOf(bi)
		resolved := false
		for pc := starts[bi]; pc < end; pc++ {
			li, ri := &lc[pc], &rc[pc]
			if isControl(li.Op) || isControl(ri.Op) {
				// Joint leaders make any control instruction the last of its
				// block.
				ln, okL := sideResolve(li, func(x int32) av { return e.regs[x].l }, pc, n)
				rn, okR := sideResolve(ri, func(x int32) av { return e.regs[x].r }, pc, n)
				if !okL || !okR {
					ok = false
					break
				}
				switch {
				case ln.halt && rn.halt:
					noteExit(e)
				case ln.halt != rn.halt:
					ok = false
				case ln.definite && rn.definite:
					if ln.next != rn.next {
						ok = false
						break
					}
					propagate(ln.next, e)
				case ln.definite != rn.definite:
					ok = false
				default:
					// Both genuinely conditional: same shape, provably equal
					// condition, and the edge is feasible only where both
					// sides' abstractions allow it (they bound the same
					// concrete value).
					if ln.trueNext != rn.trueNext || ln.falseNext != rn.falseNext ||
						!e.valEq(ln.condReg, rn.condReg) {
						ok = false
						break
					}
					if ln.tri.CanTrue() && rn.tri.CanTrue() {
						propagate(ln.trueNext, e)
					}
					if ln.tri.CanFalse() && rn.tri.CanFalse() {
						propagate(ln.falseNext, e)
					}
				}
				resolved = true
				break
			}
			if !pr.stepPair(e, li, ri) {
				ok = false
				break
			}
		}
		if !resolved && ok {
			propagate(end, e) // fell through the whole block
		}
	}
	if !ok {
		return nil, false
	}
	if exit == nil {
		exit = entry.clone() // no path leaves; both sides spin together
	}
	return exit, true
}

// sameShape reports whether the product construction applies at all.
func sameShape(l, r *ir.Program) bool {
	return len(l.Init) == len(r.Init) && len(l.Step) == len(r.Step) &&
		l.NumRegs == r.NumRegs && l.NumState == r.NumState &&
		len(l.In) == len(r.In) && len(l.Out) == len(r.Out)
}

// ProveEquiv attempts an abstract proof that two same-shape programs are
// observably equivalent: identical outputs, probe streams and termination on
// every input sequence. The proof runs init from a zeroed state (registers
// unconstrained and unrelated — they persist across cases and the two
// machines' histories differ) and then iterates step to a joint fixpoint
// with widening. false means inconclusive, never inequivalent.
func ProveEquiv(l, r *ir.Program) bool {
	if !sameShape(l, r) {
		return false
	}
	pr := &prover{in: inputAvs(l)}
	entry := &penv{regs: make([]pv, l.NumRegs), state: make([]pv, l.NumState)}
	for i := range entry.regs {
		entry.regs[i] = pv{l: top(), r: top()}
	}
	zero := av{known: true, raw: 0, itv: interval.Point(0)}
	for i := range entry.state {
		entry.state[i] = pv{l: zero, r: zero, eq: true}
	}
	cur, ok := pr.productFunc(l.Init, r.Init, entry)
	if !ok {
		return false
	}
	for round := 0; round < optMaxStepRounds; round++ {
		ex, ok := pr.productFunc(l.Step, r.Step, cur)
		if !ok {
			return false
		}
		next := joinPenv(cur, ex)
		if round >= optWidenStepRounds {
			widenPenv(cur, next)
		}
		if penvEqual(next, cur) {
			return true
		}
		cur = next
	}
	return false // no fixpoint within bounds: inconclusive
}

// ProveMutantEquivalent attempts to prove a single-instruction IR mutant
// observably equivalent to the original. Two cheap structural arguments run
// first — the patched instruction is unreachable (edges into it are
// untouched by the mutation, so it executes in neither program), or both
// versions are pure computations of the same dead register (liveness in both
// programs shows no later read) — before the full product proof. fn/pc
// locate the patch ("init" or "step"). false is inconclusive: the mutant
// stays in the score.
func ProveMutantEquivalent(orig, mut *ir.Program, fn string, pc int) bool {
	if !sameShape(orig, mut) {
		return false
	}
	oc, mc := orig.Step, mut.Step
	if fn == "init" {
		oc, mc = orig.Init, mut.Init
	}
	if pc >= 0 && pc < len(oc) {
		reach := analysis.ReachablePCs(oc)
		if !reach[pc] {
			return true
		}
		oi, mi := &oc[pc], &mc[pc]
		od, _ := irOperands(oi)
		md, _ := irOperands(mi)
		if od >= 0 && od == md && pureValueOp(oi.Op) && pureValueOp(mi.Op) {
			lo := analysis.ComputeLiveness(orig).LiveOut(fn, pc)
			lm := analysis.ComputeLiveness(mut).LiveOut(fn, pc)
			if lo != nil && lm != nil && int(od) < len(lo) && int(od) < len(lm) && !lo[od] && !lm[od] {
				return true
			}
		}
	}
	return ProveEquiv(orig, mut)
}
