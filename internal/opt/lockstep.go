package opt

import (
	"bytes"
	"fmt"
	"math/rand"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// Lockstep runs two programs in VM lockstep over the given corpus cases plus
// randomCases seeded random byte-stream cases, comparing per step the raw
// output words, the per-step probe bitmap, and the termination behavior
// (both hang or neither). It is the differential half of the translation
// validator: exact where the abstract product proof is conservative, but
// only as strong as the inputs it runs. A nil error means no divergence was
// observed.
func Lockstep(l, r *ir.Program, plan *coverage.Plan, cases [][]byte, randomCases, maxSteps int, seed int64) error {
	if l.TupleSize() != r.TupleSize() || len(l.In) != len(r.In) || len(l.Out) != len(r.Out) {
		return fmt.Errorf("opt: lockstep: input/output layouts differ")
	}
	if maxSteps <= 0 {
		maxSteps = 48
	}
	tuple := l.TupleSize()
	all := append([][]byte(nil), cases...)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < randomCases; i++ {
		n := (1 + rng.Intn(maxSteps)) * tuple
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		all = append(all, data)
	}

	var lrec, rrec *coverage.Recorder
	if plan != nil {
		lrec = coverage.NewRecorder(plan)
		rrec = coverage.NewRecorder(plan)
	}
	lm := vm.New(l, lrec)
	rm := vm.New(r, rrec)

	for ci, data := range all {
		le, re := lm.Init(), rm.Init()
		if (le == nil) != (re == nil) {
			return fmt.Errorf("opt: lockstep: case %d: init termination diverges (%v vs %v)", ci, le, re)
		}
		if le != nil {
			continue // both hung in init: equivalent on this case
		}
		steps := 0
		if tuple > 0 {
			steps = len(data) / tuple
		}
		if steps > maxSteps {
			steps = maxSteps
		}
		in := make([]uint64, len(l.In))
		for si := 0; si < steps; si++ {
			base := si * tuple
			for fi, f := range l.In {
				in[fi] = model.GetRaw(f.Type, data[base+f.Offset:])
			}
			if lrec != nil {
				lrec.BeginStep()
				rrec.BeginStep()
			}
			le, re = lm.Step(in), rm.Step(in)
			if (le == nil) != (re == nil) {
				return fmt.Errorf("opt: lockstep: case %d step %d: termination diverges (%v vs %v)", ci, si, le, re)
			}
			if le != nil {
				break // both hung at the same step
			}
			if !rawsEqual(lm.Out(), rm.Out()) {
				return fmt.Errorf("opt: lockstep: case %d step %d: outputs diverge (%v vs %v)", ci, si, lm.Out(), rm.Out())
			}
			if lrec != nil && !bytes.Equal(lrec.Curr, rrec.Curr) {
				return fmt.Errorf("opt: lockstep: case %d step %d: probe streams diverge", ci, si)
			}
		}
	}
	return nil
}

func rawsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
