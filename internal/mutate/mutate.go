// Package mutate is the mutation-testing subsystem: it derives faulty
// variants ("mutants") of a compiled model and measures how many of them the
// generated test suite can distinguish from the original — the mutation
// score, the strongest external validation of a suite's fault-detection
// power (MOTIF and "Fuzzing for CPS Mutation Testing" make the same case
// for CPS models).
//
// Mutants come from two layers. IR operators patch exactly one instruction
// of the lowered register program (relational flips, arithmetic swaps,
// constant perturbations, logical-connective swaps, transition-guard jump
// flips); they share the original coverage plan, so the kill oracle compares
// probe streams as well as outputs. Model operators rewrite a Stateflow
// chart (guard relational operators, transition priorities) and recompile,
// exercising the whole lowering pipeline. Every emitted mutant passes
// ir.Program.Validate and the analysis strict verifier — a malformed mutant
// would measure the generator, not the suite.
package mutate

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"cftcg/internal/analysis"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// Mutant is one faulty variant of a compiled model.
type Mutant struct {
	ID       int    `json:"id"`
	Operator string `json:"operator"`
	// Func is "init" or "step" for IR-level mutants, "chart" for
	// model-level ones.
	Func string `json:"func"`
	// PC is the patched instruction index (IR-level mutants only).
	PC int `json:"pc"`
	// Site describes the mutation in human terms.
	Site string `json:"site"`

	// Prog is the mutant program; Plan is its coverage plan. IR-level
	// mutants share the original plan, chart-level mutants own a
	// recompiled one. SamePlan marks probe streams as comparable with the
	// original's (same dense branch-ID space).
	Prog     *ir.Program    `json:"-"`
	Plan     *coverage.Plan `json:"-"`
	SamePlan bool           `json:"-"`

	// Fields lists the input fields whose values can reach the mutated
	// site (from the analysis influence map) — the fields that deserve
	// extra mutation energy while this mutant survives. Empty for
	// chart-level mutants.
	Fields []int `json:"fields,omitempty"`

	// code caches the threaded compilation of Prog for the batched runner,
	// so repeated scoring passes (the survivor feedback loop) compile each
	// mutant once. codeBad latches a compile rejection — such a mutant
	// permanently falls back to the sequential path.
	code    *vm.Code
	codeBad bool
}

// Config selects and bounds mutant generation.
type Config struct {
	// Operators restricts generation to the named operators (nil = all).
	// Known names: relop, arith, const, logic, guard, chart-guard,
	// chart-priority.
	Operators []string
	// Limit caps the number of mutants (0 = unlimited). Over-limit
	// generation is downsampled deterministically from Seed, preserving
	// generation order, so every operator keeps proportional
	// representation.
	Limit int
	// Seed drives the downsampling shuffle (default 1).
	Seed int64
}

// OperatorNames lists every implemented mutation operator.
func OperatorNames() []string {
	names := make([]string, 0, len(irOperators)+2)
	for _, op := range irOperators {
		names = append(names, op.name)
	}
	return append(names, "chart-guard", "chart-priority")
}

func (cfg Config) enabled(op string) bool {
	if len(cfg.Operators) == 0 {
		return true
	}
	for _, o := range cfg.Operators {
		if o == op {
			return true
		}
	}
	return false
}

// cloneProgram copies the instruction streams of a program; metadata slices
// (fields, state names, loop sites) are immutable and shared.
func cloneProgram(p *ir.Program) *ir.Program {
	q := *p
	q.Init = append([]ir.Instr(nil), p.Init...)
	q.Step = append([]ir.Instr(nil), p.Step...)
	return &q
}

// Generate derives every enabled mutant of a compiled model. m may be nil
// (e.g. in the campaign daemon, which only holds the compiled form); chart
// operators are then skipped. Each returned mutant has passed Validate and
// the strict verifier.
func Generate(c *codegen.Compiled, m *model.Model, cfg Config) []*Mutant {
	var muts []*Mutant
	add := func(mu *Mutant) {
		if mu.Prog.Validate() != nil || analysis.VerifyStrict(mu.Prog, mu.Plan) != nil {
			// Defensive: no operator is expected to emit malformed IR (the
			// property test holds every operator to that), but a broken
			// mutant must never reach the runner.
			return
		}
		muts = append(muts, mu)
	}

	inf := analysis.ComputeInfluence(c.Prog, c.Plan)
	for _, fn := range []struct {
		name string
		code []ir.Instr
	}{{"init", c.Prog.Init}, {"step", c.Prog.Step}} {
		for pc := range fn.code {
			orig := fn.code[pc]
			for _, op := range irOperators {
				if !cfg.enabled(op.name) {
					continue
				}
				for _, v := range op.variants(orig, fn.code, pc, c.Plan) {
					if v.ins == orig {
						continue // statically equivalent: skip, do not score
					}
					mp := cloneProgram(c.Prog)
					if fn.name == "init" {
						mp.Init[pc] = v.ins
					} else {
						mp.Step[pc] = v.ins
					}
					add(&Mutant{
						Operator: op.name,
						Func:     fn.name,
						PC:       pc,
						Site:     fmt.Sprintf("%s@%d: %s", fn.name, pc, v.desc),
						Prog:     mp,
						Plan:     c.Plan,
						SamePlan: true,
						Fields:   inf.FieldsOf(inf.TaintAt(fn.name, pc)),
					})
				}
			}
		}
	}
	if m != nil {
		muts = append(muts, chartMutants(c, m, cfg, func(mu *Mutant) bool {
			return mu.Prog.Validate() == nil && analysis.VerifyStrict(mu.Prog, mu.Plan) == nil
		})...)
	}

	muts = sample(muts, cfg)
	for i, mu := range muts {
		mu.ID = i
	}
	return muts
}

// sample downsamples to cfg.Limit mutants with a seeded shuffle, then
// restores generation order so runner output stays stable and readable.
func sample(muts []*Mutant, cfg Config) []*Mutant {
	if cfg.Limit <= 0 || len(muts) <= cfg.Limit {
		return muts
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	order := make(map[*Mutant]int, len(muts))
	for i, mu := range muts {
		order[mu] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(muts), func(i, j int) { muts[i], muts[j] = muts[j], muts[i] })
	muts = muts[:cfg.Limit]
	sort.Slice(muts, func(i, j int) bool { return order[muts[i]] < order[muts[j]] })
	return muts
}

// String renders a mutant for logs and survivor lists.
func (m *Mutant) String() string {
	return fmt.Sprintf("#%d %s %s", m.ID, m.Operator, m.Site)
}

// FilterOperators validates a comma-separated operator list against the
// implemented catalog (the CLI's -ops flag).
func FilterOperators(csv string) ([]string, error) {
	if csv == "" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, n := range OperatorNames() {
		known[n] = true
	}
	var out []string
	for _, tok := range strings.Split(csv, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if !known[tok] {
			return nil, fmt.Errorf("mutate: unknown operator %q (have %s)",
				tok, strings.Join(OperatorNames(), ", "))
		}
		out = append(out, tok)
	}
	return out, nil
}
