package mutate

import (
	"fmt"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/opt"
	"cftcg/internal/vm"
)

// The mutant runner executes the generated test suite against every mutant
// on the VM and compares each run against the original program's recorded
// trace. Any observable divergence kills the mutant:
//
//   - a differing output value on any step (strong kill),
//   - a differing per-step probe bitmap when the mutant shares the
//     original's coverage plan (weak kill — the fault propagated to control
//     flow but not yet to an output),
//   - exhausting the instruction fuel (killed-by-timeout: the mutation made
//     the model spin, vm.HangError is the oracle),
//   - a VM panic (killed-by-crash), or outliving a hang/crash the original
//     exhibits on the same input.
//
// Killed mutants are deduplicated by a behavior hash over their divergent
// run: two mutants detected with identical observable behavior count once —
// they are the same effective fault. Surviving mutants are never collapsed
// (each is a distinct undetected fault site) and the score denominator is
// distinct kills + survivors.

// RunConfig bounds mutant execution.
type RunConfig struct {
	// Fuel is the per-init/step instruction budget for mutant execution
	// (default 1<<18 — far above any legitimate step, far below the
	// default fuzzing fuel so hung mutants die quickly).
	Fuel int64
	// MaxSteps caps the iterations replayed per case (0 = whole case).
	MaxSteps int
	// NoProbe disables the probe-stream (weak kill) oracle, leaving output
	// divergence only.
	NoProbe bool
	// NoProve disables the equivalent-mutant proof pass: every survivor
	// stays in the score denominator, matching the pre-prover behavior.
	NoProve bool
	// NoBatch forces the sequential one-machine-per-mutant path instead of
	// the batched input-major runner. The two paths produce identical
	// reports (TestBatchedMatchesSequential); sequential remains as the
	// reference oracle and as a fallback for debugging.
	NoBatch bool
}

// batchGroupLanes bounds how many mutants share one vm.Batch. The slab sizes
// scale with lanes × the widest mutant's register file, so a cap keeps the
// working set inside cache while still amortizing allocation and compile
// overhead across the group.
const batchGroupLanes = 64

// DefaultMutantFuel bounds one mutant init/step call.
const DefaultMutantFuel = 1 << 18

// Result is one mutant's outcome.
type Result struct {
	ID       int    `json:"id"`
	Operator string `json:"operator"`
	Site     string `json:"site"`
	Killed   bool   `json:"killed"`
	// Reason is the divergence kind: output, probe, timeout, crash,
	// outlived ("" for survivors).
	Reason string `json:"reason,omitempty"`
	// KilledBy is the index of the killing case (-1 for survivors).
	KilledBy int `json:"killedBy"`
	// Duplicate marks a killed mutant whose observable behavior matches an
	// earlier kill; duplicates are excluded from the score.
	Duplicate bool `json:"duplicate,omitempty"`
	// Equivalent marks a surviving mutant the abstract product prover showed
	// to be observably identical to the original (outputs and probes): no
	// test suite can ever kill it, so it leaves the score denominator.
	Equivalent bool `json:"equivalent,omitempty"`
}

// OpStat aggregates per-operator outcomes.
type OpStat struct {
	Total      int `json:"total"`
	Killed     int `json:"killed"`
	Survived   int `json:"survived"`
	Duplicates int `json:"duplicates"`
	Equivalent int `json:"equivalent,omitempty"`
}

// Summary is the mutation-score report attached to campaign snapshots and
// printed by the CLI.
type Summary struct {
	Total        int               `json:"total"`
	Killed       int               `json:"killed"` // distinct kills
	Survived     int               `json:"survived"`
	Duplicates   int               `json:"duplicates"`
	Equivalent   int               `json:"equivalent,omitempty"` // proven unkillable
	TimeoutKills int               `json:"timeoutKills,omitempty"`
	CrashKills   int               `json:"crashKills,omitempty"`
	Score        float64           `json:"score"` // Killed / (Killed + Survived)
	Operators    map[string]OpStat `json:"operators,omitempty"`
	// Survivors lists up to 16 surviving mutant sites — the concrete holes
	// in the suite's fault-detection power.
	Survivors []string `json:"survivors,omitempty"`
}

// Report is the full mutant-run outcome: the summary plus per-mutant
// results (parallel to the generated mutants) and execution counters.
type Report struct {
	Summary Summary  `json:"summary"`
	Results []Result `json:"results"`
	Execs   int64    `json:"execs"` // mutant program runs (mutants × cases reached)
	Steps   int64    `json:"steps"` // mutant model iterations executed

	mutants []*Mutant
}

// stepTrace is one model iteration of the original program: raw outputs
// plus a hash of the per-step probe bitmap.
type stepTrace struct {
	out   []uint64
	probe uint64
}

// caseTrace is the original's behavior on one case; term is "" for a clean
// run, or the terminal event ("timeout", "crash") with the step it hit.
type caseTrace struct {
	steps []stepTrace
	term  string
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashWords(h uint64, ws []uint8) uint64 {
	for _, w := range ws {
		h ^= uint64(w)
		h *= fnvPrime
	}
	return h
}

func hash64(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> uint(s)) & 0xff
		h *= fnvPrime
	}
	return h
}

// decodeCases converts suite cases (byte tuple streams) into per-step input
// word vectors, capped at maxSteps iterations per case.
func decodeCases(p *ir.Program, cases [][]byte, maxSteps int) [][][]uint64 {
	tuple := p.TupleSize()
	out := make([][][]uint64, 0, len(cases))
	for _, data := range cases {
		n := 0
		if tuple > 0 {
			n = len(data) / tuple
		}
		if maxSteps > 0 && n > maxSteps {
			n = maxSteps
		}
		steps := make([][]uint64, n)
		for it := 0; it < n; it++ {
			base := it * tuple
			in := make([]uint64, len(p.In))
			for fi, f := range p.In {
				in[fi] = model.GetRaw(f.Type, data[base+f.Offset:])
			}
			steps[it] = in
		}
		out = append(out, steps)
	}
	return out
}

// safeInit/safeStep convert VM panics into a "crash" terminal event.
func safeInit(m *vm.Machine) (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	return m.Init(), false
}

func safeStep(m *vm.Machine, in []uint64) (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	return m.Step(in), false
}

func probeHash(rec *coverage.Recorder) uint64 {
	if rec == nil {
		return 0
	}
	return hashWords(fnvOffset, rec.Curr)
}

// traceCase records the original program's behavior on one case.
func traceCase(m *vm.Machine, rec *coverage.Recorder, steps [][]uint64) caseTrace {
	var tr caseTrace
	if err, crashed := safeInit(m); crashed || err != nil {
		tr.term = termOf(err, crashed)
		return tr
	}
	for _, in := range steps {
		if rec != nil {
			rec.BeginStep()
		}
		if err, crashed := safeStep(m, in); crashed || err != nil {
			tr.term = termOf(err, crashed)
			return tr
		}
		tr.steps = append(tr.steps, stepTrace{
			out:   append([]uint64(nil), m.Out()...),
			probe: probeHash(rec),
		})
	}
	return tr
}

func termOf(err error, crashed bool) string {
	if crashed {
		return "crash"
	}
	if _, ok := err.(*vm.HangError); ok {
		return "timeout"
	}
	if err != nil {
		return "crash"
	}
	return ""
}

// Run executes the suite against every mutant and scores the kills. The
// original program c provides the reference traces; cases are raw suite
// inputs (tuple streams).
func Run(c *codegen.Compiled, muts []*Mutant, cases [][]byte, cfg RunConfig) *Report {
	if cfg.Fuel <= 0 {
		cfg.Fuel = DefaultMutantFuel
	}
	decoded := decodeCases(c.Prog, cases, cfg.MaxSteps)

	// Reference traces, one per case, with the probe oracle active.
	baseRec := coverage.NewRecorder(c.Plan)
	baseM := vm.New(c.Prog, baseRec)
	baseM.SetFuel(cfg.Fuel)
	base := make([]caseTrace, len(decoded))
	for i, steps := range decoded {
		base[i] = traceCase(baseM, baseRec, steps)
	}

	rep := &Report{
		Results: make([]Result, len(muts)),
		mutants: muts,
		Summary: Summary{Total: len(muts), Operators: map[string]OpStat{}},
	}
	// Execute every mutant. The batched path runs groups of mutants as lanes
	// of one vm.Batch, input-major; outcomes are bit-identical to the
	// sequential path, so scoring below is oblivious to which path ran.
	outs := make([]mutantOutcome, len(muts))
	if cfg.NoBatch {
		for mi, mu := range muts {
			outs[mi] = runMutant(mu, decoded, base, cfg, rep)
		}
	} else {
		for start := 0; start < len(muts); start += batchGroupLanes {
			end := min(start+batchGroupLanes, len(muts))
			runMutantGroup(muts[start:end], decoded, base, cfg, rep, outs[start:end])
		}
	}

	seenKills := map[uint64]bool{}
	for mi, mu := range muts {
		res := outs[mi]
		res.ID, res.Operator, res.Site = mu.ID, mu.Operator, mu.Site
		if res.Killed && seenKills[res.hash] {
			res.Duplicate = true
		} else if res.Killed {
			seenKills[res.hash] = true
		}
		rep.Results[mi] = res.Result
		st := rep.Summary.Operators[mu.Operator]
		st.Total++
		switch {
		case res.Duplicate:
			st.Duplicates++
			rep.Summary.Duplicates++
		case res.Killed:
			st.Killed++
			rep.Summary.Killed++
			switch res.Reason {
			case "timeout":
				rep.Summary.TimeoutKills++
			case "crash":
				rep.Summary.CrashKills++
			}
		default:
			st.Survived++
			rep.Summary.Survived++
		}
		rep.Summary.Operators[mu.Operator] = st
	}

	// Equivalence pass: a survivor the product prover shows observably
	// identical to the original is unkillable by construction — no suite,
	// however good, can detect it. Reclassify it out of the denominator so
	// the score measures detection of detectable faults.
	if !cfg.NoProve {
		for mi, mu := range muts {
			res := &rep.Results[mi]
			if res.Killed || !mu.SamePlan {
				continue // plan-changing mutants have no common probe space
			}
			if opt.ProveMutantEquivalent(c.Prog, mu.Prog, mu.Func, mu.PC) {
				res.Equivalent = true
				rep.Summary.Survived--
				rep.Summary.Equivalent++
				st := rep.Summary.Operators[mu.Operator]
				st.Survived--
				st.Equivalent++
				rep.Summary.Operators[mu.Operator] = st
			}
		}
	}
	for mi, mu := range muts {
		res := &rep.Results[mi]
		if !res.Killed && !res.Equivalent && len(rep.Summary.Survivors) < 16 {
			rep.Summary.Survivors = append(rep.Summary.Survivors, mu.String())
		}
	}

	if d := rep.Summary.Killed + rep.Summary.Survived; d > 0 {
		rep.Summary.Score = float64(rep.Summary.Killed) / float64(d)
	}
	return rep
}

// mutantOutcome couples a Result with its behavior hash (internal).
type mutantOutcome struct {
	Result
	hash uint64
}

// runMutant replays the suite on one mutant, comparing step-lockstep with
// the reference traces. The first divergence kills; the remainder of the
// divergent case is still executed and hashed so the dedup hash reflects
// the mutant's observable behavior, not just the detection point.
func runMutant(mu *Mutant, decoded [][][]uint64, base []caseTrace, cfg RunConfig, rep *Report) (out mutantOutcome) {
	out = mutantOutcome{Result: Result{KilledBy: -1}}
	var rec *coverage.Recorder
	probes := mu.SamePlan && !cfg.NoProbe
	if probes {
		rec = coverage.NewRecorder(mu.Plan)
	}
	m := vm.New(mu.Prog, rec)
	m.SetFuel(cfg.Fuel)
	h := uint64(fnvOffset)
	defer func() { out.hash = h }() // every exit path carries the behavior hash

	kill := func(ci int, reason string) {
		out.Killed = true
		out.KilledBy = ci
		out.Reason = reason
		h = hashWords(h, []uint8(reason))
	}

	for ci, steps := range decoded {
		ref := base[ci]
		rep.Execs++
		if err, crashed := safeInit(m); crashed || err != nil {
			term := termOf(err, crashed)
			h = hash64(h, uint64(ci))
			h = hashWords(h, []uint8("init-"+term))
			if ref.term == "" || len(ref.steps) > 0 {
				kill(ci, term)
			}
			return out
		}
		diverged := false
		for si, in := range steps {
			if rec != nil {
				rec.BeginStep()
			}
			err, crashed := safeStep(m, in)
			rep.Steps++
			if crashed || err != nil {
				term := termOf(err, crashed)
				h = hash64(h, uint64(si))
				h = hashWords(h, []uint8(term))
				if !diverged {
					// The reference ran past this step cleanly (or hit a
					// different terminal): the mutation made this input
					// hang or crash — killed.
					kill(ci, term)
				}
				return out
			}
			for _, o := range m.Out() {
				h = hash64(h, o)
			}
			ph := probeHash(rec)
			if probes {
				h = hash64(h, ph)
			}
			if diverged {
				continue
			}
			switch {
			case si >= len(ref.steps):
				// Reference terminated here (hang/crash) but the mutant
				// keeps running: behavioral divergence.
				kill(ci, "outlived-"+ref.term)
				diverged = true
			case !equalWords(m.Out(), ref.steps[si].out):
				kill(ci, "output")
				diverged = true
			case probes && ph != ref.steps[si].probe:
				kill(ci, "probe")
				diverged = true
			}
		}
		if diverged {
			return out // rest of the divergent case hashed; later cases moot
		}
		if ref.term != "" && len(steps) > len(ref.steps) {
			// The reference died mid-case; the mutant finished it.
			kill(ci, "outlived-"+ref.term)
			return out
		}
	}
	out.hash = h
	return out
}

// laneState is one mutant's in-flight bookkeeping in the batched runner —
// the locals of runMutant, lifted into a struct so many mutants can advance
// through the case stream together.
type laneState struct {
	rec      *coverage.Recorder
	h        uint64
	out      mutantOutcome
	probes   bool
	done     bool // mutant finished: where runMutant would have returned
	diverged bool // within the current case
}

func (l *laneState) kill(ci int, reason string) {
	l.out.Killed = true
	l.out.KilledBy = ci
	l.out.Reason = reason
	l.h = hashWords(l.h, []uint8(reason))
}

// compileLane compiles one mutant for batch execution, converting a compile
// panic (a mutant the threaded backend rejects) into a fallback signal.
func compileLane(p *ir.Program) (c *vm.Code, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			c, ok = nil, false
		}
	}()
	return vm.CompileThreaded(p), true
}

// compiledCode returns the mutant's cached threaded code, compiling on first
// use: one compile per mutant amortized over every scoring pass that sees it
// (the survivor feedback loop rescored survivors each round).
func compiledCode(mu *Mutant) (*vm.Code, bool) {
	if mu.codeBad {
		return nil, false
	}
	if mu.code == nil {
		c, ok := compileLane(mu.Prog)
		if !ok {
			mu.codeBad = true
			return nil, false
		}
		mu.code = c
	}
	return mu.code, true
}

// safeBatchInit/safeBatchStep convert lane panics into a "crash" terminal
// event, mirroring safeInit/safeStep on the sequential path.
func safeBatchInit(b *vm.Batch, lane int) (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	return b.Init(lane), false
}

func safeBatchStep(b *vm.Batch, lane int, in []uint64) (err error, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
		}
	}()
	return b.Step(lane, in), false
}

// runMutantGroup executes up to batchGroupLanes mutants as lanes of one
// vm.Batch, input-major: every live lane advances through the same case and
// step together, so each decoded input vector is touched once per step while
// the lanes' register files stream through adjacent structure-of-arrays
// slabs. The kill logic, hash accumulation and counter increments reproduce
// runMutant exactly — a lane is simply runMutant's control flow flattened
// into a per-lane state machine. Mutants whose program the threaded compiler
// rejects fall back to the sequential path.
func runMutantGroup(muts []*Mutant, decoded [][][]uint64, base []caseTrace, cfg RunConfig, rep *Report, outs []mutantOutcome) {
	codes := make([]*vm.Code, 0, len(muts))
	recs := make([]*coverage.Recorder, 0, len(muts))
	lanes := make([]int, 0, len(muts)) // lane -> index into muts/outs
	for i, mu := range muts {
		code, ok := compiledCode(mu)
		if !ok {
			outs[i] = runMutant(mu, decoded, base, cfg, rep)
			continue
		}
		var rec *coverage.Recorder
		if mu.SamePlan && !cfg.NoProbe {
			rec = coverage.NewRecorder(mu.Plan)
		}
		codes = append(codes, code)
		recs = append(recs, rec)
		lanes = append(lanes, i)
	}
	if len(codes) == 0 {
		return
	}
	b := vm.NewBatchMulti(codes, recs)
	b.SetFuel(cfg.Fuel)
	ls := make([]laneState, len(lanes))
	for li := range ls {
		ls[li] = laneState{
			rec:    recs[li],
			h:      fnvOffset,
			out:    mutantOutcome{Result: Result{KilledBy: -1}},
			probes: recs[li] != nil,
		}
	}

	for ci, steps := range decoded {
		ref := base[ci]
		inCase := false
		for li := range ls {
			l := &ls[li]
			if l.done {
				continue
			}
			rep.Execs++
			if err, crashed := safeBatchInit(b, li); crashed || err != nil {
				term := termOf(err, crashed)
				l.h = hash64(l.h, uint64(ci))
				l.h = hashWords(l.h, []uint8("init-"+term))
				if ref.term == "" || len(ref.steps) > 0 {
					l.kill(ci, term)
				}
				l.done = true
				continue
			}
			l.diverged = false
			inCase = true
		}
		if !inCase {
			continue
		}
		for si, in := range steps {
			for li := range ls {
				l := &ls[li]
				if l.done {
					continue
				}
				if l.rec != nil {
					l.rec.BeginStep()
				}
				err, crashed := safeBatchStep(b, li, in)
				rep.Steps++
				if crashed || err != nil {
					term := termOf(err, crashed)
					l.h = hash64(l.h, uint64(si))
					l.h = hashWords(l.h, []uint8(term))
					if !l.diverged {
						l.kill(ci, term)
					}
					l.done = true
					continue
				}
				for _, o := range b.Out(li) {
					l.h = hash64(l.h, o)
				}
				ph := probeHash(l.rec)
				if l.probes {
					l.h = hash64(l.h, ph)
				}
				if l.diverged {
					continue
				}
				switch {
				case si >= len(ref.steps):
					l.kill(ci, "outlived-"+ref.term)
					l.diverged = true
				case !equalWords(b.Out(li), ref.steps[si].out):
					l.kill(ci, "output")
					l.diverged = true
				case l.probes && ph != ref.steps[si].probe:
					l.kill(ci, "probe")
					l.diverged = true
				}
			}
		}
		for li := range ls {
			l := &ls[li]
			if l.done {
				continue
			}
			if l.diverged {
				l.done = true // rest of the divergent case hashed; later cases moot
				continue
			}
			if ref.term != "" && len(steps) > len(ref.steps) {
				l.kill(ci, "outlived-"+ref.term)
				l.done = true
			}
		}
	}
	for li, mi := range lanes {
		ls[li].out.hash = ls[li].h
		outs[mi] = ls[li].out
	}
}

func equalWords(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FieldBoost converts the surviving mutants into per-input-field extra
// mutation energy: boost[f] counts the survivors whose mutated site the
// influence map links to field f. Feeding it to fuzz.Options.MutantBias
// turns mutation testing from a scoring pass into a fuzzing objective.
func (r *Report) FieldBoost(numFields int) []float64 {
	w := make([]float64, numFields)
	for i, res := range r.Results {
		if res.Killed || res.Equivalent || i >= len(r.mutants) {
			continue
		}
		for _, f := range r.mutants[i].Fields {
			if f >= 0 && f < numFields {
				w[f]++
			}
		}
	}
	return w
}

// Survivors returns the surviving mutants (parallel filtering of the
// generation list) — the feedback loop refuzzes and rescores just these.
func (r *Report) Survivors() []*Mutant {
	var out []*Mutant
	for i, res := range r.Results {
		if !res.Killed && !res.Equivalent && i < len(r.mutants) {
			out = append(out, r.mutants[i])
		}
	}
	return out
}

// String renders the summary for terminals.
func (s *Summary) String() string {
	eq := ""
	if s.Equivalent > 0 {
		eq = fmt.Sprintf(", equivalent: %d", s.Equivalent)
	}
	return fmt.Sprintf("mutants: %d, killed: %d (+%d duplicate), survived: %d%s, score: %.3f",
		s.Total, s.Killed, s.Duplicates, s.Survived, eq, s.Score)
}
