package mutate

import (
	"math/rand"
	"reflect"
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

func compile(t *testing.T, m *model.Model) *codegen.Compiled {
	t.Helper()
	c, err := codegen.Compile(m)
	if err != nil {
		t.Fatalf("compile %s: %v", m.Name, err)
	}
	return c
}

// encodeCase serializes one step sequence of per-field raw values into the
// byte-tuple stream the fuzz driver (and the mutant runner) consume.
func encodeCase(p *ir.Program, steps [][]uint64) []byte {
	data := make([]byte, len(steps)*p.TupleSize())
	for si, in := range steps {
		base := si * p.TupleSize()
		for fi, f := range p.In {
			model.PutRaw(f.Type, data[base+f.Offset:], in[fi])
		}
	}
	return data
}

// thresholdModel is y = (x > 5) ? 1 : 0 — one relational site, one decision.
func thresholdModel() *model.Model {
	b := model.NewBuilder("Thresh")
	x := b.Inport("x", model.Int32)
	cmp := b.Rel(">", x, b.ConstT(model.Int32, 5))
	y := b.Switch(cmp, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0))
	b.Outport("y", model.Int32, y)
	return b.Model()
}

// rawIRVariantCount re-derives the number of IR mutants every operator
// proposes (excluding statically-equivalent ones), bypassing Generate's
// defensive validation filter.
func rawIRVariantCount(c *codegen.Compiled) int {
	n := 0
	for _, code := range [][]ir.Instr{c.Prog.Init, c.Prog.Step} {
		for pc := range code {
			for _, op := range irOperators {
				for _, v := range op.variants(code[pc], code, pc, c.Plan) {
					if v.ins != code[pc] {
						n++
					}
				}
			}
		}
	}
	return n
}

// TestOperatorsEmitValidMutants is the property test: on every benchmark
// model, every mutant from every operator passes Program.Validate and the
// strict verifier — and none is silently rejected by Generate's defensive
// filter (the operators themselves must be shape-preserving).
func TestOperatorsEmitValidMutants(t *testing.T) {
	for _, e := range benchmodels.All() {
		m := e.Build()
		c := compile(t, m)
		muts := Generate(c, m, Config{})
		if len(muts) == 0 {
			t.Fatalf("%s: no mutants generated", e.Name)
		}
		irCount := 0
		for _, mu := range muts {
			if err := mu.Prog.Validate(); err != nil {
				t.Errorf("%s: mutant %s fails Validate: %v", e.Name, mu, err)
			}
			if err := analysis.VerifyStrict(mu.Prog, mu.Plan); err != nil {
				t.Errorf("%s: mutant %s fails verifier: %v", e.Name, mu, err)
			}
			if mu.Func != "chart" {
				irCount++
				if mu.PC < 0 {
					t.Errorf("%s: IR mutant %s has no PC", e.Name, mu)
				}
			}
		}
		if raw := rawIRVariantCount(c); irCount != raw {
			t.Errorf("%s: %d of %d IR variants rejected by validation — operators must be shape-preserving",
				e.Name, raw-irCount, raw)
		}
	}
}

// TestGenerateDeterministic: same model, same config — identical mutant list.
func TestGenerateDeterministic(t *testing.T) {
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	m := e.Build()
	c := compile(t, m)
	cfg := Config{Limit: 25, Seed: 7}
	a := Generate(c, m, cfg)
	b := Generate(c, m, cfg)
	if len(a) != 25 || len(b) != 25 {
		t.Fatalf("limit not applied: %d, %d mutants", len(a), len(b))
	}
	for i := range a {
		if a[i].Site != b[i].Site || a[i].Operator != b[i].Operator {
			t.Fatalf("mutant %d differs across runs: %q vs %q", i, a[i].Site, b[i].Site)
		}
	}
}

// TestKillAndDuplicate: on the threshold model with the single boundary
// input x=5, both relop mutants of the one Gt site (negation Le, boundary
// Ge) are killed with identical observable behavior — one distinct kill,
// one duplicate, score 1.
func TestKillAndDuplicate(t *testing.T) {
	m := thresholdModel()
	c := compile(t, m)
	muts := Generate(c, m, Config{Operators: []string{"relop"}})
	if len(muts) != 2 {
		for _, mu := range muts {
			t.Logf("mutant: %s", mu)
		}
		t.Fatalf("want 2 relop mutants of the single Gt site, got %d", len(muts))
	}
	for _, mu := range muts {
		if len(mu.Fields) != 1 || mu.Fields[0] != 0 {
			t.Errorf("mutant %s: influence fields = %v, want [0]", mu, mu.Fields)
		}
	}
	suite := [][]byte{encodeCase(c.Prog, [][]uint64{{model.EncodeInt(model.Int32, 5)}})}
	rep := Run(c, muts, suite, RunConfig{})
	s := rep.Summary
	if s.Total != 2 || s.Killed != 1 || s.Duplicates != 1 || s.Survived != 0 {
		t.Fatalf("summary = %+v, want 1 distinct kill + 1 duplicate", s)
	}
	if s.Score != 1 {
		t.Fatalf("score = %v, want 1 (duplicates excluded from denominator)", s.Score)
	}
	for _, r := range rep.Results {
		if !r.Killed || r.KilledBy != 0 {
			t.Errorf("result %+v: want killed by case 0", r)
		}
	}
}

// TestBoundarySurvivesWithoutEdgeInput: the boundary mutant Gt->Ge is only
// observable at x==5; a suite that misses the edge kills the negation but
// not the boundary, and FieldBoost routes the survivor back to field 0.
func TestBoundarySurvivesWithoutEdgeInput(t *testing.T) {
	b := model.NewBuilder("Thresh2")
	x := b.Inport("x", model.Int32)
	z := b.Inport("z", model.Int32)
	cmp := b.Rel(">", x, b.ConstT(model.Int32, 5))
	y := b.Switch(cmp, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0))
	b.Outport("y", model.Int32, y)
	b.Outport("w", model.Int32, z)
	m := b.Model()
	c := compile(t, m)
	muts := Generate(c, m, Config{Operators: []string{"relop"}})
	if len(muts) != 2 {
		t.Fatalf("want 2 relop mutants, got %d", len(muts))
	}
	suite := [][]byte{encodeCase(c.Prog, [][]uint64{
		{model.EncodeInt(model.Int32, 9), 0},
		{model.EncodeInt(model.Int32, 2), 0},
	})}
	rep := Run(c, muts, suite, RunConfig{})
	s := rep.Summary
	if s.Killed != 1 || s.Survived != 1 {
		t.Fatalf("summary = %+v, want exactly the negation killed and the boundary surviving", s)
	}
	if s.Score <= 0 || s.Score >= 1 {
		t.Fatalf("score = %v, want strictly between 0 and 1", s.Score)
	}
	boost := rep.FieldBoost(len(c.Prog.In))
	if boost[0] < 1 || boost[1] != 0 {
		t.Fatalf("FieldBoost = %v, want survivor energy on field 0 only", boost)
	}
	if sv := rep.Survivors(); len(sv) != 1 {
		t.Fatalf("Survivors() = %d, want 1", len(sv))
	}
}

// TestEquivalentMutantSurvives: max(x,x) lowers to a gt(x,x)-guarded select
// of two identical values, so its relop mutants cannot change any output —
// under the output-only oracle (NoProbe) they survive on every suite, while
// the x+1 -> x-1 mutant is killed by every input. With the probe oracle
// back on, the same mutants die as weak kills: the comparison feeds a
// recorded decision.
func TestEquivalentMutantSurvives(t *testing.T) {
	b := model.NewBuilder("Equiv")
	x := b.Inport("x", model.Int32)
	b.Outport("m", model.Int32, b.MinMax("max", x, x))
	b.Outport("y", model.Int32, b.Sum("++", x, b.ConstT(model.Int32, 1)))
	m := b.Model()
	c := compile(t, m)
	muts := Generate(c, m, Config{Operators: []string{"relop", "arith"}})
	if len(muts) < 3 {
		t.Fatalf("want >=3 mutants (gt swaps + add swap), got %d", len(muts))
	}
	suite := [][]byte{encodeCase(c.Prog, [][]uint64{
		{model.EncodeInt(model.Int32, 3)},
		{model.EncodeInt(model.Int32, -7)},
	})}
	rep := Run(c, muts, suite, RunConfig{NoProbe: true})
	s := rep.Summary
	if s.Killed < 1 {
		t.Fatalf("summary = %+v, want the Add->Sub mutant killed", s)
	}
	if s.Survived < 2 {
		t.Fatalf("summary = %+v, want the equivalent gt(x,x) mutants surviving", s)
	}
	if s.Score <= 0 || s.Score >= 1 {
		t.Fatalf("score = %v, want strictly between 0 and 1", s.Score)
	}
	if len(s.Survivors) == 0 {
		t.Fatalf("summary lists no survivor sites")
	}

	// Probe oracle on: the surviving gt(x,x) mutants flip a recorded
	// decision and die as weak kills.
	rep2 := Run(c, muts, suite, RunConfig{})
	if rep2.Summary.Survived >= s.Survived {
		t.Fatalf("probe oracle killed nothing extra: %+v vs %+v", rep2.Summary, s)
	}
	probeKill := false
	for _, r := range rep2.Results {
		if r.Reason == "probe" {
			probeKill = true
		}
	}
	if !probeKill {
		t.Fatalf("no weak (probe) kill recorded: %+v", rep2.Results)
	}
}

// TestTimeoutKill: mutating the loop increment of a bounded while makes the
// model spin to the iteration cap; with a small fuel budget the VM reports
// a hang and the runner counts a killed-by-timeout.
func TestTimeoutKill(t *testing.T) {
	b := model.NewBuilder("Spin")
	n := b.Inport("n", model.Int32)
	ml := b.Matlab("looper", `
input  int32 n;
output int32 s = 0;
while (s < n && s < 5) {
    s = s + 1;
}
`, n)
	b.Outport("s", model.Int32, ml.Out(0))
	m := b.Model()
	c := compile(t, m)
	muts := Generate(c, m, Config{Operators: []string{"arith"}})
	if len(muts) == 0 {
		t.Fatalf("no arith mutants in the loop body")
	}
	suite := [][]byte{encodeCase(c.Prog, [][]uint64{{model.EncodeInt(model.Int32, 3)}})}
	rep := Run(c, muts, suite, RunConfig{Fuel: 2000})
	if rep.Summary.TimeoutKills < 1 {
		t.Fatalf("summary = %+v, want at least one killed-by-timeout (s+1 -> s-1 spins)",
			rep.Summary)
	}
	if rep.Execs == 0 || rep.Steps == 0 {
		t.Fatalf("runner counters not populated: %+v", rep)
	}
}

// TestGuardMutationsTokens checks the mlfunc guard tokenizer: every
// relational occurrence yields one mutant, two-char tokens never decay to
// their one-char prefix.
func TestGuardMutationsTokens(t *testing.T) {
	got := guardMutations("soc >= 80 && soc < 95")
	if len(got) != 2 {
		t.Fatalf("got %d mutations, want 2: %v", len(got), got)
	}
	if got[0].text != "soc > 80 && soc < 95" {
		t.Errorf("first mutation = %q, want >= weakened to >", got[0].text)
	}
	if got[1].text != "soc >= 80 && soc <= 95" {
		t.Errorf("second mutation = %q, want < widened to <=", got[1].text)
	}
	if g := guardMutations("a ~= 0"); len(g) != 1 || g[0].text != "a == 0" {
		t.Errorf("~= swap: %v", g)
	}
	if g := guardMutations("a <= b"); len(g) != 1 || g[0].text != "a < b" {
		t.Errorf("<= must mutate as one token: %v", g)
	}
	if g := guardMutations(""); g != nil {
		t.Errorf("empty guard: %v", g)
	}
}

// TestChartMutants: the CPUTask dispatcher chart yields guard and priority
// mutants that recompile, carry their own plan, and are killable.
func TestChartMutants(t *testing.T) {
	e, err := benchmodels.Get("CPUTask")
	if err != nil {
		t.Fatal(err)
	}
	m := e.Build()
	c := compile(t, m)
	muts := Generate(c, m, Config{Operators: []string{"chart-guard", "chart-priority"}})
	if len(muts) == 0 {
		t.Fatalf("CPUTask: no chart mutants")
	}
	ops := map[string]int{}
	for _, mu := range muts {
		if mu.Func != "chart" || mu.PC != -1 {
			t.Errorf("chart mutant %s: Func=%q PC=%d", mu, mu.Func, mu.PC)
		}
		ops[mu.Operator]++
	}
	if ops["chart-guard"] == 0 {
		t.Errorf("no chart-guard mutants: %v", ops)
	}
	sc := Surface(c.Prog, m)
	if sc.Guards < ops["chart-guard"] {
		t.Errorf("surface guards %d < emitted guard mutants %d", sc.Guards, ops["chart-guard"])
	}
}

// TestEquivalentMutantReclassified is the end-to-end acceptance check for
// the equivalence prover: across the benchmark suite, at least one mutant
// that survives the test suite is proven observably equivalent and leaves
// the score denominator, and the corrected score is consistent with the
// counts. The NoProve run over the same mutants pins the baseline.
func TestEquivalentMutantReclassified(t *testing.T) {
	suiteFor := func(c *codegen.Compiled) [][]byte {
		var steps [][]uint64
		for s := 0; s < 6; s++ {
			in := make([]uint64, len(c.Prog.In))
			for fi, f := range c.Prog.In {
				in[fi] = model.EncodeInt(f.Type, int64(s*7+fi))
			}
			steps = append(steps, in)
		}
		return [][]byte{encodeCase(c.Prog, steps)}
	}
	foundEq := false
	for _, e := range benchmodels.All() {
		m := e.Build()
		c := compile(t, m)
		muts := Generate(c, m, Config{Limit: 120, Seed: 3})
		suite := suiteFor(c)
		rep := Run(c, muts, suite, RunConfig{})
		base := Run(c, muts, suite, RunConfig{NoProve: true})
		s, bs := rep.Summary, base.Summary
		if s.Killed != bs.Killed || s.Survived+s.Equivalent != bs.Survived {
			t.Errorf("%s: proving changed kill counts: %+v vs %+v", e.Name, s, bs)
		}
		if s.Equivalent > 0 {
			foundEq = true
			if s.Score < bs.Score {
				t.Errorf("%s: removing unkillable mutants lowered the score: %v -> %v",
					e.Name, bs.Score, s.Score)
			}
			eqResults := 0
			for _, r := range rep.Results {
				if r.Equivalent {
					eqResults++
					if r.Killed {
						t.Errorf("%s: mutant %d both killed and equivalent", e.Name, r.ID)
					}
				}
			}
			if eqResults != s.Equivalent {
				t.Errorf("%s: summary says %d equivalent, results say %d",
					e.Name, s.Equivalent, eqResults)
			}
			if len(rep.Survivors()) != s.Survived {
				t.Errorf("%s: Survivors() = %d, summary Survived = %d",
					e.Name, len(rep.Survivors()), s.Survived)
			}
			t.Logf("%s: %s", e.Name, s.String())
		}
	}
	if !foundEq {
		t.Fatal("no benchmark mutant was proven equivalent — the prover never fired")
	}
}

// randomSuite builds nCases random step sequences for p, reproducibly.
func randomSuite(p *ir.Program, seed int64, nCases, nSteps int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	suite := make([][]byte, nCases)
	for ci := range suite {
		steps := make([][]uint64, nSteps)
		for si := range steps {
			in := make([]uint64, len(p.In))
			for fi, f := range p.In {
				in[fi] = model.EncodeInt(f.Type, int64(rng.Intn(512)-256))
			}
			steps[si] = in
		}
		suite[ci] = encodeCase(p, steps)
	}
	return suite
}

// TestBatchedMatchesSequential: the batched input-major runner and the
// sequential one-machine-per-mutant path are the same oracle. Every field of
// the report — kill reasons, killing case, duplicate collapsing (which flows
// through the behavior hashes), execution counters, score — must be
// identical, across plain runs and a tiny-fuel run that exercises the
// timeout and terminal-event paths.
func TestBatchedMatchesSequential(t *testing.T) {
	for _, name := range []string{"CPUTask", "SolarPV"} {
		e, err := benchmodels.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m := e.Build()
		c := compile(t, m)
		muts := Generate(c, m, Config{Limit: 90, Seed: 11})
		suite := randomSuite(c.Prog, 17, 4, 12)
		for _, cfg := range []RunConfig{
			{NoProve: true},
			{NoProve: true, NoProbe: true},
			{NoProve: true, Fuel: 600, MaxSteps: 6},
		} {
			seqCfg := cfg
			seqCfg.NoBatch = true
			seq := Run(c, muts, suite, seqCfg)
			bat := Run(c, muts, suite, cfg)
			if !reflect.DeepEqual(seq.Summary, bat.Summary) {
				t.Fatalf("%s cfg %+v: summaries differ\nseq: %+v\nbat: %+v", name, cfg, seq.Summary, bat.Summary)
			}
			if seq.Execs != bat.Execs || seq.Steps != bat.Steps {
				t.Fatalf("%s cfg %+v: counters differ: seq %d/%d, bat %d/%d",
					name, cfg, seq.Execs, seq.Steps, bat.Execs, bat.Steps)
			}
			for i := range seq.Results {
				if !reflect.DeepEqual(seq.Results[i], bat.Results[i]) {
					t.Fatalf("%s cfg %+v: mutant %d differs\nseq: %+v\nbat: %+v",
						name, cfg, i, seq.Results[i], bat.Results[i])
				}
			}
		}
	}
}
