package mutate

import (
	"fmt"

	"cftcg/internal/codegen"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

// Model-level mutation operators: they rewrite a Stateflow chart in a deep
// copy of the model graph and recompile. Unlike the IR operators these
// exercise the whole lowering pipeline, and they reach chart structure the
// lowered form obscures (transition priority order). A mutation that fails
// to recompile is discarded — it would be a build error, not a fault.

// chartSite locates one chart block in the (sub)graph tree by block path.
type chartSite struct {
	path  []model.BlockID // block index per nesting level
	block *model.Block
	chart *stateflow.Chart
}

func findCharts(g *model.Graph, prefix []model.BlockID) []chartSite {
	var out []chartSite
	for i, b := range g.Blocks {
		path := append(append([]model.BlockID(nil), prefix...), model.BlockID(i))
		if ch, ok := b.ChartSpec.(*stateflow.Chart); ok {
			out = append(out, chartSite{path: path, block: b, chart: ch})
		}
		if b.Sub != nil {
			out = append(out, findCharts(b.Sub, path)...)
		}
	}
	return out
}

// cloneModel deep-copies the graph tree, block params and chart specs so a
// mutation cannot leak into the original model or its siblings.
func cloneModel(m *model.Model) *model.Model {
	mm := *m
	mm.Root = *cloneGraph(&m.Root)
	return &mm
}

func cloneGraph(g *model.Graph) *model.Graph {
	ng := &model.Graph{
		Blocks: make([]*model.Block, len(g.Blocks)),
		Lines:  append([]model.Line(nil), g.Lines...),
	}
	for i, b := range g.Blocks {
		nb := *b
		nb.Params = b.Params.Clone()
		if b.Sub != nil {
			nb.Sub = cloneGraph(b.Sub)
		}
		if ch, ok := b.ChartSpec.(*stateflow.Chart); ok {
			nb.ChartSpec = cloneChart(ch)
		}
		ng.Blocks[i] = &nb
	}
	return ng
}

func cloneChart(c *stateflow.Chart) *stateflow.Chart {
	nc := *c
	nc.Inputs = append([]stateflow.Var(nil), c.Inputs...)
	nc.Outputs = append([]stateflow.Var(nil), c.Outputs...)
	nc.Locals = append([]stateflow.Var(nil), c.Locals...)
	nc.States = make([]*stateflow.State, len(c.States))
	for i, s := range c.States {
		cp := *s
		nc.States[i] = &cp
	}
	nc.Transitions = make([]*stateflow.Transition, len(c.Transitions))
	for i, t := range c.Transitions {
		cp := *t
		nc.Transitions[i] = &cp
	}
	return &nc
}

// chartAt resolves a site path inside a cloned model.
func chartAt(m *model.Model, path []model.BlockID) *stateflow.Chart {
	g := &m.Root
	for i, id := range path {
		b := g.Block(id)
		if b == nil {
			return nil
		}
		if i == len(path)-1 {
			ch, _ := b.ChartSpec.(*stateflow.Chart)
			return ch
		}
		g = b.Sub
		if g == nil {
			return nil
		}
	}
	return nil
}

// relSwaps maps each mlfunc relational token to its mutated form. Two-char
// tokens are matched before one-char ones so "<=" never mutates as "<".
var relSwaps = []struct{ from, to string }{
	{">=", ">"}, {"<=", "<"}, {"==", "~="}, {"~=", "=="}, {"!=", "=="},
	{">", ">="}, {"<", "<="},
}

// guardMutations returns every single-token relational mutation of a guard
// expression: for each relational operator occurrence, one mutant guard with
// that occurrence swapped.
func guardMutations(guard string) []struct{ text, desc string } {
	var out []struct{ text, desc string }
	for i := 0; i < len(guard); i++ {
		for _, sw := range relSwaps {
			n := len(sw.from)
			if i+n > len(guard) || guard[i:i+n] != sw.from {
				continue
			}
			// A one-char token must not split a two-char one ("<" inside
			// "<=", "=" handled by never listing bare "=").
			if n == 1 && i+1 < len(guard) && guard[i+1] == '=' {
				continue
			}
			mutated := guard[:i] + sw.to + guard[i+n:]
			out = append(out, struct{ text, desc string }{
				text: mutated,
				desc: fmt.Sprintf("%q -> %q", guard, mutated),
			})
			break // longest token at this offset handled; move on
		}
	}
	return out
}

// chartMutants generates the model-level mutants: guard relational swaps and
// transition-priority swaps, each recompiled from a deep model clone. keep
// filters out mutants whose recompiled program fails validation.
func chartMutants(c *codegen.Compiled, m *model.Model, cfg Config, keep func(*Mutant) bool) []*Mutant {
	var out []*Mutant
	build := func(patch func(*stateflow.Chart) bool, path []model.BlockID, op, site string) {
		mm := cloneModel(m)
		ch := chartAt(mm, path)
		if ch == nil || !patch(ch) {
			return
		}
		mc, err := codegen.Compile(mm)
		if err != nil {
			return // a mutation that breaks lowering is not a measurable fault
		}
		mu := &Mutant{
			Operator: op,
			Func:     "chart",
			PC:       -1,
			Site:     site,
			Prog:     mc.Prog,
			Plan:     mc.Plan,
			SamePlan: mc.Plan.NumBranches == c.Plan.NumBranches,
		}
		if keep(mu) {
			out = append(out, mu)
		}
	}

	for _, cs := range findCharts(&m.Root, nil) {
		chartName := cs.chart.Name
		if cfg.enabled("chart-guard") {
			for ti, t := range cs.chart.Transitions {
				for _, gm := range guardMutations(t.Guard) {
					ti, text := ti, gm.text
					build(func(ch *stateflow.Chart) bool {
						ch.Transitions[ti].Guard = text
						return true
					}, cs.path, "chart-guard",
						fmt.Sprintf("chart %s %s: guard %s", chartName, t.Label(), gm.desc))
				}
			}
		}
		if cfg.enabled("chart-priority") {
			// Swap the two highest-priority outgoing transitions of each
			// state that has a real priority order to permute.
			for _, st := range cs.chart.States {
				from := cs.chart.From(st.Name)
				if len(from) < 2 || from[0].Priority == from[1].Priority {
					continue
				}
				a := transitionIndex(cs.chart, from[0])
				b := transitionIndex(cs.chart, from[1])
				if a < 0 || b < 0 {
					continue
				}
				build(func(ch *stateflow.Chart) bool {
					ch.Transitions[a].Priority, ch.Transitions[b].Priority =
						ch.Transitions[b].Priority, ch.Transitions[a].Priority
					return true
				}, cs.path, "chart-priority",
					fmt.Sprintf("chart %s state %s: swap priorities of %s and %s",
						chartName, st.Name, from[0].Label(), from[1].Label()))
			}
		}
	}
	return out
}

func transitionIndex(c *stateflow.Chart, t *stateflow.Transition) int {
	for i, x := range c.Transitions {
		if x == t {
			return i
		}
	}
	return -1
}
