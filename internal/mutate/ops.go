package mutate

import (
	"fmt"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// variant is one candidate replacement for a single instruction.
type variant struct {
	ins  ir.Instr
	desc string
}

// irOp is one IR-level mutation operator: given an instruction (plus its
// function body and plan for context), it proposes replacements. Every
// replacement must keep the instruction's operand shape — same registers
// read and written, same jump structure — so the mutant trivially preserves
// Validate/verifier invariants and differs from the original in semantics
// only.
type irOp struct {
	name     string
	variants func(ins ir.Instr, code []ir.Instr, pc int, plan *coverage.Plan) []variant
}

var irOperators = []irOp{
	{name: "relop", variants: relopVariants},
	{name: "arith", variants: arithVariants},
	{name: "const", variants: constVariants},
	{name: "logic", variants: logicVariants},
	{name: "guard", variants: guardVariants},
}

func swapOp(ins ir.Instr, to ir.Op, desc string) variant {
	out := ins
	out.Op = to
	return variant{ins: out, desc: desc}
}

// relopVariants implements ROR in its two classic flavours: negation
// (a<b -> a>=b) surfaces on almost every input, boundary (a<b -> a<=b)
// only on the equality edge — the mutants coverage alone rarely kills.
func relopVariants(ins ir.Instr, _ []ir.Instr, _ int, _ *coverage.Plan) []variant {
	type pair struct{ neg, bound ir.Op }
	table := map[ir.Op]pair{
		ir.OpEq: {neg: ir.OpNe},
		ir.OpNe: {neg: ir.OpEq},
		ir.OpLt: {neg: ir.OpGe, bound: ir.OpLe},
		ir.OpLe: {neg: ir.OpGt, bound: ir.OpLt},
		ir.OpGt: {neg: ir.OpLe, bound: ir.OpGe},
		ir.OpGe: {neg: ir.OpLt, bound: ir.OpGt},
	}
	p, ok := table[ins.Op]
	if !ok {
		return nil
	}
	out := []variant{swapOp(ins, p.neg, fmt.Sprintf("%v -> %v (negation)", ins.Op, p.neg))}
	if p.bound != 0 {
		out = append(out, swapOp(ins, p.bound, fmt.Sprintf("%v -> %v (boundary)", ins.Op, p.bound)))
	}
	return out
}

func arithVariants(ins ir.Instr, _ []ir.Instr, _ int, _ *coverage.Plan) []variant {
	table := map[ir.Op]ir.Op{
		ir.OpAdd: ir.OpSub, ir.OpSub: ir.OpAdd,
		ir.OpMul: ir.OpDiv, ir.OpDiv: ir.OpMul,
		ir.OpMin: ir.OpMax, ir.OpMax: ir.OpMin,
	}
	to, ok := table[ins.Op]
	if !ok {
		return nil
	}
	return []variant{swapOp(ins, to, fmt.Sprintf("%v -> %v", ins.Op, to))}
}

// constVariants perturbs OpConst immediates: off-by-one in the constant's
// own type, sign flip, and the zero boundary. Bool constants flip.
func constVariants(ins ir.Instr, _ []ir.Instr, _ int, _ *coverage.Plan) []variant {
	if ins.Op != ir.OpConst {
		return nil
	}
	reimm := func(raw uint64, desc string) variant {
		out := ins
		out.Imm = raw
		return variant{ins: out, desc: desc}
	}
	dt := ins.DT
	if dt == model.Bool {
		return []variant{reimm(ins.Imm^1, "const flip")}
	}
	if dt.IsFloat() {
		v := model.DecodeFloat(dt, ins.Imm)
		out := []variant{
			reimm(model.EncodeFloat(dt, v+1), fmt.Sprintf("const %g -> %g", v, v+1)),
			reimm(model.EncodeFloat(dt, v-1), fmt.Sprintf("const %g -> %g", v, v-1)),
		}
		if v != 0 {
			out = append(out,
				reimm(model.EncodeFloat(dt, -v), fmt.Sprintf("const %g -> %g (sign)", v, -v)),
				reimm(model.EncodeFloat(dt, 0), fmt.Sprintf("const %g -> 0 (boundary)", v)))
		}
		return out
	}
	v := model.DecodeInt(dt, ins.Imm)
	out := []variant{
		reimm(model.EncodeInt(dt, v+1), fmt.Sprintf("const %d -> %d", v, v+1)),
		reimm(model.EncodeInt(dt, v-1), fmt.Sprintf("const %d -> %d", v, v-1)),
	}
	if v != 0 {
		out = append(out,
			reimm(model.EncodeInt(dt, -v), fmt.Sprintf("const %d -> %d (sign)", v, -v)),
			reimm(model.EncodeInt(dt, 0), fmt.Sprintf("const %d -> 0 (boundary)", v)))
	}
	return out
}

// logicVariants swaps the logical connectives; OpNot degenerates to OpMov
// (negation dropped — operands are already normalized booleans).
func logicVariants(ins ir.Instr, _ []ir.Instr, _ int, _ *coverage.Plan) []variant {
	switch ins.Op {
	case ir.OpAnd:
		return []variant{swapOp(ins, ir.OpOr, "and -> or")}
	case ir.OpOr:
		return []variant{swapOp(ins, ir.OpAnd, "or -> and")}
	case ir.OpXor:
		return []variant{swapOp(ins, ir.OpOr, "xor -> or")}
	case ir.OpNot:
		return []variant{swapOp(ins, ir.OpMov, "not dropped")}
	}
	return nil
}

// guardVariants flips the polarity of conditional jumps that guard a
// Stateflow transition decision: the lowered form of "transition fires iff
// guard holds" becomes "fires iff guard fails" — the IR-level shadow of a
// chart guard negation, available even when only the compiled form exists.
func guardVariants(ins ir.Instr, code []ir.Instr, pc int, plan *coverage.Plan) []variant {
	var to ir.Op
	switch ins.Op {
	case ir.OpJmpIf:
		to = ir.OpJmpIfNot
	case ir.OpJmpIfNot:
		to = ir.OpJmpIf
	default:
		return nil
	}
	if plan == nil || !guardsTransition(code, pc, plan) {
		return nil
	}
	return []variant{swapOp(ins, to, fmt.Sprintf("%v -> %v (transition guard)", ins.Op, to))}
}

// guardsTransition reports whether the region controlled by the conditional
// jump at pc contains a Transition-kind decision probe. The region is the
// span between the jump and its target, widened through the targets of jumps
// inside it (the same merge over-approximation the influence pass uses).
func guardsTransition(code []ir.Instr, pc int, plan *coverage.Plan) bool {
	lo, hi := pc, int(code[pc].Imm)
	if hi < lo {
		lo, hi = hi, lo
	}
	for q := lo; q < hi && q < len(code); q++ {
		switch code[q].Op {
		case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
			if t := int(code[q].Imm); t > hi {
				hi = t
			}
		}
	}
	if hi > len(code) {
		hi = len(code)
	}
	for q := lo; q < hi; q++ {
		if code[q].Op != ir.OpProbe {
			continue
		}
		if d := int(code[q].A); d >= 0 && d < len(plan.Decisions) {
			if plan.Decisions[d].Kind == coverage.KindTransition {
				return true
			}
		}
	}
	return false
}
