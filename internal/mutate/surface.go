package mutate

import (
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// SurfaceCounts itemizes a model's mutation surface — how many sites each
// operator class can patch. cmd/modelinfo prints it so mutant budgets are
// explainable: a model with 40 relational sites and a 20-mutant budget is
// visibly undersampled.
type SurfaceCounts struct {
	RelOps     int `json:"relops"`
	ArithOps   int `json:"arithOps"`
	Consts     int `json:"consts"`
	LogicOps   int `json:"logicOps"`
	Guards     int `json:"guards"`     // Stateflow guard relational tokens
	Priorities int `json:"priorities"` // states with a mutable priority order
}

// Total sums every mutable site class.
func (s SurfaceCounts) Total() int {
	return s.RelOps + s.ArithOps + s.Consts + s.LogicOps + s.Guards + s.Priorities
}

// Surface counts the mutable sites of a program and (optionally) its model;
// m may be nil, skipping the chart-level counts.
func Surface(p *ir.Program, m *model.Model) SurfaceCounts {
	var s SurfaceCounts
	count := func(code []ir.Instr) {
		for _, ins := range code {
			switch ins.Op {
			case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
				s.RelOps++
			case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax:
				s.ArithOps++
			case ir.OpConst:
				s.Consts++
			case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot:
				s.LogicOps++
			}
		}
	}
	count(p.Init)
	count(p.Step)
	if m != nil {
		for _, cs := range findCharts(&m.Root, nil) {
			for _, t := range cs.chart.Transitions {
				s.Guards += len(guardMutations(t.Guard))
			}
			for _, st := range cs.chart.States {
				from := cs.chart.From(st.Name)
				if len(from) >= 2 && from[0].Priority != from[1].Priority {
					s.Priorities++
				}
			}
		}
	}
	return s
}
