package mlfunc

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

func TestLexerTokens(t *testing.T) {
	toks, err := LexAll("if (x >= 10) { y = -2.5e3; } % trailing comment")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind != TokEOF {
			texts = append(texts, tok.Text)
		}
	}
	want := []string{"if", "(", "x", ">=", "10", ")", "{", "y", "=", "-", "2.5e3", ";", "}"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Errorf("tokens: %v, want %v", texts, want)
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := LexAll("a = 1; // c++ style\nb = 2; % matlab style\n")
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			count++
		}
	}
	if count != 2 {
		t.Errorf("identifiers after comment stripping: %d, want 2", count)
	}
}

func TestLexerRejectsGarbage(t *testing.T) {
	if _, err := LexAll("a = $;"); err == nil {
		t.Error("expected lex error for '$'")
	}
}

func TestParseFullFunction(t *testing.T) {
	f, err := Parse("demo", `
input  int32 x;
output int32 y = 5;
state  int16 acc = -3;
var    bool  flag = true;

if (x > 0 && flag) {
    acc = acc + 1;
} elseif (x < -10) {
    acc = 0;
} else {
    flag = false;
}
for i = 4 { y = y + i; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Inputs()) != 1 || len(f.Outputs()) != 1 || len(f.States()) != 1 || len(f.Locals()) != 1 {
		t.Fatalf("declaration classes wrong: %+v", f.Decls)
	}
	if f.Outputs()[0].Init != 5 || f.States()[0].Init != -3 || f.Locals()[0].Init != 1 {
		t.Errorf("initializers wrong: %+v", f.Decls)
	}
	if f.Lookup("acc") == nil || f.Lookup("ghost") != nil {
		t.Error("Lookup")
	}
	if len(f.Body) != 2 {
		t.Fatalf("want 2 statements, got %d", len(f.Body))
	}
	iff, ok := f.Body[0].(*If)
	if !ok {
		t.Fatalf("first statement is %T", f.Body[0])
	}
	if len(iff.Else) != 1 {
		t.Fatal("elseif should nest in Else")
	}
	if _, ok := iff.Else[0].(*If); !ok {
		t.Fatal("elseif should be an If in Else")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"undeclared assign", "y = 1;", "undeclared"},
		{"undeclared ref", "output int32 y; y = q;", "undeclared"},
		{"dup decl", "input int32 a; input int32 a;", "duplicate"},
		{"missing semi", "output int32 y; y = 1", `";"`},
		{"bad loop count", "output int32 y; for i = x { y = 1; }", "integer literal"},
		{"loop shadows", "input int32 i; output int32 y; for i = 3 { y = 1; }", "shadows"},
		{"unknown fn", "output int32 y; y = hypot(1, 2);", "unknown function"},
		{"abs arity", "output int32 y; y = abs(1, 2);", "abs takes 1"},
		{"sat arity", "output int32 y; y = sat(1);", "sat takes 3"},
	}
	for _, c := range cases {
		if _, err := Parse("t", c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestParseExprTypesAndConditions(t *testing.T) {
	syms := map[string]model.DType{"a": model.Int8, "b": model.Float32, "ok": model.Bool}
	e, err := ParseExpr("a > 3 && (b < 2.5 || !ok)", syms)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type() != model.Bool {
		t.Errorf("expression type %s, want boolean", e.Type())
	}
	conds := Conditions(e)
	if len(conds) != 3 {
		t.Fatalf("want 3 leaf conditions, got %d", len(conds))
	}
	// The leaves are a>3, b<2.5, ok — each either relational or a bool ref.
	if ExprString(conds[0]) != "(a > 3)" {
		t.Errorf("first condition: %s", ExprString(conds[0]))
	}
	if ExprString(conds[2]) != "ok" {
		t.Errorf("third condition: %s", ExprString(conds[2]))
	}
}

func TestParseStmtsAgainstSymbols(t *testing.T) {
	syms := map[string]model.DType{"n": model.Int32, "go_": model.Bool}
	stmts, err := ParseStmts("if (go_) { n = n + 1; }", syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Fatalf("want 1 stmt, got %d", len(stmts))
	}
	if _, err := ParseStmts("m = 1;", syms); err == nil {
		t.Error("assignment to unknown symbol should fail")
	}
}

func TestPromote(t *testing.T) {
	cases := []struct{ a, b, want model.DType }{
		{model.Int8, model.Int32, model.Int32},
		{model.UInt8, model.Int16, model.Int16},
		{model.Int32, model.Float32, model.Float32},
		{model.Float32, model.Float64, model.Float64},
		{model.Bool, model.Bool, model.Int32}, // bool arithmetic in int32
		{model.Bool, model.Int8, model.Int8},
	}
	for _, c := range cases {
		if got := Promote(c.a, c.b); got != c.want {
			t.Errorf("Promote(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
		if got := Promote(c.b, c.a); got != c.want && !(c.a == model.Bool && c.b == model.Bool) {
			t.Errorf("Promote is not symmetric for (%s, %s)", c.b, c.a)
		}
	}
}

func TestPrecedence(t *testing.T) {
	syms := map[string]model.DType{"a": model.Int32, "b": model.Int32, "c": model.Int32}
	e, err := ParseExpr("a + b * c > 10", syms)
	if err != nil {
		t.Fatal(err)
	}
	// Should parse as ((a + (b*c)) > 10).
	if got := ExprString(e); got != "((a + (b * c)) > 10)" {
		t.Errorf("precedence: %s", got)
	}
	e2, err := ParseExpr("a > 1 && b > 2 || c > 3", syms)
	if err != nil {
		t.Fatal(err)
	}
	if got := ExprString(e2); got != "(((a > 1) && (b > 2)) || (c > 3))" {
		t.Errorf("bool precedence: %s", got)
	}
}

func TestEmitBodyReadable(t *testing.T) {
	f, err := Parse("emit", `
input int32 x;
output int32 y;
if (x ~= 0) { y = abs(x); } else { y = 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	src := f.EmitBody("  ")
	for _, want := range []string{"if (x != 0) {", "y = abs(x);", "else"} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted body missing %q:\n%s", want, src)
		}
	}
}

func TestParseWhile(t *testing.T) {
	f, err := Parse("w", `
input  int32 x;
output int32 n = 0;
while (x > 0) {
    x = x / 2;
    n = n + 1;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	wl, ok := f.Body[0].(*While)
	if !ok {
		t.Fatalf("statement is %T", f.Body[0])
	}
	if len(wl.Body) != 2 {
		t.Errorf("while body: %d statements", len(wl.Body))
	}
	if got := ExprString(wl.Cond); got != "(x > 0)" {
		t.Errorf("cond: %s", got)
	}
	src := f.EmitBody("")
	if !strings.Contains(src, "while (x > 0) {") {
		t.Errorf("emit:\n%s", src)
	}
	// Errors surface.
	if _, err := Parse("w", "output int32 n;\nwhile x > 0 { n = 1; }"); err == nil {
		t.Error("while without parentheses accepted")
	}
	if _, err := Parse("w", "output int32 n;\nwhile (q > 0) { n = 1; }"); err == nil {
		t.Error("undeclared variable in while cond accepted")
	}
}

func TestBoolInitializers(t *testing.T) {
	f, err := Parse("b", "output bool on = true;\noutput bool off = false;\non = !off;")
	if err != nil {
		t.Fatal(err)
	}
	if f.Outputs()[0].Init != 1 || f.Outputs()[1].Init != 0 {
		t.Errorf("bool initializers: %+v", f.Outputs())
	}
}
