// Package mlfunc implements the small imperative language used by MATLAB
// Function blocks, If-block condition expressions and Stateflow transition
// guards/actions in this reproduction.
//
// A function body looks like:
//
//	input  int32 power;
//	input  bool  enable;
//	output int32 ret = 0;
//	state  int32 count = 0;
//
//	if (enable && power > 100) {
//	    count = count + 1;
//	} else {
//	    count = 0;
//	}
//	if (count >= 5) { ret = power * 2; } else { ret = 0; }
//
// Statements are typed declarations (input/output/state/var), assignments,
// if/elseif/else chains, bounded `while` loops (hard-capped at MaxWhileIter
// so generated code always terminates), and constant-count `for` loops that
// unroll at code generation.
//
// The language deliberately matches the shape of the C code Simulink Coder
// emits for such blocks, so the four instrumentation modes of the paper's
// §3.1.2 apply directly (every `if` and `while` is a decision; relational
// and boolean leaves are conditions).
package mlfunc

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexer tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokPunct // operators and delimiters
	TokKeyword
)

var keywords = map[string]bool{
	"if": true, "else": true, "elseif": true, "while": true, "for": true,
	"input": true, "output": true, "state": true, "var": true,
	"true": true, "false": true,
	"bool": true, "boolean": true, "int8": true, "uint8": true, "int16": true,
	"uint16": true, "int32": true, "uint32": true, "single": true, "double": true,
	"float32": true, "float64": true,
}

// Token is one lexical unit with its source position (1-based line/col).
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Lexer splits mlfunc source into tokens. Comments run from '%' or "//" to
// end of line.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '%' || (c == '/' && l.peek2() == '/'):
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// multi-character operators, longest first.
var punct2 = []string{"&&", "||", "==", "~=", "!=", "<=", ">="}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.peek()

	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := l.pos
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_' {
				l.advance()
			} else {
				break
			}
		}
		tok.Text = l.src[start:l.pos]
		if keywords[tok.Text] {
			tok.Kind = TokKeyword
		} else {
			tok.Kind = TokIdent
		}
		return tok, nil

	case unicode.IsDigit(rune(c)) || (c == '.' && unicode.IsDigit(rune(l.peek2()))):
		start := l.pos
		isFloat := false
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsDigit(rune(c)) {
				l.advance()
			} else if c == '.' && !isFloat {
				isFloat = true
				l.advance()
			} else if (c == 'e' || c == 'E') && l.pos > start {
				isFloat = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
			} else {
				break
			}
		}
		tok.Text = l.src[start:l.pos]
		if isFloat {
			tok.Kind = TokFloat
		} else {
			tok.Kind = TokInt
		}
		return tok, nil
	}

	for _, p := range punct2 {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.advance()
			l.advance()
			tok.Kind = TokPunct
			tok.Text = p
			return tok, nil
		}
	}

	switch c {
	case '+', '-', '*', '/', '(', ')', '{', '}', ';', ',', '=', '<', '>', '!', '~', '&', '|':
		l.advance()
		tok.Kind = TokPunct
		tok.Text = string(c)
		return tok, nil
	}
	return tok, fmt.Errorf("mlfunc: line %d col %d: unexpected character %q", l.line, l.col, c)
}

// LexAll tokenizes the full input (for tests and tools).
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return out, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
