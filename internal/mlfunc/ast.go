package mlfunc

import (
	"fmt"
	"strings"

	"cftcg/internal/model"
)

// VarClass classifies a declared variable.
type VarClass uint8

// Variable classes.
const (
	ClassInput VarClass = iota
	ClassOutput
	ClassState
	ClassLocal
)

func (c VarClass) String() string {
	switch c {
	case ClassInput:
		return "input"
	case ClassOutput:
		return "output"
	case ClassState:
		return "state"
	default:
		return "var"
	}
}

// Decl is one variable declaration with optional initializer (a constant).
type Decl struct {
	Class VarClass
	Type  model.DType
	Name  string
	Init  float64 // initial value (outputs/states/locals); inputs ignore it
	Line  int
}

// Function is a parsed and type-checked MATLAB Function body: declarations
// in source order plus the statement list.
type Function struct {
	Name   string
	Decls  []Decl
	Body   []Stmt
	byName map[string]*Decl
}

// Lookup returns the declaration of name, or nil.
func (f *Function) Lookup(name string) *Decl { return f.byName[name] }

// Inputs returns the input declarations in source order.
func (f *Function) Inputs() []Decl { return f.declsOf(ClassInput) }

// Outputs returns the output declarations in source order.
func (f *Function) Outputs() []Decl { return f.declsOf(ClassOutput) }

// States returns the state declarations in source order.
func (f *Function) States() []Decl { return f.declsOf(ClassState) }

// Locals returns the local variable declarations in source order.
func (f *Function) Locals() []Decl { return f.declsOf(ClassLocal) }

func (f *Function) declsOf(c VarClass) []Decl {
	var out []Decl
	for _, d := range f.Decls {
		if d.Class == c {
			out = append(out, d)
		}
	}
	return out
}

// --- statements ---------------------------------------------------------

// Stmt is a statement node.
type Stmt interface {
	stmt()
	// Emit renders the statement as C-like source (used by the fuzz-code
	// emitter for Figure 3/4-style artifacts).
	Emit(w *strings.Builder, indent string)
}

// Assign assigns the value of Expr to the named variable.
type Assign struct {
	Name string
	Rhs  Expr
	Line int
}

// If is an if/elseif/else chain. Each branch after the first acts as
// "elseif"; Else may be empty. Every If is a coverage decision (mode (d)
// in the paper's instrumentation taxonomy).
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // possibly another single If for elseif chains
	Line int
}

// For is a constant-bound counting loop: for i = 0 .. N-1. The bounds are
// compile-time constants so code generation can unroll it.
type For struct {
	Var   string
	Count int64
	Body  []Stmt
	Line  int
}

// While is a condition-bound loop. Generated code enforces MaxWhileIter
// iterations as a hard cap (embedded code must terminate); the condition is
// a coverage decision like an if's. Every While is a decision.
type While struct {
	Cond Expr
	Body []Stmt
	Line int
}

// MaxWhileIter caps while-loop iterations in both execution engines.
const MaxWhileIter = 1000

func (*Assign) stmt() {}
func (*If) stmt()     {}
func (*For) stmt()    {}
func (*While) stmt()  {}

// --- expressions ----------------------------------------------------------

// Expr is an expression node. Type is filled in by the type checker.
type Expr interface {
	Type() model.DType
	// Emit renders the expression as C-like source.
	Emit(w *strings.Builder)
}

// Lit is a numeric or boolean literal.
type Lit struct {
	Val float64
	T   model.DType
}

// Ref reads a declared variable.
type Ref struct {
	Name string
	T    model.DType
}

// Unary applies "-", "!" or "~" to X.
type Unary struct {
	Op string
	X  Expr
	T  model.DType
}

// Binary applies an arithmetic, relational or logical operator.
// Ops: + - * / %  |  == ~= < <= > >=  |  && ||
type Binary struct {
	Op   string
	X, Y Expr
	T    model.DType
}

// Call invokes a builtin: abs(x), min(x,y), max(x,y), sat(x,lo,hi).
type Call struct {
	Fn   string
	Args []Expr
	T    model.DType
}

// Type implementations.
func (e *Lit) Type() model.DType    { return e.T }
func (e *Ref) Type() model.DType    { return e.T }
func (e *Unary) Type() model.DType  { return e.T }
func (e *Binary) Type() model.DType { return e.T }
func (e *Call) Type() model.DType   { return e.T }

// IsBoolOp reports whether op is a short-circuit logical operator.
func IsBoolOp(op string) bool { return op == "&&" || op == "||" }

// IsRelOp reports whether op is a relational operator.
func IsRelOp(op string) bool {
	switch op {
	case "==", "~=", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

// --- source emission ----------------------------------------------------

// Emit renders the literal.
func (e *Lit) Emit(w *strings.Builder) {
	if e.T == model.Bool {
		if e.Val != 0 {
			w.WriteString("true")
		} else {
			w.WriteString("false")
		}
		return
	}
	fmt.Fprintf(w, "%g", e.Val)
}

// Emit renders the variable reference.
func (e *Ref) Emit(w *strings.Builder) { w.WriteString(e.Name) }

// Emit renders the unary expression.
func (e *Unary) Emit(w *strings.Builder) {
	op := e.Op
	if op == "~" {
		op = "!"
	}
	w.WriteString(op)
	w.WriteByte('(')
	e.X.Emit(w)
	w.WriteByte(')')
}

// Emit renders the binary expression.
func (e *Binary) Emit(w *strings.Builder) {
	w.WriteByte('(')
	e.X.Emit(w)
	op := e.Op
	if op == "~=" {
		op = "!="
	}
	w.WriteByte(' ')
	w.WriteString(op)
	w.WriteByte(' ')
	e.Y.Emit(w)
	w.WriteByte(')')
}

// Emit renders the builtin call.
func (e *Call) Emit(w *strings.Builder) {
	w.WriteString(e.Fn)
	w.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			w.WriteString(", ")
		}
		a.Emit(w)
	}
	w.WriteByte(')')
}

// Emit renders the assignment.
func (s *Assign) Emit(w *strings.Builder, indent string) {
	w.WriteString(indent)
	w.WriteString(s.Name)
	w.WriteString(" = ")
	s.Rhs.Emit(w)
	w.WriteString(";\n")
}

// Emit renders the conditional.
func (s *If) Emit(w *strings.Builder, indent string) {
	w.WriteString(indent)
	w.WriteString("if ")
	s.Cond.Emit(w)
	w.WriteString(" {\n")
	for _, st := range s.Then {
		st.Emit(w, indent+"    ")
	}
	w.WriteString(indent)
	w.WriteString("}")
	if len(s.Else) > 0 {
		w.WriteString(" else {\n")
		for _, st := range s.Else {
			st.Emit(w, indent+"    ")
		}
		w.WriteString(indent)
		w.WriteString("}")
	}
	w.WriteString("\n")
}

// Emit renders the while loop.
func (s *While) Emit(w *strings.Builder, indent string) {
	w.WriteString(indent)
	w.WriteString("while ")
	s.Cond.Emit(w)
	w.WriteString(" {\n")
	for _, st := range s.Body {
		st.Emit(w, indent+"    ")
	}
	w.WriteString(indent)
	w.WriteString("}\n")
}

// Emit renders the loop.
func (s *For) Emit(w *strings.Builder, indent string) {
	fmt.Fprintf(w, "%sfor (%s = 0; %s < %d; %s++) {\n", indent, s.Var, s.Var, s.Count, s.Var)
	for _, st := range s.Body {
		st.Emit(w, indent+"    ")
	}
	w.WriteString(indent)
	w.WriteString("}\n")
}

// EmitBody renders the function's statements as C-like source.
func (f *Function) EmitBody(indent string) string {
	var w strings.Builder
	for _, s := range f.Body {
		s.Emit(&w, indent)
	}
	return w.String()
}
