package mlfunc

import (
	"fmt"
	"strings"

	"cftcg/internal/model"
)

// typeRank orders the numeric types for promotion. Mixed-type arithmetic
// computes in the higher-ranked type, matching the widening Simulink Coder
// applies in generated C.
var typeRank = map[model.DType]int{
	model.Bool: 0, model.Int8: 1, model.UInt8: 2, model.Int16: 3,
	model.UInt16: 4, model.Int32: 5, model.UInt32: 6,
	model.Float32: 7, model.Float64: 8,
}

// Promote returns the computation type for a binary operation over a and b.
func Promote(a, b model.DType) model.DType {
	if typeRank[a] >= typeRank[b] {
		if a == model.Bool {
			return model.Int32 // bool arithmetic computes in int32
		}
		return a
	}
	if b == model.Bool {
		return model.Int32
	}
	return b
}

type typechecker struct {
	symbols map[string]model.DType
}

func typecheckFunction(f *Function) error {
	symbols := make(map[string]model.DType, len(f.Decls))
	for _, d := range f.Decls {
		symbols[d.Name] = d.Type
	}
	tc := &typechecker{symbols: symbols}
	for _, s := range f.Body {
		if err := tc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (tc *typechecker) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Assign:
		if _, ok := tc.symbols[st.Name]; !ok {
			return fmt.Errorf("mlfunc: line %d: assignment to undeclared variable %q", st.Line, st.Name)
		}
		return tc.expr(st.Rhs)
	case *If:
		if err := tc.expr(st.Cond); err != nil {
			return err
		}
		for _, t := range st.Then {
			if err := tc.stmt(t); err != nil {
				return err
			}
		}
		for _, e := range st.Else {
			if err := tc.stmt(e); err != nil {
				return err
			}
		}
		return nil
	case *While:
		if err := tc.expr(st.Cond); err != nil {
			return err
		}
		for _, b := range st.Body {
			if err := tc.stmt(b); err != nil {
				return err
			}
		}
		return nil
	case *For:
		if _, exists := tc.symbols[st.Var]; exists {
			return fmt.Errorf("mlfunc: line %d: loop variable %q shadows a declaration", st.Line, st.Var)
		}
		tc.symbols[st.Var] = model.Int32
		defer delete(tc.symbols, st.Var)
		for _, b := range st.Body {
			if err := tc.stmt(b); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("mlfunc: unknown statement %T", s)
}

func (tc *typechecker) expr(e Expr) error {
	switch ex := e.(type) {
	case *Lit:
		return nil
	case *Ref:
		dt, ok := tc.symbols[ex.Name]
		if !ok {
			return fmt.Errorf("mlfunc: reference to undeclared variable %q", ex.Name)
		}
		ex.T = dt
		return nil
	case *Unary:
		if err := tc.expr(ex.X); err != nil {
			return err
		}
		switch ex.Op {
		case "-":
			ex.T = Promote(ex.X.Type(), model.Int8)
		case "!", "~":
			ex.T = model.Bool
		default:
			return fmt.Errorf("mlfunc: unknown unary operator %q", ex.Op)
		}
		return nil
	case *Binary:
		if err := tc.expr(ex.X); err != nil {
			return err
		}
		if err := tc.expr(ex.Y); err != nil {
			return err
		}
		switch {
		case IsBoolOp(ex.Op):
			ex.T = model.Bool
		case IsRelOp(ex.Op):
			ex.T = model.Bool
		case ex.Op == "+" || ex.Op == "-" || ex.Op == "*" || ex.Op == "/":
			ex.T = Promote(ex.X.Type(), ex.Y.Type())
		default:
			return fmt.Errorf("mlfunc: unknown binary operator %q", ex.Op)
		}
		return nil
	case *Call:
		for _, a := range ex.Args {
			if err := tc.expr(a); err != nil {
				return err
			}
		}
		switch ex.Fn {
		case "abs":
			if len(ex.Args) != 1 {
				return fmt.Errorf("mlfunc: abs takes 1 argument, got %d", len(ex.Args))
			}
			ex.T = ex.Args[0].Type()
		case "min", "max":
			if len(ex.Args) != 2 {
				return fmt.Errorf("mlfunc: %s takes 2 arguments, got %d", ex.Fn, len(ex.Args))
			}
			ex.T = Promote(ex.Args[0].Type(), ex.Args[1].Type())
		case "sat":
			if len(ex.Args) != 3 {
				return fmt.Errorf("mlfunc: sat takes 3 arguments (x, lo, hi), got %d", len(ex.Args))
			}
			ex.T = ex.Args[0].Type()
		default:
			return fmt.Errorf("mlfunc: unknown function %q", ex.Fn)
		}
		return nil
	}
	return fmt.Errorf("mlfunc: unknown expression %T", e)
}

// Conditions returns the leaf boolean conditions of a decision expression:
// the operands of &&/||/! chains that are not themselves logical operators.
// These are the "conditions" of Condition Coverage and MCDC (paper §3.1.2
// mode (d) and the Simulink model-coverage definition).
func Conditions(e Expr) []Expr {
	var out []Expr
	var walk func(Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case *Binary:
			if IsBoolOp(ex.Op) {
				walk(ex.X)
				walk(ex.Y)
				return
			}
		case *Unary:
			if ex.Op == "!" || ex.Op == "~" {
				walk(ex.X)
				return
			}
		}
		out = append(out, e)
	}
	walk(e)
	return out
}

// ExprString renders an expression as C-like source text.
func ExprString(e Expr) string {
	var w strings.Builder
	e.Emit(&w)
	return w.String()
}
