package mlfunc

import (
	"fmt"
	"strconv"

	"cftcg/internal/model"
)

// Parser turns a token stream into an AST. Construction errors carry source
// line numbers.
type parser struct {
	lex *Lexer
	tok Token
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: NewLexer(src)}
	return p, p.next()
}

func (p *parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("mlfunc: line %d: %s", p.tok.Line, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind TokKind, text string) error {
	if p.tok.Kind != kind || (text != "" && p.tok.Text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return p.errf("expected %q, found %s", want, p.tok)
	}
	return p.next()
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.tok.Kind == kind && p.tok.Text == text {
		if err := p.next(); err != nil {
			return false
		}
		return true
	}
	return false
}

// Parse parses and type-checks a full MATLAB Function body.
func Parse(name, src string) (*Function, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	f := &Function{Name: name, byName: map[string]*Decl{}}

	// Declarations come first.
	for p.tok.Kind == TokKeyword && isClassKeyword(p.tok.Text) {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		if f.byName[d.Name] != nil {
			return nil, fmt.Errorf("mlfunc: line %d: duplicate declaration of %q", d.Line, d.Name)
		}
		f.Decls = append(f.Decls, d)
		f.byName[d.Name] = &f.Decls[len(f.Decls)-1]
	}

	body, err := p.parseStmts(false)
	if err != nil {
		return nil, err
	}
	f.Body = body
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected %s after function body", p.tok)
	}
	if err := typecheckFunction(f); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseExpr parses a standalone boolean/numeric expression (If-block
// conditions, Stateflow guards) against the given symbol table.
func ParseExpr(src string, symbols map[string]model.DType) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr(1)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected %s after expression", p.tok)
	}
	tc := &typechecker{symbols: symbols}
	if err := tc.expr(e); err != nil {
		return nil, err
	}
	return e, nil
}

// ParseStmts parses a standalone statement list (Stateflow actions) against
// the given symbol table. Assignments may target any symbol.
func ParseStmts(src string, symbols map[string]model.DType) ([]Stmt, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	stmts, err := p.parseStmts(false)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected %s after statements", p.tok)
	}
	tc := &typechecker{symbols: symbols}
	for _, s := range stmts {
		if err := tc.stmt(s); err != nil {
			return nil, err
		}
	}
	return stmts, nil
}

func isClassKeyword(s string) bool {
	return s == "input" || s == "output" || s == "state" || s == "var"
}

func (p *parser) parseDecl() (Decl, error) {
	var d Decl
	d.Line = p.tok.Line
	switch p.tok.Text {
	case "input":
		d.Class = ClassInput
	case "output":
		d.Class = ClassOutput
	case "state":
		d.Class = ClassState
	case "var":
		d.Class = ClassLocal
	}
	if err := p.next(); err != nil {
		return d, err
	}
	if p.tok.Kind != TokKeyword {
		return d, p.errf("expected type name, found %s", p.tok)
	}
	dt, err := model.ParseDType(p.tok.Text)
	if err != nil {
		return d, p.errf("%v", err)
	}
	d.Type = dt
	if err := p.next(); err != nil {
		return d, err
	}
	if p.tok.Kind != TokIdent {
		return d, p.errf("expected variable name, found %s", p.tok)
	}
	d.Name = p.tok.Text
	if err := p.next(); err != nil {
		return d, err
	}
	if p.accept(TokPunct, "=") {
		switch {
		case p.tok.Kind == TokKeyword && (p.tok.Text == "true" || p.tok.Text == "false"):
			if p.tok.Text == "true" {
				d.Init = 1
			}
			if err := p.next(); err != nil {
				return d, err
			}
		default:
			neg := p.accept(TokPunct, "-")
			if p.tok.Kind != TokInt && p.tok.Kind != TokFloat {
				return d, p.errf("initializer must be a numeric or boolean literal, found %s", p.tok)
			}
			v, err := strconv.ParseFloat(p.tok.Text, 64)
			if err != nil {
				return d, p.errf("bad literal %q", p.tok.Text)
			}
			if neg {
				v = -v
			}
			d.Init = v
			if err := p.next(); err != nil {
				return d, err
			}
		}
	}
	return d, p.expect(TokPunct, ";")
}

// parseStmts parses statements until EOF (inBlock=false) or a closing brace
// (inBlock=true, brace consumed by the caller).
func (p *parser) parseStmts(inBlock bool) ([]Stmt, error) {
	var out []Stmt
	for {
		if p.tok.Kind == TokEOF {
			return out, nil
		}
		if inBlock && p.tok.Kind == TokPunct && p.tok.Text == "}" {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	stmts, err := p.parseStmts(true)
	if err != nil {
		return nil, err
	}
	return stmts, p.expect(TokPunct, "}")
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.tok.Kind == TokKeyword && p.tok.Text == "if":
		return p.parseIf()
	case p.tok.Kind == TokKeyword && p.tok.Text == "for":
		return p.parseFor()
	case p.tok.Kind == TokKeyword && p.tok.Text == "while":
		return p.parseWhile()
	case p.tok.Kind == TokIdent:
		line := p.tok.Line
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if err := p.expect(TokPunct, "="); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr(1)
		if err != nil {
			return nil, err
		}
		return &Assign{Name: name, Rhs: rhs, Line: line}, p.expect(TokPunct, ";")
	}
	return nil, p.errf("expected statement, found %s", p.tok)
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.tok.Line
	if err := p.next(); err != nil { // consume "if"
		return nil, err
	}
	cond, err := p.parseParenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Line: line}

	switch {
	case p.tok.Kind == TokKeyword && p.tok.Text == "elseif":
		elif, err := p.parseIf() // reuse: elseif behaves like "else { if ... }"
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{elif}
	case p.tok.Kind == TokKeyword && p.tok.Text == "else":
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokKeyword && p.tok.Text == "if" {
			elif, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			node.Else = []Stmt{elif}
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

// parseFor parses "for i = N { ... }": i counts 0..N-1 and the body is
// unrolled at code-generation time (N must be a literal).
func (p *parser) parseFor() (Stmt, error) {
	line := p.tok.Line
	if err := p.next(); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokIdent {
		return nil, p.errf("expected loop variable, found %s", p.tok)
	}
	name := p.tok.Text
	if err := p.next(); err != nil {
		return nil, err
	}
	if err := p.expect(TokPunct, "="); err != nil {
		return nil, err
	}
	if p.tok.Kind != TokInt {
		return nil, p.errf("loop count must be an integer literal, found %s", p.tok)
	}
	n, err := strconv.ParseInt(p.tok.Text, 10, 64)
	if err != nil || n < 0 || n > 1<<16 {
		return nil, p.errf("invalid loop count %q", p.tok.Text)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &For{Var: name, Count: n, Body: body, Line: line}, nil
}

// parseWhile parses "while (cond) { ... }". Code generation bounds the loop
// at MaxWhileIter iterations.
func (p *parser) parseWhile() (Stmt, error) {
	line := p.tok.Line
	if err := p.next(); err != nil {
		return nil, err
	}
	cond, err := p.parseParenExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Line: line}, nil
}

func (p *parser) parseParenExpr() (Expr, error) {
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr(1)
	if err != nil {
		return nil, err
	}
	return e, p.expect(TokPunct, ")")
}

// Operator precedence (higher binds tighter).
func precOf(op string) int {
	switch op {
	case "||":
		return 1
	case "&&":
		return 2
	case "==", "~=", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/":
		return 5
	}
	return 0
}

func (p *parser) parseExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokPunct {
		op := p.tok.Text
		prec := precOf(op)
		if prec == 0 || prec < minPrec {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
	return lhs, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokPunct {
		switch p.tok.Text {
		case "-", "!", "~":
			op := p.tok.Text
			if err := p.next(); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{Op: op, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.Kind == TokPunct && p.tok.Text == "(":
		return p.parseParenExpr()

	case p.tok.Kind == TokInt:
		v, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.Text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Lit{Val: v, T: model.Int32}, nil

	case p.tok.Kind == TokFloat:
		v, err := strconv.ParseFloat(p.tok.Text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.Text)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Lit{Val: v, T: model.Float64}, nil

	case p.tok.Kind == TokKeyword && (p.tok.Text == "true" || p.tok.Text == "false"):
		v := 0.0
		if p.tok.Text == "true" {
			v = 1
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Lit{Val: v, T: model.Bool}, nil

	case p.tok.Kind == TokIdent:
		name := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokPunct && p.tok.Text == "(" {
			return p.parseCall(name)
		}
		return &Ref{Name: name}, nil
	}
	return nil, p.errf("expected expression, found %s", p.tok)
}

func (p *parser) parseCall(fn string) (Expr, error) {
	if err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	if !(p.tok.Kind == TokPunct && p.tok.Text == ")") {
		for {
			a, err := p.parseExpr(1)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.accept(TokPunct, ",") {
				break
			}
		}
	}
	if err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	return &Call{Fn: fn, Args: args}, nil
}
