package coverage

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestReportJSON(t *testing.T) {
	rep := Report{
		ModelName:       "M",
		DecisionCovered: 3, DecisionTotal: 4,
		CondCovered: 2, CondTotal: 2,
		MCDCCovered: 1, MCDCTotal: 2,
		UncoveredDecisions: []string{"M/Switch1"},
	}
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{
		`"model":"M"`, `"percent":75`, `"covered":3`, `"total":4`,
		`"uncoveredDecisions":["M/Switch1"]`, `"mcdc"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %q:\n%s", want, s)
		}
	}
	var round map[string]any
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if round["condition"].(map[string]any)["percent"].(float64) != 100 {
		t.Error("condition percent wrong")
	}
}
