package coverage

import (
	"testing"
	"time"
)

func tp(ms int, execs int64, dec float64, branches int) TimePoint {
	return TimePoint{
		Elapsed:  time.Duration(ms) * time.Millisecond,
		Execs:    execs,
		Decision: dec,
		Branches: branches,
	}
}

func TestMergeTimelinesSumsExecsMaxesCoverage(t *testing.T) {
	a := []TimePoint{tp(0, 0, 0, 0), tp(10, 100, 50, 2), tp(30, 300, 75, 3)}
	b := []TimePoint{tp(0, 0, 0, 0), tp(20, 500, 25, 1)}
	got := MergeTimelines([][]TimePoint{a, b})

	// Sample instants are the union {0,10,20,30}.
	if len(got) != 4 {
		t.Fatalf("want 4 merged points, got %d: %v", len(got), got)
	}
	// At t=10ms: a=100 execs/50%%, b still at its t=0 sample.
	if got[1].Execs != 100 || got[1].Decision != 50 {
		t.Errorf("t=10ms: want execs 100 dec 50, got %+v", got[1])
	}
	// At t=20ms: execs sum 100+500, coverage max(50,25).
	if got[2].Execs != 600 || got[2].Decision != 50 || got[2].Branches != 2 {
		t.Errorf("t=20ms: want execs 600 dec 50 branches 2, got %+v", got[2])
	}
	// At t=30ms: execs 300+500, max decision 75.
	if got[3].Execs != 800 || got[3].Decision != 75 || got[3].Branches != 3 {
		t.Errorf("t=30ms: want execs 800 dec 75 branches 3, got %+v", got[3])
	}
	// Monotone execs axis.
	for i := 1; i < len(got); i++ {
		if got[i].Execs < got[i-1].Execs {
			t.Errorf("execs not monotone at %d: %v", i, got)
		}
	}
}

func TestMergeTimelinesDegenerate(t *testing.T) {
	if got := MergeTimelines(nil); got != nil {
		t.Errorf("nil input: got %v", got)
	}
	one := []TimePoint{tp(5, 10, 1, 1)}
	got := MergeTimelines([][]TimePoint{one})
	if len(got) != 1 || got[0] != one[0] {
		t.Errorf("single timeline should pass through, got %v", got)
	}
	if got := MergeTimelines([][]TimePoint{nil, nil}); got != nil {
		t.Errorf("all-empty timelines: got %v", got)
	}
}
