package coverage

import (
	"strings"
	"testing"

	"cftcg/internal/blocks"
	"cftcg/internal/model"
)

// planFor compiles a model far enough to get its plan.
func planFor(t *testing.T, m *model.Model) (*Plan, *Index) {
	t.Helper()
	d, err := blocks.Resolve(m)
	if err != nil {
		t.Fatal(err)
	}
	p, ix, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return p, ix
}

func logicModel(t *testing.T) *model.Model {
	b := model.NewBuilder("L")
	x := b.Inport("x", model.Bool)
	y := b.Inport("y", model.Bool)
	b.Outport("o", model.Bool, b.And(x, y))
	return b.Model()
}

func TestPlanForLogicBlock(t *testing.T) {
	p, ix := planFor(t, logicModel(t))
	if len(p.Decisions) != 1 || len(p.Conds) != 2 {
		t.Fatalf("AND plan: %d decisions, %d conds", len(p.Decisions), len(p.Conds))
	}
	d := p.Decisions[0]
	if d.Kind != KindLogic || !d.Boolean || d.NumOutcomes != 2 {
		t.Errorf("decision: %+v", d)
	}
	if d.Kind.Mode() != 'a' {
		t.Errorf("logic decisions are mode (a), got %c", d.Kind.Mode())
	}
	// 2 outcomes + 2 conds * 2 = 6 branch slots.
	if p.NumBranches != 6 {
		t.Errorf("branches: %d, want 6", p.NumBranches)
	}
	andBlock := (*model.Block)(nil)
	for b := range ix.BlockDecisions {
		if b.Kind == "LogicalOperator" {
			andBlock = b
		}
	}
	if andBlock == nil || len(ix.BlockConds[andBlock]) != 2 {
		t.Error("index missing logic block entries")
	}
}

func TestPlanModes(t *testing.T) {
	kinds := []struct {
		k    DecisionKind
		mode byte
	}{
		{KindLogic, 'a'},
		{KindSwitch, 'b'}, {KindMultiportSwitch, 'b'}, {KindMinMax, 'b'},
		{KindIf, 'c'}, {KindSwitchCase, 'c'}, {KindEnable, 'c'}, {KindTrigger, 'c'},
		{KindSaturation, 'd'}, {KindScriptIf, 'd'}, {KindTransition, 'd'},
	}
	for _, c := range kinds {
		if c.k.Mode() != c.mode {
			t.Errorf("%s: mode %c, want %c", c.k, c.k.Mode(), c.mode)
		}
	}
}

func TestRecorderBasics(t *testing.T) {
	p, _ := planFor(t, logicModel(t))
	r := NewRecorder(p)
	d := &p.Decisions[0]

	r.BeginStep()
	r.Cond(d.CondIDs[0], true)
	r.Cond(d.CondIDs[1], false)
	r.Outcome(d.ID, 0)

	if r.Curr[d.OutcomeBase] == 0 {
		t.Error("outcome 0 not recorded in Curr")
	}
	if r.Curr[p.Conds[0].BranchBase] == 0 {
		t.Error("cond true polarity not recorded")
	}
	if r.Curr[p.Conds[1].BranchBase+1] == 0 {
		t.Error("cond false polarity not recorded")
	}
	r.BeginStep()
	for _, v := range r.Curr {
		if v != 0 {
			t.Fatal("BeginStep must clear Curr")
		}
	}
	if r.Total[d.OutcomeBase] == 0 {
		t.Error("Total must persist across steps")
	}
	if r.CoveredBranches() != 3 {
		t.Errorf("covered: %d, want 3", r.CoveredBranches())
	}
	r.ResetAll()
	if r.CoveredBranches() != 0 {
		t.Error("ResetAll must clear totals")
	}
}

// TestMCDCUniqueCause builds the truth-table evaluations by hand and checks
// the pairing logic: for AND, (T,T)->T with (F,T)->F demonstrates c1, and
// (T,T)->T with (T,F)->F demonstrates c2.
func TestMCDCUniqueCause(t *testing.T) {
	p, _ := planFor(t, logicModel(t))
	r := NewRecorder(p)
	d := &p.Decisions[0]
	eval := func(c1, c2 bool) {
		r.BeginStep()
		r.Cond(d.CondIDs[0], c1)
		r.Cond(d.CondIDs[1], c2)
		out := 0
		if c1 && c2 {
			out = 1
		}
		r.Outcome(d.ID, out)
	}

	eval(true, true)
	rep := r.Report()
	if rep.MCDCCovered != 0 {
		t.Errorf("one vector cannot satisfy MCDC: %d", rep.MCDCCovered)
	}

	eval(false, true)
	rep = r.Report()
	if rep.MCDCCovered != 1 {
		t.Errorf("c1 pair present: covered %d, want 1", rep.MCDCCovered)
	}

	eval(true, false)
	rep = r.Report()
	if rep.MCDCCovered != 2 {
		t.Errorf("both pairs present: covered %d, want 2", rep.MCDCCovered)
	}

	// (F,F) adds nothing new for unique cause.
	eval(false, false)
	rep = r.Report()
	if rep.MCDCCovered != 2 || rep.MCDCTotal != 2 {
		t.Errorf("final MCDC %d/%d, want 2/2", rep.MCDCCovered, rep.MCDCTotal)
	}
	if rep.MCDC() != 100 {
		t.Errorf("MCDC%%: %v", rep.MCDC())
	}
}

func TestMCDCRequiresOutcomeChange(t *testing.T) {
	// OR decision: (T,F)->T and (F,F)->F flips outcome with c1 -> pair.
	// But (T,T)->T and (F,T)->T differ in c1 with SAME outcome -> no pair.
	b := model.NewBuilder("O")
	x := b.Inport("x", model.Bool)
	y := b.Inport("y", model.Bool)
	b.Outport("o", model.Bool, b.Or(x, y))
	p, _ := planFor(t, b.Model())
	r := NewRecorder(p)
	d := &p.Decisions[0]
	eval := func(c1, c2 bool) {
		r.BeginStep()
		r.Cond(d.CondIDs[0], c1)
		r.Cond(d.CondIDs[1], c2)
		out := 0
		if c1 || c2 {
			out = 1
		}
		r.Outcome(d.ID, out)
	}
	eval(true, true)
	eval(false, true)
	if got := r.Report().MCDCCovered; got != 0 {
		t.Errorf("same-outcome pair must not count: %d", got)
	}
	eval(false, false)
	// now (F,T)->T vs (F,F)->F differ only in c2 with flip -> c2 proven.
	if got := r.Report().MCDCCovered; got != 1 {
		t.Errorf("c2 pair: %d, want 1", got)
	}
}

func TestReportPercentages(t *testing.T) {
	rep := Report{
		DecisionCovered: 3, DecisionTotal: 4,
		CondCovered: 1, CondTotal: 2,
		MCDCCovered: 0, MCDCTotal: 5,
	}
	if rep.Decision() != 75 || rep.Condition() != 50 || rep.MCDC() != 0 {
		t.Errorf("percentages: %v %v %v", rep.Decision(), rep.Condition(), rep.MCDC())
	}
	empty := Report{}
	if empty.Decision() != 100 {
		t.Error("empty metric defaults to 100%")
	}
	if !strings.Contains(rep.String(), "75.0%") {
		t.Errorf("String: %s", rep.String())
	}
}

func TestMerge(t *testing.T) {
	p, _ := planFor(t, logicModel(t))
	a := NewRecorder(p)
	b := NewRecorder(p)
	d := &p.Decisions[0]
	a.BeginStep()
	a.Cond(d.CondIDs[0], true)
	a.Cond(d.CondIDs[1], true)
	a.Outcome(d.ID, 1)
	b.BeginStep()
	b.Cond(d.CondIDs[0], false)
	b.Cond(d.CondIDs[1], true)
	b.Outcome(d.ID, 0)

	a.Merge(b)
	rep := a.Report()
	if rep.DecisionCovered != 2 {
		t.Errorf("merged decision coverage: %d, want 2", rep.DecisionCovered)
	}
	if rep.MCDCCovered != 1 {
		t.Errorf("merged MCDC pairing: %d, want 1 (c1 pair spans recorders)", rep.MCDCCovered)
	}
}

func TestProgress(t *testing.T) {
	p, _ := planFor(t, logicModel(t))
	pr := NewProgress(p)
	curr := make([]uint8, p.NumBranches)
	curr[p.Decisions[0].OutcomeBase] = 1
	curr[p.Conds[0].BranchBase] = 1
	if n := pr.Absorb(curr); n != 2 {
		t.Errorf("absorb: %d, want 2", n)
	}
	if n := pr.Absorb(curr); n != 0 {
		t.Errorf("re-absorb: %d, want 0", n)
	}
	if pr.Decision() != 50 {
		t.Errorf("decision: %v, want 50", pr.Decision())
	}
	if pr.Condition() != 25 {
		t.Errorf("condition: %v, want 25", pr.Condition())
	}
	if pr.Covered() != 2 {
		t.Errorf("covered: %d", pr.Covered())
	}
}

// TestPlanDeterministic: building the plan twice over the same design
// yields identical IDs and labels — corpora and suites stay replayable
// across process restarts.
func TestPlanDeterministic(t *testing.T) {
	m := logicModel(t)
	d, err := blocks.Resolve(m)
	if err != nil {
		t.Fatal(err)
	}
	p1, _, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumBranches != p2.NumBranches || len(p1.Decisions) != len(p2.Decisions) {
		t.Fatal("plan sizes differ across builds")
	}
	for i := range p1.Decisions {
		a, b := p1.Decisions[i], p2.Decisions[i]
		if a.Label != b.Label || a.OutcomeBase != b.OutcomeBase || a.Kind != b.Kind {
			t.Errorf("decision %d differs: %+v vs %+v", i, a, b)
		}
	}
	for i := range p1.Conds {
		if p1.Conds[i].BranchBase != p2.Conds[i].BranchBase {
			t.Errorf("cond %d branch base differs", i)
		}
	}
}

func TestBranchLabel(t *testing.T) {
	p, _ := planFor(t, logicModel(t))
	if !strings.Contains(p.BranchLabel(0), "outcome") {
		t.Errorf("outcome label: %s", p.BranchLabel(0))
	}
	condBase := p.Conds[0].BranchBase
	if !strings.Contains(p.BranchLabel(condBase), "true") {
		t.Errorf("cond true label: %s", p.BranchLabel(condBase))
	}
	if !strings.Contains(p.BranchLabel(condBase+1), "false") {
		t.Errorf("cond false label: %s", p.BranchLabel(condBase+1))
	}
}
