package coverage

// Recorder accumulates coverage during execution. It is shared by the fast
// VM (compiled fuzz code) and the interpretive simulator, which is what lets
// the differential tests compare the two paths bit-for-bit.
//
// Per step, Curr mirrors the paper's g_CurrCov array: Curr[branch] != 0 iff
// that branch element triggered during the current model iteration. The
// cumulative Total array and the per-decision condition-vector sets (for
// MCDC) persist across the whole campaign.
type Recorder struct {
	plan *Plan

	// Curr is the per-iteration branch hit array (g_CurrCov).
	Curr []uint8
	// Total is the cumulative branch hit array (g_TotalCov).
	Total []uint8

	// condVec holds, per decision, the condition values observed since the
	// decision last resolved (bit per condition slot).
	condVec []uint32
	// vecs records, per decision, the set of (condition vector, outcome)
	// pairs seen — the raw material for MCDC pairing. Bounded per decision.
	vecs []map[uint64]struct{}
}

// maxVectorsPerDecision bounds MCDC bookkeeping per decision. 1<<16 packed
// vectors cover every decision with up to 16 conditions exhaustively.
const maxVectorsPerDecision = 1 << 16

// NewRecorder creates a recorder for the given plan.
func NewRecorder(p *Plan) *Recorder {
	r := &Recorder{
		plan:    p,
		Curr:    make([]uint8, p.NumBranches),
		Total:   make([]uint8, p.NumBranches),
		condVec: make([]uint32, len(p.Decisions)),
		vecs:    make([]map[uint64]struct{}, len(p.Decisions)),
	}
	for i := range r.vecs {
		r.vecs[i] = make(map[uint64]struct{})
	}
	return r
}

// Plan returns the plan this recorder was built for.
func (r *Recorder) Plan() *Plan { return r.plan }

// BeginStep clears the per-iteration coverage (Algorithm 1 line 11).
func (r *Recorder) BeginStep() {
	for i := range r.Curr {
		r.Curr[i] = 0
	}
	for i := range r.condVec {
		r.condVec[i] = 0
	}
}

// Cond records one condition evaluation: both the branch hit (true or false
// polarity) and the bit in the owning decision's condition vector.
func (r *Recorder) Cond(condID int, v bool) {
	c := &r.plan.Conds[condID]
	branch := c.BranchBase
	if !v {
		branch++
	}
	r.Curr[branch] = 1
	r.Total[branch] = 1
	if v {
		r.condVec[c.DecisionID] |= 1 << uint(c.Slot)
	} else {
		r.condVec[c.DecisionID] &^= 1 << uint(c.Slot)
	}
}

// Outcome records a decision resolving to the given outcome index, snapshots
// the condition vector for MCDC, and resets the vector for the next
// evaluation. This is the paper's CoverageStatistics() entry point.
func (r *Recorder) Outcome(decID, outcome int) {
	d := &r.plan.Decisions[decID]
	branch := d.OutcomeBase + outcome
	r.Curr[branch] = 1
	r.Total[branch] = 1
	if len(d.CondIDs) > 0 {
		set := r.vecs[decID]
		if len(set) < maxVectorsPerDecision {
			key := uint64(r.condVec[decID]) | uint64(outcome)<<32
			set[key] = struct{}{}
		}
		r.condVec[decID] = 0
	}
}

// ResetAll clears all accumulated coverage (between campaigns).
func (r *Recorder) ResetAll() {
	r.BeginStep()
	for i := range r.Total {
		r.Total[i] = 0
	}
	for i := range r.vecs {
		r.vecs[i] = make(map[uint64]struct{})
	}
}

// CoveredBranches counts branch IDs hit so far.
func (r *Recorder) CoveredBranches() int {
	n := 0
	for _, v := range r.Total {
		if v != 0 {
			n++
		}
	}
	return n
}

// Merge folds another recorder's cumulative coverage into r (used to average
// repeated campaigns or to union per-worker results).
func (r *Recorder) Merge(other *Recorder) {
	for i, v := range other.Total {
		if v != 0 {
			r.Total[i] = 1
		}
	}
	for d, set := range other.vecs {
		dst := r.vecs[d]
		for k := range set {
			if len(dst) >= maxVectorsPerDecision {
				break
			}
			dst[k] = struct{}{}
		}
	}
}

// Snapshot returns a copy of the cumulative branch array.
func (r *Recorder) Snapshot() []uint8 {
	out := make([]uint8, len(r.Total))
	copy(out, r.Total)
	return out
}
