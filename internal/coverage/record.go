package coverage

// Recorder accumulates coverage during execution. It is shared by the fast
// VM (compiled fuzz code) and the interpretive simulator, which is what lets
// the differential tests compare the two paths bit-for-bit.
//
// Per step, Curr mirrors the paper's g_CurrCov array: Curr[branch] != 0 iff
// that branch element triggered during the current model iteration. The
// cumulative Total array and the per-decision condition-vector sets (for
// MCDC) persist across the whole campaign.
type Recorder struct {
	plan *Plan

	// Curr is the per-iteration branch hit array (g_CurrCov).
	Curr []uint8
	// Total is the cumulative branch hit array (g_TotalCov).
	Total []uint8

	// condVec holds, per decision, the condition values observed since the
	// decision last resolved (bit per condition slot).
	condVec []uint32
	// vecs records, per decision, the set of (condition vector, outcome)
	// pairs seen — the raw material for MCDC pairing. Bounded per decision.
	vecs []map[uint64]struct{}
	// lastVec caches, per decision, the most recent (vector, outcome) key
	// plus one (0 = none). Decisions resolve the same way step after step on
	// most inputs, so this single entry skips the map insert — the hottest
	// operation in VM profiles — in the common case. Purely an accelerator:
	// it only elides inserts of keys already present in vecs.
	lastVec []uint64

	// condMeta/decMeta flatten the plan fields Cond and Outcome touch into
	// compact contiguous records. Plan entries carry labels and slices the
	// hot path never reads; chasing them costs a cache miss per probe.
	condMeta []condMeta
	decMeta  []decMeta
}

type condMeta struct {
	branchBase uint32
	decID      uint32
	bit        uint32 // 1 << slot
}

type decMeta struct {
	outcomeBase uint32
	hasConds    bool
}

// maxVectorsPerDecision bounds MCDC bookkeeping per decision. 1<<16 packed
// vectors cover every decision with up to 16 conditions exhaustively.
const maxVectorsPerDecision = 1 << 16

// NewRecorder creates a recorder for the given plan.
func NewRecorder(p *Plan) *Recorder {
	r := &Recorder{
		plan:    p,
		Curr:    make([]uint8, p.NumBranches),
		Total:   make([]uint8, p.NumBranches),
		condVec: make([]uint32, len(p.Decisions)),
		vecs:    make([]map[uint64]struct{}, len(p.Decisions)),
		lastVec: make([]uint64, len(p.Decisions)),

		condMeta: make([]condMeta, len(p.Conds)),
		decMeta:  make([]decMeta, len(p.Decisions)),
	}
	for i := range r.vecs {
		r.vecs[i] = make(map[uint64]struct{})
	}
	for i := range p.Conds {
		c := &p.Conds[i]
		r.condMeta[i] = condMeta{
			branchBase: uint32(c.BranchBase),
			decID:      uint32(c.DecisionID),
			bit:        uint32(1) << uint(c.Slot),
		}
	}
	for i := range p.Decisions {
		d := &p.Decisions[i]
		r.decMeta[i] = decMeta{
			outcomeBase: uint32(d.OutcomeBase),
			hasConds:    len(d.CondIDs) > 0,
		}
	}
	return r
}

// Plan returns the plan this recorder was built for.
func (r *Recorder) Plan() *Plan { return r.plan }

// BeginStep clears the per-iteration coverage (Algorithm 1 line 11).
func (r *Recorder) BeginStep() {
	for i := range r.Curr {
		r.Curr[i] = 0
	}
	for i := range r.condVec {
		r.condVec[i] = 0
	}
}

// Cond records one condition evaluation: both the branch hit (true or false
// polarity) and the bit in the owning decision's condition vector.
func (r *Recorder) Cond(condID int, v bool) {
	c := r.condMeta[condID]
	branch := c.branchBase
	if !v {
		branch++
	}
	r.Curr[branch] = 1
	r.Total[branch] = 1
	if v {
		r.condVec[c.decID] |= c.bit
	} else {
		r.condVec[c.decID] &^= c.bit
	}
}

// Outcome records a decision resolving to the given outcome index, snapshots
// the condition vector for MCDC, and resets the vector for the next
// evaluation. This is the paper's CoverageStatistics() entry point.
func (r *Recorder) Outcome(decID, outcome int) {
	d := r.decMeta[decID]
	branch := int(d.outcomeBase) + outcome
	r.Curr[branch] = 1
	r.Total[branch] = 1
	if d.hasConds {
		key := uint64(r.condVec[decID]) | uint64(outcome)<<32
		if r.lastVec[decID] != key+1 {
			set := r.vecs[decID]
			if len(set) < maxVectorsPerDecision {
				set[key] = struct{}{}
				r.lastVec[decID] = key + 1
			}
		}
		r.condVec[decID] = 0
	}
}

// ResetAll clears all accumulated coverage (between campaigns).
func (r *Recorder) ResetAll() {
	r.BeginStep()
	for i := range r.Total {
		r.Total[i] = 0
	}
	for i := range r.vecs {
		r.vecs[i] = make(map[uint64]struct{})
	}
	clear(r.lastVec)
}

// CoveredBranches counts branch IDs hit so far.
func (r *Recorder) CoveredBranches() int {
	n := 0
	for _, v := range r.Total {
		if v != 0 {
			n++
		}
	}
	return n
}

// Merge folds another recorder's cumulative coverage into r (used to average
// repeated campaigns or to union per-worker results).
func (r *Recorder) Merge(other *Recorder) {
	for i, v := range other.Total {
		if v != 0 {
			r.Total[i] = 1
		}
	}
	for d, set := range other.vecs {
		dst := r.vecs[d]
		for k := range set {
			if len(dst) >= maxVectorsPerDecision {
				break
			}
			dst[k] = struct{}{}
		}
	}
}

// Snapshot returns a copy of the cumulative branch array.
func (r *Recorder) Snapshot() []uint8 {
	out := make([]uint8, len(r.Total))
	copy(out, r.Total)
	return out
}
