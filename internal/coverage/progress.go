package coverage

import "sync"

// Progress incrementally tracks campaign coverage percentages so timeline
// sampling stays cheap (no MCDC pairing per sample).
type Progress struct {
	Seen []uint8

	isOutcome       []bool
	dead            []bool
	covOut, covCond int
	totOut, totCond int
}

// NewProgress creates a progress tracker for a plan. Branch slots the plan
// marks dead are excluded from both denominators and numerators.
func NewProgress(p *Plan) *Progress {
	pr := &Progress{
		Seen:      make([]uint8, p.NumBranches),
		isOutcome: make([]bool, p.NumBranches),
		dead:      make([]bool, p.NumBranches),
	}
	for b := range pr.dead {
		pr.dead[b] = p.IsDead(b)
	}
	for i := range p.Decisions {
		d := &p.Decisions[i]
		for k := 0; k < d.NumOutcomes; k++ {
			pr.isOutcome[d.OutcomeBase+k] = true
			if !pr.dead[d.OutcomeBase+k] {
				pr.totOut++
			}
		}
	}
	for i := range p.Conds {
		c := &p.Conds[i]
		for _, branch := range []int{c.BranchBase, c.BranchBase + 1} {
			if !pr.dead[branch] {
				pr.totCond++
			}
		}
	}
	return pr
}

// Absorb folds one iteration's coverage into the campaign view, returning
// how many branch slots were newly covered.
func (pr *Progress) Absorb(curr []uint8) int {
	n := 0
	for b, v := range curr {
		if v != 0 && pr.Seen[b] == 0 {
			pr.Seen[b] = 1
			if pr.dead[b] {
				// Statically "impossible" yet observed: an analysis bug, but
				// percentages must not exceed 100 — count nothing.
				continue
			}
			n++
			if pr.isOutcome[b] {
				pr.covOut++
			} else {
				pr.covCond++
			}
		}
	}
	return n
}

// Decision returns the current Decision Coverage percentage.
func (pr *Progress) Decision() float64 {
	if pr.totOut == 0 {
		return 100
	}
	return 100 * float64(pr.covOut) / float64(pr.totOut)
}

// Condition returns the current Condition Coverage percentage.
func (pr *Progress) Condition() float64 {
	if pr.totCond == 0 {
		return 100
	}
	return 100 * float64(pr.covCond) / float64(pr.totCond)
}

// Covered returns the number of branch slots covered so far.
func (pr *Progress) Covered() int { return pr.covOut + pr.covCond }

// SharedProgress is a mutex-guarded Progress for use as the global coverage
// view of a multi-shard campaign: every shard folds its covered-branch
// bitmap in from its own goroutine, and the status plane reads percentages
// concurrently. Absorb's return value — how many slots were *globally* new —
// is what gates cross-shard corpus broadcasts.
type SharedProgress struct {
	mu sync.Mutex
	pr *Progress
}

// NewShared creates a thread-safe progress tracker for a plan.
func NewShared(p *Plan) *SharedProgress {
	return &SharedProgress{pr: NewProgress(p)}
}

// Absorb folds a covered-branch bitmap into the global view, returning how
// many branch slots were new to the whole campaign.
func (sp *SharedProgress) Absorb(seen []uint8) int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pr.Absorb(seen)
}

// Decision returns the global Decision Coverage percentage.
func (sp *SharedProgress) Decision() float64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pr.Decision()
}

// Condition returns the global Condition Coverage percentage.
func (sp *SharedProgress) Condition() float64 {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pr.Condition()
}

// Covered returns the number of branch slots covered campaign-wide.
func (sp *SharedProgress) Covered() int {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.pr.Covered()
}
