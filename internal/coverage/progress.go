package coverage

import "time"

// TimePoint is one sample of a coverage-versus-time curve — the unit of the
// paper's Figure 7. All three tools (CFTCG, SLDV, SimCoTest) emit the same
// sample type so the harness can plot them together.
type TimePoint struct {
	Elapsed   time.Duration
	Execs     int64
	Decision  float64
	Condition float64
	Branches  int
}

// Progress incrementally tracks campaign coverage percentages so timeline
// sampling stays cheap (no MCDC pairing per sample).
type Progress struct {
	Seen []uint8

	isOutcome       []bool
	covOut, covCond int
	totOut, totCond int
}

// NewProgress creates a progress tracker for a plan.
func NewProgress(p *Plan) *Progress {
	pr := &Progress{
		Seen:      make([]uint8, p.NumBranches),
		isOutcome: make([]bool, p.NumBranches),
	}
	for i := range p.Decisions {
		d := &p.Decisions[i]
		pr.totOut += d.NumOutcomes
		for k := 0; k < d.NumOutcomes; k++ {
			pr.isOutcome[d.OutcomeBase+k] = true
		}
	}
	pr.totCond = 2 * len(p.Conds)
	return pr
}

// Absorb folds one iteration's coverage into the campaign view, returning
// how many branch slots were newly covered.
func (pr *Progress) Absorb(curr []uint8) int {
	n := 0
	for b, v := range curr {
		if v != 0 && pr.Seen[b] == 0 {
			pr.Seen[b] = 1
			n++
			if pr.isOutcome[b] {
				pr.covOut++
			} else {
				pr.covCond++
			}
		}
	}
	return n
}

// Decision returns the current Decision Coverage percentage.
func (pr *Progress) Decision() float64 {
	if pr.totOut == 0 {
		return 100
	}
	return 100 * float64(pr.covOut) / float64(pr.totOut)
}

// Condition returns the current Condition Coverage percentage.
func (pr *Progress) Condition() float64 {
	if pr.totCond == 0 {
		return 100
	}
	return 100 * float64(pr.covCond) / float64(pr.totCond)
}

// Covered returns the number of branch slots covered so far.
func (pr *Progress) Covered() int { return pr.covOut + pr.covCond }
