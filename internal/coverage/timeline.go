package coverage

import (
	"sort"
	"time"
)

// TimePoint is one sample of a coverage-versus-time curve — the unit of the
// paper's Figure 7. All three tools (CFTCG, SLDV, SimCoTest) emit the same
// sample type so the harness can plot them together.
type TimePoint struct {
	Elapsed   time.Duration
	Execs     int64
	Decision  float64
	Condition float64
	Branches  int
}

// MergeTimelines folds per-worker coverage timelines into one ensemble
// curve. At every sample instant occurring in any input timeline, the merged
// point sums each worker's execution count (carrying a worker's last sample
// forward between its own instants) and takes the maximum coverage across
// workers. The max is a conservative lower bound on the ensemble union —
// exact union-over-time would require replaying every discovery, which the
// cheap incremental samples cannot reconstruct — but unlike reporting worker
// 0 alone it is monotone in the whole ensemble's progress and its execs axis
// reflects the aggregate throughput.
func MergeTimelines(timelines [][]TimePoint) []TimePoint {
	switch len(timelines) {
	case 0:
		return nil
	case 1:
		return append([]TimePoint(nil), timelines[0]...)
	}
	var times []time.Duration
	for _, tl := range timelines {
		for _, p := range tl {
			times = append(times, p.Elapsed)
		}
	}
	if len(times) == 0 {
		return nil
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	next := make([]int, len(timelines))       // next unconsumed sample per worker
	last := make([]TimePoint, len(timelines)) // last consumed sample (zero before first)
	var out []TimePoint
	for _, t := range times {
		if n := len(out); n > 0 && out[n-1].Elapsed == t {
			continue // dedup identical instants
		}
		p := TimePoint{Elapsed: t}
		for w, tl := range timelines {
			for next[w] < len(tl) && tl[next[w]].Elapsed <= t {
				last[w] = tl[next[w]]
				next[w]++
			}
			p.Execs += last[w].Execs
			if last[w].Decision > p.Decision {
				p.Decision = last[w].Decision
			}
			if last[w].Condition > p.Condition {
				p.Condition = last[w].Condition
			}
			if last[w].Branches > p.Branches {
				p.Branches = last[w].Branches
			}
		}
		out = append(out, p)
	}
	return out
}
