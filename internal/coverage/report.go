package coverage

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Report summarizes the three metrics the paper evaluates (Table 3):
// Decision Coverage, Condition Coverage, and Modified Condition/Decision
// Coverage. Percentages are 0..100.
type Report struct {
	ModelName string

	DecisionCovered, DecisionTotal int
	CondCovered, CondTotal         int
	MCDCCovered, MCDCTotal         int

	// UncoveredDecisions lists labels of decisions with missing outcomes,
	// for diagnosis.
	UncoveredDecisions []string
}

// Decision returns the Decision Coverage percentage.
func (r Report) Decision() float64 { return pct(r.DecisionCovered, r.DecisionTotal) }

// Condition returns the Condition Coverage percentage.
func (r Report) Condition() float64 { return pct(r.CondCovered, r.CondTotal) }

// MCDC returns the Modified Condition/Decision Coverage percentage.
func (r Report) MCDC() float64 { return pct(r.MCDCCovered, r.MCDCTotal) }

func pct(covered, total int) float64 {
	if total == 0 {
		return 100
	}
	return 100 * float64(covered) / float64(total)
}

// MarshalJSON renders the report for CI pipelines: the three percentages
// plus their covered/total fractions and any uncovered decision labels.
func (r Report) MarshalJSON() ([]byte, error) {
	type frac struct {
		Percent float64 `json:"percent"`
		Covered int     `json:"covered"`
		Total   int     `json:"total"`
	}
	return json.Marshal(struct {
		Model     string   `json:"model"`
		Decision  frac     `json:"decision"`
		Condition frac     `json:"condition"`
		MCDC      frac     `json:"mcdc"`
		Uncovered []string `json:"uncoveredDecisions,omitempty"`
	}{
		Model:     r.ModelName,
		Decision:  frac{r.Decision(), r.DecisionCovered, r.DecisionTotal},
		Condition: frac{r.Condition(), r.CondCovered, r.CondTotal},
		MCDC:      frac{r.MCDC(), r.MCDCCovered, r.MCDCTotal},
		Uncovered: r.UncoveredDecisions,
	})
}

// UnmarshalJSON inverts MarshalJSON so reports survive a round trip through
// persisted JSON (the daemon's crash-durable campaign journal).
func (r *Report) UnmarshalJSON(data []byte) error {
	type frac struct {
		Covered int `json:"covered"`
		Total   int `json:"total"`
	}
	var w struct {
		Model     string   `json:"model"`
		Decision  frac     `json:"decision"`
		Condition frac     `json:"condition"`
		MCDC      frac     `json:"mcdc"`
		Uncovered []string `json:"uncoveredDecisions"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	r.ModelName = w.Model
	r.DecisionCovered, r.DecisionTotal = w.Decision.Covered, w.Decision.Total
	r.CondCovered, r.CondTotal = w.Condition.Covered, w.Condition.Total
	r.MCDCCovered, r.MCDCTotal = w.MCDC.Covered, w.MCDC.Total
	r.UncoveredDecisions = w.Uncovered
	return nil
}

func (r Report) String() string {
	return fmt.Sprintf("%s: decision %.1f%% (%d/%d), condition %.1f%% (%d/%d), MCDC %.1f%% (%d/%d)",
		r.ModelName,
		r.Decision(), r.DecisionCovered, r.DecisionTotal,
		r.Condition(), r.CondCovered, r.CondTotal,
		r.MCDC(), r.MCDCCovered, r.MCDCTotal)
}

// Report computes the coverage metrics from the recorder's cumulative state.
//
// Decision Coverage counts decision outcomes exercised. Condition Coverage
// counts condition polarities exercised (each condition must be seen both
// true and false to fully cover its two slots). MCDC uses the unique-cause
// criterion: condition c of decision d is credited when two recorded
// evaluations differ exactly in c's value and produce different outcomes.
// Conditions are evaluated eagerly (no short-circuit) by both execution
// engines, which makes unique-cause well defined.
func (r *Recorder) Report() Report {
	p := r.plan
	rep := Report{ModelName: p.ModelName}

	// Branch slots the static analyzer proved infeasible are excluded from
	// every denominator: they are not achievable objectives.
	for i := range p.Decisions {
		d := &p.Decisions[i]
		missing := false
		for k := 0; k < d.NumOutcomes; k++ {
			if p.IsDead(d.OutcomeBase + k) {
				continue
			}
			rep.DecisionTotal++
			if r.Total[d.OutcomeBase+k] != 0 {
				rep.DecisionCovered++
			} else {
				missing = true
			}
		}
		if missing {
			rep.UncoveredDecisions = append(rep.UncoveredDecisions, d.Label)
		}
	}

	for i := range p.Conds {
		c := &p.Conds[i]
		for _, branch := range []int{c.BranchBase, c.BranchBase + 1} {
			if p.IsDead(branch) {
				continue
			}
			rep.CondTotal++
			if r.Total[branch] != 0 {
				rep.CondCovered++
			}
		}
	}

	for i := range p.Decisions {
		d := &p.Decisions[i]
		if len(d.CondIDs) == 0 {
			continue
		}
		// A condition with a dead polarity can never demonstrate independent
		// effect (one side of every candidate pair is unreachable), so it is
		// no MCDC objective.
		for _, cid := range d.CondIDs {
			c := p.Cond(cid)
			if !p.IsDead(c.BranchBase) && !p.IsDead(c.BranchBase+1) {
				rep.MCDCTotal++
			}
		}
		rep.MCDCCovered += mcdcSatisfied(d, r.vecs[d.ID])
	}
	return rep
}

// mcdcSatisfied counts how many of the decision's conditions have a
// unique-cause independence pair among the recorded vectors.
func mcdcSatisfied(d *Decision, set map[uint64]struct{}) int {
	if len(set) < 2 {
		return 0
	}
	// Split the packed keys into (vector, outcome) pairs once.
	type rec struct {
		vec     uint32
		outcome uint32
	}
	recs := make([]rec, 0, len(set))
	for k := range set {
		recs = append(recs, rec{vec: uint32(k), outcome: uint32(k >> 32)})
	}
	covered := 0
	for slot := range d.CondIDs {
		mask := uint32(1) << uint(slot)
		found := false
	pairs:
		for i := 0; i < len(recs) && !found; i++ {
			for j := i + 1; j < len(recs); j++ {
				if recs[i].vec^recs[j].vec == mask && recs[i].outcome != recs[j].outcome {
					found = true
					break pairs
				}
			}
		}
		if found {
			covered++
		}
	}
	return covered
}

// FormatTable renders per-decision coverage detail for the `cftcg cov`
// command.
func (r *Recorder) FormatTable() string {
	p := r.plan
	var w strings.Builder
	fmt.Fprintf(&w, "model %s: %d decisions, %d conditions, %d branch slots\n",
		p.ModelName, len(p.Decisions), len(p.Conds), p.NumBranches)
	for i := range p.Decisions {
		d := &p.Decisions[i]
		hit := 0
		for k := 0; k < d.NumOutcomes; k++ {
			if r.Total[d.OutcomeBase+k] != 0 {
				hit++
			}
		}
		fmt.Fprintf(&w, "  [%c] %-60s %d/%d outcomes\n", d.Kind.Mode(), d.Label, hit, d.NumOutcomes)
	}
	return w.String()
}
