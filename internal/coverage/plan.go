// Package coverage defines model-level coverage: the instrumentation plan
// (which decisions and conditions exist in a model), the runtime recorder
// (the "CoverageStatistics()" sink of the paper's Figure 4), and the
// Decision / Condition / MCDC reports of the evaluation (Table 3).
//
// Branch IDs: every decision outcome and every condition polarity gets one
// slot in a dense branch-ID space. The total count is the "#Branch" column
// of the paper's Table 2, and Algorithm 1's g_CurrCov/g_TotalCov arrays are
// indexed by these IDs.
package coverage

import "fmt"

// DecisionKind classifies where a decision came from; it maps onto the four
// instrumentation modes of the paper's §3.1.2.
type DecisionKind uint8

// Decision kinds. Logic is mode (a); Switch/MultiportSwitch/MinMax are mode
// (b); If/SwitchCase/Enable/Trigger are mode (c); the rest are mode (d).
const (
	KindLogic DecisionKind = iota
	KindSwitch
	KindMultiportSwitch
	KindMinMax
	KindIf
	KindSwitchCase
	KindEnable
	KindTrigger
	KindSaturation
	KindDeadZone
	KindRateLimiter
	KindRelay
	KindAbs
	KindSign
	KindLookup
	KindIntegratorSat
	KindScriptIf
	KindTransition
	KindDetect
	KindIntervalTest
	KindBacklash
	KindWrap
	KindAssertion
)

var kindNames = [...]string{
	KindLogic: "Logic", KindSwitch: "Switch", KindMultiportSwitch: "MultiportSwitch",
	KindMinMax: "MinMax", KindIf: "If", KindSwitchCase: "SwitchCase",
	KindEnable: "Enable", KindTrigger: "Trigger", KindSaturation: "Saturation",
	KindDeadZone: "DeadZone", KindRateLimiter: "RateLimiter", KindRelay: "Relay",
	KindAbs: "Abs", KindSign: "Sign", KindLookup: "Lookup",
	KindIntegratorSat: "IntegratorSat", KindScriptIf: "ScriptIf", KindTransition: "Transition",
	KindDetect: "Detect", KindIntervalTest: "IntervalTest", KindBacklash: "Backlash",
	KindWrap: "Wrap", KindAssertion: "Assertion",
}

func (k DecisionKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("DecisionKind(%d)", uint8(k))
}

// Mode returns the paper's instrumentation mode letter for the kind.
func (k DecisionKind) Mode() byte {
	switch k {
	case KindLogic:
		return 'a'
	case KindSwitch, KindMultiportSwitch, KindMinMax:
		return 'b'
	case KindIf, KindSwitchCase, KindEnable, KindTrigger:
		return 'c'
	default:
		return 'd'
	}
}

// Decision is one instrumented decision point with NumOutcomes possible
// outcomes. Boolean decisions (NumOutcomes == 2, outcome 1 meaning "true")
// participate in MCDC via their conditions.
type Decision struct {
	ID          int
	Label       string
	Kind        DecisionKind
	NumOutcomes int
	OutcomeBase int   // branch ID of outcome 0; outcome k is OutcomeBase+k
	CondIDs     []int // conditions feeding this decision (may be empty)
	Boolean     bool
}

// Cond is one condition of a decision: a boolean leaf whose independent
// effect MCDC measures. Each condition owns two branch IDs.
type Cond struct {
	ID         int
	DecisionID int
	Slot       int // bit position in the decision's condition vector
	Label      string
	BranchBase int // branch ID of "true"; BranchBase+1 is "false"
}

// Plan is the complete instrumentation plan of one model.
type Plan struct {
	ModelName   string
	Decisions   []Decision
	Conds       []Cond
	NumBranches int

	// Dead marks branch slots the static analyzer proved infeasible. Dead
	// slots are excluded from report denominators and never scheduled as
	// fuzzing targets. Nil when no analysis ran (nothing is dead).
	Dead []bool
}

// MarkDead records that a branch slot is statically infeasible.
func (p *Plan) MarkDead(branch int) {
	if branch < 0 || branch >= p.NumBranches {
		return
	}
	if p.Dead == nil {
		p.Dead = make([]bool, p.NumBranches)
	}
	p.Dead[branch] = true
}

// IsDead reports whether a branch slot was proved infeasible.
func (p *Plan) IsDead(branch int) bool {
	return p.Dead != nil && branch < len(p.Dead) && p.Dead[branch]
}

// DeadCount returns the number of branch slots proved infeasible.
func (p *Plan) DeadCount() int {
	n := 0
	for _, d := range p.Dead {
		if d {
			n++
		}
	}
	return n
}

// BranchCount returns the number of instrumented branch slots — the
// "#Branch" statistic of the paper's Table 2 and the branchCount input of
// Algorithm 1.
func (p *Plan) BranchCount() int { return p.NumBranches }

// Decision returns the decision with the given ID.
func (p *Plan) Decision(id int) *Decision { return &p.Decisions[id] }

// Cond returns the condition with the given ID.
func (p *Plan) Cond(id int) *Cond { return &p.Conds[id] }

// BranchLabel describes a branch ID for reports and disassembly.
func (p *Plan) BranchLabel(branch int) string {
	for i := range p.Decisions {
		d := &p.Decisions[i]
		if branch >= d.OutcomeBase && branch < d.OutcomeBase+d.NumOutcomes {
			return fmt.Sprintf("%s outcome %d", d.Label, branch-d.OutcomeBase)
		}
	}
	for i := range p.Conds {
		c := &p.Conds[i]
		if branch == c.BranchBase {
			return c.Label + " true"
		}
		if branch == c.BranchBase+1 {
			return c.Label + " false"
		}
	}
	return fmt.Sprintf("branch %d", branch)
}

// newDecision appends a decision (and allocates its outcome branch IDs).
func (p *Plan) newDecision(label string, kind DecisionKind, outcomes int, boolean bool) *Decision {
	d := Decision{
		ID:          len(p.Decisions),
		Label:       label,
		Kind:        kind,
		NumOutcomes: outcomes,
		OutcomeBase: p.NumBranches,
		Boolean:     boolean,
	}
	p.NumBranches += outcomes
	p.Decisions = append(p.Decisions, d)
	return &p.Decisions[len(p.Decisions)-1]
}

// newCond appends a condition to a decision (allocating its branch IDs).
func (p *Plan) newCond(decID int, label string) *Cond {
	d := &p.Decisions[decID]
	c := Cond{
		ID:         len(p.Conds),
		DecisionID: decID,
		Slot:       len(d.CondIDs),
		Label:      label,
		BranchBase: p.NumBranches,
	}
	p.NumBranches += 2
	p.Conds = append(p.Conds, c)
	d.CondIDs = append(d.CondIDs, c.ID)
	return &p.Conds[len(p.Conds)-1]
}
