package coverage

import (
	"fmt"

	"cftcg/internal/blocks"
	"cftcg/internal/mlfunc"
	"cftcg/internal/model"
	"cftcg/internal/stateflow"
)

// Index maps model entities to their plan IDs. The code generator and the
// interpreter both consult it so that the compiled program and the
// simulation engine report coverage in the identical ID space — the property
// the paper's differential validation relies on.
type Index struct {
	// BlockDecisions lists the decision IDs owned by a block, in a fixed
	// per-kind order (e.g. an If block owns one decision per condition).
	BlockDecisions map[*model.Block][]int
	// BlockConds lists the condition IDs of a logic block, one per input.
	BlockConds map[*model.Block][]int
	// StmtDecision maps a script `if` statement to its decision.
	StmtDecision map[*mlfunc.If]int
	// StmtDecision2 maps a script `while` statement to its decision.
	StmtDecision2 map[*mlfunc.While]int
	// ExprCond maps a leaf condition expression (inside script ifs, If
	// block conditions, or chart guards) to its condition ID.
	ExprCond map[mlfunc.Expr]int
	// TransDecision maps a chart transition to its decision.
	TransDecision map[*stateflow.Transition]int
}

// Build walks the analyzed design and produces the instrumentation plan plus
// the entity index. Walk order is deterministic (block ID order, recursing
// into subsystems immediately), so plans are stable across runs.
func Build(d *blocks.Design) (*Plan, *Index, error) {
	p := &Plan{ModelName: d.Model.Name}
	ix := &Index{
		BlockDecisions: map[*model.Block][]int{},
		BlockConds:     map[*model.Block][]int{},
		StmtDecision:   map[*mlfunc.If]int{},
		StmtDecision2:  map[*mlfunc.While]int{},
		ExprCond:       map[mlfunc.Expr]int{},
		TransDecision:  map[*stateflow.Transition]int{},
	}
	b := &planBuilder{plan: p, ix: ix, design: d}
	if err := b.graph(d.Root); err != nil {
		return nil, nil, err
	}
	return p, ix, nil
}

type planBuilder struct {
	plan   *Plan
	ix     *Index
	design *blocks.Design
}

func (pb *planBuilder) graph(gi *blocks.GraphInfo) error {
	for _, b := range gi.Graph.Blocks {
		if err := pb.block(gi, b); err != nil {
			return err
		}
		if child, ok := gi.Children[b.ID]; ok {
			if err := pb.graph(child); err != nil {
				return err
			}
		}
	}
	return nil
}

func (pb *planBuilder) block(gi *blocks.GraphInfo, b *model.Block) error {
	label := gi.Path + "/" + b.Name
	add := func(id int) { pb.ix.BlockDecisions[b] = append(pb.ix.BlockDecisions[b], id) }

	switch b.Kind {
	case "LogicalOperator":
		// Mode (a): the block output is a decision; every input is a
		// condition checked for both polarities.
		d := pb.plan.newDecision(label, KindLogic, 2, true)
		add(d.ID)
		n := gi.InCount[b.ID]
		for i := 0; i < n; i++ {
			c := pb.plan.newCond(d.ID, fmt.Sprintf("%s in%d", label, i+1))
			pb.ix.BlockConds[b] = append(pb.ix.BlockConds[b], c.ID)
		}

	case "Switch":
		// Mode (b): two-way data selection.
		add(pb.plan.newDecision(label, KindSwitch, 2, true).ID)

	case "MultiportSwitch":
		n := int(b.Params.Int("Inputs", 2))
		add(pb.plan.newDecision(label, KindMultiportSwitch, n, false).ID)

	case "MinMax":
		n := int(b.Params.Int("Inputs", 2))
		if n > 1 {
			add(pb.plan.newDecision(label, KindMinMax, n, false).ID)
		}

	case "If":
		// Mode (c): an if/elseif/else cascade — one boolean decision per
		// condition expression, with the expression's leaves as conditions.
		exprs := pb.design.IfConds[b]
		for i, e := range exprs {
			d := pb.plan.newDecision(fmt.Sprintf("%s cond%d", label, i+1), KindIf, 2, true)
			add(d.ID)
			pb.conditions(d.ID, fmt.Sprintf("%s cond%d", label, i+1), e)
		}

	case "SwitchCase":
		cases := b.Params.Ints("Cases", nil)
		add(pb.plan.newDecision(label, KindSwitchCase, len(cases)+1, false).ID)

	case "EnabledSubsystem":
		add(pb.plan.newDecision(label+" enable", KindEnable, 2, true).ID)

	case "TriggeredSubsystem":
		add(pb.plan.newDecision(label+" trigger", KindTrigger, 2, true).ID)

	case "Saturation":
		// Mode (d): below lower limit / in range / above upper limit.
		add(pb.plan.newDecision(label, KindSaturation, 3, false).ID)

	case "DeadZone":
		add(pb.plan.newDecision(label, KindDeadZone, 3, false).ID)

	case "RateLimiter":
		add(pb.plan.newDecision(label, KindRateLimiter, 3, false).ID)

	case "Relay":
		add(pb.plan.newDecision(label, KindRelay, 2, true).ID)

	case "Abs":
		add(pb.plan.newDecision(label, KindAbs, 2, true).ID)

	case "Sign":
		add(pb.plan.newDecision(label, KindSign, 3, false).ID)

	case "Lookup1D":
		bp := b.Params.Floats("Breakpoints", nil)
		if len(bp) < 2 {
			return fmt.Errorf("coverage: %s: Lookup1D needs >= 2 breakpoints", label)
		}
		add(pb.plan.newDecision(label, KindLookup, len(bp)+1, false).ID)

	case "DiscreteIntegrator":
		if _, hasLo := b.Params["Lower"]; hasLo {
			add(pb.plan.newDecision(label, KindIntegratorSat, 3, false).ID)
		}

	case "DetectChange", "DetectIncrease", "DetectDecrease":
		add(pb.plan.newDecision(label, KindDetect, 2, true).ID)

	case "IntervalTest":
		add(pb.plan.newDecision(label, KindIntervalTest, 2, true).ID)

	case "Backlash":
		add(pb.plan.newDecision(label, KindBacklash, 3, false).ID)

	case "WrapToZero":
		add(pb.plan.newDecision(label, KindWrap, 2, true).ID)

	case "Assertion":
		add(pb.plan.newDecision(label, KindAssertion, 2, true).ID)

	case "MatlabFunction":
		f := pb.design.Funcs[b]
		pb.stmts(label, f.Body)

	case "Chart":
		ci := pb.design.Charts[b]
		pb.chart(label, ci)
	}
	return nil
}

// conditions registers the leaf conditions of a decision expression.
func (pb *planBuilder) conditions(decID int, label string, e mlfunc.Expr) {
	for i, leaf := range mlfunc.Conditions(e) {
		c := pb.plan.newCond(decID, fmt.Sprintf("%s c%d<%s>", label, i+1, mlfunc.ExprString(leaf)))
		pb.ix.ExprCond[leaf] = c.ID
	}
}

// stmts registers every `if` in a script statement list as a decision.
func (pb *planBuilder) stmts(label string, body []mlfunc.Stmt) {
	for _, s := range body {
		switch st := s.(type) {
		case *mlfunc.If:
			d := pb.plan.newDecision(fmt.Sprintf("%s if@%d", label, st.Line), KindScriptIf, 2, true)
			pb.ix.StmtDecision[st] = d.ID
			pb.conditions(d.ID, fmt.Sprintf("%s if@%d", label, st.Line), st.Cond)
			pb.stmts(label, st.Then)
			pb.stmts(label, st.Else)
		case *mlfunc.While:
			d := pb.plan.newDecision(fmt.Sprintf("%s while@%d", label, st.Line), KindScriptIf, 2, true)
			pb.ix.StmtDecision2[st] = d.ID
			pb.conditions(d.ID, fmt.Sprintf("%s while@%d", label, st.Line), st.Cond)
			pb.stmts(label, st.Body)
		case *mlfunc.For:
			pb.stmts(label, st.Body)
		}
	}
}

// chart registers every transition as a decision (guard leaves as its
// conditions) and walks all state/transition actions for nested ifs.
func (pb *planBuilder) chart(label string, ci *blocks.ChartInfo) {
	c := ci.Chart
	for _, t := range c.Transitions {
		d := pb.plan.newDecision(fmt.Sprintf("%s %s", label, t.Label()), KindTransition, 2, true)
		pb.ix.TransDecision[t] = d.ID
		if g := ci.Guards[t]; g != nil {
			pb.conditions(d.ID, fmt.Sprintf("%s %s", label, t.Label()), g)
		}
		if acts := ci.TransActs[t]; acts != nil {
			pb.stmts(fmt.Sprintf("%s %s action", label, t.Label()), acts)
		}
	}
	for _, s := range c.States {
		if a := ci.Entry[s]; a != nil {
			pb.stmts(fmt.Sprintf("%s %s.entry", label, s.Name), a)
		}
		if a := ci.During[s]; a != nil {
			pb.stmts(fmt.Sprintf("%s %s.during", label, s.Name), a)
		}
		if a := ci.Exit[s]; a != nil {
			pb.stmts(fmt.Sprintf("%s %s.exit", label, s.Name), a)
		}
	}
}
