package schedule

import (
	"math/rand"
	"strings"
	"testing"

	"cftcg/internal/blocks"
	"cftcg/internal/model"
)

func resolve(t *testing.T, m *model.Model) *blocks.Design {
	t.Helper()
	d, err := blocks.Resolve(m)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return d
}

func TestScheduleRespectsDataflow(t *testing.T) {
	b := model.NewBuilder("S")
	x := b.Inport("x", model.Float64)
	g := b.Gain(x, 2)
	s := b.Add2(g, x)
	b.Outport("o", model.Float64, s)
	d := resolve(t, b.Model())
	if err := Compute(d); err != nil {
		t.Fatal(err)
	}
	pos := make(map[model.BlockID]int)
	for i, id := range d.Root.Order {
		pos[id] = i
	}
	// Every feedthrough edge must point forward in the order.
	for _, l := range d.Root.Graph.Lines {
		if pos[l.Src.Block] > pos[l.Dst.Block] {
			t.Errorf("edge %v -> %v violates schedule", l.Src, l.Dst)
		}
	}
}

func TestScheduleDetectsAlgebraicLoop(t *testing.T) {
	b := model.NewBuilder("Loop")
	x := b.Inport("x", model.Float64)
	sum := b.Add("Sum", "loopsum", model.Params{"Signs": "++"})
	g := b.Gain(sum.Out(0), 0.5)
	b.Connect(x, sum.In(0))
	b.Connect(g, sum.In(1)) // direct cycle, no delay
	b.Outport("o", model.Float64, g)
	m := b.Model()
	d, err := blocks.Resolve(m)
	if err != nil {
		// Type resolution may already fail on the cycle; that error must
		// point at the cycle too.
		if !strings.Contains(err.Error(), "cycle") && !strings.Contains(err.Error(), "stuck") {
			t.Fatalf("unexpected resolve error: %v", err)
		}
		return
	}
	if err := Compute(d); err == nil || !strings.Contains(err.Error(), "algebraic loop") {
		t.Errorf("want algebraic loop error, got %v", err)
	}
}

func TestDelayBreaksLoop(t *testing.T) {
	b := model.NewBuilder("DelayLoop")
	x := b.Inport("x", model.Float64)
	sum := b.Add("Sum", "s", model.Params{"Signs": "++"})
	dl := b.DelayT(sum.Out(0), model.Float64, 0)
	b.Connect(x, sum.In(0))
	b.Connect(dl, sum.In(1))
	b.Outport("o", model.Float64, sum.Out(0))
	d := resolve(t, b.Model())
	if err := Compute(d); err != nil {
		t.Fatalf("delay-broken loop should schedule: %v", err)
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := model.NewBuilder("Self")
	x := b.Inport("x", model.Float64)
	sum := b.Add("Sum", "s", model.Params{"Signs": "++", "Type": model.Float64})
	b.Connect(x, sum.In(0))
	b.Connect(sum.Out(0), sum.In(1))
	b.Outport("o", model.Float64, sum.Out(0))
	d, err := blocks.Resolve(b.Model())
	if err != nil {
		return // acceptable: resolver rejects it first
	}
	if err := Compute(d); err == nil {
		t.Error("self loop must be rejected")
	}
}

// Property: random delay-separated chains always schedule, and the order is
// a valid topological order of the feedthrough edges.
func TestRandomChainsSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		b := model.NewBuilder("R")
		refs := []model.PortRef{b.Inport("x", model.Float64)}
		for i := 0; i < 20; i++ {
			pick := refs[rng.Intn(len(refs))]
			switch rng.Intn(4) {
			case 0:
				refs = append(refs, b.Gain(pick, 2))
			case 1:
				other := refs[rng.Intn(len(refs))]
				refs = append(refs, b.Add2(pick, other))
			case 2:
				refs = append(refs, b.UnitDelay(pick, 0))
			default:
				refs = append(refs, b.Abs(pick))
			}
		}
		b.Outport("o", model.Float64, refs[len(refs)-1])
		d := resolve(t, b.Model())
		if err := Compute(d); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := make(map[model.BlockID]int)
		for i, id := range d.Root.Order {
			pos[id] = i
		}
		if len(pos) != len(d.Root.Graph.Blocks) {
			t.Fatalf("trial %d: schedule incomplete", trial)
		}
		for _, l := range d.Root.Graph.Lines {
			feed := d.Root.Feed[l.Dst.Block]
			if l.Dst.Port < len(feed) && feed[l.Dst.Port] && pos[l.Src.Block] > pos[l.Dst.Block] {
				t.Fatalf("trial %d: order violation on %v->%v", trial, l.Src, l.Dst)
			}
		}
	}
}

func TestScheduleDeterministic(t *testing.T) {
	b := model.NewBuilder("Det")
	x := b.Inport("x", model.Float64)
	y := b.Inport("y", model.Float64)
	b.Outport("o", model.Float64, b.Add2(b.Gain(x, 1), b.Gain(y, 2)))
	m := b.Model()
	d1 := resolve(t, m)
	d2 := resolve(t, m)
	if err := Compute(d1); err != nil {
		t.Fatal(err)
	}
	if err := Compute(d2); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Root.Order {
		if d1.Root.Order[i] != d2.Root.Order[i] {
			t.Fatal("schedule is not deterministic")
		}
	}
}
