// Package schedule computes the block execution order — the paper's
// "Schedule Convert" stage. For every graph in the hierarchy it produces a
// topological order of the blocks over the direct-feedthrough data
// dependencies, treating subsystems as atomic units, and reports algebraic
// loops (cycles not broken by a delay) as errors.
package schedule

import (
	"fmt"
	"sort"
	"strings"

	"cftcg/internal/blocks"
	"cftcg/internal/model"
)

// Compute fills in the Order field of every GraphInfo in the design. The
// order is deterministic: among ready blocks, lower block IDs run first,
// which mirrors Simulink's stable sorted-order semantics.
func Compute(d *blocks.Design) error {
	return computeGraph(d.Root)
}

func computeGraph(gi *blocks.GraphInfo) error {
	order, err := sortGraph(gi)
	if err != nil {
		return err
	}
	gi.Order = order
	for _, child := range gi.Children {
		if err := computeGraph(child); err != nil {
			return err
		}
	}
	return nil
}

// sortGraph runs Kahn's algorithm over the feedthrough dependency edges.
func sortGraph(gi *blocks.GraphInfo) ([]model.BlockID, error) {
	n := len(gi.Graph.Blocks)
	indeg := make([]int, n)
	succ := make([][]model.BlockID, n)

	for _, l := range gi.Graph.Lines {
		feed := gi.Feed[l.Dst.Block]
		if l.Dst.Port >= len(feed) || !feed[l.Dst.Port] {
			continue // delayed port: consumed next step, no ordering edge
		}
		if l.Src.Block == l.Dst.Block {
			return nil, algebraicLoopError(gi, []model.BlockID{l.Src.Block})
		}
		succ[l.Src.Block] = append(succ[l.Src.Block], l.Dst.Block)
		indeg[l.Dst.Block]++
	}

	ready := make([]model.BlockID, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, model.BlockID(id))
		}
	}

	order := make([]model.BlockID, 0, n)
	for len(ready) > 0 {
		// Stable: lowest ID first. The ready set stays small, so a sort
		// per pop is cheap and keeps the schedule reproducible.
		sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		for _, s := range succ[id] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}

	if len(order) != n {
		var loop []model.BlockID
		for id := 0; id < n; id++ {
			if indeg[id] > 0 {
				loop = append(loop, model.BlockID(id))
			}
		}
		return nil, algebraicLoopError(gi, loop)
	}
	return order, nil
}

func algebraicLoopError(gi *blocks.GraphInfo, ids []model.BlockID) error {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = gi.Graph.Block(id).Name
	}
	return fmt.Errorf("schedule: %s: algebraic loop involving blocks [%s] — insert a UnitDelay (with an explicit Type if needed) to break it",
		gi.Path, strings.Join(names, ", "))
}
