package stateflow

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

// opChart is a two-level chart: Off | On{Idle, Run{Slow, Fast}}.
func opChart() *Chart {
	return &Chart{
		Name:    "op",
		Inputs:  []Var{{Name: "x", Type: model.Int32}},
		Outputs: []Var{{Name: "y", Type: model.Int32}},
		States: []*State{
			{Name: "Off"},
			{Name: "On", Initial: "Idle"},
			{Name: "Idle", Parent: "On"},
			{Name: "Run", Parent: "On", Initial: "Slow"},
			{Name: "Slow", Parent: "Run"},
			{Name: "Fast", Parent: "Run"},
		},
		Transitions: []*Transition{
			{From: "Off", To: "On", Guard: "x > 0"},
			{From: "On", To: "Off", Guard: "x < 0"}, // outer transition
			{From: "Idle", To: "Run", Guard: "x > 10"},
			{From: "Slow", To: "Fast", Guard: "x > 100"},
			{From: "Run", To: "Idle", Guard: "x == 0"},
		},
		Initial: "Off",
	}
}

func TestHierarchyValidation(t *testing.T) {
	if err := opChart().Validate(); err != nil {
		t.Fatalf("valid hierarchical chart rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Chart)
		want   string
	}{
		{"composite without initial", func(c *Chart) { c.State("On").Initial = "" }, "needs an Initial"},
		{"initial not a child", func(c *Chart) { c.State("On").Initial = "Off" }, "not one of its children"},
		{"leaf with initial", func(c *Chart) { c.State("Off").Initial = "Off" }, "must not declare"},
		{"unknown parent", func(c *Chart) { c.State("Fast").Parent = "Ghost" }, "unknown parent"},
		{"nested chart initial", func(c *Chart) { c.Initial = "Slow" }, "must be top-level"},
		{"parent cycle", func(c *Chart) {
			c.State("On").Parent = "Run" // On -> Run -> On
		}, "cycle"},
	}
	for _, tc := range cases {
		c := opChart()
		tc.mutate(c)
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestLeavesAndIndexes(t *testing.T) {
	c := opChart()
	var names []string
	for _, l := range c.Leaves() {
		names = append(names, l.Name)
	}
	if strings.Join(names, ",") != "Off,Idle,Slow,Fast" {
		t.Errorf("leaves: %v", names)
	}
	if c.LeafIndex("Slow") != 2 || c.LeafIndex("On") != -1 {
		t.Error("LeafIndex")
	}
}

func TestPathAndLCA(t *testing.T) {
	c := opChart()
	var path []string
	for _, s := range c.PathFromRoot("Fast") {
		path = append(path, s.Name)
	}
	if strings.Join(path, ",") != "On,Run,Fast" {
		t.Errorf("path: %v", path)
	}
	if c.LCA("Slow", "Fast") != "Run" {
		t.Errorf("LCA(Slow,Fast) = %q", c.LCA("Slow", "Fast"))
	}
	if c.LCA("Idle", "Fast") != "On" {
		t.Errorf("LCA(Idle,Fast) = %q", c.LCA("Idle", "Fast"))
	}
	if c.LCA("Off", "Fast") != "" {
		t.Errorf("LCA(Off,Fast) = %q", c.LCA("Off", "Fast"))
	}
}

func TestDefaultDescend(t *testing.T) {
	c := opChart()
	chain, err := c.DefaultDescend("On")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Name != "Idle" {
		t.Errorf("descend On: %v", chain)
	}
	chain, err = c.DefaultDescend("Run")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].Name != "Slow" {
		t.Errorf("descend Run: %v", chain)
	}
	if chain, _ := c.DefaultDescend("Off"); len(chain) != 0 {
		t.Errorf("descend leaf: %v", chain)
	}
}

func TestCandidateTransitionsOuterFirst(t *testing.T) {
	c := opChart()
	var labels []string
	for _, tr := range c.CandidateTransitions("Fast") {
		labels = append(labels, tr.From+">"+tr.To)
	}
	// Outermost (On) first, then Run, then Fast (which has none).
	if strings.Join(labels, ",") != "On>Off,Run>Idle" {
		t.Errorf("candidates for Fast: %v", labels)
	}
}

func TestPlanFireChains(t *testing.T) {
	c := opChart()

	// Outer transition On->Off while Fast active: exit Fast, Run, On.
	onOff := c.Transitions[1]
	plan, err := c.PlanFire("Fast", onOff)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateNames(plan.Exits); got != "Fast,Run,On" {
		t.Errorf("exits: %s", got)
	}
	if got := stateNames(plan.Entries); got != "Off" {
		t.Errorf("entries: %s", got)
	}
	if plan.NewLeaf.Name != "Off" {
		t.Errorf("new leaf: %s", plan.NewLeaf.Name)
	}

	// Composite target: Off->On enters On then default-descends to Idle.
	offOn := c.Transitions[0]
	plan, err = c.PlanFire("Off", offOn)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateNames(plan.Entries); got != "On,Idle" {
		t.Errorf("entries: %s", got)
	}

	// Sibling-composite target: Idle->Run stays inside On.
	idleRun := c.Transitions[2]
	plan, err = c.PlanFire("Idle", idleRun)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateNames(plan.Exits); got != "Idle" {
		t.Errorf("exits: %s", got)
	}
	if got := stateNames(plan.Entries); got != "Run,Slow" {
		t.Errorf("entries: %s", got)
	}

	// Transition from a composite to its own child (Run->Idle... wait,
	// Idle is Run's sibling): use Run->Idle from leaf Fast.
	runIdle := c.Transitions[4]
	plan, err = c.PlanFire("Fast", runIdle)
	if err != nil {
		t.Fatal(err)
	}
	if got := stateNames(plan.Exits); got != "Fast,Run" {
		t.Errorf("exits: %s", got)
	}
	if got := stateNames(plan.Entries); got != "Idle" {
		t.Errorf("entries: %s", got)
	}
}

func stateNames(ss []*State) string {
	var out []string
	for _, s := range ss {
		out = append(out, s.Name)
	}
	return strings.Join(out, ",")
}
