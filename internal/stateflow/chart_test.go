package stateflow

import (
	"strings"
	"testing"

	"cftcg/internal/model"
)

func validChart() *Chart {
	return &Chart{
		Name:    "c",
		Inputs:  []Var{{Name: "x", Type: model.Int32}},
		Outputs: []Var{{Name: "y", Type: model.Int32}},
		Locals:  []Var{{Name: "n", Type: model.Int32}},
		States: []*State{
			{Name: "A"}, {Name: "B"},
		},
		Transitions: []*Transition{
			{From: "A", To: "B", Guard: "x > 0", Priority: 2},
			{From: "A", To: "A", Priority: 1},
			{From: "B", To: "A", Guard: "x < 0"},
		},
		Initial: "A",
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validChart().Validate(); err != nil {
		t.Fatalf("valid chart rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Chart)
		want   string
	}{
		{"no name", func(c *Chart) { c.Name = "" }, "no name"},
		{"no states", func(c *Chart) { c.States = nil }, "no states"},
		{"dup state", func(c *Chart) { c.States = append(c.States, &State{Name: "A"}) }, "duplicate state"},
		{"no initial", func(c *Chart) { c.Initial = "" }, "no initial"},
		{"bad initial", func(c *Chart) { c.Initial = "Z" }, "does not exist"},
		{"bad from", func(c *Chart) { c.Transitions[0].From = "Z" }, "unknown state"},
		{"bad to", func(c *Chart) { c.Transitions[0].To = "Z" }, "unknown state"},
		{"dup data", func(c *Chart) { c.Locals = append(c.Locals, Var{Name: "x", Type: model.Int8}) }, "duplicate data"},
		{"empty data name", func(c *Chart) { c.Locals = append(c.Locals, Var{Type: model.Int8}) }, "empty name"},
	}
	for _, tc := range cases {
		c := validChart()
		tc.mutate(c)
		if err := c.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestFromSortsByPriority(t *testing.T) {
	c := validChart()
	out := c.From("A")
	if len(out) != 2 {
		t.Fatalf("outgoing of A: %d", len(out))
	}
	if out[0].Priority != 1 || out[1].Priority != 2 {
		t.Errorf("priority order broken: %d then %d", out[0].Priority, out[1].Priority)
	}
	if len(c.From("B")) != 1 || len(c.From("Z")) != 0 {
		t.Error("From counts wrong")
	}
}

func TestStateIndexAndLookup(t *testing.T) {
	c := validChart()
	if c.StateIndex("A") != 0 || c.StateIndex("B") != 1 || c.StateIndex("Z") != -1 {
		t.Error("StateIndex")
	}
	if c.State("B") == nil || c.State("Z") != nil {
		t.Error("State lookup")
	}
}

func TestSymbolsMergesAllData(t *testing.T) {
	syms := validChart().Symbols()
	if len(syms) != 3 || syms["x"] != model.Int32 || syms["n"] != model.Int32 {
		t.Errorf("symbols: %v", syms)
	}
}

func TestTransitionLabel(t *testing.T) {
	tr := &Transition{From: "A", To: "B", Guard: "x > 0"}
	if tr.Label() != "A->B[x > 0]" {
		t.Errorf("label: %s", tr.Label())
	}
	tr2 := &Transition{From: "A", To: "B"}
	if tr2.Label() != "A->B[true]" {
		t.Errorf("unguarded label: %s", tr2.Label())
	}
}
