// Package stateflow models the Stateflow charts used by the benchmark
// models: finite state machines with typed input/output/local data, guarded
// prioritized transitions, and entry/during/exit actions written in the
// mlfunc language.
//
// Semantics (a faithful subset of Stateflow's discrete-step execution):
// charts are flat state machines. On the first step the initial state is
// entered (its entry action runs during model initialization). On every
// subsequent step, the outgoing transitions of the active state are evaluated
// in priority order; the first transition whose guard holds fires: the active
// state's exit action runs, then the transition action, then the target
// state's entry action. If no transition fires, the active state's during
// action runs. At most one transition fires per step.
//
// Every transition is a coverage decision (taken / not taken) and the leaf
// boolean terms of its guard are coverage conditions — instrumentation mode
// (d) of the paper's §3.1.2.
package stateflow

import (
	"fmt"

	"cftcg/internal/model"
)

// Var declares one item of chart data.
type Var struct {
	Name string
	Type model.DType
	Init float64
}

// State is one chart state with optional actions (mlfunc statement lists).
// States may nest: Parent names the enclosing composite state ("" for top
// level), and a composite state names its default child in Initial.
type State struct {
	Name   string
	Parent string
	// Initial is the default child entered when a transition targets this
	// state directly (required iff the state has children).
	Initial string
	Entry   string
	During  string
	Exit    string
}

// Transition connects two states. Guard is an mlfunc boolean expression over
// the chart's data ("" means always true); Action is an mlfunc statement
// list run when the transition fires. Lower Priority fires first.
type Transition struct {
	From     string
	To       string
	Guard    string
	Action   string
	Priority int
}

// Label returns a human-readable identifier for coverage reports.
func (t *Transition) Label() string {
	g := t.Guard
	if g == "" {
		g = "true"
	}
	return fmt.Sprintf("%s->%s[%s]", t.From, t.To, g)
}

// Chart is a complete Stateflow chart specification.
type Chart struct {
	Name        string
	Inputs      []Var
	Outputs     []Var
	Locals      []Var
	States      []*State
	Transitions []*Transition
	Initial     string // name of the initial state
}

// State returns the named state, or nil.
func (c *Chart) State(name string) *State {
	for _, s := range c.States {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// StateIndex returns the dense index of the named state, or -1. The active
// state is stored as this index in the generated code's state vector.
func (c *Chart) StateIndex(name string) int {
	for i, s := range c.States {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// From returns the outgoing transitions of a state sorted by priority
// (stable for equal priorities, preserving declaration order).
func (c *Chart) From(state string) []*Transition {
	var out []*Transition
	for _, t := range c.Transitions {
		if t.From == state {
			out = append(out, t)
		}
	}
	// insertion sort by priority; transition lists are short
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Priority < out[j-1].Priority; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Children returns the direct children of the named state ("" = top level)
// in declaration order.
func (c *Chart) Children(name string) []*State {
	var out []*State
	for _, s := range c.States {
		if s.Parent == name {
			out = append(out, s)
		}
	}
	return out
}

// IsLeaf reports whether the named state has no children.
func (c *Chart) IsLeaf(name string) bool { return len(c.Children(name)) == 0 }

// Leaves returns every leaf state in declaration order. The generated code
// stores the active configuration as the index of its leaf.
func (c *Chart) Leaves() []*State {
	var out []*State
	for _, s := range c.States {
		if c.IsLeaf(s.Name) {
			out = append(out, s)
		}
	}
	return out
}

// Ancestors returns the chain from the named state's parent up to the top
// (nearest first). Unknown names return nil.
func (c *Chart) Ancestors(name string) []*State {
	var out []*State
	s := c.State(name)
	for s != nil && s.Parent != "" {
		p := c.State(s.Parent)
		if p == nil {
			break
		}
		out = append(out, p)
		s = p
	}
	return out
}

// PathFromRoot returns the chain of states from the outermost ancestor down
// to (and including) the named state.
func (c *Chart) PathFromRoot(name string) []*State {
	anc := c.Ancestors(name)
	out := make([]*State, 0, len(anc)+1)
	for i := len(anc) - 1; i >= 0; i-- {
		out = append(out, anc[i])
	}
	if s := c.State(name); s != nil {
		out = append(out, s)
	}
	return out
}

// DefaultDescend resolves a transition target to the leaf actually entered:
// composite targets descend through their Initial chain. The returned slice
// is the sequence of states entered below the target itself (entry order);
// the final element is the leaf.
func (c *Chart) DefaultDescend(name string) ([]*State, error) {
	var entered []*State
	s := c.State(name)
	if s == nil {
		return nil, fmt.Errorf("stateflow: chart %s: unknown state %q", c.Name, name)
	}
	for !c.IsLeaf(s.Name) {
		if s.Initial == "" {
			return nil, fmt.Errorf("stateflow: chart %s: composite state %q has no Initial child", c.Name, s.Name)
		}
		child := c.State(s.Initial)
		if child == nil || child.Parent != s.Name {
			return nil, fmt.Errorf("stateflow: chart %s: state %q Initial %q is not a child", c.Name, s.Name, s.Initial)
		}
		entered = append(entered, child)
		s = child
	}
	return entered, nil
}

// LCA returns the name of the lowest common ancestor of two states ("" when
// their only common scope is the chart root).
func (c *Chart) LCA(a, b string) string {
	seen := map[string]bool{}
	for _, s := range c.PathFromRoot(a) {
		seen[s.Name] = true
	}
	lca := ""
	for _, s := range c.PathFromRoot(b) {
		if seen[s.Name] {
			lca = s.Name
		}
	}
	return lca
}

// LeafIndex returns the dense index of the named state within Leaves(), or
// -1. The generated code stores the active configuration as this index.
func (c *Chart) LeafIndex(name string) int {
	for i, s := range c.Leaves() {
		if s.Name == name {
			return i
		}
	}
	return -1
}

// FirePlan is the statically-computed effect of one transition firing while
// a particular leaf is active: which states exit (innermost first), which
// enter (outermost first), and the leaf that ends up active.
type FirePlan struct {
	Exits   []*State
	Entries []*State
	NewLeaf *State
}

// PlanFire computes the fire plan for transition t taken while `leaf` is the
// active leaf (t.From must be leaf or one of its ancestors). Semantics
// follow Stateflow/UML external transitions: the scope is the lowest common
// ancestor of source and target (widened by one level when one contains the
// other); everything inside the scope exits, the path to the target enters,
// and composite targets descend through their default children.
func (c *Chart) PlanFire(leaf string, t *Transition) (FirePlan, error) {
	var plan FirePlan
	scope := c.LCA(t.From, t.To)
	if scope == t.From || scope == t.To {
		if s := c.State(scope); s != nil {
			scope = s.Parent
		} else {
			scope = ""
		}
	}

	// Exit the active chain from the leaf inward-out until the scope.
	path := c.PathFromRoot(leaf)
	cut := 0 // index of first state inside the scope
	for i, s := range path {
		if s.Name == scope {
			cut = i + 1
		}
	}
	for i := len(path) - 1; i >= cut; i-- {
		plan.Exits = append(plan.Exits, path[i])
	}

	// Enter from just below the scope down to the target, then descend.
	tpath := c.PathFromRoot(t.To)
	tcut := 0
	for i, s := range tpath {
		if s.Name == scope {
			tcut = i + 1
		}
	}
	plan.Entries = append(plan.Entries, tpath[tcut:]...)
	descend, err := c.DefaultDescend(t.To)
	if err != nil {
		return plan, err
	}
	plan.Entries = append(plan.Entries, descend...)
	if len(plan.Entries) == 0 {
		return plan, fmt.Errorf("stateflow: chart %s: transition %s enters nothing", c.Name, t.Label())
	}
	plan.NewLeaf = plan.Entries[len(plan.Entries)-1]
	if !c.IsLeaf(plan.NewLeaf.Name) {
		return plan, fmt.Errorf("stateflow: chart %s: transition %s does not resolve to a leaf", c.Name, t.Label())
	}
	return plan, nil
}

// CandidateTransitions returns, for an active leaf, the transitions to
// evaluate in order: outermost ancestor's first (Stateflow gives outer
// transitions precedence), each state's own transitions in priority order.
func (c *Chart) CandidateTransitions(leaf string) []*Transition {
	var out []*Transition
	for _, s := range c.PathFromRoot(leaf) {
		out = append(out, c.From(s.Name)...)
	}
	return out
}

// Symbols returns the mlfunc symbol table visible to guards and actions.
func (c *Chart) Symbols() map[string]model.DType {
	syms := make(map[string]model.DType, len(c.Inputs)+len(c.Outputs)+len(c.Locals))
	for _, v := range c.Inputs {
		syms[v.Name] = v.Type
	}
	for _, v := range c.Outputs {
		syms[v.Name] = v.Type
	}
	for _, v := range c.Locals {
		syms[v.Name] = v.Type
	}
	return syms
}

// Validate checks structural soundness: states uniquely named, hierarchy
// acyclic with valid default children, initial state exists at top level,
// transitions reference existing states, data names are unique.
func (c *Chart) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("stateflow: chart has no name")
	}
	if len(c.States) == 0 {
		return fmt.Errorf("stateflow: chart %s has no states", c.Name)
	}
	seen := map[string]bool{}
	for _, s := range c.States {
		if s.Name == "" {
			return fmt.Errorf("stateflow: chart %s has a state with empty name", c.Name)
		}
		if seen[s.Name] {
			return fmt.Errorf("stateflow: chart %s: duplicate state %q", c.Name, s.Name)
		}
		seen[s.Name] = true
	}
	for _, s := range c.States {
		if s.Parent != "" && !seen[s.Parent] {
			return fmt.Errorf("stateflow: chart %s: state %q has unknown parent %q", c.Name, s.Name, s.Parent)
		}
		// Acyclic: walking parents must terminate within len(States) hops.
		cur, hops := s, 0
		for cur.Parent != "" {
			cur = c.State(cur.Parent)
			hops++
			if cur == nil || hops > len(c.States) {
				return fmt.Errorf("stateflow: chart %s: state %q has a parent cycle", c.Name, s.Name)
			}
		}
		if !c.IsLeaf(s.Name) {
			if s.Initial == "" {
				return fmt.Errorf("stateflow: chart %s: composite state %q needs an Initial child", c.Name, s.Name)
			}
			child := c.State(s.Initial)
			if child == nil || child.Parent != s.Name {
				return fmt.Errorf("stateflow: chart %s: state %q Initial %q is not one of its children", c.Name, s.Name, s.Initial)
			}
		} else if s.Initial != "" {
			return fmt.Errorf("stateflow: chart %s: leaf state %q must not declare Initial", c.Name, s.Name)
		}
	}
	if c.Initial == "" {
		return fmt.Errorf("stateflow: chart %s has no initial state", c.Name)
	}
	if !seen[c.Initial] {
		return fmt.Errorf("stateflow: chart %s: initial state %q does not exist", c.Name, c.Initial)
	}
	if init := c.State(c.Initial); init.Parent != "" {
		return fmt.Errorf("stateflow: chart %s: initial state %q must be top-level", c.Name, c.Initial)
	}
	if _, err := c.DefaultDescend(c.Initial); err != nil {
		return err
	}
	for _, t := range c.Transitions {
		if !seen[t.From] {
			return fmt.Errorf("stateflow: chart %s: transition from unknown state %q", c.Name, t.From)
		}
		if !seen[t.To] {
			return fmt.Errorf("stateflow: chart %s: transition to unknown state %q", c.Name, t.To)
		}
		if _, err := c.DefaultDescend(t.To); err != nil {
			return err
		}
	}
	names := map[string]bool{}
	for _, group := range [][]Var{c.Inputs, c.Outputs, c.Locals} {
		for _, v := range group {
			if v.Name == "" {
				return fmt.Errorf("stateflow: chart %s: data with empty name", c.Name)
			}
			if names[v.Name] {
				return fmt.Errorf("stateflow: chart %s: duplicate data name %q", c.Name, v.Name)
			}
			if !v.Type.Valid() {
				return fmt.Errorf("stateflow: chart %s: data %q has invalid type", c.Name, v.Name)
			}
			names[v.Name] = true
		}
	}
	return nil
}
