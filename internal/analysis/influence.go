package analysis

import (
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
)

// Pass 3: input-field -> probe influence. A flow-insensitive taint
// reachability over the IR tracks, per register and state slot, the set of
// input fields whose value can flow there — through data dependences,
// through state slots across Step iterations, and through control
// dependences (everything inside a conditional jump's region inherits the
// taint of the branch condition). Each branch slot then gets the field set
// that can influence whether it is recorded. Over-approximation is the safe
// direction here: an extra field merely receives some mutation energy, while
// a missing field would starve a reachable objective.

// Influence maps branch slots to input-field sets. Field i occupies mask bit
// min(i, 63): models with more than 64 input fields share the last bit, so
// directed mutation degrades gracefully instead of dropping fields.
type Influence struct {
	NumFields int
	Branch    []uint64 // per branch slot: mask of influencing input fields

	// InitTaint/StepTaint give, per instruction of the respective function,
	// the mask of input fields whose values can flow into that instruction's
	// operands (data or control). The mutation-testing subsystem uses them
	// to find which inputs could ever expose a mutation at a given pc.
	InitTaint []uint64
	StepTaint []uint64
}

func fieldBit(i int) uint64 {
	if i > 63 {
		i = 63
	}
	return 1 << uint(i)
}

// ComputeInfluence builds the influence map for a lowered program.
func ComputeInfluence(p *ir.Program, plan *coverage.Plan) *Influence {
	inf := &Influence{
		NumFields: len(p.In),
		Branch:    make([]uint64, plan.NumBranches),
		InitTaint: make([]uint64, len(p.Init)),
		StepTaint: make([]uint64, len(p.Step)),
	}
	regTaint := make([]uint64, p.NumRegs)
	stTaint := make([]uint64, p.NumState)

	scan := func(code []ir.Instr, opnd []uint64) {
		ctrl := make([]uint64, len(code))
		for pc := range code {
			instr := &code[pc]
			switch instr.Op {
			case ir.OpJmp, ir.OpHalt, ir.OpNop, ir.OpStoreOut:
			case ir.OpJmpIf, ir.OpJmpIfNot:
				// Everything between the jump and the merge point is
				// control-dependent on the condition. The merge is
				// over-approximated by expanding the region through the
				// targets of jumps inside it: in a lowered diamond the
				// taken arm ends with a Jmp over the other arm, so the
				// expansion covers both arms including the code at the
				// branch target itself. Backward regions take effect on
				// the next pass.
				m := regTaint[instr.A] | ctrl[pc]
				lo, hi := pc, int(instr.Imm)
				if hi < lo {
					lo, hi = hi, lo
				}
				for q := lo; q < hi && q < len(code); q++ {
					switch code[q].Op {
					case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
						if t := int(code[q].Imm); t > hi {
							hi = t
						}
					}
				}
				if hi > len(code) {
					hi = len(code)
				}
				for i := lo; i < hi; i++ {
					ctrl[i] |= m
				}
			}
			switch instr.Op {
			case ir.OpProbe, ir.OpCondProbe:
				// Resolved to branch slots after ctrl settles (below).
			case ir.OpLoadIn:
				regTaint[instr.Dst] |= fieldBit(int(instr.Imm)) | ctrl[pc]
			case ir.OpLoadState:
				regTaint[instr.Dst] |= stTaint[instr.Imm] | ctrl[pc]
			case ir.OpStoreState:
				stTaint[instr.Imm] |= regTaint[instr.A] | ctrl[pc]
			case ir.OpConst:
				regTaint[instr.Dst] |= ctrl[pc]
			default:
				dst, reads := operands(instr)
				if dst >= 0 && int(dst) < len(regTaint) {
					m := ctrl[pc]
					for _, r := range reads {
						if r >= 0 && int(r) < len(regTaint) {
							m |= regTaint[r]
						}
					}
					regTaint[dst] |= m
				}
			}
			// Per-instruction operand taint (overwritten each pass; masks
			// only grow, so the final pass holds the settled value).
			m := ctrl[pc]
			switch instr.Op {
			case ir.OpLoadIn:
				m |= fieldBit(int(instr.Imm))
			case ir.OpLoadState:
				m |= stTaint[instr.Imm]
			case ir.OpStoreState:
				m |= regTaint[instr.A] | stTaint[instr.Imm]
			case ir.OpJmpIf, ir.OpJmpIfNot:
				m |= regTaint[instr.A]
			case ir.OpCondProbe:
				m |= regTaint[instr.B]
			case ir.OpConst, ir.OpJmp, ir.OpHalt, ir.OpNop, ir.OpProbe:
			default:
				_, reads := operands(instr)
				for _, r := range reads {
					if r >= 0 && int(r) < len(regTaint) {
						m |= regTaint[r]
					}
				}
			}
			opnd[pc] = m
		}
		// Probe resolution needs the settled ctrl array of this pass.
		for pc := range code {
			instr := &code[pc]
			switch instr.Op {
			case ir.OpProbe:
				if d := int(instr.A); d >= 0 && d < len(plan.Decisions) {
					dec := plan.Decision(d)
					if o := int(instr.B); o >= 0 && o < dec.NumOutcomes {
						inf.Branch[dec.OutcomeBase+o] |= ctrl[pc]
					}
				}
			case ir.OpCondProbe:
				if c := int(instr.A); c >= 0 && c < len(plan.Conds) {
					cond := plan.Cond(c)
					m := regTaint[instr.B] | ctrl[pc]
					inf.Branch[cond.BranchBase] |= m
					inf.Branch[cond.BranchBase+1] |= m
				}
			}
		}
	}

	// Iterate to a fixpoint: taint flows through state slots across
	// iterations and through backward control regions, both of which need
	// extra passes. Masks only grow, so convergence is guaranteed.
	for pass := 0; pass < 8; pass++ {
		before := checksum(regTaint, stTaint, inf.Branch)
		scan(p.Init, inf.InitTaint)
		scan(p.Step, inf.StepTaint)
		if checksum(regTaint, stTaint, inf.Branch) == before {
			break
		}
	}
	return inf
}

// TaintAt returns the input-field mask for one instruction of the named
// function ("init" or "step"); out-of-range queries return 0.
func (inf *Influence) TaintAt(fn string, pc int) uint64 {
	var t []uint64
	switch fn {
	case "init":
		t = inf.InitTaint
	case "step":
		t = inf.StepTaint
	}
	if pc < 0 || pc >= len(t) {
		return 0
	}
	return t[pc]
}

// FieldsOf expands a taint mask into input-field indexes.
func (inf *Influence) FieldsOf(m uint64) []int {
	var out []int
	for i := 0; i < inf.NumFields; i++ {
		if m&fieldBit(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

func checksum(xs ...[]uint64) uint64 {
	var h uint64 = 1469598103934665603
	for _, s := range xs {
		for _, v := range s {
			h ^= v
			h *= 1099511628211
		}
	}
	return h
}

// Fields returns the input-field indexes that can influence a branch slot.
func (inf *Influence) Fields(branch int) []int {
	if branch < 0 || branch >= len(inf.Branch) {
		return nil
	}
	m := inf.Branch[branch]
	var out []int
	for i := 0; i < inf.NumFields; i++ {
		if m&fieldBit(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Weights returns a per-field mutation weight: 1 baseline plus 1 for every
// wanted branch slot the field can influence. Fields that influence nothing
// still get the baseline, so no strategy ever starves completely.
func (inf *Influence) Weights(want func(branch int) bool) []float64 {
	w := make([]float64, inf.NumFields)
	for i := range w {
		w[i] = 1
	}
	for slot, m := range inf.Branch {
		if m == 0 || !want(slot) {
			continue
		}
		for i := 0; i < inf.NumFields; i++ {
			if m&fieldBit(i) != 0 {
				w[i]++
			}
		}
	}
	return w
}
