package analysis_test

import (
	"math/rand"
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// TestDeadSoundnessDifferential is the soundness property test: random
// straight-line IR programs over two int8 inputs, probed like the lowering
// probes real branches, brute-forced over the entire 65536-point input space
// on the VM. The abstract interpretation must never claim dead an outcome
// the VM records — unsound dead-marking would silently inflate coverage.
func TestDeadSoundnessDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	programs := 40
	if testing.Short() {
		programs = 8
	}
	for n := 0; n < programs; n++ {
		p, plan := randomProbedProgram(rng)
		if err := analysis.VerifyStrict(p, plan); err != nil {
			t.Fatalf("program %d: generator emitted invalid IR: %v", n, err)
		}
		dead := make(map[int]bool)
		for _, slot := range analysis.DeadObjectives(p, plan) {
			dead[slot] = true
		}
		rec := coverage.NewRecorder(plan)
		m := vm.New(p, rec)
		in := make([]uint64, 2)
		for x := 0; x < 256; x++ {
			for y := 0; y < 256; y++ {
				in[0] = model.EncodeInt(model.Int8, int64(int8(x)))
				in[1] = model.EncodeInt(model.Int8, int64(int8(y)))
				if err := m.Init(); err != nil {
					t.Fatal(err)
				}
				rec.BeginStep()
				if err := m.Step(in); err != nil {
					t.Fatal(err)
				}
			}
		}
		for slot, v := range rec.Snapshot() {
			if v != 0 && dead[slot] {
				t.Fatalf("program %d: branch %d reachable (VM hit it) but analysis claims dead\nstep:\n%s",
					n, slot, ir.Disasm(p.Step))
			}
		}
	}
}

// randomProbedProgram generates a random well-formed program: a straight
// line of int8 arithmetic and comparisons over two inputs, with every bool
// value probed through the same jump patterns the lowering emits for
// decisions and conditions.
func randomProbedProgram(rng *rand.Rand) (*ir.Program, *coverage.Plan) {
	i8 := model.Int8
	var code []ir.Instr
	var intRegs, boolRegs []int32
	next := int32(0)
	newReg := func() int32 { r := next; next++; return r }
	emit := func(in ir.Instr) { code = append(code, in) }

	r0, r1 := newReg(), newReg()
	emit(ir.Instr{Op: ir.OpLoadIn, DT: i8, Dst: r0, Imm: 0})
	emit(ir.Instr{Op: ir.OpLoadIn, DT: i8, Dst: r1, Imm: 1})
	intRegs = append(intRegs, r0, r1)

	pickInt := func() int32 { return intRegs[rng.Intn(len(intRegs))] }
	for k := 0; k < 8+rng.Intn(10); k++ {
		switch rng.Intn(10) {
		case 0, 1, 2: // binary arithmetic
			binOps := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpMin, ir.OpMax, ir.OpDiv}
			d := newReg()
			emit(ir.Instr{Op: binOps[rng.Intn(len(binOps))], DT: i8, Dst: d, A: pickInt(), B: pickInt()})
			intRegs = append(intRegs, d)
		case 3: // unary
			unOps := []ir.Op{ir.OpNeg, ir.OpAbs, ir.OpMov}
			d := newReg()
			emit(ir.Instr{Op: unOps[rng.Intn(len(unOps))], DT: i8, Dst: d, A: pickInt()})
			intRegs = append(intRegs, d)
		case 4: // constant
			d := newReg()
			emit(ir.Instr{Op: ir.OpConst, DT: i8, Dst: d, Imm: model.EncodeInt(i8, rng.Int63n(256)-128)})
			intRegs = append(intRegs, d)
		case 5, 6, 7: // comparison -> bool
			cmpOps := []ir.Op{ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq, ir.OpNe}
			d := newReg()
			emit(ir.Instr{Op: cmpOps[rng.Intn(len(cmpOps))], DT: i8, Dst: d, A: pickInt(), B: pickInt()})
			boolRegs = append(boolRegs, d)
		case 8: // logic on bools
			if len(boolRegs) < 2 {
				continue
			}
			lOps := []ir.Op{ir.OpAnd, ir.OpOr, ir.OpXor}
			d := newReg()
			emit(ir.Instr{Op: lOps[rng.Intn(len(lOps))], DT: model.Bool, Dst: d,
				A: boolRegs[rng.Intn(len(boolRegs))], B: boolRegs[rng.Intn(len(boolRegs))]})
			boolRegs = append(boolRegs, d)
		case 9: // select
			if len(boolRegs) == 0 {
				continue
			}
			d := newReg()
			emit(ir.Instr{Op: ir.OpSelect, DT: i8, Dst: d,
				A: boolRegs[rng.Intn(len(boolRegs))], B: pickInt(), C: pickInt()})
			intRegs = append(intRegs, d)
		}
	}

	// Probe a handful of bool values exactly like the lowering does: a
	// condition probe plus the two-outcome decision jump diamond.
	plan := &coverage.Plan{ModelName: "rand"}
	probes := 1 + rng.Intn(3)
	for d := 0; d < probes && len(boolRegs) > 0; d++ {
		cond := boolRegs[rng.Intn(len(boolRegs))]
		decID := len(plan.Decisions)
		condID := len(plan.Conds)
		plan.Decisions = append(plan.Decisions, coverage.Decision{
			ID: decID, Label: "d", NumOutcomes: 2, OutcomeBase: plan.NumBranches,
			Boolean: true, CondIDs: []int{condID},
		})
		plan.NumBranches += 2
		plan.Conds = append(plan.Conds, coverage.Cond{
			ID: condID, DecisionID: decID, Label: "c", BranchBase: plan.NumBranches,
		})
		plan.NumBranches += 2
		emit(ir.Instr{Op: ir.OpCondProbe, A: int32(condID), B: cond})
		jmpPC := len(code)
		emit(ir.Instr{Op: ir.OpJmpIfNot, A: cond})            // patched
		emit(ir.Instr{Op: ir.OpProbe, A: int32(decID), B: 1}) // true outcome
		jmp2PC := len(code)
		emit(ir.Instr{Op: ir.OpJmp}) // patched
		code[jmpPC].Imm = uint64(len(code))
		emit(ir.Instr{Op: ir.OpProbe, A: int32(decID), B: 0}) // false outcome
		code[jmp2PC].Imm = uint64(len(code))
	}
	emit(ir.Instr{Op: ir.OpStoreOut, DT: i8, A: pickInt(), Imm: 0})

	p := &ir.Program{
		Name:    "rand",
		Init:    []ir.Instr{{Op: ir.OpHalt}},
		Step:    code,
		NumRegs: int(next),
		In: []model.Field{
			{Name: "a", Type: i8, Offset: 0},
			{Name: "b", Type: i8, Offset: 1},
		},
		Out: []model.Field{{Name: "y", Type: i8, Offset: 0}},
	}
	return p, plan
}
