package analysis_test

import (
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/model"
)

// influenceModel: branch depends on u0 (directly) and on u1 (through state
// accumulation); u2 flows only to an output and influences nothing.
func influenceModel(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("Influence")
	u0 := b.Inport("u0", model.Int32)
	u1 := b.Inport("u1", model.Int32)
	u2 := b.Inport("u2", model.Int32)
	acc := b.UnitDelay(b.Saturation(b.Add2(u1, b.ConstT(model.Int32, 1)), -1000, 1000), 0)
	hot := b.Rel(">", b.Add2(u0, acc), b.ConstT(model.Int32, 50))
	out := b.Switch(hot, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0))
	b.Outport("y", model.Int32, out)
	b.Outport("z", model.Int32, b.Gain(u2, 2))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func fieldIndex(c *codegen.Compiled, name string) int {
	for i, f := range c.Prog.In {
		if f.Name == name {
			return i
		}
	}
	return -1
}

func TestInfluenceMap(t *testing.T) {
	c := influenceModel(t)
	inf := analysis.ComputeInfluence(c.Prog, c.Plan)
	if inf.NumFields != 3 {
		t.Fatalf("NumFields = %d", inf.NumFields)
	}
	iu0, iu1, iu2 := fieldIndex(c, "u0"), fieldIndex(c, "u1"), fieldIndex(c, "u2")
	var sw *coverage.Decision
	for i := range c.Plan.Decisions {
		if c.Plan.Decisions[i].Kind == coverage.KindSwitch {
			sw = &c.Plan.Decisions[i]
		}
	}
	if sw == nil {
		t.Fatal("no switch decision")
	}
	for k := 0; k < sw.NumOutcomes; k++ {
		fields := inf.Fields(sw.OutcomeBase + k)
		has := func(f int) bool {
			for _, x := range fields {
				if x == f {
					return true
				}
			}
			return false
		}
		if !has(iu0) {
			t.Errorf("switch outcome %d: direct operand u0 missing from %v", k, fields)
		}
		if !has(iu1) {
			t.Errorf("switch outcome %d: state-carried u1 missing from %v", k, fields)
		}
		if has(iu2) {
			t.Errorf("switch outcome %d: unrelated u2 wrongly included in %v", k, fields)
		}
	}
}

func TestInfluenceWeights(t *testing.T) {
	c := influenceModel(t)
	inf := analysis.ComputeInfluence(c.Prog, c.Plan)
	iu0, iu2 := fieldIndex(c, "u0"), fieldIndex(c, "u2")
	// Want every branch: u0 influences the switch and comparison slots, u2
	// influences none, so u0 must outweigh u2.
	w := inf.Weights(func(int) bool { return true })
	if len(w) != 3 {
		t.Fatalf("weights len = %d", len(w))
	}
	if w[iu0] <= w[iu2] {
		t.Errorf("u0 weight (%v) must exceed u2 weight (%v)", w[iu0], w[iu2])
	}
	if w[iu2] != 1 {
		t.Errorf("uninfluential field keeps baseline weight 1, got %v", w[iu2])
	}
	// With no wanted branches, everything is baseline.
	w = inf.Weights(func(int) bool { return false })
	for i, v := range w {
		if v != 1 {
			t.Errorf("field %d: want baseline 1, got %v", i, v)
		}
	}
}
