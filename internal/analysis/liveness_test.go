package analysis_test

import (
	"strings"
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

func TestLivenessBasics(t *testing.T) {
	i8 := model.Int8
	p := tinyProg(3, 0, nil, []ir.Instr{
		i(ir.OpConst, i8, 0, 0, 0, 1),    // r0 live until pc 2
		i(ir.OpConst, i8, 1, 0, 0, 2),    // r1 dead: overwritten at pc 3
		i(ir.OpMov, i8, 2, 0, 0, 0),      // reads r0
		i(ir.OpConst, i8, 1, 0, 0, 3),    // redefines r1
		i(ir.OpStoreOut, i8, 0, 1, 0, 0), // reads r1
	})
	lv := analysis.ComputeLiveness(p)
	if lo := lv.LiveOut("step", 0); lo == nil || !lo[0] {
		t.Errorf("r0 should be live out of pc 0: %v", lo)
	}
	if lo := lv.LiveOut("step", 1); lo == nil || lo[1] {
		t.Errorf("r1 should be dead out of pc 1 (overwritten at pc 3): %v", lo)
	}
	if lo := lv.LiveOut("step", 3); lo == nil || !lo[1] {
		t.Errorf("r1 should be live out of pc 3: %v", lo)
	}
}

// TestLivenessCrossCall: a register defined at the end of step and consumed
// at the top of the NEXT step call must be exit-live, because machine
// registers persist across calls.
func TestLivenessCrossCall(t *testing.T) {
	i8 := model.Int8
	p := tinyProg(2, 0, []ir.Instr{
		i(ir.OpConst, i8, 0, 0, 0, 0),
	}, []ir.Instr{
		i(ir.OpStoreOut, i8, 0, 0, 0, 0), // reads r0 from init or prior step
		i(ir.OpConst, i8, 0, 0, 0, 9),    // feeds the next call
	})
	lv := analysis.ComputeLiveness(p)
	if lo := lv.LiveOut("step", 1); lo == nil || !lo[0] {
		t.Errorf("cross-call register not exit-live: %v", lo)
	}
	if !lv.StepEntryLive()[0] {
		t.Error("r0 not live at step entry")
	}
	if lo := lv.LiveOut("init", 0); lo == nil || !lo[0] {
		t.Errorf("init def feeding step not live at init exit: %v", lo)
	}
}

// TestVerifierDeadStoreTwoTier: the verifier must distinguish a register
// that is never read anywhere from one that is read, but only via a
// redefinition that kills this particular store.
func TestVerifierDeadStoreTwoTier(t *testing.T) {
	i8 := model.Int8
	p := tinyProg(2, 0, nil, []ir.Instr{
		i(ir.OpConst, i8, 0, 0, 0, 1), // killed: r0 redefined before the read
		i(ir.OpConst, i8, 1, 0, 0, 2), // truly dead: r1 never read
		i(ir.OpConst, i8, 0, 0, 0, 3),
		i(ir.OpStoreOut, i8, 0, 0, 0, 0),
	})
	issues := analysis.Verify(p, tinyPlan())
	var killed, dead bool
	for _, is := range issues {
		if is.Func == "step" && is.PC == 0 &&
			strings.Contains(is.Msg, "dead store: r0 is overwritten before it can be read") {
			killed = true
		}
		if is.Func == "step" && is.PC == 1 &&
			strings.Contains(is.Msg, "dead store: r1 is never read") {
			dead = true
		}
	}
	if !killed {
		t.Errorf("control-flow-killed store not flagged with the overwrite message: %v", issues)
	}
	if !dead {
		t.Errorf("never-read store not flagged with the never-read message: %v", issues)
	}
}

// TestVerifierNoDeadStoreOnBranchLive: a store that is dead on one branch
// path but read on another is NOT dead and must not be flagged.
func TestVerifierNoDeadStoreOnBranchLive(t *testing.T) {
	i8 := model.Int8
	p := tinyProg(3, 0, nil, []ir.Instr{
		i(ir.OpConst, i8, 0, 0, 0, 1),    // read on the fall-through path only
		i(ir.OpConst, i8, 1, 0, 0, 1),    // branch condition
		i(ir.OpJmpIf, 0, 0, 1, 0, 4),     // skip the read on one path
		i(ir.OpStoreOut, i8, 0, 0, 0, 0), // reads r0
		i(ir.OpConst, i8, 2, 0, 0, 0),
		i(ir.OpStoreOut, i8, 0, 2, 0, 0),
	})
	for _, is := range analysis.Verify(p, tinyPlan()) {
		if is.Func == "step" && is.PC == 0 && strings.Contains(is.Msg, "dead store") {
			t.Errorf("branch-live store wrongly flagged: %v", is)
		}
	}
}
