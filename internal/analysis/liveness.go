package analysis

import "cftcg/internal/ir"

// Liveness is a whole-program backward register-liveness analysis over the
// lowered IR. It answers, per instruction, which registers may still be read
// after that point on some execution — the judgment that separates a store
// that is merely shadowed on one path from one that is dead on every path.
//
// The analysis is call-aware: a machine's registers persist from the init
// call into every subsequent step call, and step runs repeatedly. A register
// is therefore live at init's exit iff step may read it before writing it,
// and live at step's exit iff a *future* step call may read it first — the
// step exit set is the fixpoint of feeding step's entry-live set back into
// its own exit.
type Liveness struct {
	initOut [][]bool // live-out per init pc (nil = unreachable)
	stepOut [][]bool // live-out per step pc (nil = unreachable)
	stepIn  []bool   // live at step entry (== init's exit-live set)
}

// ComputeLiveness runs the analysis. It is defensive about malformed
// programs (out-of-range registers and jump targets are ignored) so the
// verifier can call it on arbitrary input.
func ComputeLiveness(p *ir.Program) *Liveness {
	n := p.NumRegs
	l := &Liveness{}
	// Step exit-live fixpoint: exit₀ = ∅, exitₖ₊₁ = exitₖ ∪ entry(step|exitₖ).
	// Monotone over a finite set, so it converges in ≤ n+1 rounds.
	exit := make([]bool, n)
	for round := 0; round <= n+1; round++ {
		l.stepOut, l.stepIn = funcLiveness(p.Step, n, exit)
		grew := false
		for r, v := range l.stepIn {
			if v && !exit[r] {
				exit[r] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	l.initOut, _ = funcLiveness(p.Init, n, l.stepIn)
	return l
}

// LiveOut returns the live-out register set after the instruction at
// (fn, pc), or nil when the pc is unreachable or out of range. The returned
// slice is shared — callers must not mutate it.
func (l *Liveness) LiveOut(fn string, pc int) []bool {
	var per [][]bool
	if fn == "init" {
		per = l.initOut
	} else {
		per = l.stepOut
	}
	if pc < 0 || pc >= len(per) {
		return nil
	}
	return per[pc]
}

// StepEntryLive returns the registers live at step entry — exactly the
// registers init must be considered to publish.
func (l *Liveness) StepEntryLive() []bool { return l.stepIn }

// funcLiveness computes per-pc live-out sets for one function, given the
// registers live when the function exits (falls off the end or halts).
// Unreachable pcs get nil. Also returns the entry-live set.
func funcLiveness(code []ir.Instr, numRegs int, exitLive []bool) (perPC [][]bool, entry []bool) {
	perPC = make([][]bool, len(code))
	entry = make([]bool, numRegs)
	if len(code) == 0 {
		copy(entry, exitLive)
		return perPC, entry
	}
	blocks := buildBlocks(code)
	reach := reachableBlocks(blocks)
	nb := len(blocks)
	liveIn := make([][]bool, nb)

	// blockOut unions the live-in sets of a block's successors; an index
	// == nb means the function exit.
	blockOut := func(bi int) []bool {
		out := make([]bool, numRegs)
		for _, s := range blocks[bi].succs {
			var src []bool
			if s >= nb {
				src = exitLive
			} else {
				src = liveIn[s]
			}
			for r := 0; r < numRegs && r < len(src); r++ {
				out[r] = out[r] || src[r]
			}
		}
		if len(blocks[bi].succs) == 0 { // OpHalt terminator: function exit
			for r := 0; r < numRegs && r < len(exitLive); r++ {
				out[r] = out[r] || exitLive[r]
			}
		}
		return out
	}
	// scanBack walks one block backward: live-in = (live-out \ dst) ∪ reads.
	scanBack := func(bi int, out []bool, record bool) []bool {
		live := append([]bool(nil), out...)
		for pc := blocks[bi].end - 1; pc >= blocks[bi].start; pc-- {
			if record {
				perPC[pc] = append([]bool(nil), live...)
			}
			dst, reads := operands(&code[pc])
			if dst >= 0 && int(dst) < numRegs {
				live[dst] = false
			}
			for _, r := range reads {
				if r >= 0 && int(r) < numRegs {
					live[r] = true
				}
			}
		}
		return live
	}

	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			if !reach[bi] {
				continue
			}
			in := scanBack(bi, blockOut(bi), false)
			if !boolsEqual(in, liveIn[bi]) {
				liveIn[bi] = in
				changed = true
			}
		}
	}
	for bi := range blocks {
		if reach[bi] {
			scanBack(bi, blockOut(bi), true)
		}
	}
	if liveIn[0] != nil {
		copy(entry, liveIn[0])
	}
	return perPC, entry
}

// Block is one basic block of a lowered function: instructions [Start, End),
// with successor block indexes (an index == len(blocks) means "falls off the
// function end"; a block ending in halt has no successors). Exported for the
// optimizer's dataflow passes.
type Block struct {
	Start, End int
	Succs      []int
}

// BasicBlocks splits a function into basic blocks. Malformed jump targets
// are clamped, matching the verifier's tolerance.
func BasicBlocks(code []ir.Instr) []Block {
	bs := buildBlocks(code)
	out := make([]Block, len(bs))
	for i, b := range bs {
		out[i] = Block{Start: b.start, End: b.end, Succs: b.succs}
	}
	return out
}

// ReachablePCs marks the instructions reachable from the function entry.
func ReachablePCs(code []ir.Instr) []bool {
	out := make([]bool, len(code))
	blocks := buildBlocks(code)
	reach := reachableBlocks(blocks)
	for bi, b := range blocks {
		if reach[bi] {
			for pc := b.start; pc < b.end; pc++ {
				out[pc] = true
			}
		}
	}
	return out
}
