package analysis_test

import (
	"strings"
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// tinyPlan builds a one-decision (2 outcomes), one-condition plan for
// hand-assembled probe programs.
func tinyPlan() *coverage.Plan {
	return &coverage.Plan{
		ModelName: "tiny",
		Decisions: []coverage.Decision{
			{ID: 0, Label: "d0", NumOutcomes: 2, OutcomeBase: 0, Boolean: true},
		},
		Conds: []coverage.Cond{
			{ID: 0, DecisionID: 0, Label: "c0", BranchBase: 2},
		},
		NumBranches: 4,
	}
}

func tinyProg(numRegs, numState int, init, step []ir.Instr) *ir.Program {
	return &ir.Program{
		Name:     "tiny",
		Init:     init,
		Step:     step,
		NumRegs:  numRegs,
		NumState: numState,
		In:       []model.Field{{Name: "u", Type: model.Int8}},
		Out:      []model.Field{{Name: "y", Type: model.Int8}},
	}
}

func i(op ir.Op, dt model.DType, dst, a, b int32, imm uint64) ir.Instr {
	return ir.Instr{Op: op, DT: dt, Dst: dst, A: a, B: b, Imm: imm}
}

// TestVerifierRejectsMalformed feeds the verifier crafted malformed programs
// and demands a positional error for each.
func TestVerifierRejectsMalformed(t *testing.T) {
	i8 := model.Int8
	cases := []struct {
		name     string
		prog     *ir.Program
		wantFunc string
		wantPC   int
		wantMsg  string
	}{
		{
			name: "jump-out-of-bounds",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpJmp, 0, 0, 0, 0, 99),
			}),
			wantFunc: "step", wantPC: 0, wantMsg: "jump target 99",
		},
		{
			name: "use-before-def",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpStoreOut, i8, 0, 0, 0, 0),
			}),
			wantFunc: "step", wantPC: 0, wantMsg: "use of r0 before definition",
		},
		{
			name: "conditional-def-then-use",
			prog: tinyProg(3, 0, nil, []ir.Instr{
				i(ir.OpConst, i8, 1, 0, 0, 1),    // r1 = 1
				i(ir.OpJmpIf, 0, 0, 1, 0, 3),     // if r1 goto 3
				i(ir.OpConst, i8, 0, 0, 0, 7),    // r0 = 7 (one path only)
				i(ir.OpStoreOut, i8, 0, 0, 0, 0), // use r0 at the join
			}),
			wantFunc: "step", wantPC: 3, wantMsg: "use of r0 before definition",
		},
		{
			name: "dst-register-out-of-range",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpConst, i8, 5, 0, 0, 1),
			}),
			wantFunc: "step", wantPC: 0, wantMsg: "dst register r5 out of range",
		},
		{
			name: "src-register-out-of-range",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpConst, i8, 0, 0, 0, 1),
				i(ir.OpMov, i8, 1, 7, 0, 0),
			}),
			wantFunc: "step", wantPC: 1, wantMsg: "source register r7 out of range",
		},
		{
			name: "probe-decision-id-out-of-range",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpProbe, 0, 0, 3, 0, 0),
			}),
			wantFunc: "step", wantPC: 0, wantMsg: "decision ID 3 out of range",
		},
		{
			name: "probe-outcome-out-of-range",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpProbe, 0, 0, 0, 5, 0),
			}),
			wantFunc: "step", wantPC: 0, wantMsg: "outcome 5 out of range",
		},
		{
			name: "condprobe-id-out-of-range",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpConst, model.Bool, 0, 0, 0, 1),
				i(ir.OpCondProbe, 0, 0, 2, 0, 0),
			}),
			wantFunc: "step", wantPC: 1, wantMsg: "condition ID 2 out of range",
		},
		{
			name: "bitwise-on-float",
			prog: tinyProg(3, 0, nil, []ir.Instr{
				i(ir.OpConst, model.Float64, 0, 0, 0, 0),
				i(ir.OpConst, model.Float64, 1, 0, 0, 0),
				i(ir.OpBitAnd, model.Float64, 2, 0, 1, 0),
			}),
			wantFunc: "step", wantPC: 2, wantMsg: "bitwise op type must be integer",
		},
		{
			name: "truth-result-not-bool",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpConst, i8, 0, 0, 0, 1),
				{Op: ir.OpTruth, DT: i8, DT2: i8, Dst: 1, A: 0},
			}),
			wantFunc: "step", wantPC: 1, wantMsg: "result type must be bool",
		},
		{
			name: "math-on-integer",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpConst, model.Int32, 0, 0, 0, 4),
				i(ir.OpSqrt, model.Int32, 1, 0, 0, 0),
			}),
			wantFunc: "step", wantPC: 1, wantMsg: "math op type must be float",
		},
		{
			name: "loadin-slot-out-of-range",
			prog: tinyProg(2, 0, nil, []ir.Instr{
				i(ir.OpLoadIn, i8, 0, 0, 0, 5),
			}),
			wantFunc: "step", wantPC: 0, wantMsg: "input slot 5 out of range",
		},
		{
			name: "state-slot-out-of-range",
			prog: tinyProg(2, 1, nil, []ir.Instr{
				i(ir.OpConst, i8, 0, 0, 0, 1),
				i(ir.OpStoreState, i8, 0, 0, 0, 3),
			}),
			wantFunc: "step", wantPC: 1, wantMsg: "state slot 3 out of range",
		},
	}
	plan := tinyPlan()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			issues := analysis.Verify(tc.prog, plan)
			found := false
			for _, is := range issues {
				if is.Sev == analysis.SevError && is.Func == tc.wantFunc &&
					is.PC == tc.wantPC && strings.Contains(is.Msg, tc.wantMsg) {
					found = true
				}
			}
			if !found {
				t.Errorf("want error %s[%d] containing %q, got:\n%s",
					tc.wantFunc, tc.wantPC, tc.wantMsg, analysis.FormatIssues(issues))
			}
			if analysis.VerifyStrict(tc.prog, plan) == nil {
				t.Error("VerifyStrict must fail on a malformed program")
			}
		})
	}
}

// TestVerifierWarnings checks that lint findings (unreachable code, dead
// stores, identity casts) come back as warnings, not errors.
func TestVerifierWarnings(t *testing.T) {
	i8 := model.Int8
	p := tinyProg(3, 0, nil, []ir.Instr{
		i(ir.OpConst, i8, 0, 0, 0, 1),                  // r0 = 1
		i(ir.OpConst, i8, 2, 0, 0, 9),                  // dead store: r2 never read
		i(ir.OpJmp, 0, 0, 0, 0, 4),                     // skip pc 3
		i(ir.OpConst, i8, 1, 0, 0, 2),                  // unreachable
		{Op: ir.OpCast, DT: i8, DT2: i8, Dst: 1, A: 0}, // identity cast
		i(ir.OpStoreOut, i8, 0, 1, 0, 0),
	})
	issues := analysis.Verify(p, tinyPlan())
	var unreachable, deadStore, identityCast bool
	for _, is := range issues {
		if is.Sev == analysis.SevError {
			t.Errorf("unexpected error: %s", is)
		}
		switch {
		case strings.Contains(is.Msg, "unreachable"):
			unreachable = true
		case strings.Contains(is.Msg, "dead store"):
			deadStore = true
		case strings.Contains(is.Msg, "identity cast"):
			identityCast = true
		}
	}
	if !unreachable || !deadStore || !identityCast {
		t.Errorf("missing lint warnings (unreachable=%v deadStore=%v identityCast=%v):\n%s",
			unreachable, deadStore, identityCast, analysis.FormatIssues(issues))
	}
	if err := analysis.VerifyStrict(p, tinyPlan()); err != nil {
		t.Errorf("warnings must not fail strict verification: %v", err)
	}
}

// TestVerifierAcceptsBenchmodels demands a verifier-clean compile for every
// benchmark model — the acceptance half of the verifier contract.
func TestVerifierAcceptsBenchmodels(t *testing.T) {
	for _, e := range benchmodels.All() {
		c, err := codegen.Compile(e.Build())
		if err != nil {
			t.Fatalf("%s: Compile: %v", e.Name, err)
		}
		if err := analysis.VerifyStrict(c.Prog, c.Plan); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

// TestVerifierAcceptsBlockCatalog compiles models exercising the breadth of
// the block catalog and demands verifier-clean programs.
func TestVerifierAcceptsBlockCatalog(t *testing.T) {
	for _, build := range catalogModels() {
		m := build()
		c, err := codegen.Compile(m)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		if err := analysis.VerifyStrict(c.Prog, c.Plan); err != nil {
			t.Errorf("%s: %v", c.Prog.Name, err)
		}
	}
}

// catalogModels builds models that together exercise the lowering paths of
// the block catalog: nonlinearities, selectors, logic, math, state, scripts,
// and conditional subsystems.
func catalogModels() []func() *model.Model {
	return []func() *model.Model{
		func() *model.Model { // float nonlinearities
			b := model.NewBuilder("CatNonlin")
			x := b.Inport("x", model.Float64)
			dz := b.Add("DeadZone", "dz", model.Params{"Start": -2.0, "End": 3.0}).From(x)
			rl := b.Add("RateLimiter", "rl", model.Params{"Rising": 2.0, "Falling": -1.0}).From(dz.Out(0))
			re := b.Add("Relay", "re", model.Params{
				"OnPoint": 10.0, "OffPoint": 5.0, "OnValue": 1.0, "OffValue": 0.0,
			}).From(rl.Out(0))
			sg := b.Add("Sign", "sg", nil).From(re.Out(0))
			lk := b.Add("Lookup1D", "lk", model.Params{
				"Breakpoints": []float64{0, 10, 20},
				"Table":       []float64{100, 200, 400},
			}).From(sg.Out(0))
			b.Outport("y", model.Float64, b.Saturation(lk.Out(0), 0, 500))
			return b.Model()
		},
		func() *model.Model { // selectors, logic, min/max, abs, cast
			b := model.NewBuilder("CatSelect")
			u := b.Inport("u", model.Int32)
			v := b.Inport("v", model.Int32)
			sw := b.Add("MultiportSwitch", "sw", model.Params{"Inputs": 3})
			b.Connect(u, sw.In(0))
			b.Connect(b.ConstT(model.Int32, 10), sw.In(1))
			b.Connect(v, sw.In(2))
			b.Connect(b.ConstT(model.Int32, 30), sw.In(3))
			hot := b.And(b.Rel(">", u, v), b.Or(b.Rel("<", u, b.ConstT(model.Int32, 0)), b.Not(b.Rel("==", v, b.ConstT(model.Int32, 5)))))
			mm := b.MinMax("max", b.Abs(u), sw.Out(0))
			out := b.Switch(hot, mm, b.Cast(b.ConstT(model.Int8, 1), model.Int32))
			b.Outport("y", model.Int32, out)
			return b.Model()
		},
		func() *model.Model { // state: delays, sums, gains
			b := model.NewBuilder("CatState")
			u := b.Inport("u", model.Float64)
			acc := b.UnitDelay(b.Saturation(b.Add2(u, b.Const(1)), -100, 100), 0)
			d2 := b.DelayT(b.Gain(acc, 0.5), model.Float64, 1)
			b.Outport("y", model.Float64, b.Sub(acc, d2))
			return b.Model()
		},
		func() *model.Model { // scripts with state and control flow
			b := model.NewBuilder("CatScript")
			en := b.Inport("en", model.Int8)
			ml := b.Matlab("ctr", `
input  int8 en;
output int32 alarm = 0;
state  int32 run = 0;
if (en ~= 0) { run = run + 1; } else { run = 0; }
if (run >= 3) { alarm = 1; }
`, en)
			b.Outport("alarm", model.Int32, ml.Out(0))
			return b.Model()
		},
		func() *model.Model { // conditional subsystems and merge
			b := model.NewBuilder("CatIfAction")
			x := b.Inport("x", model.Int32)
			ifb := b.If("sel", []string{"u1 > 10", "u1 < -10"}, x)
			merge := b.Add("Merge", "m", model.Params{"Inputs": 3, "Init": 0.0, "Type": model.Int32})
			for idx, name := range []string{"Hot", "Cold", "Mid"} {
				_, sub := b.ActionSubsystem(name, ifb.Out(idx))
				si := sub.Inport("v", model.Int32)
				sub.Outport("o", model.Int32, sub.Gain(si, float64(idx+1))).Block().Params["Init"] = 0.0
				blk := b.Graph().BlockByName(name)
				b.Connect(x, model.PortRef{Block: blk.ID, Port: 1})
				b.Connect(model.PortRef{Block: blk.ID, Port: 0}, merge.In(idx))
			}
			b.Outport("o", model.Int32, merge.Out(0))
			return b.Model()
		},
		func() *model.Model { // enabled subsystem
			b := model.NewBuilder("CatEnable")
			en := b.Inport("en", model.Int8)
			x := b.Inport("x", model.Float64)
			h, sub := b.EnabledSubsystem("filt", en)
			si := sub.Inport("v", model.Float64)
			sub.Outport("o", model.Float64, sub.Gain(si, 2)).Block().Params["Init"] = 0.0
			b.Connect(x, model.PortRef{Block: h.Block().ID, Port: 1})
			b.Outport("y", model.Float64, h.Out(0))
			return b.Model()
		},
	}
}
