package analysis_test

import (
	"math/rand"
	"testing"

	"cftcg/internal/analysis"
	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// deadBranchModel saturates its input to [0,10] and then compares against
// 20: the comparison can never be true, so the switch's "true" outcome and
// the condition's true polarity are statically dead.
func deadBranchModel(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("DeadBranch")
	u := b.Inport("u", model.Int32)
	sat := b.Saturation(u, 0, 10)
	hot := b.Rel(">", sat, b.ConstT(model.Int32, 20))
	out := b.Switch(hot, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0))
	b.Outport("y", model.Int32, out)
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestDeadObjectivesOnSeededDeadBranch(t *testing.T) {
	c := deadBranchModel(t)
	n := analysis.MarkDead(c.Prog, c.Plan)
	if n == 0 {
		t.Fatal("analysis found no dead objectives in a model with a provably dead branch")
	}
	// The Switch decision's "true" outcome (outcome 1 of a boolean decision)
	// must be dead, its "false" outcome must not be.
	var sw *coverage.Decision
	for i := range c.Plan.Decisions {
		if c.Plan.Decisions[i].Kind == coverage.KindSwitch {
			sw = &c.Plan.Decisions[i]
		}
	}
	if sw == nil {
		t.Fatal("no switch decision in plan")
	}
	if !c.Plan.IsDead(sw.OutcomeBase + 1) {
		t.Errorf("switch true outcome (branch %d) should be dead", sw.OutcomeBase+1)
	}
	if c.Plan.IsDead(sw.OutcomeBase) {
		t.Errorf("switch false outcome (branch %d) must stay live", sw.OutcomeBase)
	}
	// Saturation outcomes are all reachable and must stay live.
	for i := range c.Plan.Decisions {
		d := &c.Plan.Decisions[i]
		if d.Kind != coverage.KindSaturation {
			continue
		}
		for k := 0; k < d.NumOutcomes; k++ {
			if c.Plan.IsDead(d.OutcomeBase + k) {
				t.Errorf("saturation outcome %d wrongly dead", k)
			}
		}
	}
}

// TestReportExcludesDeadDenominators checks that after dead marking, a
// fully-exercised model reports 100% on every metric even though the dead
// slots were never (and can never be) hit.
func TestReportExcludesDeadDenominators(t *testing.T) {
	c := deadBranchModel(t)
	rec := coverage.NewRecorder(c.Plan)
	m := vm.New(c.Prog, rec)
	if err := m.Init(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	step := func(v int64) {
		rec.BeginStep()
		if err := m.Step([]uint64{model.EncodeInt(model.Int32, v)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		step(int64(rng.Intn(60) - 30))
	}
	before := rec.Report()
	if before.Decision() == 100 {
		t.Fatal("without dead marking the dead branch must hold coverage below 100%")
	}
	analysis.MarkDead(c.Prog, c.Plan)
	after := rec.Report()
	if after.Decision() != 100 || after.Condition() != 100 {
		t.Errorf("dead-adjusted coverage should be 100%%: %s", after)
	}
	if after.DecisionTotal >= before.DecisionTotal {
		t.Errorf("decision denominator must shrink: %d -> %d", before.DecisionTotal, after.DecisionTotal)
	}
	// Progress tracking uses the same adjusted denominators.
	pr := coverage.NewProgress(c.Plan)
	pr.Absorb(rec.Snapshot())
	if pr.Decision() != 100 || pr.Condition() != 100 {
		t.Errorf("progress should report 100%% after dead adjustment: %.1f / %.1f",
			pr.Decision(), pr.Condition())
	}
}

// TestDeadSoundOnBenchmodels empirically cross-checks the analysis on every
// benchmark model: no branch slot that concrete random execution reaches may
// be claimed dead.
func TestDeadSoundOnBenchmodels(t *testing.T) {
	for _, e := range benchmodels.All() {
		c, err := codegen.Compile(e.Build())
		if err != nil {
			t.Fatalf("%s: Compile: %v", e.Name, err)
		}
		dead := make(map[int]bool)
		for _, slot := range analysis.DeadObjectives(c.Prog, c.Plan) {
			dead[slot] = true
		}
		rec := coverage.NewRecorder(c.Plan)
		m := vm.New(c.Prog, rec)
		rng := rand.New(rand.NewSource(11))
		in := make([]uint64, len(c.Prog.In))
		for run := 0; run < 30; run++ {
			if err := m.Init(); err != nil {
				t.Fatalf("%s: Init: %v", e.Name, err)
			}
			for s := 0; s < 40; s++ {
				for f := range in {
					in[f] = randomFieldValue(rng, c.Prog.In[f].Type)
				}
				rec.BeginStep()
				if err := m.Step(in); err != nil {
					break // fuel/hang guards are fine here
				}
			}
		}
		for slot, v := range rec.Snapshot() {
			if v != 0 && dead[slot] {
				t.Errorf("%s: branch %d (%s) reached concretely but claimed dead",
					e.Name, slot, c.Plan.BranchLabel(slot))
			}
		}
	}
}

func randomFieldValue(rng *rand.Rand, dt model.DType) uint64 {
	switch {
	case dt.IsFloat():
		switch rng.Intn(4) {
		case 0:
			return model.EncodeFloat(dt, rng.NormFloat64()*1000)
		case 1:
			return model.EncodeFloat(dt, float64(rng.Intn(200)-100))
		case 2:
			return rng.Uint64() // raw bits: infinities and NaNs included
		default:
			return model.EncodeFloat(dt, rng.Float64())
		}
	case dt == model.Bool:
		return uint64(rng.Intn(2))
	default:
		return model.EncodeInt(dt, rng.Int63n(dt.MaxInt()-dt.MinInt()+1)+dt.MinInt())
	}
}
