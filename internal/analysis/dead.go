package analysis

import (
	"math"

	"cftcg/internal/coverage"
	"cftcg/internal/interval"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// Pass 2: abstract interpretation with constant propagation (point
// intervals) and interval domains over Init followed by an iterated Step, to
// prove decision outcomes and condition polarities infeasible. Soundness is
// the contract: a slot is reported dead only if no concrete input sequence
// can ever record it. To honor that against IEEE float semantics the domain
// carries a may-be-NaN flag alongside each interval (NaN lies outside every
// interval, compares false against everything, and propagates through
// arithmetic), float inputs are unbounded, and Float32 results are widened
// outward by one ULP to absorb re-rounding.
//
// Like the SLDV solver, the analysis assumes branch and select conditions
// are bool-typed registers (raw 0/1), which the lowering guarantees: the VM
// tests raw bits while the domain tracks decoded values, and only for bool
// registers are the two always identical.

// aval is one abstract register or state slot: an interval of decoded
// values plus whether the concrete value might be a float NaN.
type aval struct {
	v   interval.Interval
	nan bool
}

func topVal() aval {
	return aval{interval.Span(math.Inf(-1), math.Inf(1)), true}
}

func (a aval) join(b aval) aval {
	return aval{a.v.Hull(b.v), a.nan || b.nan}
}

func (a aval) eq(b aval) bool { return a.v == b.v && a.nan == b.nan }

// sanitize repairs NaN bounds (possible from Inf*0 during interval
// arithmetic) into the full range with the NaN flag set.
func sanitize(a aval) aval {
	if math.IsNaN(a.v.Lo) || math.IsNaN(a.v.Hi) || a.v.Lo > a.v.Hi {
		return topVal()
	}
	return a
}

// truth is three-valued truth of an abstract condition register: a possible
// NaN can test either way at the raw-bits level.
func (a aval) truth() interval.Tri {
	if a.nan {
		return interval.TriMixed
	}
	return a.v.Truth()
}

func hasInf(a aval) bool {
	return math.IsInf(a.v.Lo, 0) || math.IsInf(a.v.Hi, 0)
}

// f32Out widens Float32 results outward by one single-precision ULP so the
// concrete re-rounding performed by the VM's encode step stays inside the
// bounds.
func f32Out(dt model.DType, a aval) aval {
	if dt != model.Float32 {
		return a
	}
	lo, hi := a.v.Lo, a.v.Hi
	if !math.IsInf(lo, 0) {
		lo = float64(math.Nextafter32(float32(lo), float32(math.Inf(-1))))
	}
	if !math.IsInf(hi, 0) {
		hi = float64(math.Nextafter32(float32(hi), float32(math.Inf(1))))
	}
	return aval{interval.Span(lo, hi), a.nan}
}

// env is the abstract machine memory at one program point.
type env struct {
	regs  []aval
	state []aval
}

func (e *env) clone() *env {
	return &env{regs: append([]aval(nil), e.regs...), state: append([]aval(nil), e.state...)}
}

func joinEnvs(a, b *env) *env {
	out := a.clone()
	for i := range out.regs {
		out.regs[i] = out.regs[i].join(b.regs[i])
	}
	for i := range out.state {
		out.state[i] = out.state[i].join(b.state[i])
	}
	return out
}

func envsEqual(a, b *env) bool {
	for i := range a.regs {
		if !a.regs[i].eq(b.regs[i]) {
			return false
		}
	}
	for i := range a.state {
		if !a.state[i].eq(b.state[i]) {
			return false
		}
	}
	return true
}

// widenInto widens every bound of next that grew past prev out to infinity,
// forcing the chaotic iteration to converge.
func widenInto(prev, next *env) {
	w := func(p, n aval) aval {
		if n.v.Lo < p.v.Lo {
			n.v.Lo = math.Inf(-1)
		}
		if n.v.Hi > p.v.Hi {
			n.v.Hi = math.Inf(1)
		}
		return n
	}
	for i := range next.regs {
		next.regs[i] = w(prev.regs[i], next.regs[i])
	}
	for i := range next.state {
		next.state[i] = w(prev.state[i], next.state[i])
	}
}

const (
	widenBlockVisits = 8  // per-block joins before widening inside a function
	widenStepRounds  = 4  // outer Step iterations before widening the state
	maxStepRounds    = 64 // hard stop (widening converges long before this)
)

// absFunc abstractly executes one function from an entry environment and
// returns the join of all exit environments. Probe feasibility is
// accumulated into feas as probes are reached.
type absInterp struct {
	p    *ir.Program
	plan *coverage.Plan
	in   []aval // abstract input fields
	feas []bool // per branch slot: some abstract path records it
}

func (ai *absInterp) absFunc(code []ir.Instr, entry *env) *env {
	blocks := buildBlocks(code)
	if len(blocks) == 0 {
		return entry.clone()
	}
	ins := make([]*env, len(blocks))
	visits := make([]int, len(blocks))
	ins[0] = entry.clone()
	work := []int{0}
	inWork := make([]bool, len(blocks))
	inWork[0] = true
	var exit *env
	noteExit := func(e *env) {
		if exit == nil {
			exit = e.clone()
		} else {
			exit = joinEnvs(exit, e)
		}
	}
	propagate := func(succ int, e *env) {
		if succ >= len(blocks) {
			noteExit(e)
			return
		}
		if ins[succ] == nil {
			ins[succ] = e.clone()
		} else {
			joined := joinEnvs(ins[succ], e)
			visits[succ]++
			if visits[succ] >= widenBlockVisits {
				widenInto(ins[succ], joined)
			}
			if envsEqual(joined, ins[succ]) {
				return
			}
			ins[succ] = joined
		}
		if !inWork[succ] {
			inWork[succ] = true
			work = append(work, succ)
		}
	}
	cmps := make(map[int32]cmpDef)
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[bi] = false
		b := blocks[bi]
		e := ins[bi].clone()
		halted := false
		// Block-local reaching compare definitions, for branch narrowing.
		for k := range cmps {
			delete(cmps, k)
		}
		for pc := b.start; pc < b.end; pc++ {
			instr := &code[pc]
			switch instr.Op {
			case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
				// handled below via successors
			case ir.OpHalt:
				halted = true
			default:
				ai.step(e, instr)
				if dst, _ := operands(instr); dst >= 0 {
					for r, cd := range cmps {
						if r == dst || cd.a == dst || cd.b == dst {
							delete(cmps, r)
						}
					}
					switch instr.Op {
					case ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpEq, ir.OpNe:
						cmps[dst] = cmpDef{op: instr.Op, dt: instr.DT, a: instr.A, b: instr.B}
					}
				}
			}
		}
		if halted {
			noteExit(e)
			continue
		}
		last := &code[b.end-1]
		switch last.Op {
		case ir.OpJmp:
			propagate(b.succs[0], e)
		case ir.OpJmpIf, ir.OpJmpIfNot:
			cd, narrowable := cmps[last.A]
			edge := func(succ int, verdict bool) {
				ne := e
				if narrowable {
					if ne = narrow(e, cd, verdict); ne == nil {
						return // narrowing proves this edge infeasible
					}
				}
				propagate(succ, ne)
			}
			// succs[0] is the jump target: the cond-true edge for JmpIf, the
			// cond-false edge for JmpIfNot.
			trueSucc, falseSucc := b.succs[0], b.succs[1]
			if last.Op == ir.OpJmpIfNot {
				trueSucc, falseSucc = b.succs[1], b.succs[0]
			}
			t := e.regs[last.A].truth()
			if t.CanTrue() {
				edge(trueSucc, true)
			}
			if t.CanFalse() {
				edge(falseSucc, false)
			}
		default:
			propagate(b.succs[0], e)
		}
	}
	if exit == nil {
		// No path leaves the function (e.g. an abstract infinite loop);
		// treat the entry as the exit so the caller keeps a sound state.
		exit = entry.clone()
	}
	return exit
}

// cmpDef remembers that a bool register was defined by a comparison within
// the current block, enabling operand narrowing along the branch edges.
type cmpDef struct {
	op   ir.Op
	dt   model.DType
	a, b int32
}

// inverseCmp maps a relation to its negation.
func inverseCmp(op ir.Op) ir.Op {
	switch op {
	case ir.OpLt:
		return ir.OpGe
	case ir.OpLe:
		return ir.OpGt
	case ir.OpGt:
		return ir.OpLe
	case ir.OpGe:
		return ir.OpLt
	case ir.OpEq:
		return ir.OpNe
	}
	return ir.OpEq // OpNe
}

// narrow refines the branch-condition operands along one edge of a
// compare-driven branch, or returns nil when the edge is proved infeasible.
//
// NaN care: a NaN operand makes every relation except != evaluate false, so
// the verdict-true edge of <,<=,>,>= and == (and the verdict-false edge of
// !=) proves both operands non-NaN; the other edges keep the NaN flag and
// only the interval halves are refined (sound: intervals never describe the
// NaN case).
func narrow(e *env, cd cmpDef, verdict bool) *env {
	if cd.a == cd.b {
		return e
	}
	op := cd.op
	if !verdict {
		op = inverseCmp(op)
	}
	// A NaN operand makes every relation except != false, so NaN operands
	// can only take the edge whose verdict a NaN produces.
	nanEdge := verdict == (cd.op == ir.OpNe)
	a, b := e.regs[cd.a], e.regs[cd.b]
	// Integer relations can exclude the equal endpoint on strict edges.
	d := 0.0
	if cd.dt.IsInteger() || cd.dt == model.Bool {
		d = 1
	}
	alo, ahi := a.v.Lo, a.v.Hi
	blo, bhi := b.v.Lo, b.v.Hi
	switch op {
	case ir.OpLt:
		ahi = math.Min(ahi, bhi-d)
		blo = math.Max(blo, alo+d)
	case ir.OpLe:
		ahi = math.Min(ahi, bhi)
		blo = math.Max(blo, alo)
	case ir.OpGt:
		alo = math.Max(alo, blo+d)
		bhi = math.Min(bhi, ahi-d)
	case ir.OpGe:
		alo = math.Max(alo, blo)
		bhi = math.Min(bhi, ahi)
	case ir.OpEq:
		alo = math.Max(alo, blo)
		blo = alo
		ahi = math.Min(ahi, bhi)
		bhi = ahi
	default: // OpNe: disequality refines no interval
		return e
	}
	aNan := a.nan && nanEdge
	bNan := b.nan && nanEdge
	if (alo > ahi && !aNan) || (blo > bhi && !bNan) {
		return nil // no concrete operand pair can take this edge
	}
	ne := e.clone()
	if alo > ahi {
		ne.regs[cd.a] = topVal() // only the NaN case remains
	} else {
		ne.regs[cd.a] = aval{interval.Span(alo, ahi), aNan}
	}
	if blo > bhi {
		ne.regs[cd.b] = topVal()
	} else {
		ne.regs[cd.b] = aval{interval.Span(blo, bhi), bNan}
	}
	return ne
}

// step applies one non-control-flow instruction to the environment.
func (ai *absInterp) step(e *env, instr *ir.Instr) {
	set := func(a aval) { e.regs[instr.Dst] = sanitize(a) }
	switch instr.Op {
	case ir.OpNop, ir.OpStoreOut:
	case ir.OpProbe:
		if d := int(instr.A); ai.plan != nil && d >= 0 && d < len(ai.plan.Decisions) {
			dec := ai.plan.Decision(d)
			if o := int(instr.B); o >= 0 && o < dec.NumOutcomes {
				ai.feas[dec.OutcomeBase+o] = true
			}
		}
	case ir.OpCondProbe:
		if c := int(instr.A); ai.plan != nil && c >= 0 && c < len(ai.plan.Conds) {
			cond := ai.plan.Cond(c)
			t := e.regs[instr.B].truth()
			if t.CanTrue() {
				ai.feas[cond.BranchBase] = true
			}
			if t.CanFalse() {
				ai.feas[cond.BranchBase+1] = true
			}
		}
	case ir.OpConst:
		v := model.Decode(instr.DT, instr.Imm)
		if math.IsNaN(v) {
			set(topVal())
		} else {
			set(aval{interval.Point(v), false})
		}
	case ir.OpMov:
		set(e.regs[instr.A])
	case ir.OpLoadIn:
		set(ai.in[instr.Imm])
	case ir.OpLoadState:
		set(e.state[instr.Imm])
	case ir.OpStoreState:
		e.state[instr.Imm] = e.regs[instr.A]
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax:
		set(ai.arith(instr.Op, instr.DT, e.regs[instr.A], e.regs[instr.B]))
	case ir.OpNeg:
		a := e.regs[instr.A]
		set(f32Out(instr.DT, aval{interval.WrapArith(instr.DT, interval.Neg(a.v)), a.nan && instr.DT.IsFloat()}))
	case ir.OpAbs:
		a := e.regs[instr.A]
		set(f32Out(instr.DT, aval{interval.WrapArith(instr.DT, interval.Abs(a.v)), a.nan && instr.DT.IsFloat()}))
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		set(ai.compare(instr.Op, e.regs[instr.A], e.regs[instr.B]))
	case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot:
		set(ai.logic(instr.Op, e, instr))
	case ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr:
		set(bitOp(instr.Op, instr.DT, e.regs[instr.A], e.regs[instr.B]))
	case ir.OpTruth:
		a := e.regs[instr.A]
		t := a.v.Truth()
		set(aval{interval.TriToItv(interval.TriOf(t.CanFalse(), t.CanTrue() || a.nan)), false})
	case ir.OpSelect:
		switch e.regs[instr.A].truth() {
		case interval.TriTrue:
			set(e.regs[instr.B])
		case interval.TriFalse:
			set(e.regs[instr.C])
		default:
			set(e.regs[instr.B].join(e.regs[instr.C]))
		}
	case ir.OpCast:
		a := e.regs[instr.A]
		if instr.DT.IsFloat() {
			set(f32Out(instr.DT, aval{a.v, a.nan}))
		} else if a.nan {
			set(aval{interval.TypeRange(instr.DT), false})
		} else {
			set(aval{interval.Cast(instr.DT, instr.DT2, a.v), false})
		}
	case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		a := e.regs[instr.A]
		set(f32Out(instr.DT, aval{interval.MathFn(instr.Op, a.v), a.nan}))
	case ir.OpSin, ir.OpCos, ir.OpTan:
		a := e.regs[instr.A]
		// sin/cos/tan of an infinity is NaN.
		set(f32Out(instr.DT, aval{interval.MathFn(instr.Op, a.v), a.nan || hasInf(a)}))
	default:
		set(topVal())
	}
}

// arith handles the binary arithmetic group, tracking where IEEE semantics
// can spawn a NaN (Inf-Inf, 0*Inf, Inf/Inf; division by zero is total in
// the VM so it never does).
func (ai *absInterp) arith(op ir.Op, dt model.DType, a, b aval) aval {
	var v interval.Interval
	nan := false
	switch op {
	case ir.OpAdd:
		v = interval.Add(a.v, b.v)
		nan = hasInf(a) && hasInf(b)
	case ir.OpSub:
		v = interval.Sub(a.v, b.v)
		nan = hasInf(a) && hasInf(b)
	case ir.OpMul:
		v = interval.Mul(a.v, b.v)
		nan = (a.v.Contains0() && hasInf(b)) || (b.v.Contains0() && hasInf(a))
	case ir.OpDiv:
		v = interval.Div(a.v, b.v)
		nan = hasInf(a) || hasInf(b)
	case ir.OpMin:
		v = interval.Min(a.v, b.v)
	case ir.OpMax:
		v = interval.Max(a.v, b.v)
	}
	if !dt.IsFloat() {
		return aval{interval.WrapArith(dt, v), false}
	}
	return f32Out(dt, aval{v, nan || a.nan || b.nan})
}

// compare evaluates a relational op three-valued. A possible NaN operand
// makes every relation except != possibly-false and != possibly-true.
func (ai *absInterp) compare(op ir.Op, a, b aval) aval {
	t := interval.Cmp(op, a.v, b.v)
	if a.nan || b.nan {
		if op == ir.OpNe {
			t = interval.TriOf(t.CanFalse(), true)
		} else {
			t = interval.TriOf(true, t.CanTrue())
		}
	}
	return aval{interval.TriToItv(t), false}
}

func (ai *absInterp) logic(op ir.Op, e *env, instr *ir.Instr) aval {
	ta := e.regs[instr.A].truth()
	var t interval.Tri
	switch op {
	case ir.OpNot:
		t = interval.TriOf(ta.CanTrue(), ta.CanFalse())
	case ir.OpAnd:
		tb := e.regs[instr.B].truth()
		t = interval.TriOf(ta.CanFalse() || tb.CanFalse(), ta.CanTrue() && tb.CanTrue())
	case ir.OpOr:
		tb := e.regs[instr.B].truth()
		t = interval.TriOf(ta.CanFalse() && tb.CanFalse(), ta.CanTrue() || tb.CanTrue())
	case ir.OpXor:
		tb := e.regs[instr.B].truth()
		t = interval.TriOf(
			(ta.CanTrue() && tb.CanTrue()) || (ta.CanFalse() && tb.CanFalse()),
			(ta.CanTrue() && tb.CanFalse()) || (ta.CanFalse() && tb.CanTrue()))
	}
	return aval{interval.TriToItv(t), false}
}

// bitOp evaluates bitwise/shift ops: concretely when both operands are
// known points, otherwise conservatively as the full type range.
func bitOp(op ir.Op, dt model.DType, a, b aval) aval {
	if !a.v.IsPoint() || !b.v.IsPoint() || a.nan || b.nan {
		return aval{interval.TypeRange(dt), false}
	}
	x := model.DecodeInt(dt, model.EncodeInt(dt, int64(a.v.Lo)))
	y := model.DecodeInt(dt, model.EncodeInt(dt, int64(b.v.Lo)))
	var r int64
	switch op {
	case ir.OpBitAnd:
		r = x & y
	case ir.OpBitOr:
		r = x | y
	case ir.OpBitXor:
		r = x ^ y
	case ir.OpShl:
		r = x << (uint(y) & 31)
	case ir.OpShr:
		r = x >> (uint(y) & 31)
	}
	return aval{interval.Point(float64(model.DecodeInt(dt, model.EncodeInt(dt, r)))), false}
}

// inputVals builds the abstract value of each input field: full type range
// for integers and bools, unbounded (and possibly NaN) for floats — the
// fuzzer feeds raw bit patterns, so no tighter float bound is sound.
func inputVals(p *ir.Program) []aval {
	in := make([]aval, len(p.In))
	for i, f := range p.In {
		if f.Type.IsFloat() {
			in[i] = topVal()
		} else {
			in[i] = aval{interval.TypeRange(f.Type), false}
		}
	}
	return in
}

// Feasible abstractly executes Init followed by Step iterated to a state
// fixpoint and reports, per branch slot, whether some abstract path records
// it. Slots never reached are provably infeasible (dead).
func Feasible(p *ir.Program, plan *coverage.Plan) []bool {
	ai := &absInterp{
		p:    p,
		plan: plan,
		in:   inputVals(p),
		feas: make([]bool, plan.NumBranches),
	}
	entry := &env{regs: make([]aval, p.NumRegs), state: make([]aval, p.NumState)}
	for i := range entry.regs {
		// The machine never clears registers between runs: entry registers
		// hold arbitrary garbage.
		entry.regs[i] = topVal()
	}
	for i := range entry.state {
		// Init() zeroes the state vector before the init function runs.
		entry.state[i] = aval{interval.Point(0), false}
	}
	cur := ai.absFunc(p.Init, entry)
	for round := 0; round < maxStepRounds; round++ {
		exit := ai.absFunc(p.Step, cur)
		next := joinEnvs(cur, exit)
		if round >= widenStepRounds {
			widenInto(cur, next)
		}
		if envsEqual(next, cur) {
			break
		}
		cur = next
	}
	return ai.feas
}

// DeadObjectives returns the branch slots (sorted ascending) that the
// abstract interpretation proves unreachable for every input sequence.
func DeadObjectives(p *ir.Program, plan *coverage.Plan) []int {
	feas := Feasible(p, plan)
	var dead []int
	for slot, ok := range feas {
		if !ok {
			dead = append(dead, slot)
		}
	}
	return dead
}

// MarkDead runs the dead-objective analysis and records the result in the
// plan, returning the number of slots marked.
func MarkDead(p *ir.Program, plan *coverage.Plan) int {
	dead := DeadObjectives(p, plan)
	for _, slot := range dead {
		plan.MarkDead(slot)
	}
	return len(dead)
}
