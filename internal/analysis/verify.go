// Package analysis is the static-analysis layer over the lowered register
// IR: a strict verifier/lint (Pass 1), an abstract interpreter that proves
// coverage objectives infeasible (Pass 2), and an input-field influence map
// that directs mutation energy (Pass 3). The passes harden the compiler,
// make coverage denominators honest, and stop the fuzzer from burning its
// budget on provably wasted mutations.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"cftcg/internal/coverage"
	"cftcg/internal/ir"
	"cftcg/internal/model"
)

// Severity classifies a verifier issue.
type Severity uint8

// Issue severities. Errors make VerifyStrict fail; warnings are lint.
const (
	SevWarn Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// Issue is one verifier finding, positioned at a function and pc.
type Issue struct {
	Func string // "init" or "step"
	PC   int
	Sev  Severity
	Msg  string
}

func (i Issue) String() string {
	return fmt.Sprintf("%s: %s[%d]: %s", i.Sev, i.Func, i.PC, i.Msg)
}

// Verify runs the strict IR verifier over both functions of a program:
// operand and jump ranges, def-before-use per register, per-opcode DT
// consistency, probe IDs bounded by the coverage plan, plus unreachable-code
// and dead-store lint. plan may be nil to skip the probe checks. Issues are
// ordered init-first, by pc.
func Verify(p *ir.Program, plan *coverage.Plan) []Issue {
	v := &verifier{p: p, plan: plan}
	v.readRegs = globalReads(p)
	v.live = ComputeLiveness(p)
	initDefs := v.verifyFunc("init", p.Init, make([]bool, p.NumRegs))
	// Registers persist in the machine between the init and step calls, so
	// step may rely on any register init is guaranteed to have written.
	v.verifyFunc("step", p.Step, initDefs)
	return v.issues
}

// VerifyStrict returns an error summarizing every SevError issue (nil when
// the program is verifier-clean; warnings never fail).
func VerifyStrict(p *ir.Program, plan *coverage.Plan) error {
	var errs []string
	for _, is := range Verify(p, plan) {
		if is.Sev == SevError {
			errs = append(errs, is.String())
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("analysis: %s: %d verifier error(s):\n  %s",
		p.Name, len(errs), strings.Join(errs, "\n  "))
}

type verifier struct {
	p        *ir.Program
	plan     *coverage.Plan
	readRegs []bool // registers read anywhere in init+step
	live     *Liveness
	issues   []Issue
}

func (v *verifier) errf(fn string, pc int, format string, args ...interface{}) {
	v.issues = append(v.issues, Issue{Func: fn, PC: pc, Sev: SevError, Msg: fmt.Sprintf(format, args...)})
}

func (v *verifier) warnf(fn string, pc int, format string, args ...interface{}) {
	v.issues = append(v.issues, Issue{Func: fn, PC: pc, Sev: SevWarn, Msg: fmt.Sprintf(format, args...)})
}

// operands returns the destination register (-1 when none) and the registers
// an instruction reads.
func operands(ins *ir.Instr) (dst int32, reads []int32) {
	switch ins.Op {
	case ir.OpConst, ir.OpLoadIn, ir.OpLoadState:
		return ins.Dst, nil
	case ir.OpMov, ir.OpNeg, ir.OpAbs, ir.OpNot, ir.OpTruth, ir.OpCast,
		ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
		ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
		return ins.Dst, []int32{ins.A}
	case ir.OpSelect:
		return ins.Dst, []int32{ins.A, ins.B, ins.C}
	case ir.OpStoreOut, ir.OpStoreState, ir.OpJmpIf, ir.OpJmpIfNot:
		return -1, []int32{ins.A}
	case ir.OpCondProbe:
		return -1, []int32{ins.B}
	case ir.OpJmp, ir.OpHalt, ir.OpNop, ir.OpProbe:
		return -1, nil
	default: // remaining binary ALU ops
		return ins.Dst, []int32{ins.A, ins.B}
	}
}

// globalReads marks every register read anywhere in the program, for
// dead-store lint (a def whose register no instruction ever reads).
func globalReads(p *ir.Program) []bool {
	reads := make([]bool, p.NumRegs)
	scan := func(code []ir.Instr) {
		for i := range code {
			_, rs := operands(&code[i])
			for _, r := range rs {
				if r >= 0 && int(r) < len(reads) {
					reads[r] = true
				}
			}
		}
	}
	scan(p.Init)
	scan(p.Step)
	return reads
}

// verifyFunc checks one function and returns the set of registers guaranteed
// defined on every path through it (its must-defined exit set).
func (v *verifier) verifyFunc(fn string, code []ir.Instr, entryDefs []bool) []bool {
	n := int32(v.p.NumRegs)
	// Linear per-instruction checks: ranges, DT consistency, probe bounds.
	for pc := range code {
		ins := &code[pc]
		dst, reads := operands(ins)
		if dst >= n {
			v.errf(fn, pc, "%s: dst register r%d out of range (%d registers)", ins.Op, dst, n)
		}
		for _, r := range reads {
			if r < 0 || r >= n {
				v.errf(fn, pc, "%s: source register r%d out of range (%d registers)", ins.Op, r, n)
			}
		}
		switch ins.Op {
		case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
			if ins.Imm > uint64(len(code)) {
				v.errf(fn, pc, "%s: jump target %d beyond function end %d", ins.Op, ins.Imm, len(code))
			}
		case ir.OpLoadIn:
			if int(ins.Imm) >= len(v.p.In) {
				v.errf(fn, pc, "loadin: input slot %d out of range (%d fields)", ins.Imm, len(v.p.In))
			}
		case ir.OpStoreOut:
			if int(ins.Imm) >= len(v.p.Out) {
				v.errf(fn, pc, "storeout: output slot %d out of range (%d fields)", ins.Imm, len(v.p.Out))
			}
		case ir.OpLoadState, ir.OpStoreState:
			if int(ins.Imm) >= v.p.NumState {
				v.errf(fn, pc, "%s: state slot %d out of range (%d slots)", ins.Op, ins.Imm, v.p.NumState)
			}
		case ir.OpProbe:
			if v.plan != nil {
				if int(ins.A) < 0 || int(ins.A) >= len(v.plan.Decisions) {
					v.errf(fn, pc, "probe: decision ID %d out of range (%d decisions)", ins.A, len(v.plan.Decisions))
				} else if d := v.plan.Decision(int(ins.A)); int(ins.B) < 0 || int(ins.B) >= d.NumOutcomes {
					v.errf(fn, pc, "probe: outcome %d out of range for decision %d (%d outcomes)",
						ins.B, ins.A, d.NumOutcomes)
				}
			}
		case ir.OpCondProbe:
			if v.plan != nil && (int(ins.A) < 0 || int(ins.A) >= len(v.plan.Conds)) {
				v.errf(fn, pc, "condprobe: condition ID %d out of range (%d conditions)", ins.A, len(v.plan.Conds))
			}
		}
		// DT invariants per opcode class. Zero-valued DT is model.Bool, so
		// only opcodes whose lowering always sets a type are checked.
		switch ins.Op {
		case ir.OpTruth:
			if ins.DT != model.Bool {
				v.errf(fn, pc, "truth: result type must be bool, got %s", ins.DT)
			}
			if !ins.DT2.Valid() {
				v.errf(fn, pc, "truth: invalid source type %d", ins.DT2)
			} else if ins.DT2 == model.Bool {
				v.warnf(fn, pc, "truth of a bool register is an identity")
			}
		case ir.OpCast:
			if !ins.DT.Valid() || !ins.DT2.Valid() {
				v.errf(fn, pc, "cast: invalid types %d -> %d", ins.DT2, ins.DT)
			} else if ins.DT == ins.DT2 {
				v.warnf(fn, pc, "identity cast %s -> %s", ins.DT2, ins.DT)
			}
		case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot:
			if ins.DT != model.Bool {
				v.errf(fn, pc, "%s: logical op type must be bool, got %s", ins.Op, ins.DT)
			}
		case ir.OpBitAnd, ir.OpBitOr, ir.OpBitXor, ir.OpShl, ir.OpShr:
			if !ins.DT.IsInteger() {
				v.errf(fn, pc, "%s: bitwise op type must be integer, got %s", ins.Op, ins.DT)
			}
		case ir.OpSqrt, ir.OpExp, ir.OpLog, ir.OpSin, ir.OpCos, ir.OpTan,
			ir.OpFloor, ir.OpCeil, ir.OpRound, ir.OpTrunc:
			if !ins.DT.IsFloat() {
				v.errf(fn, pc, "%s: math op type must be float, got %s", ins.Op, ins.DT)
			}
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv, ir.OpMin, ir.OpMax,
			ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe, ir.OpSelect:
			if !ins.DT.Valid() {
				v.errf(fn, pc, "%s: invalid operation type %d", ins.Op, ins.DT)
			}
		}
		// Dead-store lint, in two precision tiers. A register no instruction
		// ever reads is trivially dead; a register that is read somewhere but
		// not live after this definition (every path overwrites it before any
		// read) is a store killed by control flow. The liveness analysis
		// distinguishes the two so the optimizer's DSE transform and this
		// lint agree on what "dead" means.
		if dst >= 0 && dst < n {
			if !v.readRegs[dst] {
				v.warnf(fn, pc, "dead store: r%d is never read", dst)
			} else if lo := v.live.LiveOut(fn, pc); lo != nil && int(dst) < len(lo) && !lo[dst] {
				v.warnf(fn, pc, "dead store: r%d is overwritten before it can be read", dst)
			}
		}
	}

	blocks := buildBlocks(code)
	reach := reachableBlocks(blocks)
	for bi, b := range blocks {
		if !reach[bi] && b.start < b.end {
			v.warnf(fn, b.start, "unreachable code (through %s[%d])", fn, b.end-1)
		}
	}

	// Must-defined forward dataflow: in[b] = ∩ of predecessor outs. Only
	// reachable blocks participate; uses of registers outside every in-set
	// are def-before-use errors.
	nb := len(blocks)
	preds := make([][]int, nb)
	for bi, b := range blocks {
		for _, s := range b.succs {
			if s < nb {
				preds[s] = append(preds[s], bi)
			}
		}
	}
	ins := make([][]bool, nb)
	outs := make([][]bool, nb)
	transfer := func(bi int) []bool {
		defs := append([]bool(nil), ins[bi]...)
		for pc := blocks[bi].start; pc < blocks[bi].end; pc++ {
			if dst, _ := operands(&code[pc]); dst >= 0 && dst < n {
				defs[dst] = true
			}
		}
		return defs
	}
	if nb > 0 {
		ins[0] = append([]bool(nil), entryDefs...)
		outs[0] = transfer(0)
		changed := true
		for changed {
			changed = false
			for bi := 0; bi < nb; bi++ {
				if !reach[bi] {
					continue
				}
				var in []bool
				if bi == 0 {
					in = append([]bool(nil), entryDefs...)
				}
				for _, p := range preds[bi] {
					if !reach[p] || outs[p] == nil {
						continue
					}
					if in == nil {
						in = append([]bool(nil), outs[p]...)
					} else {
						for r := range in {
							in[r] = in[r] && outs[p][r]
						}
					}
				}
				if in == nil {
					in = make([]bool, n) // no analyzed predecessor yet
				}
				if !boolsEqual(in, ins[bi]) {
					ins[bi] = in
					outs[bi] = transfer(bi)
					changed = true
				}
			}
		}
	}
	for bi, b := range blocks {
		if !reach[bi] || ins[bi] == nil {
			continue
		}
		defs := append([]bool(nil), ins[bi]...)
		for pc := b.start; pc < b.end; pc++ {
			dst, reads := operands(&code[pc])
			for _, r := range reads {
				if r >= 0 && r < n && !defs[r] {
					v.errf(fn, pc, "%s: use of r%d before definition", code[pc].Op, r)
				}
			}
			if dst >= 0 && dst < n {
				defs[dst] = true
			}
		}
	}

	// Must-defined exit set: intersection over every block that leaves the
	// function (falls off the end or halts).
	var exit []bool
	for bi, b := range blocks {
		if !reach[bi] || outs[bi] == nil {
			continue
		}
		terminal := len(b.succs) == 0
		for _, s := range b.succs {
			if s >= nb {
				terminal = true
			}
		}
		if !terminal {
			continue
		}
		if exit == nil {
			exit = append([]bool(nil), outs[bi]...)
		} else {
			for r := range exit {
				exit[r] = exit[r] && outs[bi][r]
			}
		}
	}
	if exit == nil {
		exit = make([]bool, n)
	}
	return exit
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// block is one basic block: instructions [start, end), with successor block
// indexes (an index == len(blocks) means "falls off the function end").
type block struct {
	start, end int
	succs      []int
}

// buildBlocks splits a function into basic blocks. Jump targets beyond the
// code (malformed programs) are clamped so the verifier can keep going.
func buildBlocks(code []ir.Instr) []block {
	n := len(code)
	if n == 0 {
		return nil
	}
	leader := make([]bool, n+1)
	leader[0] = true
	for pc := range code {
		switch code[pc].Op {
		case ir.OpJmp, ir.OpJmpIf, ir.OpJmpIfNot:
			t := int(code[pc].Imm)
			if t <= n {
				leader[t] = true
			}
			if pc+1 <= n {
				leader[pc+1] = true
			}
		case ir.OpHalt:
			if pc+1 <= n {
				leader[pc+1] = true
			}
		}
	}
	var starts []int
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			starts = append(starts, pc)
		}
	}
	blockAt := make(map[int]int, len(starts))
	for i, s := range starts {
		blockAt[s] = i
	}
	blocks := make([]block, len(starts))
	for i, s := range starts {
		end := n
		if i+1 < len(starts) {
			end = starts[i+1]
		}
		b := block{start: s, end: end}
		last := &code[end-1]
		target := func(t uint64) int {
			if int(t) >= n {
				return len(starts) // off the end
			}
			return blockAt[int(t)]
		}
		switch last.Op {
		case ir.OpJmp:
			b.succs = []int{target(last.Imm)}
		case ir.OpJmpIf, ir.OpJmpIfNot:
			b.succs = []int{target(last.Imm)}
			if end < n {
				b.succs = append(b.succs, blockAt[end])
			} else {
				b.succs = append(b.succs, len(starts))
			}
		case ir.OpHalt:
			// terminal
		default:
			if end < n {
				b.succs = []int{blockAt[end]}
			} else {
				b.succs = []int{len(starts)}
			}
		}
		blocks[i] = b
	}
	return blocks
}

// reachableBlocks marks blocks reachable from the function entry.
func reachableBlocks(blocks []block) []bool {
	reach := make([]bool, len(blocks))
	if len(blocks) == 0 {
		return reach
	}
	work := []int{0}
	reach[0] = true
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blocks[bi].succs {
			if s < len(blocks) && !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	return reach
}

// FormatIssues renders a lint report, errors first.
func FormatIssues(issues []Issue) string {
	if len(issues) == 0 {
		return "verifier clean: no issues\n"
	}
	sorted := append([]Issue(nil), issues...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Sev > sorted[j].Sev })
	var w strings.Builder
	for _, is := range sorted {
		w.WriteString(is.String())
		w.WriteByte('\n')
	}
	return w.String()
}
