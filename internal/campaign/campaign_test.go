package campaign

import (
	"path/filepath"
	"testing"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
)

// magicModel has a decision outcome that undirected mutation essentially
// never reaches: equality against a magic int32 constant. With hints
// disabled, a shard can only cover eq-true by being handed the input —
// which makes corpus transport between shards observable.
func magicModel(t *testing.T) *codegen.Compiled {
	t.Helper()
	b := model.NewBuilder("Magic")
	u := b.Inport("u", model.Int32)
	eq := b.Rel("==", u, b.ConstT(model.Int32, 123456789))
	b.Outport("y", model.Int32, b.Switch(eq, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0)))
	c, err := codegen.Compile(b.Model())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func magicInput() []byte {
	data := make([]byte, 4)
	model.PutRaw(model.Int32, data, model.EncodeInt(model.Int32, 123456789))
	return data
}

// TestCrossPollination is the acceptance scenario: only shard 0 is seeded
// with the magic input; the test observes — while the campaign is still
// running, via the live Snapshot — that the input crossed into shard 1's
// corpus, then stops the campaign and checks the merged report.
func TestCrossPollination(t *testing.T) {
	c := magicModel(t)
	cm, err := New(c, Config{
		Shards: 2,
		Fuzz: fuzz.Options{
			Seed:    1,
			Budget:  time.Minute, // stopped explicitly below
			NoHints: true,
		},
		ShardSeeds: [][][]byte{{magicInput()}},
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var res *fuzz.Result
	go func() {
		defer close(done)
		res, err = cm.Run()
	}()

	// Poll the live status plane until the pollinated input lands in shard
	// 1's corpus — by construction this happens before the final merge.
	deadline := time.Now().Add(20 * time.Second)
	var snap Snapshot
	for {
		snap = cm.Snapshot()
		if snap.Shards[1].InjectedAdmitted >= 1 {
			break
		}
		if time.Now().After(deadline) {
			cm.Stop()
			<-done
			t.Fatalf("magic input never reached shard 1's corpus: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !snap.Running {
		t.Error("snapshot taken mid-campaign should report running")
	}
	if snap.Pollinated < 1 {
		t.Errorf("pollination counter should be positive, got %d", snap.Pollinated)
	}

	cm.Stop()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Error("explicitly stopped campaign should report Stopped")
	}
	if res.Report.Decision() < 100 {
		t.Errorf("merged report should cover the magic branch, got %.1f%%", res.Report.Decision())
	}
	// The transported input gave shard 1 coverage it cannot reach alone.
	final := cm.Snapshot()
	if final.Shards[1].Covered < c.Plan.NumBranches {
		t.Errorf("shard 1 should have full branch coverage via pollination: %d/%d",
			final.Shards[1].Covered, c.Plan.NumBranches)
	}
	if final.Running {
		t.Error("finished campaign should not report running")
	}
	if cm.Result() != res {
		t.Error("Result() should return the merged result")
	}
}

// TestWholeCampaignCheckpoint: every shard — not just shard 0 — writes a
// resumable checkpoint, and a second campaign restores all of them.
func TestWholeCampaignCheckpoint(t *testing.T) {
	c := magicModel(t)
	base := filepath.Join(t.TempDir(), "campaign.ckpt")
	cm, err := New(c, Config{
		Shards:     2,
		Fuzz:       fuzz.Options{Seed: 1, MaxExecs: 1500, NoHints: true, CheckpointPath: base},
		ShardSeeds: [][][]byte{{magicInput()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := cm.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res1.CheckpointErr != nil {
		t.Fatalf("checkpoint flush: %v", res1.CheckpointErr)
	}
	for shard := 0; shard < 2; shard++ {
		path := fuzz.ShardCheckpointPath(base, shard)
		cp, err := fuzz.LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("shard %d checkpoint: %v", shard, err)
		}
		if cp.Model != "Magic" || len(cp.Corpus) == 0 {
			t.Errorf("shard %d checkpoint: model %q, corpus %d", shard, cp.Model, len(cp.Corpus))
		}
	}

	// Resume the whole ensemble: the magic branch must survive the restart
	// even though only the replayed corpora carry it.
	cm2, err := New(c, Config{
		Shards: 2,
		Fuzz:   fuzz.Options{Seed: 99, MaxExecs: 1700, NoHints: true, ResumeFrom: base},
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := cm2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Report.Decision() < res1.Report.Decision() {
		t.Errorf("resumed campaign lost coverage: %.1f%% < %.1f%%",
			res2.Report.Decision(), res1.Report.Decision())
	}
	if res2.Execs < res1.Execs {
		t.Errorf("resumed execs went backwards: %d < %d", res2.Execs, res1.Execs)
	}
}

func TestCampaignRunTwiceRejected(t *testing.T) {
	c := magicModel(t)
	cm, err := New(c, Config{Fuzz: fuzz.Options{Seed: 1, MaxExecs: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Run(); err == nil {
		t.Error("second Run should be rejected")
	}
}
