package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
)

// Supervise tunes the per-shard supervisor. The zero value selects
// production defaults; chaos tests tighten the deadlines to milliseconds.
type Supervise struct {
	// StallTimeout is how long a shard may go without executing a single
	// input before the watchdog declares it wedged (default 30s).
	StallTimeout time.Duration
	// Poll is the watchdog's sampling interval (default StallTimeout/8,
	// clamped to [10ms, 1s]).
	Poll time.Duration
	// MaxStrikes is the failure count at which a shard is quarantined
	// instead of restarted (default 3).
	MaxStrikes int
	// BackoffBase and BackoffMax bound the exponential backoff (with up to
	// 50% jitter) between restarts (defaults 50ms and 2s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// KillGrace is how long a stalled shard gets to honour the stop request
	// before its goroutine is abandoned (default 2s).
	KillGrace time.Duration
	// Disabled runs shards bare: no panic capture, no watchdog — the
	// pre-supervision behavior, for callers that want failures loud.
	Disabled bool
}

// withDefaults fills unset supervision knobs.
func (s Supervise) withDefaults() Supervise {
	if s.StallTimeout <= 0 {
		s.StallTimeout = 30 * time.Second
	}
	if s.Poll <= 0 {
		s.Poll = s.StallTimeout / 8
	}
	if s.Poll < 10*time.Millisecond {
		s.Poll = 10 * time.Millisecond
	}
	if s.Poll > time.Second {
		s.Poll = time.Second
	}
	if s.MaxStrikes <= 0 {
		s.MaxStrikes = 3
	}
	if s.BackoffBase <= 0 {
		s.BackoffBase = 50 * time.Millisecond
	}
	if s.BackoffMax <= 0 {
		s.BackoffMax = 2 * time.Second
	}
	if s.KillGrace <= 0 {
		s.KillGrace = 2 * time.Second
	}
	return s
}

// Observer event kinds.
const (
	EventCheckpoint = "checkpoint"
	EventPollinate  = "pollinate"
	EventRestart    = "restart"
	EventQuarantine = "quarantine"
)

// ObserverEvent is a campaign lifecycle notification delivered to
// Config.Observer: shard checkpoint writes, cross-pollinations, supervisor
// restarts and quarantines. Events are delivered synchronously from campaign
// goroutines — observers must be fast and thread-safe. The daemon journals
// them.
type ObserverEvent struct {
	Kind  string
	Shard int
	Err   error // checkpoint outcome, restart/quarantine cause (may be nil)
}

// shardSlot owns one shard position in the ensemble: the currently live
// engine (replaced on restart) plus the supervisor's counters. The slot — not
// the engine — is the ensemble's stable identity: cross-pollination,
// snapshots and the final merge all go through it.
type shardSlot struct {
	idx  int
	opts fuzz.Options // rebuild template; ResumeFrom is rewritten per restart

	mu          sync.Mutex
	eng         *fuzz.Engine
	restarts    int
	quarantined bool
	lastErr     string
}

func (sl *shardSlot) engine() *fuzz.Engine {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.eng
}

func (sl *shardSlot) isQuarantined() bool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.quarantined
}

// superviseShard drives one shard to completion: panics are captured, a
// wedged engine is detected by the liveness watchdog and replaced (resuming
// from its last checkpoint), repeated failures back off exponentially with
// jitter, and after MaxStrikes failures the shard is quarantined — the
// ensemble continues degraded rather than hanging. Returns the shard's final
// result and recorder, or (nil, nil) if it never completed an attempt.
func (cm *Campaign) superviseShard(sl *shardSlot) (*fuzz.Result, *coverage.Recorder) {
	if cm.sup.Disabled {
		eng := sl.engine()
		return eng.Run(), eng.Recorder()
	}
	strikes := 0
	for {
		eng := sl.engine()
		res, failure := cm.runAttempt(eng)
		if failure == "" {
			return res, eng.Recorder()
		}
		strikes++
		sl.mu.Lock()
		sl.lastErr = failure
		sl.mu.Unlock()
		if strikes >= cm.sup.MaxStrikes {
			sl.mu.Lock()
			sl.quarantined = true
			sl.mu.Unlock()
			cm.degraded.Store(true)
			cm.observe(ObserverEvent{Kind: EventQuarantine, Shard: sl.idx, Err: errors.New(failure)})
			return nil, nil
		}
		if !cm.backoff(strikes) {
			return nil, nil // campaign stopping: no point restarting
		}
		neweng, err := cm.rebuildShard(sl)
		if err != nil {
			sl.mu.Lock()
			sl.quarantined = true
			sl.lastErr = err.Error()
			sl.mu.Unlock()
			cm.degraded.Store(true)
			cm.observe(ObserverEvent{Kind: EventQuarantine, Shard: sl.idx, Err: err})
			return nil, nil
		}
		sl.mu.Lock()
		sl.eng = neweng
		sl.restarts++
		sl.mu.Unlock()
		cm.observe(ObserverEvent{Kind: EventRestart, Shard: sl.idx, Err: errors.New(failure)})
	}
}

// backoff sleeps the exponential-with-jitter restart delay; false means the
// campaign was stopped while waiting.
func (cm *Campaign) backoff(strikes int) bool {
	d := cm.sup.BackoffBase << (strikes - 1)
	if d > cm.sup.BackoffMax || d <= 0 {
		d = cm.sup.BackoffMax
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	select {
	case <-cm.stop:
		return false
	case <-time.After(d):
		return true
	}
}

// rebuildShard constructs a replacement engine for a failed shard, resuming
// from its last flushed checkpoint when one is configured; if that
// checkpoint is unreadable the shard restarts fresh — losing local corpus
// state but keeping the ensemble alive.
func (cm *Campaign) rebuildShard(sl *shardSlot) (*fuzz.Engine, error) {
	o := sl.opts
	o.ResumeFrom = o.CheckpointPath
	eng, err := fuzz.NewEngine(cm.c, o)
	if err == nil {
		return eng, nil
	}
	o.ResumeFrom = ""
	eng, ferr := fuzz.NewEngine(cm.c, o)
	if ferr != nil {
		return nil, fmt.Errorf("campaign: shard %d rebuild: %w (fresh rebuild: %v)", sl.idx, err, ferr)
	}
	return eng, nil
}

// runAttempt runs one engine attempt under the supervisor: a goroutine with
// panic capture plus a liveness watchdog sampling the engine's exec counter.
// It returns the engine's result, or a non-empty failure description.
func (cm *Campaign) runAttempt(eng *fuzz.Engine) (*fuzz.Result, string) {
	type outcome struct {
		res      *fuzz.Result
		panicked bool
		msg      string
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- outcome{panicked: true, msg: fmt.Sprint(r)}
			}
		}()
		done <- outcome{res: eng.Run()}
	}()

	poll := time.NewTicker(cm.sup.Poll)
	defer poll.Stop()
	lastExecs := int64(-1)
	lastProgress := time.Now()
	for {
		select {
		case o := <-done:
			if o.panicked {
				return nil, "panic: " + o.msg
			}
			return o.res, ""
		case <-poll.C:
			if execs := eng.LiveStats().Execs; execs != lastExecs {
				lastExecs = execs
				lastProgress = time.Now()
				continue
			}
			if time.Since(lastProgress) < cm.sup.StallTimeout {
				continue
			}
			// Wedged: ask for a clean stop first — a shard that honours it
			// within the grace period flushed its final checkpoint, so the
			// restart resumes nearly where it stalled. One that does not is
			// abandoned: its goroutine cannot be killed, but disabling its
			// checkpoints ensures the zombie cannot later clobber the
			// replacement's state.
			eng.Stop()
			select {
			case o := <-done:
				if o.panicked {
					return nil, "panic during stall recovery: " + o.msg
				}
				return nil, fmt.Sprintf("no progress for %s (recovered on stop)", cm.sup.StallTimeout)
			case <-time.After(cm.sup.KillGrace):
				eng.DisableCheckpoint()
				return nil, fmt.Sprintf("no progress for %s (goroutine abandoned)", cm.sup.StallTimeout)
			}
		}
	}
}
