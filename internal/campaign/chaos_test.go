//go:build faultinject

package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/faultinject"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
)

// chaosEnv marks a re-exec of this test binary as the victim daemon for the
// kill-9 test; its value is the journal directory.
const chaosEnv = "CFTCG_CHAOS_SERVER"

// TestMain doubles the test binary as a sacrificial daemon: when chaosEnv is
// set the process serves a journaled campaign server until the parent test
// SIGKILLs it — a real kill-9 against a real process, not a simulation.
func TestMain(m *testing.M) {
	if dir := os.Getenv(chaosEnv); dir != "" {
		runChaosServer(dir)
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// buildMagic is magicModel without *testing.T, for the helper process.
func buildMagic() (*codegen.Compiled, error) {
	b := model.NewBuilder("Magic")
	u := b.Inport("u", model.Int32)
	eq := b.Rel("==", u, b.ConstT(model.Int32, 123456789))
	b.Outport("y", model.Int32, b.Switch(eq, b.ConstT(model.Int32, 1), b.ConstT(model.Int32, 0)))
	return codegen.Compile(b.Model())
}

func chaosResolver() (ModelResolver, error) {
	magic, err := buildMagic()
	if err != nil {
		return nil, err
	}
	return func(name string) (*codegen.Compiled, error) {
		if name == "Magic" {
			return magic, nil
		}
		return nil, fmt.Errorf("unknown model %q", name)
	}, nil
}

// runChaosServer is the victim: a journaled server on an ephemeral port,
// address published through a file, serving until killed.
func runChaosServer(dir string) {
	resolve, err := chaosResolver()
	if err != nil {
		log.Fatal(err)
	}
	srv, err := NewServerWithConfig(resolve, ServerConfig{Journal: dir})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	// Atomic publish so the parent never reads a half-written address.
	tmp := filepath.Join(dir, "addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		log.Fatal(err)
	}
	log.Fatal(http.Serve(ln, srv.Handler()))
}

// fastSupervise keeps chaos recoveries inside test timescales.
func fastSupervise() Supervise {
	return Supervise{
		StallTimeout: 80 * time.Millisecond,
		Poll:         10 * time.Millisecond,
		KillGrace:    30 * time.Millisecond,
		BackoffBase:  time.Millisecond,
		BackoffMax:   5 * time.Millisecond,
	}
}

// TestChaosKill9LosesNoAcceptedCampaign is the headline durability claim:
// SIGKILL a daemon with one running and one queued campaign; a restarted
// server must still know both, requeue both, resume the running one from its
// shard checkpoints, and complete them.
func TestChaosKill9LosesNoAcceptedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec chaos test skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), chaosEnv+"="+dir)
	var logs bytes.Buffer
	cmd.Stderr = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	addrFile := filepath.Join(dir, "addr")
	var addr string
	deadline := time.Now().Add(20 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = string(data)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never published its address; logs:\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	base := "http://" + addr

	submit := func(spec Spec) JobStatus {
		t.Helper()
		buf, _ := json.Marshal(spec)
		resp, err := http.Post(base+"/api/campaigns", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		var job JobStatus
		json.NewDecoder(resp.Body).Decode(&job)
		return job
	}
	// Job 1 occupies the single runner; job 2 waits in the queue.
	running := submit(Spec{Model: "Magic", Budget: "1m", CheckpointEvery: "5ms"})
	queued := submit(Spec{Model: "Magic", MaxExecs: 300})

	// Kill only after job 1 has verifiably checkpointed — the durability
	// claim is about accepted state, not about work with no checkpoint yet.
	for {
		resp, err := http.Get(fmt.Sprintf("%s/api/campaigns/%d", base, running.ID))
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State == StateRunning && st.Snapshot != nil && !st.Snapshot.OldestCheckpoint.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim campaign never checkpointed; logs:\n%s", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no goodbye
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart over the same journal, in-process this time.
	resolve, err := chaosResolver()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServerWithConfig(resolve, ServerConfig{Journal: dir})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if len(srv.Jobs()) != 2 {
		t.Fatalf("lost campaigns across kill-9: have %d, want 2", len(srv.Jobs()))
	}
	st := waitState(t, srv, running.ID, StateRunning)
	if !st.Requeued {
		t.Error("interrupted campaign should be marked requeued")
	}
	if st.Spec.Resume == "" {
		t.Error("interrupted campaign should resume from its checkpoint")
	}
	if err := srv.StopJob(running.ID); err != nil { // 1m budget: finish it now
		t.Fatal(err)
	}
	fin := waitState(t, srv, running.ID, StateDone)
	if fin.Report == nil {
		t.Error("resumed campaign produced no report")
	}
	if fin.Snapshot == nil || fin.Snapshot.Execs == 0 {
		t.Error("resumed campaign shows no work; checkpoint replay failed")
	}
	if q := waitState(t, srv, queued.ID, StateDone); q.Report == nil {
		t.Error("queued-at-kill campaign lost its report")
	}
	drain(t, srv)
}

// TestChaosHangingShardRestarted: a shard wedged by an injected delay is
// detected by the liveness watchdog, abandoned after the kill grace, and its
// replacement finishes the campaign — no hang, result intact.
func TestChaosHangingShardRestarted(t *testing.T) {
	defer faultinject.Reset()
	c := magicModel(t)
	// One iteration of shard 0 blocks far past the stall timeout; the sleep
	// is kept short enough that the abandoned goroutine exits during the
	// test run rather than lingering.
	faultinject.Set("fuzz.loop:shard0", faultinject.Failpoint{
		Kind: faultinject.KindDelay, Delay: 2 * time.Second, Times: 1,
	})
	cm, err := New(c, Config{
		Shards:    1,
		Fuzz:      fuzz.Options{Seed: 1, MaxExecs: 2000},
		Supervise: fastSupervise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cm.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := cm.Snapshot()
	if snap.Restarts < 1 {
		t.Errorf("hanging shard should have been restarted, snapshot: %+v", snap)
	}
	if snap.Degraded || snap.Quarantined != 0 {
		t.Errorf("recovered shard must not be quarantined: %+v", snap)
	}
	if res.Execs == 0 {
		t.Error("restarted shard did no work")
	}
	if !strings.Contains(snap.Shards[0].LastError, "no progress") {
		t.Errorf("stall cause not surfaced: %q", snap.Shards[0].LastError)
	}
}

// TestChaosPanickingShardQuarantinedDegraded: a shard that panics on every
// attempt strikes out, is quarantined, and the campaign completes degraded
// on the surviving shard — with the quarantine visible in the job status and
// the Prometheus metrics.
func TestChaosPanickingShardQuarantinedDegraded(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Set("fuzz.loop:shard1", faultinject.Failpoint{
		Kind: faultinject.KindPanic, Msg: "injected shard panic", P: 1,
	})
	srv, err := NewServerWithConfig(testResolver(t), ServerConfig{Supervise: fastSupervise()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	job, err := srv.Submit(Spec{Model: "Magic", Shards: 2, MaxExecs: 2000})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, srv, job.ID, StateDone)
	if !st.Degraded {
		t.Errorf("campaign with a quarantined shard must be degraded: %+v", st)
	}
	if st.Snapshot == nil || st.Snapshot.Quarantined != 1 {
		t.Fatalf("want exactly one quarantined shard: %+v", st.Snapshot)
	}
	if !st.Snapshot.Shards[1].Quarantined || !strings.Contains(st.Snapshot.Shards[1].LastError, "panic") {
		t.Errorf("shard 1 quarantine cause not surfaced: %+v", st.Snapshot.Shards[1])
	}
	if st.Report == nil {
		t.Error("degraded campaign must still produce the surviving shards' report")
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, resp)
	for _, want := range []string{
		fmt.Sprintf(`cftcg_campaign_quarantined_shards{campaign="%d",model="Magic"} 1`, job.ID),
		fmt.Sprintf(`cftcg_campaign_degraded{campaign="%d",model="Magic"} 1`, job.ID),
		fmt.Sprintf(`cftcg_campaign_shard_restarts_total{campaign="%d",model="Magic"} 2`, job.ID),
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	drain(t, srv)
}

// TestChaosCheckpointPanicNeverCorrupts: a panic injected into the
// checkpoint write path kills the shard mid-save; the supervisor restarts it
// from the last good checkpoint and the file stays loadable throughout — the
// write-to-temp/rename protocol holds even when the writer dies.
func TestChaosCheckpointPanicNeverCorrupts(t *testing.T) {
	defer faultinject.Reset()
	c := magicModel(t)
	ckpt := filepath.Join(t.TempDir(), "magic.ckpt")
	// Two good saves, then one fatal one.
	faultinject.Set("checkpoint.write", faultinject.Failpoint{
		Kind: faultinject.KindPanic, Msg: "die mid-checkpoint", After: 2, Times: 1,
	})
	cm, err := New(c, Config{
		Shards: 1,
		Fuzz: fuzz.Options{
			Seed: 1, MaxExecs: 200000,
			CheckpointPath: ckpt, CheckpointEvery: time.Millisecond,
		},
		Supervise: fastSupervise(),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cm.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := cm.Snapshot()
	if snap.Restarts < 1 {
		t.Errorf("checkpoint panic should have forced a restart: %+v", snap)
	}
	cp, err := fuzz.LoadCheckpoint(fuzz.ShardCheckpointPath(ckpt, 0))
	if err != nil {
		t.Fatalf("checkpoint corrupt after mid-save panic: %v", err)
	}
	if cp.Execs == 0 || res.Execs == 0 {
		t.Error("campaign or checkpoint recorded no work")
	}
}

// TestChaosJournalSyncFailureDegradesHealth: when the journal cannot fsync,
// the daemon keeps serving but /healthz flips to degraded with the sticky
// journal error — durability loss is loud, not silent.
func TestChaosJournalSyncFailureDegradesHealth(t *testing.T) {
	defer faultinject.Reset()
	srv, err := NewServerWithConfig(testResolver(t), ServerConfig{Journal: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("wal.sync", faultinject.Failpoint{
		Kind: faultinject.KindError, Msg: "disk on fire", Times: 1,
	})
	job, err := srv.Submit(Spec{Model: "Magic", MaxExecs: 200})
	if err != nil {
		t.Fatal(err) // the failed journal append must not reject the job
	}
	h := srv.Health()
	if h.Status != "degraded" || !strings.Contains(h.JournalError, "disk on fire") {
		t.Fatalf("journal failure should degrade health: %+v", h)
	}
	waitState(t, srv, job.ID, StateDone)
	drain(t, srv)
}
