package campaign

import (
	"encoding/json"
	"fmt"
	"time"

	"cftcg/internal/coverage"
	"cftcg/internal/mutate"
	"cftcg/internal/wal"
)

// The campaign journal makes the daemon's job table crash-durable: every
// job state transition is appended to a WAL (internal/wal) as one JSON
// record, and a restarted daemon replays the journal to reconstruct the
// table — finished campaigns reappear with their final report, interrupted
// ones (queued or running at the kill) are requeued and resume their shards
// from the per-shard checkpoints the journal directory also hosts.
//
// Event types. "snapshot" is the compaction record: a full job-table dump
// that resets the fold, written as the first record of a fresh WAL segment
// so older segments can be deleted.
const (
	evSubmitted    = "submitted"
	evStarted      = "started"
	evCheckpointed = "checkpointed"
	evPollinated   = "pollinated"
	evRestarted    = "restarted"
	evQuarantined  = "quarantined"
	evFinished     = "finished"
	evCanceled     = "canceled"
	evSnapshot     = "snapshot"
)

// journalEvent is the wire form of one journal record.
type journalEvent struct {
	Type string    `json:"type"`
	Job  int       `json:"job,omitempty"`
	Time time.Time `json:"time"`

	Spec  *Spec  `json:"spec,omitempty"`  // submitted
	Shard int    `json:"shard,omitempty"` // checkpointed/restarted/quarantined
	Error string `json:"error,omitempty"` // finished (failed) / checkpointed

	// finished
	State    string           `json:"state,omitempty"` // done | failed
	Stopped  bool             `json:"stopped,omitempty"`
	Degraded bool             `json:"degraded,omitempty"`
	Report   *coverage.Report `json:"report,omitempty"`
	Mutation *mutate.Summary  `json:"mutation,omitempty"`

	// snapshot (compaction)
	NextID int          `json:"nextID,omitempty"`
	Jobs   []journalJob `json:"jobs,omitempty"`
}

// journalJob is one job's replayable state: what the fold over the events
// yields, and what a snapshot record stores per job.
type journalJob struct {
	ID        int              `json:"id"`
	Spec      Spec             `json:"spec"`
	State     string           `json:"state"`
	Error     string           `json:"error,omitempty"`
	Stopped   bool             `json:"stopped,omitempty"`
	Degraded  bool             `json:"degraded,omitempty"`
	Report    *coverage.Report `json:"report,omitempty"`
	Mutation  *mutate.Summary  `json:"mutation,omitempty"`
	Submitted time.Time        `json:"submitted"`
	Started   time.Time        `json:"started,omitempty"`
	Finished  time.Time        `json:"finished,omitempty"`
}

// journal wraps the WAL with the event encoding. A nil *journal is valid and
// inert, so call sites need no journaling-enabled checks.
type journal struct {
	log *wal.Log
}

// openJournal opens (creating if needed) the journal WAL in dir.
func openJournal(dir string, segmentBytes int64) (*journal, error) {
	log, err := wal.Open(dir, wal.Options{SegmentBytes: segmentBytes})
	if err != nil {
		return nil, fmt.Errorf("campaign: journal: %w", err)
	}
	return &journal{log: log}, nil
}

// record appends one event. Append failures are not fatal to the campaign —
// the daemon keeps serving with degraded durability — but stay visible
// through err() and the health endpoint.
func (j *journal) record(ev journalEvent) {
	if j == nil {
		return
	}
	ev.Time = time.Now()
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	j.log.Append(data)
}

// err returns the journal's sticky append/fsync failure, if any.
func (j *journal) err() error {
	if j == nil {
		return nil
	}
	return j.log.Err()
}

func (j *journal) close() {
	if j != nil {
		j.log.Close()
	}
}

// replay folds the journal into the job table it describes plus the next
// free job ID. Unparseable records are skipped (forward compatibility);
// event order is last-wins per job, so duplicated transitions from a
// crash-requeue-crash sequence are idempotent.
func (j *journal) replay() ([]*journalJob, int, error) {
	var jobs []*journalJob
	byID := map[int]*journalJob{}
	nextID := 1
	get := func(id int) *journalJob {
		if jj, ok := byID[id]; ok {
			return jj
		}
		jj := &journalJob{ID: id, State: StateQueued}
		byID[id] = jj
		jobs = append(jobs, jj)
		return jj
	}
	err := j.log.Replay(func(rec []byte) error {
		var ev journalEvent
		if err := json.Unmarshal(rec, &ev); err != nil {
			return nil
		}
		if ev.Job >= nextID {
			nextID = ev.Job + 1
		}
		switch ev.Type {
		case evSnapshot:
			jobs = jobs[:0]
			byID = map[int]*journalJob{}
			for i := range ev.Jobs {
				jj := ev.Jobs[i]
				byID[jj.ID] = &jj
				jobs = append(jobs, &jj)
				if jj.ID >= nextID {
					nextID = jj.ID + 1
				}
			}
			if ev.NextID > nextID {
				nextID = ev.NextID
			}
		case evSubmitted:
			jj := get(ev.Job)
			jj.State = StateQueued
			jj.Submitted = ev.Time
			if ev.Spec != nil {
				jj.Spec = *ev.Spec
			}
		case evStarted:
			jj := get(ev.Job)
			jj.State = StateRunning
			jj.Started = ev.Time
		case evFinished:
			jj := get(ev.Job)
			jj.State = ev.State
			jj.Error = ev.Error
			jj.Stopped = ev.Stopped
			jj.Degraded = ev.Degraded
			jj.Report = ev.Report
			jj.Mutation = ev.Mutation
			jj.Finished = ev.Time
		case evCanceled:
			jj := get(ev.Job)
			jj.State = StateCanceled
			jj.Finished = ev.Time
		case evCheckpointed, evPollinated, evRestarted, evQuarantined:
			// Progress markers: they advance nextID and timestamps only.
		}
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: journal replay: %w", err)
	}
	return jobs, nextID, nil
}

// compact rewrites the journal as a single snapshot of the current job
// table, releasing every older segment.
func (j *journal) compact(jobs []journalJob, nextID int) error {
	if j == nil {
		return nil
	}
	data, err := json.Marshal(journalEvent{
		Type: evSnapshot, Time: time.Now(), NextID: nextID, Jobs: jobs,
	})
	if err != nil {
		return err
	}
	return j.log.Compact(data)
}

// segments reports the journal's current WAL segment count (the compaction
// trigger); 0 when journaling is off.
func (j *journal) segments() int {
	if j == nil {
		return 0
	}
	return j.log.Segments()
}
