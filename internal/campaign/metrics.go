package campaign

import (
	"fmt"
	"io"
	"time"
)

// writeMetrics renders the Prometheus text exposition format (version
// 0.0.4) by hand — a handful of gauges and counters does not justify a
// client library dependency. Campaign-level series are labelled with the
// job id and model; per-shard series add a shard label.
func (s *Server) writeMetrics(w io.Writer) {
	jobs := s.Jobs()
	states := map[string]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCanceled: 0,
	}
	statuses := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.status()
		states[statuses[i].State]++
	}

	fmt.Fprintln(w, "# HELP cftcgd_uptime_seconds Seconds since the daemon started.")
	fmt.Fprintln(w, "# TYPE cftcgd_uptime_seconds gauge")
	fmt.Fprintf(w, "cftcgd_uptime_seconds %g\n", time.Since(s.start).Seconds())

	fmt.Fprintln(w, "# HELP cftcgd_campaigns Campaigns known to the daemon, by state.")
	fmt.Fprintln(w, "# TYPE cftcgd_campaigns gauge")
	for _, state := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "cftcgd_campaigns{state=%q} %d\n", state, states[state])
	}

	fmt.Fprintln(w, "# HELP cftcgd_queue_depth Submissions waiting for a runner.")
	fmt.Fprintln(w, "# TYPE cftcgd_queue_depth gauge")
	fmt.Fprintf(w, "cftcgd_queue_depth %d\n", len(s.queue))
	fmt.Fprintln(w, "# HELP cftcgd_journal_segments WAL segments in the campaign journal (0 = journaling off).")
	fmt.Fprintln(w, "# TYPE cftcgd_journal_segments gauge")
	fmt.Fprintf(w, "cftcgd_journal_segments %d\n", s.journal.segments())
	fmt.Fprintln(w, "# HELP cftcgd_journal_failed 1 when the journal has a sticky append/fsync failure.")
	fmt.Fprintln(w, "# TYPE cftcgd_journal_failed gauge")
	jf := 0
	if s.journal.err() != nil {
		jf = 1
	}
	fmt.Fprintf(w, "cftcgd_journal_failed %d\n", jf)

	fmt.Fprintln(w, "# HELP cftcg_campaign_execs_total Fuzz-driver executions per campaign.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_execs_total counter")
	fmt.Fprintln(w, "# HELP cftcg_campaign_execs_per_second Aggregate campaign throughput.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_execs_per_second gauge")
	fmt.Fprintln(w, "# HELP cftcg_campaign_corpus_size Corpus entries summed over shards.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_corpus_size gauge")
	fmt.Fprintln(w, "# HELP cftcg_campaign_decision_coverage_percent Global decision coverage.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_decision_coverage_percent gauge")
	fmt.Fprintln(w, "# HELP cftcg_campaign_condition_coverage_percent Global condition coverage.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_condition_coverage_percent gauge")
	fmt.Fprintln(w, "# HELP cftcg_campaign_findings_total Distinct findings per campaign by kind.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_findings_total counter")
	fmt.Fprintln(w, "# HELP cftcg_campaign_pollinations_total Inputs broadcast between shards for globally-new coverage.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_pollinations_total counter")
	fmt.Fprintln(w, "# HELP cftcg_campaign_shard_execs_total Fuzz-driver executions per shard.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_shard_execs_total counter")
	fmt.Fprintln(w, "# HELP cftcg_campaign_shard_restarts_total Supervisor engine restarts per campaign.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_shard_restarts_total counter")
	fmt.Fprintln(w, "# HELP cftcg_campaign_quarantined_shards Shards the supervisor has given up on.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_quarantined_shards gauge")
	fmt.Fprintln(w, "# HELP cftcg_campaign_degraded 1 when the campaign runs with quarantined shards.")
	fmt.Fprintln(w, "# TYPE cftcg_campaign_degraded gauge")
	fmt.Fprintln(w, "# HELP cftcg_dead_objectives Branch slots statically proved unreachable, excluded from coverage denominators.")
	fmt.Fprintln(w, "# TYPE cftcg_dead_objectives gauge")
	fmt.Fprintln(w, "# HELP cftcg_field_mutations_total Targeted value mutations per input field, summed over shards.")
	fmt.Fprintln(w, "# TYPE cftcg_field_mutations_total counter")
	fmt.Fprintln(w, "# HELP cftcg_mutants_total Mutants generated for the post-campaign mutation-score pass.")
	fmt.Fprintln(w, "# TYPE cftcg_mutants_total gauge")
	fmt.Fprintln(w, "# HELP cftcg_mutants_killed Distinct mutants the generated suite killed.")
	fmt.Fprintln(w, "# TYPE cftcg_mutants_killed gauge")
	fmt.Fprintln(w, "# HELP cftcg_mutants_survived Mutants the generated suite failed to detect.")
	fmt.Fprintln(w, "# TYPE cftcg_mutants_survived gauge")
	fmt.Fprintln(w, "# HELP cftcg_mutants_equivalent Surviving mutants proven observably equivalent (unkillable), excluded from the score denominator.")
	fmt.Fprintln(w, "# TYPE cftcg_mutants_equivalent gauge")
	fmt.Fprintln(w, "# HELP cftcg_mutation_score Distinct kills over kills plus survivors.")
	fmt.Fprintln(w, "# TYPE cftcg_mutation_score gauge")

	for _, st := range statuses {
		if st.Snapshot == nil {
			continue
		}
		snap := st.Snapshot
		base := fmt.Sprintf("campaign=%q,model=%q", fmt.Sprint(st.ID), st.Model)
		fmt.Fprintf(w, "cftcg_campaign_execs_total{%s} %d\n", base, snap.Execs)
		fmt.Fprintf(w, "cftcg_campaign_execs_per_second{%s} %g\n", base, snap.ExecsPerSec)
		fmt.Fprintf(w, "cftcg_campaign_corpus_size{%s} %d\n", base, snap.Corpus)
		fmt.Fprintf(w, "cftcg_campaign_decision_coverage_percent{%s} %g\n", base, snap.Decision)
		fmt.Fprintf(w, "cftcg_campaign_condition_coverage_percent{%s} %g\n", base, snap.Condition)
		for _, kind := range findingKindNames {
			fmt.Fprintf(w, "cftcg_campaign_findings_total{%s,kind=%q} %d\n", base, kind, snap.Findings[kind])
		}
		fmt.Fprintf(w, "cftcg_campaign_pollinations_total{%s} %d\n", base, snap.Pollinated)
		for _, sh := range snap.Shards {
			fmt.Fprintf(w, "cftcg_campaign_shard_execs_total{%s,shard=\"%d\"} %d\n", base, sh.Shard, sh.Execs)
		}
		fmt.Fprintf(w, "cftcg_campaign_shard_restarts_total{%s} %d\n", base, snap.Restarts)
		fmt.Fprintf(w, "cftcg_campaign_quarantined_shards{%s} %d\n", base, snap.Quarantined)
		deg := 0
		if snap.Degraded {
			deg = 1
		}
		fmt.Fprintf(w, "cftcg_campaign_degraded{%s} %d\n", base, deg)
		fmt.Fprintf(w, "cftcg_dead_objectives{%s} %d\n", base, snap.DeadObjectives)
		for f, n := range snap.FieldHits {
			name := fmt.Sprintf("f%d", f)
			if f < len(snap.InputFields) {
				name = snap.InputFields[f]
			}
			fmt.Fprintf(w, "cftcg_field_mutations_total{%s,field=%q} %d\n", base, name, n)
		}
		if ms := st.Mutation; ms != nil {
			fmt.Fprintf(w, "cftcg_mutants_total{%s} %d\n", base, ms.Total)
			fmt.Fprintf(w, "cftcg_mutants_killed{%s} %d\n", base, ms.Killed)
			fmt.Fprintf(w, "cftcg_mutants_survived{%s} %d\n", base, ms.Survived)
			fmt.Fprintf(w, "cftcg_mutants_equivalent{%s} %d\n", base, ms.Equivalent)
			fmt.Fprintf(w, "cftcg_mutation_score{%s} %g\n", base, ms.Score)
		}
	}
}
