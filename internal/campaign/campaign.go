// Package campaign is the long-running service layer above the fuzzing
// engine: a Campaign manages N shard engines over one compiled model with
// live cross-pollination, whole-campaign checkpointing and per-shard
// supervision (panic capture, stall watchdog, restart-from-checkpoint,
// quarantine), and Server wraps campaigns in an HTTP control plane (queue,
// crash-durable WAL journal, JSON status, Prometheus-text metrics, corpus
// export/import, graceful drain).
//
// Cross-pollination fixes the main weakness of share-nothing parallel
// fuzzing: with independent shards a discovery only helps its finder until
// the end-of-run merge. Here every input that reaches *globally* new
// coverage — gated by a mutex-guarded campaign-wide coverage.Progress — is
// broadcast to the other shards' corpora while they run, the ensemble
// analogue of libFuzzer's fork-mode corpus exchange.
package campaign

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
	"cftcg/internal/mutate"
)

// Config describes a multi-shard campaign over one compiled model.
type Config struct {
	// Shards is the number of shard engines (defaults to 1).
	Shards int
	// Fuzz is the per-shard option template. Seeds are prime-spaced per
	// shard; CheckpointPath and ResumeFrom are rewritten to per-shard
	// suffixed files (fuzz.ShardCheckpointPath) so every shard — not just
	// shard 0 — checkpoints and resumes; Stop, OnNewCoverage, OnCheckpoint
	// and Label are owned by the campaign.
	Fuzz fuzz.Options
	// ShardSeeds optionally gives shard k additional seed inputs beyond
	// Fuzz.SeedInputs (which every shard receives). Shorter than Shards is
	// fine; extra entries are ignored.
	ShardSeeds [][][]byte
	// Supervise tunes the shard supervisor; the zero value means defaults.
	Supervise Supervise
	// ResumeLenient makes a missing or unreadable per-shard resume
	// checkpoint start that shard fresh instead of failing the campaign.
	// The daemon sets it for crash-requeued jobs, where the dead process
	// may have been killed before some shard ever checkpointed; explicit
	// user-requested resumes stay strict so typos surface.
	ResumeLenient bool
	// Observer, when set, receives lifecycle events (checkpoints,
	// pollinations, restarts, quarantines) synchronously from campaign
	// goroutines. The daemon uses it to journal shard progress.
	Observer func(ObserverEvent)
}

// Campaign runs one model across N shard engines with live corpus
// cross-pollination, each shard under a supervisor. Create with New, drive
// with Run (blocking), observe concurrently with Snapshot, stop with Stop.
type Campaign struct {
	c      *codegen.Compiled
	cfg    Config
	sup    Supervise
	shards []*shardSlot
	shared *coverage.SharedProgress

	stop     chan struct{}
	stopOnce sync.Once

	pollinated atomic.Int64 // inputs broadcast for globally-new coverage
	running    atomic.Bool
	degraded   atomic.Bool // at least one shard quarantined

	mu        sync.Mutex
	startedAt time.Time
	elapsed   time.Duration // frozen at Run completion
	result    *fuzz.Result
}

// New validates the configuration and builds the shard engines. The
// campaign does not start running until Run is called.
func New(c *codegen.Compiled, cfg Config) (*Campaign, error) {
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	cm := &Campaign{
		c:      c,
		cfg:    cfg,
		sup:    cfg.Supervise.withDefaults(),
		shared: coverage.NewShared(c.Plan),
		stop:   make(chan struct{}),
	}
	cm.shards = make([]*shardSlot, cfg.Shards)
	for w := 0; w < cfg.Shards; w++ {
		o := cfg.Fuzz
		o.Seed = cfg.Fuzz.Seed + int64(w)*7919 // distinct prime-spaced streams
		o.CheckpointPath = fuzz.ShardCheckpointPath(cfg.Fuzz.CheckpointPath, w)
		o.ResumeFrom = fuzz.ShardCheckpointPath(cfg.Fuzz.ResumeFrom, w)
		o.Stop = cm.stop
		o.Label = fmt.Sprintf("shard%d", w)
		if w < len(cfg.ShardSeeds) && len(cfg.ShardSeeds[w]) > 0 {
			o.SeedInputs = append(append([][]byte(nil), cfg.Fuzz.SeedInputs...), cfg.ShardSeeds[w]...)
		}
		shard := w
		o.OnNewCoverage = func(input []byte, seen []uint8) {
			cm.onNewCoverage(shard, input, seen)
		}
		o.OnCheckpoint = func(err error) {
			cm.observe(ObserverEvent{Kind: EventCheckpoint, Shard: shard, Err: err})
		}
		eng, err := fuzz.NewEngine(c, o)
		if err != nil && cfg.ResumeLenient && o.ResumeFrom != "" {
			o.ResumeFrom = ""
			eng, err = fuzz.NewEngine(c, o)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: shard %d: %w", w, err)
		}
		cm.shards[w] = &shardSlot{idx: w, opts: o, eng: eng}
	}
	return cm, nil
}

// observe delivers a lifecycle event to the configured observer, if any.
func (cm *Campaign) observe(ev ObserverEvent) {
	if cm.cfg.Observer != nil {
		cm.cfg.Observer(ev)
	}
}

// onNewCoverage is each shard's discovery callback (invoked from the
// shard's own goroutine). The shared progress tracker decides global
// novelty: a discovery that is new only locally — another shard got there
// first — is not rebroadcast, which both keeps the broadcast volume
// proportional to real frontier progress and prevents echo storms when a
// pollinated input is re-admitted by its receiver.
func (cm *Campaign) onNewCoverage(shard int, input []byte, seen []uint8) {
	if cm.shared.Absorb(seen) == 0 {
		return
	}
	cm.pollinated.Add(1)
	for _, sl := range cm.shards {
		if sl.idx != shard {
			sl.engine().Inject(input) // Inject copies; input is only valid during this call
		}
	}
	cm.observe(ObserverEvent{Kind: EventPollinate, Shard: shard})
}

// Run executes every shard concurrently under supervision and blocks until
// all finish, then merges the surviving shards' results exactly like
// fuzz.RunParallel (union coverage, deduplicated findings, ensemble
// timeline, minimized suite). Quarantined shards are excluded from the
// merge; only if every shard was quarantined does Run fail. Run may be
// called once.
func (cm *Campaign) Run() (*fuzz.Result, error) {
	cm.mu.Lock()
	if !cm.startedAt.IsZero() {
		cm.mu.Unlock()
		return nil, fmt.Errorf("campaign: Run called twice")
	}
	cm.startedAt = time.Now()
	cm.mu.Unlock()
	cm.running.Store(true)

	// Relay an external stop request (daemon drain) into the shards.
	if cm.cfg.Fuzz.Stop != nil {
		done := make(chan struct{})
		defer close(done)
		go func() {
			select {
			case <-cm.cfg.Fuzz.Stop:
				cm.Stop()
			case <-done:
			}
		}()
	}

	results := make([]*fuzz.Result, len(cm.shards))
	recs := make([]*coverage.Recorder, len(cm.shards))
	var wg sync.WaitGroup
	for _, sl := range cm.shards {
		wg.Add(1)
		go func(sl *shardSlot) {
			defer wg.Done()
			results[sl.idx], recs[sl.idx] = cm.superviseShard(sl)
		}(sl)
	}
	wg.Wait()
	cm.running.Store(false)

	// Quarantined (or stop-interrupted) shards yield nil; merge the rest.
	var mres []*fuzz.Result
	var mrecs []*coverage.Recorder
	for i := range results {
		if results[i] != nil {
			mres = append(mres, results[i])
			mrecs = append(mrecs, recs[i])
		}
	}
	cm.mu.Lock()
	cm.elapsed = time.Since(cm.startedAt)
	cm.mu.Unlock()
	if len(mres) == 0 {
		return nil, fmt.Errorf("campaign: all %d shards quarantined", len(cm.shards))
	}
	out := fuzz.MergeResults(cm.c, mrecs, mres)
	out.Suite.Cases = fuzz.Minimize(cm.c, out.Suite.Cases)
	if cm.degraded.Load() {
		out.Stopped = true // partial ensemble: flag the result as incomplete
	}

	cm.mu.Lock()
	cm.result = out
	cm.mu.Unlock()
	return out, nil
}

// Stop asks every shard to stop cleanly: in-flight executions finish, final
// per-shard checkpoints are flushed, and Run returns the merged partial
// result. Safe to call from any goroutine, any number of times.
func (cm *Campaign) Stop() {
	cm.stopOnce.Do(func() { close(cm.stop) })
}

// Degraded reports whether any shard has been quarantined — the campaign is
// still producing a result, but from a partial ensemble.
func (cm *Campaign) Degraded() bool { return cm.degraded.Load() }

// Inject broadcasts an external input (corpus import) to every shard; each
// shard's own admission policy decides whether it enters that corpus.
func (cm *Campaign) Inject(data []byte) {
	for _, sl := range cm.shards {
		sl.engine().Inject(data)
	}
}

// CorpusExport returns copies of every shard's coverage-carrying inputs —
// a seedable corpus snapshot, valid while the campaign runs and after.
func (cm *Campaign) CorpusExport() [][]byte {
	var out [][]byte
	for _, sl := range cm.shards {
		out = append(out, sl.engine().Cases()...)
	}
	return out
}

// Result returns the merged result once Run has completed (nil before).
func (cm *Campaign) Result() *fuzz.Result {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return cm.result
}

// ShardStatus is one shard's live counters in a campaign snapshot.
type ShardStatus struct {
	Shard int `json:"shard"`
	fuzz.LiveStats
	// Restarts counts supervisor-driven engine replacements; Quarantined
	// marks a shard the supervisor gave up on (LastError says why).
	Restarts    int    `json:"restarts,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	LastError   string `json:"lastError,omitempty"`
}

// Snapshot is a point-in-time view of a campaign, safe to take from any
// goroutine while the shards run — the payload of the daemon's status API.
type Snapshot struct {
	Model  string        `json:"model"`
	Shards []ShardStatus `json:"shards"`

	Execs       int64   `json:"execs"`
	Steps       int64   `json:"steps"`
	ExecsPerSec float64 `json:"execsPerSec"`
	Corpus      int     `json:"corpus"`
	Cases       int     `json:"cases"`

	// Global (union) coverage as tracked by the cross-pollination gate.
	Decision  float64 `json:"decision"`
	Condition float64 `json:"condition"`
	Covered   int     `json:"covered"`

	// Findings by kind, summed over shards (pre-dedup across shards; the
	// merged Result dedups by site).
	Findings map[string]int `json:"findings,omitempty"`

	// Pollinated counts inputs broadcast for globally-new coverage;
	// Received counts broadcasts that were admitted into some other
	// shard's corpus.
	Pollinated int64 `json:"pollinated"`
	Received   int64 `json:"received"`

	// DeadObjectives counts branch slots the static analyzer proved
	// unreachable; they are excluded from the coverage denominators above.
	DeadObjectives int `json:"deadObjectives"`
	// InputFields names the model's root inports, indexing FieldHits.
	InputFields []string `json:"inputFields,omitempty"`
	// FieldHits counts targeted value mutations per input field summed
	// over shards — the observable footprint of influence-directed
	// mutation.
	FieldHits []int64 `json:"fieldHits,omitempty"`

	// Supervision: total engine restarts, quarantined shard count, whether
	// the ensemble is running degraded, and the oldest successful shard
	// checkpoint (zero when none has been written) — the staleness bound on
	// what a crash-restart would lose.
	Restarts         int       `json:"restarts,omitempty"`
	Quarantined      int       `json:"quarantined,omitempty"`
	Degraded         bool      `json:"degraded,omitempty"`
	OldestCheckpoint time.Time `json:"oldestCheckpoint,omitempty"`

	Running bool          `json:"running"`
	Elapsed time.Duration `json:"elapsed"`

	// Mutation is the post-campaign mutation-score summary, populated on
	// the final snapshot of daemon jobs submitted with mutate: true (nil
	// while fuzzing or when mutation scoring is off).
	Mutation *mutate.Summary `json:"mutation,omitempty"`
}

// findingKindNames mirrors fuzz.FindingKind.String for by-kind counters.
var findingKindNames = [...]string{"crash", "hang", "numeric-anomaly"}

// Snapshot assembles the campaign's live status from every shard's
// thread-safe counters and the shared coverage view.
func (cm *Campaign) Snapshot() Snapshot {
	s := Snapshot{
		Model:    cm.c.Prog.Name,
		Shards:   make([]ShardStatus, len(cm.shards)),
		Findings: map[string]int{},
		Running:  cm.running.Load(),
		Degraded: cm.degraded.Load(),
	}
	s.DeadObjectives = cm.c.Plan.DeadCount()
	for _, f := range cm.c.Prog.In {
		s.InputFields = append(s.InputFields, f.Name)
	}
	s.FieldHits = make([]int64, len(cm.c.Prog.In))
	for i, sl := range cm.shards {
		sl.mu.Lock()
		eng := sl.eng
		st := ShardStatus{
			Shard:       i,
			Restarts:    sl.restarts,
			Quarantined: sl.quarantined,
			LastError:   sl.lastErr,
		}
		sl.mu.Unlock()
		ls := eng.LiveStats()
		st.LiveStats = ls
		s.Shards[i] = st
		s.Restarts += st.Restarts
		if st.Quarantined {
			s.Quarantined++
		} else if !ls.LastCheckpoint.IsZero() &&
			(s.OldestCheckpoint.IsZero() || ls.LastCheckpoint.Before(s.OldestCheckpoint)) {
			s.OldestCheckpoint = ls.LastCheckpoint
		}
		s.Execs += ls.Execs
		s.Steps += ls.Steps
		s.Corpus += ls.Corpus
		s.Cases += ls.Cases
		s.Received += ls.InjectedAdmitted
		for f, n := range ls.FieldHits {
			if f < len(s.FieldHits) {
				s.FieldHits[f] += n
			}
		}
		for k, n := range ls.FindingsByKind {
			if n > 0 && k < len(findingKindNames) {
				s.Findings[findingKindNames[k]] += n
			}
		}
	}
	s.Decision = cm.shared.Decision()
	s.Condition = cm.shared.Condition()
	s.Covered = cm.shared.Covered()
	s.Pollinated = cm.pollinated.Load()

	cm.mu.Lock()
	switch {
	case cm.startedAt.IsZero():
		// queued: zero elapsed
	case cm.result != nil:
		s.Elapsed = cm.elapsed
	default:
		s.Elapsed = time.Since(cm.startedAt)
	}
	cm.mu.Unlock()
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.ExecsPerSec = float64(s.Execs) / sec
	}
	return s
}
