package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cftcg/internal/codegen"
)

// testResolver serves builder-made models by name.
func testResolver(t *testing.T) ModelResolver {
	t.Helper()
	magic := magicModel(t)
	return func(name string) (*codegen.Compiled, error) {
		if name == "Magic" {
			return magic, nil
		}
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

func postJSON(t *testing.T, ts *httptest.Server, path string, body, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	}
	return resp.StatusCode
}

// TestServerLiveStatusAndMetrics drives the full service loop over HTTP:
// submit, watch the live snapshot and /metrics while the campaign runs,
// inject a corpus, stop, export the corpus, drain.
func TestServerLiveStatusAndMetrics(t *testing.T) {
	srv := NewServer(testResolver(t), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Liveness.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.Status, err)
	}
	resp.Body.Close()

	// Submit a long-budget campaign (stopped explicitly below).
	var job JobStatus
	code := postJSON(t, ts, "/api/campaigns",
		Spec{Model: "Magic", Shards: 2, Budget: "1m", Seed: 3, Analyze: true, Directed: true}, &job)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if job.ID == 0 || job.Model != "Magic" {
		t.Fatalf("submit: bad job %+v", job)
	}

	// Poll the status API until the campaign is demonstrably running and
	// producing work — a live snapshot served mid-campaign.
	idPath := fmt.Sprintf("/api/campaigns/%d", job.ID)
	deadline := time.Now().Add(20 * time.Second)
	var live JobStatus
	for {
		getJSON(t, ts, idPath, &live)
		if live.State == StateRunning && live.Snapshot != nil && live.Snapshot.Execs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never reported live progress: %+v", live)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !live.Snapshot.Running || len(live.Snapshot.Shards) != 2 {
		t.Fatalf("live snapshot malformed: %+v", live.Snapshot)
	}

	// The list endpoint serves the same live view.
	var all []JobStatus
	getJSON(t, ts, "/api/campaigns", &all)
	if len(all) != 1 || all[0].ID != job.ID || all[0].Snapshot == nil {
		t.Fatalf("list: %+v", all)
	}

	// /metrics must expose the running campaign.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := readAll(t, mresp)
	for _, want := range []string{
		`cftcgd_campaigns{state="running"} 1`,
		fmt.Sprintf(`cftcg_campaign_execs_total{campaign="%d",model="Magic"}`, job.ID),
		"cftcg_campaign_decision_coverage_percent",
		fmt.Sprintf(`cftcg_campaign_shard_execs_total{campaign="%d",model="Magic",shard="1"}`, job.ID),
		fmt.Sprintf(`cftcg_dead_objectives{campaign="%d",model="Magic"} 0`, job.ID),
		fmt.Sprintf(`cftcg_field_mutations_total{campaign="%d",model="Magic",field="u"}`, job.ID),
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q in:\n%s", want, metrics)
		}
	}

	// Corpus import into the running campaign: the magic input, which the
	// shards (hints enabled here, but equality on a rare constant) may not
	// have found; the endpoint must accept and inject it.
	code = postJSON(t, ts, idPath+"/corpus", corpusPayload{Cases: [][]byte{magicInput()}}, nil)
	if code != http.StatusOK {
		t.Fatalf("corpus import: status %d", code)
	}

	// Stop and wait for completion.
	if code := postJSON(t, ts, idPath+"/stop", nil, nil); code != http.StatusOK {
		t.Fatalf("stop: status %d", code)
	}
	for {
		getJSON(t, ts, idPath, &live)
		if live.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never finished after stop: %+v", live)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !live.Stopped || live.Report == nil || live.Snapshot == nil {
		t.Fatalf("final status incomplete: %+v", live)
	}

	// Export the corpus of the finished campaign.
	var corpus corpusPayload
	getJSON(t, ts, idPath+"/corpus", &corpus)
	if len(corpus.Cases) == 0 {
		t.Error("exported corpus empty")
	}

	// Importing into a finished campaign conflicts.
	if code := postJSON(t, ts, idPath+"/corpus", corpusPayload{Cases: [][]byte{{1}}}, nil); code != http.StatusConflict {
		t.Errorf("import into finished campaign: want 409, got %d", code)
	}

	drain(t, srv)
}

func TestServerSubmissionErrors(t *testing.T) {
	srv := NewServer(testResolver(t), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code := postJSON(t, ts, "/api/campaigns", Spec{}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("missing model: want 503, got %d", code)
	}
	if code := postJSON(t, ts, "/api/campaigns", Spec{Model: "Magic", Mode: "bogus"}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("bad mode: want 503, got %d", code)
	}

	// Unknown model is accepted (resolution happens on the runner) and the
	// job fails observably.
	var job JobStatus
	if code := postJSON(t, ts, "/api/campaigns", Spec{Model: "NoSuch", MaxExecs: 10}, &job); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts, fmt.Sprintf("/api/campaigns/%d", job.ID), &job)
		if job.State == StateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never failed: %+v", job)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if job.Error == "" {
		t.Error("failed job should carry an error")
	}

	var missing map[string]string
	resp, err := ts.Client().Get(ts.URL + "/api/campaigns/999")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: want 404, got %d", resp.StatusCode)
	}
	json.NewDecoder(resp.Body).Decode(&missing)

	drain(t, srv)

	// Draining server refuses submissions.
	if code := postJSON(t, ts, "/api/campaigns", Spec{Model: "Magic", MaxExecs: 10}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: want 503, got %d", code)
	}
}

// TestServerDrainStopsRunningCampaign: SIGTERM path — a running campaign is
// stopped through its shards' stop channels and the drain completes.
func TestServerDrainStopsRunningCampaign(t *testing.T) {
	srv := NewServer(testResolver(t), 1)
	job, err := srv.Submit(Spec{Model: "Magic", Shards: 2, Budget: "1m"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if job.status().State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", job.status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	drain(t, srv)
	st := job.status()
	if st.State != StateDone || !st.Stopped {
		t.Errorf("drained campaign should finish stopped, got %+v", st)
	}
}

func drain(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestBackendSpecAndForce: an unknown backend name is rejected at submit
// (and, for ForceBackend, at server construction); -backend promotes every
// submission's spec before it is journaled, like ForceOptimize.
func TestBackendSpecAndForce(t *testing.T) {
	if _, err := NewServerWithConfig(testResolver(t), ServerConfig{ForceBackend: "bogus"}); err == nil {
		t.Fatal("ForceBackend bogus: want a startup error")
	}

	plain := NewServer(testResolver(t), 1)
	if _, err := plain.Submit(Spec{Model: "Magic", MaxExecs: 50, Backend: "bogus"}); err == nil {
		t.Error("submit with unknown backend: want an error")
	}
	drain(t, plain)

	srv, err := NewServerWithConfig(testResolver(t), ServerConfig{Runners: 1, ForceBackend: "threaded"})
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(Spec{Model: "Magic", MaxExecs: 200})
	if err != nil {
		t.Fatal(err)
	}
	if job.Spec.Backend != "threaded" {
		t.Errorf("ForceBackend not promoted onto the spec: %q", job.Spec.Backend)
	}
	deadline := time.Now().Add(10 * time.Second)
	for job.status().State != StateDone {
		if time.Now().After(deadline) {
			t.Fatalf("campaign on the threaded backend did not finish: %+v", job.status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	drain(t, srv)
}
