package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"cftcg/internal/analysis"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
	"cftcg/internal/mutate"
	"cftcg/internal/opt"
	"cftcg/internal/vm"
)

// ModelResolver turns a submitted model name into a compiled program. The
// daemon binds this to the built-in benchmarks plus on-disk .slx containers;
// tests bind it to builder-made models.
type ModelResolver func(name string) (*codegen.Compiled, error)

// Spec is the JSON body of a campaign submission.
type Spec struct {
	Model     string `json:"model"`               // resolver name (benchmark or server-side path)
	Shards    int    `json:"shards,omitempty"`    // default 1
	Budget    string `json:"budget,omitempty"`    // Go duration, e.g. "30s" (default 10s if no execs)
	MaxExecs  int64  `json:"execs,omitempty"`     // execution budget (0 = budget only)
	Seed      int64  `json:"seed,omitempty"`      // default 1
	Mode      string `json:"mode,omitempty"`      // cftcg | fuzz-only | no-iterdiff
	MaxTuples int    `json:"maxTuples,omitempty"` // input length cap in tuples
	Fuel      int64  `json:"fuel,omitempty"`      // per-step instruction budget
	// Checkpoint enables per-shard crash-safe checkpoints under this
	// server-side base path; Resume restores them on a later submission.
	// When the server runs with a journal, an empty Checkpoint is assigned
	// automatically under the journal directory so a daemon crash-restart
	// can resume the shards without caller configuration.
	Checkpoint string `json:"checkpoint,omitempty"`
	Resume     string `json:"resume,omitempty"`
	// CheckpointEvery overrides the periodic checkpoint interval (Go
	// duration; engine default 30s).
	CheckpointEvery string `json:"checkpointEvery,omitempty"`
	// Analyze runs the static dead-objective analysis before fuzzing so
	// unreachable branch slots drop out of the coverage denominators.
	Analyze bool `json:"analyze,omitempty"`
	// Optimize runs the translation-validated IR optimization pipeline
	// before fuzzing, so the shards execute the optimized program. The
	// validator guarantees identical outputs and probe streams.
	Optimize bool `json:"optimize,omitempty"`
	// Directed biases mutation toward input fields that influence the
	// still-unsatisfied objectives (implies nothing in fuzz-only mode).
	Directed bool `json:"directed,omitempty"`
	// Backend selects the VM execution backend for every shard: "switch"
	// (default) or "threaded". The backends are differentially proven
	// observably identical, so the choice affects throughput only.
	Backend string `json:"backend,omitempty"`
	// Mutate scores the generated suite against IR-level mutants once the
	// campaign finishes; the summary lands on the final snapshot, the jobs
	// API and the cftcg_mutants_* metrics. (Chart-level operators need the
	// source model and are skipped — the daemon holds only compiled form.)
	Mutate bool `json:"mutate,omitempty"`
	// MutantBudget caps the mutant pool for the scoring pass (default 100).
	MutantBudget int `json:"mutantBudget,omitempty"`
}

// options translates the wire spec into engine options.
func (sp *Spec) options() (fuzz.Options, error) {
	mode, err := fuzz.ParseMode(sp.Mode)
	if err != nil {
		return fuzz.Options{}, err
	}
	backend, err := vm.ParseBackend(sp.Backend)
	if err != nil {
		return fuzz.Options{}, err
	}
	opts := fuzz.Options{
		Backend:        backend,
		Seed:           sp.Seed,
		Mode:           mode,
		MaxExecs:       sp.MaxExecs,
		MaxTuples:      sp.MaxTuples,
		Fuel:           sp.Fuel,
		CheckpointPath: sp.Checkpoint,
		ResumeFrom:     sp.Resume,
		Directed:       sp.Directed,
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if sp.Budget != "" {
		d, err := time.ParseDuration(sp.Budget)
		if err != nil {
			return fuzz.Options{}, fmt.Errorf("bad budget: %w", err)
		}
		opts.Budget = d
	}
	if sp.CheckpointEvery != "" {
		d, err := time.ParseDuration(sp.CheckpointEvery)
		if err != nil {
			return fuzz.Options{}, fmt.Errorf("bad checkpointEvery: %w", err)
		}
		opts.CheckpointEvery = d
	}
	if opts.Budget == 0 && opts.MaxExecs == 0 {
		opts.Budget = 10 * time.Second
	}
	return opts, nil
}

// Job states. A job moves queued → running → done|failed; a queued job may
// be canceled (drain or explicit stop) without ever running.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// ErrOverloaded is returned by Submit when the queue is at capacity; the
// HTTP layer maps it to 503 so load balancers retry elsewhere.
var ErrOverloaded = errors.New("campaign: queue full")

// Job is one queued or executed campaign.
type Job struct {
	ID        int
	Spec      Spec
	Submitted time.Time

	requeued bool // recovered from the journal after a daemon crash

	mu       sync.Mutex
	state    string
	campaign *Campaign
	started  time.Time
	finished time.Time
	err      string
	stopped  bool // finished on an external stop rather than budget
	degraded bool // finished with at least one quarantined shard
	report   *coverage.Report
	final    *Snapshot
	mutation *mutate.Summary
	corpus   [][]byte // export snapshot once done
}

// JobStatus is the wire rendering of a job for the status API.
type JobStatus struct {
	ID        int              `json:"id"`
	Model     string           `json:"model"`
	State     string           `json:"state"`
	Spec      Spec             `json:"spec"`
	Submitted time.Time        `json:"submitted"`
	Started   *time.Time       `json:"started,omitempty"`
	Finished  *time.Time       `json:"finished,omitempty"`
	Stopped   bool             `json:"stopped,omitempty"`
	Degraded  bool             `json:"degraded,omitempty"`
	Requeued  bool             `json:"requeued,omitempty"`
	Error     string           `json:"error,omitempty"`
	Snapshot  *Snapshot        `json:"snapshot,omitempty"`
	Report    *coverage.Report `json:"report,omitempty"`
	Mutation  *mutate.Summary  `json:"mutation,omitempty"`
}

func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Model:     j.Spec.Model,
		State:     j.state,
		Spec:      j.Spec,
		Submitted: j.Submitted,
		Stopped:   j.stopped,
		Degraded:  j.degraded,
		Requeued:  j.requeued,
		Error:     j.err,
		Report:    j.report,
		Mutation:  j.mutation,
	}
	if j.campaign != nil && j.campaign.Degraded() {
		st.Degraded = true
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	switch {
	case j.final != nil:
		st.Snapshot = j.final
	case j.campaign != nil:
		snap := j.campaign.Snapshot()
		st.Snapshot = &snap
	}
	return st
}

// ServerConfig tunes the campaign server. The zero value (plus a resolver)
// is a working in-memory server; set Journal for crash durability.
type ServerConfig struct {
	// Runners is the number of concurrent campaign runners (default 1).
	Runners int
	// MaxQueue bounds the submission queue; submissions beyond it are shed
	// with ErrOverloaded/503 (default 128).
	MaxQueue int
	// MaxImportBytes caps a corpus-import request body (default 32 MiB).
	MaxImportBytes int64
	// Journal, when non-empty, is a directory holding the crash-durable
	// job journal (a WAL) plus auto-assigned per-job checkpoint files. On
	// start the journal is replayed: finished campaigns reappear in the
	// API, interrupted ones are requeued and resume from their shards'
	// checkpoints.
	Journal string
	// JournalSegmentBytes overrides the WAL segment size (testing).
	JournalSegmentBytes int64
	// CompactSegments triggers journal compaction when the WAL grows past
	// this many segments (default 4).
	CompactSegments int
	// Supervise tunes shard supervision for every campaign this server runs.
	Supervise Supervise
	// ForceOptimize turns on Spec.Optimize for every submission (the
	// cftcgd -opt flag): each campaign fuzzes the translation-validated
	// optimized program regardless of what the client asked for.
	ForceOptimize bool
	// ForceBackend, when non-empty, overrides Spec.Backend for every
	// submission (the cftcgd -backend flag): all campaigns execute on this
	// VM backend regardless of what the client asked for.
	ForceBackend string
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Runners < 1 {
		c.Runners = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.MaxImportBytes <= 0 {
		c.MaxImportBytes = 32 << 20
	}
	if c.CompactSegments <= 0 {
		c.CompactSegments = 4
	}
	return c
}

// Server is the campaign service: a submission queue, a bounded pool of
// campaign runners, an optional crash-durable journal, and the HTTP
// status/metrics plane. Everything is stdlib net/http — the daemon stays
// dependency-free.
type Server struct {
	cfg     ServerConfig
	resolve ModelResolver
	journal *journal
	queue   chan *Job
	quit    chan struct{}
	wg      sync.WaitGroup
	start   time.Time

	mu       sync.Mutex
	jobs     []*Job
	byID     map[int]*Job
	nextID   int
	draining bool
}

// NewServer builds a campaign server with default configuration running up
// to `runners` campaigns concurrently (each campaign itself fans out over
// its shards). Call Drain to shut it down.
func NewServer(resolve ModelResolver, runners int) *Server {
	s, err := NewServerWithConfig(resolve, ServerConfig{Runners: runners})
	if err != nil {
		// Unreachable without a journal (the only fallible part); keep the
		// historical infallible signature for the common case.
		panic(err)
	}
	return s
}

// NewServerWithConfig builds a campaign server. With cfg.Journal set, the
// journal is replayed first: completed jobs are restored read-only and jobs
// that were queued or running when the previous process died are requeued,
// resuming their shards from the per-shard checkpoint files.
func NewServerWithConfig(resolve ModelResolver, cfg ServerConfig) (*Server, error) {
	cfg = cfg.withDefaults()
	if _, err := vm.ParseBackend(cfg.ForceBackend); err != nil {
		return nil, err // fail at startup, not on every submission
	}
	s := &Server{
		cfg:     cfg,
		resolve: resolve,
		quit:    make(chan struct{}),
		start:   time.Now(),
		byID:    map[int]*Job{},
		nextID:  1,
	}
	var requeue []*Job
	if cfg.Journal != "" {
		jnl, err := openJournal(cfg.Journal, cfg.JournalSegmentBytes)
		if err != nil {
			return nil, err
		}
		s.journal = jnl
		replayed, nextID, err := jnl.replay()
		if err != nil {
			jnl.close()
			return nil, err
		}
		s.nextID = nextID
		for _, jj := range replayed {
			job := restoreJob(jj)
			s.jobs = append(s.jobs, job)
			s.byID[job.ID] = job
			if job.state == StateQueued {
				s.assignCheckpoint(job)
				if job.requeued && job.Spec.Checkpoint != "" {
					// Resume from whatever the dead process last flushed.
					job.Spec.Resume = job.Spec.Checkpoint
				}
				requeue = append(requeue, job)
			}
		}
	}
	// Recovered jobs must all fit regardless of the shed threshold — they
	// were accepted once already.
	s.queue = make(chan *Job, cfg.MaxQueue+len(requeue))
	for _, job := range requeue {
		s.queue <- job
	}
	for i := 0; i < cfg.Runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s, nil
}

// restoreJob rebuilds a Job from its replayed journal state. Jobs that were
// queued or running when the previous daemon died come back queued (and
// marked requeued); finished ones keep their terminal state and report.
func restoreJob(jj *journalJob) *Job {
	job := &Job{
		ID:        jj.ID,
		Spec:      jj.Spec,
		Submitted: jj.Submitted,
		state:     jj.State,
		started:   jj.Started,
		finished:  jj.Finished,
		err:       jj.Error,
		stopped:   jj.Stopped,
		degraded:  jj.Degraded,
		report:    jj.Report,
		mutation:  jj.Mutation,
	}
	if job.state == StateQueued || job.state == StateRunning {
		job.requeued = job.state == StateRunning || !job.started.IsZero()
		job.state = StateQueued
		job.started = time.Time{}
	}
	return job
}

// assignCheckpoint gives a journaled job a server-side checkpoint base path
// when the submission did not name one, so crash-restart can always resume.
func (s *Server) assignCheckpoint(job *Job) {
	if s.journal == nil || job.Spec.Checkpoint != "" {
		return
	}
	job.Spec.Checkpoint = filepath.Join(s.cfg.Journal, fmt.Sprintf("job-%d.ckpt", job.ID))
}

// runner consumes the queue until drain.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob executes one campaign, journals its transitions, and records its
// outcome on the job.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // canceled while queued
		job.mu.Unlock()
		return
	}
	job.mu.Unlock()

	fail := func(err error) {
		job.mu.Lock()
		job.state = StateFailed
		job.err = err.Error()
		job.finished = time.Now()
		job.mu.Unlock()
		s.journal.record(journalEvent{Type: evFinished, Job: job.ID, State: StateFailed, Error: err.Error()})
		s.maybeCompact()
	}
	compiled, err := s.resolve(job.Spec.Model)
	if err != nil {
		fail(fmt.Errorf("resolve model: %w", err))
		return
	}
	if job.Spec.Analyze {
		// The resolver compiles per call, so marking this job's plan does
		// not leak dead flags into other submissions of the same model.
		analysis.MarkDead(compiled.Prog, compiled.Plan)
	}
	if job.Spec.Optimize {
		// Optimize once here rather than per shard: every shard then runs
		// the same validated program, and the mutation-scoring pass below
		// derives its mutants from the code that actually fuzzed.
		if _, err := compiled.Optimize(opt.Config{Seed: job.Spec.Seed}); err != nil {
			fail(fmt.Errorf("optimize: %w", err))
			return
		}
	}
	opts, err := job.Spec.options()
	if err != nil {
		fail(err)
		return
	}
	cm, err := New(compiled, Config{
		Shards:        job.Spec.Shards,
		Fuzz:          opts,
		Supervise:     s.cfg.Supervise,
		ResumeLenient: job.requeued,
		Observer:      s.observerFor(job.ID),
	})
	if err != nil {
		fail(err)
		return
	}

	job.mu.Lock()
	if job.state != StateQueued { // canceled between dequeue and build
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.campaign = cm
	job.started = time.Now()
	job.mu.Unlock()
	s.journal.record(journalEvent{Type: evStarted, Job: job.ID})

	res, err := cm.Run()
	if err != nil {
		job.mu.Lock()
		job.finished = time.Now()
		job.state = StateFailed
		job.err = err.Error()
		job.mu.Unlock()
		s.journal.record(journalEvent{Type: evFinished, Job: job.ID, State: StateFailed, Error: err.Error()})
		s.maybeCompact()
		return
	}
	var msum *mutate.Summary
	if job.Spec.Mutate {
		// The scoring pass is part of the job's lifetime (still "running" in
		// the API): the suite is final, the mutants are cheap to execute.
		msum = mutationScore(compiled, job.Spec, res)
	}
	job.mu.Lock()
	job.finished = time.Now()
	job.state = StateDone
	job.stopped = res.Stopped
	job.degraded = cm.Degraded()
	job.report = &res.Report
	job.mutation = msum
	snap := cm.Snapshot()
	snap.Mutation = msum
	job.final = &snap
	job.corpus = cm.CorpusExport()
	if res.CheckpointErr != nil {
		job.err = "checkpoint: " + res.CheckpointErr.Error()
	}
	ev := journalEvent{
		Type: evFinished, Job: job.ID, State: StateDone,
		Stopped: job.stopped, Degraded: job.degraded, Report: job.report, Error: job.err,
		Mutation: msum,
	}
	job.mu.Unlock()
	s.journal.record(ev)
	s.maybeCompact()
}

// mutationScore runs the post-campaign mutation pass: an IR-level mutant
// pool (the daemon holds only the compiled form, so chart operators are
// skipped) scored against the campaign's generated suite.
func mutationScore(c *codegen.Compiled, spec Spec, res *fuzz.Result) *mutate.Summary {
	budget := spec.MutantBudget
	if budget <= 0 {
		budget = 100
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	muts := mutate.Generate(c, nil, mutate.Config{Limit: budget, Seed: seed})
	var cases [][]byte
	for _, tc := range res.Suite.Cases {
		cases = append(cases, tc.Data)
	}
	rep := mutate.Run(c, muts, cases, mutate.RunConfig{})
	return &rep.Summary
}

// observerFor journals a running campaign's shard lifecycle events.
func (s *Server) observerFor(jobID int) func(ObserverEvent) {
	if s.journal == nil {
		return nil
	}
	return func(ev ObserverEvent) {
		rec := journalEvent{Job: jobID, Shard: ev.Shard}
		if ev.Err != nil {
			rec.Error = ev.Err.Error()
		}
		switch ev.Kind {
		case EventCheckpoint:
			rec.Type = evCheckpointed
		case EventPollinate:
			rec.Type = evPollinated
		case EventRestart:
			rec.Type = evRestarted
		case EventQuarantine:
			rec.Type = evQuarantined
		default:
			return
		}
		s.journal.record(rec)
	}
}

// maybeCompact rewrites the journal as one snapshot record once it has grown
// past the configured segment count, releasing the older segments.
func (s *Server) maybeCompact() {
	if s.journal == nil || s.journal.segments() <= s.cfg.CompactSegments {
		return
	}
	s.mu.Lock()
	jobs := append([]*Job(nil), s.jobs...)
	nextID := s.nextID
	s.mu.Unlock()
	table := make([]journalJob, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		table = append(table, journalJob{
			ID: j.ID, Spec: j.Spec, State: j.state, Error: j.err,
			Stopped: j.stopped, Degraded: j.degraded, Report: j.report,
			Mutation:  j.mutation,
			Submitted: j.Submitted, Started: j.started, Finished: j.finished,
		})
		j.mu.Unlock()
	}
	s.journal.compact(table, nextID)
}

// Submit enqueues a campaign, returning the job or an error if the server
// is draining or the queue is at capacity (ErrOverloaded).
func (s *Server) Submit(spec Spec) (*Job, error) {
	if spec.Model == "" {
		return nil, fmt.Errorf("campaign: missing model")
	}
	if _, err := fuzz.ParseMode(spec.Mode); err != nil {
		return nil, err
	}
	if s.cfg.ForceBackend != "" {
		// Promote before validation and job construction, like ForceOptimize
		// below, so the journal and the status API reflect what will run.
		spec.Backend = s.cfg.ForceBackend
	}
	if _, err := vm.ParseBackend(spec.Backend); err != nil {
		return nil, err
	}
	if s.cfg.ForceOptimize {
		// Promote before the job is built so the journal and the status API
		// both reflect what will actually run.
		spec.Optimize = true
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, fmt.Errorf("campaign: server is draining")
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		return nil, ErrOverloaded
	}
	job := &Job{ID: s.nextID, Spec: spec, Submitted: time.Now(), state: StateQueued}
	s.nextID++
	s.assignCheckpoint(job)
	s.jobs = append(s.jobs, job)
	s.byID[job.ID] = job
	s.mu.Unlock()

	select {
	case s.queue <- job:
		s.journal.record(journalEvent{Type: evSubmitted, Job: job.ID, Spec: &job.Spec})
		return job, nil
	default:
		job.mu.Lock()
		job.state = StateFailed
		job.err = ErrOverloaded.Error()
		job.mu.Unlock()
		return nil, ErrOverloaded
	}
}

// Jobs returns all known jobs, oldest first.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.jobs...)
}

// Job looks up a job by ID.
func (s *Server) Job(id int) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// StopJob stops a running job or cancels a queued one.
func (s *Server) StopJob(id int) error {
	j, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("campaign: no job %d", id)
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now()
		j.mu.Unlock()
		s.journal.record(journalEvent{Type: evCanceled, Job: id})
	case StateRunning:
		j.campaign.Stop()
		j.mu.Unlock()
	default:
		j.mu.Unlock()
	}
	return nil
}

// QueueDepth reports the number of submissions waiting for a runner.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Drain is the SIGTERM path: refuse new submissions, cancel queued jobs,
// stop running campaigns via their shards' Options.Stop channels (each
// shard flushes its final checkpoint on the way out), and wait — bounded by
// ctx — for the runners to finish. The journal is closed last so every
// final transition is recorded.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := append([]*Job(nil), s.jobs...)
	s.mu.Unlock()
	close(s.quit)
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			j.state = StateCanceled
			j.finished = time.Now()
			j.mu.Unlock()
			s.journal.record(journalEvent{Type: evCanceled, Job: j.ID})
		case StateRunning:
			j.campaign.Stop()
			j.mu.Unlock()
		default:
			j.mu.Unlock()
		}
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.journal.close()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("campaign: drain timed out: %w", ctx.Err())
	}
}

// Health is the daemon's self-assessment, served on /healthz. Status is
// "degraded" — with HTTP 503 — when durability or capacity is compromised:
// the journal cannot persist transitions, a running campaign has quarantined
// shards, or the queue is saturated. Liveness stays 200 while draining
// (the process is healthy, just finishing); readiness (/readyz) does not.
type Health struct {
	Status            string  `json:"status"` // ok | degraded
	UptimeSeconds     float64 `json:"uptimeSeconds"`
	Draining          bool    `json:"draining,omitempty"`
	QueueDepth        int     `json:"queueDepth"`
	QueueMax          int     `json:"queueMax"`
	JournalEnabled    bool    `json:"journalEnabled"`
	JournalSegments   int     `json:"journalSegments,omitempty"`
	JournalError      string  `json:"journalError,omitempty"`
	RunningCampaigns  int     `json:"runningCampaigns"`
	DegradedCampaigns int     `json:"degradedCampaigns"`
	QuarantinedShards int     `json:"quarantinedShards"`
	// LastCheckpointAgeSeconds is the age of the *oldest* live shard
	// checkpoint across running campaigns — the upper bound on fuzzing
	// progress a crash right now would lose. Negative when no running
	// campaign has checkpointed yet.
	LastCheckpointAgeSeconds float64 `json:"lastCheckpointAgeSeconds"`
}

// Health assembles the current health snapshot.
func (s *Server) Health() Health {
	s.mu.Lock()
	draining := s.draining
	jobs := append([]*Job(nil), s.jobs...)
	s.mu.Unlock()
	h := Health{
		Status:                   "ok",
		UptimeSeconds:            time.Since(s.start).Seconds(),
		Draining:                 draining,
		QueueDepth:               len(s.queue),
		QueueMax:                 s.cfg.MaxQueue,
		JournalEnabled:           s.journal != nil,
		JournalSegments:          s.journal.segments(),
		LastCheckpointAgeSeconds: -1,
	}
	if err := s.journal.err(); err != nil {
		h.JournalError = err.Error()
	}
	oldest := time.Time{}
	for _, j := range jobs {
		j.mu.Lock()
		cm := j.campaign
		running := j.state == StateRunning
		j.mu.Unlock()
		if !running || cm == nil {
			continue
		}
		h.RunningCampaigns++
		snap := cm.Snapshot()
		h.QuarantinedShards += snap.Quarantined
		if snap.Degraded {
			h.DegradedCampaigns++
		}
		if !snap.OldestCheckpoint.IsZero() && (oldest.IsZero() || snap.OldestCheckpoint.Before(oldest)) {
			oldest = snap.OldestCheckpoint
		}
	}
	if !oldest.IsZero() {
		h.LastCheckpointAgeSeconds = time.Since(oldest).Seconds()
	}
	if h.JournalError != "" || h.QuarantinedShards > 0 || h.QueueDepth >= h.QueueMax {
		h.Status = "degraded"
	}
	return h
}

// corpusPayload is the wire format of corpus export/import: JSON with
// base64-encoded cases (encoding/json's []byte rendering).
type corpusPayload struct {
	Model string   `json:"model,omitempty"`
	Cases [][]byte `json:"cases"`
}

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz                     liveness + health detail (503 when degraded)
//	GET  /readyz                      readiness (503 while draining)
//	GET  /metrics                     Prometheus text exposition
//	GET  /api/campaigns               all jobs with live snapshots
//	POST /api/campaigns               submit a Spec, returns the job
//	GET  /api/campaigns/{id}          one job
//	POST /api/campaigns/{id}/stop     stop a running / cancel a queued job
//	GET  /api/campaigns/{id}/corpus   export coverage-carrying inputs
//	POST /api/campaigns/{id}/corpus   inject cases into a running campaign
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		h := s.Health()
		if h.Draining || h.Status != "ok" {
			writeJSON(w, http.StatusServiceUnavailable, h)
			return
		}
		writeJSON(w, http.StatusOK, h)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	mux.HandleFunc("GET /api/campaigns", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]JobStatus, len(jobs))
		for i, j := range jobs {
			out[i] = j.status()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /api/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.status())
	})
	mux.HandleFunc("GET /api/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, job.status())
	})
	mux.HandleFunc("POST /api/campaigns/{id}/stop", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		if err := s.StopJob(job.ID); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, job.status())
	})
	mux.HandleFunc("GET /api/campaigns/{id}/corpus", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		job.mu.Lock()
		cases := job.corpus
		cm := job.campaign
		job.mu.Unlock()
		if cases == nil && cm != nil {
			cases = cm.CorpusExport()
		}
		writeJSON(w, http.StatusOK, corpusPayload{Model: job.Spec.Model, Cases: cases})
	})
	mux.HandleFunc("POST /api/campaigns/{id}/corpus", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		var payload corpusPayload
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxImportBytes)
		if err := json.NewDecoder(body).Decode(&payload); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("corpus import exceeds %d bytes", tooBig.Limit))
				return
			}
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad corpus: %w", err))
			return
		}
		job.mu.Lock()
		cm := job.campaign
		state := job.state
		job.mu.Unlock()
		if state != StateRunning || cm == nil {
			httpError(w, http.StatusConflict, fmt.Errorf("campaign %d is %s, not running", job.ID, state))
			return
		}
		for _, c := range payload.Cases {
			cm.Inject(c)
		}
		writeJSON(w, http.StatusOK, map[string]int{"injected": len(payload.Cases)})
	})
	return mux
}

// jobFromPath resolves the {id} wildcard, writing the HTTP error itself.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad campaign id %q", r.PathValue("id")))
		return nil, false
	}
	job, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %d", id))
		return nil, false
	}
	return job, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
