package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cftcg/internal/analysis"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
)

// ModelResolver turns a submitted model name into a compiled program. The
// daemon binds this to the built-in benchmarks plus on-disk .slx containers;
// tests bind it to builder-made models.
type ModelResolver func(name string) (*codegen.Compiled, error)

// Spec is the JSON body of a campaign submission.
type Spec struct {
	Model     string `json:"model"`               // resolver name (benchmark or server-side path)
	Shards    int    `json:"shards,omitempty"`    // default 1
	Budget    string `json:"budget,omitempty"`    // Go duration, e.g. "30s" (default 10s if no execs)
	MaxExecs  int64  `json:"execs,omitempty"`     // execution budget (0 = budget only)
	Seed      int64  `json:"seed,omitempty"`      // default 1
	Mode      string `json:"mode,omitempty"`      // cftcg | fuzz-only | no-iterdiff
	MaxTuples int    `json:"maxTuples,omitempty"` // input length cap in tuples
	Fuel      int64  `json:"fuel,omitempty"`      // per-step instruction budget
	// Checkpoint enables per-shard crash-safe checkpoints under this
	// server-side base path; Resume restores them on a later submission.
	Checkpoint string `json:"checkpoint,omitempty"`
	Resume     string `json:"resume,omitempty"`
	// Analyze runs the static dead-objective analysis before fuzzing so
	// unreachable branch slots drop out of the coverage denominators.
	Analyze bool `json:"analyze,omitempty"`
	// Directed biases mutation toward input fields that influence the
	// still-unsatisfied objectives (implies nothing in fuzz-only mode).
	Directed bool `json:"directed,omitempty"`
}

// options translates the wire spec into engine options.
func (sp *Spec) options() (fuzz.Options, error) {
	mode, err := fuzz.ParseMode(sp.Mode)
	if err != nil {
		return fuzz.Options{}, err
	}
	opts := fuzz.Options{
		Seed:           sp.Seed,
		Mode:           mode,
		MaxExecs:       sp.MaxExecs,
		MaxTuples:      sp.MaxTuples,
		Fuel:           sp.Fuel,
		CheckpointPath: sp.Checkpoint,
		ResumeFrom:     sp.Resume,
		Directed:       sp.Directed,
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if sp.Budget != "" {
		d, err := time.ParseDuration(sp.Budget)
		if err != nil {
			return fuzz.Options{}, fmt.Errorf("bad budget: %w", err)
		}
		opts.Budget = d
	}
	if opts.Budget == 0 && opts.MaxExecs == 0 {
		opts.Budget = 10 * time.Second
	}
	return opts, nil
}

// Job states. A job moves queued → running → done|failed; a queued job may
// be canceled (drain or explicit stop) without ever running.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one queued or executed campaign.
type Job struct {
	ID        int
	Spec      Spec
	Submitted time.Time

	mu       sync.Mutex
	state    string
	campaign *Campaign
	started  time.Time
	finished time.Time
	err      string
	stopped  bool // finished on an external stop rather than budget
	report   *coverage.Report
	final    *Snapshot
	corpus   [][]byte // export snapshot once done
}

// JobStatus is the wire rendering of a job for the status API.
type JobStatus struct {
	ID        int              `json:"id"`
	Model     string           `json:"model"`
	State     string           `json:"state"`
	Spec      Spec             `json:"spec"`
	Submitted time.Time        `json:"submitted"`
	Started   *time.Time       `json:"started,omitempty"`
	Finished  *time.Time       `json:"finished,omitempty"`
	Stopped   bool             `json:"stopped,omitempty"`
	Error     string           `json:"error,omitempty"`
	Snapshot  *Snapshot        `json:"snapshot,omitempty"`
	Report    *coverage.Report `json:"report,omitempty"`
}

func (j *Job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.ID,
		Model:     j.Spec.Model,
		State:     j.state,
		Spec:      j.Spec,
		Submitted: j.Submitted,
		Stopped:   j.stopped,
		Error:     j.err,
		Report:    j.report,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	switch {
	case j.final != nil:
		st.Snapshot = j.final
	case j.campaign != nil:
		snap := j.campaign.Snapshot()
		st.Snapshot = &snap
	}
	return st
}

// Server is the campaign service: a submission queue, a bounded pool of
// campaign runners, and the HTTP status/metrics plane. Everything is
// stdlib net/http — the daemon stays dependency-free.
type Server struct {
	resolve ModelResolver
	queue   chan *Job
	quit    chan struct{}
	wg      sync.WaitGroup
	start   time.Time

	mu       sync.Mutex
	jobs     []*Job
	byID     map[int]*Job
	nextID   int
	draining bool
}

// NewServer builds a campaign server running up to `runners` campaigns
// concurrently (each campaign itself fans out over its shards). Call Drain
// to shut it down.
func NewServer(resolve ModelResolver, runners int) *Server {
	if runners < 1 {
		runners = 1
	}
	s := &Server{
		resolve: resolve,
		queue:   make(chan *Job, 128),
		quit:    make(chan struct{}),
		start:   time.Now(),
		byID:    map[int]*Job{},
		nextID:  1,
	}
	for i := 0; i < runners; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// runner consumes the queue until drain.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.queue:
			s.runJob(job)
		}
	}
}

// runJob executes one campaign and records its outcome on the job.
func (s *Server) runJob(job *Job) {
	job.mu.Lock()
	if job.state != StateQueued { // canceled while queued
		job.mu.Unlock()
		return
	}
	job.mu.Unlock()

	fail := func(err error) {
		job.mu.Lock()
		job.state = StateFailed
		job.err = err.Error()
		job.finished = time.Now()
		job.mu.Unlock()
	}
	compiled, err := s.resolve(job.Spec.Model)
	if err != nil {
		fail(fmt.Errorf("resolve model: %w", err))
		return
	}
	if job.Spec.Analyze {
		// The resolver compiles per call, so marking this job's plan does
		// not leak dead flags into other submissions of the same model.
		analysis.MarkDead(compiled.Prog, compiled.Plan)
	}
	opts, err := job.Spec.options()
	if err != nil {
		fail(err)
		return
	}
	cm, err := New(compiled, Config{Shards: job.Spec.Shards, Fuzz: opts})
	if err != nil {
		fail(err)
		return
	}

	job.mu.Lock()
	if job.state != StateQueued { // canceled between dequeue and build
		job.mu.Unlock()
		return
	}
	job.state = StateRunning
	job.campaign = cm
	job.started = time.Now()
	job.mu.Unlock()

	res, err := cm.Run()
	job.mu.Lock()
	defer job.mu.Unlock()
	job.finished = time.Now()
	if err != nil {
		job.state = StateFailed
		job.err = err.Error()
		return
	}
	job.state = StateDone
	job.stopped = res.Stopped
	job.report = &res.Report
	snap := cm.Snapshot()
	job.final = &snap
	job.corpus = cm.CorpusExport()
	if res.CheckpointErr != nil {
		job.err = "checkpoint: " + res.CheckpointErr.Error()
	}
}

// Submit enqueues a campaign, returning the job or an error if the server
// is draining or the queue is full.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if spec.Model == "" {
		return nil, fmt.Errorf("campaign: missing model")
	}
	if _, err := fuzz.ParseMode(spec.Mode); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, fmt.Errorf("campaign: server is draining")
	}
	job := &Job{ID: s.nextID, Spec: spec, Submitted: time.Now(), state: StateQueued}
	s.nextID++
	s.jobs = append(s.jobs, job)
	s.byID[job.ID] = job
	s.mu.Unlock()

	select {
	case s.queue <- job:
		return job, nil
	default:
		job.mu.Lock()
		job.state = StateFailed
		job.err = "queue full"
		job.mu.Unlock()
		return nil, fmt.Errorf("campaign: queue full")
	}
}

// Jobs returns all known jobs, oldest first.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Job(nil), s.jobs...)
}

// Job looks up a job by ID.
func (s *Server) Job(id int) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.byID[id]
	return j, ok
}

// StopJob stops a running job or cancels a queued one.
func (s *Server) StopJob(id int) error {
	j, ok := s.Job(id)
	if !ok {
		return fmt.Errorf("campaign: no job %d", id)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.finished = time.Now()
	case StateRunning:
		j.campaign.Stop()
	}
	return nil
}

// Drain is the SIGTERM path: refuse new submissions, cancel queued jobs,
// stop running campaigns via their shards' Options.Stop channels (each
// shard flushes its final checkpoint on the way out), and wait — bounded by
// ctx — for the runners to finish.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	jobs := append([]*Job(nil), s.jobs...)
	s.mu.Unlock()
	close(s.quit)
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			j.state = StateCanceled
			j.finished = time.Now()
		case StateRunning:
			j.campaign.Stop()
		}
		j.mu.Unlock()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("campaign: drain timed out: %w", ctx.Err())
	}
}

// corpusPayload is the wire format of corpus export/import: JSON with
// base64-encoded cases (encoding/json's []byte rendering).
type corpusPayload struct {
	Model string   `json:"model,omitempty"`
	Cases [][]byte `json:"cases"`
}

// Handler returns the daemon's HTTP API:
//
//	GET  /healthz                     liveness
//	GET  /metrics                     Prometheus text exposition
//	GET  /api/campaigns               all jobs with live snapshots
//	POST /api/campaigns               submit a Spec, returns the job
//	GET  /api/campaigns/{id}          one job
//	POST /api/campaigns/{id}/stop     stop a running / cancel a queued job
//	GET  /api/campaigns/{id}/corpus   export coverage-carrying inputs
//	POST /api/campaigns/{id}/corpus   inject cases into a running campaign
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.writeMetrics(w)
	})
	mux.HandleFunc("GET /api/campaigns", func(w http.ResponseWriter, r *http.Request) {
		jobs := s.Jobs()
		out := make([]JobStatus, len(jobs))
		for i, j := range jobs {
			out[i] = j.status()
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("POST /api/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad spec: %w", err))
			return
		}
		job, err := s.Submit(spec)
		if err != nil {
			httpError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeJSON(w, http.StatusAccepted, job.status())
	})
	mux.HandleFunc("GET /api/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		writeJSON(w, http.StatusOK, job.status())
	})
	mux.HandleFunc("POST /api/campaigns/{id}/stop", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		if err := s.StopJob(job.ID); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, job.status())
	})
	mux.HandleFunc("GET /api/campaigns/{id}/corpus", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		job.mu.Lock()
		cases := job.corpus
		cm := job.campaign
		job.mu.Unlock()
		if cases == nil && cm != nil {
			cases = cm.CorpusExport()
		}
		writeJSON(w, http.StatusOK, corpusPayload{Model: job.Spec.Model, Cases: cases})
	})
	mux.HandleFunc("POST /api/campaigns/{id}/corpus", func(w http.ResponseWriter, r *http.Request) {
		job, ok := s.jobFromPath(w, r)
		if !ok {
			return
		}
		var payload corpusPayload
		if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad corpus: %w", err))
			return
		}
		job.mu.Lock()
		cm := job.campaign
		state := job.state
		job.mu.Unlock()
		if state != StateRunning || cm == nil {
			httpError(w, http.StatusConflict, fmt.Errorf("campaign %d is %s, not running", job.ID, state))
			return
		}
		for _, c := range payload.Cases {
			cm.Inject(c)
		}
		writeJSON(w, http.StatusOK, map[string]int{"injected": len(payload.Cases)})
	})
	return mux
}

// jobFromPath resolves the {id} wildcard, writing the HTTP error itself.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad campaign id %q", r.PathValue("id")))
		return nil, false
	}
	job, ok := s.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no campaign %d", id))
		return nil, false
	}
	return job, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
