package campaign

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/fuzz"
)

// waitState polls a job until it reaches the wanted state.
func waitState(t *testing.T, srv *Server, id int, want string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, ok := srv.Job(id)
		if !ok {
			t.Fatalf("job %d disappeared", id)
		}
		st := j.status()
		if st.State == want {
			return st
		}
		if st.State == StateFailed && want != StateFailed {
			t.Fatalf("job %d failed: %s", id, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %s (want %s)", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJournalDurableLifecycle: a journaled server survives restart — the
// finished campaign reappears with its report, the auto-assigned checkpoint
// lives under the journal directory, and the job ID sequence continues.
func TestJournalDurableLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{Journal: dir}
	srv, err := NewServerWithConfig(testResolver(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(Spec{Model: "Magic", MaxExecs: 300})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(job.Spec.Checkpoint, dir) {
		t.Fatalf("journaled job should get a server-side checkpoint, got %q", job.Spec.Checkpoint)
	}
	done := waitState(t, srv, job.ID, StateDone)
	if done.Report == nil {
		t.Fatal("finished job has no report")
	}
	drain(t, srv)

	srv2, err := NewServerWithConfig(testResolver(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := srv2.Job(job.ID)
	if !ok {
		t.Fatalf("job %d lost across restart", job.ID)
	}
	st := restored.status()
	if st.State != StateDone || st.Report == nil || st.Report.DecisionCovered != done.Report.DecisionCovered {
		t.Fatalf("restored job corrupted: %+v", st)
	}
	next, err := srv2.Submit(Spec{Model: "Magic", MaxExecs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= job.ID {
		t.Fatalf("ID sequence reset across restart: %d after %d", next.ID, job.ID)
	}
	waitState(t, srv2, next.ID, StateDone)
	drain(t, srv2)
}

// TestJournalRequeuesInterrupted: a journal recording submitted+started with
// no finish — the shape a SIGKILL leaves behind — makes the restarted server
// requeue the job and run it to completion.
func TestJournalRequeuesInterrupted(t *testing.T) {
	dir := t.TempDir()
	jnl, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: "Magic", MaxExecs: 300}
	jnl.record(journalEvent{Type: evSubmitted, Job: 1, Spec: &spec})
	jnl.record(journalEvent{Type: evStarted, Job: 1})
	jnl.close()

	srv, err := NewServerWithConfig(testResolver(t), ServerConfig{Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, srv, 1, StateDone)
	if !st.Requeued {
		t.Error("recovered job should be marked requeued")
	}
	if st.Report == nil {
		t.Error("recovered job has no report")
	}
	drain(t, srv)
}

// TestJournalTornFinalRecord: garbage after the last intact record — a crash
// mid-append — must not block recovery, and the records before the tear
// must survive.
func TestJournalTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	jnl, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: "Magic", MaxExecs: 200}
	jnl.record(journalEvent{Type: evSubmitted, Job: 1, Spec: &spec})
	jnl.close()

	segs, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v %v", segs, err)
	}
	sort.Strings(segs)
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0x00}) // torn frame: too short for a header
	f.Close()

	srv, err := NewServerWithConfig(testResolver(t), ServerConfig{Journal: dir})
	if err != nil {
		t.Fatalf("torn journal tail must not block recovery: %v", err)
	}
	waitState(t, srv, 1, StateDone)
	drain(t, srv)
}

// TestJournalDoubleResumeIdempotent: the crash→requeue→crash shape writes
// duplicate transitions; the replay fold must yield one job, and a second
// recovery cycle must not mint a duplicate either.
func TestJournalDoubleResumeIdempotent(t *testing.T) {
	dir := t.TempDir()
	jnl, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Model: "Magic", MaxExecs: 200}
	jnl.record(journalEvent{Type: evSubmitted, Job: 1, Spec: &spec})
	jnl.record(journalEvent{Type: evStarted, Job: 1})
	jnl.record(journalEvent{Type: evStarted, Job: 1}) // requeued start after first crash
	jnl.close()

	jnl2, err := openJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	jobs, nextID, err := jnl2.replay()
	jnl2.close()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].State != StateRunning || nextID != 2 {
		t.Fatalf("fold of duplicated transitions: %d jobs, state %v, nextID %d",
			len(jobs), jobs, nextID)
	}

	srv, err := NewServerWithConfig(testResolver(t), ServerConfig{Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, srv, 1, StateDone)
	drain(t, srv)
	srv2, err := NewServerWithConfig(testResolver(t), ServerConfig{Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv2.Jobs()); got != 1 {
		t.Fatalf("double recovery minted %d jobs, want 1", got)
	}
	drain(t, srv2)
}

// TestSubmitShedsWhenOverloaded: with the single runner wedged and the queue
// at MaxQueue, further submissions shed with ErrOverloaded, and the health
// endpoint reports degraded until the queue drains.
func TestSubmitShedsWhenOverloaded(t *testing.T) {
	magic := magicModel(t)
	release := make(chan struct{})
	blockingResolver := func(name string) (*codegen.Compiled, error) {
		<-release
		return magic, nil
	}
	srv, err := NewServerWithConfig(blockingResolver, ServerConfig{MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first, err := srv.Submit(Spec{Model: "Magic", MaxExecs: 100})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.QueueDepth() != 0 { // runner picked it up (and is now wedged)
		if time.Now().After(deadline) {
			t.Fatal("runner never dequeued the first job")
		}
		time.Sleep(time.Millisecond)
	}
	second, err := srv.Submit(Spec{Model: "Magic", MaxExecs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(Spec{Model: "Magic", MaxExecs: 100}); err != ErrOverloaded {
		t.Fatalf("overloaded submit: want ErrOverloaded, got %v", err)
	}
	if h := srv.Health(); h.Status != "degraded" || h.QueueDepth < h.QueueMax {
		t.Fatalf("saturated queue should degrade health: %+v", h)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: want 503, got %d", resp.StatusCode)
	}

	close(release)
	waitState(t, srv, first.ID, StateDone)
	waitState(t, srv, second.ID, StateDone)
	if h := srv.Health(); h.Status != "ok" {
		t.Fatalf("health should recover once the queue drains: %+v", h)
	}
	drain(t, srv)
}

// TestDrainMidCheckpoint: SIGTERM while shards are checkpointing every
// millisecond — the drain must complete and every checkpoint file must stay
// loadable (the atomic-rename protocol holds under shutdown races).
func TestDrainMidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServerWithConfig(testResolver(t), ServerConfig{Journal: dir})
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(Spec{
		Model: "Magic", Shards: 2, Budget: "1m", CheckpointEvery: "1ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until checkpoints are actually being written.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := waitState(t, srv, job.ID, StateRunning)
		if st.Snapshot != nil && !st.Snapshot.OldestCheckpoint.IsZero() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shards never checkpointed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	drain(t, srv)
	st := job.status()
	if st.State != StateDone || !st.Stopped {
		t.Fatalf("drained job should finish stopped: %+v", st)
	}
	for shard := 0; shard < 2; shard++ {
		path := fuzz.ShardCheckpointPath(job.Spec.Checkpoint, shard)
		if _, err := fuzz.LoadCheckpoint(path); err != nil {
			t.Errorf("shard %d checkpoint unreadable after drain race: %v", shard, err)
		}
	}
}

// TestReadyzDrain: readiness flips to 503 when the server drains; liveness
// (healthz) stays 200 — the process is healthy, just finishing.
func TestReadyzDrain(t *testing.T) {
	srv := NewServer(testResolver(t), 1)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string) int {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := status("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", code)
	}
	drain(t, srv)
	if code := status("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: want 503, got %d", code)
	}
	if code := status("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after drain: want 200, got %d", code)
	}
}
