package campaign

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMutationScoreJournalRoundTrip: a campaign submitted with mutate: true
// finishes with a mutation summary on the job, the final snapshot, and the
// metrics endpoint — and the summary survives a daemon crash-restart via
// the journal.
func TestMutationScoreJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := ServerConfig{Journal: dir}
	srv, err := NewServerWithConfig(testResolver(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	job, err := srv.Submit(Spec{Model: "Magic", MaxExecs: 500, Mutate: true, MutantBudget: 40})
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, srv, job.ID, StateDone)
	ms := done.Mutation
	if ms == nil {
		t.Fatal("finished mutate job has no mutation summary")
	}
	if ms.Total == 0 || ms.Killed < 1 {
		t.Fatalf("mutation summary %+v: want mutants generated and at least one kill", ms)
	}
	if ms.Score <= 0 || ms.Score > 1 {
		t.Fatalf("mutation score %v outside (0, 1]", ms.Score)
	}
	if done.Snapshot == nil || done.Snapshot.Mutation == nil {
		t.Fatal("final snapshot carries no mutation summary")
	}

	ts := httptest.NewServer(srv.Handler())
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, series := range []string{
		"cftcg_mutants_total{", "cftcg_mutants_killed{",
		"cftcg_mutants_survived{", "cftcg_mutation_score{",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %s series:\n%s", series, body)
		}
	}
	ts.Close()
	drain(t, srv)

	srv2, err := NewServerWithConfig(testResolver(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer drain(t, srv2)
	restored, ok := srv2.Job(job.ID)
	if !ok {
		t.Fatalf("job %d lost across restart", job.ID)
	}
	st := restored.status()
	if st.State != StateDone || st.Mutation == nil {
		t.Fatalf("restored job lost its mutation summary: %+v", st)
	}
	if st.Mutation.Total != ms.Total || st.Mutation.Killed != ms.Killed || st.Mutation.Score != ms.Score {
		t.Fatalf("mutation summary changed across restart: %+v vs %+v", st.Mutation, ms)
	}
}
