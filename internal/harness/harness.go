// Package harness orchestrates the paper's evaluation: it runs each tool
// (CFTCG, SLDV, SimCoTest, and the Fuzz-Only ablation) on each benchmark
// model under a common budget and renders Table 3, the Figure 7 coverage
// timelines, the Figure 8 ablation comparison, and the §4 execution-speed
// measurements.
package harness

import (
	"fmt"
	"strings"
	"time"

	"cftcg/internal/analysis"
	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
	"cftcg/internal/mutate"
	"cftcg/internal/opt"
	"cftcg/internal/simcotest"
	"cftcg/internal/sldv"
	"cftcg/internal/testcase"
	"cftcg/internal/vm"
)

// Tool identifies a test-case generator under evaluation.
type Tool string

// The evaluated tools. Hybrid is the paper's §6 future work: constraint
// solving discovers inport relationships first, fuzzing continues from its
// witnesses.
const (
	ToolSLDV      Tool = "SLDV"
	ToolSimCoTest Tool = "SimCoTest"
	ToolCFTCG     Tool = "CFTCG"
	ToolFuzzOnly  Tool = "FuzzOnly"
	ToolHybrid    Tool = "Hybrid"
)

// Config sets the common experiment budget. The paper ran 24 hours per
// tool/model with coverage stabilizing within an hour; these budgets scale
// the same comparison to seconds.
type Config struct {
	// Budget is the wall-clock budget per tool per model.
	Budget time.Duration
	// Repetitions averages randomized tools over this many seeds
	// (the paper uses 10).
	Repetitions int
	// Seed is the base random seed; repetition r uses Seed+r.
	Seed int64

	// SLDV parameters.
	SLDVDepth  int
	SLDVNodes  int64
	SLDVMemory int64

	// SimCoTest parameters.
	SimHorizon int
	// SimThrottleStepsPerSec emulates the paper's measured Simulink engine
	// rate when positive; 0 runs the interpreter at native speed.
	SimThrottleStepsPerSec float64

	// Fuzzer parameters.
	FuzzMaxTuples int
	// FuzzFuel bounds instructions per model step (0 = vm.DefaultFuel).
	FuzzFuel int64
	// FuzzMaxExecs additionally bounds the fuzz-based tools by execution
	// count (0 = wall-clock Budget only). Deterministic comparisons — equal
	// effort regardless of host speed — set this and a generous Budget.
	FuzzMaxExecs int64

	// MutantBudget enables mutation scoring: after the coverage runs, up to
	// this many mutants are generated per model (once, shared by every
	// tool) and each tool's suite is scored by how many it kills. 0
	// disables the pass.
	MutantBudget int

	// Analyze runs the static dead-objective analysis on each compiled
	// model, so branch slots proved unreachable drop out of every tool's
	// coverage denominators (Table 3 then reports achievable objectives).
	Analyze bool
	// Optimize runs the translation-validated IR optimization pipeline on
	// each compiled model before the tools execute it, so every tool (and
	// the mutation pass, whose mutants derive from the optimized program)
	// runs the code campaigns actually ship.
	Optimize bool
	// Directed biases CFTCG/Hybrid mutation toward input fields that the
	// influence map links to still-unsatisfied objectives.
	Directed bool
	// Backend selects the VM backend the fuzz-based tools execute on (the
	// switch reference by default). Coverage results are backend-invariant —
	// the differential rig proves observable equality — so this trades
	// nothing but wall-clock per exec.
	Backend vm.BackendKind

	// CellTimeout is the hard deadline for one tool×model×seed cell. A cell
	// that exceeds it (or panics) is rendered as degraded in Table 3 instead
	// of sinking the whole evaluation. 0 derives a deadline from Budget.
	CellTimeout time.Duration
}

// cellDeadline returns the effective per-cell deadline: the configured
// CellTimeout, or a generous multiple of the per-tool budget (tools need
// setup/teardown time beyond the fuzzing budget itself).
func (c Config) cellDeadline() time.Duration {
	if c.CellTimeout > 0 {
		return c.CellTimeout
	}
	return 4*c.Budget + 30*time.Second
}

// DefaultConfig returns a configuration suitable for laptop-scale runs.
//
// SimCoTest defaults to a 500 steps/s engine-rate throttle: our interpreter
// is ~40-60x slower than the compiled VM, while the paper's Simulink engine
// was ~4300x slower (26,000 vs 6 it/s). The throttle restores the relative
// budget the paper's wall-clock comparison implies; pass 0 to run the
// interpreter at native speed (reported separately in EXPERIMENTS.md).
func DefaultConfig() Config {
	return Config{
		Budget:                 2 * time.Second,
		Repetitions:            3,
		Seed:                   1,
		SLDVDepth:              5,
		SLDVNodes:              1 << 40, // wall budget governs
		SimHorizon:             50,
		SimThrottleStepsPerSec: 500,
		FuzzMaxTuples:          64,
	}
}

// ToolResult is one tool's outcome on one model (averaged over repetitions
// for randomized tools).
type ToolResult struct {
	Tool      Tool
	Decision  float64
	Condition float64
	MCDC      float64
	Execs     int64
	Steps     int64
	Cases     int
	Timeline  []coverage.TimePoint // from the first repetition

	// Failed marks a degraded cell: the tool errored, panicked or blew its
	// per-cell deadline. The coverage fields are zero and Table 3 renders
	// the cell as degraded instead of aborting the evaluation.
	Failed     bool
	FailReason string

	// Suite is the raw generated test suite (first repetition), kept so the
	// mutation-scoring pass can replay it against the mutants.
	Suite [][]byte `json:"-"`

	// Mutation-score fields, populated when Config.MutantBudget > 0: the
	// shared mutant pool size, this tool's distinct kills, survivors, and
	// proven-equivalent (unkillable) mutants, and the corrected score
	// Killed/(Killed+Survived) — equivalent mutants leave the denominator.
	MutTotal      int
	MutKilled     int
	MutSurvived   int
	MutEquivalent int
	MutScore      float64
}

// suiteBytes flattens a tool's generated suite to the raw byte cases the
// mutant runner replays.
func suiteBytes(s *testcase.Suite) [][]byte {
	if s == nil {
		return nil
	}
	out := make([][]byte, 0, len(s.Cases))
	for _, tc := range s.Cases {
		out = append(out, tc.Data)
	}
	return out
}

// ModelResult aggregates all tools on one model.
type ModelResult struct {
	Entry    benchmodels.Entry
	Branches int
	// Dead counts branch slots the static analyzer proved unreachable
	// (only populated when Config.Analyze is set); every tool's coverage
	// percentages then exclude them.
	Dead    int
	Blocks  int
	Results map[Tool]ToolResult
}

// RunTool executes one tool on one compiled model with one seed.
func RunTool(c *codegen.Compiled, tool Tool, cfg Config, seed int64) (ToolResult, error) {
	switch tool {
	case ToolSLDV:
		res := sldv.Run(c, sldv.Options{
			MaxDepth:         cfg.SLDVDepth,
			NodeBudget:       cfg.SLDVNodes,
			Budget:           cfg.Budget,
			MemoryLimitBytes: cfg.SLDVMemory,
		})
		rep := res.Report
		return ToolResult{
			Tool: tool, Decision: rep.Decision(), Condition: rep.Condition(), MCDC: rep.MCDC(),
			Execs: res.Witnesses, Cases: len(res.Suite.Cases), Timeline: res.Timeline,
			Suite: suiteBytes(res.Suite),
		}, nil

	case ToolSimCoTest:
		res, err := simcotest.Run(c.Design, c.Plan, c.Index, simcotest.Options{
			Seed:                seed,
			Horizon:             cfg.SimHorizon,
			Budget:              cfg.Budget,
			ThrottleStepsPerSec: cfg.SimThrottleStepsPerSec,
		})
		if err != nil {
			return ToolResult{}, err
		}
		rep := res.Report
		return ToolResult{
			Tool: tool, Decision: rep.Decision(), Condition: rep.Condition(), MCDC: rep.MCDC(),
			Execs: res.Sims, Steps: res.Steps, Cases: len(res.Suite.Cases), Timeline: res.Timeline,
			Suite: suiteBytes(res.Suite),
		}, nil

	case ToolCFTCG, ToolFuzzOnly:
		mode := fuzz.ModeModelOriented
		if tool == ToolFuzzOnly {
			mode = fuzz.ModeFuzzOnly
		}
		eng, err := fuzz.NewEngine(c, fuzz.Options{
			Seed:      seed,
			Mode:      mode,
			MaxTuples: cfg.FuzzMaxTuples,
			Budget:    cfg.Budget,
			MaxExecs:  cfg.FuzzMaxExecs,
			Fuel:      cfg.FuzzFuel,
			Directed:  cfg.Directed,
			Backend:   cfg.Backend,
		})
		if err != nil {
			return ToolResult{}, err
		}
		res := eng.Run()
		rep := res.Report
		return ToolResult{
			Tool: tool, Decision: rep.Decision(), Condition: rep.Condition(), MCDC: rep.MCDC(),
			Execs: res.Execs, Steps: res.Steps, Cases: len(res.Suite.Cases), Timeline: res.Timeline,
			Suite: suiteBytes(res.Suite),
		}, nil

	case ToolHybrid:
		// A quarter of the budget for constraint solving, then fuzzing
		// resumes from the solver's witnesses.
		solverRes := sldv.Run(c, sldv.Options{
			MaxDepth:   cfg.SLDVDepth,
			NodeBudget: cfg.SLDVNodes,
			Budget:     cfg.Budget / 4,
		})
		var seedInputs [][]byte
		for _, tc := range solverRes.Suite.Cases {
			seedInputs = append(seedInputs, tc.Data)
		}
		eng, err := fuzz.NewEngine(c, fuzz.Options{
			Seed:       seed,
			Mode:       fuzz.ModeModelOriented,
			MaxTuples:  cfg.FuzzMaxTuples,
			Budget:     cfg.Budget - cfg.Budget/4,
			MaxExecs:   cfg.FuzzMaxExecs,
			Fuel:       cfg.FuzzFuel,
			SeedInputs: seedInputs,
			Directed:   cfg.Directed,
			Backend:    cfg.Backend,
		})
		if err != nil {
			return ToolResult{}, err
		}
		res := eng.Run()
		rep := res.Report
		return ToolResult{
			Tool: tool, Decision: rep.Decision(), Condition: rep.Condition(), MCDC: rep.MCDC(),
			Execs: res.Execs + solverRes.Witnesses, Steps: res.Steps,
			Cases: len(res.Suite.Cases) + len(solverRes.Suite.Cases), Timeline: res.Timeline,
			Suite: append(suiteBytes(res.Suite), suiteBytes(solverRes.Suite)...),
		}, nil
	}
	return ToolResult{}, fmt.Errorf("harness: unknown tool %q", tool)
}

// runTool is the cell entry point, indirected so tests can inject failures.
var runTool = RunTool

// runToolIsolated runs one tool cell behind a recover barrier and the
// per-cell deadline: a panicking or wedged tool becomes a degraded cell
// instead of sinking the whole Table 3 evaluation — the same isolation the
// fuzz engine applies to individual inputs, one level up.
func runToolIsolated(c *codegen.Compiled, tool Tool, cfg Config, seed int64) ToolResult {
	type outcome struct {
		tr  ToolResult
		err error
	}
	ch := make(chan outcome, 1)
	run := runTool // read the hook before spawning: the goroutine may outlive a deadline
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v", r)}
			}
		}()
		tr, err := run(c, tool, cfg, seed)
		ch <- outcome{tr: tr, err: err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return ToolResult{Tool: tool, Failed: true, FailReason: o.err.Error()}
		}
		return o.tr
	case <-time.After(cfg.cellDeadline()):
		// The cell goroutine is abandoned; every tool is budget-bounded, so
		// it will exit on its own once its (overshot) budget expires.
		return ToolResult{Tool: tool, Failed: true,
			FailReason: fmt.Sprintf("deadline %s exceeded", cfg.cellDeadline())}
	}
}

// RunModel evaluates the given tools on one benchmark entry, averaging
// randomized tools over cfg.Repetitions seeds (SLDV is deterministic and
// runs once). A failing tool yields a degraded cell, not an error: only
// model compilation itself can fail the whole row.
func RunModel(e benchmodels.Entry, tools []Tool, cfg Config) (ModelResult, error) {
	m := e.Build()
	c, err := codegen.Compile(m)
	if err != nil {
		return ModelResult{}, fmt.Errorf("harness: %s: %w", e.Name, err)
	}
	if cfg.Analyze {
		analysis.MarkDead(c.Prog, c.Plan)
	}
	if cfg.Optimize {
		if _, err := c.Optimize(opt.Config{Seed: cfg.Seed}); err != nil {
			return ModelResult{}, fmt.Errorf("harness: %s: %w", e.Name, err)
		}
	}
	mr := ModelResult{
		Entry:    e,
		Branches: c.Plan.NumBranches,
		Dead:     c.Plan.DeadCount(),
		Blocks:   m.Root.CountBlocks(),
		Results:  map[Tool]ToolResult{},
	}
	for _, tool := range tools {
		reps := cfg.Repetitions
		if tool == ToolSLDV || reps < 1 {
			reps = 1
		}
		var acc ToolResult
		for r := 0; r < reps; r++ {
			tr := runToolIsolated(c, tool, cfg, cfg.Seed+int64(r))
			if tr.Failed {
				// One failed repetition degrades the whole cell; later
				// repetitions are skipped (they share the failure cause).
				acc = tr
				break
			}
			if r == 0 {
				acc = tr
			} else {
				acc.Decision += tr.Decision
				acc.Condition += tr.Condition
				acc.MCDC += tr.MCDC
				acc.Execs += tr.Execs
				acc.Steps += tr.Steps
				acc.Cases += tr.Cases
			}
		}
		if !acc.Failed {
			acc.Decision /= float64(reps)
			acc.Condition /= float64(reps)
			acc.MCDC /= float64(reps)
			acc.Execs /= int64(reps)
			acc.Steps /= int64(reps)
			acc.Cases /= reps
		}
		mr.Results[tool] = acc
	}
	if cfg.MutantBudget > 0 {
		scoreMutants(c, m, cfg, &mr)
	}
	return mr, nil
}

// scoreMutants runs the mutation-testing pass over one model row: a single
// mutant pool (same mutants for every tool — the comparison is fair by
// construction) scored against each non-failed tool's first-repetition
// suite.
func scoreMutants(c *codegen.Compiled, m *model.Model, cfg Config, mr *ModelResult) {
	muts := mutate.Generate(c, m, mutate.Config{Limit: cfg.MutantBudget, Seed: cfg.Seed})
	if len(muts) == 0 {
		return
	}
	for tool, tr := range mr.Results {
		if tr.Failed {
			continue
		}
		rep := mutate.Run(c, muts, tr.Suite, mutate.RunConfig{})
		tr.MutTotal = rep.Summary.Total
		tr.MutKilled = rep.Summary.Killed
		tr.MutSurvived = rep.Summary.Survived
		tr.MutEquivalent = rep.Summary.Equivalent
		tr.MutScore = rep.Summary.Score
		mr.Results[tool] = tr
	}
}

// RunAll evaluates the given tools across every benchmark model.
func RunAll(tools []Tool, cfg Config, progress func(model string)) ([]ModelResult, error) {
	var out []ModelResult
	for _, e := range benchmodels.All() {
		if progress != nil {
			progress(e.Name)
		}
		mr, err := RunModel(e, tools, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, mr)
	}
	return out, nil
}

// FormatTable2 renders the benchmark statistics table (paper Table 2),
// side by side with the paper's numbers.
func FormatTable2(results []ModelResult) string {
	var w strings.Builder
	fmt.Fprintf(&w, "%-9s %-36s %8s %8s %8s %8s\n",
		"Model", "Functionality", "#Branch", "(paper)", "#Block", "(paper)")
	for _, mr := range results {
		fmt.Fprintf(&w, "%-9s %-36s %8d %8d %8d %8d\n",
			mr.Entry.Name, mr.Entry.Functionality,
			mr.Branches, mr.Entry.PaperBranch, mr.Blocks, mr.Entry.PaperBlock)
	}
	return w.String()
}

// FormatTable3 renders the coverage comparison (paper Table 3): our
// measured numbers with the paper's values alongside.
func FormatTable3(results []ModelResult) string {
	var w strings.Builder
	fmt.Fprintf(&w, "%-9s %-10s | %9s %9s %9s | %22s\n",
		"Model", "Tool", "Decision", "Condition", "MCDC", "paper (DC/CC/MCDC)")
	line := strings.Repeat("-", 88)
	fmt.Fprintln(&w, line)
	for _, mr := range results {
		for _, tool := range []Tool{ToolSLDV, ToolSimCoTest, ToolCFTCG} {
			tr, ok := mr.Results[tool]
			if !ok {
				continue
			}
			var p benchmodels.ToolCoverage
			switch tool {
			case ToolSLDV:
				p = mr.Entry.Paper.SLDV
			case ToolSimCoTest:
				p = mr.Entry.Paper.SimCoTest
			case ToolCFTCG:
				p = mr.Entry.Paper.CFTCG
			}
			if tr.Failed {
				fmt.Fprintf(&w, "%-9s %-10s | %31s | %7.0f%% %6.0f%% %6.0f%%\n",
					mr.Entry.Name, tool, "FAILED: "+truncate(tr.FailReason, 23),
					p.Decision, p.Condition, p.MCDC)
				continue
			}
			fmt.Fprintf(&w, "%-9s %-10s | %8.1f%% %8.1f%% %8.1f%% | %7.0f%% %6.0f%% %6.0f%%\n",
				mr.Entry.Name, tool, tr.Decision, tr.Condition, tr.MCDC,
				p.Decision, p.Condition, p.MCDC)
		}
		fmt.Fprintln(&w, line)
	}
	w.WriteString(FormatImprovement(results))
	return w.String()
}

// FormatImprovement renders the Table 3 footer: CFTCG's average relative
// improvement over each baseline (the paper reports +47.2%/+38.3%/+144.5%
// vs SLDV and +100.8%/+44.6%/+232.4% vs SimCoTest).
func FormatImprovement(results []ModelResult) string {
	var w strings.Builder
	for _, base := range []Tool{ToolSLDV, ToolSimCoTest} {
		var dImp, cImp, mImp float64
		n := 0
		for _, mr := range results {
			b, okB := mr.Results[base]
			f, okF := mr.Results[ToolCFTCG]
			if !okB || !okF || b.Failed || f.Failed {
				continue
			}
			dImp += relImprove(f.Decision, b.Decision)
			cImp += relImprove(f.Condition, b.Condition)
			mImp += relImprove(f.MCDC, b.MCDC)
			n++
		}
		if n == 0 {
			continue
		}
		fmt.Fprintf(&w, "CFTCG vs %-10s  decision +%.1f%%  condition +%.1f%%  MCDC +%.1f%%\n",
			base, dImp/float64(n), cImp/float64(n), mImp/float64(n))
	}
	return w.String()
}

// truncate caps a failure reason to n runes so a degraded cell stays within
// its Table 3 column.
func truncate(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}

// relImprove computes the percentage improvement of a over b, clamping the
// denominator the way the paper's averages imply (a zero baseline counts as
// a 100% improvement rather than infinity).
func relImprove(a, b float64) float64 {
	if b <= 0 {
		if a <= 0 {
			return 0
		}
		return 100
	}
	return 100 * (a - b) / b
}

// SampleTimeline resamples a tool's event-driven timeline onto n uniform
// instants across the budget (step function: last value at or before t).
func SampleTimeline(tl []coverage.TimePoint, budget time.Duration, n int) []float64 {
	out := make([]float64, n)
	cur := 0.0
	j := 0
	for i := 0; i < n; i++ {
		t := time.Duration(float64(budget) * float64(i+1) / float64(n))
		for j < len(tl) && tl[j].Elapsed <= t {
			cur = tl[j].Decision
			j++
		}
		out[i] = cur
	}
	return out
}

// FormatFigure7 renders the decision-coverage-versus-time series for each
// model and tool, resampled to `points` columns across the budget.
func FormatFigure7(results []ModelResult, budget time.Duration, points int) string {
	var w strings.Builder
	fmt.Fprintf(&w, "Decision coverage (%%) vs time; %d samples across %s\n", points, budget)
	for _, mr := range results {
		fmt.Fprintf(&w, "\n%s:\n", mr.Entry.Name)
		for _, tool := range []Tool{ToolSLDV, ToolSimCoTest, ToolCFTCG} {
			tr, ok := mr.Results[tool]
			if !ok {
				continue
			}
			if tr.Failed {
				fmt.Fprintf(&w, "  %-10s FAILED: %s\n", tool, tr.FailReason)
				continue
			}
			samples := SampleTimeline(tr.Timeline, budget, points)
			fmt.Fprintf(&w, "  %-10s", tool)
			for _, s := range samples {
				fmt.Fprintf(&w, " %5.1f", s)
			}
			w.WriteByte('\n')
		}
	}
	return w.String()
}

// AblationRow is one model's result for a CFTCG-variant comparison.
type AblationRow struct {
	Model    string
	Variants map[string]ToolResult
}

// RunAblation compares CFTCG variants (full, no iteration-difference
// priority, no comparison-constant hints) at an identical execution budget,
// averaged over reps seeds.
func RunAblation(entries []benchmodels.Entry, execs int64, seed int64, reps int) ([]AblationRow, error) {
	if reps < 1 {
		reps = 1
	}
	variants := []struct {
		name string
		opts fuzz.Options
	}{
		{"full", fuzz.Options{Mode: fuzz.ModeModelOriented}},
		{"no-iterdiff", fuzz.Options{Mode: fuzz.ModeNoIterDiff}},
		{"no-hints", fuzz.Options{Mode: fuzz.ModeModelOriented, NoHints: true}},
	}
	var rows []AblationRow
	for _, e := range entries {
		c, err := codegen.Compile(e.Build())
		if err != nil {
			return nil, err
		}
		row := AblationRow{Model: e.Name, Variants: map[string]ToolResult{}}
		for _, v := range variants {
			var acc ToolResult
			for r := 0; r < reps; r++ {
				o := v.opts
				o.Seed = seed + int64(r)
				o.MaxExecs = execs
				eng, err := fuzz.NewEngine(c, o)
				if err != nil {
					return nil, err
				}
				res := eng.Run()
				rep := res.Report
				acc.Decision += rep.Decision()
				acc.Condition += rep.Condition()
				acc.MCDC += rep.MCDC()
				acc.Execs += res.Execs
				acc.Steps += res.Steps
			}
			acc.Decision /= float64(reps)
			acc.Condition /= float64(reps)
			acc.MCDC /= float64(reps)
			row.Variants[v.name] = acc
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatAblation renders the variant comparison table.
func FormatAblation(rows []AblationRow) string {
	var w strings.Builder
	fmt.Fprintf(&w, "%-9s | %22s | %22s | %22s\n",
		"Model", "full (DC/CC/MCDC)", "no-iterdiff", "no-hints")
	for _, r := range rows {
		f := r.Variants["full"]
		ni := r.Variants["no-iterdiff"]
		nh := r.Variants["no-hints"]
		fmt.Fprintf(&w, "%-9s | %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%%\n",
			r.Model,
			f.Decision, f.Condition, f.MCDC,
			ni.Decision, ni.Condition, ni.MCDC,
			nh.Decision, nh.Condition, nh.MCDC)
	}
	return w.String()
}

// FormatMutationTable renders the mutation score per tool next to Table 3's
// coverage: same mutant pool per model, one row per tool — the external
// check that higher coverage actually buys fault-detection power.
func FormatMutationTable(results []ModelResult, tools []Tool) string {
	var w strings.Builder
	fmt.Fprintf(&w, "%-9s %-10s | %8s %8s %8s %8s | %7s\n",
		"Model", "Tool", "Mutants", "Killed", "Survived", "Equiv", "Score")
	line := strings.Repeat("-", 71)
	fmt.Fprintln(&w, line)
	for _, mr := range results {
		for _, tool := range tools {
			tr, ok := mr.Results[tool]
			if !ok {
				continue
			}
			if tr.Failed {
				fmt.Fprintf(&w, "%-9s %-10s | %37s |\n",
					mr.Entry.Name, tool, "FAILED: "+truncate(tr.FailReason, 20))
				continue
			}
			fmt.Fprintf(&w, "%-9s %-10s | %8d %8d %8d %8d | %6.1f%%\n",
				mr.Entry.Name, tool, tr.MutTotal, tr.MutKilled, tr.MutSurvived,
				tr.MutEquivalent, 100*tr.MutScore)
		}
		fmt.Fprintln(&w, line)
	}
	return w.String()
}

// FormatFigure8 renders the model-oriented vs fuzz-only comparison.
func FormatFigure8(results []ModelResult) string {
	var w strings.Builder
	fmt.Fprintf(&w, "%-9s | %22s | %22s\n", "Model", "CFTCG (DC/CC/MCDC)", "FuzzOnly (DC/CC/MCDC)")
	for _, mr := range results {
		f, okF := mr.Results[ToolCFTCG]
		o, okO := mr.Results[ToolFuzzOnly]
		if !okF || !okO || f.Failed || o.Failed {
			continue
		}
		fmt.Fprintf(&w, "%-9s | %6.1f%% %6.1f%% %6.1f%% | %6.1f%% %6.1f%% %6.1f%%\n",
			mr.Entry.Name, f.Decision, f.Condition, f.MCDC, o.Decision, o.Condition, o.MCDC)
	}
	return w.String()
}
