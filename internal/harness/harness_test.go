package harness

import (
	"strings"
	"testing"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
)

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.Budget = 250 * time.Millisecond
	cfg.Repetitions = 1
	cfg.SLDVDepth = 3
	return cfg
}

func TestRunModelAllTools(t *testing.T) {
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunModel(e, []Tool{ToolSLDV, ToolSimCoTest, ToolCFTCG, ToolFuzzOnly}, quickConfig())
	if err != nil {
		t.Fatalf("RunModel: %v", err)
	}
	for _, tool := range []Tool{ToolSLDV, ToolSimCoTest, ToolCFTCG, ToolFuzzOnly} {
		tr, ok := mr.Results[tool]
		if !ok {
			t.Fatalf("missing result for %s", tool)
		}
		if tr.Decision < 0 || tr.Decision > 100 {
			t.Errorf("%s: decision out of range: %v", tool, tr.Decision)
		}
		if tr.Decision == 0 {
			t.Errorf("%s: found no coverage at all", tool)
		}
	}
	cftcg := mr.Results[ToolCFTCG]
	if cftcg.Decision < 50 {
		t.Errorf("CFTCG should reach most of SolarPV quickly: %.1f%%", cftcg.Decision)
	}
}

func TestFormatters(t *testing.T) {
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Budget = 100 * time.Millisecond
	mr, err := RunModel(e, []Tool{ToolSLDV, ToolSimCoTest, ToolCFTCG, ToolFuzzOnly}, cfg)
	if err != nil {
		t.Fatalf("RunModel: %v", err)
	}
	results := []ModelResult{mr}

	t2 := FormatTable2(results)
	if !strings.Contains(t2, "SolarPV") || !strings.Contains(t2, "#Branch") {
		t.Errorf("Table 2 malformed:\n%s", t2)
	}
	t3 := FormatTable3(results)
	if !strings.Contains(t3, "CFTCG") || !strings.Contains(t3, "SimCoTest") {
		t.Errorf("Table 3 malformed:\n%s", t3)
	}
	f7 := FormatFigure7(results, cfg.Budget, 8)
	if !strings.Contains(f7, "SolarPV") {
		t.Errorf("Figure 7 malformed:\n%s", f7)
	}
	f8 := FormatFigure8(results)
	if !strings.Contains(f8, "FuzzOnly") {
		t.Errorf("Figure 8 malformed:\n%s", f8)
	}
}

func TestMeasureSpeedRatio(t *testing.T) {
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	c, err := codegen.Compile(e.Build())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := MeasureSpeed(c, 100*time.Millisecond, 1)
	if err != nil {
		t.Fatalf("MeasureSpeed: %v", err)
	}
	if sp.VMStepsPerSec <= 0 || sp.SimStepsPerSec <= 0 {
		t.Fatalf("rates must be positive: %+v", sp)
	}
	// The compiled path must beat the engine by a wide margin — the §4
	// speed claim. We require at least 5x here (typically it is much more).
	if sp.Ratio() < 5 {
		t.Errorf("compiled/simulated ratio too small: %v", sp)
	}
	t.Log(sp.String())
}

func TestHybridTool(t *testing.T) {
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	mr, err := RunModel(e, []Tool{ToolHybrid}, cfg)
	if err != nil {
		t.Fatalf("RunModel hybrid: %v", err)
	}
	tr := mr.Results[ToolHybrid]
	if tr.Decision <= 0 {
		t.Error("hybrid found no coverage")
	}
	if tr.Execs == 0 {
		t.Error("hybrid ran nothing")
	}
}

func TestSampleTimelineStepFunction(t *testing.T) {
	tl := []coverage.TimePoint{
		{Elapsed: 10 * time.Millisecond, Decision: 20},
		{Elapsed: 50 * time.Millisecond, Decision: 60},
	}
	samples := SampleTimeline(tl, 100*time.Millisecond, 4)
	want := []float64{20, 60, 60, 60}
	for i := range want {
		if samples[i] != want[i] {
			t.Errorf("sample %d: want %v got %v (all %v)", i, want[i], samples[i], samples)
		}
	}
}
