package harness

import (
	"fmt"
	"math/rand"
	"time"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/interp"
	"cftcg/internal/model"
	"cftcg/internal/vm"
)

// Speed holds the §4 execution-rate measurement: compiled fuzzing versus
// engine simulation on the same model. The paper reports 26,000 it/s for
// CFTCG against 6 it/s for SimCoTest on SolarPV; the absolute rates depend
// on the substrate, the claim is the orders-of-magnitude ratio.
type Speed struct {
	Model          string
	VMStepsPerSec  float64
	SimStepsPerSec float64
}

// Ratio returns how many times faster compiled execution is.
func (s Speed) Ratio() float64 {
	if s.SimStepsPerSec == 0 {
		return 0
	}
	return s.VMStepsPerSec / s.SimStepsPerSec
}

func (s Speed) String() string {
	return fmt.Sprintf("%s: compiled %.0f it/s, simulated %.0f it/s (ratio %.0fx; paper: 26000 vs 6, ~4300x)",
		s.Model, s.VMStepsPerSec, s.SimStepsPerSec, s.Ratio())
}

// MeasureSpeed runs the same random input stream through the VM and the
// interpretive engine for the given duration each and reports iteration
// rates.
func MeasureSpeed(c *codegen.Compiled, budget time.Duration, seed int64) (Speed, error) {
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]uint64, 256)
	for i := range inputs {
		in := make([]uint64, len(c.Prog.In))
		for f, field := range c.Prog.In {
			if field.Type.IsFloat() {
				in[f] = model.EncodeFloat(field.Type, rng.NormFloat64()*100)
			} else {
				in[f] = model.EncodeInt(field.Type, int64(rng.Intn(512)-256))
			}
		}
		inputs[i] = in
	}

	rec := coverage.NewRecorder(c.Plan)
	machine := vm.New(c.Prog, rec)
	machine.Init()
	var vmSteps int64
	start := time.Now()
	for time.Since(start) < budget {
		for k := 0; k < 1024; k++ {
			rec.BeginStep()
			machine.Step(inputs[int(vmSteps)&255])
			vmSteps++
		}
	}
	vmRate := float64(vmSteps) / time.Since(start).Seconds()

	rec2 := coverage.NewRecorder(c.Plan)
	eng := interp.New(c.Design, c.Plan, c.Index, rec2)
	if err := eng.Init(); err != nil {
		return Speed{}, err
	}
	var simSteps int64
	start = time.Now()
	for time.Since(start) < budget {
		for k := 0; k < 16; k++ {
			rec2.BeginStep()
			if _, err := eng.Step(inputs[int(simSteps)&255]); err != nil {
				return Speed{}, err
			}
			simSteps++
		}
	}
	simRate := float64(simSteps) / time.Since(start).Seconds()

	return Speed{Model: c.Prog.Name, VMStepsPerSec: vmRate, SimStepsPerSec: simRate}, nil
}
