package harness

import (
	"strings"
	"testing"

	"cftcg/internal/benchmodels"
)

func TestRunAblationAndFormat(t *testing.T) {
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunAblation([]benchmodels.Entry{e}, 2000, 1, 2)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, variant := range []string{"full", "no-iterdiff", "no-hints"} {
		v, ok := rows[0].Variants[variant]
		if !ok {
			t.Fatalf("missing variant %s", variant)
		}
		if v.Decision <= 0 || v.Decision > 100 {
			t.Errorf("%s decision out of range: %v", variant, v.Decision)
		}
	}
	out := FormatAblation(rows)
	if !strings.Contains(out, "SolarPV") || !strings.Contains(out, "no-hints") {
		t.Errorf("format:\n%s", out)
	}
}
