package harness

import (
	"errors"
	"strings"
	"testing"
	"time"

	"cftcg/internal/benchmodels"
	"cftcg/internal/codegen"
)

// failTool swaps the cell entry point so one tool errors, panics or wedges,
// and restores it on cleanup.
func failTool(t *testing.T, victim Tool, fail func() (ToolResult, error)) {
	t.Helper()
	orig := runTool
	runTool = func(c *codegen.Compiled, tool Tool, cfg Config, seed int64) (ToolResult, error) {
		if tool == victim {
			return fail()
		}
		return orig(c, tool, cfg, seed)
	}
	t.Cleanup(func() { runTool = orig })
}

func degradedConfig() Config {
	cfg := DefaultConfig()
	cfg.Budget = 100 * time.Millisecond
	cfg.Repetitions = 2
	cfg.SLDVDepth = 3
	return cfg
}

// TestDegradedCellOnError: an erroring tool becomes a degraded cell, and the
// other tools on the same model still produce real numbers — the acceptance
// scenario for a fault-tolerant Table 3.
func TestDegradedCellOnError(t *testing.T) {
	failTool(t, ToolSimCoTest, func() (ToolResult, error) {
		return ToolResult{}, errors.New("engine license expired")
	})
	e, err := benchmodels.Get("SolarPV")
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunModel(e, []Tool{ToolSLDV, ToolSimCoTest, ToolCFTCG}, degradedConfig())
	if err != nil {
		t.Fatalf("RunModel must not abort on a failing tool: %v", err)
	}
	bad := mr.Results[ToolSimCoTest]
	if !bad.Failed || !strings.Contains(bad.FailReason, "license expired") {
		t.Errorf("degraded cell = %+v", bad)
	}
	for _, tool := range []Tool{ToolSLDV, ToolCFTCG} {
		tr := mr.Results[tool]
		if tr.Failed {
			t.Errorf("%s: healthy tool marked failed: %s", tool, tr.FailReason)
		}
		if tr.Decision == 0 {
			t.Errorf("%s: healthy tool found no coverage", tool)
		}
	}
}

func TestDegradedCellOnPanic(t *testing.T) {
	failTool(t, ToolCFTCG, func() (ToolResult, error) {
		panic("index out of range [17]")
	})
	e, err := benchmodels.Get("TinyGate")
	if err != nil {
		e = benchmodels.All()[0]
	}
	mr, err := RunModel(e, []Tool{ToolCFTCG}, degradedConfig())
	if err != nil {
		t.Fatalf("panic must be contained: %v", err)
	}
	tr := mr.Results[ToolCFTCG]
	if !tr.Failed || !strings.Contains(tr.FailReason, "panic") {
		t.Errorf("cell = %+v, want panic-degraded", tr)
	}
}

func TestDegradedCellOnDeadline(t *testing.T) {
	failTool(t, ToolFuzzOnly, func() (ToolResult, error) {
		time.Sleep(time.Hour)
		return ToolResult{}, nil
	})
	cfg := degradedConfig()
	cfg.CellTimeout = 50 * time.Millisecond
	e := benchmodels.All()[0]
	start := time.Now()
	mr, err := RunModel(e, []Tool{ToolFuzzOnly}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
	tr := mr.Results[ToolFuzzOnly]
	if !tr.Failed || !strings.Contains(tr.FailReason, "deadline") {
		t.Errorf("cell = %+v, want deadline-degraded", tr)
	}
}

func TestTable3RendersDegradedCells(t *testing.T) {
	e := benchmodels.All()[0]
	results := []ModelResult{{
		Entry: e, Branches: 4, Blocks: 3,
		Results: map[Tool]ToolResult{
			ToolSLDV:      {Tool: ToolSLDV, Decision: 75},
			ToolSimCoTest: {Tool: ToolSimCoTest, Failed: true, FailReason: "panic: boom"},
			ToolCFTCG:     {Tool: ToolCFTCG, Decision: 100, Condition: 100, MCDC: 100},
		},
	}}
	table := FormatTable3(results)
	if !strings.Contains(table, "FAILED") {
		t.Errorf("degraded cell not rendered:\n%s", table)
	}
	if !strings.Contains(table, "100.0%") {
		t.Errorf("healthy cells missing:\n%s", table)
	}
	// The improvement footer must skip pairs with a failed member: SimCoTest
	// failed, so only the SLDV comparison may appear.
	if strings.Contains(table, "vs SimCoTest") {
		t.Errorf("improvement footer used a failed baseline:\n%s", table)
	}
	if !strings.Contains(table, "vs SLDV") {
		t.Errorf("healthy baseline comparison missing:\n%s", table)
	}
}

func TestCellDeadlineDefault(t *testing.T) {
	c := Config{Budget: time.Second}
	if got := c.cellDeadline(); got != 4*time.Second+30*time.Second {
		t.Errorf("derived deadline = %s", got)
	}
	c.CellTimeout = time.Minute
	if got := c.cellDeadline(); got != time.Minute {
		t.Errorf("explicit deadline = %s", got)
	}
}
