package harness

import (
	"strings"
	"testing"
	"time"

	"cftcg/internal/benchmodels"
)

// TestMutationScoreCFTCGBeatsFuzzOnly is the acceptance check for the
// mutation-testing subsystem: at an identical execution budget, the suite
// CFTCG generates kills at least as many mutants as the fuzz-only ablation
// — coverage-guided model-aware fuzzing buys fault-detection power, not
// just coverage numbers.
func TestMutationScoreCFTCGBeatsFuzzOnly(t *testing.T) {
	e, err := benchmodels.Get("CPUTask")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Repetitions = 1
	cfg.Seed = 1
	cfg.Budget = 30 * time.Second // MaxExecs is the binding budget
	cfg.FuzzMaxExecs = 4000
	cfg.MutantBudget = 60
	mr, err := RunModel(e, []Tool{ToolCFTCG, ToolFuzzOnly}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f := mr.Results[ToolCFTCG]
	o := mr.Results[ToolFuzzOnly]
	if f.Failed || o.Failed {
		t.Fatalf("degraded cells: cftcg=%q fuzz-only=%q", f.FailReason, o.FailReason)
	}
	if f.MutTotal == 0 {
		t.Fatalf("no mutants generated for %s", e.Name)
	}
	if f.MutKilled < 1 {
		t.Fatalf("CFTCG killed no mutants: %+v", f)
	}
	if f.MutScore <= 0 || f.MutScore > 1 {
		t.Fatalf("CFTCG mutation score %v outside (0, 1]", f.MutScore)
	}
	if f.MutScore < o.MutScore {
		t.Fatalf("CFTCG score %.3f < fuzz-only score %.3f at equal budget (%d execs)",
			f.MutScore, o.MutScore, cfg.FuzzMaxExecs)
	}
	t.Logf("mutation score: CFTCG %.3f (%d/%d) vs fuzz-only %.3f (%d/%d)",
		f.MutScore, f.MutKilled, f.MutKilled+f.MutSurvived,
		o.MutScore, o.MutKilled, o.MutKilled+o.MutSurvived)

	table := FormatMutationTable([]ModelResult{mr}, []Tool{ToolCFTCG, ToolFuzzOnly})
	if !strings.Contains(table, "CPUTask") || !strings.Contains(table, "Score") {
		t.Fatalf("mutation table malformed:\n%s", table)
	}
}
