package core_test

import (
	"fmt"
	"strings"

	"cftcg/internal/core"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
)

// buildGate constructs a deterministic little model used by the examples.
func buildGate() *model.Model {
	b := model.NewBuilder("Gate")
	level := b.Inport("Level", model.Int32)
	armed := b.Inport("Armed", model.Int8)
	hot := b.Rel(">=", level, b.ConstT(model.Int32, 100))
	open := b.And(armed, hot)
	b.Outport("Open", model.Bool, open)
	return b.Model()
}

// ExampleFromModel shows the shortest path from a model to its generated
// fuzz driver.
func ExampleFromModel() {
	sys, err := core.FromModel(buildGate())
	if err != nil {
		panic(err)
	}
	driver := sys.GenerateFuzzCode().Driver
	fmt.Println(strings.Split(driver, "\n")[1]) // the entry point line
	fmt.Printf("tuple bytes: %d, branch slots: %d\n",
		sys.Layout().TupleSize, sys.BranchCount())
	// Output:
	// void FuzzTestOneInput(const uint8_t *data, size_t size) {
	// tuple bytes: 5, branch slots: 6
}

// ExampleSystem_Fuzz runs a deterministic mini-campaign and prints the
// resulting coverage.
func ExampleSystem_Fuzz() {
	sys, err := core.FromModel(buildGate())
	if err != nil {
		panic(err)
	}
	res, err := sys.Fuzz(fuzz.Options{Seed: 42, MaxExecs: 4000})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Report)
	// Output:
	// Gate: decision 100.0% (2/2), condition 100.0% (4/4), MCDC 100.0% (2/2)
}

// ExampleSystem_Replay replays a hand-written binary test case and reports
// the coverage it achieves.
func ExampleSystem_Replay() {
	sys, err := core.FromModel(buildGate())
	if err != nil {
		panic(err)
	}
	// Two tuples: (level=150, armed=1) then (level=0, armed=0).
	data := make([]byte, 2*sys.Layout().TupleSize)
	model.PutRaw(model.Int32, data[0:], model.EncodeInt(model.Int32, 150))
	data[4] = 1
	rep, _ := sys.Replay([][]byte{data})
	fmt.Printf("decision %.0f%%, condition %.0f%%\n", rep.Decision(), rep.Condition())
	// Output:
	// decision 100%, condition 100%
}

// ExampleSystem_ConvertCase renders a binary case as the CSV Simulink's
// coverage replay consumes.
func ExampleSystem_ConvertCase() {
	sys, err := core.FromModel(buildGate())
	if err != nil {
		panic(err)
	}
	data := make([]byte, sys.Layout().TupleSize)
	model.PutRaw(model.Int32, data[0:], model.EncodeInt(model.Int32, 7))
	data[4] = 1
	var sb strings.Builder
	if err := sys.ConvertCase(&sb, data); err != nil {
		panic(err)
	}
	fmt.Print(sb.String())
	// Output:
	// step,Level,Armed
	// 0,7,1
}
