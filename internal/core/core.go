// Package core is CFTCG's public orchestration API: load or build a model,
// generate the fuzzing code (driver + instrumented step function), run the
// model-oriented fuzzing loop, and replay generated test suites for
// coverage reports — the end-to-end pipeline of the paper's Figure 2.
package core

import (
	"fmt"
	"io"
	"os"
	"strings"

	"cftcg/internal/codegen"
	"cftcg/internal/coverage"
	"cftcg/internal/fuzz"
	"cftcg/internal/model"
	"cftcg/internal/slxml"
	"cftcg/internal/testcase"
	"cftcg/internal/vcd"
	"cftcg/internal/vm"
)

// System is a compiled model ready for test-case generation.
type System struct {
	Model    *model.Model
	Compiled *codegen.Compiled
}

// Load reads a model from an .slx-like container file and compiles it.
func Load(path string) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	m, err := slxml.Read(f, st.Size())
	if err != nil {
		return nil, err
	}
	return FromModel(m)
}

// FromModel compiles an in-memory model.
func FromModel(m *model.Model) (*System, error) {
	c, err := codegen.Compile(m)
	if err != nil {
		return nil, err
	}
	return &System{Model: m, Compiled: c}, nil
}

// Save writes the model to an .slx-like container file.
func (s *System) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return slxml.Write(f, s.Model)
}

// FuzzCode bundles the generated sources of the fuzzing-code-generation
// stage (paper §3.1): the model-specific driver plus the instrumented model
// functions.
type FuzzCode struct {
	Driver string // FuzzTestOneInput (Figure 3)
	Init   string // model initialization function
	Step   string // instrumented step function (Figure 4 modes inline)
}

// GenerateFuzzCode renders the fuzzing code for inspection or export.
func (s *System) GenerateFuzzCode() FuzzCode {
	return FuzzCode{
		Driver: codegen.EmitDriver(s.Compiled.Prog),
		Init:   codegen.EmitInit(s.Compiled.Prog, s.Compiled.Plan),
		Step:   codegen.EmitStep(s.Compiled.Prog, s.Compiled.Plan),
	}
}

// Fuzz runs the model-oriented fuzzing loop and returns the campaign result
// (coverage report, generated suite, timeline, triaged findings). It errors
// on invalid options or an unreadable resume checkpoint.
func (s *System) Fuzz(opts fuzz.Options) (*fuzz.Result, error) {
	eng, err := fuzz.NewEngine(s.Compiled, opts)
	if err != nil {
		return nil, err
	}
	return eng.Run(), nil
}

// Layout returns the model's input tuple layout (field order, types,
// offsets) — what the fuzz driver's data segmentation uses.
func (s *System) Layout() model.Layout {
	return model.Layout{Fields: s.Compiled.Prog.In, TupleSize: s.Compiled.Prog.TupleSize()}
}

// BranchCount returns the number of instrumented branch slots (Table 2's
// #Branch statistic).
func (s *System) BranchCount() int { return s.Compiled.Plan.BranchCount() }

// Replay executes the given binary test cases through the instrumented
// program and returns the accumulated coverage report — what `cftcg cov`
// prints and what the paper's CSV converter feeds back into Simulink.
func (s *System) Replay(cases [][]byte) (coverage.Report, *coverage.Recorder) {
	rec := coverage.NewRecorder(s.Compiled.Plan)
	m := vm.New(s.Compiled.Prog, rec)
	tuple := s.Compiled.Prog.TupleSize()
	fields := s.Compiled.Prog.In
	in := make([]uint64, len(fields))
	for _, data := range cases {
		if m.Init() != nil {
			continue
		}
		n := 0
		if tuple > 0 {
			n = len(data) / tuple
		}
		for it := 0; it < n; it++ {
			base := it * tuple
			for fi, f := range fields {
				in[fi] = model.GetRaw(f.Type, data[base+f.Offset:])
			}
			rec.BeginStep()
			if m.Step(in) != nil {
				break // hung case: keep the coverage reached so far
			}
		}
	}
	return rec.Report(), rec
}

// WriteSuite persists a generated test suite: one .bin file per case plus a
// combined CSV rendering.
func (s *System) WriteSuite(dir string, suite *testcase.Suite) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, c := range suite.Cases {
		name := fmt.Sprintf("%s/case%04d.bin", dir, i)
		if err := os.WriteFile(name, c.Data, 0o644); err != nil {
			return err
		}
	}
	f, err := os.Create(dir + "/suite.csv")
	if err != nil {
		return err
	}
	defer f.Close()
	return testcase.WriteSuiteCSV(f, suite)
}

// ConvertCase renders one binary test case as CSV to w (the paper's
// binary-to-csv converter).
func (s *System) ConvertCase(w io.Writer, data []byte) error {
	_, err := io.WriteString(w, testcase.ToCSV(s.Layout(), data))
	return err
}

// ReadSeedDir loads every .bin case file in dir (sorted by name) for use as
// fuzz.Options.SeedInputs — resuming a campaign from a previously written
// suite, or seeding from another tool's witnesses.
func ReadSeedDir(dir string) ([][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".bin") {
			continue
		}
		data, err := os.ReadFile(dir + "/" + e.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// Trace replays one binary test case and writes a VCD waveform of every
// inport and outport to w, for inspection in a waveform viewer.
func (s *System) Trace(w io.Writer, data []byte) error {
	prog := s.Compiled.Prog
	var signals []vcd.Signal
	for _, f := range prog.In {
		signals = append(signals, vcd.Signal{Name: "in_" + f.Name, Type: f.Type})
	}
	for _, f := range prog.Out {
		signals = append(signals, vcd.Signal{Name: "out_" + f.Name, Type: f.Type})
	}
	vw := vcd.New(w, s.Model.Name, s.Model.SampleTime, signals)

	m := vm.New(prog, nil)
	m.Init()
	tuple := prog.TupleSize()
	n := 0
	if tuple > 0 {
		n = len(data) / tuple
	}
	in := make([]uint64, len(prog.In))
	sample := make([]uint64, len(signals))
	for it := 0; it < n; it++ {
		base := it * tuple
		for fi, f := range prog.In {
			in[fi] = model.GetRaw(f.Type, data[base+f.Offset:])
		}
		m.Step(in)
		copy(sample, in)
		copy(sample[len(in):], m.Out())
		vw.Step(sample)
	}
	return vw.Close()
}
